package komp

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRealOMPParallelFor(t *testing.T) {
	o := New(4)
	defer o.Close()
	const n = 10000
	out := make([]int64, n)
	o.ParallelFor(0, 0, n, ForOpt{Sched: Static}, func(i int) {
		out[i] = int64(i) * 2
	})
	for i := 0; i < n; i++ {
		if out[i] != int64(i)*2 {
			t.Fatalf("out[%d] = %d", i, out[i])
		}
	}
}

func TestRealOMPReduceAndCritical(t *testing.T) {
	o := New(4)
	defer o.Close()
	var viaCritical int64
	var viaReduce float64
	o.Parallel(4, func(w *Worker) {
		local := 0.0
		w.ForEach(1, 101, ForOpt{Sched: Dynamic, Chunk: 5}, func(i int) {
			local += float64(i)
			w.Critical("", func() { viaCritical += int64(i) })
		})
		total := w.Reduce(ReduceSum, local)
		w.Master(func() { viaReduce = total })
	})
	if viaCritical != 5050 || viaReduce != 5050 {
		t.Fatalf("critical=%d reduce=%v, want 5050", viaCritical, viaReduce)
	}
}

func TestRealOMPPlacesOptions(t *testing.T) {
	// Spread over two 2-CPU places: a 2-thread team must land one worker
	// per place, and the Affinity schedule must deal blocks in CPU order.
	o := New(4, WithPlaces("{0:2},{2:2}"), WithProcBind(BindSpread))
	defer o.Close()
	cpus := make([]int64, 2)
	o.Parallel(2, func(w *Worker) {
		atomic.StoreInt64(&cpus[w.ThreadNum()], int64(w.TC().CPU()))
		w.For(0, 2, ForOpt{Sched: Affinity}, func(lo, hi int) {})
	})
	if cpus[0] != 0 || cpus[1] != 2 {
		t.Fatalf("spread over {0:2},{2:2} placed workers on CPUs %v, want [0 2]", cpus)
	}
}

func TestRealOMPTasks(t *testing.T) {
	o := New(4)
	defer o.Close()
	var done atomic.Int64
	o.Parallel(0, func(w *Worker) {
		w.Master(func() {
			for i := 0; i < 64; i++ {
				w.Task(func(*Worker) { done.Add(1) })
			}
		})
		w.Barrier()
	})
	if done.Load() != 64 {
		t.Fatalf("tasks = %d", done.Load())
	}
}

func TestMachines(t *testing.T) {
	phi, err := NewMachine(MachinePHI)
	if err != nil || phi.NumCPUs() != 64 {
		t.Fatalf("PHI: %v %v", phi, err)
	}
	xeon, err := NewMachine(Machine8XEON)
	if err != nil || xeon.NumCPUs() != 192 {
		t.Fatalf("8XEON: %v %v", xeon, err)
	}
	if _, err := NewMachine("cray"); err == nil {
		t.Fatal("unknown machine must error")
	}
}

func TestSimulationAPI(t *testing.T) {
	m, _ := NewMachine(MachinePHI)
	lin := NewEnvironment(EnvConfig{Machine: m, Kind: EnvLinux, Seed: 1, Threads: 8})
	rtk := NewEnvironment(EnvConfig{Machine: m, Kind: EnvRTK, Seed: 1, Threads: 8})
	tl, err := RunNAS(lin, "EP", 8)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunNAS(rtk, "EP", 8)
	if err != nil {
		t.Fatal(err)
	}
	if !(tr < tl) {
		t.Fatalf("RTK (%v) must beat Linux (%v) on EP", tr, tl)
	}
	if _, err := RunNAS(lin, "ZZ", 8); err == nil {
		t.Fatal("unknown benchmark must error")
	}
	if len(NASBenchmarks()) != 8 {
		t.Fatalf("benchmarks = %v", NASBenchmarks())
	}
}

func TestFigureAPI(t *testing.T) {
	if len(FigureIDs()) != 10 {
		t.Fatalf("figures = %v", FigureIDs())
	}
	var b strings.Builder
	if err := RunFigure("fig6", &b, FigureOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "CCK") {
		t.Fatal("fig6 content missing")
	}
	if err := RunFigure("fig99", &b, FigureOptions{}); err == nil {
		t.Fatal("unknown figure must error")
	}
}

// TestServiceAPI: the public multi-tenant surface — NewService,
// WithTenant handles leasing from one shared pool, Submit backpressure
// stats, and per-tenant Close leaving the service usable.
func TestServiceAPI(t *testing.T) {
	svc, err := NewService(ServiceConfig{Workers: 4, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := New(2, WithTenant(svc))
	b := New(2, WithTenant(svc), WithCancellation())
	var sum [2]int
	var wg sync.WaitGroup
	for i, h := range []*OMP{a, b} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				h.ParallelFor(2, 0, 100, ForOpt{}, func(int) {})
				if err := h.Submit(2, func(w *Worker) {
					w.Atomic(func() { sum[i]++ })
				}); err != nil {
					t.Errorf("tenant %d Submit: %v", i, err)
				}
			}
		}()
	}
	wg.Wait()
	if sum[0] != 40 || sum[1] != 40 {
		t.Fatalf("per-tenant sums = %v, want 40 each", sum)
	}
	if st := svc.Stats(); st.Admitted != 80 || st.Rejected != 0 {
		t.Fatalf("Stats = %+v, want 80 admitted, 0 rejected", st)
	}
	a.Close()
	b.Close()
	svc.Close()
}
