// Package komp is the public API of the "Paths to OpenMP in the Kernel"
// reproduction (Ma et al., SC '21): an OpenMP-style parallel runtime for
// Go, plus a deterministic simulation of the paper's three paths for
// bringing that runtime into an operating system kernel — RTK (runtime
// in kernel), PIK (process in kernel) and CCK (custom compilation for
// kernel) — and the harness that regenerates every figure of the paper's
// evaluation.
//
// Two ways to use it:
//
//   - As a parallelism library: komp.New(threads) gives an OpenMP-style
//     runtime over real goroutines (parallel regions, worksharing loops
//     with static/dynamic/guided schedules, barriers, reductions,
//     critical sections, tasks).
//
//   - As a systems laboratory: komp.NewEnvironment constructs one of the
//     paper's execution environments over the discrete-event simulator,
//     and komp.RunFigure regenerates the paper's tables and figures.
package komp

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/interweaving/komp/internal/bench"
	"github.com/interweaving/komp/internal/core"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/nas"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/places"
)

// --- The real-execution OpenMP API ---

// Worker is a thread's view of a parallel region; it carries every
// OpenMP construct (For, Barrier, Critical, Reduce, Task, ...).
type Worker = omp.Worker

// ForOpt configures a worksharing loop.
type ForOpt = omp.ForOpt

// TaskloopOpt configures a task-generating loop (Worker.Taskloop).
type TaskloopOpt = omp.TaskloopOpt

// TaskOpt carries the clauses of a task construct (Worker.TaskWith):
// depend, final, and the if clause's undeferred path.
type TaskOpt = omp.TaskOpt

// Dep is one depend clause item; build them with In, Out and InOut.
type Dep = omp.Dep

// In returns a depend(in: *addr) clause item.
func In(addr any) Dep { return omp.In(addr) }

// Out returns a depend(out: *addr) clause item.
func Out(addr any) Dep { return omp.Out(addr) }

// InOut returns a depend(inout: *addr) clause item.
func InOut(addr any) Dep { return omp.InOut(addr) }

// Schedule kinds for worksharing loops. Affinity is the locality-aware
// static schedule: the same block math as Static, but blocks are dealt
// by each worker's rank in place (CPU) order, so the chunk-to-CPU
// mapping survives thread-number permutations across regions and
// first-touched pages stay local.
const (
	Static   = omp.Static
	Dynamic  = omp.Dynamic
	Guided   = omp.Guided
	Affinity = omp.Affinity
)

// ProcBind is an OMP_PROC_BIND-style thread binding policy.
type ProcBind = places.Bind

// Binding policies for WithProcBind.
const (
	// BindFalse leaves workers unmanaged (free to migrate).
	BindFalse = places.BindFalse
	// BindMaster packs the team onto the master's place.
	BindMaster = places.BindMaster
	// BindClose places workers on consecutive places from the master's.
	BindClose = places.BindClose
	// BindSpread spaces workers evenly across the place partition.
	BindSpread = places.BindSpread
)

// Reduction operators.
const (
	ReduceSum  = omp.ReduceSum
	ReduceProd = omp.ReduceProd
	ReduceMax  = omp.ReduceMax
	ReduceMin  = omp.ReduceMin
)

// CancelKind names the construct a cancellation request applies to
// (Worker.Cancel / Worker.CancellationPoint).
type CancelKind = omp.CancelKind

// Cancellable construct kinds.
const (
	CancelParallel  = omp.CancelParallel
	CancelFor       = omp.CancelFor
	CancelSections  = omp.CancelSections
	CancelTaskgroup = omp.CancelTaskgroup
)

// OMP is an OpenMP-style runtime running on real goroutines.
type OMP struct {
	layer *exec.RealLayer
	rt    *omp.Runtime
	tc    exec.TC
}

// Option configures New.
type Option func(*omp.Options)

// WithPlaces sets the OMP_PLACES-style place partition the binding
// policy resolves against: an abstract name (threads, cores, sockets)
// with an optional (n) count, or an explicit interval list such as
// "{0:4},{4:4}". New panics on a spec the pool's CPUs cannot satisfy.
func WithPlaces(spec string) Option {
	return func(o *omp.Options) { o.PlacesSpec = spec }
}

// WithProcBind sets the OMP_PROC_BIND policy used to place each team's
// workers over the place partition.
func WithProcBind(policy ProcBind) Option {
	return func(o *omp.Options) {
		o.ProcBind = policy
		if policy != places.BindFalse {
			o.Bind = true
		}
	}
}

// WithMaxActiveLevels sets the OMP_MAX_ACTIVE_LEVELS ICV: how many
// nested parallel regions may be active (team size > 1) at once. The
// default is 1 — an inner Worker.Parallel serializes. With n >= 2 an
// inner region forks a real inner team leased from the shared pool;
// Worker.Level, Worker.AncestorThreadNum and Worker.TeamSize expose the
// resulting hierarchy.
func WithMaxActiveLevels(n int) Option {
	return func(o *omp.Options) { o.MaxActiveLevels = n }
}

// WithNumThreadsList sets per-nesting-level team sizes, the comma-list
// form of OMP_NUM_THREADS ("8,4"): entry i sizes regions at nesting
// level i+1, the last entry covering all deeper levels.
func WithNumThreadsList(sizes ...int) Option {
	return func(o *omp.Options) {
		if len(sizes) > 0 {
			o.DefaultThreads = sizes[0]
			o.NumThreadsList = append([]int(nil), sizes...)
		}
	}
}

// WithCancellation enables the cancel constructs (the OMP_CANCELLATION
// ICV): Worker.Cancel and Worker.CancellationPoint become operative and
// every scheduling point — barriers, loop chunk claims, task execution —
// checks for an active cancellation. Off by default; when off, Cancel
// returns false and the runtime's fast paths are unchanged.
func WithCancellation() Option {
	return func(o *omp.Options) { o.Cancellation = true }
}

// WithDeadline arms a deadline on every parallel region
// (KOMP_REGION_DEADLINE): a region still running after d is cancelled
// exactly as if a thread had executed Cancel(CancelParallel), so the
// region joins with a partial result instead of running (or hanging)
// on. Implies WithCancellation.
func WithDeadline(d time.Duration) Option {
	return func(o *omp.Options) {
		o.Cancellation = true
		o.RegionDeadlineNS = int64(d)
	}
}

// New creates a runtime with the given pool size (0 means GOMAXPROCS).
// Close it when done.
func New(threads int, opts ...Option) *OMP {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	layer := exec.NewRealLayer(threads)
	oo := omp.Options{MaxThreads: threads, Bind: true}
	for _, apply := range opts {
		apply(&oo)
	}
	rt := omp.New(layer, oo)
	return &OMP{layer: layer, rt: rt, tc: layer.TC()}
}

// Parallel runs fn on a team of n threads (0 = all). It returns after
// the implicit join barrier.
func (o *OMP) Parallel(n int, fn func(*Worker)) { o.rt.Parallel(o.tc, n, fn) }

// ParallelFor runs a worksharing loop over [lo, hi) on a team of n
// threads (0 = all).
func (o *OMP) ParallelFor(n, lo, hi int, opt ForOpt, body func(i int)) {
	o.rt.Parallel(o.tc, n, func(w *Worker) {
		w.ForEach(lo, hi, opt, body)
	})
}

// Threads returns the pool size.
func (o *OMP) Threads() int { return o.rt.MaxThreads() }

// Close shuts the worker pool down.
func (o *OMP) Close() { o.rt.Close(o.tc) }

// --- The simulation API ---

// Machine names.
const (
	MachinePHI   = "PHI"
	Machine8XEON = "8XEON"
)

// NewMachine returns one of the paper's machine models.
func NewMachine(name string) (*machine.Machine, error) {
	switch name {
	case MachinePHI:
		return machine.PHI(), nil
	case Machine8XEON:
		return machine.XEON8(), nil
	default:
		return nil, fmt.Errorf("komp: unknown machine %q (want %s or %s)", name, MachinePHI, Machine8XEON)
	}
}

// Environment kinds (the paper's execution environments).
const (
	EnvLinux       = core.Linux
	EnvRTK         = core.RTK
	EnvPIK         = core.PIK
	EnvCCK         = core.CCK
	EnvLinuxAutoMP = core.LinuxAutoMP
)

// EnvConfig configures an environment; see core.Config.
type EnvConfig = core.Config

// Environment is a constructed simulated environment.
type Environment = core.Env

// NewEnvironment builds one of the paper's execution environments over
// the deterministic simulator.
func NewEnvironment(cfg EnvConfig) *Environment { return core.New(cfg) }

// NASBenchmarks returns the names of the modeled NAS benchmarks.
func NASBenchmarks() []string {
	var out []string
	for _, s := range nas.Specs() {
		out = append(out, s.Name)
	}
	return out
}

// RunNAS runs one NAS benchmark model in an environment, returning the
// virtual seconds it took.
func RunNAS(env *Environment, name string, threads int) (float64, error) {
	s := nas.SpecByName(name)
	if s == nil {
		return 0, fmt.Errorf("komp: unknown NAS benchmark %q", name)
	}
	res, err := nas.RunModel(env, s, threads)
	return res.Seconds, err
}

// FigureIDs returns the regenerable figure ids in paper order.
func FigureIDs() []string {
	var out []string
	for _, f := range bench.Figures() {
		out = append(out, f.ID)
	}
	return out
}

// FigureOptions tunes figure regeneration.
type FigureOptions = bench.Options

// RunFigure regenerates one of the paper's figures ("fig6".."fig15") as
// a text table on w.
func RunFigure(id string, w io.Writer, opt FigureOptions) error {
	f, ok := bench.ByID(id)
	if !ok {
		return fmt.Errorf("komp: unknown figure %q (see FigureIDs)", id)
	}
	return f.Run(w, opt)
}
