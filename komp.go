// Package komp is the public API of the "Paths to OpenMP in the Kernel"
// reproduction (Ma et al., SC '21): an OpenMP-style parallel runtime for
// Go, plus a deterministic simulation of the paper's three paths for
// bringing that runtime into an operating system kernel — RTK (runtime
// in kernel), PIK (process in kernel) and CCK (custom compilation for
// kernel) — and the harness that regenerates every figure of the paper's
// evaluation.
//
// Two ways to use it:
//
//   - As a parallelism library: komp.New(threads) gives an OpenMP-style
//     runtime over real goroutines (parallel regions, worksharing loops
//     with static/dynamic/guided schedules, barriers, reductions,
//     critical sections, tasks).
//
//   - As a systems laboratory: komp.NewEnvironment constructs one of the
//     paper's execution environments over the discrete-event simulator,
//     and komp.RunFigure regenerates the paper's tables and figures.
package komp

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"github.com/interweaving/komp/internal/bench"
	"github.com/interweaving/komp/internal/core"
	"github.com/interweaving/komp/internal/device"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/nas"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/places"
	"github.com/interweaving/komp/internal/tenancy"
)

// --- The real-execution OpenMP API ---

// Worker is a thread's view of a parallel region; it carries every
// OpenMP construct (For, Barrier, Critical, Reduce, Task, ...).
type Worker = omp.Worker

// ForOpt configures a worksharing loop.
type ForOpt = omp.ForOpt

// TaskloopOpt configures a task-generating loop (Worker.Taskloop).
type TaskloopOpt = omp.TaskloopOpt

// TaskOpt carries the clauses of a task construct (Worker.TaskWith):
// depend, final, and the if clause's undeferred path.
type TaskOpt = omp.TaskOpt

// Dep is one depend clause item; build them with In, Out and InOut.
type Dep = omp.Dep

// In returns a depend(in: *addr) clause item.
func In(addr any) Dep { return omp.In(addr) }

// Out returns a depend(out: *addr) clause item.
func Out(addr any) Dep { return omp.Out(addr) }

// InOut returns a depend(inout: *addr) clause item.
func InOut(addr any) Dep { return omp.InOut(addr) }

// Schedule kinds for worksharing loops. Affinity is the locality-aware
// static schedule: the same block math as Static, but blocks are dealt
// by each worker's rank in place (CPU) order, so the chunk-to-CPU
// mapping survives thread-number permutations across regions and
// first-touched pages stay local.
const (
	Static   = omp.Static
	Dynamic  = omp.Dynamic
	Guided   = omp.Guided
	Affinity = omp.Affinity
)

// ProcBind is an OMP_PROC_BIND-style thread binding policy.
type ProcBind = places.Bind

// Binding policies for WithProcBind.
const (
	// BindFalse leaves workers unmanaged (free to migrate).
	BindFalse = places.BindFalse
	// BindMaster packs the team onto the master's place.
	BindMaster = places.BindMaster
	// BindClose places workers on consecutive places from the master's.
	BindClose = places.BindClose
	// BindSpread spaces workers evenly across the place partition.
	BindSpread = places.BindSpread
)

// Reduction operators.
const (
	ReduceSum  = omp.ReduceSum
	ReduceProd = omp.ReduceProd
	ReduceMax  = omp.ReduceMax
	ReduceMin  = omp.ReduceMin
)

// CancelKind names the construct a cancellation request applies to
// (Worker.Cancel / Worker.CancellationPoint).
type CancelKind = omp.CancelKind

// Cancellable construct kinds.
const (
	CancelParallel  = omp.CancelParallel
	CancelFor       = omp.CancelFor
	CancelSections  = omp.CancelSections
	CancelTaskgroup = omp.CancelTaskgroup
)

// OMP is an OpenMP-style runtime running on real goroutines — either a
// standalone one owning its worker pool (New), or one tenant's handle on
// a shared multi-tenant Service (New with WithTenant).
type OMP struct {
	layer *exec.RealLayer
	rt    *omp.Runtime
	tc    exec.TC
	tn    *tenancy.Tenant // non-nil for tenant handles
}

// config is what Options apply to: the runtime's ICVs plus the komp-
// level choices (which service to join) that have no omp.Options field.
type config struct {
	omp.Options
	svc *Service
}

// Option configures New.
type Option func(*config)

// WithPlaces sets the OMP_PLACES-style place partition the binding
// policy resolves against: an abstract name (threads, cores, sockets)
// with an optional (n) count, or an explicit interval list such as
// "{0:4},{4:4}". New panics on a spec the pool's CPUs cannot satisfy.
func WithPlaces(spec string) Option {
	return func(o *config) { o.PlacesSpec = spec }
}

// WithProcBind sets the OMP_PROC_BIND policy used to place each team's
// workers over the place partition.
func WithProcBind(policy ProcBind) Option {
	return func(o *config) {
		o.ProcBind = policy
		if policy != places.BindFalse {
			o.Bind = true
		}
	}
}

// WithMaxActiveLevels sets the OMP_MAX_ACTIVE_LEVELS ICV: how many
// nested parallel regions may be active (team size > 1) at once. The
// default is 1 — an inner Worker.Parallel serializes. With n >= 2 an
// inner region forks a real inner team leased from the shared pool;
// Worker.Level, Worker.AncestorThreadNum and Worker.TeamSize expose the
// resulting hierarchy.
func WithMaxActiveLevels(n int) Option {
	return func(o *config) { o.MaxActiveLevels = n }
}

// WithNumThreadsList sets per-nesting-level team sizes, the comma-list
// form of OMP_NUM_THREADS ("8,4"): entry i sizes regions at nesting
// level i+1, the last entry covering all deeper levels.
func WithNumThreadsList(sizes ...int) Option {
	return func(o *config) {
		if len(sizes) > 0 {
			o.DefaultThreads = sizes[0]
			o.NumThreadsList = append([]int(nil), sizes...)
		}
	}
}

// WithCancellation enables the cancel constructs (the OMP_CANCELLATION
// ICV): Worker.Cancel and Worker.CancellationPoint become operative and
// every scheduling point — barriers, loop chunk claims, task execution —
// checks for an active cancellation. Off by default; when off, Cancel
// returns false and the runtime's fast paths are unchanged.
func WithCancellation() Option {
	return func(o *config) { o.Cancellation = true }
}

// WithDeadline arms a deadline on every parallel region
// (KOMP_REGION_DEADLINE): a region still running after d is cancelled
// exactly as if a thread had executed Cancel(CancelParallel), so the
// region joins with a partial result instead of running (or hanging)
// on. Implies WithCancellation.
func WithDeadline(d time.Duration) Option {
	return func(o *config) {
		o.Cancellation = true
		o.RegionDeadlineNS = int64(d)
	}
}

// New creates a runtime with the given pool size (0 means GOMAXPROCS).
// Close it when done. With WithTenant the handle joins a Service
// instead: threads caps this tenant's team sizes, workers are leased
// from the shared pool, and submissions pass admission control.
func New(threads int, opts ...Option) *OMP {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	var c config
	c.Options = omp.Options{MaxThreads: threads, Bind: true}
	for _, apply := range opts {
		apply(&c)
	}
	if c.svc != nil {
		// Tenant handle: the service assigns the pool, shard and tenant
		// id, then the user's options are re-applied on top.
		tn := c.svc.svc.Tenant(threads, func(o *omp.Options) {
			var tc config
			tc.Options = *o
			for _, apply := range opts {
				apply(&tc)
			}
			tc.Tenant = o.Tenant // the tenant id is not user-overridable
			tc.SharedPool = o.SharedPool
			*o = tc.Options
		})
		return &OMP{layer: c.svc.layer, rt: tn.Runtime(), tc: c.svc.layer.TC(), tn: tn}
	}
	layer := exec.NewRealLayer(threads)
	rt := omp.New(layer, c.Options)
	return &OMP{layer: layer, rt: rt, tc: layer.TC()}
}

// Parallel runs fn on a team of n threads (0 = all). It returns after
// the implicit join barrier. On a tenant handle the submission passes
// admission control first — it may park behind the service's queue, and
// a shed submission panics; use Submit to handle rejection.
func (o *OMP) Parallel(n int, fn func(*Worker)) {
	if err := o.Submit(n, fn); err != nil {
		panic(fmt.Sprintf("komp: %v (use Submit to handle backpressure)", err))
	}
}

// Submit runs fn like Parallel but surfaces admission control: on a
// tenant handle of a saturated Service it returns ErrRejected without
// running fn. On a standalone runtime it never fails.
func (o *OMP) Submit(n int, fn func(*Worker)) error {
	if o.tn != nil {
		return o.tn.Parallel(o.tc, n, fn)
	}
	o.rt.Parallel(o.tc, n, fn)
	return nil
}

// ParallelFor runs a worksharing loop over [lo, hi) on a team of n
// threads (0 = all).
func (o *OMP) ParallelFor(n, lo, hi int, opt ForOpt, body func(i int)) {
	o.Parallel(n, func(w *Worker) {
		w.ForEach(lo, hi, opt, body)
	})
}

// Threads returns the pool size (for a tenant handle: its team cap).
func (o *OMP) Threads() int { return o.rt.MaxThreads() }

// Close shuts the worker pool down. A tenant handle's Close only
// releases the tenant's cached leases; the Service owns the pool.
func (o *OMP) Close() {
	if o.tn != nil {
		o.tn.Close(o.tc)
		return
	}
	o.rt.Close(o.tc)
}

// --- The device offload API ---

// Map is one map clause entry of a target construct: a host object (a
// slice, or a pointer to a scalar/struct) and its map-type.
type Map = device.Map

// Kernel is a `target teams distribute` region: a loop of N iterations
// dealt in blocks over a league of teams on the device's compute units.
type Kernel = device.Kernel

// Block is one distribute block as a kernel body sees it.
type Block = device.Block

// TargetResult is a completed kernel launch: modeled device time, block
// and re-deal counts, and the league reduction value.
type TargetResult = device.Result

// ErrDeviceLost reports that every compute unit went offline before a
// kernel could finish.
var ErrDeviceLost = device.ErrDeviceLost

// MapTo, MapFrom, MapTofrom and MapAlloc build map clause entries
// (map(to: x), map(from: x), map(tofrom: x), map(alloc: x)).
func MapTo(obj any) Map     { return device.MapTo(obj) }
func MapFrom(obj any) Map   { return device.MapFrom(obj) }
func MapTofrom(obj any) Map { return device.MapTofrom(obj) }
func MapAlloc(obj any) Map  { return device.MapAlloc(obj) }

// WithDevice sets the accelerator geometry target constructs offload to
// (the KOMP_DEVICE ICV): cus compute units of lanes SIMT lanes each.
// Without it the runtime models a default 8×32 device on first use.
func WithDevice(cus, lanes int) Option {
	return func(o *config) { o.DeviceCUs, o.DeviceLanes = cus, lanes }
}

// WithDefaultDevice sets the OMP_DEFAULT_DEVICE ICV: the device number
// target constructs offload to. A negative value selects the host
// fallback — target regions run serially on the encountering thread.
func WithDefaultDevice(n int) Option {
	return func(o *config) { o.DefaultDevice = n }
}

// Target executes a kernel on the default device (#pragma omp target
// teams distribute map(...)): the map clauses are entered, the league
// launched, and the maps released in reverse — mappings an enclosing
// TargetData holds move no data.
func (o *OMP) Target(maps []Map, k Kernel) (TargetResult, error) {
	return o.rt.Target(o.tc, maps, k)
}

// TargetData brackets body with a structured device mapping (#pragma
// omp target data): Target calls inside find the data present and
// transfer nothing — the hoisting pattern that pays off when several
// kernels share operands.
func (o *OMP) TargetData(maps []Map, body func()) {
	o.rt.TargetData(o.tc, maps, body)
}

// TargetEnterData / TargetExitData are the unstructured mapping
// lifetime (#pragma omp target enter/exit data): mappings created here
// persist until the matching exit drops the last reference.
func (o *OMP) TargetEnterData(maps ...Map) { o.rt.TargetEnterData(o.tc, maps...) }
func (o *OMP) TargetExitData(maps ...Map)  { o.rt.TargetExitData(o.tc, maps...) }

// --- The multi-tenant service API ---

// ErrRejected is returned by OMP.Submit when the Service's admission
// control sheds the submission (KOMP_TENANCY_QUEUE full).
var ErrRejected = tenancy.ErrRejected

// Service is a multi-tenant runtime service: one shared worker pool
// that many independent OMP handles (New with WithTenant) lease teams
// from, with admission control, optional place sharding, and
// work-conserving rebalance between tenants. Close it after every
// tenant handle has Closed.
type Service struct {
	layer *exec.RealLayer
	boot  exec.TC
	svc   *tenancy.Service
}

// ServiceConfig configures NewService.
type ServiceConfig struct {
	// Workers is the shared pool size (0 means GOMAXPROCS-1).
	Workers int
	// MaxInflight caps concurrently running regions across all tenants
	// (0 disables admission control).
	MaxInflight int
	// QueueDepth and Reject are the admission queue bound and saturation
	// policy; both are overridden by KOMP_TENANCY_QUEUE when set.
	QueueDepth int
	Reject     bool
	// Shards deals tenants onto disjoint blocks of the machine's places
	// round-robin (0 or 1: all tenants share the full machine).
	Shards int
}

// NewService creates a multi-tenant service and its shared worker pool.
func NewService(cfg ServiceConfig) (*Service, error) {
	ncpu := runtime.GOMAXPROCS(0)
	workers := cfg.Workers
	if workers <= 0 {
		workers = ncpu - 1
		if workers < 1 {
			workers = 1
		}
	}
	tcfg := tenancy.Config{
		Workers:     workers,
		MaxInflight: cfg.MaxInflight,
		QueueDepth:  cfg.QueueDepth,
		Shards:      cfg.Shards,
		Base:        omp.Options{Bind: true},
	}
	if cfg.Reject {
		tcfg.Policy = tenancy.PolicyReject
	}
	if err := tcfg.Env(os.LookupEnv); err != nil {
		return nil, err
	}
	layer := exec.NewRealLayer(ncpu)
	if tcfg.Shards > 1 {
		part, err := places.Parse("", places.Flat(ncpu))
		if err != nil {
			return nil, err
		}
		tcfg.Places = part
	}
	boot := layer.TC()
	return &Service{layer: layer, boot: boot, svc: tenancy.New(boot, layer, tcfg)}, nil
}

// WithTenant makes New join svc as a new tenant instead of creating a
// standalone runtime: the handle's regions lease workers from the
// service's shared pool and pass its admission control.
func WithTenant(svc *Service) Option {
	return func(o *config) { o.svc = svc }
}

// ServiceStats is a snapshot of a Service's admission counters.
type ServiceStats = tenancy.Stats

// Stats returns a snapshot of the service's admission counters.
func (s *Service) Stats() ServiceStats { return s.svc.Stats() }

// Close shuts down every tenant runtime and the shared pool.
func (s *Service) Close() { s.svc.Shutdown(s.boot) }

// --- The simulation API ---

// Machine names.
const (
	MachinePHI   = "PHI"
	Machine8XEON = "8XEON"
)

// NewMachine returns one of the paper's machine models.
func NewMachine(name string) (*machine.Machine, error) {
	switch name {
	case MachinePHI:
		return machine.PHI(), nil
	case Machine8XEON:
		return machine.XEON8(), nil
	default:
		return nil, fmt.Errorf("komp: unknown machine %q (want %s or %s)", name, MachinePHI, Machine8XEON)
	}
}

// Environment kinds (the paper's execution environments).
const (
	EnvLinux       = core.Linux
	EnvRTK         = core.RTK
	EnvPIK         = core.PIK
	EnvCCK         = core.CCK
	EnvLinuxAutoMP = core.LinuxAutoMP
)

// EnvConfig configures an environment; see core.Config.
type EnvConfig = core.Config

// Environment is a constructed simulated environment.
type Environment = core.Env

// NewEnvironment builds one of the paper's execution environments over
// the deterministic simulator.
func NewEnvironment(cfg EnvConfig) *Environment { return core.New(cfg) }

// NASBenchmarks returns the names of the modeled NAS benchmarks.
func NASBenchmarks() []string {
	var out []string
	for _, s := range nas.Specs() {
		out = append(out, s.Name)
	}
	return out
}

// RunNAS runs one NAS benchmark model in an environment, returning the
// virtual seconds it took.
func RunNAS(env *Environment, name string, threads int) (float64, error) {
	s := nas.SpecByName(name)
	if s == nil {
		return 0, fmt.Errorf("komp: unknown NAS benchmark %q", name)
	}
	res, err := nas.RunModel(env, s, threads)
	return res.Seconds, err
}

// FigureIDs returns the regenerable figure ids in paper order.
func FigureIDs() []string {
	var out []string
	for _, f := range bench.Figures() {
		out = append(out, f.ID)
	}
	return out
}

// FigureOptions tunes figure regeneration.
type FigureOptions = bench.Options

// RunFigure regenerates one of the paper's figures ("fig6".."fig15") as
// a text table on w.
func RunFigure(id string, w io.Writer, opt FigureOptions) error {
	f, ok := bench.ByID(id)
	if !ok {
		return fmt.Errorf("komp: unknown figure %q (see FigureIDs)", id)
	}
	return f.Run(w, opt)
}
