package komp

// End-to-end integration tests crossing the full stack, each one acting
// out a path from the paper:
//
//   - RTK: kernel boot -> env vars -> shell command -> in-kernel OpenMP.
//   - PIK: link -> load -> emulated syscalls -> OpenMP inside the
//     kernel-mode process.
//   - CCK: NAS model -> AutoMP -> kernel VIRGIL, faster than Linux+OMP
//     serially.

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/interweaving/komp/internal/cck"
	"github.com/interweaving/komp/internal/core"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/nas"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/pik"
	"github.com/interweaving/komp/internal/rtk"
)

// TestRTKStoryEndToEnd: the §3 path. An application main() becomes a
// kernel shell command; OMP_NUM_THREADS comes from kernel env vars; the
// OpenMP program runs in-kernel and computes a verified result.
func TestRTKStoryEndToEnd(t *testing.T) {
	env := core.New(core.Config{Machine: machine.PHI(), Kind: core.RTK, Seed: 9, Threads: 16})
	k := env.Kernel
	k.Setenv("OMP_NUM_THREADS", "16")
	port, err := rtk.NewPort(k, rtk.Options{MaxThreads: 16})
	if err != nil {
		t.Fatal(err)
	}
	var pi float64
	port.RegisterMain("pi", func(tc exec.TC, p *rtk.Port, args []string) error {
		const steps = 200000
		p.Parallel(tc, 0, func(w *omp.Worker) {
			local := 0.0
			w.For(0, steps, omp.ForOpt{Sched: omp.Static}, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					x := (float64(i) + 0.5) / steps
					local += 4 / (1 + x*x)
				}
			})
			total := w.Reduce(omp.ReduceSum, local)
			w.Master(func() { pi = total / steps })
		})
		return nil
	})
	if _, err := k.Layer.Run(func(tc exec.TC) {
		if err := k.RunCommand(tc, "pi"); err != nil {
			t.Error(err)
		}
		port.Close(tc)
	}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi-math.Pi) > 1e-6 {
		t.Fatalf("in-kernel pi = %v", pi)
	}
}

// TestPIKStoryEndToEnd: the §4 path. A "user binary" is linked into the
// image format, loaded by the kernel, inherits the environment through
// the emulated ABI, and runs an OpenMP program whose pool is cloned
// through the emulated clone/futex syscalls' cost domain.
func TestPIKStoryEndToEnd(t *testing.T) {
	var sum atomic.Int64
	pik.RegisterEntry("omp_app", func(tc exec.TC, p *pik.Process, args []string) int {
		threads := 8
		if v, ok := p.Getenv("OMP_NUM_THREADS"); ok && v == "4" {
			threads = 4
		}
		// The unmodified "libomp" running inside the process: same
		// runtime package, kernel-PIK execution layer.
		rt := omp.New(p.K.Layer, omp.Options{MaxThreads: threads, Bind: true})
		rt.Parallel(tc, 0, func(w *omp.Worker) {
			w.ForEach(0, 1000, omp.ForOpt{Sched: omp.Dynamic, Chunk: 16}, func(i int) {
				sum.Add(int64(i))
			})
		})
		rt.Close(tc)
		p.WriteString(tc, "done\n")
		return 0
	})
	env := core.New(core.Config{Machine: machine.PHI(), Kind: core.PIK, Seed: 9, Threads: 8})
	k := env.Kernel
	k.Setenv("OMP_NUM_THREADS", "4")
	img := pik.Link(&pik.Image{Name: "omp-app", Flags: pik.FlagPIE | pik.FlagRedZone,
		Entry: "omp_app", TextBytes: make([]byte, 1<<20), BSSSize: 1 << 20, StackSize: 64 << 10})
	if _, err := k.Layer.Run(func(tc exec.TC) {
		proc, code, err := pik.Run(tc, k, img, []string{"omp-app"})
		if err != nil || code != 0 {
			t.Errorf("pik run: %v code=%d", err, code)
			return
		}
		if !strings.Contains(proc.Stdout.String(), "done") {
			t.Error("program output missing")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 499500 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

// TestCCKStoryEndToEnd: the §5 path. The MG model compiles through
// AutoMP onto kernel VIRGIL and beats the conventional pipeline at the
// same thread count (the Fig. 12 MG row).
func TestCCKStoryEndToEnd(t *testing.T) {
	m := machine.PHI()
	s := nas.SpecByName("MG")
	lin := core.New(core.Config{Machine: m, Kind: core.Linux, Seed: 9, Threads: 16})
	resLin, err := nas.RunModel(lin, s, 16)
	if err != nil {
		t.Fatal(err)
	}
	cckEnv := core.New(core.Config{Machine: m, Kind: core.CCK, Seed: 9, Threads: 16,
		BootImageBytes: s.WorkingSetBytes})
	resCCK, err := nas.RunModel(cckEnv, s, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !(resCCK.Seconds < resLin.Seconds/2) {
		t.Fatalf("CCK MG (%.2fs) must far outrun Linux OpenMP (%.2fs)", resCCK.Seconds, resLin.Seconds)
	}
	// And the compiler must report why: full coverage with fine tasks.
	prog := s.Program(m, 16, nas.PipeAutoMP)
	comp, err := cck.Compile(prog, cck.Options{Workers: 16, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if comp.ParallelCoverage() < 0.99 {
		t.Fatalf("MG AutoMP coverage = %v", comp.ParallelCoverage())
	}
}
