// pikload demonstrates the PIK path end to end (§4): it links a program
// into the multiboot2-style image format, boots the Nautilus-analogue
// kernel, loads the image into a kernel-mode process, and runs it — the
// program talks to the kernel exclusively through the emulated Linux
// syscall ABI (mmap, clone, futex, /proc/self, ...).
//
//	go run ./examples/pikload
package main

import (
	"fmt"
	"os"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/nautilus"
	"github.com/interweaving/komp/internal/pik"
)

func main() {
	// The "application": a user-level program that spawns threads via
	// clone(2), synchronizes with futexes, allocates with mmap, and
	// inspects /proc/self — everything a libomp-linked binary does.
	pik.RegisterEntry("demo_main", func(tc exec.TC, p *pik.Process, args []string) int {
		p.WriteString(tc, fmt.Sprintf("hello from ring 0; args=%v\n", args))

		heap := p.Syscall(tc, pik.SysMmap, 0, 1<<20)
		p.WriteString(tc, fmt.Sprintf("mmap(1MiB) -> %#x\n", heap))

		status, err := p.ReadFile(tc, "/proc/self/status")
		if err != nil {
			return 1
		}
		p.WriteString(tc, "/proc/self/status:\n"+status)

		// Fork-join over clone + futex.
		const workers = 4
		doneAddr := int64(0x9000)
		done := p.FutexWord(doneAddr)
		var handles []exec.Handle
		for i := 0; i < workers; i++ {
			i := i
			handles = append(handles, p.Clone(tc, 1+i, func(wtc exec.TC, tid int) {
				wtc.Charge(50_000) // pretend work
				if done.Add(1) == workers {
					p.FutexWake(wtc, doneAddr, -1)
				}
				_ = i
			}))
		}
		for done.Load() != workers {
			p.FutexWait(tc, doneAddr, done.Load())
		}
		for _, h := range handles {
			h.Join(tc)
		}
		p.WriteString(tc, fmt.Sprintf("%d cloned threads joined\n", workers))

		// An unimplemented syscall: the stub answers -ENOSYS and counts
		// it, exactly as §4.3 describes.
		if r := p.Syscall(tc, 16 /* ioctl */); r != -pik.ENOSYS {
			return 1
		}
		return 0
	})

	// nld: link the image (static PIE with a multiboot2-style header).
	img := &pik.Image{
		Name:      "demo",
		Flags:     pik.FlagPIE | pik.FlagRedZone,
		Entry:     "demo_main",
		TextBytes: make([]byte, 256<<10),
		BSSSize:   1 << 20,
		TDATA:     []byte{0xAA, 0xBB},
		TBSSSize:  64,
		StackSize: 128 << 10,
	}
	file := pik.Link(img)
	fmt.Printf("linked %s: %d bytes (header magic %#x, static PIE)\n", img.Name, len(file), pik.HeaderMagic)

	k := nautilus.Boot(nautilus.Config{Machine: machine.PHI(), Seed: 1,
		Costs: exec.Costs{MallocNS: 300, SyscallExtraNS: 130, FutexWaitEntryNS: 80,
			FutexWakeEntryNS: 80, FutexWakeLatencyNS: 400, ThreadSpawnNS: 2000}})
	k.Setenv("OMP_NUM_THREADS", "4")
	fmt.Println("kernel booted; loading image into a kernel-mode process...")

	_, err := k.Layer.Run(func(tc exec.TC) {
		proc, code, err := pik.Run(tc, k, file, []string{"demo", "--fast"})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pikload: %v\n", err)
			return
		}
		fmt.Printf("\n--- process console ---\n%s--- end console ---\n\n", proc.Stdout.String())
		fmt.Printf("exit code %d; syscall activity (num:count): %v\n", code, proc.SyscallNames())
		fmt.Printf("stubbed syscalls answered -ENOSYS: %v\n", proc.StubCalls)
		fmt.Printf("virtual time consumed: %.3f ms\n", float64(tc.Now())/1e6)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pikload: %v\n", err)
		os.Exit(1)
	}
}
