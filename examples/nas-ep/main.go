// nas-ep runs the real NAS EP (embarrassingly parallel) kernel on real
// goroutines at several thread counts and prints the speedup curve plus
// the verification counts — a miniature of the paper's scaling studies,
// on your own machine.
//
//	go run ./examples/nas-ep
package main

import (
	"fmt"
	"runtime"
	"time"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/nas"
	"github.com/interweaving/komp/internal/omp"
)

func main() {
	const m = 22 // 2^22 pairs
	maxThreads := runtime.GOMAXPROCS(0)
	fmt.Printf("NAS EP, 2^%d Gaussian pairs, scaling to %d threads\n\n", m, maxThreads)

	ref := nas.EPSequential(m)
	fmt.Printf("sequential reference: sx=%.6f sy=%.6f\n\n", ref.Sx, ref.Sy)
	fmt.Printf("%8s %10s %9s %8s\n", "threads", "time", "speedup", "verified")

	var t1 float64
	for threads := 1; threads <= maxThreads; threads *= 2 {
		layer := exec.NewRealLayer(threads)
		rt := omp.New(layer, omp.Options{MaxThreads: threads, Bind: true})
		var res nas.EPResult
		start := time.Now()
		layer.Run(func(tc exec.TC) {
			res = nas.EP(tc, rt, m, threads)
			rt.Close(tc)
		})
		secs := time.Since(start).Seconds()
		if threads == 1 {
			t1 = secs
		}
		verified := res.Counts == ref.Counts
		fmt.Printf("%8d %9.3fs %8.2fx %8v\n", threads, secs, t1/secs, verified)
		if !verified {
			fmt.Println("verification FAILED")
			return
		}
	}
}
