// automp demonstrates the CCK compiler (§5): a small OpenMP-annotated
// program is expressed in the IR, AutoMP analyzes and task-parallelizes
// it, and the compiled result runs on the user-level VIRGIL runtime with
// real semantics — then the same program runs through the conventional
// OpenMP pipeline for comparison, showing the latency-aware chunking
// advantage on a skewed loop and the privatization limitation.
//
//	go run ./examples/automp
package main

import (
	"fmt"

	"github.com/interweaving/komp/internal/cck"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/sim"
	"github.com/interweaving/komp/internal/virgil"
)

const n = 4096

func program(out []float64) *cck.Program {
	return &cck.Program{
		Name: "demo",
		Funcs: []*cck.Function{{
			Name: "main",
			Body: []cck.Node{
				&cck.Seq{Name: "init", CostNS: 10_000},
				// A skewed DOALL loop: iteration i costs up to 9x more
				// than iteration 0 (think triangular stencils). OpenMP's
				// blind static partition imbalances it; AutoMP's
				// equal-cost chunks do not.
				&cck.Loop{
					Name: "triangular", N: n, CostNS: 3000, Skew: 0.8,
					Effects: []cck.Effect{{Obj: "out", Mode: cck.Write, Pattern: cck.Disjoint}},
					Pragma:  &cck.Pragma{Kind: cck.PragmaParallelFor, Independent: true},
					Body:    func(i int) { out[i] = float64(i) * 2 },
				},
				// An elementwise consumer: fusable with nothing here (it
				// reads "out" globally for a prefix-max — carried dep).
				&cck.Loop{
					Name: "scan", N: n, CostNS: 200,
					Effects: []cck.Effect{{Obj: "acc", Mode: cck.ReadWrite, Pattern: cck.SharedRW}},
				},
				// A carried-dependence loop with declared stages: AutoMP
				// falls back to HELIX/DSWP instead of serializing.
				&cck.Loop{
					Name: "recurrence", N: n, CostNS: 2200,
					Effects: []cck.Effect{{Obj: "hist", Mode: cck.ReadWrite, Pattern: cck.SharedRW}},
					Stages: []cck.StageSpec{
						{Name: "commit", CostNS: 200, Carried: true},
						{Name: "compute", CostNS: 2000, Carried: false},
					},
				},
				// A loop needing a private scratch array: parallel under
				// OpenMP (private clause), sequential under AutoMP — the
				// paper's documented limitation.
				&cck.Loop{
					Name: "solve", N: n, CostNS: 3000,
					Effects: []cck.Effect{
						{Obj: "out", Mode: cck.ReadWrite, Pattern: cck.Disjoint},
						{Obj: "lhs", Mode: cck.ReadWrite, Pattern: cck.PrivateScratch},
					},
					Pragma: &cck.Pragma{Kind: cck.PragmaParallelFor, Independent: true,
						Private: []string{"lhs"}},
				},
			},
		}},
	}
}

func main() {
	const workers = 8
	costs := exec.Costs{MallocNS: 80, AtomicRMWNS: 20, CacheLineXferNS: 45,
		FutexWaitEntryNS: 100, FutexWakeEntryNS: 100, FutexWakeLatencyNS: 500,
		FutexWakeStaggerNS: 40, ThreadSpawnNS: 3000}

	out := make([]float64, n)
	prog := program(out)

	compiled, err := cck.Compile(prog, cck.Options{Workers: workers, Fuse: true})
	if err != nil {
		panic(err)
	}
	fmt.Print(compiled.Report())
	fmt.Printf("parallel coverage: %.0f%%\n\n", compiled.ParallelCoverage()*100)

	// Run the compiled program on user-level VIRGIL (virtual time).
	layer := exec.NewSimLayer(sim.New(workers, 1), costs)
	u := virgil.NewUser(workers)
	autoNS, err := layer.Run(func(tc exec.TC) {
		u.Start(tc)
		compiled.RunVirgil(tc, u, nil)
		u.Stop(tc)
	})
	if err != nil {
		panic(err)
	}
	for i := range out {
		if out[i] != float64(i)*2 {
			panic("AutoMP execution produced wrong values")
		}
	}
	fmt.Printf("AutoMP on VIRGIL:      %8.2f ms virtual (results verified)\n", float64(autoNS)/1e6)

	// The same program through the conventional OpenMP pipeline.
	layer2 := exec.NewSimLayer(sim.New(workers, 1), costs)
	rt := omp.New(layer2, omp.Options{MaxThreads: workers, Bind: true})
	ompNS, err := layer2.Run(func(tc exec.TC) {
		cck.RunOpenMP(tc, prog, rt, workers, nil)
		rt.Close(tc)
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("conventional OpenMP:   %8.2f ms virtual\n", float64(ompNS)/1e6)
	fmt.Println("\n(the skewed loop favors AutoMP's equal-cost chunks; the private-")
	fmt.Println(" scratch loop favors OpenMP, which honors the private clause)")
}
