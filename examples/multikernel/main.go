// multikernel demonstrates the deployment model of §7: the machine is
// space-partitioned between a Linux-analogue host and a Nautilus
// compartment (Pisces/HVM style). The host runs noisy control-plane
// work; the compartment runs an in-kernel OpenMP job and streams results
// back over a shared-memory ring; then the compartment reboots — at
// process-creation timescales — ready for the next job.
//
//	go run ./examples/multikernel
package main

import (
	"fmt"
	"os"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/multikernel"
	"github.com/interweaving/komp/internal/omp"
)

func main() {
	part, err := multikernel.Boot(multikernel.Config{
		Machine:          machine.PHI(),
		Seed:             11,
		CompartmentCPUs:  16,
		CompartmentBytes: 8 << 30,
		KernelCosts: exec.Costs{ThreadSpawnNS: 2200, FutexWaitEntryNS: 80,
			FutexWakeEntryNS: 80, FutexWakeLatencyNS: 400,
			AtomicRMWNS: 20, CacheLineXferNS: 45, MallocNS: 300},
		BootImageBytes: 64 << 20,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("partition: host CPUs 0-%d (Linux-analogue), compartment CPUs %d-%d (Nautilus)\n",
		len(part.HostCPUs)-1, part.CompCPUs[0], part.CompCPUs[len(part.CompCPUs)-1])

	ring := part.NewRing(8)
	const n = 1 << 16
	_, err = part.HostLayer.Run(func(tc exec.TC) {
		// Data plane: an OpenMP dot-product job inside the compartment.
		h := part.SpawnInCompartment("omp-job", part.CompCPUs[0], func(ktc exec.TC) {
			rt := omp.New(part.Kernel.Layer, omp.Options{MaxThreads: 8, Bind: true})
			var dot float64
			rt.Parallel(ktc, 8, func(w *omp.Worker) {
				local := 0.0
				w.For(0, n, omp.ForOpt{Sched: omp.Static}, func(lo, hi int) {
					w.TC().Charge(int64(hi-lo) * 2) // the multiply-adds
					for i := lo; i < hi; i++ {
						local += float64(i%100) * float64(i%7)
					}
				})
				total := w.Reduce(omp.ReduceSum, local)
				w.Master(func() { dot = total })
			})
			rt.Close(ktc)
			ring.Send(ktc, multikernel.Message{Kind: "dot", Payload: int64(dot)})
			ring.Send(ktc, multikernel.Message{Kind: "eof"})
		})

		// Control plane: the host consumes results while carrying its own
		// (noisy) load.
		for {
			m := ring.Recv(tc)
			if m.Kind == "eof" {
				break
			}
			fmt.Printf("host received %s = %d (virtual t=%.2f ms)\n", m.Kind, m.Payload, float64(tc.Now())/1e6)
		}
		h.Join(tc)

		// Cycle the compartment for the next job.
		bootNS := part.Reboot(tc)
		fmt.Printf("compartment rebooted in %.2f ms (process-creation scale, §7)\n", float64(bootNS)/1e6)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("done; compartment generation %d is live with fresh state\n", part.Reboots)
}
