// Quickstart: komp as an OpenMP-style parallelism library for Go.
//
// It computes a dot product three ways — parallel-for with a reduction,
// dynamic scheduling with a critical section, and explicit tasks — and
// verifies them against the sequential answer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"os"
	"sync/atomic"

	"github.com/interweaving/komp"
)

func main() {
	const n = 1 << 20
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = float64(i%100) / 100
		b[i] = float64(i%7) + 1
	}
	var want float64
	for i := range a {
		want += a[i] * b[i]
	}

	o := komp.New(0) // one worker per core
	defer o.Close()
	fmt.Printf("komp quickstart: dot product of %d elements on %d threads\n", n, o.Threads())

	// 1. The canonical pattern: worksharing loop + reduction.
	var viaReduce float64
	o.Parallel(0, func(w *komp.Worker) {
		local := 0.0
		w.For(0, n, komp.ForOpt{Sched: komp.Static}, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				local += a[i] * b[i]
			}
		})
		total := w.Reduce(komp.ReduceSum, local)
		w.Master(func() { viaReduce = total })
	})
	check("parallel-for + reduce", viaReduce, want)

	// 2. Dynamic schedule with a critical section.
	var viaCritical float64
	o.Parallel(0, func(w *komp.Worker) {
		local := 0.0
		w.For(0, n, komp.ForOpt{Sched: komp.Dynamic, Chunk: 4096, NoWait: true}, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				local += a[i] * b[i]
			}
		})
		w.Critical("dot", func() { viaCritical += local })
		w.Barrier()
	})
	check("dynamic + critical", viaCritical, want)

	// 3. Explicit tasks with work stealing.
	var bits atomic.Uint64
	addFloat := func(v float64) {
		for {
			old := bits.Load()
			next := math.Float64bits(math.Float64frombits(old) + v)
			if bits.CompareAndSwap(old, next) {
				return
			}
		}
	}
	o.Parallel(0, func(w *komp.Worker) {
		w.Master(func() {
			const block = 1 << 15
			for lo := 0; lo < n; lo += block {
				lo := lo
				w.Task(func(*komp.Worker) {
					local := 0.0
					hi := lo + block
					for i := lo; i < hi; i++ {
						local += a[i] * b[i]
					}
					addFloat(local)
				})
			}
		})
		w.Barrier() // task-aware: all tasks complete here
	})
	check("tasks", math.Float64frombits(bits.Load()), want)
}

func check(how string, got, want float64) {
	if math.Abs(got-want) > 1e-6*math.Abs(want) {
		fmt.Printf("%-24s FAILED: %v != %v\n", how, got, want)
		os.Exit(1)
	}
	fmt.Printf("%-24s ok (%.4f)\n", how, got)
}
