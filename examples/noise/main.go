// noise demonstrates the environment mechanics behind the paper's NAS
// results: the same 50 ms parallel compute phase runs under the Linux
// noise model and under Nautilus's steered-interrupt model, showing the
// per-CPU time stolen by housekeeping and the jitter across barriers —
// "lower jitter is one benefit of bringing code into the kernel" (§6.1).
//
//	go run ./examples/noise
package main

import (
	"fmt"

	"github.com/interweaving/komp/internal/core"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/stats"
)

func main() {
	const threads = 16
	const rounds = 40
	const workNS = 2_000_000 // 2 ms of compute per thread per round

	fmt.Printf("%d threads x %d barrier rounds of %.1f ms compute each\n\n",
		threads, rounds, float64(workNS)/1e6)
	fmt.Printf("%-12s %12s %14s %14s\n", "environment", "total(ms)", "mean round(us)", "jitter sd(us)")

	for _, kind := range []core.Kind{core.Linux, core.PIK, core.RTK} {
		env := core.New(core.Config{Machine: machine.PHI(), Kind: kind, Seed: 123, Threads: threads})
		rt := env.OMPRuntime()
		var roundUS []float64
		elapsed, err := env.Layer.Run(func(tc exec.TC) {
			rt.Parallel(tc, threads, func(w *omp.Worker) {
				for r := 0; r < rounds; r++ {
					t0 := w.TC().Now()
					w.TC().Charge(workNS)
					w.Barrier()
					if w.ThreadNum() == 0 {
						roundUS = append(roundUS, float64(w.TC().Now()-t0)/1000)
					}
				}
			})
			rt.Close(tc)
		})
		if err != nil {
			panic(err)
		}
		s := stats.Summarize(roundUS)
		fmt.Printf("%-12s %12.2f %14.1f %14.2f\n",
			kind, float64(elapsed)/1e6, s.Mean, s.StdDev)
	}
	fmt.Println("\nLinux rounds stretch and jitter from housekeeping preemptions;")
	fmt.Println("the in-kernel environments run with steered interrupts and no")
	fmt.Println("competing threads, so rounds are tight and repeatable.")
}
