package komp_test

import (
	"fmt"

	"github.com/interweaving/komp"
)

// The library in one screen: a parallel sum with a worksharing loop and
// a reduction, on real goroutines.
func Example() {
	o := komp.New(4)
	defer o.Close()

	const n = 100000
	var total float64
	o.Parallel(0, func(w *komp.Worker) {
		local := 0.0
		w.For(1, n+1, komp.ForOpt{Sched: komp.Static}, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				local += float64(i)
			}
		})
		sum := w.Reduce(komp.ReduceSum, local)
		w.Master(func() { total = sum })
	})
	fmt.Println(total == n*(n+1)/2)
	// Output: true
}

// The systems laboratory: run a NAS benchmark model under the Linux
// baseline and under RTK (runtime-in-kernel) on the simulated Xeon Phi,
// and observe the paper's speedup. Deterministic: same seed, same
// numbers, on any host.
func Example_environments() {
	m, _ := komp.NewMachine(komp.MachinePHI)

	linux := komp.NewEnvironment(komp.EnvConfig{
		Machine: m, Kind: komp.EnvLinux, Seed: 42, Threads: 8})
	rtk := komp.NewEnvironment(komp.EnvConfig{
		Machine: m, Kind: komp.EnvRTK, Seed: 42, Threads: 8})

	tLinux, _ := komp.RunNAS(linux, "SP", 8)
	tRTK, _ := komp.RunNAS(rtk, "SP", 8)
	fmt.Printf("SP-C on 8 CPUs: RTK is %.1fx faster than Linux\n", tLinux/tRTK)
	// Output: SP-C on 8 CPUs: RTK is 1.6x faster than Linux
}

// Tasks with work stealing: one thread produces, the team consumes, the
// barrier guarantees completion.
func Example_tasks() {
	o := komp.New(4)
	defer o.Close()

	results := make([]int, 16)
	o.Parallel(0, func(w *komp.Worker) {
		w.Master(func() {
			for i := range results {
				i := i
				w.Task(func(*komp.Worker) { results[i] = i * i })
			}
		})
		w.Barrier() // task-aware: all 16 tasks are done here
	})
	fmt.Println(results[3], results[15])
	// Output: 9 225
}

// Task dependences order sibling tasks by the locations they name, and
// a taskgroup waits for all descendants — no manual taskwait chains.
func Example_taskDependences() {
	o := komp.New(4)
	defer o.Close()

	var x, sum int
	o.Parallel(0, func(w *komp.Worker) {
		w.Master(func() {
			w.Taskgroup(func(gw *komp.Worker) {
				gw.TaskWith(komp.TaskOpt{Depend: []komp.Dep{komp.Out(&x)}},
					func(*komp.Worker) { x = 20 })
				gw.TaskWith(komp.TaskOpt{Depend: []komp.Dep{komp.In(&x)}},
					func(*komp.Worker) { sum = x + 1 })
			}) // taskgroup end: both tasks (in dependence order) are done
		})
		w.Barrier()
	})
	fmt.Println(sum)
	// Output: 21
}
