// Command kompbench regenerates the paper's tables and figures (Figure 6
// through Figure 15) on the simulated PHI and 8XEON machines.
//
// Usage:
//
//	kompbench                 # regenerate everything
//	kompbench -figure fig9    # one figure
//	kompbench -quick          # reduced scales/reps for a fast look
//	kompbench -bench BT,EP    # restrict the NAS set
//	kompbench -json out.json  # also write machine-readable records
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/interweaving/komp/internal/bench"
)

func main() {
	figure := flag.String("figure", "", "figure id (fig6..fig15); empty = all")
	ablation := flag.String("ablation", "", "ablation id (ab-firsttouch, ab-pthread, ab-chunk, ab-privatization, ab-boot, barrier, tasking, affinity, faults, cancel, simcore, nested, tenancy, offload); 'all' runs every ablation")
	quick := flag.Bool("quick", false, "reduced scales and repetitions")
	profile := flag.Bool("profile", false, "per-construct profile of every environment (instead of figures)")
	seed := flag.Int64("seed", 42, "simulator seed")
	benches := flag.String("bench", "", "comma-separated NAS subset (e.g. BT,EP)")
	jsonPath := flag.String("json", "", "write machine-readable per-figure records to this file")
	flag.Parse()

	opt := bench.Options{Quick: *quick, Seed: *seed}
	if *benches != "" {
		opt.Benchmarks = strings.Split(*benches, ",")
	}
	if *jsonPath != "" {
		opt.Recorder = &bench.Recorder{}
	}

	if *profile {
		// The profile runs on the simulators: stdout is virtual-time only,
		// a pure function of the seed (bench-smoke diffs two runs).
		if err := bench.ProfileReport(os.Stdout, opt); err != nil {
			fmt.Fprintf(os.Stderr, "kompbench: profile: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var figs []bench.Figure
	switch {
	case *ablation == "all":
		figs = bench.Ablations()
	case *ablation != "":
		f, ok := bench.AblationByID(*ablation)
		if !ok {
			fmt.Fprintf(os.Stderr, "kompbench: unknown ablation %q; available:\n", *ablation)
			for _, f := range bench.Ablations() {
				fmt.Fprintf(os.Stderr, "  %-18s %s\n", f.ID, f.Title)
			}
			os.Exit(2)
		}
		figs = []bench.Figure{f}
	case *figure == "":
		figs = bench.Figures()
	default:
		f, ok := bench.ByID(*figure)
		if !ok {
			fmt.Fprintf(os.Stderr, "kompbench: unknown figure %q; available:\n", *figure)
			for _, f := range bench.Figures() {
				fmt.Fprintf(os.Stderr, "  %-6s %s\n", f.ID, f.Title)
			}
			os.Exit(2)
		}
		figs = []bench.Figure{f}
	}

	for i, f := range figs {
		if i > 0 {
			fmt.Println()
			fmt.Println(strings.Repeat("=", 78))
			fmt.Println()
		}
		start := time.Now()
		if err := f.Run(os.Stdout, opt); err != nil {
			fmt.Fprintf(os.Stderr, "kompbench: %s: %v\n", f.ID, err)
			os.Exit(1)
		}
		// Wall-clock timing goes to stderr so stdout is a pure function of
		// the seed (fault runs are diffed byte-for-byte across runs).
		fmt.Fprintf(os.Stderr, "[%s regenerated in %.1fs]\n", f.ID, time.Since(start).Seconds())
	}

	if *jsonPath != "" {
		out, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kompbench: %v\n", err)
			os.Exit(1)
		}
		if err := opt.Recorder.WriteJSON(out); err != nil {
			fmt.Fprintf(os.Stderr, "kompbench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		if err := out.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "kompbench: closing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[%d records written to %s]\n", len(opt.Recorder.Records), *jsonPath)
	}
}
