// Command cckc is the CCK compiler driver: it runs the AutoMP middle-end
// (dependence analysis, fusion, latency-aware chunking) on a NAS
// benchmark's IR and prints the compilation report — which loops became
// tasks, which stayed sequential and why, and the resulting parallel
// coverage (§5, §6.2).
//
// Usage:
//
//	cckc -bench IS                 # the no-parallelism extreme case
//	cckc -bench BT -workers 64
//	cckc -bench BT -privatization  # the future-work extension knob
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/interweaving/komp/internal/cck"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/nas"
)

func main() {
	benchName := flag.String("bench", "BT", "NAS benchmark (BT,FT,EP,MG,SP,LU,CG,IS)")
	workers := flag.Int("workers", 64, "VIRGIL worker count the chunker targets")
	machineName := flag.String("machine", "PHI", "PHI or 8XEON")
	priv := flag.Bool("privatization", false, "exploit OpenMP privatization directives (the extension of §6.2)")
	fuse := flag.Bool("fuse", true, "enable the loop-fusion pass")
	full := flag.Bool("full", false, "print the per-region report for all timesteps (default: first timestep only)")
	flag.Parse()

	s := nas.SpecByName(strings.ToUpper(*benchName))
	if s == nil {
		fmt.Fprintf(os.Stderr, "cckc: unknown benchmark %q\n", *benchName)
		os.Exit(2)
	}
	var m *machine.Machine
	if strings.ToUpper(*machineName) == "8XEON" {
		m = machine.XEON8()
	} else {
		m = machine.PHI()
	}

	prog := s.Program(m, *workers, nas.PipeAutoMP)
	compiled, err := cck.Compile(prog, cck.Options{
		Workers:              *workers,
		Fuse:                 *fuse,
		ExploitPrivatization: *priv,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cckc: %v\n", err)
		os.Exit(1)
	}

	report := compiled.Report()
	if !*full {
		// Trim to the preamble plus the first timestep's regions.
		lines := strings.Split(report, "\n")
		var out []string
		for _, l := range lines {
			if strings.Contains(l, "_t001") {
				out = append(out, fmt.Sprintf("  ... (%d more timesteps)", s.Steps-1))
				break
			}
			out = append(out, l)
		}
		report = strings.Join(out, "\n")
	}
	fmt.Println(report)
	fmt.Printf("\nparallel coverage: %.1f%% of estimated cost\n", compiled.ParallelCoverage()*100)
	if seqs := compiled.SequentialLoops(); len(seqs) > 0 {
		fmt.Printf("sequential loops: %d (first: %s)\n", len(seqs), seqs[0])
	} else {
		fmt.Println("sequential loops: none")
	}
}
