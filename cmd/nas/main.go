// Command nas runs the real NAS computational kernels (EP, CG, MG, FT,
// IS, and the compact BT/SP/LU variants) on real goroutines through the
// OpenMP runtime, reporting wall-clock time, speedup, and verification.
//
// Usage:
//
//	nas                      # run everything at a small size
//	nas -bench ep -threads 8 -size 20
//	nas -bench cg -threads 4
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/nas"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/trace"
)

type kernel struct {
	name string
	// run executes the kernel and returns a verification string.
	run func(tc exec.TC, rt *omp.Runtime, threads, size int) string
}

func kernels() []kernel {
	return []kernel{
		{"ep", func(tc exec.TC, rt *omp.Runtime, threads, size int) string {
			res := nas.EP(tc, rt, uint(size), threads)
			return fmt.Sprintf("pairs=2^%d sx=%.6f sy=%.6f counts=%v", size, res.Sx, res.Sy, res.Counts)
		}},
		{"cg", func(tc exec.TC, rt *omp.Runtime, threads, size int) string {
			a := nas.MakeSparse(1<<size, 8, 20)
			res := nas.CG(tc, rt, a, 4, 15, 10, threads)
			return fmt.Sprintf("n=%d zeta=%.10f rnorm=%.2e", a.N, res.Zeta, res.RNorm)
		}},
		{"mg", func(tc exec.TC, rt *omp.Runtime, threads, size int) string {
			n := 1 << (size / 4)
			if n < 16 {
				n = 16
			}
			res := nas.MG(tc, rt, n, 4, threads)
			return fmt.Sprintf("grid=%d^3 cycles=%d rnorm=%.3e", n, res.Cycles, res.RNorm)
		}},
		{"ft", func(tc exec.TC, rt *omp.Runtime, threads, size int) string {
			n := 1 << (size / 5)
			if n < 8 {
				n = 8
			}
			res := nas.FT(tc, rt, n, 4, threads)
			last := res.Checksums[len(res.Checksums)-1]
			return fmt.Sprintf("grid=%d^3 iter=4 checksum=%.6f%+.6fi", n, real(last), imag(last))
		}},
		{"is", func(tc exec.TC, rt *omp.Runtime, threads, size int) string {
			res := nas.IS(tc, rt, 1<<size, 1<<10, threads)
			return fmt.Sprintf("keys=2^%d sorted=%v ranksum=%d", size, res.Sorted, res.RankSum)
		}},
		{"bt", func(tc exec.TC, rt *omp.Runtime, threads, size int) string {
			n := size
			if n < 8 {
				n = 8
			}
			res := nas.BTCompact(tc, rt, n, 4, threads)
			return fmt.Sprintf("grid=%d^3 steps=%d max=%.6f sum=%.6f", n, res.Steps, res.MaxAbs, res.Sum)
		}},
		{"sp", func(tc exec.TC, rt *omp.Runtime, threads, size int) string {
			n := size
			if n < 8 {
				n = 8
			}
			res := nas.SPCompact(tc, rt, n, 4, threads)
			return fmt.Sprintf("grid=%d^3 steps=%d max=%.6f sum=%.6f", n, res.Steps, res.MaxAbs, res.Sum)
		}},
		{"btblock", func(tc exec.TC, rt *omp.Runtime, threads, size int) string {
			n := size / 2
			if n < 6 {
				n = 6
			}
			res := nas.BTBlock(tc, rt, n, 3, threads)
			return fmt.Sprintf("grid=%d^3 3x3-block ADI steps=%d max=%.6f sum=%.6f", n, res.Steps, res.MaxAbs, res.Sum)
		}},
		{"lu", func(tc exec.TC, rt *omp.Runtime, threads, size int) string {
			n := size
			if n < 8 {
				n = 8
			}
			res := nas.LUCompactRun(tc, rt, n, 12, 1.3, threads)
			return fmt.Sprintf("grid=%d^3 ssor=%d rnorm %.3e -> %.3e", n, res.Iters, res.RNorm0, res.RNorm)
		}},
	}
}

func main() {
	benchName := flag.String("bench", "", "kernel (ep,cg,mg,ft,is,bt,btblock,sp,lu); empty = all")
	threads := flag.Int("threads", runtime.GOMAXPROCS(0), "thread count")
	size := flag.Int("size", 16, "problem size exponent / grid edge")
	traceFile := flag.String("trace", "", "write a Chrome trace (chrome://tracing) of the run")
	flag.Parse()
	var tracer *trace.Tracer
	if *traceFile != "" {
		tracer = trace.New()
	}

	sel := kernels()
	if *benchName != "" {
		sel = nil
		for _, k := range kernels() {
			if k.name == strings.ToLower(*benchName) {
				sel = []kernel{k}
			}
		}
		if sel == nil {
			fmt.Fprintf(os.Stderr, "nas: unknown kernel %q\n", *benchName)
			os.Exit(2)
		}
	}

	for _, k := range sel {
		layer := exec.NewRealLayer(*threads)
		rt := omp.New(layer, omp.Options{MaxThreads: *threads, Bind: true, Tracer: tracer})
		var verify string
		start := time.Now()
		_, err := layer.Run(func(tc exec.TC) {
			verify = k.run(tc, rt, *threads, *size)
			rt.Close(tc)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "nas: %s: %v\n", k.name, err)
			os.Exit(1)
		}
		fmt.Printf("%-4s %8.3fs on %d threads   %s\n", k.name, time.Since(start).Seconds(), *threads, verify)
	}
	if tracer != nil {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nas: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := tracer.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "nas: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace with %d events written to %s\n", tracer.Len(), *traceFile)
	}
}
