// Command nkshell boots the Nautilus-analogue kernel and drops into its
// shell — the RTK experience of §3.1: OpenMP applications whose main()
// has become a kernel shell command, controlled through kernel
// environment variables.
//
// Usage:
//
//	nkshell                         # run the demo script
//	nkshell 'setenv OMP_NUM_THREADS 8' 'ep.C' 'bt.B'
//
// Built-in commands: help, env, setenv K V, sysconf, commands, plus one
// command per NAS benchmark model (bt.B, ft.B, ep.C, mg.C, sp.C, lu.C,
// cg.C, is.C) that runs the benchmark in-kernel and reports its virtual
// run time.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"github.com/interweaving/komp/internal/cck"
	"github.com/interweaving/komp/internal/core"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/nas"
	"github.com/interweaving/komp/internal/nautilus"
)

func main() {
	script := os.Args[1:]
	interactive := false
	if len(script) == 1 && script[0] == "-i" {
		interactive = true
		script = nil
	}
	if len(script) == 0 && !interactive {
		script = []string{
			"help",
			"sysconf",
			"setenv OMP_NUM_THREADS 32",
			"env",
			"ep.C",
			"setenv OMP_NUM_THREADS 64",
			"ep.C",
			"bt.B",
		}
	}

	m := machine.PHI()
	env := core.New(core.Config{Machine: m, Kind: core.RTK, Seed: 7, Threads: m.NumCPUs()})
	k := env.Kernel
	fmt.Printf("nautilus-analogue kernel booted: %s, %d CPUs, %d NUMA zone(s), %s pages\n",
		m.Name, m.NumCPUs(), len(m.Zones), pageName(env.PageSize))

	registerBuiltins(k)
	registerNAS(k, env)

	_, err := k.Layer.Run(func(tc exec.TC) {
		if interactive {
			fmt.Println("interactive shell; 'help' lists commands, EOF exits")
			sc := bufio.NewScanner(os.Stdin)
			for {
				fmt.Print("nk> ")
				if !sc.Scan() {
					fmt.Println()
					return
				}
				if err := k.RunCommand(tc, sc.Text()); err != nil {
					fmt.Printf("error: %v\n", err)
				}
			}
		}
		for _, line := range script {
			fmt.Printf("nk> %s\n", line)
			if err := k.RunCommand(tc, line); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		}
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "nkshell: %v\n", err)
		os.Exit(1)
	}
}

func pageName(sz int64) string {
	switch {
	case sz >= 1<<30:
		return fmt.Sprintf("%dGiB", sz>>30)
	case sz >= 1<<20:
		return fmt.Sprintf("%dMiB", sz>>20)
	default:
		return fmt.Sprintf("%dKiB", sz>>10)
	}
}

func registerBuiltins(k *nautilus.Kernel) {
	k.RegisterCommand("help", func(tc exec.TC, k *nautilus.Kernel, args []string) error {
		fmt.Printf("commands: %s\n", strings.Join(k.Commands(), " "))
		return nil
	})
	k.RegisterCommand("env", func(tc exec.TC, k *nautilus.Kernel, args []string) error {
		for _, kv := range k.Environ() {
			fmt.Println(kv)
		}
		return nil
	})
	k.RegisterCommand("setenv", func(tc exec.TC, k *nautilus.Kernel, args []string) error {
		if len(args) != 2 {
			return fmt.Errorf("usage: setenv KEY VALUE")
		}
		k.Setenv(args[0], args[1])
		return nil
	})
	k.RegisterCommand("sysconf", func(tc exec.TC, k *nautilus.Kernel, args []string) error {
		for _, key := range []string{nautilus.ScNProcessorsOnln, nautilus.ScPageSize, nautilus.ScClkTck} {
			v, err := k.Sysconf(key)
			if err != nil {
				return err
			}
			fmt.Printf("%s = %d\n", key, v)
		}
		return nil
	})
	k.RegisterCommand("commands", func(tc exec.TC, k *nautilus.Kernel, args []string) error {
		fmt.Println(strings.Join(k.Commands(), "\n"))
		return nil
	})
}

// registerNAS converts each NAS benchmark model's main() into a shell
// command, as RTK does (§3.1). The commands run the structural model on
// the in-kernel OpenMP runtime and print virtual time.
func registerNAS(k *nautilus.Kernel, env *core.Env) {
	for _, s := range nas.Specs() {
		s := s
		name := strings.ToLower(s.Name) + "." + s.Class
		k.RegisterCommand(name, func(tc exec.TC, k *nautilus.Kernel, args []string) error {
			threads := k.ParseEnvInt("OMP_NUM_THREADS", k.Machine.NumCPUs())
			if threads > k.Machine.NumCPUs() {
				threads = k.Machine.NumCPUs()
			}
			prog := s.Program(k.Machine, threads, nas.PipeOpenMP)
			rt := env.OMPRuntime()
			t0 := tc.Now()
			cck.RunOpenMP(tc, prog, rt, threads, env.Scale(0))
			rt.Close(tc)
			fmt.Printf("%s: %d threads, %.2f virtual seconds\n",
				name, threads, float64(tc.Now()-t0)/1e9)
			return nil
		})
	}
}
