// Command epcc runs the EPCC OpenMP microbenchmark suites (ARRAY,
// SCHEDULE, SYNCH, TASK) under one of the simulated execution
// environments and prints per-directive overheads.
//
// Usage:
//
//	epcc -machine PHI -env rtk -threads 64
//	epcc -machine 8XEON -env linux -suite SYNCH -threads 192
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"runtime"

	"github.com/interweaving/komp/internal/core"
	"github.com/interweaving/komp/internal/epcc"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/omp"
)

func main() {
	machineName := flag.String("machine", "PHI", "PHI or 8XEON")
	envName := flag.String("env", "linux", "linux, rtk, or pik")
	threads := flag.Int("threads", 0, "team size (0 = all CPUs)")
	suite := flag.String("suite", "", "one suite (ARRAY/SCHEDULE/SYNCH/TASK); empty = all")
	outer := flag.Int("reps", 7, "outer repetitions")
	seed := flag.Int64("seed", 42, "simulator seed")
	real := flag.Bool("real", false, "run on real goroutines (measure this host) instead of the simulator")
	flag.Parse()

	var m *machine.Machine
	switch strings.ToUpper(*machineName) {
	case "PHI":
		m = machine.PHI()
	case "8XEON":
		m = machine.XEON8()
	default:
		fmt.Fprintf(os.Stderr, "epcc: unknown machine %q\n", *machineName)
		os.Exit(2)
	}
	var kind core.Kind
	switch strings.ToLower(*envName) {
	case "linux":
		kind = core.Linux
	case "rtk":
		kind = core.RTK
	case "pik":
		kind = core.PIK
	default:
		fmt.Fprintf(os.Stderr, "epcc: unknown environment %q (CCK has no OpenMP runtime to measure)\n", *envName)
		os.Exit(2)
	}
	n := *threads
	if n <= 0 {
		n = m.NumCPUs()
	}
	suites := epcc.Suites()
	if *suite != "" {
		suites = []string{strings.ToUpper(*suite)}
	}

	var layer exec.Layer
	var rt *omp.Runtime
	if *real {
		n = *threads
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		layer = exec.NewRealLayer(n)
		rt = omp.New(layer, omp.Options{MaxThreads: n, Bind: true})
		fmt.Printf("EPCC on this host (real goroutines), %d threads\n", n)
	} else {
		env := core.New(core.Config{Machine: m, Kind: kind, Seed: *seed, Threads: n})
		layer = env.Layer
		rt = env.OMPRuntime()
		fmt.Printf("EPCC on %s, %s environment, %d threads\n", m.Name, kind, n)
	}
	cfg := epcc.Defaults(n)
	cfg.OuterReps = *outer

	var failed error
	_, err := layer.Run(func(tc exec.TC) {
		defer rt.Close(tc)
		for _, s := range suites {
			rs, err := epcc.Run(tc, rt, s, cfg)
			if err != nil {
				failed = err
				return
			}
			fmt.Printf("\n(%s)\n", s)
			for _, r := range rs {
				fmt.Println(r)
			}
		}
	})
	if err == nil {
		err = failed
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "epcc: %v\n", err)
		os.Exit(1)
	}
}
