# Tier-1 verification recipe (see ROADMAP.md). The -race pass covers the
# packages that run real goroutines under the real execution layer.
RACE_PKGS = ./internal/omp/ ./internal/exec/ ./internal/mpi/

.PHONY: verify build test vet race figures

verify: build vet test race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race $(RACE_PKGS)

figures:
	go run ./cmd/kompbench -quick
