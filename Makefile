# Tier-1 verification recipe (see ROADMAP.md). The -race pass covers the
# packages that run real goroutines under the real execution layer.
RACE_PKGS = ./internal/omp/ ./internal/exec/ ./internal/mpi/

.PHONY: verify build test vet race figures bench-smoke

verify: build vet test race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race $(RACE_PKGS)

figures:
	go run ./cmd/kompbench -quick

# bench-smoke runs the EPCC figures and the barrier-topology ablation
# twice at -quick scale and diffs the outputs byte-for-byte: stdout must
# be a pure function of the seed (simulator determinism). Not part of
# `verify` (it costs a couple of builds) but documented next to it in
# ROADMAP.md; run it when touching the runtime's synchronization paths.
bench-smoke:
	@mkdir -p /tmp/komp-bench-smoke
	@for run in 1 2; do \
		( go run ./cmd/kompbench -quick -figure fig7 && \
		  go run ./cmd/kompbench -quick -figure fig13 && \
		  go run ./cmd/kompbench -quick -ablation barrier ) \
		  > /tmp/komp-bench-smoke/run$$run.txt 2>/dev/null || exit 1; \
	done
	@cmp /tmp/komp-bench-smoke/run1.txt /tmp/komp-bench-smoke/run2.txt && \
		echo "bench-smoke: two runs byte-identical"
