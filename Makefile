# Tier-1 verification recipe (see ROADMAP.md). The -race pass covers the
# packages that run real goroutines under the real execution layer.
RACE_PKGS = ./internal/omp/ ./internal/exec/ ./internal/mpi/ ./internal/tenancy/ ./internal/device/

.PHONY: verify build test vet staticcheck race figures bench-smoke trace-smoke

verify: build vet staticcheck test race

build:
	go build ./...

vet:
	go vet ./...

# staticcheck runs when the tool is on PATH (CI installs it; a local
# checkout without it still gets the full verify, minus this pass).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	go test ./...

race:
	go test -race $(RACE_PKGS)

figures:
	go run ./cmd/kompbench -quick

# bench-smoke runs the EPCC figures, the barrier-topology, tasking and
# affinity ablations, and the per-construct profile twice at -quick scale and
# diffs the outputs byte-for-byte: stdout must be a pure function of the
# seed (simulator determinism). Not part of `verify` (it costs a couple
# of builds) but documented next to it in ROADMAP.md; run it when
# touching the runtime's synchronization paths or the instrumentation
# spine.
bench-smoke:
	@mkdir -p /tmp/komp-bench-smoke
	@for run in 1 2; do \
		( go run ./cmd/kompbench -quick -figure fig7 && \
		  go run ./cmd/kompbench -quick -figure fig13 && \
		  go run ./cmd/kompbench -quick -ablation barrier && \
		  go run ./cmd/kompbench -quick -ablation tasking && \
		  go run ./cmd/kompbench -quick -ablation affinity && \
		  go run ./cmd/kompbench -quick -ablation cancel && \
		  go run ./cmd/kompbench -quick -ablation simcore && \
		  go run ./cmd/kompbench -quick -ablation nested && \
		  go run ./cmd/kompbench -quick -ablation tenancy && \
		  go run ./cmd/kompbench -quick -ablation offload && \
		  go run ./cmd/kompbench -quick -profile ) \
		  > /tmp/komp-bench-smoke/run$$run.txt 2>/dev/null || exit 1; \
	done
	@cmp /tmp/komp-bench-smoke/run1.txt /tmp/komp-bench-smoke/run2.txt && \
		echo "bench-smoke: two runs byte-identical"

# trace-smoke re-renders the synthetic spine stream through the Chrome
# trace emitter and compares it byte-for-byte against the checked-in
# golden file (internal/trace/testdata/chrome_trace.json). Regenerate the
# golden after an intentional format change with:
#   go test ./internal/trace/ -run Golden -update
trace-smoke:
	@go test ./internal/trace/ -run TestGoldenChromeTrace -count=1 && \
		echo "trace-smoke: trace JSON matches golden file"
