package multikernel

import (
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/pik"
)

func testConfig() Config {
	return Config{
		Machine:          machine.PHI(),
		Seed:             5,
		CompartmentCPUs:  16,
		CompartmentBytes: 8 << 30,
		KernelCosts: exec.Costs{ThreadSpawnNS: 2200, FutexWaitEntryNS: 80,
			FutexWakeEntryNS: 80, FutexWakeLatencyNS: 400, MallocNS: 300},
		BootImageBytes: 64 << 20,
	}
}

func TestPartitionSplitsCPUs(t *testing.T) {
	p, err := Boot(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.HostCPUs) != 48 || len(p.CompCPUs) != 16 {
		t.Fatalf("split = %d/%d", len(p.HostCPUs), len(p.CompCPUs))
	}
	if p.Kernel.NumCPUs() != 16 {
		t.Fatalf("compartment kernel sees %d CPUs", p.Kernel.NumCPUs())
	}
	if !p.Kernel.OwnsCPU(63) || p.Kernel.OwnsCPU(0) {
		t.Fatal("CPU ownership wrong")
	}
	if _, err := Boot(Config{Machine: machine.PHI(), CompartmentCPUs: 64}); err == nil {
		t.Fatal("compartment must not swallow the whole machine")
	}
}

func TestCompartmentMemoryBudget(t *testing.T) {
	p, err := Boot(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// PHI has one DRAM zone: the compartment's buddy must be capped at
	// the 8 GiB budget, not the 96 GiB zone.
	b := p.Kernel.Buddies[0]
	if b.Size() > 8<<30 {
		t.Fatalf("compartment allocator spans %d bytes, budget is 8GiB", b.Size())
	}
	_, err = p.HostLayer.Run(func(tc exec.TC) {
		h := p.SpawnInCompartment("alloc", 60, func(ktc exec.TC) {
			if _, err := p.Kernel.KAlloc(ktc, "too-big", 16<<30, 60); err == nil {
				t.Error("allocation beyond the compartment budget must fail")
			}
			if _, err := p.Kernel.KAlloc(ktc, "fits", 1<<30, 60); err != nil {
				t.Errorf("in-budget allocation failed: %v", err)
			}
		})
		h.Join(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRebootIsProcessCreationScale(t *testing.T) {
	p, err := Boot(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var bootNS int64
	_, err = p.HostLayer.Run(func(tc exec.TC) {
		bootNS = p.Reboot(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	// "on the order of milliseconds" (§7): single-digit ms for a 16-CPU
	// compartment with a 64 MiB image.
	if bootNS < 1_000_000 || bootNS > 20_000_000 {
		t.Fatalf("compartment reboot = %.2f ms, want single-digit ms", float64(bootNS)/1e6)
	}
	if p.Reboots != 1 || p.Kernel == nil {
		t.Fatal("reboot bookkeeping wrong")
	}
	// The fresh kernel is genuinely fresh: no shell commands, no threads.
	if len(p.Kernel.Commands()) != 0 {
		t.Fatal("rebooted kernel kept stale state")
	}
}

func TestCrossKernelRing(t *testing.T) {
	p, err := Boot(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ring := p.NewRing(4)
	var got []int64
	_, err = p.HostLayer.Run(func(tc exec.TC) {
		// Compartment side: data-plane worker computes and sends results.
		h := p.SpawnInCompartment("producer", 56, func(ktc exec.TC) {
			for i := int64(0); i < 20; i++ {
				ktc.Charge(5_000) // compute
				ring.Send(ktc, Message{Kind: "result", Payload: i * i})
			}
			ring.Send(ktc, Message{Kind: "eof"})
		})
		// Host side: control plane consumes.
		for {
			m := ring.Recv(tc)
			if m.Kind == "eof" {
				break
			}
			got = append(got, m.Payload)
		}
		h.Join(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("received %d messages", len(got))
	}
	for i, v := range got {
		if v != int64(i*i) {
			t.Fatalf("message %d = %d (order or payload corrupted)", i, v)
		}
	}
	if ring.Len() != 0 {
		t.Fatal("ring not drained")
	}
}

func TestCompartmentIsolationFromHostNoise(t *testing.T) {
	p, err := Boot(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var hostNS, compNS int64
	_, err = p.HostLayer.Run(func(tc exec.TC) {
		hHost := tc.Spawn("host-work", 4, func(htc exec.TC) {
			t0 := htc.Now()
			htc.Charge(100_000_000)
			hostNS = htc.Now() - t0
		})
		hComp := p.SpawnInCompartment("comp-work", 60, func(ktc exec.TC) {
			t0 := ktc.Now()
			ktc.Charge(100_000_000)
			compNS = ktc.Now() - t0
		})
		hHost.Join(tc)
		hComp.Join(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if compNS >= hostNS {
		t.Fatalf("compartment compute (%d) must be quieter than host (%d)", compNS, hostNS)
	}
}

func TestPIKLoadsInsideCompartment(t *testing.T) {
	// The full §7 story: a PIK executable runs inside the compartment
	// while Linux-analogue activity owns the rest of the machine.
	pik.RegisterEntry("mk_main", func(tc exec.TC, proc *pik.Process, args []string) int {
		proc.WriteString(tc, "compartmentalized\n")
		return 0
	})
	p, err := Boot(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	img := pik.Link(&pik.Image{Name: "mk", Flags: pik.FlagPIE, Entry: "mk_main",
		TextBytes: make([]byte, 4096), StackSize: 4096})
	_, err = p.HostLayer.Run(func(tc exec.TC) {
		h := p.SpawnInCompartment("pik", 48, func(ktc exec.TC) {
			proc, code, err := pik.Run(ktc, p.Kernel, img, nil)
			if err != nil || code != 0 {
				t.Errorf("pik in compartment: %v code=%d", err, code)
				return
			}
			if proc.Stdout.String() != "compartmentalized\n" {
				t.Errorf("stdout = %q", proc.Stdout.String())
			}
		})
		h.Join(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
}
