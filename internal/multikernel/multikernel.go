// Package multikernel implements the deployment model §7 describes for
// running OpenMP-in-the-kernel alongside a general-purpose OS: the
// machine is space-partitioned between a Linux-analogue "host" side and
// a Nautilus compartment (the Pisces co-kernel / HVM style), with
//
//   - disjoint CPU sets carrying each side's own noise model,
//   - a memory budget carving the compartment's zones out of the host's,
//   - a shared-memory message ring for cross-kernel communication (the
//     "control plane in Linux, data plane in the specialized kernel"
//     split), and
//   - compartment reboot "at timescales similar to a process creation
//     in Linux" — fast enough to cycle the specialized kernel per job.
package multikernel

import (
	"fmt"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/linuxsim"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/nautilus"
	"github.com/interweaving/komp/internal/sim"
)

// Config describes the partition.
type Config struct {
	Machine *machine.Machine
	Seed    int64
	// CompartmentCPUs is how many CPUs (from the top of the machine) the
	// Nautilus compartment owns.
	CompartmentCPUs int
	// CompartmentBytes is the memory budget carved for the compartment
	// (spread over the zones its CPUs live in).
	CompartmentBytes int64
	// KernelCosts is the compartment's primitive cost table.
	KernelCosts exec.Costs
	// BootImageBytes of the compartment kernel image.
	BootImageBytes int64
}

// Partition is a booted multi-kernel configuration.
type Partition struct {
	Machine *machine.Machine
	Sim     *sim.Sim
	// HostLayer runs on the host (Linux-analogue) CPUs.
	HostLayer *exec.SimLayer
	// HostCPUs / CompCPUs are the two CPU sets.
	HostCPUs, CompCPUs []int
	// Kernel is the live compartment (nil between Shutdown and Boot).
	Kernel *nautilus.Kernel

	cfg     Config
	Reboots int
	// Crashes counts hard compartment failures injected via Crash.
	Crashes int

	crashed bool // compartment is down due to a crash (vs clean Shutdown)
}

// Boot builds the partition: a shared simulator, Linux noise on the host
// CPUs, and a freshly booted compartment on the rest.
func Boot(cfg Config) (*Partition, error) {
	m := cfg.Machine
	n := m.NumCPUs()
	if cfg.CompartmentCPUs <= 0 || cfg.CompartmentCPUs >= n {
		return nil, fmt.Errorf("multikernel: compartment of %d CPUs on a %d-CPU machine", cfg.CompartmentCPUs, n)
	}
	s := sim.New(n, cfg.Seed)
	s.SetNoise(linuxsim.NewNoise(m)) // host noise everywhere first
	p := &Partition{
		Machine:   m,
		Sim:       s,
		HostLayer: exec.NewSimLayer(s, linuxsim.Costs(m)),
		cfg:       cfg,
	}
	for c := 0; c < n-cfg.CompartmentCPUs; c++ {
		p.HostCPUs = append(p.HostCPUs, c)
	}
	for c := n - cfg.CompartmentCPUs; c < n; c++ {
		p.CompCPUs = append(p.CompCPUs, c)
	}
	p.bootCompartment()
	return p, nil
}

// zoneBudget spreads the compartment's memory budget over the zones its
// CPUs touch.
func (p *Partition) zoneBudget() map[int]int64 {
	zones := map[int]bool{}
	for _, c := range p.CompCPUs {
		zones[p.Machine.ZoneOf(c)] = true
	}
	budget := map[int]int64{}
	if p.cfg.CompartmentBytes <= 0 {
		return budget
	}
	per := p.cfg.CompartmentBytes / int64(len(zones))
	for z := range zones {
		budget[z] = per
	}
	return budget
}

func (p *Partition) bootCompartment() {
	p.Kernel = nautilus.Boot(nautilus.Config{
		Machine:        p.Machine,
		Seed:           p.cfg.Seed + int64(p.Reboots),
		Sim:            p.Sim,
		CPUs:           p.CompCPUs,
		Costs:          p.cfg.KernelCosts,
		ZoneBudget:     p.zoneBudget(),
		BootImageBytes: p.cfg.BootImageBytes,
	})
}

// Shutdown tears the compartment down (the host side keeps running).
// It is idempotent: shutting down an already-down compartment is a no-op.
func (p *Partition) Shutdown() {
	p.Kernel = nil
	p.crashed = false
	// The host reclaims nothing here: the partition's point is that the
	// compartment's resources stay reserved for its next incarnation.
}

// Crash models a hard compartment failure (panic, machine check, fault
// injection): every proc running on a compartment CPU is killed with no
// chance to clean up, and the kernel state is gone. The host side keeps
// running and can detect the crash (Crashed) and Reboot. Safe to call
// from a scheduler callback (e.g. a fault-plan event).
func (p *Partition) Crash() {
	if p.Kernel == nil {
		return
	}
	comp := make(map[int]bool, len(p.CompCPUs))
	for _, c := range p.CompCPUs {
		comp[c] = true
	}
	for _, pr := range p.Sim.Procs() {
		if comp[pr.CPUID()] {
			p.Sim.Kill(pr)
		}
	}
	p.Kernel = nil
	p.crashed = true
	p.Crashes++
}

// Crashed reports whether the compartment is down due to a crash (as
// opposed to a clean Shutdown or a live kernel).
func (p *Partition) Crashed() bool { return p.crashed }

// Reboot cycles the compartment: shutdown, charge the modeled boot time
// on the controlling host thread, boot fresh kernel state. It returns
// the virtual boot nanoseconds — the quantity §7 compares to Linux
// process creation. Rebooting a crashed or already-shut-down compartment
// is fine: the fresh kernel re-carves the same budget (never a
// double-free, since zone budgets are rebuilt from the config each time).
func (p *Partition) Reboot(tc exec.TC) int64 {
	p.Shutdown()
	p.Reboots++
	p.bootCompartment()
	// Snapshot before Charge: charging yields to the scheduler, and a
	// crash event may tear the fresh kernel down mid-boot.
	bootNS := p.Kernel.BootNS
	tc.Charge(bootNS)
	return bootNS
}

// RestartPolicy bounds RunSupervised's recovery loop.
type RestartPolicy struct {
	// MaxRestarts is how many reboot-and-rerun cycles are allowed after
	// the initial attempt.
	MaxRestarts int
	// PollNS is the supervisor's liveness poll period (host-side virtual
	// time between checks). Zero selects 100 µs.
	PollNS int64
}

// SupervisedResult reports what RunSupervised had to do.
type SupervisedResult struct {
	Restarts int   // reboot-and-rerun cycles taken
	BootNS   int64 // total virtual time spent rebooting
}

// RunSupervised runs body inside the compartment under host-side
// supervision: the calling host thread polls for compartment death and,
// on a crash, reboots the compartment and re-runs body from the start
// (the job's state died with the kernel, so rerun-from-scratch is the
// only sound recovery), up to pol.MaxRestarts times. §7's millisecond
// reboot is what makes this loop cheap enough to be a real availability
// strategy. tc must be a host-layer thread context.
func (p *Partition) RunSupervised(tc exec.TC, name string, cpu int, pol RestartPolicy, body func(ktc exec.TC)) (SupervisedResult, error) {
	if pol.PollNS <= 0 {
		pol.PollNS = 100_000
	}
	var res SupervisedResult
	attempt := func() *uint32 {
		done := new(uint32)
		p.SpawnInCompartment(name, cpu, func(ktc exec.TC) {
			body(ktc)
			*done = 1
		})
		return done
	}
	var done *uint32
	if p.Kernel == nil {
		res.BootNS += p.Reboot(tc)
	}
	if p.Kernel != nil { // a crash can land during the reboot charge itself
		done = attempt()
	}
	for {
		if done != nil && *done == 1 {
			return res, nil
		}
		if p.crashed || done == nil {
			if res.Restarts >= pol.MaxRestarts {
				return res, fmt.Errorf("multikernel: %s: compartment crashed again after %d restart(s), budget exhausted",
					name, res.Restarts)
			}
			res.Restarts++
			res.BootNS += p.Reboot(tc)
			done = nil
			if p.Kernel != nil {
				done = attempt()
			}
		}
		tc.Sleep(pol.PollNS)
	}
}

// SpawnInCompartment starts a thread inside the compartment kernel on
// one of its CPUs, handing the body a thread context on the kernel's
// layer (kernel costs, kernel futexes). It returns a handle the host
// side can join through its own context.
func (p *Partition) SpawnInCompartment(name string, cpu int, fn func(exec.TC)) exec.Handle {
	if p.Kernel == nil {
		panic("multikernel: compartment is down")
	}
	if !p.Kernel.OwnsCPU(cpu) {
		panic(fmt.Sprintf("multikernel: CPU %d is not in the compartment", cpu))
	}
	layer := p.Kernel.Layer
	// The joiner may live in the other kernel: completion signaling goes
	// through a shared simulator-level wait table (each kernel's futex
	// namespace is private to it).
	h := &compHandle{ft: sim.NewFutexTable(p.Sim)}
	p.Sim.Go(name, cpu, p.Sim.Now(), func(pr *sim.Proc) {
		tc := layer.AdoptProc(pr)
		fn(tc)
		h.done = 1
		h.ft.Wake(pr, &h.done, -1, 0, ringDoorbellNS, 0)
	})
	return h
}

type compHandle struct {
	done uint32
	ft   *sim.FutexTable
}

func (h *compHandle) Join(tc exec.TC) {
	p := ringProc(tc)
	for h.done == 0 {
		h.ft.Wait(p, &h.done, 0, 0)
	}
}

// --- The cross-kernel shared-memory ring ---

// Message is one entry of the shared ring.
type Message struct {
	Kind    string
	Payload int64
}

// Ring is a bounded single-producer single-consumer shared-memory
// channel between the kernels — the communication split of §7's
// multi-node discussion (control plane on one side, data plane on the
// other). Each kernel has its own futex namespace, so the cross-kernel
// doorbells go through a shared simulator-level wait table (standing in
// for the IPI/poll doorbells a real co-kernel deployment uses).
type Ring struct {
	buf        []Message
	head, tail uint32
	ft         *sim.FutexTable
}

// NewRing creates a ring with capacity slots (rounded up to ≥2) on the
// partition's shared machine.
func (p *Partition) NewRing(capacity int) *Ring {
	if capacity < 2 {
		capacity = 2
	}
	return &Ring{buf: make([]Message, capacity), ft: sim.NewFutexTable(p.Sim)}
}

// ringDoorbellNS is the cross-kernel notification cost (a cache line
// transfer plus the doorbell).
const ringDoorbellNS = 350

func ringProc(tc exec.TC) *sim.Proc {
	ph, ok := tc.(exec.ProcHolder)
	if !ok {
		panic("multikernel: ring endpoint must run on the simulator")
	}
	return ph.Proc()
}

// Send enqueues a message, blocking while the ring is full.
func (r *Ring) Send(tc exec.TC, m Message) {
	p := ringProc(tc)
	for {
		if int(r.tail-r.head) < len(r.buf) {
			r.buf[r.tail%uint32(len(r.buf))] = m
			tc.Charge(ringDoorbellNS)
			r.tail++
			r.ft.Wake(p, &r.tail, 1, 0, ringDoorbellNS, 0)
			return
		}
		h := r.head
		if r.head == h {
			r.ft.Wait(p, &r.head, h, 0) // wait for the consumer to advance
		}
	}
}

// Recv dequeues a message, blocking while the ring is empty.
func (r *Ring) Recv(tc exec.TC) Message {
	p := ringProc(tc)
	for {
		if r.tail != r.head {
			m := r.buf[r.head%uint32(len(r.buf))]
			tc.Charge(ringDoorbellNS)
			r.head++
			r.ft.Wake(p, &r.head, 1, 0, ringDoorbellNS, 0)
			return m
		}
		t := r.tail
		if r.tail == t {
			r.ft.Wait(p, &r.tail, t, 0)
		}
	}
}

// Len returns the number of queued messages.
func (r *Ring) Len() int { return int(r.tail - r.head) }
