package multikernel

import (
	"strings"
	"testing"

	"github.com/interweaving/komp/internal/exec"
)

func TestShutdownIsIdempotent(t *testing.T) {
	p, err := Boot(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.Shutdown()
	if p.Kernel != nil {
		t.Fatal("kernel not torn down")
	}
	p.Shutdown() // double shutdown must be a no-op
	if p.Kernel != nil || p.Crashed() {
		t.Fatal("double shutdown corrupted state")
	}
}

func TestRebootAfterShutdown(t *testing.T) {
	p, err := Boot(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.Shutdown()
	_, err = p.HostLayer.Run(func(tc exec.TC) {
		if ns := p.Reboot(tc); ns <= 0 {
			t.Errorf("reboot-after-shutdown boot time = %d", ns)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Kernel == nil || p.Reboots != 1 {
		t.Fatal("reboot after shutdown did not produce a live kernel")
	}
	// The budget must not be double-carved: the fresh buddy still spans
	// at most the configured 8 GiB.
	if b := p.Kernel.Buddies[0]; b.Size() > 8<<30 {
		t.Fatalf("rebooted compartment spans %d bytes", b.Size())
	}
}

func TestDoubleRebootKeepsBudgetStable(t *testing.T) {
	p, err := Boot(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int64
	_, err = p.HostLayer.Run(func(tc exec.TC) {
		for i := 0; i < 3; i++ {
			p.Reboot(tc)
			sizes = append(sizes, p.Kernel.Buddies[0].Size())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sizes {
		if s != sizes[0] {
			t.Fatalf("reboot %d changed the compartment budget: %v", i, sizes)
		}
	}
}

func TestCrashKillsCompartmentProcsOnly(t *testing.T) {
	p, err := Boot(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	compFinished, hostFinished := false, false
	_, err = p.HostLayer.Run(func(tc exec.TC) {
		p.SpawnInCompartment("victim", 60, func(ktc exec.TC) {
			ktc.Charge(50_000_000) // long job, dies mid-flight
			compFinished = true
		})
		p.Sim.At(p.Sim.Now()+1_000_000, func() { p.Crash() })
		tc.Charge(5_000_000) // host work rides through the crash
		hostFinished = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if compFinished {
		t.Fatal("compartment proc survived the crash")
	}
	if !hostFinished {
		t.Fatal("host proc was taken down by a compartment crash")
	}
	if !p.Crashed() || p.Crashes != 1 || p.Kernel != nil {
		t.Fatalf("crash bookkeeping: crashed=%v crashes=%d kernel=%v", p.Crashed(), p.Crashes, p.Kernel)
	}
}

func TestCrashIsIdempotent(t *testing.T) {
	p, err := Boot(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.Crash()
	p.Crash() // second crash of a dead compartment is a no-op
	if p.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", p.Crashes)
	}
}

func TestRunSupervisedRecoversFromCrash(t *testing.T) {
	p, err := Boot(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Crash the compartment once, 2 ms in: the first attempt dies, the
	// supervisor reboots and reruns, the second attempt completes.
	p.Sim.At(2_000_000, func() { p.Crash() })
	attempts := 0
	var res SupervisedResult
	_, err = p.HostLayer.Run(func(tc exec.TC) {
		var serr error
		res, serr = p.RunSupervised(tc, "job", 60, RestartPolicy{MaxRestarts: 2}, func(ktc exec.TC) {
			attempts++
			ktc.Charge(10_000_000)
		})
		if serr != nil {
			t.Errorf("supervised run failed: %v", serr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (original + rerun)", attempts)
	}
	if res.Restarts != 1 || res.BootNS <= 0 {
		t.Fatalf("result = %+v, want 1 restart with boot time", res)
	}
	if p.Crashes != 1 || p.Reboots != 1 {
		t.Fatalf("crashes=%d reboots=%d", p.Crashes, p.Reboots)
	}
}

func TestRunSupervisedRestartBudget(t *testing.T) {
	p, err := Boot(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Crash on a period shorter than the job: every attempt dies. The
	// ticker is bounded so the event queue eventually drains.
	ticks := 0
	var crashTick func()
	crashTick = func() {
		p.Crash()
		if ticks++; ticks < 20 {
			p.Sim.After(3_000_000, crashTick)
		}
	}
	p.Sim.At(2_000_000, crashTick)
	_, err = p.HostLayer.Run(func(tc exec.TC) {
		_, serr := p.RunSupervised(tc, "doomed", 60, RestartPolicy{MaxRestarts: 2}, func(ktc exec.TC) {
			ktc.Charge(50_000_000)
		})
		if serr == nil {
			t.Error("expected restart-budget exhaustion")
		} else if !strings.Contains(serr.Error(), "budget exhausted") {
			t.Errorf("error = %v", serr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Reboots != 2 {
		t.Fatalf("reboots = %d, want exactly the budget (2)", p.Reboots)
	}
}
