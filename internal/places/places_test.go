package places

import (
	"reflect"
	"testing"

	"github.com/interweaving/komp/internal/machine"
)

func TestParseAbstract(t *testing.T) {
	topo := ForMachine(machine.XEON8())
	for _, tc := range []struct {
		spec   string
		places int
		first  []int
	}{
		{"threads", 192, []int{0}},
		{"cores", 192, []int{0}},
		{"sockets", 8, cpuSeq(0, 24)},
		{"sockets(4)", 4, cpuSeq(0, 24)},
		{"", 192, []int{0}}, // default = cores
	} {
		p, err := Parse(tc.spec, topo)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.spec, err)
		}
		if p.NumPlaces() != tc.places {
			t.Errorf("Parse(%q): %d places, want %d", tc.spec, p.NumPlaces(), tc.places)
		}
		if !reflect.DeepEqual(p.Place(0), tc.first) {
			t.Errorf("Parse(%q): place 0 = %v, want %v", tc.spec, p.Place(0), tc.first)
		}
	}
}

func TestParseAbstractSMT(t *testing.T) {
	m := machine.XEON8()
	m.ThreadsPerCore = 2 // hypothetical HT-on config
	topo := ForMachine(m)
	p, err := Parse("cores", topo)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPlaces() != 192 {
		t.Fatalf("cores with SMT=2: %d places, want 192", p.NumPlaces())
	}
	if want := []int{0, 1}; !reflect.DeepEqual(p.Place(0), want) {
		t.Fatalf("core place 0 = %v, want %v", p.Place(0), want)
	}
	pt, err := Parse("threads", topo)
	if err != nil {
		t.Fatal(err)
	}
	if pt.NumPlaces() != 384 {
		t.Fatalf("threads with SMT=2: %d places, want 384", pt.NumPlaces())
	}
}

func TestParseExplicit(t *testing.T) {
	topo := Flat(16)
	for _, tc := range []struct {
		spec string
		want [][]int
	}{
		{"{0},{4},{8}", [][]int{{0}, {4}, {8}}},
		{"{0:4}", [][]int{{0, 1, 2, 3}}},
		{"{0:4},{4:4}", [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}},
		{"{0:4:2}", [][]int{{0, 2, 4, 6}}},
		{"{0,2,1}", [][]int{{0, 1, 2}}},
	} {
		p, err := Parse(tc.spec, topo)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.spec, err)
		}
		got := make([][]int, p.NumPlaces())
		for i := range got {
			got[i] = p.Place(i)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Parse(%q) = %v, want %v", tc.spec, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	topo := Flat(8)
	for _, spec := range []string{
		"nodes",     // unknown abstract name
		"cores(0)",  // bad count
		"cores(x)",  // bad count
		"{0:2",      // unbalanced
		"0,1",       // unbraced
		"{9}",       // out of range
		"{0:16}",    // runs out of range
		"{0:2:0}",   // zero stride
		"{a}",       // not a number
		"{0:1:1:1}", // too many fields
		"nodes(2)",  // unknown with count
	} {
		if _, err := Parse(spec, topo); err == nil {
			t.Errorf("Parse(%q): want error, got none", spec)
		}
	}
}

func TestParseBind(t *testing.T) {
	for _, tc := range []struct {
		s    string
		want Bind
	}{
		{"false", BindFalse},
		{"true", BindClose},
		{"close", BindClose},
		{"master", BindMaster},
		{"primary", BindMaster},
		{"spread", BindSpread},
		{"SPREAD", BindSpread},
		{"spread,close", BindSpread}, // nesting list: first level wins
	} {
		got, err := ParseBind(tc.s)
		if err != nil {
			t.Fatalf("ParseBind(%q): %v", tc.s, err)
		}
		if got != tc.want {
			t.Errorf("ParseBind(%q) = %v, want %v", tc.s, got, tc.want)
		}
	}
	if _, err := ParseBind("sideways"); err == nil {
		t.Error("ParseBind(sideways): want error")
	}
	if _, err := ParseBind("close,sideways"); err == nil {
		t.Error("ParseBind(close,sideways): want error in later level")
	}
}

// TestAssignCloseMatchesLegacy pins the compatibility contract: close
// binding over the default cores partition with master on CPU 0
// reproduces the historic worker-i-on-CPU-i modulo placement.
func TestParseBindList(t *testing.T) {
	got, err := ParseBindList("spread, close,master")
	if err != nil {
		t.Fatal(err)
	}
	if want := []Bind{BindSpread, BindClose, BindMaster}; !reflect.DeepEqual(got, want) {
		t.Errorf("ParseBindList(spread, close,master) = %v, want %v", got, want)
	}
	got, err = ParseBindList("false")
	if err != nil {
		t.Fatal(err)
	}
	if want := []Bind{BindFalse}; !reflect.DeepEqual(got, want) {
		t.Errorf("ParseBindList(false) = %v, want %v", got, want)
	}
	if _, err := ParseBindList("spread,,close"); err == nil {
		t.Error("ParseBindList(spread,,close): want error for empty level")
	}
}

// TestAssignNested pins the recursive bubble step: an inner team stays
// inside its forking worker's place, subpartitioned per-CPU.
func TestAssignNested(t *testing.T) {
	topo := ForMachine(machine.XEON8())
	p, err := Parse("sockets", topo)
	if err != nil {
		t.Fatal(err)
	}
	masterCPU := 30 // socket 1
	for _, policy := range []Bind{BindClose, BindSpread, BindMaster} {
		cpus := p.AssignNested(4, policy, masterCPU)
		if cpus[0] != masterCPU {
			t.Fatalf("%v: slot 0 = %d, want master CPU %d", policy, cpus[0], masterCPU)
		}
		for i, c := range cpus {
			if p.SocketOf(c) != 1 {
				t.Fatalf("%v: nested slot %d escaped to socket %d (cpu %d)", policy, i, p.SocketOf(c), c)
			}
		}
		if policy == BindMaster {
			// The master's sub-place is a single CPU: everyone packs on it.
			for i, c := range cpus {
				if c != masterCPU {
					t.Fatalf("master: nested slot %d on cpu %d, want %d", i, c, masterCPU)
				}
			}
			continue
		}
		// close/spread: sub-places are single CPUs, so workers land on
		// distinct CPUs of the place while any remain.
		seen := map[int]bool{}
		for _, c := range cpus {
			if seen[c] {
				t.Fatalf("%v: nested team stacked CPUs early: %v", policy, cpus)
			}
			seen[c] = true
		}
	}
	// Oversubscribed inner team: a flat-8 default partition has
	// one-CPU places, so every inner worker stacks on the master CPU.
	flat := Default(Flat(8))
	if got, want := flat.AssignNested(3, BindClose, 5), []int{5, 5, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("nested close over one-CPU place = %v, want %v", got, want)
	}
	// Unbound policies stay unbound.
	if got := flat.AssignNested(3, BindFalse, 0); got != nil {
		t.Fatalf("nested BindFalse: got %v, want nil", got)
	}
}

func TestAssignCloseMatchesLegacy(t *testing.T) {
	topo := Flat(8)
	p := Default(topo)
	got := p.Assign(8, BindClose, 0)
	want := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("close/8 over flat 8 = %v, want %v", got, want)
	}
	// Oversubscribed: 12 threads on 8 CPUs pack ceil(12/8)=2 per place.
	got = p.Assign(12, BindClose, 0)
	want = []int{0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("close/12 over flat 8 = %v, want %v", got, want)
	}
}

func TestAssignSpread(t *testing.T) {
	topo := ForMachine(machine.XEON8())
	p, err := Parse("sockets", topo)
	if err != nil {
		t.Fatal(err)
	}
	// 8 threads over 8 socket-places: one per socket.
	cpus := p.Assign(8, BindSpread, 0)
	socks := make([]int, len(cpus))
	for i, c := range cpus {
		socks[i] = p.SocketOf(c)
	}
	if want := []int{0, 1, 2, 3, 4, 5, 6, 7}; !reflect.DeepEqual(socks, want) {
		t.Fatalf("spread/8 sockets = %v (cpus %v), want %v", socks, cpus, want)
	}
	// 4 threads over 8 places: every other socket.
	cpus = p.Assign(4, BindSpread, 0)
	socks = socks[:0]
	for _, c := range cpus {
		socks = append(socks, p.SocketOf(c))
	}
	if want := []int{0, 2, 4, 6}; !reflect.DeepEqual(socks, want) {
		t.Fatalf("spread/4 sockets = %v, want %v", socks, want)
	}
	// 16 threads over 8 places: two per socket, distinct CPUs.
	cpus = p.Assign(16, BindSpread, 0)
	perSock := map[int]map[int]bool{}
	for _, c := range cpus {
		s := p.SocketOf(c)
		if perSock[s] == nil {
			perSock[s] = map[int]bool{}
		}
		perSock[s][c] = true
	}
	for s, set := range perSock {
		if len(set) != 2 {
			t.Fatalf("spread/16: socket %d hosts %d distinct CPUs, want 2 (cpus %v)", s, len(set), cpus)
		}
	}
}

func TestAssignMaster(t *testing.T) {
	topo := ForMachine(machine.XEON8())
	p, _ := Parse("sockets", topo)
	masterCPU := 30 // socket 1
	cpus := p.Assign(4, BindMaster, masterCPU)
	if cpus[0] != masterCPU {
		t.Fatalf("slot 0 = %d, want master CPU %d", cpus[0], masterCPU)
	}
	for i, c := range cpus {
		if p.SocketOf(c) != 1 {
			t.Fatalf("master-bound slot %d on socket %d (cpu %d), want socket 1", i, p.SocketOf(c), c)
		}
	}
	// Workers use distinct CPUs of the master place while any remain.
	seen := map[int]bool{}
	for _, c := range cpus {
		if seen[c] {
			t.Fatalf("master binding stacked CPUs early: %v", cpus)
		}
		seen[c] = true
	}
}

func TestAssignUnbound(t *testing.T) {
	p := Default(Flat(4))
	if got := p.Assign(4, BindFalse, 0); got != nil {
		t.Fatalf("BindFalse: got %v, want nil", got)
	}
	if got := p.Assign(4, BindDefault, 0); got != nil {
		t.Fatalf("BindDefault: got %v, want nil", got)
	}
}

func TestDist(t *testing.T) {
	p := Default(ForMachine(machine.XEON8()))
	if d := p.Dist(0, 1); d != 10 {
		t.Errorf("Dist same socket = %d, want 10", d)
	}
	if d := p.Dist(0, 24); d != 21 {
		t.Errorf("Dist cross socket = %d, want 21", d)
	}
	if d := p.Dist(-1, 0); d != 255 {
		t.Errorf("Dist unbound = %d, want 255", d)
	}
}

func TestStealOrderRings(t *testing.T) {
	topo := ForMachine(machine.XEON8())
	p, _ := Parse("sockets", topo)
	// 8 workers spread one per socket, except slots 0/1 share socket 0's
	// place and slots 2/3 share socket 1's.
	cpus := []int{0, 1, 24, 25, 48, 72, 96, 120}
	order, rings := p.StealOrder(0, cpus)
	if len(order) != 7 {
		t.Fatalf("order %v: want 7 victims", order)
	}
	// Ring 0 (same place): slot 1 only. Ring 1 (same socket, different
	// place): none under the sockets partition (place == socket). Remote:
	// everyone else by slot order (all at distance 21).
	if order[0] != 1 {
		t.Fatalf("order %v: first victim should be same-place slot 1", order)
	}
	if rings[0] != 1 || rings[1] != 1 {
		t.Fatalf("rings = %v, want [1 1]", rings)
	}
	if want := []int{1, 2, 3, 4, 5, 6, 7}; !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestStealOrderSameSocketRing(t *testing.T) {
	topo := ForMachine(machine.XEON8())
	p := Default(topo) // cores partition: place != socket
	// Worker 0 on CPU 0; slot 1 shares its core place? No — cores are
	// singletons, so ring 0 is empty; slots 1,2 are same-socket, slot 3
	// remote.
	cpus := []int{0, 1, 2, 24}
	order, rings := p.StealOrder(0, cpus)
	if want := []int{1, 2, 3}; !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if rings[0] != 0 || rings[1] != 2 {
		t.Fatalf("rings = %v, want [0 2] (no same-place, two same-socket)", rings)
	}
}

func TestStealOrderUnbound(t *testing.T) {
	p := Default(Flat(4))
	cpus := []int{-1, -1, -1, -1}
	order, rings := p.StealOrder(1, cpus)
	if want := []int{0, 2, 3}; !reflect.DeepEqual(order, want) {
		t.Fatalf("unbound order = %v, want slot order %v", order, want)
	}
	if rings[0] != 0 || rings[1] != 0 {
		t.Fatalf("unbound rings = %v, want [0 0] (all remote)", rings)
	}
}

func TestPHIPartition(t *testing.T) {
	topo := ForMachine(machine.PHI())
	p, err := Parse("sockets", topo)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPlaces() != 1 {
		t.Fatalf("PHI sockets: %d places, want 1", p.NumPlaces())
	}
	if len(p.Place(0)) != 64 {
		t.Fatalf("PHI socket place has %d CPUs, want 64", len(p.Place(0)))
	}
	// Spread and close collapse to the same thing on one socket.
	spread := p.Assign(8, BindSpread, 0)
	for _, c := range spread {
		if p.SocketOf(c) != 0 {
			t.Fatalf("PHI spread left socket 0: %v", spread)
		}
	}
}

func cpuSeq(lo, n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = lo + i
	}
	return s
}

// TestShard: tenants are dealt contiguous, disjoint, covering blocks of
// the place list — the tenancy service's socket sharding.
func TestShard(t *testing.T) {
	topo := ForMachine(machine.XEON8())
	p, err := Parse("sockets", topo)
	if err != nil {
		t.Fatal(err)
	}
	// Even split: 8 sockets over 4 shards = 2 places each, in order.
	seen := map[int]bool{}
	next := 0
	for i := 0; i < 4; i++ {
		sh := p.Shard(i, 4)
		if sh.NumPlaces() != 2 {
			t.Fatalf("Shard(%d, 4): %d places, want 2", i, sh.NumPlaces())
		}
		for j := 0; j < sh.NumPlaces(); j++ {
			first := sh.Place(j)[0]
			if want := next * 24; first != want {
				t.Errorf("Shard(%d, 4) place %d starts at CPU %d, want %d", i, j, first, want)
			}
			if seen[first] {
				t.Errorf("Shard(%d, 4): place starting at %d dealt twice", i, first)
			}
			seen[first] = true
			next++
		}
	}
	if next != 8 {
		t.Fatalf("4 shards covered %d places, want all 8", next)
	}
	// Uneven split: 8 places over 3 shards = 3, 3, 2.
	for i, want := range []int{3, 3, 2} {
		if got := p.Shard(i, 3).NumPlaces(); got != want {
			t.Errorf("Shard(%d, 3): %d places, want %d", i, got, want)
		}
	}
	// A shard is a real partition: placement APIs work on it.
	sh := p.Shard(1, 4)
	if cpu := sh.Place(0)[0]; cpu != 48 {
		t.Errorf("Shard(1, 4) starts at CPU %d, want 48", cpu)
	}
	if got := sh.Assign(2, BindSpread, sh.Place(0)[0]); len(got) != 2 {
		t.Errorf("Assign on a shard returned %d CPUs, want 2", len(got))
	}
	// Out-of-range shards panic (configuration bugs, not runtime states).
	for _, bad := range [][2]int{{-1, 4}, {4, 4}, {0, 0}, {0, 9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Shard(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			p.Shard(bad[0], bad[1])
		}()
	}
}
