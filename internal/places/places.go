// Package places is the topology-aware affinity subsystem: the OpenMP
// places / proc_bind machinery (OMP_PLACES, OMP_PROC_BIND) expressed over
// this repository's machine models.
//
// A Partition is an ordered list of places — disjoint CPU sets — parsed
// from an OMP_PLACES-style specification against a Topology (a machine
// model, or a flat single-socket view for the real layer). The runtime
// asks the partition for a team placement (Assign), for the place or
// socket of a CPU, and for the relative NUMA distance between two CPUs
// (Dist, backed by the machine's zone latency matrix). Everything here is
// pure computation over immutable data: the partition is built once, at
// runtime construction, and read concurrently afterwards.
package places

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/interweaving/komp/internal/machine"
)

// Topology is what the affinity subsystem needs to know about the
// hardware beneath a partition.
type Topology interface {
	// NumCPUs is the hardware thread count.
	NumCPUs() int
	// SocketOf returns the socket owning a CPU.
	SocketOf(cpu int) int
	// CoreOf returns the physical core owning a CPU (equal to the CPU
	// when SMT is off).
	CoreOf(cpu int) int
	// Dist is the relative NUMA distance between two CPUs' memory zones
	// (ACPI SLIT convention: 10 = local).
	Dist(a, b int) int
}

// flatTopo is the topology of an unknown machine: one socket, no SMT,
// uniform memory. The real execution layer uses it — locality still
// degenerates gracefully (every CPU is "near" every other).
type flatTopo struct{ n int }

func (f flatTopo) NumCPUs() int       { return f.n }
func (f flatTopo) SocketOf(int) int   { return 0 }
func (f flatTopo) CoreOf(cpu int) int { return cpu }
func (f flatTopo) Dist(a, b int) int  { return 10 }

// Flat returns the flat single-socket topology over n CPUs.
func Flat(n int) Topology {
	if n < 1 {
		n = 1
	}
	return flatTopo{n}
}

// machineTopo adapts a machine model. machine.Machine already has the
// exact method set, but keeping the adapter explicit avoids the machine
// package depending on this one.
type machineTopo struct{ m *machine.Machine }

func (t machineTopo) NumCPUs() int       { return t.m.NumCPUs() }
func (t machineTopo) SocketOf(c int) int { return t.m.SocketOf(c) }
func (t machineTopo) CoreOf(c int) int   { return t.m.CoreOf(c) }
func (t machineTopo) Dist(a, b int) int  { return t.m.Dist(a, b) }

// ForMachine returns the topology view of a machine model.
func ForMachine(m *machine.Machine) Topology { return machineTopo{m} }

// Bind is an OMP_PROC_BIND thread-affinity policy.
type Bind int

// Binding policies.
const (
	// BindDefault defers to the runtime's legacy Bind flag: true maps to
	// BindClose over the default partition (which reproduces the historic
	// worker-i-on-CPU-i placement), false leaves workers unmanaged.
	BindDefault Bind = iota
	// BindFalse disables affinity: workers are not pinned, and on the
	// simulated layer they migrate between parallel regions the way an
	// unbound thread drifts under a general-purpose scheduler.
	BindFalse
	// BindMaster places every worker in the master's place.
	BindMaster
	// BindClose places workers in consecutive places starting from the
	// master's.
	BindClose
	// BindSpread spreads workers evenly across the whole partition.
	BindSpread
)

func (b Bind) String() string {
	switch b {
	case BindFalse:
		return "false"
	case BindMaster:
		return "master"
	case BindClose:
		return "close"
	case BindSpread:
		return "spread"
	default:
		return "default"
	}
}

// ParseBind parses an OMP_PROC_BIND-style value and returns the level-0
// policy. The spec allows a comma-separated list (one policy per nesting
// level); callers that consume the whole list use ParseBindList.
func ParseBind(s string) (Bind, error) {
	list, err := ParseBindList(s)
	if err != nil {
		return 0, err
	}
	return list[0], nil
}

// ParseBindList parses the full comma-separated OMP_PROC_BIND list, one
// policy per nesting level (list[0] governs top-level teams, list[1]
// teams forked inside them, ...). Teams deeper than the list inherit its
// last entry, per the spec's "remaining levels use the last value" rule.
func ParseBindList(s string) ([]Bind, error) {
	var list []Bind
	for _, part := range strings.Split(s, ",") {
		var b Bind
		switch strings.TrimSpace(strings.ToLower(part)) {
		case "false":
			b = BindFalse
		case "true", "close":
			b = BindClose
		case "master", "primary":
			b = BindMaster
		case "spread":
			b = BindSpread
		default:
			return nil, fmt.Errorf("places: unknown proc_bind policy %q in %q", part, s)
		}
		list = append(list, b)
	}
	return list, nil
}

// Partition is a parsed OMP_PLACES specification: an ordered list of
// disjoint CPU sets over a topology.
type Partition struct {
	topo   Topology
	spec   string  // canonical spec the partition was built from
	places [][]int // place index -> CPUs, each sorted ascending
	// placeOf maps CPU -> place index (-1 for CPUs in no place).
	placeOf []int
}

// Parse builds a partition from an OMP_PLACES-style specification:
//
//	threads | cores | sockets      abstract names, one place per hardware
//	                               thread / core / socket
//	threads(n) | cores(n) | ...    only the first n such places
//	{lo}, {lo:len}, {lo:len:str}   explicit places: interval lists, each
//	{a,b,c}                        braced item one place
//
// An empty spec means "cores" (the subsystem's default granularity).
func Parse(spec string, topo Topology) (*Partition, error) {
	s := strings.TrimSpace(spec)
	if s == "" {
		s = "cores"
	}
	p := &Partition{topo: topo, spec: s}
	name := s
	count := -1
	if i := strings.IndexByte(name, '('); i >= 0 && strings.HasSuffix(name, ")") {
		n, err := strconv.Atoi(strings.TrimSpace(name[i+1 : len(name)-1]))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("places: bad place count in %q", s)
		}
		name, count = strings.TrimSpace(name[:i]), n
	}
	switch strings.ToLower(name) {
	case "threads":
		for cpu := 0; cpu < topo.NumCPUs(); cpu++ {
			p.places = append(p.places, []int{cpu})
		}
	case "cores":
		p.groupBy(topo.CoreOf)
	case "sockets":
		p.groupBy(topo.SocketOf)
	default:
		if count >= 0 {
			return nil, fmt.Errorf("places: unknown abstract place name %q", name)
		}
		if err := p.parseExplicit(s); err != nil {
			return nil, err
		}
	}
	if count > 0 && count < len(p.places) {
		p.places = p.places[:count]
	}
	if len(p.places) == 0 {
		return nil, fmt.Errorf("places: %q yields no places", s)
	}
	p.index()
	return p, nil
}

// Shard returns sub-partition i of n: the partition's places dealt into
// n contiguous groups (remainder places going to the leading shards, the
// block split every other oracle here uses). It is the tenancy service's
// placement tool — tenant i gets shard i%n of a sockets partition, so
// tenants' teams land on disjoint CPU sets by construction instead of
// interleaving across the whole machine. Out-of-range arguments or a
// shard with no places panic: shard counts are configuration, not data.
func (p *Partition) Shard(i, n int) *Partition {
	if n < 1 || i < 0 || i >= n {
		panic(fmt.Sprintf("places: Shard(%d, %d) out of range", i, n))
	}
	if n > len(p.places) {
		panic(fmt.Sprintf("places: Shard(%d, %d): partition %q has only %d places",
			i, n, p.spec, len(p.places)))
	}
	per, rem := len(p.places)/n, len(p.places)%n
	lo := i*per + min(i, rem)
	hi := lo + per
	if i < rem {
		hi++
	}
	sub := &Partition{
		topo:   p.topo,
		spec:   fmt.Sprintf("%s[%d/%d]", p.spec, i, n),
		places: p.places[lo:hi],
	}
	sub.index()
	return sub
}

// Default returns the default partition over a topology: one place per
// core (what libomp uses when OMP_PLACES is unset but binding is on).
func Default(topo Topology) *Partition {
	p, err := Parse("cores", topo)
	if err != nil {
		panic(err) // unreachable: "cores" always parses
	}
	return p
}

// groupBy builds one place per distinct key over the CPU range, in key
// order (keys from CoreOf/SocketOf are non-decreasing in CPU order).
func (p *Partition) groupBy(key func(int) int) {
	var cur []int
	last := -1
	for cpu := 0; cpu < p.topo.NumCPUs(); cpu++ {
		k := key(cpu)
		if k != last && cur != nil {
			p.places = append(p.places, cur)
			cur = nil
		}
		last = k
		cur = append(cur, cpu)
	}
	if cur != nil {
		p.places = append(p.places, cur)
	}
}

// parseExplicit parses a comma-separated list of braced items. Splitting
// on commas must respect braces: "{0,1},{2,3}" is two places.
func (p *Partition) parseExplicit(s string) error {
	depth := 0
	start := 0
	var items []string
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '{':
			depth++
		case '}':
			depth--
			if depth < 0 {
				return fmt.Errorf("places: unbalanced braces in %q", s)
			}
		case ',':
			if depth == 0 {
				items = append(items, s[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return fmt.Errorf("places: unbalanced braces in %q", s)
	}
	items = append(items, s[start:])
	for _, it := range items {
		it = strings.TrimSpace(it)
		if !strings.HasPrefix(it, "{") || !strings.HasSuffix(it, "}") {
			return fmt.Errorf("places: explicit place %q must be braced", it)
		}
		cpus, err := p.parsePlace(it[1 : len(it)-1])
		if err != nil {
			return err
		}
		p.places = append(p.places, cpus)
	}
	return nil
}

// parsePlace parses the inside of one braced place: either a plain CPU
// list "a,b,c" or an interval "lo:len[:stride]".
func (p *Partition) parsePlace(body string) ([]int, error) {
	n := p.topo.NumCPUs()
	check := func(cpu int) error {
		if cpu < 0 || cpu >= n {
			return fmt.Errorf("places: CPU %d out of range [0,%d)", cpu, n)
		}
		return nil
	}
	if strings.ContainsRune(body, ':') {
		parts := strings.Split(body, ":")
		if len(parts) > 3 {
			return nil, fmt.Errorf("places: bad interval %q", body)
		}
		nums := make([]int, len(parts))
		for i, pt := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(pt))
			if err != nil {
				return nil, fmt.Errorf("places: bad interval %q: %v", body, err)
			}
			nums[i] = v
		}
		lo, ln, stride := nums[0], 1, 1
		if len(nums) > 1 {
			ln = nums[1]
		}
		if len(nums) > 2 {
			stride = nums[2]
		}
		if ln < 1 || stride < 1 {
			return nil, fmt.Errorf("places: bad interval %q: length and stride must be positive", body)
		}
		var cpus []int
		for i := 0; i < ln; i++ {
			cpu := lo + i*stride
			if err := check(cpu); err != nil {
				return nil, err
			}
			cpus = append(cpus, cpu)
		}
		return cpus, nil
	}
	var cpus []int
	for _, pt := range strings.Split(body, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(pt))
		if err != nil {
			return nil, fmt.Errorf("places: bad CPU list %q: %v", body, err)
		}
		if err := check(v); err != nil {
			return nil, err
		}
		cpus = append(cpus, v)
	}
	sort.Ints(cpus)
	return cpus, nil
}

// index builds the CPU -> place reverse map.
func (p *Partition) index() {
	p.placeOf = make([]int, p.topo.NumCPUs())
	for i := range p.placeOf {
		p.placeOf[i] = -1
	}
	for pi, cpus := range p.places {
		for _, c := range cpus {
			p.placeOf[c] = pi
		}
	}
}

// NumPlaces returns the place count.
func (p *Partition) NumPlaces() int { return len(p.places) }

// Place returns the CPUs of place i (callers must not mutate it).
func (p *Partition) Place(i int) []int { return p.places[i] }

// PlaceOf returns the place index owning a CPU, or -1 when the CPU is in
// no place (or out of range).
func (p *Partition) PlaceOf(cpu int) int {
	if cpu < 0 || cpu >= len(p.placeOf) {
		return -1
	}
	return p.placeOf[cpu]
}

// SocketOf exposes the topology's socket lookup (-1 for unbound CPUs).
func (p *Partition) SocketOf(cpu int) int {
	if cpu < 0 || cpu >= p.topo.NumCPUs() {
		return -1
	}
	return p.topo.SocketOf(cpu)
}

// NumCPUs returns the topology's hardware thread count.
func (p *Partition) NumCPUs() int { return p.topo.NumCPUs() }

// Spec returns the canonical specification the partition was parsed from.
func (p *Partition) Spec() string { return p.spec }

// Dist is the distance oracle: the relative NUMA distance between two
// CPUs' memory zones (10 = same zone), straight from the machine's zone
// latency matrix. Either CPU being unbound (-1) reports the worst
// distance in the partition's topology, the pessimistic assumption the
// steal-order and placement heuristics want for unmanaged threads.
func (p *Partition) Dist(a, b int) int {
	n := p.topo.NumCPUs()
	if a < 0 || b < 0 || a >= n || b >= n {
		return 255
	}
	return p.topo.Dist(a, b)
}

// Assign computes the CPU for each of teamSize workers under a binding
// policy. Slot 0 is the master: it keeps masterCPU (the master is the
// calling thread; the runtime cannot re-pin it), and the pool workers in
// slots 1..teamSize-1 receive place-derived CPUs. Within a place, workers
// round-robin over the place's CPUs; a place hosting more workers than
// CPUs stacks them (oversubscription — the runtime surfaces it).
// BindFalse and BindDefault return nil: no managed placement.
func (p *Partition) Assign(teamSize int, policy Bind, masterCPU int) []int {
	if teamSize < 1 || policy == BindDefault || policy == BindFalse {
		return nil
	}
	master := p.PlaceOf(masterCPU)
	if master < 0 {
		master = 0
	}
	return assignOver(p.places, master, teamSize, policy, masterCPU)
}

// AssignNested computes CPUs for an inner team by subpartitioning the
// forking worker's place: each CPU of that place becomes a single-CPU
// sub-place, and the same assignment walk Assign uses runs over those —
// the recursive step of the bubble hierarchy (spread the outer team
// across places, keep each inner team inside its worker's place). An
// inner team larger than its place oversubscribes (stacks workers per
// CPU), exactly like an overfull place at the top level. A master CPU in
// no place falls back to the whole partition.
func (p *Partition) AssignNested(teamSize int, policy Bind, masterCPU int) []int {
	if teamSize < 1 || policy == BindDefault || policy == BindFalse {
		return nil
	}
	pi := p.PlaceOf(masterCPU)
	if pi < 0 {
		return p.Assign(teamSize, policy, masterCPU)
	}
	pl := p.places[pi]
	sub := make([][]int, len(pl))
	master := 0
	for i, cpu := range pl {
		sub[i] = pl[i : i+1]
		if cpu == masterCPU {
			master = i
		}
	}
	return assignOver(sub, master, teamSize, policy, masterCPU)
}

// assignOver is the policy walk shared by Assign (over the partition's
// places) and AssignNested (over one place's CPUs as sub-places): slot 0
// keeps masterCPU, slots 1..teamSize-1 receive place-derived CPUs with a
// per-place round-robin fill cursor.
func assignOver(places [][]int, master, teamSize int, policy Bind, masterCPU int) []int {
	P := len(places)
	cpus := make([]int, teamSize)
	cpus[0] = masterCPU
	fill := make([]int, P) // per-place next-CPU cursor
	// The master occupies a slot of its place, so slot i's place offset
	// counts from the master's.
	fill[master] = 1
	for i := 1; i < teamSize; i++ {
		var pi int
		switch policy {
		case BindMaster:
			pi = master
		case BindClose:
			if teamSize <= P {
				pi = (master + i) % P
			} else {
				// More threads than places: pack consecutive threads into
				// consecutive places, ceil(T/P) per place.
				per := (teamSize + P - 1) / P
				pi = (master + i/per) % P
			}
		case BindSpread:
			// Thread i owns the i-th of teamSize equal subpartitions and
			// sits at its first place.
			pi = (master + i*P/teamSize) % P
		}
		pl := places[pi]
		cpus[i] = pl[fill[pi]%len(pl)]
		fill[pi]++
	}
	return cpus
}

// StealOrder computes the locality-aware victim sweep for the worker in
// team slot self: teammate slots ordered same place first, then same
// socket, then remote by increasing distance (ties by slot), with the
// ring boundaries returned alongside so the scheduler can rotate within
// each ring independently. cpus[i] is team slot i's CPU (-1 unbound).
func (p *Partition) StealOrder(self int, cpus []int) (order []int, rings []int) {
	my := cpus[self]
	myPlace := p.PlaceOf(my)
	mySock := p.SocketOf(my)
	type cand struct {
		slot, ring, dist int
	}
	cands := make([]cand, 0, len(cpus)-1)
	for s, c := range cpus {
		if s == self {
			continue
		}
		ring, dist := 2, p.Dist(my, c)
		switch {
		case myPlace >= 0 && p.PlaceOf(c) == myPlace:
			ring = 0
		case mySock >= 0 && p.SocketOf(c) == mySock:
			ring = 1
		}
		cands = append(cands, cand{s, ring, dist})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].ring != cands[j].ring {
			return cands[i].ring < cands[j].ring
		}
		if cands[i].ring == 2 && cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].slot < cands[j].slot
	})
	order = make([]int, len(cands))
	prev := 0
	for i, c := range cands {
		order[i] = c.slot
		for prev < c.ring {
			rings = append(rings, i)
			prev++
		}
	}
	for len(rings) < 2 {
		rings = append(rings, len(order))
	}
	return order, rings
}
