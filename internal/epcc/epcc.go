// Package epcc reimplements the Edinburgh OpenMP Microbenchmark Suite
// (Bull et al.) against this repository's OpenMP runtime: the ARRAY,
// SCHEDULE, SYNCH and TASK suites the paper uses in §6.1 and Figures 7,
// 8 and 13. Each benchmark measures the overhead of one directive by
// comparing a loop of directive+delay against the delay-only reference,
// exactly like the original suite's methodology.
package epcc

import (
	"fmt"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/stats"
)

// Config parameterizes a suite run.
type Config struct {
	// Threads is the team size (the paper runs full machine scale).
	Threads int
	// OuterReps is the number of timed repetitions (statistics).
	OuterReps int
	// InnerReps is the directive count per timed repetition.
	InnerReps int
	// DelayNS is the synthetic work per directive body (EPCC's
	// delaylength, ~0.1 us).
	DelayNS int64
	// ArrayBytes is the ARRAY suite's payload size (EPCC's 59049).
	ArrayBytes int64
}

// Defaults returns the configuration used for the paper's figures.
func Defaults(threads int) Config {
	return Config{
		Threads:    threads,
		OuterReps:  15,
		InnerReps:  24,
		DelayNS:    100,
		ArrayBytes: 59049,
	}
}

// Result is one benchmark's measured overhead.
type Result struct {
	Suite string
	Name  string
	// OverheadUS is the median per-directive overhead in microseconds
	// (the median resists the rare housekeeping spikes a general-purpose
	// kernel injects; the spread still shows in SDUS).
	OverheadUS float64
	// SDUS is the standard deviation across outer repetitions.
	SDUS float64
}

func (r Result) String() string {
	return fmt.Sprintf("%-24s %10.3f us (sd %8.3f)", r.Name, r.OverheadUS, r.SDUS)
}

// bench is one microbenchmark: it returns the total virtual time of
// cfg.InnerReps directive executions (reference time is subtracted by
// the runner).
type bench struct {
	name string
	// run performs InnerReps directives and returns elapsed ns.
	run func(tc exec.TC, rt *omp.Runtime, cfg Config) int64
	// reference performs the equivalent directive-free work.
	reference func(tc exec.TC, rt *omp.Runtime, cfg Config) int64
}

func timed(tc exec.TC, fn func()) int64 {
	t0 := tc.Now()
	fn()
	return tc.Now() - t0
}

// memcpyNSPerByte approximates a ~20 GB/s single-thread copy.
const memcpyNSPerByte = 0.05

// refMasterDelay is the canonical reference: the master executes the
// delay loop without any directive.
func refMasterDelay(tc exec.TC, _ *omp.Runtime, cfg Config) int64 {
	return timed(tc, func() {
		for i := 0; i < cfg.InnerReps; i++ {
			tc.Charge(cfg.DelayNS)
		}
	})
}

// refParallelDelay is the reference for constructs measured inside an
// open parallel region: one region, each thread running the delay loop.
func refParallelDelay(tc exec.TC, rt *omp.Runtime, cfg Config) int64 {
	return timed(tc, func() {
		rt.Parallel(tc, cfg.Threads, func(w *omp.Worker) {
			for i := 0; i < cfg.InnerReps; i++ {
				w.TC().Charge(cfg.DelayNS)
			}
		})
	})
}

// Run executes one suite in the given runtime and returns per-benchmark
// overheads. The caller owns runtime shutdown.
func Run(tc exec.TC, rt *omp.Runtime, suite string, cfg Config) ([]Result, error) {
	benches, ok := suitesFor(cfg)[suite]
	if !ok {
		return nil, fmt.Errorf("epcc: unknown suite %q", suite)
	}
	var out []Result
	for _, b := range benches {
		var overheads []float64
		for rep := 0; rep < cfg.OuterReps; rep++ {
			ref := b.reference(tc, rt, cfg)
			tot := b.run(tc, rt, cfg)
			over := float64(tot-ref) / float64(cfg.InnerReps) / 1000.0 // us
			overheads = append(overheads, over)
		}
		out = append(out, Result{
			Suite:      suite,
			Name:       b.name,
			OverheadUS: stats.Percentile(overheads, 50),
			SDUS:       stats.StdDev(overheads),
		})
	}
	return out, nil
}

// Suites lists the available suite names in figure order.
func Suites() []string { return []string{"ARRAY", "SCHEDULE", "SYNCH", "TASK"} }
