package epcc

import (
	"testing"

	"github.com/interweaving/komp/internal/core"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/omp"
)

// runSuite executes a suite in a fresh environment and returns results
// keyed by benchmark name.
func runSuite(t *testing.T, kind core.Kind, threads int, suite string) map[string]Result {
	t.Helper()
	env := core.New(core.Config{Machine: machine.PHI(), Kind: kind, Seed: 11, Threads: threads})
	rt := env.OMPRuntime()
	var results []Result
	_, err := env.Layer.Run(func(tc exec.TC) {
		var err error
		results, err = Run(tc, rt, suite, Defaults(threads))
		if err != nil {
			t.Error(err)
		}
		rt.Close(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]Result{}
	for _, r := range results {
		out[r.Name] = r
	}
	return out
}

func TestSuiteNames(t *testing.T) {
	if got := Suites(); len(got) != 4 || got[0] != "ARRAY" {
		t.Fatalf("suites = %v", got)
	}
	env := core.New(core.Config{Machine: machine.PHI(), Kind: core.Linux, Seed: 1, Threads: 2})
	rt := env.OMPRuntime()
	_, err := env.Layer.Run(func(tc exec.TC) {
		if _, err := Run(tc, rt, "BOGUS", Defaults(2)); err == nil {
			t.Error("unknown suite must error")
		}
		rt.Close(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSynchOverheadsPositiveAndOrdered(t *testing.T) {
	res := runSuite(t, core.RTK, 8, "SYNCH")
	for _, name := range []string{"PARALLEL", "BARRIER", "REDUCTION", "PARALLEL_FOR"} {
		if res[name].OverheadUS <= 0 {
			t.Fatalf("%s overhead = %v, want > 0", name, res[name].OverheadUS)
		}
	}
	// References measure themselves: ~zero overhead.
	if r := res["reference"]; r.OverheadUS < -0.01 || r.OverheadUS > 0.01 {
		t.Fatalf("reference overhead = %v", r.OverheadUS)
	}
	// PARALLEL_FOR must cost at least as much as a bare FOR.
	if res["PARALLEL_FOR"].OverheadUS < res["FOR"].OverheadUS {
		t.Fatalf("PARALLEL_FOR %v < FOR %v", res["PARALLEL_FOR"].OverheadUS, res["FOR"].OverheadUS)
	}
	// REDUCTION carries a parallel region + combine: at least PARALLEL.
	if res["REDUCTION"].OverheadUS < res["PARALLEL"].OverheadUS {
		t.Fatalf("REDUCTION %v < PARALLEL %v", res["REDUCTION"].OverheadUS, res["PARALLEL"].OverheadUS)
	}
}

func TestScheduleDynamicCostlierThanStatic(t *testing.T) {
	// Use the quiet RTK environment: the shape assertion should not race
	// against Linux noise spikes.
	res := runSuite(t, core.RTK, 8, "SCHEDULE")
	if res["DYNAMIC_1"].OverheadUS <= res["STATIC"].OverheadUS {
		t.Fatalf("DYNAMIC_1 (%v) must exceed STATIC (%v)",
			res["DYNAMIC_1"].OverheadUS, res["STATIC"].OverheadUS)
	}
	// Bigger dynamic chunks shrink the overhead.
	if res["DYNAMIC_16"].OverheadUS >= res["DYNAMIC_1"].OverheadUS {
		t.Fatalf("DYNAMIC_16 (%v) must be under DYNAMIC_1 (%v)",
			res["DYNAMIC_16"].OverheadUS, res["DYNAMIC_1"].OverheadUS)
	}
}

func TestScheduleChunkLadderMatchesMachine(t *testing.T) {
	phi := scheduleChunks(64)
	if phi[len(phi)-1] != 128 {
		t.Fatalf("PHI ladder = %v", phi)
	}
	xeon := scheduleChunks(192)
	if xeon[len(xeon)-1] != 192 {
		t.Fatalf("8XEON ladder = %v", xeon)
	}
}

func TestArraySuiteFirstprivateCostlierThanPrivate(t *testing.T) {
	res := runSuite(t, core.RTK, 8, "ARRAY")
	if res["FIRSTPRIVATE"].OverheadUS <= res["PRIVATE"].OverheadUS {
		t.Fatalf("FIRSTPRIVATE (%v) must exceed PRIVATE (%v): it adds the copy-in",
			res["FIRSTPRIVATE"].OverheadUS, res["PRIVATE"].OverheadUS)
	}
}

func TestTaskSuiteRuns(t *testing.T) {
	res := runSuite(t, core.RTK, 8, "TASK")
	for _, name := range []string{"PARALLEL_TASK", "MASTER_TASK", "TASK_WAIT", "BENCH_TASK_TREE"} {
		if _, ok := res[name]; !ok {
			t.Fatalf("missing %s", name)
		}
	}
	// Conditional (if(false)) tasks are undeferred: cheaper than real ones.
	if res["CONDITIONAL_TASK"].OverheadUS >= res["PARALLEL_TASK"].OverheadUS {
		t.Fatalf("CONDITIONAL_TASK (%v) must be under PARALLEL_TASK (%v)",
			res["CONDITIONAL_TASK"].OverheadUS, res["PARALLEL_TASK"].OverheadUS)
	}
}

// The paper's §6.1 shape: PIK jitter is considerably lower than Linux's.
func TestPIKJitterBelowLinux(t *testing.T) {
	lin := runSuite(t, core.Linux, 16, "SYNCH")
	pik := runSuite(t, core.PIK, 16, "SYNCH")
	var linSD, pikSD float64
	for _, name := range []string{"PARALLEL", "BARRIER", "PARALLEL_FOR", "REDUCTION"} {
		linSD += lin[name].SDUS
		pikSD += pik[name].SDUS
	}
	if pikSD >= linSD {
		t.Fatalf("PIK jitter (%v) must be below Linux (%v)", pikSD, linSD)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := runSuite(t, core.RTK, 8, "SYNCH")
	b := runSuite(t, core.RTK, 8, "SYNCH")
	for name, ra := range a {
		if rb := b[name]; ra.OverheadUS != rb.OverheadUS {
			t.Fatalf("%s: %v vs %v (must be deterministic)", name, ra.OverheadUS, rb.OverheadUS)
		}
	}
}

// Smoke-test every suite on every OpenMP environment at small scale.
func TestAllSuitesAllEnvs(t *testing.T) {
	for _, kind := range []core.Kind{core.Linux, core.RTK, core.PIK} {
		for _, suite := range Suites() {
			res := runSuite(t, kind, 4, suite)
			if len(res) == 0 {
				t.Fatalf("%v/%s: empty results", kind, suite)
			}
		}
	}
}

var _ = omp.Static // keep the omp import for documentation examples
