package epcc

import (
	"fmt"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/omp"
)

// itersPerThread is the worksharing loop length per thread in the
// SCHEDULE suite (EPCC uses larger loops; scaled for simulation).
const itersPerThread = 16

// suitesFor maps suite name to its benchmarks, in the order the paper's
// figures list them. The SCHEDULE chunk ladder depends on the thread
// count (compare the Fig. 7 and Fig. 13 x-axes).
func suitesFor(cfg Config) map[string][]bench {
	return map[string][]bench{
		"ARRAY":    arraySuite(),
		"SCHEDULE": scheduleSuite(cfg.Threads),
		"SYNCH":    synchSuite(),
		"TASK":     taskSuite(),
	}
}

// chargeArray models allocating and initializing a private array.
func chargeArray(tc exec.TC, bytes int64) {
	tc.Charge(tc.Costs().MallocNS + int64(float64(bytes)*memcpyNSPerByte))
}

func arraySuite() []bench {
	ref := func(tc exec.TC, _ *omp.Runtime, cfg Config) int64 {
		return timed(tc, func() {
			for i := 0; i < cfg.InnerReps; i++ {
				chargeArray(tc, cfg.ArrayBytes)
				tc.Charge(cfg.DelayNS)
			}
		})
	}
	mk := func(name string, body func(w *omp.Worker, cfg Config)) bench {
		return bench{
			name:      name,
			reference: ref,
			run: func(tc exec.TC, rt *omp.Runtime, cfg Config) int64 {
				return timed(tc, func() {
					for i := 0; i < cfg.InnerReps; i++ {
						rt.Parallel(tc, cfg.Threads, func(w *omp.Worker) {
							body(w, cfg)
						})
					}
				})
			},
		}
	}
	return []bench{
		{name: "reference_59049", reference: ref, run: ref},
		mk("PRIVATE", func(w *omp.Worker, cfg Config) {
			// Each thread gets an uninitialized private copy.
			chargeArray(w.TC(), cfg.ArrayBytes)
			w.TC().Charge(cfg.DelayNS)
		}),
		mk("FIRSTPRIVATE", func(w *omp.Worker, cfg Config) {
			// Private copy plus a copy-in from the master's array.
			chargeArray(w.TC(), cfg.ArrayBytes)
			w.TC().Charge(int64(float64(cfg.ArrayBytes) * memcpyNSPerByte))
			w.TC().Charge(cfg.DelayNS)
		}),
		mk("COPYPRIVATE", func(w *omp.Worker, cfg Config) {
			v := w.SingleCopyPrivate(func() any {
				chargeArray(w.TC(), cfg.ArrayBytes)
				return struct{}{}
			})
			_ = v
			// Every thread copies the broadcast value out.
			w.TC().Charge(int64(float64(cfg.ArrayBytes) * memcpyNSPerByte))
			w.TC().Charge(cfg.DelayNS)
		}),
		mk("COPYIN", func(w *omp.Worker, cfg Config) {
			// threadprivate copyin: every thread copies the master's
			// threadprivate array at region entry.
			w.TC().Charge(int64(float64(cfg.ArrayBytes) * memcpyNSPerByte))
			w.TC().Charge(cfg.DelayNS)
		}),
	}
}

// scheduleChunks returns the chunk sweep for a thread count, mirroring
// the figure labels (powers of two to 2x threads on PHI; the socket
// ladder on 8XEON).
func scheduleChunks(threads int) []int {
	if threads > 64 {
		return []int{1, 2, 4, 8, 16, 24, 48, 96, 192}
	}
	var out []int
	for c := 1; c <= 2*threads && c <= 128; c *= 2 {
		out = append(out, c)
	}
	return out
}

func scheduleSuite(threads int) []bench {
	mk := func(name string, opt func(chunk int) omp.ForOpt, chunk int) bench {
		return bench{
			name:      name,
			reference: refParallelDelayLoop,
			run: func(tc exec.TC, rt *omp.Runtime, cfg Config) int64 {
				iters := cfg.Threads * itersPerThread
				return timed(tc, func() {
					rt.Parallel(tc, cfg.Threads, func(w *omp.Worker) {
						for i := 0; i < cfg.InnerReps; i++ {
							w.ForEach(0, iters, opt(chunk), func(int) {
								w.TC().Charge(cfg.DelayNS)
							})
						}
					})
				})
			},
		}
	}
	benches := []bench{{name: "reference", reference: refParallelDelayLoop, run: refParallelDelayLoop}}
	benches = append(benches, mk("STATIC", func(int) omp.ForOpt { return omp.ForOpt{Sched: omp.Static} }, 0))
	for _, c := range scheduleChunks(threads) {
		benches = append(benches, mk(fmt.Sprintf("STATIC_%d", c),
			func(chunk int) omp.ForOpt { return omp.ForOpt{Sched: omp.Static, Chunk: chunk} }, c))
	}
	for _, c := range scheduleChunks(threads) {
		benches = append(benches, mk(fmt.Sprintf("DYNAMIC_%d", c),
			func(chunk int) omp.ForOpt { return omp.ForOpt{Sched: omp.Dynamic, Chunk: chunk} }, c))
	}
	for _, c := range []int{1, 2} {
		benches = append(benches, mk(fmt.Sprintf("GUIDED_%d", c),
			func(chunk int) omp.ForOpt { return omp.ForOpt{Sched: omp.Guided, Chunk: chunk} }, c))
	}
	return benches
}

// refParallelDelayLoop: one parallel region, each thread performing the
// ideal per-thread share of the schedule suite's work.
func refParallelDelayLoop(tc exec.TC, rt *omp.Runtime, cfg Config) int64 {
	return timed(tc, func() {
		rt.Parallel(tc, cfg.Threads, func(w *omp.Worker) {
			for i := 0; i < cfg.InnerReps; i++ {
				for j := 0; j < itersPerThread; j++ {
					w.TC().Charge(cfg.DelayNS)
				}
			}
		})
	})
}

func synchSuite() []bench {
	inRegion := func(name string, body func(w *omp.Worker, cfg Config)) bench {
		return bench{
			name:      name,
			reference: refParallelDelay,
			run: func(tc exec.TC, rt *omp.Runtime, cfg Config) int64 {
				return timed(tc, func() {
					rt.Parallel(tc, cfg.Threads, func(w *omp.Worker) {
						for i := 0; i < cfg.InnerReps; i++ {
							body(w, cfg)
						}
					})
				})
			},
		}
	}
	return []bench{
		{name: "reference", reference: refMasterDelay, run: refMasterDelay},
		{
			name:      "PARALLEL",
			reference: refMasterDelay,
			run: func(tc exec.TC, rt *omp.Runtime, cfg Config) int64 {
				return timed(tc, func() {
					for i := 0; i < cfg.InnerReps; i++ {
						rt.Parallel(tc, cfg.Threads, func(w *omp.Worker) {
							w.TC().Charge(cfg.DelayNS)
						})
					}
				})
			},
		},
		inRegion("FOR", func(w *omp.Worker, cfg Config) {
			w.ForEach(0, w.NumThreads(), omp.ForOpt{Sched: omp.Static}, func(int) {
				w.TC().Charge(cfg.DelayNS)
			})
		}),
		{
			name:      "PARALLEL_FOR",
			reference: refMasterDelay,
			run: func(tc exec.TC, rt *omp.Runtime, cfg Config) int64 {
				return timed(tc, func() {
					for i := 0; i < cfg.InnerReps; i++ {
						rt.Parallel(tc, cfg.Threads, func(w *omp.Worker) {
							w.ForEach(0, w.NumThreads(), omp.ForOpt{Sched: omp.Static}, func(int) {
								w.TC().Charge(cfg.DelayNS)
							})
						})
					}
				})
			},
		},
		inRegion("BARRIER", func(w *omp.Worker, cfg Config) {
			w.TC().Charge(cfg.DelayNS)
			w.Barrier()
		}),
		inRegion("SINGLE", func(w *omp.Worker, cfg Config) {
			w.Single(false, func() { w.TC().Charge(cfg.DelayNS) })
		}),
		inRegion("CRITICAL", func(w *omp.Worker, cfg Config) {
			w.Critical("epcc", func() { w.TC().Charge(cfg.DelayNS) })
		}),
		inRegion("LOCK/UNLOCK", func(w *omp.Worker, cfg Config) {
			l := w.Runtime().NewLock()
			l.Set(w)
			w.TC().Charge(cfg.DelayNS)
			l.Unset(w)
		}),
		{
			name:      "ORDERED",
			reference: refParallelDelay,
			run: func(tc exec.TC, rt *omp.Runtime, cfg Config) int64 {
				return timed(tc, func() {
					rt.Parallel(tc, cfg.Threads, func(w *omp.Worker) {
						w.ForOrdered(0, cfg.InnerReps*w.NumThreads(),
							omp.ForOpt{Sched: omp.Static, Chunk: 1},
							func(i int, ordered func(func())) {
								ordered(func() { w.TC().Charge(cfg.DelayNS) })
							})
					})
				})
			},
		},
		{name: "reference_2_tiek", reference: refParallelDelay, run: refParallelDelay},
		inRegion("ATOMIC", func(w *omp.Worker, cfg Config) {
			w.Atomic(func() {})
			w.TC().Charge(cfg.DelayNS)
		}),
		{name: "reference_3", reference: refMasterDelay, run: refMasterDelay},
		{
			name:      "REDUCTION",
			reference: refMasterDelay,
			run: func(tc exec.TC, rt *omp.Runtime, cfg Config) int64 {
				return timed(tc, func() {
					for i := 0; i < cfg.InnerReps; i++ {
						rt.Parallel(tc, cfg.Threads, func(w *omp.Worker) {
							w.TC().Charge(cfg.DelayNS)
							w.Reduce(omp.ReduceSum, 1)
						})
					}
				})
			},
		},
	}
}

func taskSuite() []bench {
	inRegion := func(name string, body func(w *omp.Worker, cfg Config)) bench {
		return bench{
			name:      name,
			reference: refParallelDelay,
			run: func(tc exec.TC, rt *omp.Runtime, cfg Config) int64 {
				return timed(tc, func() {
					rt.Parallel(tc, cfg.Threads, func(w *omp.Worker) {
						body(w, cfg)
					})
				})
			},
		}
	}
	delayTask := func(cfg Config) func(*omp.Worker) {
		return func(w *omp.Worker) { w.TC().Charge(cfg.DelayNS) }
	}
	var tree func(w *omp.Worker, cfg Config, depth int, leafWork bool)
	tree = func(w *omp.Worker, cfg Config, depth int, leafWork bool) {
		if depth == 0 {
			if leafWork {
				w.TC().Charge(cfg.DelayNS)
			}
			return
		}
		if !leafWork {
			w.TC().Charge(cfg.DelayNS)
		}
		w.Task(func(w *omp.Worker) { tree(w, cfg, depth-1, leafWork) })
		w.Task(func(w *omp.Worker) { tree(w, cfg, depth-1, leafWork) })
		w.Taskwait()
	}
	return []bench{
		{name: "reference_1", reference: refMasterDelay, run: refMasterDelay},
		inRegion("PARALLEL_TASK", func(w *omp.Worker, cfg Config) {
			for i := 0; i < cfg.InnerReps; i++ {
				w.Task(delayTask(cfg))
			}
			w.Barrier()
		}),
		inRegion("MASTER_TASK", func(w *omp.Worker, cfg Config) {
			w.Master(func() {
				for i := 0; i < cfg.InnerReps*w.NumThreads(); i++ {
					w.Task(delayTask(cfg))
				}
			})
			w.Barrier()
		}),
		inRegion("MASTER_TASK_BUSY_SLAVES", func(w *omp.Worker, cfg Config) {
			if w.ThreadNum() == 0 {
				for i := 0; i < cfg.InnerReps*w.NumThreads(); i++ {
					w.Task(delayTask(cfg))
				}
			} else {
				for i := 0; i < cfg.InnerReps; i++ {
					w.TC().Charge(cfg.DelayNS)
				}
			}
			w.Barrier()
		}),
		inRegion("CONDITIONAL_TASK", func(w *omp.Worker, cfg Config) {
			for i := 0; i < cfg.InnerReps; i++ {
				w.TaskIf(false, delayTask(cfg))
			}
			w.Barrier()
		}),
		inRegion("TASK_WAIT", func(w *omp.Worker, cfg Config) {
			for i := 0; i < cfg.InnerReps; i++ {
				w.Task(delayTask(cfg))
				w.Taskwait()
			}
			w.Barrier()
		}),
		inRegion("TASK_BARRIER", func(w *omp.Worker, cfg Config) {
			for i := 0; i < cfg.InnerReps; i++ {
				w.Task(delayTask(cfg))
				w.Barrier()
			}
		}),
		inRegion("NESTED_TASK", func(w *omp.Worker, cfg Config) {
			for i := 0; i < cfg.InnerReps; i++ {
				w.Task(func(w *omp.Worker) {
					w.Task(delayTask(cfg))
					w.Taskwait()
				})
			}
			w.Barrier()
		}),
		inRegion("NESTED_MASTER_TASK", func(w *omp.Worker, cfg Config) {
			w.Master(func() {
				for i := 0; i < cfg.InnerReps*w.NumThreads(); i++ {
					w.Task(func(w *omp.Worker) {
						w.Task(delayTask(cfg))
						w.Taskwait()
					})
				}
			})
			w.Barrier()
		}),
		{name: "reference_2", reference: refMasterDelay, run: refMasterDelay},
		inRegion("BENCH_TASK_TREE", func(w *omp.Worker, cfg Config) {
			w.Master(func() { tree(w, cfg, 6, false) })
			w.Barrier()
		}),
		inRegion("LEAF_TASK_TREE", func(w *omp.Worker, cfg Config) {
			w.Master(func() { tree(w, cfg, 6, true) })
			w.Barrier()
		}),
	}
}
