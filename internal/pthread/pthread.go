// Package pthread implements the POSIX-threads compatibility layer that
// RTK interposes between libomp and the kernel (§3.3). Two variants exist,
// mirroring the paper's Figure 2:
//
//   - PTE: a port of the "POSIX Threads for Embedded systems" library.
//     Every primitive goes through the generic portable layering (object
//     attribute checks, OS-abstraction indirection), and the higher-level
//     objects (condition variables, barriers) are built generically from
//     the primitive ones. "Although redundancies are easy to spot, it is
//     still reasonably efficient."
//   - Custom: the revisited implementation, customized to the Nautilus
//     environment, that directly leverages the kernel's native constructs
//     (futex-generation barriers and condvars, no generic layering).
//
// Both variants are written against the exec layer, so the same code
// serves the Linux-analogue environment (where it stands in for glibc's
// NPTL) and the kernel environments.
package pthread

import (
	"fmt"
	"sync/atomic"

	"github.com/interweaving/komp/internal/exec"
)

// Impl selects the implementation variant.
type Impl int

// Implementation variants.
const (
	// NPTL is the Linux-native pthread implementation (no extra
	// layering; used for the Linux and PIK environments, which run the
	// unmodified user-level library).
	NPTL Impl = iota
	// PTE is the portable embedded port (Fig. 2a).
	PTE
	// Custom is the Nautilus-customized implementation (Fig. 2b).
	Custom
)

func (i Impl) String() string {
	switch i {
	case PTE:
		return "pte"
	case Custom:
		return "custom"
	default:
		return "nptl"
	}
}

// Lib is a pthread library instance bound to an execution layer.
type Lib struct {
	Layer exec.Layer
	Impl  Impl

	// TaxNS is the per-operation layering overhead of the portable PTE
	// path (extra call layers, generic attribute handling). Zero for
	// NPTL and Custom.
	TaxNS int64

	threadSeq atomic.Int64
}

// New creates a pthread library over a layer.
func New(layer exec.Layer, impl Impl) *Lib {
	l := &Lib{Layer: layer, Impl: impl}
	if impl == PTE {
		l.TaxNS = 35
	}
	return l
}

func (l *Lib) tax(tc exec.TC) {
	if l.TaxNS > 0 {
		tc.Charge(l.TaxNS)
	}
}

// --- Threads ---

// Thread is a pthread thread handle.
type Thread struct {
	ID     int64
	handle exec.Handle
}

// Attr carries the thread attributes libomp sets.
type Attr struct {
	// CPU pins the thread (pthread_attr_setaffinity_np); -1 lets the
	// library place it round-robin.
	CPU int
	// StackSize is recorded (and charged as an allocation) but the
	// simulated threads do not consume real stack.
	StackSize int64
}

// Create starts a new thread running fn (pthread_create).
func (l *Lib) Create(tc exec.TC, attr Attr, fn func(exec.TC)) *Thread {
	l.tax(tc)
	if attr.StackSize > 0 {
		tc.Charge(tc.Costs().MallocNS)
	}
	cpu := attr.CPU
	if cpu < 0 {
		cpu = int(l.threadSeq.Load()) % l.Layer.NumCPUs()
	}
	id := l.threadSeq.Add(1)
	h := tc.Spawn(fmt.Sprintf("pthread-%d", id), cpu, fn)
	return &Thread{ID: id, handle: h}
}

// Join waits for the thread to exit (pthread_join).
func (l *Lib) Join(tc exec.TC, t *Thread) {
	l.tax(tc)
	t.handle.Join(tc)
}

// --- Mutex ---

// Mutex is a futex-based mutex (states: 0 unlocked, 1 locked, 2 locked
// with waiters), the classic NPTL design.
type Mutex struct {
	lib   *Lib
	state exec.Word
}

// NewMutex creates a mutex.
func (l *Lib) NewMutex() *Mutex { return &Mutex{lib: l} }

// Lock acquires the mutex.
func (m *Mutex) Lock(tc exec.TC) {
	c := tc.Costs()
	m.lib.tax(tc)
	tc.Charge(c.AtomicRMWNS)
	if m.state.CompareAndSwap(0, 1) {
		return
	}
	for {
		// Mark contended and sleep.
		tc.Charge(c.AtomicRMWNS + c.CacheLineXferNS)
		if m.state.Load() == 2 || m.state.CompareAndSwap(1, 2) {
			tc.FutexWait(&m.state, 2)
		}
		tc.Charge(c.AtomicRMWNS)
		if m.state.CompareAndSwap(0, 2) {
			return
		}
	}
}

// TryLock attempts to acquire the mutex without blocking.
func (m *Mutex) TryLock(tc exec.TC) bool {
	m.lib.tax(tc)
	tc.Charge(tc.Costs().AtomicRMWNS)
	return m.state.CompareAndSwap(0, 1)
}

// Unlock releases the mutex.
func (m *Mutex) Unlock(tc exec.TC) {
	c := tc.Costs()
	m.lib.tax(tc)
	tc.Charge(c.AtomicRMWNS)
	if m.state.CompareAndSwap(1, 0) {
		return // no waiters
	}
	m.state.Store(0)
	tc.FutexWake(&m.state, 1)
}

// --- Condition variables ---

// Cond is a condition variable. The PTE variant is built generically on a
// waiter-count + futex sequence; the Custom variant maps directly to the
// kernel wait queue (modeled as the same mechanism minus the layering
// tax, plus a cheaper broadcast path).
type Cond struct {
	lib *Lib
	seq exec.Word
}

// NewCond creates a condition variable.
func (l *Lib) NewCond() *Cond { return &Cond{lib: l} }

// Wait atomically releases m and blocks until signaled, then reacquires m.
func (cv *Cond) Wait(tc exec.TC, m *Mutex) {
	cv.lib.tax(tc)
	seq := cv.seq.Load()
	m.Unlock(tc)
	tc.FutexWait(&cv.seq, seq)
	m.Lock(tc)
}

// Signal wakes one waiter.
func (cv *Cond) Signal(tc exec.TC) {
	cv.lib.tax(tc)
	tc.Charge(tc.Costs().AtomicRMWNS)
	cv.seq.Add(1)
	tc.FutexWake(&cv.seq, 1)
}

// Broadcast wakes all waiters.
func (cv *Cond) Broadcast(tc exec.TC) {
	cv.lib.tax(tc)
	tc.Charge(tc.Costs().AtomicRMWNS)
	cv.seq.Add(1)
	tc.FutexWake(&cv.seq, -1)
}

// --- Semaphore (PTE provides one; libomp uses it on some paths) ---

// Sem is a counting semaphore.
type Sem struct {
	lib   *Lib
	count exec.Word
}

// NewSem creates a semaphore with an initial count.
func (l *Lib) NewSem(initial uint32) *Sem {
	s := &Sem{lib: l}
	s.count.Store(initial)
	return s
}

// Post increments the semaphore, waking one waiter.
func (s *Sem) Post(tc exec.TC) {
	s.lib.tax(tc)
	tc.Charge(tc.Costs().AtomicRMWNS)
	s.count.Add(1)
	tc.FutexWake(&s.count, 1)
}

// Wait decrements the semaphore, blocking while it is zero.
func (s *Sem) Wait(tc exec.TC) {
	s.lib.tax(tc)
	c := tc.Costs()
	for {
		tc.Charge(c.AtomicRMWNS)
		v := s.count.Load()
		if v > 0 && s.count.CompareAndSwap(v, v-1) {
			return
		}
		if v == 0 {
			tc.FutexWait(&s.count, 0)
		}
	}
}

// --- Once ---

// Once implements pthread_once.
type Once struct {
	lib  *Lib
	done exec.Word
	mu   Mutex
}

// NewOnce creates a Once.
func (l *Lib) NewOnce() *Once {
	o := &Once{lib: l}
	o.mu.lib = l
	return o
}

// Do runs fn exactly once across all threads.
func (o *Once) Do(tc exec.TC, fn func()) {
	if o.done.Load() == 1 {
		return
	}
	o.mu.Lock(tc)
	if o.done.Load() == 0 {
		fn()
		o.done.Store(1)
	}
	o.mu.Unlock(tc)
}

// --- TLS keys (pthread_key_create / getspecific / setspecific) ---

// Key is a pthread TLS key. Values are per (key, thread-context) — the
// simulated analogue of per-thread slots.
type Key struct {
	lib  *Lib
	mu   Mutex
	vals map[exec.TC]any
}

// NewKey creates a TLS key.
func (l *Lib) NewKey() *Key {
	k := &Key{lib: l, vals: make(map[exec.TC]any)}
	k.mu.lib = l
	return k
}

// Set stores the calling thread's value (pthread_setspecific).
func (k *Key) Set(tc exec.TC, v any) {
	k.lib.tax(tc)
	tc.Charge(tc.Costs().TLSAccessNS)
	k.mu.Lock(tc)
	k.vals[tc] = v
	k.mu.Unlock(tc)
}

// Get loads the calling thread's value (pthread_getspecific).
func (k *Key) Get(tc exec.TC) any {
	k.lib.tax(tc)
	tc.Charge(tc.Costs().TLSAccessNS)
	k.mu.Lock(tc)
	v := k.vals[tc]
	k.mu.Unlock(tc)
	return v
}
