package pthread

import (
	"sync/atomic"
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/sim"
)

func testLayers() map[string]func() exec.Layer {
	return map[string]func() exec.Layer{
		"real": func() exec.Layer { return exec.NewRealLayer(8) },
		"sim": func() exec.Layer {
			return exec.NewSimLayer(sim.New(8, 1), exec.Costs{
				AtomicRMWNS: 20, FutexWaitEntryNS: 100, FutexWakeEntryNS: 100,
				FutexWakeLatencyNS: 200, FutexWakeStaggerNS: 20,
			})
		},
	}
}

func allImpls() []Impl { return []Impl{NPTL, PTE, Custom} }

func TestMutexMutualExclusion(t *testing.T) {
	for lname, mk := range testLayers() {
		for _, impl := range allImpls() {
			impl := impl
			t.Run(lname+"/"+impl.String(), func(t *testing.T) {
				layer := mk()
				lib := New(layer, impl)
				counter := 0
				_, err := layer.Run(func(tc exec.TC) {
					m := lib.NewMutex()
					var ths []*Thread
					for i := 0; i < 6; i++ {
						ths = append(ths, lib.Create(tc, Attr{CPU: i % 8}, func(tc exec.TC) {
							for k := 0; k < 50; k++ {
								m.Lock(tc)
								counter++
								m.Unlock(tc)
							}
						}))
					}
					for _, th := range ths {
						lib.Join(tc, th)
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				if counter != 300 {
					t.Fatalf("counter = %d, want 300", counter)
				}
			})
		}
	}
}

func TestTryLock(t *testing.T) {
	layer := exec.NewSimLayer(sim.New(2, 1), exec.Costs{})
	lib := New(layer, NPTL)
	_, err := layer.Run(func(tc exec.TC) {
		m := lib.NewMutex()
		if !m.TryLock(tc) {
			t.Error("first TryLock must succeed")
		}
		if m.TryLock(tc) {
			t.Error("second TryLock must fail")
		}
		m.Unlock(tc)
		if !m.TryLock(tc) {
			t.Error("TryLock after Unlock must succeed")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCondSignalBroadcast(t *testing.T) {
	for lname, mk := range testLayers() {
		t.Run(lname, func(t *testing.T) {
			layer := mk()
			lib := New(layer, NPTL)
			ready := 0
			woken := 0
			_, err := layer.Run(func(tc exec.TC) {
				m := lib.NewMutex()
				cv := lib.NewCond()
				var ths []*Thread
				for i := 0; i < 4; i++ {
					ths = append(ths, lib.Create(tc, Attr{CPU: 1 + i%7}, func(tc exec.TC) {
						m.Lock(tc)
						ready++
						for ready < 100 {
							cv.Wait(tc, m)
						}
						woken++
						m.Unlock(tc)
					}))
				}
				// Wait for all to be waiting, then broadcast.
				for {
					m.Lock(tc)
					r := ready
					m.Unlock(tc)
					if r == 4 {
						break
					}
					tc.Yield()
					tc.Sleep(1000)
				}
				m.Lock(tc)
				ready = 100
				cv.Broadcast(tc)
				m.Unlock(tc)
				for _, th := range ths {
					lib.Join(tc, th)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if woken != 4 {
				t.Fatalf("woken = %d, want 4", woken)
			}
		})
	}
}

func TestBarrierAllVariants(t *testing.T) {
	for lname, mk := range testLayers() {
		for _, impl := range allImpls() {
			impl := impl
			t.Run(lname+"/"+impl.String(), func(t *testing.T) {
				layer := mk()
				lib := New(layer, impl)
				const n = 6
				const rounds = 10
				phase := make([]atomic.Int64, n)
				var serialCount atomic.Int64
				_, err := layer.Run(func(tc exec.TC) {
					b := lib.NewBarrier(n)
					var ths []*Thread
					for i := 0; i < n; i++ {
						i := i
						ths = append(ths, lib.Create(tc, Attr{CPU: i % 8}, func(tc exec.TC) {
							for r := 0; r < rounds; r++ {
								phase[i].Store(int64(r))
								if b.Wait(tc) {
									serialCount.Add(1)
									// Everyone must have reached r.
									for j := 0; j < n; j++ {
										if got := phase[j].Load(); got < int64(r) {
											t.Errorf("round %d: thread %d at %d", r, j, got)
										}
									}
								}
							}
						}))
					}
					for _, th := range ths {
						lib.Join(tc, th)
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				if serialCount.Load() != rounds {
					t.Fatalf("serial thread count = %d, want %d", serialCount.Load(), rounds)
				}
			})
		}
	}
}

func TestPTEBarrierSlowerThanCustom(t *testing.T) {
	// The paper's motivation for customizing: the generic PTE layering is
	// measurably slower on kernel primitives.
	run := func(impl Impl) int64 {
		layer := exec.NewSimLayer(sim.New(8, 1), exec.Costs{
			AtomicRMWNS: 20, CacheLineXferNS: 40,
			FutexWaitEntryNS: 80, FutexWakeEntryNS: 80,
			FutexWakeLatencyNS: 300, FutexWakeStaggerNS: 30,
		})
		lib := New(layer, impl)
		elapsed, err := layer.Run(func(tc exec.TC) {
			b := lib.NewBarrier(8)
			var ths []*Thread
			for i := 0; i < 8; i++ {
				ths = append(ths, lib.Create(tc, Attr{CPU: i}, func(tc exec.TC) {
					for r := 0; r < 200; r++ {
						b.Wait(tc)
					}
				}))
			}
			for _, th := range ths {
				lib.Join(tc, th)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	pte, custom := run(PTE), run(Custom)
	if pte <= custom {
		t.Fatalf("PTE barrier (%d) must be slower than customized (%d)", pte, custom)
	}
}

func TestOnce(t *testing.T) {
	layer := exec.NewSimLayer(sim.New(8, 1), exec.Costs{})
	lib := New(layer, NPTL)
	calls := 0
	_, err := layer.Run(func(tc exec.TC) {
		o := lib.NewOnce()
		var ths []*Thread
		for i := 0; i < 8; i++ {
			ths = append(ths, lib.Create(tc, Attr{CPU: i}, func(tc exec.TC) {
				o.Do(tc, func() { calls++ })
			}))
		}
		for _, th := range ths {
			lib.Join(tc, th)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("once ran %d times", calls)
	}
}

func TestSemaphore(t *testing.T) {
	layer := exec.NewSimLayer(sim.New(4, 1), exec.Costs{FutexWakeLatencyNS: 100})
	lib := New(layer, PTE)
	order := []string{}
	_, err := layer.Run(func(tc exec.TC) {
		s := lib.NewSem(0)
		th := lib.Create(tc, Attr{CPU: 1}, func(tc exec.TC) {
			s.Wait(tc)
			order = append(order, "consumed")
		})
		tc.Charge(5000)
		order = append(order, "produced")
		s.Post(tc)
		lib.Join(tc, th)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "produced" || order[1] != "consumed" {
		t.Fatalf("order = %v", order)
	}
}

func TestTLSKey(t *testing.T) {
	layer := exec.NewSimLayer(sim.New(4, 1), exec.Costs{})
	lib := New(layer, NPTL)
	vals := map[int]int{}
	_, err := layer.Run(func(tc exec.TC) {
		key := lib.NewKey()
		var ths []*Thread
		for i := 0; i < 4; i++ {
			i := i
			ths = append(ths, lib.Create(tc, Attr{CPU: i}, func(tc exec.TC) {
				key.Set(tc, i*10)
				tc.Yield()
				vals[i] = key.Get(tc).(int)
			}))
		}
		for _, th := range ths {
			lib.Join(tc, th)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if vals[i] != i*10 {
			t.Fatalf("thread %d saw %d, want %d (keys must be thread-local)", i, vals[i], i*10)
		}
	}
}
