package pthread

import "github.com/interweaving/komp/internal/exec"

// Barrier is a pthread barrier. The last arriving thread's Wait returns
// true (PTHREAD_BARRIER_SERIAL_THREAD).
type Barrier interface {
	Wait(tc exec.TC) bool
}

// NewBarrier creates a barrier for n threads using the library's variant:
// PTE builds it generically from a mutex and a condition variable (the
// portable path, with broadcast wake storms); NPTL and Custom use the
// futex-generation design that wakes all waiters with one kernel call.
func (l *Lib) NewBarrier(n int) Barrier {
	if l.Impl == PTE {
		b := &condBarrier{lib: l, n: uint32(n)}
		b.mu.lib = l
		b.cv.lib = l
		return b
	}
	return &futexBarrier{lib: l, n: uint32(n)}
}

// condBarrier is the generic PTE-style barrier: count under a mutex, block
// on a condvar, broadcast on the last arrival. Every waiter must reacquire
// the mutex on wakeup, serializing the exit path.
type condBarrier struct {
	lib   *Lib
	n     uint32
	mu    Mutex
	cv    Cond
	count uint32
	gen   uint32
}

func (b *condBarrier) Wait(tc exec.TC) bool {
	b.lib.tax(tc)
	b.mu.Lock(tc)
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cv.Broadcast(tc)
		b.mu.Unlock(tc)
		return true
	}
	for b.gen == gen {
		b.cv.Wait(tc, &b.mu)
	}
	b.mu.Unlock(tc)
	return false
}

// futexBarrier is the customized design: a lock-free arrival counter and a
// generation word woken once.
type futexBarrier struct {
	lib     *Lib
	n       uint32
	arrived exec.Word
	gen     exec.Word
}

func (b *futexBarrier) Wait(tc exec.TC) bool {
	c := tc.Costs()
	b.lib.tax(tc)
	tc.Charge(c.AtomicRMWNS + c.CacheLineXferNS)
	gen := b.gen.Load()
	if b.arrived.Add(1) == b.n {
		b.arrived.Store(0)
		b.gen.Add(1)
		tc.FutexWake(&b.gen, -1)
		return true
	}
	for b.gen.Load() == gen {
		tc.FutexWait(&b.gen, gen)
	}
	return false
}
