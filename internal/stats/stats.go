// Package stats provides the small statistical helpers used by the
// benchmark harness: mean, standard deviation, percentiles, and the
// geometric mean used for the paper's headline "~22% geomean gain" claims.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for n < 2).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// GeoMean returns the geometric mean of xs. All inputs must be positive;
// non-positive values are skipped.
func GeoMean(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Min returns the minimum of xs (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	if p <= 0 {
		return ys[0]
	}
	if p >= 100 {
		return ys[len(ys)-1]
	}
	rank := p / 100 * float64(len(ys)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return ys[lo]
	}
	frac := rank - float64(lo)
	return ys[lo]*(1-frac) + ys[hi]*frac
}

// Summary bundles the descriptive statistics the EPCC harness reports.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
}
