package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !close(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean must be 0")
	}
}

func TestStdDev(t *testing.T) {
	if !close(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2.13808993529939) {
		t.Fatalf("stddev = %v", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-sample stddev must be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if !close(GeoMean([]float64{1, 4}), 2) {
		t.Fatal("geomean wrong")
	}
	// The paper's headline: geomean of per-benchmark speedups.
	if g := GeoMean([]float64{1.22, 1.22, 1.22}); !close(g, 1.22) {
		t.Fatalf("constant geomean = %v", g)
	}
	if GeoMean([]float64{-1, 0}) != 0 {
		t.Fatal("all-nonpositive geomean must be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if !close(Percentile(xs, 50), 3) {
		t.Fatal("median wrong")
	}
	if !close(Percentile(xs, 0), 1) || !close(Percentile(xs, 100), 5) {
		t.Fatal("extremes wrong")
	}
	if !close(Percentile(xs, 25), 2) {
		t.Fatalf("p25 = %v", Percentile(xs, 25))
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 3})
	if s.N != 2 || !close(s.Mean, 2) || !close(s.Min, 1) || !close(s.Max, 3) {
		t.Fatalf("summary = %+v", s)
	}
}

func TestPropertyGeoMeanBetweenMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) && x < 1e18 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := GeoMean(xs)
		return g >= Min(xs)-1e-9*Min(xs) && g <= Max(xs)*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMeanShiftInvariance(t *testing.T) {
	f := func(raw []float64, shift float64) bool {
		if len(raw) == 0 || math.IsNaN(shift) || math.IsInf(shift, 0) {
			return true
		}
		var xs []float64
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e15 {
				return true
			}
			xs = append(xs, x)
		}
		if math.Abs(shift) > 1e15 {
			return true
		}
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		lhs := Mean(shifted)
		rhs := Mean(xs) + shift
		scale := math.Max(1, math.Max(math.Abs(lhs), math.Abs(rhs)))
		return math.Abs(lhs-rhs) < 1e-6*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
