package exec

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/interweaving/komp/internal/ompt"
)

// RealLayer executes threads as goroutines with real synchronization. It
// is the layer behind the public komp API when used as an ordinary Go
// parallelism library; the examples run on it.
type RealLayer struct {
	ncpu  int
	costs Costs

	// Spine, if set before Run, receives ThreadBegin/ThreadEnd for the
	// main thread and every spawned thread, stamped with wall-clock
	// nanoseconds since Run. A nil spine costs one comparison per spawn.
	Spine *ompt.Spine

	tidSeq atomic.Int32

	start time.Time

	futexMu sync.Mutex
	futexQ  map[*Word][]chan struct{}

	wg sync.WaitGroup

	rngMu sync.Mutex
	rng   *rand.Rand

	// startMu guards the lazy start-epoch init in TC: with several
	// session handles created concurrently (multi-tenant drivers), the
	// first two TC calls would otherwise race on l.start.
	startMu sync.Mutex

	// Stall watchdog (SetWatchdog): progress counts layer-level events
	// (spawns and futex wakes); the monitor goroutine fires when the
	// counter stops moving for a full period. idleParked counts threads
	// deliberately parked for an unbounded time (IdlePark) — an
	// admission queue's waiters are idle, not stuck — and suppresses the
	// dump while nonzero.
	watchdogD  time.Duration
	watchdogFn func(stacks string)
	progress   atomic.Uint64
	idleParked atomic.Int32
}

// IdleParker is implemented by layers whose stall watchdog must be told
// about intentional, unbounded parks. A thread about to block with no
// bounded wake guarantee — e.g. in a tenancy admission queue behind a
// saturated pool — calls IdlePark before blocking and the returned done
// after waking, so the watchdog can tell "parked idle awaiting
// admission" from "stalled in FutexWait".
type IdleParker interface {
	IdlePark() (done func())
}

// IdlePark marks the calling thread as deliberately parked until the
// returned done is called. While any thread is idle-parked the stall
// watchdog does not dump: a saturated admission queue can legitimately
// sit still for a whole period with every non-parked thread busy in
// long uninstrumented compute, which is indistinguishable from a hang
// by the progress counter alone. The tradeoff is documented at
// SetWatchdog: a genuine deadlock that includes an idle-parked thread
// is only caught once the parker's wake source fails AND the park
// exits, so parkers should pair IdlePark with their own timeouts when
// that matters. Both the park and the unpark count as progress, so the
// period after a park transition always gets grace.
func (l *RealLayer) IdlePark() (done func()) {
	l.idleParked.Add(1)
	l.progress.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			l.idleParked.Add(-1)
			l.progress.Add(1)
		})
	}
}

// NewRealLayer creates a real layer that reports ncpu CPUs (typically
// runtime.NumCPU()).
func NewRealLayer(ncpu int) *RealLayer {
	if ncpu < 1 {
		ncpu = 1
	}
	return &RealLayer{
		ncpu:   ncpu,
		futexQ: make(map[*Word][]chan struct{}),
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// NumCPUs returns the configured CPU count.
func (l *RealLayer) NumCPUs() int { return l.ncpu }

// Costs returns the (all-zero) cost table; real time is measured instead.
func (l *RealLayer) Costs() *Costs { return &l.costs }

// SetWatchdog arms an opt-in stall watchdog mirroring the simulator's
// deadlock detector (sim.SetWatchdog): if no layer-level progress — a
// thread spawn or a futex wake — happens for a full period d while Run
// is active, report is called once with a dump of every goroutine's
// stack, so a hung real-layer test fails immediately with the blocked
// stacks instead of waiting out the 10-minute go test timeout. A nil
// report panics with the dump. Call before Run; the watchdog stops when
// Run returns. Periods of genuine quiet compute (no synchronization at
// all) also count as stalls — pick d well above the workload's longest
// synchronization-free stretch. Stall periods are not reported while any
// thread is idle-parked (IdlePark): waiters of a saturated admission
// queue are idle, not stuck, and must not trigger a goroutine dump — at
// the cost that a real deadlock is only reported once no intentional
// park remains.
func (l *RealLayer) SetWatchdog(d time.Duration, report func(stacks string)) {
	l.watchdogD = d
	l.watchdogFn = report
}

// startWatchdog launches the monitor goroutine; the returned stop
// terminates it (Run defers it).
func (l *RealLayer) startWatchdog() (stop func()) {
	if l.watchdogD <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(l.watchdogD)
		defer tick.Stop()
		last := l.progress.Load()
		fresh := true // the first period after any progress gets grace
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				cur := l.progress.Load()
				if cur != last || fresh {
					fresh = cur != last
					last = cur
					continue
				}
				if l.idleParked.Load() > 0 {
					// Threads are deliberately parked (IdlePark): a quiet
					// period is expected, not a stall. Keep watching — the
					// unpark bumps progress, so the first period after the
					// queue drains gets grace again.
					continue
				}
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				dump := string(buf[:n])
				if l.watchdogFn != nil {
					l.watchdogFn(dump)
					return
				}
				panic("exec: real-layer watchdog: no progress for " +
					l.watchdogD.String() + "\n" + dump)
			}
		}
	}()
	return func() { close(done) }
}

// Run executes main on the calling goroutine and waits for all spawned
// threads to finish. It returns the elapsed wall-clock nanoseconds.
func (l *RealLayer) Run(main func(TC)) (int64, error) {
	l.start = time.Now()
	defer l.startWatchdog()()
	tc := &realTC{layer: l, cpu: 0}
	sp := l.Spine
	tid := l.tidSeq.Add(1) - 1
	if sp.Enabled(ompt.ThreadBegin) {
		sp.Emit(ompt.Event{Kind: ompt.ThreadBegin, Thread: tid, TimeNS: tc.Now()})
	}
	main(tc)
	l.wg.Wait()
	elapsed := time.Since(l.start).Nanoseconds()
	if sp.Enabled(ompt.ThreadEnd) {
		sp.Emit(ompt.Event{Kind: ompt.ThreadEnd, Thread: tid, TimeNS: elapsed})
	}
	return elapsed, nil
}

// TC returns a thread context for the calling goroutine, for interactive
// use of the layer without Run (the public API's session mode). Spawned
// threads must be joined by the caller.
func (l *RealLayer) TC() TC {
	l.startMu.Lock()
	if l.start.IsZero() {
		l.start = time.Now()
	}
	l.startMu.Unlock()
	return &realTC{layer: l, cpu: 0}
}

type realTC struct {
	layer *RealLayer
	cpu   int
}

func (t *realTC) CPU() int                  { return t.cpu }
func (t *realTC) NumCPUs() int              { return t.layer.ncpu }
func (t *realTC) Costs() *Costs             { return &t.layer.costs }
func (t *realTC) Charge(ns int64)           {}
func (t *realTC) MoveCPU(cpu int)           { t.cpu = cpu }
func (t *realTC) Contend(l *Line, ns int64) {}
func (t *realTC) Now() int64                { return time.Since(t.layer.start).Nanoseconds() }
func (t *realTC) Yield()                    { runtime.Gosched() }

func (t *realTC) Sleep(ns int64) { time.Sleep(time.Duration(ns)) }

func (t *realTC) RandIntn(n int) int {
	t.layer.rngMu.Lock()
	defer t.layer.rngMu.Unlock()
	return t.layer.rng.Intn(n)
}

type realHandle struct{ done chan struct{} }

func (h *realHandle) Join(TC) { <-h.done }

// Alarm arms a one-shot wall-clock timer: fn runs on the timer
// goroutine with a context of its own. stop is time.Timer.Stop — a
// firing already in flight may still run concurrently with it.
func (t *realTC) Alarm(ns int64, fn func(TC)) (stop func()) {
	l := t.layer
	timer := time.AfterFunc(time.Duration(ns), func() {
		fn(&realTC{layer: l, cpu: -1})
	})
	return func() { timer.Stop() }
}

func (t *realTC) Spawn(name string, cpu int, fn func(TC)) Handle {
	h := &realHandle{done: make(chan struct{})}
	l := t.layer
	l.progress.Add(1)
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		defer close(h.done)
		child := &realTC{layer: l, cpu: cpu}
		sp := l.Spine
		if sp.Enabled(ompt.ThreadBegin) || sp.Enabled(ompt.ThreadEnd) {
			tid := l.tidSeq.Add(1) - 1
			if sp.Enabled(ompt.ThreadBegin) {
				sp.Emit(ompt.Event{Kind: ompt.ThreadBegin, Thread: tid, CPU: int32(cpu), TimeNS: child.Now(), Obj: uint64(cpu)})
			}
			fn(child)
			if sp.Enabled(ompt.ThreadEnd) {
				sp.Emit(ompt.Event{Kind: ompt.ThreadEnd, Thread: tid, CPU: int32(cpu), TimeNS: child.Now(), Obj: uint64(cpu)})
			}
			return
		}
		fn(child)
	}()
	return h
}

func (t *realTC) FutexWait(w *Word, val uint32) bool {
	l := t.layer
	l.futexMu.Lock()
	if w.Load() != val {
		l.futexMu.Unlock()
		return false
	}
	ch := make(chan struct{})
	l.futexQ[w] = append(l.futexQ[w], ch)
	l.futexMu.Unlock()
	<-ch
	return true
}

func (t *realTC) FutexWake(w *Word, n int) int {
	l := t.layer
	l.progress.Add(1)
	l.futexMu.Lock()
	q := l.futexQ[w]
	if n < 0 || n > len(q) {
		n = len(q)
	}
	for i := 0; i < n; i++ {
		close(q[i])
	}
	if n == len(q) {
		delete(l.futexQ, w)
	} else {
		l.futexQ[w] = append([]chan struct{}(nil), q[n:]...)
	}
	l.futexMu.Unlock()
	return n
}
