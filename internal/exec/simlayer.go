package exec

import (
	"sync/atomic"

	"github.com/interweaving/komp/internal/ompt"
	"github.com/interweaving/komp/internal/sim"
)

// SimLayer executes threads as procs of the deterministic discrete-event
// simulator, charging every primitive from an environment cost table.
// All the paper's figures are regenerated on this layer.
type SimLayer struct {
	Sim   *sim.Sim
	costs Costs
	ft    *sim.FutexTable

	// SpawnHook, if set, is invoked on the spawning thread for every
	// Spawn. The simulated kernels use it to add scheduler bookkeeping
	// (e.g. a kernel thread object) or extra environment costs.
	SpawnHook func(tc TC, cpu int)

	// Spine, if set before Run, receives ThreadBegin/ThreadEnd for the
	// main proc and every spawned proc, stamped with virtual time. Thread
	// indices are assigned in spawn order, which the simulator makes
	// deterministic.
	Spine *ompt.Spine

	tidSeq atomic.Int32
}

// NewSimLayer wraps a simulator with an environment cost table.
func NewSimLayer(s *sim.Sim, costs Costs) *SimLayer {
	return &SimLayer{Sim: s, costs: costs, ft: sim.NewFutexTable(s)}
}

// NumCPUs returns the simulator's CPU count.
func (l *SimLayer) NumCPUs() int { return l.Sim.NumCPU() }

// Futexes exposes the layer's futex table for diagnostics and fault
// injection (lost-wake hooks, timed-recheck recovery).
func (l *SimLayer) Futexes() *sim.FutexTable { return l.ft }

// FaultFutex installs a lost-wake fault on the layer's futex table and
// arms the timed-recheck recovery path: lose is consulted per delivered
// wake (true drops it), and blocked waiters re-check their word every
// recheckNS of virtual time so a dropped wake stalls the waiter instead
// of hanging it forever. Either argument may be zero-valued to leave that
// half untouched.
func (l *SimLayer) FaultFutex(lose func() bool, recheckNS int64) {
	if lose != nil {
		l.ft.LoseWake = lose
	}
	if recheckNS > 0 {
		l.ft.SetRecheck(recheckNS, 0)
	}
}

// Costs returns the environment cost table.
func (l *SimLayer) Costs() *Costs { return &l.costs }

// Run starts main as a proc on CPU 0 at the current virtual time and runs
// the simulator to completion. It returns the virtual nanoseconds elapsed
// between the call and the last event.
func (l *SimLayer) Run(main func(TC)) (int64, error) {
	start := l.Sim.Now()
	l.Sim.Go("main", 0, start, func(p *sim.Proc) {
		tc := &simTC{layer: l, proc: p}
		sp := l.Spine
		tid := l.tidSeq.Add(1) - 1
		if sp.Enabled(ompt.ThreadBegin) {
			sp.Emit(ompt.Event{Kind: ompt.ThreadBegin, Thread: tid, TimeNS: tc.Now()})
		}
		main(tc)
		if sp.Enabled(ompt.ThreadEnd) {
			sp.Emit(ompt.Event{Kind: ompt.ThreadEnd, Thread: tid, TimeNS: tc.Now()})
		}
	})
	if err := l.Sim.Run(); err != nil {
		return l.Sim.Now() - start, err
	}
	return l.Sim.Now() - start, nil
}

type simTC struct {
	layer *SimLayer
	proc  *sim.Proc
}

// ProcHolder is implemented by simulator-backed thread contexts; the
// kernel layers use it to attach kernel thread state to the underlying
// proc.
type ProcHolder interface {
	Proc() *sim.Proc
}

// Proc exposes the underlying simulator proc (used by the kernel layers).
func (t *simTC) Proc() *sim.Proc { return t.proc }

// AdoptProc wraps a raw simulator proc in a thread context on this layer
// — used by kernel execution models (fibers) that create procs outside
// the thread-spawn path.
func (l *SimLayer) AdoptProc(p *sim.Proc) TC { return &simTC{layer: l, proc: p} }

func (t *simTC) CPU() int { return t.proc.CPUID() }

// MoveCPU rebinds the proc; the move takes effect at the next compute
// segment (sim.Proc.SetCPU).
func (t *simTC) MoveCPU(cpu int) { t.proc.SetCPU(cpu) }

func (t *simTC) NumCPUs() int  { return t.layer.Sim.NumCPU() }
func (t *simTC) Costs() *Costs { return &t.layer.costs }

func (t *simTC) Charge(ns int64) {
	if ns > 0 {
		t.proc.Compute(ns)
	}
}

// Contend serializes on the line: the proc stalls (occupying its CPU,
// as a spinning CAS does) until the line frees, then owns it for ns.
func (t *simTC) Contend(l *Line, ns int64) {
	if ns <= 0 {
		return
	}
	now := t.proc.Now()
	start := now
	if l.freeAt > start {
		start = l.freeAt
	}
	end := start + ns
	l.freeAt = end
	t.proc.Compute(end - now)
}

func (t *simTC) Now() int64 { return t.proc.Now() }

// minYieldNS guarantees that a yield advances virtual time: a zero-cost
// yield would let a spin-waiting proc monopolize the event queue at a
// single instant and livelock the simulation.
const minYieldNS = 25

func (t *simTC) Yield() {
	ns := t.layer.costs.YieldNS
	if ns < minYieldNS {
		ns = minYieldNS
	}
	t.proc.Compute(ns)
	t.proc.Yield()
}

func (t *simTC) Sleep(ns int64) { t.proc.Sleep(ns) }

func (t *simTC) RandIntn(n int) int { return t.layer.Sim.RNG().Intn(n) }

type simHandle struct {
	layer *SimLayer
	done  Word
}

func (h *simHandle) Join(tc TC) {
	c := tc.Costs()
	for h.done.Load() == 0 {
		tc.FutexWait(&h.done, 0)
	}
	tc.Charge(c.ThreadJoinNS)
}

func (t *simTC) Spawn(name string, cpu int, fn func(TC)) Handle {
	l := t.layer
	t.Charge(l.costs.ThreadSpawnNS)
	if l.SpawnHook != nil {
		l.SpawnHook(t, cpu)
	}
	h := &simHandle{layer: l}
	l.Sim.Go(name, cpu, t.proc.Now(), func(p *sim.Proc) {
		child := &simTC{layer: l, proc: p}
		sp := l.Spine
		if sp.Enabled(ompt.ThreadBegin) || sp.Enabled(ompt.ThreadEnd) {
			tid := l.tidSeq.Add(1) - 1
			if sp.Enabled(ompt.ThreadBegin) {
				sp.Emit(ompt.Event{Kind: ompt.ThreadBegin, Thread: tid, CPU: int32(cpu), TimeNS: child.Now(), Obj: uint64(cpu)})
			}
			fn(child)
			if sp.Enabled(ompt.ThreadEnd) {
				sp.Emit(ompt.Event{Kind: ompt.ThreadEnd, Thread: tid, CPU: int32(cpu), TimeNS: child.Now(), Obj: uint64(cpu)})
			}
		} else {
			fn(child)
		}
		child.Charge(l.costs.ThreadExitNS)
		h.done.Store(1)
		child.FutexWake(&h.done, -1)
	})
	return h
}

// futexWord adapts a Word to the simulator futex table, which keys on
// *uint32. Word's single field makes the conversion stable.
func futexKey(w *Word) *uint32 { return &w.v }

// Alarm arms a one-shot timer ns virtual nanoseconds from now: fn runs
// on a fresh unbound proc spawned at the fire time, so it may charge
// costs and issue futex wakes like any thread. Cancelled alarm events
// are discarded before the simulator's clock reaches them, so a stopped
// alarm leaves no trace on virtual time — fault-free runs with a
// deadline armed are byte-identical to runs without one.
func (t *simTC) Alarm(ns int64, fn func(TC)) (stop func()) {
	l := t.layer
	return l.Sim.AfterCancel(ns, func() {
		l.Sim.Go("alarm", -1, l.Sim.Now(), func(p *sim.Proc) {
			fn(&simTC{layer: l, proc: p})
		})
	})
}

func (t *simTC) FutexWait(w *Word, val uint32) bool {
	return t.layer.ft.Wait(t.proc, futexKey(w), val, t.layer.costs.FutexWaitEntryNS)
}

func (t *simTC) FutexWake(w *Word, n int) int {
	c := &t.layer.costs
	return t.layer.ft.Wake(t.proc, futexKey(w), n, c.FutexWakeEntryNS, c.FutexWakeLatencyNS, c.FutexWakeStaggerNS)
}
