package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/interweaving/komp/internal/sim"
)

// runEQWorkload drives a randomized thread/futex/alarm workload on a
// SimLayer backed by the given event-queue algorithm and returns the
// step trace (virtual time + tag for every observable step) plus the
// elapsed virtual time. The workload is a pure function of the seed.
func runEQWorkload(t *testing.T, algo sim.EQAlgo, seed int64) ([]string, int64) {
	t.Helper()
	s := sim.NewEQ(8, 42, algo)
	l := NewSimLayer(s, Costs{
		ThreadSpawnNS:      18_000,
		ThreadExitNS:       2_000,
		ThreadJoinNS:       900,
		FutexWaitEntryNS:   420,
		FutexWakeEntryNS:   380,
		FutexWakeLatencyNS: 2_600,
		FutexWakeStaggerNS: 140,
		AtomicRMWNS:        22,
		YieldNS:            650,
	})
	var trace []string
	rng := rand.New(rand.NewSource(seed))
	nworkers := 4 + rng.Intn(4)
	plans := make([][]int, nworkers)
	for i := range plans {
		steps := 3 + rng.Intn(5)
		plans[i] = make([]int, steps)
		for j := range plans[i] {
			plans[i][j] = rng.Intn(4)
		}
	}
	elapsed, err := l.Run(func(tc TC) {
		var gate Word
		handles := make([]Handle, nworkers)
		for i := range handles {
			i := i
			handles[i] = tc.Spawn(fmt.Sprintf("w%d", i), i%tc.NumCPUs(), func(w TC) {
				for j, kind := range plans[i] {
					switch kind {
					case 0:
						w.Charge(int64(1000 + 100*j))
					case 1:
						w.Yield()
					case 2:
						// Futex-recheck pattern: arm an alarm, wait on
						// the gate, cancel the alarm on wakeup. The
						// alarm's only job is to be cancelled — usually
						// before firing, sometimes after.
						stop := w.(Alarmer).Alarm(int64(500+j*977), func(TC) {})
						w.Sleep(int64(300 + j*211))
						stop()
						stop()
					case 3:
						gate.Store(1)
						w.FutexWake(&gate, 2)
						w.Sleep(50)
					}
					trace = append(trace, fmt.Sprintf("%d:w%d.%d", w.Now(), i, j))
				}
			})
		}
		// Two waiters blocked on the gate until some worker opens it.
		waiters := make([]Handle, 2)
		for i := range waiters {
			i := i
			waiters[i] = tc.Spawn(fmt.Sprintf("waiter%d", i), (i+3)%tc.NumCPUs(), func(w TC) {
				for gate.Load() == 0 {
					w.FutexWait(&gate, 0)
				}
				trace = append(trace, fmt.Sprintf("%d:waiter%d", w.Now(), i))
			})
		}
		// Make sure the gate opens even if no worker drew case 3.
		tc.(Alarmer).Alarm(5_000_000, func(a TC) {
			gate.Store(1)
			a.FutexWake(&gate, -1)
		})
		for _, h := range handles {
			h.Join(tc)
		}
		for _, h := range waiters {
			h.Join(tc)
		}
		trace = append(trace, fmt.Sprintf("%d:joined", tc.Now()))
	})
	if err != nil {
		t.Fatalf("%s seed %d: %v", algo, seed, err)
	}
	return trace, elapsed
}

// TestExecLayerEQEquivalence: the full exec layer — spawn, futex
// wait/wake, alarms armed and cancelled — must produce the identical
// step trace and elapsed virtual time on the wheel and the heap.
func TestExecLayerEQEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		wheelTrace, wheelNS := runEQWorkload(t, sim.EQWheel, seed)
		heapTrace, heapNS := runEQWorkload(t, sim.EQHeap, seed)
		if wheelNS != heapNS {
			t.Fatalf("seed %d: elapsed wheel=%d heap=%d", seed, wheelNS, heapNS)
		}
		if len(wheelTrace) != len(heapTrace) {
			t.Fatalf("seed %d: trace lengths wheel=%d heap=%d", seed, len(wheelTrace), len(heapTrace))
		}
		for i := range wheelTrace {
			if wheelTrace[i] != heapTrace[i] {
				t.Fatalf("seed %d: trace[%d] wheel=%q heap=%q", seed, i, wheelTrace[i], heapTrace[i])
			}
		}
	}
}

// TestAlarmStopAfterFire: stopping an alarm that already fired (and
// whose event node may since have been recycled) must not cancel an
// unrelated later event — the generation-counter contract surfaced at
// the exec layer.
func TestAlarmStopAfterFire(t *testing.T) {
	s := sim.NewEQ(2, 7, sim.EQWheel)
	l := NewSimLayer(s, Costs{ThreadSpawnNS: 100, FutexWakeLatencyNS: 100})
	firedFirst, firedSecond := false, false
	_, err := l.Run(func(tc TC) {
		stop := tc.(Alarmer).Alarm(100, func(TC) { firedFirst = true })
		tc.Sleep(500) // alarm fires and its node is recycled
		tc.(Alarmer).Alarm(100, func(TC) { firedSecond = true })
		stop() // stale
		tc.Sleep(500)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !firedFirst || !firedSecond {
		t.Fatalf("firedFirst=%v firedSecond=%v, want true/true", firedFirst, firedSecond)
	}
}
