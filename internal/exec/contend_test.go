package exec

import (
	"testing"

	"github.com/interweaving/komp/internal/sim"
)

func TestContendSerializesAccesses(t *testing.T) {
	l := NewSimLayer(sim.New(8, 1), Costs{})
	var line Line
	ends := make([]int64, 8)
	elapsed, err := l.Run(func(tc TC) {
		var hs []Handle
		for i := 0; i < 8; i++ {
			i := i
			hs = append(hs, tc.Spawn("c", i, func(tc TC) {
				tc.Contend(&line, 100)
				ends[i] = tc.Now()
			}))
		}
		for _, h := range hs {
			h.Join(tc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Eight 100ns accesses to one line serialize: the last completes at
	// >= 800ns, even though the threads are on distinct CPUs.
	var last int64
	for _, e := range ends {
		if e > last {
			last = e
		}
	}
	if last < 800 {
		t.Fatalf("last contended access at %d; line did not serialize", last)
	}
	if elapsed < 800 {
		t.Fatalf("elapsed %d < serialized total", elapsed)
	}
	// All completion times distinct (one owner at a time).
	seen := map[int64]bool{}
	for _, e := range ends {
		if seen[e] {
			t.Fatalf("two threads finished the line at the same instant %d", e)
		}
		seen[e] = true
	}
}

func TestContendUncontendedIsCheap(t *testing.T) {
	l := NewSimLayer(sim.New(2, 1), Costs{})
	var line Line
	elapsed, err := l.Run(func(tc TC) {
		for i := 0; i < 10; i++ {
			tc.Contend(&line, 50)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 500 {
		t.Fatalf("uncontended line cost %d, want 500", elapsed)
	}
}

func TestContendZeroNoop(t *testing.T) {
	l := NewSimLayer(sim.New(1, 1), Costs{})
	var line Line
	elapsed, err := l.Run(func(tc TC) { tc.Contend(&line, 0) })
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 0 {
		t.Fatalf("zero contend advanced time by %d", elapsed)
	}
}

func TestRealLayerInteractiveTC(t *testing.T) {
	l := NewRealLayer(4)
	tc := l.TC()
	done := make(chan int, 4)
	var hs []Handle
	for i := 0; i < 4; i++ {
		i := i
		hs = append(hs, tc.Spawn("w", i, func(TC) { done <- i }))
	}
	for _, h := range hs {
		h.Join(tc)
	}
	if len(done) != 4 {
		t.Fatalf("interactive TC spawned %d/4", len(done))
	}
	if tc.Now() < 0 {
		t.Fatal("clock not started")
	}
}
