package exec

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestWatchdogIgnoresIdleParked is the regression test for the stall
// watchdog's false positive on admission parking: a thread deliberately
// parked for an unbounded time (IdlePark — e.g. a tenancy submitter
// behind a saturated queue) makes no layer-level progress for several
// watchdog periods, and before the idle-park distinction the monitor
// dumped every goroutine's stack as a stall.
func TestWatchdogIgnoresIdleParked(t *testing.T) {
	l := NewRealLayer(2)
	var fired atomic.Int32
	l.SetWatchdog(20*time.Millisecond, func(string) { fired.Add(1) })
	if _, err := l.Run(func(tc TC) {
		done := l.IdlePark()
		time.Sleep(150 * time.Millisecond) // many quiet periods while parked
		done()
	}); err != nil {
		t.Fatal(err)
	}
	if n := fired.Load(); n != 0 {
		t.Fatalf("watchdog fired %d times while a thread was idle-parked, want 0", n)
	}
}

// TestWatchdogStillFiresWithoutPark: the control — the same quiet
// stretch with no idle-park must still be reported, so the suppression
// does not blind the watchdog to genuine stalls.
func TestWatchdogStillFiresWithoutPark(t *testing.T) {
	l := NewRealLayer(2)
	var fired atomic.Int32
	l.SetWatchdog(20*time.Millisecond, func(string) { fired.Add(1) })
	if _, err := l.Run(func(tc TC) {
		time.Sleep(150 * time.Millisecond)
	}); err != nil {
		t.Fatal(err)
	}
	if fired.Load() == 0 {
		t.Fatal("watchdog never fired on a genuinely quiet run")
	}
}

// TestIdleParkDoneIsIdempotent: a parker's done must be safe to call
// twice (wake paths often race a timeout path) without underflowing the
// parked count and re-enabling dumps for other parkers.
func TestIdleParkDoneIsIdempotent(t *testing.T) {
	l := NewRealLayer(1)
	done := l.IdlePark()
	done()
	done()
	done2 := l.IdlePark()
	if got := l.idleParked.Load(); got != 1 {
		t.Fatalf("idleParked = %d after double done and a fresh park, want 1", got)
	}
	done2()
	if got := l.idleParked.Load(); got != 0 {
		t.Fatalf("idleParked = %d after all parks ended, want 0", got)
	}
}
