package exec

import (
	"sync/atomic"
	"testing"

	"github.com/interweaving/komp/internal/sim"
)

func layers(t *testing.T) map[string]func() Layer {
	t.Helper()
	return map[string]func() Layer{
		"real": func() Layer { return NewRealLayer(8) },
		"sim": func() Layer {
			return NewSimLayer(sim.New(8, 1), Costs{
				ThreadSpawnNS:      1000,
				FutexWaitEntryNS:   100,
				FutexWakeEntryNS:   100,
				FutexWakeLatencyNS: 50,
			})
		},
	}
}

func TestSpawnJoinBothLayers(t *testing.T) {
	for name, mk := range layers(t) {
		t.Run(name, func(t *testing.T) {
			l := mk()
			var count atomic.Int64
			_, err := l.Run(func(tc TC) {
				var hs []Handle
				for i := 0; i < 8; i++ {
					hs = append(hs, tc.Spawn("w", i%l.NumCPUs(), func(tc TC) {
						count.Add(1)
					}))
				}
				for _, h := range hs {
					h.Join(tc)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if count.Load() != 8 {
				t.Fatalf("count = %d, want 8", count.Load())
			}
		})
	}
}

func TestFutexHandoffBothLayers(t *testing.T) {
	for name, mk := range layers(t) {
		t.Run(name, func(t *testing.T) {
			l := mk()
			var flag Word
			var observed uint32
			_, err := l.Run(func(tc TC) {
				h := tc.Spawn("waiter", 1, func(tc TC) {
					for flag.Load() == 0 {
						tc.FutexWait(&flag, 0)
					}
					observed = flag.Load()
				})
				tc.Charge(500)
				flag.Store(7)
				tc.FutexWake(&flag, -1)
				h.Join(tc)
			})
			if err != nil {
				t.Fatal(err)
			}
			if observed != 7 {
				t.Fatalf("observed = %d, want 7", observed)
			}
		})
	}
}

func TestFutexValueMismatchDoesNotBlock(t *testing.T) {
	for name, mk := range layers(t) {
		t.Run(name, func(t *testing.T) {
			l := mk()
			var w Word
			w.Store(3)
			_, err := l.Run(func(tc TC) {
				if tc.FutexWait(&w, 5) {
					t.Error("blocked despite mismatch")
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSimChargeAdvancesVirtualTime(t *testing.T) {
	l := NewSimLayer(sim.New(4, 1), Costs{})
	elapsed, err := l.Run(func(tc TC) {
		tc.Charge(12345)
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 12345 {
		t.Fatalf("elapsed = %d, want 12345", elapsed)
	}
}

func TestSimParallelSpawnOverlaps(t *testing.T) {
	l := NewSimLayer(sim.New(4, 1), Costs{})
	elapsed, err := l.Run(func(tc TC) {
		var hs []Handle
		for i := 1; i < 4; i++ {
			hs = append(hs, tc.Spawn("w", i, func(tc TC) { tc.Charge(1000) }))
		}
		tc.Charge(1000)
		for _, h := range hs {
			h.Join(tc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed >= 2000 {
		t.Fatalf("elapsed = %d; threads did not run in parallel", elapsed)
	}
	if elapsed < 1000 {
		t.Fatalf("elapsed = %d < compute time", elapsed)
	}
}

func TestSimSpawnCostCharged(t *testing.T) {
	l := NewSimLayer(sim.New(2, 1), Costs{ThreadSpawnNS: 777})
	var spawnDone int64
	_, err := l.Run(func(tc TC) {
		h := tc.Spawn("w", 1, func(tc TC) {})
		spawnDone = tc.Now()
		h.Join(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if spawnDone != 777 {
		t.Fatalf("spawn returned at %d, want 777", spawnDone)
	}
}

func TestSimSpawnHook(t *testing.T) {
	l := NewSimLayer(sim.New(2, 1), Costs{})
	hooked := 0
	l.SpawnHook = func(tc TC, cpu int) { hooked++ }
	_, err := l.Run(func(tc TC) {
		tc.Spawn("a", 1, func(tc TC) {}).Join(tc)
		tc.Spawn("b", 1, func(tc TC) {}).Join(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if hooked != 2 {
		t.Fatalf("hook ran %d times, want 2", hooked)
	}
}

func TestSimDeterministicElapsed(t *testing.T) {
	run := func() int64 {
		l := NewSimLayer(sim.New(8, 99), Costs{
			ThreadSpawnNS: 100, FutexWaitEntryNS: 30, FutexWakeEntryNS: 30,
			FutexWakeLatencyNS: 20, FutexWakeStaggerNS: 5,
		})
		elapsed, err := l.Run(func(tc TC) {
			var gate Word
			var hs []Handle
			for i := 0; i < 8; i++ {
				hs = append(hs, tc.Spawn("w", i, func(tc TC) {
					for gate.Load() == 0 {
						tc.FutexWait(&gate, 0)
					}
					tc.Charge(int64(100 + tc.RandIntn(50)))
				}))
			}
			tc.Charge(1000)
			gate.Store(1)
			tc.FutexWake(&gate, -1)
			for _, h := range hs {
				h.Join(tc)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}
