// Package exec defines the execution layer abstraction that separates the
// OpenMP runtime (and the pthread and VIRGIL layers) from what lies
// beneath it — exactly the split the paper exploits: the same libomp runs
// over Linux pthreads, over the Nautilus pthread compatibility layer
// (RTK), or behind an emulated Linux ABI (PIK).
//
// Two implementations exist:
//
//   - RealLayer runs threads as goroutines with real synchronization, so
//     the runtime is a usable Go parallelism library.
//   - SimLayer (simlayer.go) runs threads as procs of the deterministic
//     discrete-event simulator, with every primitive charged from an
//     environment-specific cost table. All figures are regenerated on it.
package exec

import "sync/atomic"

// Costs is the primitive cost table of an execution environment, in
// virtual nanoseconds. The tables for Linux, RTK, PIK and CCK differ and
// are defined by the environment packages; the real layer uses zero costs
// (real time is measured instead).
type Costs struct {
	// Thread management.
	ThreadSpawnNS int64 // create + first dispatch of a thread
	ThreadExitNS  int64
	ThreadJoinNS  int64 // join-side bookkeeping after the thread exits

	// Futex-style blocking (for Linux this is the syscall path; for the
	// in-kernel environments it is a direct call into the scheduler).
	FutexWaitEntryNS   int64 // trap + queue insert on the wait side
	FutexWakeEntryNS   int64 // trap + queue scan on the wake side
	FutexWakeLatencyNS int64 // wake-to-run latency for the woken thread
	FutexWakeStaggerNS int64 // serialization between multiple wakes

	// Fast-path synchronization.
	AtomicRMWNS     int64 // uncontended atomic read-modify-write
	CacheLineXferNS int64 // added per contending sharer on a hot line
	YieldNS         int64 // sched_yield-equivalent

	// Memory management (runtime-internal allocations).
	MallocNS int64
	FreeNS   int64

	// Misc.
	TLSAccessNS    int64 // thread-local storage access (hwtls vs emulated)
	SyscallExtraNS int64 // fixed per-syscall overhead beyond the work itself
}

// Word is a 32-bit futex word. Its methods are atomic so the same runtime
// code is correct on the real layer; on the simulator only one thread runs
// at a time and the atomicity is incidental.
type Word struct{ v uint32 }

// Load returns the current value.
func (w *Word) Load() uint32 { return atomic.LoadUint32(&w.v) }

// Store sets the value.
func (w *Word) Store(x uint32) { atomic.StoreUint32(&w.v, x) }

// Add atomically adds delta and returns the new value.
func (w *Word) Add(delta uint32) uint32 { return atomic.AddUint32(&w.v, delta) }

// CompareAndSwap performs an atomic CAS.
func (w *Word) CompareAndSwap(old, new uint32) bool {
	return atomic.CompareAndSwapUint32(&w.v, old, new)
}

// Line models a contended cache line (or any serially-owned hardware
// resource): accesses through Contend serialize on it, the way atomic
// read-modify-writes to one line serialize across cores. The zero value
// is ready to use.
type Line struct {
	freeAt int64
}

// Handle identifies a spawned thread for joining.
type Handle interface {
	// Join blocks the calling thread until the spawned thread exits.
	Join(tc TC)
}

// TC is a thread context: the capability a running thread uses to
// interact with its execution layer. A TC is only valid on the thread it
// was handed to.
type TC interface {
	// CPU returns the virtual CPU this thread is bound to.
	CPU() int
	// NumCPUs returns the CPU count of the layer.
	NumCPUs() int
	// Costs returns the environment cost table.
	Costs() *Costs
	// Charge advances this thread by ns nanoseconds of work on its CPU
	// (no-op on the real layer).
	Charge(ns int64)
	// Now returns elapsed time since Run started, in nanoseconds
	// (virtual on the simulator, wall-clock on the real layer).
	Now() int64
	// Yield gives up the CPU momentarily.
	Yield()
	// Sleep advances time without occupying the CPU.
	Sleep(ns int64)
	// Spawn starts a new thread bound to cpu. The spawn cost is charged
	// to the caller.
	Spawn(name string, cpu int, fn func(TC)) Handle
	// Contend performs a serialized access to a contended line: the
	// thread busy-waits until the line frees, then holds it for ns. On
	// the real layer contention is physical and this is a no-op.
	Contend(l *Line, ns int64)
	// FutexWait blocks if w still holds val, charging the wait-entry
	// cost. Returns true if the thread actually blocked.
	FutexWait(w *Word, val uint32) bool
	// FutexWake wakes up to n waiters (n < 0 means all), charging the
	// wake-entry cost, and returns the number woken.
	FutexWake(w *Word, n int) int
	// RandIntn returns a deterministic (on the simulator) pseudo-random
	// int in [0, n).
	RandIntn(n int) int
}

// Mover is implemented by thread contexts whose CPU binding can change
// after spawn. The OpenMP affinity subsystem uses it to re-place pooled
// workers per parallel region (proc_bind) without recreating threads: on
// the simulator the proc really migrates (subsequent Compute runs on the
// new virtual CPU), on the real layer the hint feeds CPU-tagged
// accounting and instrumentation. MoveCPU must only be called by the
// thread that owns the context.
type Mover interface {
	MoveCPU(cpu int)
}

// Alarmer is implemented by thread contexts that can arm a one-shot
// timer: fn runs ns nanoseconds from now on a context of its own — a
// timer proc on the simulator's virtual clock, the timer goroutine on
// the real layer's wall clock. The returned stop disarms an unfired
// alarm (on the simulator a stopped alarm leaves no trace on virtual
// time; on the real layer a concurrent firing may still be in flight,
// as with time.Timer.Stop). The OpenMP region-deadline ICV is built on
// it.
type Alarmer interface {
	Alarm(ns int64, fn func(TC)) (stop func())
}

// Layer is an execution substrate.
type Layer interface {
	// NumCPUs returns the number of CPUs.
	NumCPUs() int
	// Costs returns the environment cost table.
	Costs() *Costs
	// Run executes main as the initial thread on CPU 0 and drives the
	// layer until all threads finish. It returns the elapsed time in
	// nanoseconds.
	Run(main func(TC)) (int64, error)
}
