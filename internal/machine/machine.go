// Package machine models the node hardware the paper evaluates on: PHI, a
// 64-core Intel Xeon Phi 7210 with MCDRAM in flat mode, and 8XEON, an
// 8-socket, 192-core Xeon Platinum 8160 server. The models carry exactly
// the properties the experiments depend on: core/socket/NUMA topology,
// clock rate, TLB reach per page size, and memory latency by NUMA
// distance.
package machine

import "fmt"

// ZoneKind distinguishes memory technologies.
type ZoneKind int

// Zone kinds.
const (
	DRAM ZoneKind = iota
	MCDRAM
)

func (k ZoneKind) String() string {
	if k == MCDRAM {
		return "MCDRAM"
	}
	return "DRAM"
}

// Zone is a NUMA memory zone.
type Zone struct {
	ID    int
	Kind  ZoneKind
	Bytes int64
	// CPUs local to the zone (empty for CPU-less zones such as the
	// flat-mode MCDRAM zone on PHI).
	CPUs []int
}

// TLB describes one level of translation caching for a page size.
type TLB struct {
	PageSize int64 // bytes
	Entries  int
}

// Reach returns the address range covered by the TLB.
func (t TLB) Reach() int64 { return t.PageSize * int64(t.Entries) }

// Machine is a node hardware model.
type Machine struct {
	Name           string
	Sockets        int
	CoresPerSocket int
	// ThreadsPerCore is the SMT width (hardware threads per core).
	// 0 means 1 — hyperthreading off, as both paper machines are
	// configured. CPU ids enumerate hardware threads: the threads of one
	// core are consecutive, cores of one socket are consecutive.
	ThreadsPerCore int
	GHz            float64

	Zones []Zone
	// Distance[i][j] is the relative access cost from zone i's CPUs to
	// zone j's memory (10 = local, following the ACPI SLIT convention).
	Distance [][]int

	TLBs []TLB // available page sizes, ascending

	// Memory latencies in nanoseconds.
	LocalLatencyNS  float64
	RemoteLatencyNS float64 // one NUMA hop
	FarLatencyNS    float64 // worst-case hop (e.g. MCDRAM in flat mode, or cross-chassis)

	// Scales is the CPU-count sweep the paper uses on this machine.
	Scales []int

	// Dev is an attached accelerator, or nil for a host-only node. See
	// WithDevice.
	Dev *Device
}

// SMT returns the effective SMT width (ThreadsPerCore, never below 1).
func (m *Machine) SMT() int {
	if m.ThreadsPerCore > 1 {
		return m.ThreadsPerCore
	}
	return 1
}

// NumCPUs returns the total hardware thread count (both paper machines
// run with hyperthreading off, so it equals the core count there).
func (m *Machine) NumCPUs() int { return m.Sockets * m.CoresPerSocket * m.SMT() }

// CycleNS converts cycles to nanoseconds on this machine.
func (m *Machine) CycleNS(cycles float64) float64 { return cycles / m.GHz }

// SocketOf returns the socket that owns the given CPU.
func (m *Machine) SocketOf(cpu int) int { return cpu / (m.CoresPerSocket * m.SMT()) }

// CoreOf returns the physical core that owns the given CPU (equal to the
// CPU id when hyperthreading is off).
func (m *Machine) CoreOf(cpu int) int { return cpu / m.SMT() }

// Dist returns the relative NUMA distance between the zones of two CPUs,
// in the ACPI SLIT convention the Distance matrix uses (10 = local).
func (m *Machine) Dist(a, b int) int {
	za, zb := m.ZoneOf(a), m.ZoneOf(b)
	if za == zb {
		return 10
	}
	return m.Distance[za][zb]
}

// ZoneOf returns the id of the DRAM zone local to the given CPU.
func (m *Machine) ZoneOf(cpu int) int {
	for _, z := range m.Zones {
		for _, c := range z.CPUs {
			if c == cpu {
				return z.ID
			}
		}
	}
	panic(fmt.Sprintf("machine %s: CPU %d not in any zone", m.Name, cpu))
}

// DRAMZones returns the ids of all CPU-attached DRAM zones.
func (m *Machine) DRAMZones() []int {
	var ids []int
	for _, z := range m.Zones {
		if z.Kind == DRAM && len(z.CPUs) > 0 {
			ids = append(ids, z.ID)
		}
	}
	return ids
}

// LatencyNS returns the memory access latency from a CPU to a zone.
func (m *Machine) LatencyNS(cpu, zone int) float64 {
	from := m.ZoneOf(cpu)
	if from == zone {
		return m.LocalLatencyNS
	}
	d := m.Distance[from][zone]
	switch {
	case d <= 10:
		return m.LocalLatencyNS
	case d <= 21:
		return m.RemoteLatencyNS
	default:
		return m.FarLatencyNS
	}
}

// TLBFor returns the TLB level for a page size, or false if the machine
// has no such page size.
func (m *Machine) TLBFor(pageSize int64) (TLB, bool) {
	for _, t := range m.TLBs {
		if t.PageSize == pageSize {
			return t, true
		}
	}
	return TLB{}, false
}

func cpuRange(lo, n int) []int {
	cs := make([]int, n)
	for i := range cs {
		cs[i] = lo + i
	}
	return cs
}

// PHI returns the Colfax Ninja Xeon Phi 7210 model: 64 cores at 1.3 GHz,
// 96 GB DRAM (6-way interleaved, one zone) plus 16 GB MCDRAM exposed as a
// distant CPU-less NUMA zone (flat mode), hyperthreading off.
func PHI() *Machine {
	m := &Machine{
		Name:           "PHI",
		Sockets:        1,
		CoresPerSocket: 64,
		GHz:            1.3,
		Zones: []Zone{
			{ID: 0, Kind: DRAM, Bytes: 96 << 30, CPUs: cpuRange(0, 64)},
			{ID: 1, Kind: MCDRAM, Bytes: 16 << 30},
		},
		Distance: [][]int{
			{10, 31},
			{31, 10},
		},
		TLBs: []TLB{
			{PageSize: 4 << 10, Entries: 256},
			{PageSize: 2 << 20, Entries: 128},
			{PageSize: 1 << 30, Entries: 16},
		},
		LocalLatencyNS:  130,
		RemoteLatencyNS: 180,
		FarLatencyNS:    180,
		Scales:          []int{1, 2, 4, 8, 16, 32, 64},
	}
	return m
}

// XEON8 returns the SuperMicro 7089P-TR4T model: eight 2.1 GHz Xeon
// Platinum 8160 sockets (24 cores each, 192 total), 768 GB DRAM spread
// evenly across eight NUMA zones, hyperthreading off.
func XEON8() *Machine {
	m := &Machine{
		Name:            "8XEON",
		Sockets:         8,
		CoresPerSocket:  24,
		GHz:             2.1,
		LocalLatencyNS:  80,
		RemoteLatencyNS: 135,
		FarLatencyNS:    200,
		TLBs: []TLB{
			{PageSize: 4 << 10, Entries: 1536},
			{PageSize: 2 << 20, Entries: 1536},
			{PageSize: 1 << 30, Entries: 16},
		},
		Scales: []int{1, 2, 4, 8, 16, 24, 48, 96, 192},
	}
	for s := 0; s < 8; s++ {
		m.Zones = append(m.Zones, Zone{
			ID:    s,
			Kind:  DRAM,
			Bytes: 96 << 30,
			CPUs:  cpuRange(s*24, 24),
		})
	}
	m.Distance = make([][]int, 8)
	for i := range m.Distance {
		m.Distance[i] = make([]int, 8)
		for j := range m.Distance[i] {
			if i == j {
				m.Distance[i][j] = 10
			} else {
				m.Distance[i][j] = 21
			}
		}
	}
	return m
}

// BigIron synthesizes a scaled-out Xeon-class machine with the given
// socket count and cores per socket — the hypothetical wider topologies
// (e.g. 16×64 = 1024 cores) the DES core must sustain for the scale
// studies beyond the paper's 8XEON. Per-socket characteristics mirror
// XEON8; only the fabric is wider.
func BigIron(sockets, coresPerSocket int) *Machine {
	ncpu := sockets * coresPerSocket
	m := &Machine{
		Name:            fmt.Sprintf("BIGIRON%d", ncpu),
		Sockets:         sockets,
		CoresPerSocket:  coresPerSocket,
		GHz:             2.1,
		LocalLatencyNS:  80,
		RemoteLatencyNS: 135,
		FarLatencyNS:    200,
		TLBs: []TLB{
			{PageSize: 4 << 10, Entries: 1536},
			{PageSize: 2 << 20, Entries: 1536},
			{PageSize: 1 << 30, Entries: 16},
		},
		Scales: []int{1, coresPerSocket, ncpu / 4, ncpu / 2, ncpu},
	}
	for s := 0; s < sockets; s++ {
		m.Zones = append(m.Zones, Zone{
			ID:    s,
			Kind:  DRAM,
			Bytes: 96 << 30,
			CPUs:  cpuRange(s*coresPerSocket, coresPerSocket),
		})
	}
	m.Distance = make([][]int, sockets)
	for i := range m.Distance {
		m.Distance[i] = make([]int, sockets)
		for j := range m.Distance[i] {
			if i == j {
				m.Distance[i][j] = 10
			} else {
				m.Distance[i][j] = 21
			}
		}
	}
	return m
}
