package machine

import "testing"

func TestPHITopology(t *testing.T) {
	m := PHI()
	if m.NumCPUs() != 64 {
		t.Fatalf("PHI CPUs = %d, want 64", m.NumCPUs())
	}
	if len(m.Zones) != 2 {
		t.Fatalf("PHI zones = %d, want 2 (DRAM + flat MCDRAM)", len(m.Zones))
	}
	if m.Zones[1].Kind != MCDRAM || len(m.Zones[1].CPUs) != 0 {
		t.Fatal("PHI MCDRAM zone must be CPU-less in flat mode")
	}
	if got := m.ZoneOf(63); got != 0 {
		t.Fatalf("ZoneOf(63) = %d, want 0", got)
	}
	if len(m.DRAMZones()) != 1 {
		t.Fatal("PHI must have exactly one CPU-attached DRAM zone")
	}
	// Flat mode: MCDRAM has high distance, so any NUMA-aware OS prefers
	// DRAM (§2.2).
	if m.Distance[0][1] <= m.Distance[0][0] {
		t.Fatal("MCDRAM distance must exceed local DRAM distance")
	}
	if m.Scales[len(m.Scales)-1] != 64 {
		t.Fatal("PHI sweep must end at 64 CPUs")
	}
}

func Test8XEONTopology(t *testing.T) {
	m := XEON8()
	if m.NumCPUs() != 192 {
		t.Fatalf("8XEON CPUs = %d, want 192", m.NumCPUs())
	}
	if m.Sockets != 8 || m.CoresPerSocket != 24 {
		t.Fatalf("8XEON sockets=%d cores=%d, want 8/24", m.Sockets, m.CoresPerSocket)
	}
	if len(m.DRAMZones()) != 8 {
		t.Fatalf("8XEON DRAM zones = %d, want 8", len(m.DRAMZones()))
	}
	if got := m.SocketOf(47); got != 1 {
		t.Fatalf("SocketOf(47) = %d, want 1", got)
	}
	if got := m.ZoneOf(191); got != 7 {
		t.Fatalf("ZoneOf(191) = %d, want 7", got)
	}
	if m.Scales[len(m.Scales)-1] != 192 {
		t.Fatal("8XEON sweep must end at 192 CPUs")
	}
}

func TestLatency(t *testing.T) {
	m := XEON8()
	local := m.LatencyNS(0, 0)
	remote := m.LatencyNS(0, 7)
	if !(local < remote) {
		t.Fatalf("local %v must be < remote %v", local, remote)
	}
	if got := m.LatencyNS(25, 1); got != m.LocalLatencyNS {
		t.Fatalf("cpu25->zone1 = %v, want local %v", got, m.LocalLatencyNS)
	}
}

func TestTLBReach(t *testing.T) {
	m := PHI()
	tlb, ok := m.TLBFor(4 << 10)
	if !ok {
		t.Fatal("PHI must have 4K TLB")
	}
	if tlb.Reach() != int64(tlb.Entries)*4096 {
		t.Fatal("reach arithmetic wrong")
	}
	if _, ok := m.TLBFor(12345); ok {
		t.Fatal("bogus page size must not resolve")
	}
}

func TestCycleNS(t *testing.T) {
	m := PHI() // 1.3 GHz
	if got := m.CycleNS(1300); got != 1000 {
		t.Fatalf("1300 cycles at 1.3GHz = %v ns, want 1000", got)
	}
}
