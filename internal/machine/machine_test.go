package machine

import "testing"

func TestPHITopology(t *testing.T) {
	m := PHI()
	if m.NumCPUs() != 64 {
		t.Fatalf("PHI CPUs = %d, want 64", m.NumCPUs())
	}
	if len(m.Zones) != 2 {
		t.Fatalf("PHI zones = %d, want 2 (DRAM + flat MCDRAM)", len(m.Zones))
	}
	if m.Zones[1].Kind != MCDRAM || len(m.Zones[1].CPUs) != 0 {
		t.Fatal("PHI MCDRAM zone must be CPU-less in flat mode")
	}
	if got := m.ZoneOf(63); got != 0 {
		t.Fatalf("ZoneOf(63) = %d, want 0", got)
	}
	if len(m.DRAMZones()) != 1 {
		t.Fatal("PHI must have exactly one CPU-attached DRAM zone")
	}
	// Flat mode: MCDRAM has high distance, so any NUMA-aware OS prefers
	// DRAM (§2.2).
	if m.Distance[0][1] <= m.Distance[0][0] {
		t.Fatal("MCDRAM distance must exceed local DRAM distance")
	}
	if m.Scales[len(m.Scales)-1] != 64 {
		t.Fatal("PHI sweep must end at 64 CPUs")
	}
}

func Test8XEONTopology(t *testing.T) {
	m := XEON8()
	if m.NumCPUs() != 192 {
		t.Fatalf("8XEON CPUs = %d, want 192", m.NumCPUs())
	}
	if m.Sockets != 8 || m.CoresPerSocket != 24 {
		t.Fatalf("8XEON sockets=%d cores=%d, want 8/24", m.Sockets, m.CoresPerSocket)
	}
	if len(m.DRAMZones()) != 8 {
		t.Fatalf("8XEON DRAM zones = %d, want 8", len(m.DRAMZones()))
	}
	if got := m.SocketOf(47); got != 1 {
		t.Fatalf("SocketOf(47) = %d, want 1", got)
	}
	if got := m.ZoneOf(191); got != 7 {
		t.Fatalf("ZoneOf(191) = %d, want 7", got)
	}
	if m.Scales[len(m.Scales)-1] != 192 {
		t.Fatal("8XEON sweep must end at 192 CPUs")
	}
}

func TestBigIronTopology(t *testing.T) {
	m := BigIron(16, 64)
	if m.NumCPUs() != 1024 {
		t.Fatalf("BigIron(16,64) CPUs = %d, want 1024", m.NumCPUs())
	}
	if m.Name != "BIGIRON1024" {
		t.Fatalf("name = %q, want BIGIRON1024", m.Name)
	}
	if len(m.DRAMZones()) != 16 {
		t.Fatalf("DRAM zones = %d, want 16", len(m.DRAMZones()))
	}
	if got := m.SocketOf(1023); got != 15 {
		t.Fatalf("SocketOf(1023) = %d, want 15", got)
	}
	if got := m.ZoneOf(64); got != 1 {
		t.Fatalf("ZoneOf(64) = %d, want 1", got)
	}
	if m.Scales[len(m.Scales)-1] != 1024 {
		t.Fatal("BigIron sweep must end at 1024 CPUs")
	}
	// Off-socket access must hit the remote tier, same as 8XEON.
	if got := m.LatencyNS(0, 15); got != m.RemoteLatencyNS {
		t.Fatalf("cross-socket latency = %v, want %v", got, m.RemoteLatencyNS)
	}
}

func TestLatency(t *testing.T) {
	m := XEON8()
	local := m.LatencyNS(0, 0)
	remote := m.LatencyNS(0, 7)
	if !(local < remote) {
		t.Fatalf("local %v must be < remote %v", local, remote)
	}
	if got := m.LatencyNS(25, 1); got != m.LocalLatencyNS {
		t.Fatalf("cpu25->zone1 = %v, want local %v", got, m.LocalLatencyNS)
	}
}

func TestTLBReach(t *testing.T) {
	m := PHI()
	tlb, ok := m.TLBFor(4 << 10)
	if !ok {
		t.Fatal("PHI must have 4K TLB")
	}
	if tlb.Reach() != int64(tlb.Entries)*4096 {
		t.Fatal("reach arithmetic wrong")
	}
	if _, ok := m.TLBFor(12345); ok {
		t.Fatal("bogus page size must not resolve")
	}
}

func TestCycleNS(t *testing.T) {
	m := PHI() // 1.3 GHz
	if got := m.CycleNS(1300); got != 1000 {
		t.Fatalf("1300 cycles at 1.3GHz = %v ns, want 1000", got)
	}
}

// TestSMTTopology exercises the hardware-thread helpers on an asymmetric
// hyperthreaded variant: the paper machines run with HT off, but the
// topology math must survive threads-per-core > 1 (places "threads" vs
// "cores" depend on it).
func TestSMTTopology(t *testing.T) {
	m := XEON8()
	m.ThreadsPerCore = 2
	if m.SMT() != 2 {
		t.Fatalf("SMT() = %d, want 2", m.SMT())
	}
	if m.NumCPUs() != 384 {
		t.Fatalf("NumCPUs with SMT=2 = %d, want 384", m.NumCPUs())
	}
	// Threads of one core are consecutive: CPUs 0,1 share core 0; cores
	// of one socket are consecutive: CPUs 0..47 are socket 0.
	if m.CoreOf(0) != 0 || m.CoreOf(1) != 0 || m.CoreOf(2) != 1 {
		t.Fatalf("CoreOf(0,1,2) = %d,%d,%d, want 0,0,1",
			m.CoreOf(0), m.CoreOf(1), m.CoreOf(2))
	}
	if m.SocketOf(47) != 0 || m.SocketOf(48) != 1 {
		t.Fatalf("SocketOf(47,48) = %d,%d, want 0,1",
			m.SocketOf(47), m.SocketOf(48))
	}
	// Default (HT off): SMT() floors at 1 and CoreOf is the identity.
	m2 := PHI()
	if m2.SMT() != 1 {
		t.Fatalf("PHI SMT() = %d, want 1", m2.SMT())
	}
	if m2.CoreOf(63) != 63 {
		t.Fatalf("PHI CoreOf(63) = %d, want 63", m2.CoreOf(63))
	}
}

// TestDist pins the distance oracle on both paper machines: the single
// socket of PHI is uniformly local (MCDRAM is CPU-less, so no CPU pair
// is far apart), while 8XEON splits 10/21 on the socket boundary.
func TestDist(t *testing.T) {
	phi := PHI()
	if d := phi.Dist(0, 63); d != 10 {
		t.Fatalf("PHI Dist(0,63) = %d, want 10 (one socket, one zone)", d)
	}
	x := XEON8()
	if d := x.Dist(0, 23); d != 10 {
		t.Fatalf("8XEON Dist(0,23) = %d, want 10 (same socket)", d)
	}
	if d := x.Dist(0, 24); d != 21 {
		t.Fatalf("8XEON Dist(0,24) = %d, want 21 (one hop)", d)
	}
	if d := x.Dist(24, 0); d != 21 {
		t.Fatalf("8XEON Dist must be symmetric; Dist(24,0) = %d", d)
	}
}

// TestLatencyMatrix walks the full CPU x zone latency matrix on both
// machines: every entry must be one of the three configured latencies,
// local exactly when CPU and zone share a NUMA node, and the far tier
// reached only where the distance matrix says so (MCDRAM on PHI; no
// pair on 8XEON, whose worst hop is 21).
func TestLatencyMatrix(t *testing.T) {
	for _, m := range []*Machine{PHI(), XEON8()} {
		sawFar := false
		for cpu := 0; cpu < m.NumCPUs(); cpu++ {
			for _, z := range m.Zones {
				got := m.LatencyNS(cpu, z.ID)
				switch {
				case m.ZoneOf(cpu) == z.ID:
					if got != m.LocalLatencyNS {
						t.Fatalf("%s cpu%d->zone%d = %v, want local %v",
							m.Name, cpu, z.ID, got, m.LocalLatencyNS)
					}
				case m.Distance[m.ZoneOf(cpu)][z.ID] > 21:
					sawFar = true
					if got != m.FarLatencyNS {
						t.Fatalf("%s cpu%d->zone%d = %v, want far %v",
							m.Name, cpu, z.ID, got, m.FarLatencyNS)
					}
				default:
					if got != m.RemoteLatencyNS {
						t.Fatalf("%s cpu%d->zone%d = %v, want remote %v",
							m.Name, cpu, z.ID, got, m.RemoteLatencyNS)
					}
				}
			}
		}
		if (m.Name == "PHI") != sawFar {
			t.Fatalf("%s: far tier seen=%v (PHI's MCDRAM is the only far zone)",
				m.Name, sawFar)
		}
	}
}

// TestZoneOfUnknownCPUPanics documents the contract: asking for the zone
// of a CPU the machine does not have is a modeling bug, not a runtime
// condition, so it panics.
func TestZoneOfUnknownCPUPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ZoneOf(9999) must panic")
		}
	}()
	PHI().ZoneOf(9999)
}
