package machine

import "testing"

func TestDefaultDeviceGeometry(t *testing.T) {
	d := DefaultDevice(16, 64)
	if d.CUs != 16 || d.LanesPerCU != 64 || d.LaneCount() != 1024 {
		t.Fatalf("geometry %+v, want 16x64 (1024 lanes)", d)
	}
	if d.Name != "ACC16x64" {
		t.Errorf("Name = %q, want ACC16x64", d.Name)
	}
	// Geometry scales capability; the per-unit characteristics stay
	// fixed so CU sweeps isolate parallelism.
	small := DefaultDevice(2, 8)
	if small.MemLatencyNS != d.MemLatencyNS || small.MemBWperCU != d.MemBWperCU ||
		small.LinkBW != d.LinkBW || small.KernelLaunchNS != d.KernelLaunchNS {
		t.Errorf("per-unit characteristics vary with geometry: %+v vs %+v", small, d)
	}
}

// TestDefaultDeviceInvalidGeometryPanics documents the contract: a
// non-positive geometry is a modeling bug, not a runtime condition.
func TestDefaultDeviceInvalidGeometryPanics(t *testing.T) {
	for _, g := range []struct{ cus, lanes int }{{0, 32}, {8, 0}, {-1, 32}, {8, -4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("DefaultDevice(%d, %d) must panic", g.cus, g.lanes)
				}
			}()
			DefaultDevice(g.cus, g.lanes)
		}()
	}
}

// TestTransferNS: a transfer occupies the DMA engine for link latency
// plus bytes over bandwidth; a zero-byte op still pays the setup.
func TestTransferNS(t *testing.T) {
	d := DefaultDevice(8, 32)
	if got := d.TransferNS(0); got != d.LinkLatencyNS {
		t.Errorf("TransferNS(0) = %d, want the bare link latency %d", got, d.LinkLatencyNS)
	}
	bytes := int64(1 << 20)
	want := d.LinkLatencyNS + int64(float64(bytes)/d.LinkBW)
	if got := d.TransferNS(bytes); got != want {
		t.Errorf("TransferNS(%d) = %d, want %d", bytes, got, want)
	}
	if d.TransferNS(2*bytes) <= d.TransferNS(bytes) {
		t.Error("TransferNS must grow with the byte count")
	}
}

// TestWithDeviceComposes: WithDevice attaches the accelerator to any
// host model and returns the same machine for chaining.
func TestWithDeviceComposes(t *testing.T) {
	m := PHI()
	if m.Dev != nil {
		t.Fatal("PHI ships with a device attached; the test premise is wrong")
	}
	if got := WithDevice(m, 8, 32); got != m {
		t.Error("WithDevice must return its argument for chaining")
	}
	if m.Dev == nil || m.Dev.CUs != 8 || m.Dev.LanesPerCU != 32 {
		t.Errorf("attached device %+v, want 8x32", m.Dev)
	}
}
