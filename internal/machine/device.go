package machine

import "fmt"

// Device models a GPU-like accelerator attached to a host node: a grid
// of compute units (CUs), each executing W SIMT lanes in lockstep, with
// its own memory behind its own latency/bandwidth model and a single
// host↔device transfer engine (DMA) over a PCIe-class link. The numbers
// are a deliberately round mid-range datacenter accelerator — what
// matters for the experiments is the *shape* (wide, high-bandwidth,
// high-launch-latency) relative to the host models, not any one part
// number.
type Device struct {
	Name       string
	CUs        int // compute units (independent team slots)
	LanesPerCU int // SIMT width: lanes that advance in lockstep
	GHz        float64

	// MemBytes sizes the separate device memory; mapping more than this
	// fails loudly (device allocators do not overcommit).
	MemBytes int64
	// MemLatencyNS is the device-memory access latency seen by a CU and
	// MemBWperCU the per-CU streaming bandwidth in bytes per nanosecond
	// (GB/s ≈ bytes/ns). Device memory is banked: CUs stream
	// independently up to their per-CU share.
	MemLatencyNS int64
	MemBWperCU   float64

	// The host↔device link: one DMA engine, serially owned. A transfer
	// of b bytes occupies the engine for LinkLatencyNS + b/LinkBW
	// nanoseconds.
	LinkLatencyNS int64
	LinkBW        float64 // bytes per nanosecond

	// KernelLaunchNS is the fixed host-side cost of launching one kernel
	// (driver submit + device dispatch), and BlockSchedNS the device-side
	// cost of dealing one distribute block to a team.
	KernelLaunchNS int64
	BlockSchedNS   int64
}

// LaneCount returns the total lane (SIMT thread) capacity.
func (d *Device) LaneCount() int { return d.CUs * d.LanesPerCU }

// TransferNS returns the DMA engine occupancy for moving b bytes across
// the link in either direction.
func (d *Device) TransferNS(b int64) int64 {
	if b <= 0 {
		return d.LinkLatencyNS
	}
	return d.LinkLatencyNS + int64(float64(b)/d.LinkBW)
}

// DefaultDevice builds the reference accelerator model at a given
// geometry: 1.4 GHz CUs, 16 GB of device memory at 350 ns / 32 B/ns per
// CU, a 64 GB/s link with 1.5 µs transfer setup, and a 4 µs kernel
// launch. Geometry scales capability; the per-unit characteristics stay
// fixed so sweeps over CUs isolate parallelism.
func DefaultDevice(cus, lanes int) *Device {
	if cus <= 0 || lanes <= 0 {
		panic(fmt.Sprintf("machine: invalid device geometry %d CUs × %d lanes", cus, lanes))
	}
	return &Device{
		Name:           fmt.Sprintf("ACC%dx%d", cus, lanes),
		CUs:            cus,
		LanesPerCU:     lanes,
		GHz:            1.4,
		MemBytes:       16 << 30,
		MemLatencyNS:   350,
		MemBWperCU:     32,
		LinkLatencyNS:  1500,
		LinkBW:         64,
		KernelLaunchNS: 4000,
		BlockSchedNS:   200,
	}
}

// WithDevice attaches the reference accelerator at the given geometry to
// a host machine model, composing with any host constructor
// (PHI/XEON8/BigIron). It returns the same machine for chaining.
func WithDevice(m *Machine, cus, lanes int) *Machine {
	m.Dev = DefaultDevice(cus, lanes)
	return m
}
