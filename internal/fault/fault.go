// Package fault is a deterministic, seeded fault-plan engine for the
// discrete-event simulator. A Plan names faults either scheduled at
// virtual times (CPU offline, compartment crash, IRQ storm) or injected
// by seeded probability at well-defined probe points (NIC frame drop and
// corruption, lost futex wakes, allocation failures).
//
// Determinism: the engine draws from its own RNG stream, seeded from
// Plan.Seed, never from the workload simulator's RNG. Probes are rolled
// at deterministic points of the DES schedule (one proc runs at a time),
// so two runs of the same workload with the same plan inject byte-for-
// byte identical fault sequences — a failing run can always be replayed.
//
// The engine knows nothing about the layers above the simulator. Probes
// (DropFrame, LoseWake, FailAlloc, ...) are plain func() bool values the
// layers accept in their configs, and scheduled faults invoke caller-
// provided Handlers, so mpi/omp/multikernel/nautilus stay decoupled from
// this package.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"github.com/interweaving/komp/internal/sim"
)

// Kind enumerates injectable fault classes.
type Kind int

// Fault kinds. The first group is scheduled at virtual times; the second
// is probability-driven at probe points.
const (
	// CPUOffline takes a CPU out of service at a virtual time (Arg: CPU).
	CPUOffline Kind = iota
	// CompartmentCrash kills a kernel compartment (Arg: compartment id).
	CompartmentCrash
	// IRQStorm floods a CPU with interrupts for a duration (Arg: CPU,
	// Dur: storm length).
	IRQStorm
	// CUOffline takes an accelerator compute unit out of service at a
	// virtual time (Arg: CU). The device league re-deals the dead CU's
	// queued blocks to surviving teams.
	CUOffline

	// FrameDrop drops a NIC frame (rate-driven).
	FrameDrop
	// FrameCorrupt corrupts a NIC frame in flight (rate-driven).
	FrameCorrupt
	// LostWake drops a futex wake-up (rate-driven).
	LostWake
	// AllocFail fails a kernel allocation (rate-driven).
	AllocFail
)

func (k Kind) String() string {
	switch k {
	case CPUOffline:
		return "cpu-offline"
	case CompartmentCrash:
		return "crash"
	case IRQStorm:
		return "irq-storm"
	case CUOffline:
		return "cu-offline"
	case FrameDrop:
		return "drop"
	case FrameCorrupt:
		return "corrupt"
	case LostWake:
		return "lost-wake"
	case AllocFail:
		return "alloc-fail"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	At   sim.Time
	Kind Kind
	Arg  int      // CPU id or compartment id
	Dur  sim.Time // IRQStorm only: storm duration
}

// Plan is a complete, self-describing fault plan.
type Plan struct {
	// Seed feeds the engine's private RNG stream (probe rolls). The
	// workload's own seed is untouched.
	Seed int64

	// Scheduled faults, applied in virtual-time order.
	Events []Event

	// Probe rates in [0, 1].
	DropRate      float64 // NIC frame drop
	CorruptRate   float64 // NIC frame corruption
	LostWakeRate  float64 // futex wake loss
	AllocFailRate float64 // kernel allocation failure
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool {
	return len(p.Events) == 0 && p.DropRate == 0 && p.CorruptRate == 0 &&
		p.LostWakeRate == 0 && p.AllocFailRate == 0
}

// String renders the plan in the same directive format Parse accepts.
func (p Plan) String() string {
	var parts []string
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	for _, r := range []struct {
		name string
		rate float64
	}{{"drop", p.DropRate}, {"corrupt", p.CorruptRate}, {"lostwake", p.LostWakeRate}, {"allocfail", p.AllocFailRate}} {
		if r.rate > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", r.name, r.rate))
		}
	}
	for _, e := range p.Events {
		s := fmt.Sprintf("%s@%s:%d", e.Kind, fmtDur(e.At), e.Arg)
		if e.Kind == IRQStorm {
			s += "+" + fmtDur(e.Dur)
		}
		parts = append(parts, s)
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ";")
}

func fmtDur(t sim.Time) string {
	switch {
	case t%sim.Second == 0 && t != 0:
		return fmt.Sprintf("%ds", t/sim.Second)
	case t%sim.Millisecond == 0 && t != 0:
		return fmt.Sprintf("%dms", t/sim.Millisecond)
	case t%sim.Microsecond == 0 && t != 0:
		return fmt.Sprintf("%dus", t/sim.Microsecond)
	default:
		return fmt.Sprintf("%dns", t)
	}
}

// Parse reads a plan from its compact directive syntax: semicolon-
// separated terms, each either a rate (`drop=0.05`, `corrupt=0.01`,
// `lostwake=0.02`, `allocfail=0.1`), the RNG seed (`seed=42`), or a
// scheduled fault `kind@time:arg` with time suffixed ns/us/ms/s —
// e.g. `cpu-offline@2ms:3`, `crash@1ms:1`, `irq-storm@500us:0+2ms`
// (the `+dur` suffix gives the storm length).
//
// A malformed plan fails with an error naming the offending term and
// its byte offset in the input, so a long plan assembled by tooling
// pinpoints the bad directive instead of just rejecting the string.
func Parse(s string) (Plan, error) {
	var p Plan
	if t := strings.TrimSpace(s); t == "" || t == "none" {
		return p, nil
	}
	pos := 0
	for termNo := 1; pos <= len(s); termNo++ {
		raw := s[pos:]
		if i := strings.IndexByte(raw, ';'); i >= 0 {
			raw = raw[:i]
		}
		off := pos + leadingSpace(raw)
		pos += len(raw) + 1
		term := strings.TrimSpace(raw)
		if term == "" {
			continue
		}
		fail := func(err error) (Plan, error) {
			return Plan{}, fmt.Errorf("fault: term %d (%q, at offset %d): %w", termNo, term, off, err)
		}
		if k, v, ok := strings.Cut(term, "="); ok && !strings.Contains(k, "@") {
			if err := p.setRate(k, v); err != nil {
				return fail(err)
			}
			continue
		}
		ev, err := parseEvent(term)
		if err != nil {
			return fail(err)
		}
		p.Events = append(p.Events, ev)
	}
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return p, nil
}

// leadingSpace counts the whitespace bytes a term's offset skips over.
func leadingSpace(s string) int {
	return len(s) - len(strings.TrimLeft(s, " \t"))
}

// setRate and the parse helpers below return bare messages naming the
// offending token; Parse wraps them with the term's index and offset.
func (p *Plan) setRate(k, v string) error {
	if k == "seed" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed value %q (want an integer)", v)
		}
		p.Seed = n
		return nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f < 0 || f > 1 {
		return fmt.Errorf("bad rate value %q for %q (want a number in [0,1])", v, k)
	}
	switch k {
	case "drop":
		p.DropRate = f
	case "corrupt":
		p.CorruptRate = f
	case "lostwake":
		p.LostWakeRate = f
	case "allocfail":
		p.AllocFailRate = f
	default:
		return fmt.Errorf("unknown rate name %q (want drop, corrupt, lostwake, allocfail or seed)", k)
	}
	return nil
}

func parseEvent(term string) (Event, error) {
	kindStr, rest, ok := strings.Cut(term, "@")
	if !ok {
		return Event{}, fmt.Errorf("malformed term (want kind@time:arg or rate=x)")
	}
	var kind Kind
	switch kindStr {
	case "cpu-offline":
		kind = CPUOffline
	case "crash":
		kind = CompartmentCrash
	case "irq-storm":
		kind = IRQStorm
	case "cu-offline":
		kind = CUOffline
	default:
		return Event{}, fmt.Errorf("unknown scheduled fault %q (want cpu-offline, cu-offline, crash or irq-storm)", kindStr)
	}
	timeStr, argStr, ok := strings.Cut(rest, ":")
	if !ok {
		return Event{}, fmt.Errorf("missing :arg after time %q", rest)
	}
	at, err := parseDur(timeStr)
	if err != nil {
		return Event{}, err
	}
	ev := Event{At: at, Kind: kind}
	if kind == IRQStorm {
		if a, d, ok := strings.Cut(argStr, "+"); ok {
			ev.Dur, err = parseDur(d)
			if err != nil {
				return Event{}, err
			}
			argStr = a
		} else {
			ev.Dur = sim.Millisecond
		}
	}
	ev.Arg, err = strconv.Atoi(argStr)
	if err != nil {
		return Event{}, fmt.Errorf("bad arg %q (want an integer CPU or compartment id)", argStr)
	}
	return ev, nil
}

func parseDur(s string) (sim.Time, error) {
	digits := s
	unit := sim.Nanosecond
	switch {
	case strings.HasSuffix(s, "ns"):
		digits = s[:len(s)-2]
	case strings.HasSuffix(s, "us"):
		digits, unit = s[:len(s)-2], sim.Microsecond
	case strings.HasSuffix(s, "ms"):
		digits, unit = s[:len(s)-2], sim.Millisecond
	case strings.HasSuffix(s, "s"):
		digits, unit = s[:len(s)-1], sim.Second
	}
	n, err := strconv.ParseInt(digits, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad duration %q (want a non-negative integer with an ns/us/ms/s suffix)", s)
	}
	return n * unit, nil
}

// Handlers receives scheduled faults. A nil field means that fault kind
// is ignored (counted but with no effect).
type Handlers struct {
	CPUOffline       func(cpu int)
	CUOffline        func(cu int)
	CompartmentCrash func(id int)
	// IRQStorm is optional; when nil the engine applies its built-in
	// storm, stealing CPU time directly from the simulated timeline.
	IRQStorm func(cpu int, dur sim.Time)
}

// Engine instantiates a Plan against one simulator run.
type Engine struct {
	Plan Plan

	sim *sim.Sim
	rng *rand.Rand

	// Injected counts faults actually delivered, per kind.
	Injected map[Kind]int64
}

// IRQ storm shape: one interrupt every period, each stealing cost from
// the CPU, matching the dedicated-IRQ-line pressure of §5's NIC study.
const (
	stormPeriodNS = 10 * sim.Microsecond
	stormCostNS   = 4 * sim.Microsecond
)

// New creates an engine for plan p over s. Scheduled faults are armed
// immediately via Arm; probes are live from the start.
func New(s *sim.Sim, p Plan) *Engine {
	return &Engine{
		Plan:     p,
		sim:      s,
		rng:      rand.New(rand.NewSource(p.Seed ^ 0x5eed_fa17)),
		Injected: make(map[Kind]int64),
	}
}

// Arm schedules the plan's timed faults on the simulator, routing each to
// the matching handler. Call it once, before the simulation runs.
func (e *Engine) Arm(h Handlers) {
	for _, ev := range e.Plan.Events {
		ev := ev
		e.sim.At(ev.At, func() {
			e.Injected[ev.Kind]++
			switch ev.Kind {
			case CPUOffline:
				if h.CPUOffline != nil {
					h.CPUOffline(ev.Arg)
				}
			case CUOffline:
				if h.CUOffline != nil {
					h.CUOffline(ev.Arg)
				}
			case CompartmentCrash:
				if h.CompartmentCrash != nil {
					h.CompartmentCrash(ev.Arg)
				}
			case IRQStorm:
				if h.IRQStorm != nil {
					h.IRQStorm(ev.Arg, ev.Dur)
				} else {
					e.stormCPU(ev.Arg, ev.Dur)
				}
			}
		})
	}
}

// stormCPU is the built-in IRQ storm: interrupts arrive every
// stormPeriodNS for dur, each stealing stormCostNS of the CPU's timeline
// — exactly how a hardware IRQ preempts whatever compute segment is in
// flight.
func (e *Engine) stormCPU(cpu int, dur sim.Time) {
	if cpu < 0 || cpu >= e.sim.NumCPU() {
		return
	}
	end := e.sim.Now() + dur
	var tick func()
	tick = func() {
		c := e.sim.CPU(cpu)
		if c.FreeAt < e.sim.Now() {
			c.FreeAt = e.sim.Now()
		}
		c.FreeAt += stormCostNS
		c.BusyNS += stormCostNS
		if e.sim.Now()+stormPeriodNS < end {
			e.sim.After(stormPeriodNS, tick)
		}
	}
	tick()
}

// roll draws one probe decision at rate r.
func (e *Engine) roll(k Kind, r float64) bool {
	if r <= 0 {
		return false
	}
	if r < 1 && e.rng.Float64() >= r {
		return false
	}
	e.Injected[k]++
	return true
}

// DropFrame reports whether the NIC should drop the next frame.
func (e *Engine) DropFrame() bool { return e.roll(FrameDrop, e.Plan.DropRate) }

// CorruptFrame reports whether the NIC should corrupt the next frame.
func (e *Engine) CorruptFrame() bool { return e.roll(FrameCorrupt, e.Plan.CorruptRate) }

// LoseWake reports whether the next futex wake should be dropped.
func (e *Engine) LoseWake() bool { return e.roll(LostWake, e.Plan.LostWakeRate) }

// FailAlloc reports whether the next kernel allocation should fail.
func (e *Engine) FailAlloc() bool { return e.roll(AllocFail, e.Plan.AllocFailRate) }

// InjectedTotal returns the total number of faults delivered.
func (e *Engine) InjectedTotal() int64 {
	var n int64
	for _, c := range e.Injected {
		n += c
	}
	return n
}

// Summary renders delivered-fault counts in a fixed kind order (for
// deterministic report output).
func (e *Engine) Summary() string {
	kinds := []Kind{CPUOffline, CUOffline, CompartmentCrash, IRQStorm, FrameDrop, FrameCorrupt, LostWake, AllocFail}
	var parts []string
	for _, k := range kinds {
		if n := e.Injected[k]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, n))
		}
	}
	if len(parts) == 0 {
		return "no faults delivered"
	}
	return strings.Join(parts, " ")
}
