package fault

import (
	"strings"
	"testing"

	"github.com/interweaving/komp/internal/sim"
)

func TestParseRoundTrip(t *testing.T) {
	const src = "seed=42;drop=0.05;lostwake=0.01;cpu-offline@2ms:3;crash@1ms:1;irq-storm@500us:0+2ms"
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.DropRate != 0.05 || p.LostWakeRate != 0.01 {
		t.Fatalf("rates: %+v", p)
	}
	if len(p.Events) != 3 {
		t.Fatalf("events = %d, want 3", len(p.Events))
	}
	// Events sort by time: irq-storm@500us, crash@1ms, cpu-offline@2ms.
	if p.Events[0].Kind != IRQStorm || p.Events[0].At != 500*sim.Microsecond || p.Events[0].Dur != 2*sim.Millisecond {
		t.Fatalf("event[0] = %+v", p.Events[0])
	}
	if p.Events[1].Kind != CompartmentCrash || p.Events[1].Arg != 1 {
		t.Fatalf("event[1] = %+v", p.Events[1])
	}
	if p.Events[2].Kind != CPUOffline || p.Events[2].Arg != 3 || p.Events[2].At != 2*sim.Millisecond {
		t.Fatalf("event[2] = %+v", p.Events[2])
	}
	// String() re-parses to the same plan.
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", p.String(), err)
	}
	if p2.String() != p.String() {
		t.Fatalf("round trip: %q vs %q", p.String(), p2.String())
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	for _, src := range []string{"", "none", "  "} {
		p, err := Parse(src)
		if err != nil || !p.Empty() {
			t.Fatalf("Parse(%q) = %+v, %v", src, p, err)
		}
	}
	for _, src := range []string{"drop=1.5", "bogus=0.1", "cpu-offline@2ms", "frob@1ms:0", "drop=x", "cpu-offline@2ms:zz"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

// TestParseErrorsNameTokenAndPosition: a malformed plan's error must
// carry the offending token verbatim plus its term index and byte
// offset, so a bad directive in a long tool-assembled plan is
// pinpointed rather than the whole string rejected opaquely.
func TestParseErrorsNameTokenAndPosition(t *testing.T) {
	cases := []struct {
		src  string
		want []string // substrings the error must contain
	}{
		{"drop=1.5", []string{`term 1`, `"drop=1.5"`, `offset 0`, `"1.5"`, `[0,1]`}},
		{"drop=0.1;bogus=0.2", []string{`term 2`, `"bogus=0.2"`, `offset 9`, `"bogus"`, `allocfail`}},
		{"drop=0.1; cpu-offline@2ms", []string{`term 2`, `"cpu-offline@2ms"`, `offset 10`, `missing :arg`}},
		{"frob@1ms:0", []string{`term 1`, `"frob"`, `cpu-offline, cu-offline, crash or irq-storm`}},
		{"cpu-offline@2xs:3", []string{`term 1`, `duration "2xs"`, `ns/us/ms/s`}},
		{"cpu-offline@2ms:zz", []string{`term 1`, `arg "zz"`, `integer`}},
		{"seed=abc", []string{`term 1`, `seed value "abc"`, `integer`}},
		{"irq-storm@1ms:0+9qs", []string{`term 1`, `duration "9qs"`}},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error", c.src)
			continue
		}
		for _, sub := range c.want {
			if !strings.Contains(err.Error(), sub) {
				t.Errorf("Parse(%q) error %q: missing %q", c.src, err, sub)
			}
		}
	}
}

func TestProbesDeterministic(t *testing.T) {
	roll := func() []bool {
		s := sim.New(1, 1)
		e := New(s, Plan{Seed: 7, DropRate: 0.3, LostWakeRate: 0.1})
		out := make([]bool, 0, 200)
		for i := 0; i < 100; i++ {
			out = append(out, e.DropFrame(), e.LoseWake())
		}
		return out
	}
	a, b := roll(), roll()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probe %d differs between identical runs", i)
		}
	}
	drops := 0
	for i := 0; i < len(a); i += 2 {
		if a[i] {
			drops++
		}
	}
	if drops < 10 || drops > 60 {
		t.Fatalf("drop count %d/100 implausible for rate 0.3", drops)
	}
}

func TestEngineRNGIndependentOfWorkload(t *testing.T) {
	// Probe rolls must not consume the workload simulator's RNG stream.
	s := sim.New(1, 99)
	before := s.RNG().Int63()
	s2 := sim.New(1, 99)
	e := New(s2, Plan{Seed: 1, DropRate: 0.5})
	for i := 0; i < 50; i++ {
		e.DropFrame()
	}
	after := s2.RNG().Int63()
	if before != after {
		t.Fatal("fault probes perturbed the workload RNG stream")
	}
}

func TestArmDeliversScheduledFaults(t *testing.T) {
	s := sim.New(2, 1)
	p, err := Parse("cpu-offline@500ns:1;crash@900ns:0")
	if err != nil {
		t.Fatal(err)
	}
	e := New(s, p)
	var offlined, crashed []int
	var offAt, crashAt sim.Time
	e.Arm(Handlers{
		CPUOffline:       func(cpu int) { offlined = append(offlined, cpu); offAt = s.Now() },
		CompartmentCrash: func(id int) { crashed = append(crashed, id); crashAt = s.Now() },
	})
	s.Go("w", 0, 0, func(pr *sim.Proc) { pr.Compute(2000) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(offlined) != 1 || offlined[0] != 1 || offAt != 500 {
		t.Fatalf("offline = %v at %d", offlined, offAt)
	}
	if len(crashed) != 1 || crashed[0] != 0 || crashAt != 900 {
		t.Fatalf("crash = %v at %d", crashed, crashAt)
	}
	if e.Injected[CPUOffline] != 1 || e.Injected[CompartmentCrash] != 1 {
		t.Fatalf("injected = %v", e.Injected)
	}
}

func TestBuiltinIRQStormStealsCPUTime(t *testing.T) {
	run := func(storm bool) sim.Time {
		s := sim.New(1, 1)
		if storm {
			p, err := Parse("irq-storm@0ns:0+1ms")
			if err != nil {
				t.Fatal(err)
			}
			New(s, p).Arm(Handlers{})
		}
		var end sim.Time
		s.Go("w", 0, 0, func(pr *sim.Proc) {
			for i := 0; i < 100; i++ {
				pr.Compute(10 * sim.Microsecond)
			}
			end = pr.Now()
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	clean, stormy := run(false), run(true)
	if stormy <= clean {
		t.Fatalf("IRQ storm did not slow the workload: clean=%d stormy=%d", clean, stormy)
	}
}

func TestSummaryDeterministicOrder(t *testing.T) {
	s := sim.New(1, 1)
	e := New(s, Plan{Seed: 3, DropRate: 1, LostWakeRate: 1})
	e.LoseWake()
	e.DropFrame()
	e.DropFrame()
	if got, want := e.Summary(), "drop=2 lost-wake=1"; got != want {
		t.Fatalf("Summary() = %q, want %q", got, want)
	}
	if e.InjectedTotal() != 3 {
		t.Fatalf("total = %d", e.InjectedTotal())
	}
}

// TestCUOfflineParseArmSummary: the accelerator fault directive parses,
// round-trips through String, dispatches to the CUOffline handler at its
// scheduled time, and shows up in the summary — the hook the device
// league's re-deal composes with.
func TestCUOfflineParseArmSummary(t *testing.T) {
	p, err := Parse("cu-offline@2ms:1;cu-offline@3ms:0")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 2 || p.Events[0].Kind != CUOffline || p.Events[0].Arg != 1 ||
		p.Events[0].At != 2*sim.Millisecond {
		t.Fatalf("events = %+v", p.Events)
	}
	if got := p.String(); got != "cu-offline@2ms:1;cu-offline@3ms:0" {
		t.Fatalf("String() = %q", got)
	}

	s := sim.New(2, 1)
	e := New(s, p)
	var dead []int
	var at []sim.Time
	e.Arm(Handlers{CUOffline: func(cu int) { dead = append(dead, cu); at = append(at, s.Now()) }})
	s.Go("w", 0, 0, func(pr *sim.Proc) { pr.Compute(4 * sim.Millisecond) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(dead) != 2 || dead[0] != 1 || dead[1] != 0 ||
		at[0] != 2*sim.Millisecond || at[1] != 3*sim.Millisecond {
		t.Fatalf("delivered %v at %v", dead, at)
	}
	if e.Injected[CUOffline] != 2 {
		t.Fatalf("injected = %v", e.Injected)
	}
	if got := e.Summary(); !strings.Contains(got, "cu-offline=2") {
		t.Fatalf("Summary() = %q, want cu-offline=2", got)
	}
}
