package device

import (
	"reflect"

	"github.com/interweaving/komp/internal/exec"
)

// MapKind is the map-type modifier of a map clause.
type MapKind uint8

// Map-type modifiers. Presence semantics follow OpenMP 5.x: a mapping
// already present only has its reference count bumped — no data moves —
// which is exactly why hoisting maps into an enclosing `target data`
// eliminates the per-region transfer traffic.
const (
	// To copies host→device when the mapping is created.
	To MapKind = iota
	// From copies device→host when the last reference is released.
	From
	// Tofrom does both.
	Tofrom
	// Alloc allocates device memory with no transfer either way.
	Alloc
)

func (k MapKind) String() string {
	switch k {
	case To:
		return "to"
	case From:
		return "from"
	case Tofrom:
		return "tofrom"
	}
	return "alloc"
}

// Map is one map clause entry: a host object (a slice, or a pointer to
// a scalar/struct) and its map-type.
type Map struct {
	Obj  any
	Kind MapKind
}

// MapTo, MapFrom, MapTofrom and MapAlloc build map clause entries.
func MapTo(obj any) Map     { return Map{Obj: obj, Kind: To} }
func MapFrom(obj any) Map   { return Map{Obj: obj, Kind: From} }
func MapTofrom(obj any) Map { return Map{Obj: obj, Kind: Tofrom} }
func MapAlloc(obj any) Map  { return Map{Obj: obj, Kind: Alloc} }

// buffer is one entry of the host↔device address-translation table: the
// host object, its device-side copy, and the reference count that
// structured (`target data`) and unstructured (`enter/exit data`)
// mappings share.
type buffer struct {
	host  any
	dev   any
	bytes int64
	ref   int
	kind  MapKind // kind the mapping was created with (From drives the final copy-out)
}

// hostKey derives the table key from a host object: the data pointer of
// a slice, or the pointer itself. Two views of the same storage map to
// the same device buffer, as OpenMP's present table requires.
func hostKey(obj any) uintptr {
	v := reflect.ValueOf(obj)
	switch v.Kind() {
	case reflect.Slice, reflect.Pointer:
		return v.Pointer()
	}
	panic("device: only slices and pointers are mappable, got " + reflect.TypeOf(obj).String())
}

// hostBytes sizes a mappable object.
func hostBytes(obj any) int64 {
	v := reflect.ValueOf(obj)
	switch v.Kind() {
	case reflect.Slice:
		return int64(v.Len()) * int64(v.Type().Elem().Size())
	case reflect.Pointer:
		return int64(v.Type().Elem().Size())
	}
	panic("device: only slices and pointers are mappable, got " + reflect.TypeOf(obj).String())
}

// newDevCopy allocates the device-side object: same type and length,
// zero-initialized (transfers fill it when the map-type says so).
func newDevCopy(obj any) any {
	v := reflect.ValueOf(obj)
	switch v.Kind() {
	case reflect.Slice:
		return reflect.MakeSlice(v.Type(), v.Len(), v.Len()).Interface()
	case reflect.Pointer:
		return reflect.New(v.Type().Elem()).Interface()
	}
	panic("device: only slices and pointers are mappable")
}

// copyData moves the payload between the host object and its device
// copy (dir true: host→device).
func copyData(host, dev any, h2d bool) {
	hv, dv := reflect.ValueOf(host), reflect.ValueOf(dev)
	if hv.Kind() == reflect.Slice {
		if h2d {
			reflect.Copy(dv, hv)
		} else {
			reflect.Copy(hv, dv)
		}
		return
	}
	if h2d {
		dv.Elem().Set(hv.Elem())
	} else {
		hv.Elem().Set(dv.Elem())
	}
}

// mapAllocNS is the driver-side cost of creating or destroying one
// device allocation (ioctl round trip, device allocator).
const mapAllocNS = 800

// Enter maps objects onto the device (`target enter data`, and the
// entry half of `target`/`target data`). A mapping already present only
// gains a reference; a new mapping allocates device memory — failing
// loudly past the device's capacity — and copies host→device when the
// map-type includes `to`. The transfer occupies the DMA engine via
// Contend, so concurrent mappers serialize deterministically.
func (d *Dev) Enter(tc exec.TC, ms ...Map) {
	d.Init(tc)
	for _, m := range ms {
		k := hostKey(m.Obj)
		bytes := hostBytes(m.Obj)
		d.mu.Lock()
		b := d.bufs[k]
		created := b == nil
		if created {
			if d.alloced+bytes > d.topo.MemBytes {
				d.mu.Unlock()
				d.failf("out of device memory mapping %d bytes (%d of %d in use)",
					bytes, d.alloced, d.topo.MemBytes)
			}
			b = &buffer{host: m.Obj, dev: newDevCopy(m.Obj), bytes: bytes, kind: m.Kind}
			d.bufs[k] = b
			d.alloced += bytes
		}
		b.ref++
		d.mu.Unlock()
		if !created {
			continue
		}
		tc.Charge(mapAllocNS)
		d.emitData(tc, opAlloc, bytes)
		if m.Kind == To || m.Kind == Tofrom {
			d.transfer(tc, b, true)
		}
	}
}

// Exit unmaps objects (`target exit data`, and the exit half of
// `target`/`target data`): the reference count drops, and when the last
// reference goes the mapping copies device→host if either the creating
// or the releasing map-type includes `from`, then frees the device
// memory. Unmapping an object that is not mapped fails loudly.
func (d *Dev) Exit(tc exec.TC, ms ...Map) {
	for _, m := range ms {
		k := hostKey(m.Obj)
		d.mu.Lock()
		b := d.bufs[k]
		if b == nil || b.ref <= 0 {
			d.mu.Unlock()
			d.failf("exit data for object that is not mapped (%T)", m.Obj)
		}
		b.ref--
		last := b.ref == 0
		if last {
			delete(d.bufs, k)
			d.alloced -= b.bytes
		}
		d.mu.Unlock()
		if !last {
			continue
		}
		if m.Kind == From || m.Kind == Tofrom || b.kind == From {
			d.transfer(tc, b, false)
		}
		tc.Charge(mapAllocNS)
		d.emitData(tc, opDelete, b.bytes)
	}
}

// Data brackets body with a structured mapping (`target data`): enter
// the maps, run the body (whose target regions find the mappings
// present and move no data), exit in reverse order.
func (d *Dev) Data(tc exec.TC, ms []Map, body func()) {
	d.Enter(tc, ms...)
	body()
	for i := len(ms) - 1; i >= 0; i-- {
		d.Exit(tc, ms[i])
	}
}

// Ptr translates a host object to its device-side counterpart — the
// device address a kernel body dereferences. Using an object that is
// not (or no longer) mapped is the dangling-device-pointer bug class,
// and it fails loudly here instead of silently reading stale memory.
func (d *Dev) Ptr(obj any) any {
	k := hostKey(obj)
	d.mu.Lock()
	b := d.bufs[k]
	d.mu.Unlock()
	if b == nil {
		d.failf("dangling device pointer: %T is not mapped (use map clauses or target data)", obj)
	}
	return b.dev
}

// Mapped reports whether a host object currently has a device mapping.
func (d *Dev) Mapped(obj any) bool {
	k := hostKey(obj)
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bufs[k] != nil
}

// transfer moves one buffer across the link. The DMA engine is an
// exec.Line: the transfer owns it for latency + bytes/bandwidth
// nanoseconds, so back-to-back transfers queue behind each other in
// virtual time — deterministic because the order procs reach Contend is.
func (d *Dev) transfer(tc exec.TC, b *buffer, h2d bool) {
	ns := d.topo.TransferNS(b.bytes)
	tc.Contend(&d.dma, ns)
	copyData(b.host, b.dev, h2d)
	if h2d {
		d.bytesH2D.Add(b.bytes)
		d.emitData(tc, opH2D, b.bytes)
	} else {
		d.bytesD2H.Add(b.bytes)
		d.emitData(tc, opD2H, b.bytes)
	}
}
