package device

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/sim"
)

// layers mirrors the exec test harness: every semantic test runs on both
// execution layers, so the device runtime's results are provably
// independent of whether time is real or modeled.
func layers(t *testing.T) map[string]func() exec.Layer {
	t.Helper()
	return map[string]func() exec.Layer{
		"real": func() exec.Layer { return exec.NewRealLayer(8) },
		"sim": func() exec.Layer {
			return exec.NewSimLayer(sim.New(8, 1), exec.Costs{
				ThreadSpawnNS:      1000,
				FutexWaitEntryNS:   100,
				FutexWakeEntryNS:   100,
				FutexWakeLatencyNS: 50,
			})
		},
	}
}

func newDev(cus, lanes int) *Dev {
	return New(machine.DefaultDevice(cus, lanes), 0, nil)
}

// run executes body as the layer's main proc and fails the test on a
// layer error.
func run(t *testing.T, l exec.Layer, body func(tc exec.TC)) int64 {
	t.Helper()
	elapsed, err := l.Run(body)
	if err != nil {
		t.Fatal(err)
	}
	return elapsed
}

// wantPanic runs f inside the layer and demands a panic whose message
// contains substr (the fail-loudly contracts of the map table).
func wantPanic(t *testing.T, l exec.Layer, substr string, f func(tc exec.TC)) {
	t.Helper()
	var msg string
	run(t, l, func(tc exec.TC) {
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
			}
		}()
		f(tc)
	})
	if msg == "" {
		t.Fatalf("no panic, want one containing %q", substr)
	}
	if !strings.Contains(msg, substr) {
		t.Fatalf("panic %q, want substring %q", msg, substr)
	}
}

// TestMapKindMatrix pins the data-movement semantics of each map-type:
// which direction moves data, and when (creation vs release).
func TestMapKindMatrix(t *testing.T) {
	for name, mk := range layers(t) {
		t.Run(name, func(t *testing.T) {
			cases := []struct {
				kind          MapKind
				wantDevCopyIn bool // device copy holds host data after Enter
				wantCopyBack  bool // host sees device writes after Exit
				wantH2D       int64
				wantD2H       int64
			}{
				{To, true, false, 32, 0},
				{From, false, true, 0, 32},
				{Tofrom, true, true, 32, 32},
				{Alloc, false, false, 0, 0},
			}
			for _, c := range cases {
				t.Run(c.kind.String(), func(t *testing.T) {
					d := newDev(2, 4)
					a := []float64{1, 2, 3, 4}
					run(t, mk(), func(tc exec.TC) {
						d.Enter(tc, Map{Obj: a, Kind: c.kind})
						da := d.Ptr(a).([]float64)
						gotIn := da[2] == 3
						if gotIn != c.wantDevCopyIn {
							t.Errorf("%v: device copy initialized = %v, want %v", c.kind, gotIn, c.wantDevCopyIn)
						}
						for i := range da {
							da[i] = 100 + float64(i)
						}
						d.Exit(tc, Map{Obj: a, Kind: c.kind})
					})
					gotBack := a[2] == 102
					if gotBack != c.wantCopyBack {
						t.Errorf("%v: host sees device writes = %v, want %v (a = %v)", c.kind, gotBack, c.wantCopyBack, a)
					}
					st := d.Stats()
					if st.BytesH2D != c.wantH2D || st.BytesD2H != c.wantD2H {
						t.Errorf("%v: traffic h2d=%d d2h=%d, want %d/%d", c.kind, st.BytesH2D, st.BytesD2H, c.wantH2D, c.wantD2H)
					}
					if st.AllocatedBytes != 0 {
						t.Errorf("%v: %d bytes still allocated after exit", c.kind, st.AllocatedBytes)
					}
				})
			}
		})
	}
}

// TestScalarPointerMapping maps a pointer-to-struct and checks the same
// translation and copy-back contract slices get.
func TestScalarPointerMapping(t *testing.T) {
	type params struct{ N, Iters int }
	for name, mk := range layers(t) {
		t.Run(name, func(t *testing.T) {
			d := newDev(2, 4)
			p := &params{N: 7}
			run(t, mk(), func(tc exec.TC) {
				d.Data(tc, []Map{MapTofrom(p)}, func() {
					dp := d.Ptr(p).(*params)
					if dp.N != 7 {
						t.Errorf("device copy N = %d, want 7", dp.N)
					}
					dp.Iters = 42
				})
			})
			if p.Iters != 42 {
				t.Errorf("host Iters = %d after tofrom exit, want 42", p.Iters)
			}
		})
	}
}

// TestNestedDataRefcount is the present-table contract behind transfer
// hoisting: a mapping already present only gains a reference, so inner
// enters and target-style enter/exit pairs move no data, and the operand
// crosses the link exactly once each way however many regions nest.
func TestNestedDataRefcount(t *testing.T) {
	for name, mk := range layers(t) {
		t.Run(name, func(t *testing.T) {
			d := newDev(2, 4)
			a := make([]float64, 1024)
			for i := range a {
				a[i] = float64(i)
			}
			run(t, mk(), func(tc exec.TC) {
				d.Data(tc, []Map{MapTofrom(a)}, func() {
					afterOuter := d.Stats().BytesH2D
					for i := 0; i < 5; i++ {
						// The per-target enter/exit pair of a region nested in
						// the data environment: refcount 2 then back to 1.
						d.Enter(tc, MapTofrom(a))
						d.Exit(tc, MapTofrom(a))
					}
					if got := d.Stats().BytesH2D; got != afterOuter {
						t.Errorf("nested enters moved %d extra bytes, want 0", got-afterOuter)
					}
					if got := d.Stats().BytesD2H; got != 0 {
						t.Errorf("nested exits moved %d bytes back early, want 0", got)
					}
					if !d.Mapped(a) {
						t.Error("operand unmapped inside its data region")
					}
				})
			})
			st := d.Stats()
			want := int64(len(a) * 8)
			if st.BytesH2D != want || st.BytesD2H != want {
				t.Errorf("traffic h2d=%d d2h=%d, want exactly %d each way", st.BytesH2D, st.BytesD2H, want)
			}
			if d.Mapped(a) {
				t.Error("operand still mapped after the data region closed")
			}
		})
	}
}

// TestEnterExitUnstructuredLifetime covers `target enter/exit data`: the
// mapping outlives any one construct and dies with its last reference.
func TestEnterExitUnstructuredLifetime(t *testing.T) {
	for name, mk := range layers(t) {
		t.Run(name, func(t *testing.T) {
			d := newDev(2, 4)
			a := make([]int32, 256)
			run(t, mk(), func(tc exec.TC) {
				d.Enter(tc, MapTo(a))
				d.Enter(tc, MapTo(a)) // second reference
				d.Exit(tc, Map{Obj: a, Kind: Alloc})
				if !d.Mapped(a) {
					t.Error("mapping dropped while a reference remained")
				}
				if got := d.Stats().AllocatedBytes; got != int64(len(a)*4) {
					t.Errorf("allocated = %d, want %d", got, len(a)*4)
				}
				d.Exit(tc, Map{Obj: a, Kind: Alloc})
				if d.Mapped(a) {
					t.Error("mapping survived its last exit")
				}
			})
			if got := d.Stats().AllocatedBytes; got != 0 {
				t.Errorf("allocated = %d after final exit, want 0", got)
			}
		})
	}
}

// TestCreatingKindDrivesCopyOut: a mapping created `from` copies out on
// release even when the releasing map-type is a bare alloc — the
// creating kind is remembered, as unstructured lifetimes require.
func TestCreatingKindDrivesCopyOut(t *testing.T) {
	for name, mk := range layers(t) {
		t.Run(name, func(t *testing.T) {
			d := newDev(2, 4)
			a := make([]float64, 8)
			run(t, mk(), func(tc exec.TC) {
				d.Enter(tc, MapFrom(a))
				d.Ptr(a).([]float64)[3] = 9
				d.Exit(tc, Map{Obj: a, Kind: Alloc})
			})
			if a[3] != 9 {
				t.Errorf("a[3] = %v, want 9 (creating kind `from` must drive the final copy-out)", a[3])
			}
		})
	}
}

// TestDanglingDevicePointerFailsLoudly is the regression for the
// dangling-device-pointer bug class: translating an unmapped object, or
// launching a kernel whose Uses list names one, must panic with a
// diagnostic instead of silently computing on stale memory.
func TestDanglingDevicePointerFailsLoudly(t *testing.T) {
	for name, mk := range layers(t) {
		t.Run(name, func(t *testing.T) {
			a := []float64{1, 2, 3}
			t.Run("never-mapped", func(t *testing.T) {
				d := newDev(2, 4)
				wantPanic(t, mk(), "dangling device pointer", func(tc exec.TC) {
					d.Init(tc)
					d.Ptr(a)
				})
			})
			t.Run("after-exit", func(t *testing.T) {
				d := newDev(2, 4)
				wantPanic(t, mk(), "dangling device pointer", func(tc exec.TC) {
					d.Enter(tc, MapTo(a))
					d.Exit(tc, MapTo(a))
					d.Ptr(a) // the mapping is gone: stale translation
				})
			})
			t.Run("launch-uses-unmapped", func(t *testing.T) {
				d := newDev(2, 4)
				wantPanic(t, mk(), "dangling device pointer", func(tc exec.TC) {
					_, _ = d.Launch(tc, Kernel{Name: "k", N: 16, IterNS: 10, Uses: []any{a}})
				})
			})
		})
	}
}

// TestMapTableFailures covers the other fail-loudly contracts: exiting
// an unmapped object, mapping an unmappable value, and exceeding the
// device memory budget.
func TestMapTableFailures(t *testing.T) {
	for name, mk := range layers(t) {
		t.Run(name, func(t *testing.T) {
			t.Run("exit-unmapped", func(t *testing.T) {
				d := newDev(2, 4)
				wantPanic(t, mk(), "not mapped", func(tc exec.TC) {
					d.Exit(tc, MapTo([]float64{1}))
				})
			})
			t.Run("unmappable-value", func(t *testing.T) {
				d := newDev(2, 4)
				wantPanic(t, mk(), "only slices and pointers", func(tc exec.TC) {
					d.Enter(tc, MapTo(42))
				})
			})
			t.Run("out-of-device-memory", func(t *testing.T) {
				topo := machine.DefaultDevice(2, 4)
				topo.MemBytes = 1024
				d := New(topo, 0, nil)
				wantPanic(t, mk(), "out of device memory", func(tc exec.TC) {
					d.Enter(tc, MapAlloc(make([]float64, 64)))  // 512 bytes: fits
					d.Enter(tc, MapAlloc(make([]float64, 128))) // 1024 more: over budget
				})
			})
		})
	}
}

// leagueSum launches a league-reduction kernel over integer-valued data
// (exact under any combine order) and returns the result.
func leagueSum(t *testing.T, tc exec.TC, d *Dev, k Kernel, a []float64) Result {
	t.Helper()
	k.Uses = []any{a}
	k.Body = func(b Block) float64 {
		da := d.Ptr(a).([]float64)
		var s float64
		for i := b.Lo; i < b.Hi; i++ {
			s += da[i]
		}
		return s
	}
	k.Reduce = func(x, y float64) float64 { return x + y }
	d.Enter(tc, MapTo(a))
	res, err := d.Launch(tc, k)
	d.Exit(tc, MapTo(a))
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	return res
}

func sumInput(n int) (a []float64, want float64) {
	a = make([]float64, n)
	for i := range a {
		a[i] = float64(i%7 + 1)
		want += a[i]
	}
	return a, want
}

// TestLeagueReductionBothLayers: the two-phase league reduction computes
// the exact serial value on both execution layers, whatever the
// team/chunk geometry deals out.
func TestLeagueReductionBothLayers(t *testing.T) {
	for name, mk := range layers(t) {
		t.Run(name, func(t *testing.T) {
			for _, geom := range []struct{ teams, chunk int }{{0, 0}, {3, 0}, {7, 11}, {1, 1000}} {
				d := newDev(4, 8)
				a, want := sumInput(10_000)
				var res Result
				run(t, mk(), func(tc exec.TC) {
					res = leagueSum(t, tc, d, Kernel{Name: "sum", Teams: geom.teams, Chunk: geom.chunk,
						N: len(a), IterNS: 5, BytesPerIter: 8}, a)
				})
				if res.Reduced != want {
					t.Errorf("teams=%d chunk=%d: reduced %v, want %v", geom.teams, geom.chunk, res.Reduced, want)
				}
				if res.Blocks == 0 || res.ElapsedNS < 0 {
					t.Errorf("teams=%d chunk=%d: degenerate result %+v", geom.teams, geom.chunk, res)
				}
			}
		})
	}
}

// TestLeagueDeterminism: two fresh simulators running the identical
// offload scenario produce byte-identical elapsed times and counters —
// the determinism contract every figure rests on.
func TestLeagueDeterminism(t *testing.T) {
	once := func() (int64, Result, Stats) {
		l := exec.NewSimLayer(sim.New(8, 1), exec.Costs{ThreadSpawnNS: 1000})
		d := newDev(4, 8)
		a, _ := sumInput(4096)
		var res Result
		elapsed := run(t, l, func(tc exec.TC) {
			for i := 0; i < 3; i++ { // back-to-back kernels queue on persistent CU state
				res = leagueSum(t, tc, d, Kernel{Name: "sum", N: len(a), IterNS: 7, BytesPerIter: 8}, a)
			}
		})
		return elapsed, res, d.Stats()
	}
	e1, r1, s1 := once()
	e2, r2, s2 := once()
	if e1 != e2 || r1 != r2 || s1 != s2 {
		t.Errorf("two identical runs diverged:\n  run1: elapsed=%d res=%+v stats=%+v\n  run2: elapsed=%d res=%+v stats=%+v",
			e1, r1, s1, e2, r2, s2)
	}
}

// TestCUOfflineRedealsMidKernel injects a CU death mid-kernel on the DES
// clock: the league must re-deal the dead CU's queued blocks to the
// survivors and still produce the exact reduction — no block lost, no
// block run twice, no hang.
func TestCUOfflineRedealsMidKernel(t *testing.T) {
	l := exec.NewSimLayer(sim.New(8, 1), exec.Costs{ThreadSpawnNS: 1000})
	d := newDev(4, 8)
	a, want := sumInput(1 << 14)
	var res Result
	run(t, l, func(tc exec.TC) {
		h := tc.Spawn("cu-fault", 1, func(tc exec.TC) {
			tc.Sleep(200_000) // lands between block boundaries, mid-kernel
			d.OfflineCU(0)
		})
		res = leagueSum(t, tc, d, Kernel{Name: "sum", N: len(a), Chunk: 64, IterNS: 800, BytesPerIter: 8}, a)
		h.Join(tc)
	})
	if res.Reduced != want {
		t.Errorf("reduced %v after CU loss, want %v", res.Reduced, want)
	}
	if res.Redealt == 0 {
		t.Error("no blocks re-dealt; the fault missed the kernel (tune the offline time)")
	}
	if d.OnlineCUs() != 3 {
		t.Errorf("OnlineCUs = %d, want 3", d.OnlineCUs())
	}
	if st := d.Stats(); st.Redeals != int64(res.Redealt) {
		t.Errorf("Stats.Redeals = %d, want %d", st.Redeals, res.Redealt)
	}
}

// TestAllCUsOfflineIsDeviceLost: with no compute unit left the launch
// returns ErrDeviceLost instead of hanging — the degrade contract fault
// plans compose with.
func TestAllCUsOfflineIsDeviceLost(t *testing.T) {
	for name, mk := range layers(t) {
		t.Run(name, func(t *testing.T) {
			t.Run("before-launch", func(t *testing.T) {
				d := newDev(2, 4)
				d.OfflineCU(0)
				d.OfflineCU(1)
				run(t, mk(), func(tc exec.TC) {
					_, err := d.Launch(tc, Kernel{Name: "k", N: 64, IterNS: 10})
					if !errors.Is(err, ErrDeviceLost) {
						t.Errorf("Launch = %v, want ErrDeviceLost", err)
					}
				})
			})
		})
	}
	t.Run("mid-kernel", func(t *testing.T) {
		l := exec.NewSimLayer(sim.New(8, 1), exec.Costs{ThreadSpawnNS: 1000})
		d := newDev(2, 4)
		var err error
		run(t, l, func(tc exec.TC) {
			h := tc.Spawn("cu-fault", 1, func(tc exec.TC) {
				tc.Sleep(200_000)
				d.OfflineCU(0)
				d.OfflineCU(1)
			})
			_, err = d.Launch(tc, Kernel{Name: "k", N: 1 << 14, Chunk: 64, IterNS: 200})
			h.Join(tc)
		})
		if !errors.Is(err, ErrDeviceLost) {
			t.Errorf("Launch = %v, want ErrDeviceLost", err)
		}
	})
}

// TestOfflineCUIgnoresBadIds: marking an out-of-range or already-dead CU
// is a no-op, matching the fault engine's fire-and-forget handlers.
func TestOfflineCUIgnoresBadIds(t *testing.T) {
	d := newDev(2, 4)
	d.OfflineCU(-1)
	d.OfflineCU(99)
	d.OfflineCU(1)
	d.OfflineCU(1)
	if got := d.OnlineCUs(); got != 1 {
		t.Errorf("OnlineCUs = %d, want 1", got)
	}
}

// TestStageBytesCountsTraffic: the model-only staging path shares the
// DMA counters with mapped transfers and ignores non-positive sizes.
func TestStageBytesCountsTraffic(t *testing.T) {
	for name, mk := range layers(t) {
		t.Run(name, func(t *testing.T) {
			d := newDev(2, 4)
			run(t, mk(), func(tc exec.TC) {
				d.StageBytes(tc, 4096, true)
				d.StageBytes(tc, 1024, false)
				d.StageBytes(tc, 0, true)
				d.StageBytes(tc, -5, false)
			})
			st := d.Stats()
			if st.BytesH2D != 4096 || st.BytesD2H != 1024 {
				t.Errorf("traffic h2d=%d d2h=%d, want 4096/1024", st.BytesH2D, st.BytesD2H)
			}
		})
	}
}
