// Package device is the accelerator subsystem: a GPU-like device model
// and a device-side runtime for OpenMP target offload, fully
// deterministic on the DES clock.
//
// The device executes `teams distribute` kernels as a league of team
// contexts dealt over compute units (CUs), in the state-machine style of
// the portable OpenMP 5.1 GPU runtime (arXiv 2106.03219): the league
// engine advances per-CU virtual timelines block by block, so a kernel's
// device time is the max over CU timelines, faults can strike mid-kernel
// between blocks, and the host thread's clock only ever advances to
// block start times and the final completion — never the sum of
// concurrent work. Lane-level worksharing inside a team is modeled in
// lockstep SIMT steps (ceil(iters/lanes) lane-steps per block), and
// league-wide reductions combine per-team first, then across teams in a
// fanout tree — the fused-reduction shape of the host barrier.
//
// Host↔device data movement goes through a map table (map.go) with
// reference-counted, address-translated mappings and a single DMA
// engine modeled as an exec.Line: transfers serialize on it and charge
// link latency plus bytes/bandwidth on the DES clock, which is the whole
// determinism argument — the engine's occupancy is a pure function of
// the (deterministic) order in which procs reach Contend.
//
// Kernels carry real Go bodies: results are computed for real on the
// host thread while time is charged from the model, the same
// "real semantics, modeled timing" split the rest of the repository
// uses. On the real execution layer every charge is a no-op and the
// bodies simply run.
package device

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/ompt"
)

// Dev is one accelerator instance: topology, map table, per-CU
// timelines, and fault state. A Dev may be shared by several host
// threads (target nowait tasks launch concurrently); the mutex guards
// the table and timelines and is never held across a charge.
type Dev struct {
	topo *machine.Device
	id   int
	sp   *ompt.Spine

	mu      sync.Mutex
	inited  bool
	bufs    map[uintptr]*buffer
	alloced int64
	offline []bool
	cuFree  []int64 // per-CU virtual busy-until, persistent across kernels

	dma exec.Line // the host↔device transfer engine

	bytesH2D  atomic.Int64
	bytesD2H  atomic.Int64
	targetSeq atomic.Uint64
	redeals   atomic.Int64
	kernels   atomic.Int64
}

// New builds a device instance over a topology model. id is the OpenMP
// device number the instance answers to (events carry it).
func New(topo *machine.Device, id int, sp *ompt.Spine) *Dev {
	return &Dev{
		topo:    topo,
		id:      id,
		sp:      sp,
		bufs:    map[uintptr]*buffer{},
		offline: make([]bool, topo.CUs),
		cuFree:  make([]int64, topo.CUs),
	}
}

// Topo returns the device's topology model.
func (d *Dev) Topo() *machine.Device { return d.topo }

// ID returns the OpenMP device number.
func (d *Dev) ID() int { return d.id }

// deviceInitNS is the one-time driver/device bring-up cost charged on
// first use (context creation, firmware handshake).
const deviceInitNS = 20000

// Init brings the device up on first use: idempotent, charged once, and
// emits DeviceInit with the geometry. Every offload entry point calls
// it, so a bare Launch or Enter works without ceremony.
func (d *Dev) Init(tc exec.TC) {
	d.mu.Lock()
	first := !d.inited
	d.inited = true
	d.mu.Unlock()
	if !first {
		return
	}
	tc.Charge(deviceInitNS)
	if d.sp.Enabled(ompt.DeviceInit) {
		d.sp.Emit(ompt.Event{Kind: ompt.DeviceInit, Thread: -1, CPU: int32(tc.CPU()),
			TimeNS: tc.Now(), Obj: uint64(d.id),
			Arg0: int64(d.topo.CUs), Arg1: int64(d.topo.LanesPerCU)})
	}
}

// OfflineCU marks a compute unit dead, as a scheduled fault does: the
// league engine stops dealing to it and re-deals its queued blocks to
// surviving teams at the next block boundary. Marking an already-dead
// CU is a no-op.
func (d *Dev) OfflineCU(cu int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cu >= 0 && cu < len(d.offline) {
		d.offline[cu] = true
	}
}

// OnlineCUs returns the number of compute units still alive.
func (d *Dev) OnlineCUs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, off := range d.offline {
		if !off {
			n++
		}
	}
	return n
}

// onlineList snapshots the live CU ids in ascending order.
func (d *Dev) onlineList() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var cus []int
	for cu, off := range d.offline {
		if !off {
			cus = append(cus, cu)
		}
	}
	return cus
}

// Stats is the device's cumulative traffic and fault accounting.
type Stats struct {
	BytesH2D, BytesD2H int64
	Kernels            int64
	Redeals            int64 // blocks re-dealt off dead CUs
	AllocatedBytes     int64 // currently mapped device memory
}

// Stats returns a snapshot of the counters.
func (d *Dev) Stats() Stats {
	d.mu.Lock()
	alloced := d.alloced
	d.mu.Unlock()
	return Stats{
		BytesH2D:       d.bytesH2D.Load(),
		BytesD2H:       d.bytesD2H.Load(),
		Kernels:        d.kernels.Load(),
		Redeals:        d.redeals.Load(),
		AllocatedBytes: alloced,
	}
}

// StageBytes models a raw DMA transfer of n bytes with no map-table
// entry — the offload compiler's bulk staging path, where the data is
// modeled rather than materialized as a host object. It occupies the
// same transfer engine (and the same counters) as mapped transfers.
func (d *Dev) StageBytes(tc exec.TC, n int64, h2d bool) {
	if n <= 0 {
		return
	}
	d.Init(tc)
	tc.Contend(&d.dma, d.topo.TransferNS(n))
	if h2d {
		d.bytesH2D.Add(n)
		d.emitData(tc, opH2D, n)
	} else {
		d.bytesD2H.Add(n)
		d.emitData(tc, opD2H, n)
	}
}

func (d *Dev) emitData(tc exec.TC, op int64, bytes int64) {
	if d.sp.Enabled(ompt.DataOp) {
		d.sp.Emit(ompt.Event{Kind: ompt.DataOp, Thread: -1, CPU: int32(tc.CPU()),
			TimeNS: tc.Now(), Obj: uint64(d.id), Arg0: bytes, Arg1: op})
	}
}

// Data-op codes carried in ompt.DataOp's Arg1.
const (
	opAlloc = iota
	opH2D
	opD2H
	opDelete
)

func (d *Dev) failf(format string, args ...any) {
	panic(fmt.Sprintf("device %d: "+format, append([]any{d.id}, args...)...))
}
