package device

import (
	"errors"
	"math/bits"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/ompt"
)

// Kernel is one `target teams distribute` region: a loop of N
// iterations dealt in blocks across a league of teams, each team
// executing its blocks with lane-level worksharing on one compute unit.
type Kernel struct {
	Name string
	// Teams requests the league size (num_teams); 0 means one team per
	// live compute unit.
	Teams int
	// N is the distribute loop's trip count.
	N int
	// Chunk is the distribute block size (dist_schedule(static, Chunk));
	// 0 picks ceil(N / 4·teams) so every team sees several blocks — the
	// granularity fault re-dealing and load balance work at.
	Chunk int
	// IterNS is the modeled cost of one iteration on one SIMT lane; a
	// block of k iterations takes ceil(k/lanes) lane-steps.
	IterNS int64
	// BytesPerIter is the device-memory traffic one iteration streams;
	// a block's memory time is latency + bytes/per-CU-bandwidth, and the
	// block costs max(compute, memory) — the roofline.
	BytesPerIter int64
	// Uses lists the mapped host objects the body dereferences (via
	// Ptr); Launch validates them up front so a kernel touching an
	// unmapped object fails loudly before any block runs.
	Uses []any
	// Body executes one block for real on the launching host thread
	// (nil for pure-model kernels). Its return value feeds the league
	// reduction when Reduce is set, and is discarded otherwise.
	Body func(b Block) float64
	// Reduce, when set, combines block partials: per-team in block
	// execution order first, then across teams in team order — the
	// two-phase combine tree. Init is the identity value.
	Reduce func(a, b float64) float64
	Init   float64
}

// Block is one distribute block as the body sees it.
type Block struct {
	Team, CU, Lo, Hi int
}

// Result is a completed kernel launch.
type Result struct {
	// ElapsedNS is the modeled device time from launch to league
	// completion, including the launch overhead and reduction tree.
	ElapsedNS int64
	// Blocks is the number of distribute blocks executed; Redealt how
	// many of them were re-dealt off compute units that died mid-kernel.
	Blocks  int
	Redealt int
	// Reduced is the league reduction value (Init when Reduce is nil).
	Reduced float64
}

// ErrDeviceLost reports that every compute unit went offline before the
// kernel could finish; the caller degrades (falls back or reports)
// instead of hanging.
var ErrDeviceLost = errors.New("device: all compute units offline")

// team is one league member's context in the engine: the state-machine
// node of the device-side runtime. A team lives on one CU; its queued
// blocks execute in deal order; its partial accumulates block returns.
type team struct {
	id      int
	cu      int
	queue   []Block
	next    int // queue cursor: blocks before it are done
	partial float64
	dead    bool
}

// Launch runs a kernel to completion and returns its result. The engine
// advances per-CU virtual timelines block by block and charges the host
// thread only to block start times and the final completion, so the
// modeled elapsed is the max over concurrent CU timelines, kernels
// launched back-to-back queue on the persistent CU busy state, and a
// CU-offline fault firing mid-kernel (between blocks, on the DES clock)
// re-deals the dead CU's remaining blocks to surviving teams.
func (d *Dev) Launch(tc exec.TC, k Kernel) (Result, error) {
	d.Init(tc)
	for _, obj := range k.Uses {
		d.Ptr(obj) // fails loudly on a dangling device pointer
	}
	region := d.targetSeq.Add(1)
	if d.sp.Enabled(ompt.TargetBegin) {
		d.sp.Emit(ompt.Event{Kind: ompt.TargetBegin, Thread: -1, CPU: int32(tc.CPU()),
			TimeNS: tc.Now(), Region: region, Obj: uint64(d.id)})
	}
	t0 := tc.Now()
	tc.Charge(d.topo.KernelLaunchNS)

	res, err := d.runLeague(tc, k)

	res.ElapsedNS = tc.Now() - t0
	d.kernels.Add(1)
	if d.sp.Enabled(ompt.TargetEnd) {
		d.sp.Emit(ompt.Event{Kind: ompt.TargetEnd, Thread: -1, CPU: int32(tc.CPU()),
			TimeNS: tc.Now(), Region: region, Obj: uint64(d.id),
			Arg0: res.ElapsedNS, Arg1: int64(res.Blocks)})
	}
	return res, err
}

// runLeague is the engine proper: build the league, deal blocks, then
// advance the per-CU timelines in global time order.
func (d *Dev) runLeague(tc exec.TC, k Kernel) (Result, error) {
	var res Result
	res.Reduced = k.Init
	cus := d.onlineList()
	if len(cus) == 0 {
		return res, ErrDeviceLost
	}
	nteams := k.Teams
	if nteams <= 0 {
		nteams = len(cus)
	}
	chunk := k.Chunk
	if chunk <= 0 {
		chunk = (k.N + 4*nteams - 1) / (4 * nteams)
		if chunk < 1 {
			chunk = 1
		}
	}

	// Fork the league: team i on live CU i%len(cus), blocks dealt
	// round-robin in distribute order.
	teams := make([]*team, nteams)
	for i := range teams {
		teams[i] = &team{id: i, cu: cus[i%len(cus)]}
	}
	for lo, j := 0, 0; lo < k.N; lo, j = lo+chunk, j+1 {
		hi := lo + chunk
		if hi > k.N {
			hi = k.N
		}
		t := teams[j%nteams]
		t.queue = append(t.queue, Block{Team: t.id, CU: t.cu, Lo: lo, Hi: hi})
	}

	// The engine loop. cuTime is this kernel's view of each CU: the
	// persistent busy state now, growing as blocks are placed. The host
	// cursor (tc.Now()) advances to each block's start, so a fault
	// scheduled on the DES clock lands between blocks.
	cuTime := map[int]int64{}
	d.mu.Lock()
	for _, cu := range cus {
		t := tc.Now()
		if d.cuFree[cu] > t {
			t = d.cuFree[cu]
		}
		cuTime[cu] = t
	}
	d.mu.Unlock()

	pending := func(t *team) bool { return !t.dead && t.next < len(t.queue) }
	remaining := 0
	for _, t := range teams {
		remaining += len(t.queue)
	}
	for remaining > 0 {
		// Pick the earliest-free CU that still has a pending team; ties
		// break on CU id, then team id — total order, so the schedule is
		// a pure function of the inputs.
		var pick *team
		for _, t := range teams {
			if !pending(t) {
				continue
			}
			if pick == nil || cuTime[t.cu] < cuTime[pick.cu] ||
				(cuTime[t.cu] == cuTime[pick.cu] && t.id < pick.id) {
				pick = t
			}
		}
		if pick == nil {
			return res, ErrDeviceLost
		}
		start := cuTime[pick.cu]
		if now := tc.Now(); start > now {
			tc.Charge(start - now) // faults scheduled before start fire here
		}
		if dead, lost := d.sweepOffline(teams, cuTime, &res); lost {
			return res, ErrDeviceLost
		} else if dead {
			remaining = 0
			for _, t := range teams {
				if !t.dead {
					remaining += len(t.queue) - t.next
				}
			}
			continue
		}
		b := pick.queue[pick.next]
		pick.next++
		remaining--
		if k.Body != nil {
			p := k.Body(b)
			if k.Reduce != nil {
				pick.partial = k.Reduce(pick.partial, p)
			}
		}
		cuTime[pick.cu] = start + d.blockNS(k, b.Hi-b.Lo)
		res.Blocks++
	}

	// League completion: the kernel ends when the slowest CU drains.
	end := tc.Now()
	for _, t := range cuTime {
		if t > end {
			end = t
		}
	}
	if k.Reduce != nil {
		for _, t := range teams {
			res.Reduced = k.Reduce(res.Reduced, t.partial)
		}
		end += d.reduceNS(nteams)
	}
	if now := tc.Now(); end > now {
		tc.Charge(end - now)
	}
	d.mu.Lock()
	for cu, t := range cuTime {
		if t > d.cuFree[cu] {
			d.cuFree[cu] = t
		}
	}
	d.mu.Unlock()
	return res, nil
}

// sweepOffline migrates work off CUs that died since the last check:
// every dead team's remaining blocks are re-dealt round-robin to
// surviving teams (the distribute re-deal). Partials already combined
// on a dead team are kept — its completed blocks happened. Reports
// whether any team died, and whether no live team is left.
func (d *Dev) sweepOffline(teams []*team, cuTime map[int]int64, res *Result) (dead, lost bool) {
	d.mu.Lock()
	var died []*team
	for _, t := range teams {
		if !t.dead && d.offline[t.cu] {
			t.dead = true
			died = append(died, t)
		}
	}
	d.mu.Unlock()
	if len(died) == 0 {
		return false, false
	}
	var alive []*team
	for _, t := range teams {
		if !t.dead {
			alive = append(alive, t)
		}
	}
	for _, t := range died {
		delete(cuTime, t.cu)
		if len(alive) == 0 {
			continue
		}
		for i, b := range t.queue[t.next:] {
			to := alive[i%len(alive)]
			b.Team, b.CU = to.id, to.cu
			to.queue = append(to.queue, b)
			res.Redealt++
			d.redeals.Add(1)
		}
		t.next = len(t.queue)
	}
	return true, len(alive) == 0
}

// blockNS models one block on one CU: the device-side deal cost, then
// the larger of the SIMT compute time (lockstep lane-steps) and the
// device-memory streaming time — compute and memory overlap.
func (d *Dev) blockNS(k Kernel, iters int) int64 {
	lanes := d.topo.LanesPerCU
	steps := int64((iters + lanes - 1) / lanes)
	compute := steps * k.IterNS
	var mem int64
	if k.BytesPerIter > 0 {
		mem = d.topo.MemLatencyNS + int64(float64(k.BytesPerIter*int64(iters))/d.topo.MemBWperCU)
	}
	if mem > compute {
		compute = mem
	}
	return d.topo.BlockSchedNS + compute
}

// reduceNS is the two-phase league reduction: a log2(lanes) in-team
// lane tree, then a fanout-4 cross-team tree, one device-memory
// round-trip per level.
func (d *Dev) reduceNS(nteams int) int64 {
	laneLevels := bits.Len(uint(d.topo.LanesPerCU - 1))
	teamLevels := 0
	for n := nteams; n > 1; n = (n + 3) / 4 {
		teamLevels++
	}
	return int64(laneLevels+teamLevels) * d.topo.MemLatencyNS
}
