package rtk

import (
	"testing"

	"github.com/interweaving/komp/internal/exec"
)

func TestScrubRegionParallelSpeedup(t *testing.T) {
	k := bootKernel()
	p, err := NewPort(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc := p.Services()
	var t1, t16 int64
	_, err = k.Layer.Run(func(tc exec.TC) {
		r, err := k.KAlloc(tc, "scrubme", 256<<20, 0)
		if err != nil {
			t.Error(err)
			return
		}
		t1 = svc.ScrubRegion(tc, r, 1).VirtualNS
		t16 = svc.ScrubRegion(tc, r, 16).VirtualNS
		p.Close(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if speedup := float64(t1) / float64(t16); speedup < 8 {
		t.Fatalf("kernel scrub speedup at 16 threads = %.1f, want > 8", speedup)
	}
}

func TestVerifyZonesClean(t *testing.T) {
	k := bootKernel()
	p, err := NewPort(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = k.Layer.Run(func(tc exec.TC) {
		if _, err := k.KAlloc(tc, "live", 8<<20, 0); err != nil {
			t.Error(err)
		}
		if err := p.Services().VerifyZones(tc, 4); err != nil {
			t.Errorf("clean zones reported corrupt: %v", err)
		}
		p.Close(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChecksumRegionDeterministicAcrossThreads(t *testing.T) {
	k := bootKernel()
	p, err := NewPort(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var c1, c8 float64
	_, err = k.Layer.Run(func(tc exec.TC) {
		r, err := k.KAlloc(tc, "sum", 64<<20, 5)
		if err != nil {
			t.Error(err)
			return
		}
		c1 = p.Services().ChecksumRegion(tc, r, 1)
		c8 = p.Services().ChecksumRegion(tc, r, 8)
		p.Close(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c8 || c1 == 0 {
		t.Fatalf("checksums differ across team sizes: %v vs %v", c1, c8)
	}
}
