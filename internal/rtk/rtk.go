// Package rtk implements the runtime in kernel (RTK) path (§3): the
// OpenMP runtime and its dependencies linked directly into the Nautilus
// kernel. It assembles the pieces the paper describes — the adjusted
// compilation flags (§3.1), the pthread compatibility layer (§3.3), the
// kernel environment-variable and sysconf dependencies (§3.4), hardware
// TLS on %fs, and lazy FPU save/restore — and converts the application's
// main() into a kernel shell command.
package rtk

import (
	"fmt"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/nautilus"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/ompt"
	"github.com/interweaving/komp/internal/pthread"
)

// BuildConfig captures the compilation adjustments of §3.1: kernel code
// must use the kernel memory model, must not use the x64 red zone
// (interrupts run on the current thread's stack), and is statically
// linked into the kernel image by the kernel's link process.
type BuildConfig struct {
	// MemModel must be "kernel" (-mcmodel=kernel).
	MemModel string
	// RedZone must be false (-mno-red-zone).
	RedZone bool
	// StaticLib selects the separate-static-library integration path
	// (§3.1 option 2) as opposed to building inside the kernel tree.
	StaticLib bool
	// Flags lists the resulting compiler flags, for display.
	Flags []string
}

// DefaultBuild returns the RTK build configuration.
func DefaultBuild() BuildConfig {
	return BuildConfig{
		MemModel:  "kernel",
		RedZone:   false,
		StaticLib: true,
		Flags:     []string{"-mcmodel=kernel", "-mno-red-zone", "-static", "-fno-pie"},
	}
}

// Validate rejects configurations that would crash in kernel context.
func (b BuildConfig) Validate() error {
	if b.MemModel != "kernel" {
		return fmt.Errorf("rtk: memory model %q; kernel linkage requires -mcmodel=kernel (§3.1)", b.MemModel)
	}
	if b.RedZone {
		return fmt.Errorf("rtk: red zone enabled; an interrupt on the thread stack would clobber it (§3.1)")
	}
	return nil
}

// Options configures the port.
type Options struct {
	// PthreadImpl selects the compatibility layer variant: PTE (the
	// portable port, Fig. 2a) or Custom (the Nautilus-customized layer,
	// Fig. 2b). Defaults to Custom.
	PthreadImpl pthread.Impl
	// MaxThreads caps the OpenMP pool (default: all CPUs).
	MaxThreads int
	// Build is validated at port time.
	Build *BuildConfig
	// Spine, if non-nil, is handed to the in-kernel OpenMP runtime so
	// the ported libomp emits the same instrumentation stream as the
	// user-level one.
	Spine *ompt.Spine
}

// Port is libomp ported into the kernel: an OpenMP runtime whose
// execution layer, threading, TLS, environment and sysconf are all
// kernel facilities.
type Port struct {
	K  *nautilus.Kernel
	RT *omp.Runtime

	// TLSTemplate is the application's TLS image, cloned per thread.
	TLSTemplate *nautilus.TLSImage
}

// NewPort wires the OpenMP runtime into a booted kernel.
func NewPort(k *nautilus.Kernel, opts Options) (*Port, error) {
	build := DefaultBuild()
	if opts.Build != nil {
		build = *opts.Build
	}
	if err := build.Validate(); err != nil {
		return nil, err
	}
	impl := opts.PthreadImpl
	if impl == pthread.NPTL {
		impl = pthread.Custom
	}
	oopts := omp.Options{
		MaxThreads:  opts.MaxThreads,
		Bind:        true,
		PthreadImpl: impl,
		Spine:       opts.Spine,
	}
	// The in-kernel libomp reads kernel environment variables (§3.4).
	if err := oopts.Env(k.Getenv); err != nil {
		return nil, err
	}
	// Clamp OMP_NUM_THREADS to the machine via the kernel's sysconf.
	if n, err := k.Sysconf(nautilus.ScNProcessorsOnln); err == nil {
		if oopts.DefaultThreads > int(n) {
			oopts.DefaultThreads = int(n)
		}
	}
	// Kernel/application integration needs SSE state managed across
	// interrupts (§3.4).
	k.LazyFPU = true
	p := &Port{
		K:           k,
		RT:          omp.New(k.Layer, oopts),
		TLSTemplate: &nautilus.TLSImage{Data: make([]byte, 64), BSSSize: 64},
	}
	return p, nil
}

// Main is an RTK application entry: what the original main() becomes.
type Main func(tc exec.TC, port *Port, args []string) error

// RegisterMain converts an application main() into a Nautilus shell
// command (§3.1: "converting the application's main() into a Nautilus
// shell command"). The wrapper installs the thread's TLS block before
// entering the application.
func (p *Port) RegisterMain(name string, m Main) {
	p.K.RegisterCommand(name, func(tc exec.TC, k *nautilus.Kernel, args []string) error {
		k.SetTLS(tc, p.TLSTemplate)
		return m(tc, p, args)
	})
}

// Parallel forwards to the in-kernel OpenMP runtime.
func (p *Port) Parallel(tc exec.TC, n int, fn func(*omp.Worker)) {
	p.RT.Parallel(tc, n, fn)
}

// Close shuts the runtime's pool down.
func (p *Port) Close(tc exec.TC) { p.RT.Close(tc) }
