package rtk

import (
	"strings"
	"sync/atomic"
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/nautilus"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/pthread"
)

func bootKernel() *nautilus.Kernel {
	return nautilus.Boot(nautilus.Config{Machine: machine.PHI(), Seed: 1,
		Costs: exec.Costs{ThreadSpawnNS: 1500, FutexWaitEntryNS: 60, FutexWakeEntryNS: 60,
			FutexWakeLatencyNS: 300, AtomicRMWNS: 20, CacheLineXferNS: 40, MallocNS: 80}})
}

func TestBuildConfigValidation(t *testing.T) {
	if err := DefaultBuild().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultBuild()
	bad.RedZone = true
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "red zone") {
		t.Fatalf("red zone must be rejected: %v", err)
	}
	bad2 := DefaultBuild()
	bad2.MemModel = "small"
	if err := bad2.Validate(); err == nil {
		t.Fatal("small memory model must be rejected")
	}
}

func TestPortReadsKernelEnv(t *testing.T) {
	k := bootKernel()
	k.Setenv("OMP_NUM_THREADS", "16")
	k.Setenv("OMP_SCHEDULE", "dynamic,8")
	p, err := NewPort(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.RT.DefaultThreads() != 16 {
		t.Fatalf("threads = %d, want 16 (from kernel env)", p.RT.DefaultThreads())
	}
	if s, c := p.RT.DefaultSchedule(); s != omp.Dynamic || c != 8 {
		t.Fatalf("schedule = %v,%d", s, c)
	}
	if !k.LazyFPU {
		t.Fatal("RTK port must enable lazy FPU (§3.4)")
	}
}

func TestPortClampsThreadsToSysconf(t *testing.T) {
	k := bootKernel()
	k.Setenv("OMP_NUM_THREADS", "100000")
	p, err := NewPort(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.RT.DefaultThreads() > 64 {
		t.Fatalf("threads = %d, must clamp to the 64 CPUs sysconf reports", p.RT.DefaultThreads())
	}
}

func TestMainBecomesShellCommand(t *testing.T) {
	k := bootKernel()
	p, err := NewPort(k, Options{PthreadImpl: pthread.Custom})
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	p.RegisterMain("ep.C", func(tc exec.TC, port *Port, args []string) error {
		port.Parallel(tc, 8, func(w *omp.Worker) { ran.Add(1) })
		return nil
	})
	_, err = k.Layer.Run(func(tc exec.TC) {
		if err := k.RunCommand(tc, "ep.C -x"); err != nil {
			t.Error(err)
		}
		p.Close(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 8 {
		t.Fatalf("parallel region ran %d bodies", ran.Load())
	}
	if got := k.Commands(); len(got) != 1 || got[0] != "ep.C" {
		t.Fatalf("commands = %v", got)
	}
}

func TestShellWrapperInstallsTLS(t *testing.T) {
	k := bootKernel()
	p, err := NewPort(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p.RegisterMain("app", func(tc exec.TC, port *Port, args []string) error {
		if _, err := k.TLSLoad(tc, 0); err != nil {
			t.Error("TLS not installed by the command wrapper")
		}
		return nil
	})
	if _, err := k.Layer.Run(func(tc exec.TC) {
		if err := k.RunCommand(tc, "app"); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadBuild(t *testing.T) {
	k := bootKernel()
	bad := DefaultBuild()
	bad.RedZone = true
	if _, err := NewPort(k, Options{Build: &bad}); err == nil {
		t.Fatal("port must reject red-zone builds")
	}
}

func TestOpenMPOnKernelFullCorrectness(t *testing.T) {
	// A representative OpenMP workload running fully in-kernel: loops,
	// reduction, critical, tasks.
	k := bootKernel()
	k.Setenv("OMP_NUM_THREADS", "8")
	p, err := NewPort(k, Options{PthreadImpl: pthread.PTE})
	if err != nil {
		t.Fatal(err)
	}
	var dot float64
	var tasks atomic.Int64
	const n = 4096
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = float64(i % 7)
		b[i] = float64(i % 5)
	}
	var want float64
	for i := range a {
		want += a[i] * b[i]
	}
	_, err = k.Layer.Run(func(tc exec.TC) {
		p.Parallel(tc, 0, func(w *omp.Worker) {
			local := 0.0
			w.ForEach(0, n, omp.ForOpt{Sched: omp.Guided, Chunk: 8}, func(i int) {
				local += a[i] * b[i]
			})
			got := w.Reduce(omp.ReduceSum, local)
			w.Master(func() { dot = got })
			w.Single(false, func() {
				for j := 0; j < 32; j++ {
					w.Task(func(w *omp.Worker) { tasks.Add(1) })
				}
			})
			w.Barrier()
		})
		p.Close(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if dot != want {
		t.Fatalf("dot = %v, want %v", dot, want)
	}
	if tasks.Load() != 32 {
		t.Fatalf("tasks = %d", tasks.Load())
	}
}
