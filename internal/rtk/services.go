package rtk

import (
	"fmt"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/memsim"
	"github.com/interweaving/komp/internal/omp"
)

// This file implements the opportunity the paper's introduction points
// out beyond running applications: "enabling OpenMP within the kernel,
// specifically the RTK design point, also presents the opportunity to
// write traditional kernel-level code using OpenMP. This may become
// useful as general purpose kernels need to deal with increasingly
// larger scale machines." (§1)
//
// KernelServices are ordinary kernel maintenance jobs — page scrubbing,
// memory-zone verification, checksumming — written against the in-kernel
// OpenMP runtime exactly as application code would be.

// scrubNSPerKB is the per-kilobyte cost of zeroing memory.
const scrubNSPerKB = 28

// checksumNSPerKB is the per-kilobyte cost of summing memory.
const checksumNSPerKB = 11

// Services exposes OpenMP-parallel kernel maintenance operations.
type Services struct {
	port *Port
}

// Services returns the kernel-service interface of a port.
func (p *Port) Services() *Services { return &Services{port: p} }

// ScrubResult reports a parallel scrub pass.
type ScrubResult struct {
	Bytes   int64
	Threads int
	// VirtualNS is the elapsed virtual time of the pass.
	VirtualNS int64
}

// scrubBlock is the work-distribution granule (pages can be 1 GiB under
// identity mapping, far too coarse to parallelize over).
const scrubBlock = 2 << 20

// ScrubRegion zeroes a memory region with an OpenMP parallel loop over
// 2 MiB blocks — the kind of boot-time/idle-time work a large machine
// wants parallelized in-kernel.
func (s *Services) ScrubRegion(tc exec.TC, r *memsim.Region, threads int) ScrubResult {
	blocks := int((r.Bytes + scrubBlock - 1) / scrubBlock)
	t0 := tc.Now()
	s.port.RT.Parallel(tc, threads, func(w *omp.Worker) {
		w.For(0, blocks, omp.ForOpt{Sched: omp.Static}, func(lo, hi int) {
			w.TC().Charge(int64(hi-lo) * (scrubBlock / 1024) * scrubNSPerKB)
		})
	})
	return ScrubResult{Bytes: r.Bytes, Threads: threads, VirtualNS: tc.Now() - t0}
}

// VerifyZones sums every zone allocator's free-space accounting in
// parallel and cross-checks it against the zone sizes — a consistency
// pass over kernel memory metadata.
func (s *Services) VerifyZones(tc exec.TC, threads int) error {
	k := s.port.K
	zones := make([]int, 0, len(k.Buddies))
	for z := range k.Buddies {
		zones = append(zones, z)
	}
	var bad exec.Word
	s.port.RT.Parallel(tc, threads, func(w *omp.Worker) {
		w.ForEach(0, len(zones), omp.ForOpt{Sched: omp.Dynamic, Chunk: 1}, func(i int) {
			b := k.Buddies[zones[i]]
			w.TC().Charge(2_000) // walk the free lists
			if b.FreeBytes()+b.BytesLive != b.Size() {
				bad.Store(uint32(zones[i]) + 1)
			}
		})
	})
	if z := bad.Load(); z != 0 {
		return fmt.Errorf("rtk: zone %d accounting corrupt", z-1)
	}
	return nil
}

// ChecksumRegion computes a parallel checksum over a region with a
// reduction — the OpenMP idiom applied to kernel integrity checking.
func (s *Services) ChecksumRegion(tc exec.TC, r *memsim.Region, threads int) float64 {
	blocks := int((r.Bytes + scrubBlock - 1) / scrubBlock)
	var sum float64
	s.port.RT.Parallel(tc, threads, func(w *omp.Worker) {
		local := 0.0
		w.For(0, blocks, omp.ForOpt{Sched: omp.Static, NoWait: true}, func(lo, hi int) {
			w.TC().Charge(int64(hi-lo) * (scrubBlock / 1024) * checksumNSPerKB)
			for i := lo; i < hi; i++ {
				page := int(int64(i) * scrubBlock / r.PageSize)
				if page >= r.Pages() {
					page = r.Pages() - 1
				}
				local += float64(r.ZoneOfPage(page) + 1) // stand-in for block contents
			}
		})
		total := w.Reduce(omp.ReduceSum, local)
		w.Master(func() { sum = total })
	})
	return sum
}
