package mpi

import (
	"math"
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
)

func testCluster(t *testing.T, nodes int, userLevel bool) *Cluster {
	t.Helper()
	c, err := New(Config{
		Machine:   machine.PHI(),
		Seed:      3,
		Nodes:     nodes,
		UserLevel: userLevel,
		KernelCosts: exec.Costs{ThreadSpawnNS: 2000, FutexWaitEntryNS: 80,
			FutexWakeEntryNS: 80, FutexWakeLatencyNS: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterConstruction(t *testing.T) {
	c := testCluster(t, 4, false)
	if len(c.Nodes) != 4 || len(c.Nodes[0].CPUs) != 16 {
		t.Fatalf("split wrong: %d nodes x %d cpus", len(c.Nodes), len(c.Nodes[0].CPUs))
	}
	if c.Nodes[3].CPUs[0] != 48 {
		t.Fatal("node CPU ranges wrong")
	}
	if _, err := New(Config{Machine: machine.PHI(), Nodes: 3}); err == nil {
		t.Fatal("3 nodes cannot split 64 CPUs evenly")
	}
}

func TestPingPong(t *testing.T) {
	c := testCluster(t, 2, false)
	var rtt int64
	_, err := c.Run(func(co *Comm) {
		switch co.Rank() {
		case 0:
			t0 := co.tc.Now()
			co.Send(1, 7, 8, 42)
			f := co.Recv(1, 8)
			rtt = co.tc.Now() - t0
			if f.Payload != 43 {
				t.Errorf("pong payload %v", f.Payload)
			}
		case 1:
			f := co.Recv(0, 7)
			co.Send(0, 8, 8, f.Payload+1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// RTT must include two wire latencies (2 x 1200ns) plus sw paths.
	if rtt < 2400 {
		t.Fatalf("rtt = %d ns, below the physical wire time", rtt)
	}
	if rtt > 50_000 {
		t.Fatalf("rtt = %d ns, absurd", rtt)
	}
}

func TestTagAndSourceMatching(t *testing.T) {
	c := testCluster(t, 2, false)
	_, err := c.Run(func(co *Comm) {
		if co.Rank() == 1 {
			co.Send(0, 5, 8, 500) // tag 5 sent first
			co.Send(0, 3, 8, 300)
			return
		}
		// Receive in the opposite order of arrival: matching, not FIFO.
		a := co.Recv(1, 3)
		b := co.Recv(1, 5)
		if a.Payload != 300 || b.Payload != 500 {
			t.Errorf("tag matching broken: %v %v", a.Payload, b.Payload)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreducePowerOfTwo(t *testing.T) {
	c := testCluster(t, 4, false)
	sums := make([]float64, 4)
	_, err := c.Run(func(co *Comm) {
		v := float64(co.Rank() + 1)
		sums[co.Rank()] = co.Allreduce(v, 8, func(a, b float64) float64 { return a + b }, 100)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range sums {
		if s != 10 {
			t.Fatalf("rank %d allreduce = %v, want 10", r, s)
		}
	}
}

func TestAllreduceMax(t *testing.T) {
	c := testCluster(t, 8, false)
	vals := make([]float64, 8)
	_, err := c.Run(func(co *Comm) {
		v := float64((co.Rank() * 37) % 11)
		vals[co.Rank()] = co.Allreduce(v, 8, math.Max, 50)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range vals {
		if v != 9 { // max of (37r mod 11) over r=0..7 is 9
			t.Fatalf("rank %d max = %v", r, v)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	c := testCluster(t, 4, false)
	var slowDone, fastResumed int64
	_, err := c.Run(func(co *Comm) {
		if co.Rank() == 0 {
			co.tc.Charge(1_000_000) // the straggler
			slowDone = co.tc.Now()
		}
		co.Barrier(10)
		if co.Rank() == 3 {
			fastResumed = co.tc.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fastResumed < slowDone {
		t.Fatalf("rank 3 left the barrier at %d before the straggler arrived at %d", fastResumed, slowDone)
	}
}

// The §7 claim in miniature: the in-kernel HAL path beats a user-level
// MPI that pays a syscall per frame, and the gap grows with message rate.
func TestInKernelDataPlaneBeatsUserLevel(t *testing.T) {
	run := func(user bool) int64 {
		c := testCluster(t, 2, user)
		elapsed, err := c.Run(func(co *Comm) {
			const msgs = 300
			if co.Rank() == 0 {
				for i := 0; i < msgs; i++ {
					co.Send(1, i, 64, float64(i))
					co.Recv(1, i)
				}
			} else {
				for i := 0; i < msgs; i++ {
					f := co.Recv(0, i)
					co.Send(0, i, 64, f.Payload)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	kernel, user := run(false), run(true)
	if kernel >= user {
		t.Fatalf("in-kernel data plane (%d) must beat user-level (%d)", kernel, user)
	}
	// 600 frames x ~1.6us extra syscall tax each way.
	if user-kernel < 300_000 {
		t.Fatalf("syscall tax too small: %d", user-kernel)
	}
}
