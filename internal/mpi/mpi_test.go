package mpi

import (
	"math"
	"strings"
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
)

func testConfig(nodes int, userLevel bool) Config {
	return Config{
		Machine:   machine.PHI(),
		Seed:      3,
		Nodes:     nodes,
		UserLevel: userLevel,
		KernelCosts: exec.Costs{ThreadSpawnNS: 2000, FutexWaitEntryNS: 80,
			FutexWakeEntryNS: 80, FutexWakeLatencyNS: 300},
	}
}

func testCluster(t *testing.T, nodes int, userLevel bool) *Cluster {
	t.Helper()
	c, err := New(testConfig(nodes, userLevel))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// mustRecv unwraps Recv in tests that run on a loss-free link.
func mustRecv(t *testing.T, co *Comm, src, tag int) Frame {
	t.Helper()
	f, err := co.Recv(src, tag)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestClusterConstruction(t *testing.T) {
	c := testCluster(t, 4, false)
	if len(c.Nodes) != 4 || len(c.Nodes[0].CPUs) != 16 {
		t.Fatalf("split wrong: %d nodes x %d cpus", len(c.Nodes), len(c.Nodes[0].CPUs))
	}
	if c.Nodes[3].CPUs[0] != 48 {
		t.Fatal("node CPU ranges wrong")
	}
	if _, err := New(Config{Machine: machine.PHI(), Nodes: 3}); err == nil {
		t.Fatal("3 nodes cannot split 64 CPUs evenly")
	}
}

func TestPingPong(t *testing.T) {
	c := testCluster(t, 2, false)
	var rtt int64
	_, err := c.Run(func(co *Comm) error {
		switch co.Rank() {
		case 0:
			t0 := co.tc.Now()
			co.Send(1, 7, 8, 42)
			f := mustRecv(t, co, 1, 8)
			rtt = co.tc.Now() - t0
			if f.Payload != 43 {
				t.Errorf("pong payload %v", f.Payload)
			}
		case 1:
			f := mustRecv(t, co, 0, 7)
			co.Send(0, 8, 8, f.Payload+1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// RTT must include two wire latencies (2 x 1200ns) plus sw paths.
	if rtt < 2400 {
		t.Fatalf("rtt = %d ns, below the physical wire time", rtt)
	}
	if rtt > 50_000 {
		t.Fatalf("rtt = %d ns, absurd", rtt)
	}
}

func TestTagAndSourceMatching(t *testing.T) {
	c := testCluster(t, 2, false)
	_, err := c.Run(func(co *Comm) error {
		if co.Rank() == 1 {
			co.Send(0, 5, 8, 500) // tag 5 sent first
			co.Send(0, 3, 8, 300)
			return nil
		}
		// Receive in the opposite order of arrival: matching, not FIFO.
		a := mustRecv(t, co, 1, 3)
		b := mustRecv(t, co, 1, 5)
		if a.Payload != 300 || b.Payload != 500 {
			t.Errorf("tag matching broken: %v %v", a.Payload, b.Payload)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreducePowerOfTwo(t *testing.T) {
	c := testCluster(t, 4, false)
	sums := make([]float64, 4)
	_, err := c.Run(func(co *Comm) error {
		v := float64(co.Rank() + 1)
		s, err := co.Allreduce(v, 8, func(a, b float64) float64 { return a + b }, 100)
		sums[co.Rank()] = s
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range sums {
		if s != 10 {
			t.Fatalf("rank %d allreduce = %v, want 10", r, s)
		}
	}
}

func TestAllreduceMax(t *testing.T) {
	c := testCluster(t, 8, false)
	vals := make([]float64, 8)
	_, err := c.Run(func(co *Comm) error {
		v := float64((co.Rank() * 37) % 11)
		m, err := co.Allreduce(v, 8, math.Max, 50)
		vals[co.Rank()] = m
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range vals {
		if v != 9 { // max of (37r mod 11) over r=0..7 is 9
			t.Fatalf("rank %d max = %v", r, v)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	c := testCluster(t, 4, false)
	var slowDone, fastResumed int64
	_, err := c.Run(func(co *Comm) error {
		if co.Rank() == 0 {
			co.tc.Charge(1_000_000) // the straggler
			slowDone = co.tc.Now()
		}
		if err := co.Barrier(10); err != nil {
			return err
		}
		if co.Rank() == 3 {
			fastResumed = co.tc.Now()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fastResumed < slowDone {
		t.Fatalf("rank 3 left the barrier at %d before the straggler arrived at %d", fastResumed, slowDone)
	}
}

// The §7 claim in miniature: the in-kernel HAL path beats a user-level
// MPI that pays a syscall per frame, and the gap grows with message rate.
func TestInKernelDataPlaneBeatsUserLevel(t *testing.T) {
	run := func(user bool) int64 {
		c := testCluster(t, 2, user)
		elapsed, err := c.Run(func(co *Comm) error {
			const msgs = 300
			if co.Rank() == 0 {
				for i := 0; i < msgs; i++ {
					co.Send(1, i, 64, float64(i))
					mustRecv(t, co, 1, i)
				}
			} else {
				for i := 0; i < msgs; i++ {
					f := mustRecv(t, co, 0, i)
					co.Send(0, i, 64, f.Payload)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	kernel, user := run(false), run(true)
	if kernel >= user {
		t.Fatalf("in-kernel data plane (%d) must beat user-level (%d)", kernel, user)
	}
	// 600 frames x ~1.6us extra syscall tax each way.
	if user-kernel < 300_000 {
		t.Fatalf("syscall tax too small: %d", user-kernel)
	}
}

// --- Edge cases and the lossy-link transport ---

func TestSendToSelf(t *testing.T) {
	c := testCluster(t, 2, false)
	_, err := c.Run(func(co *Comm) error {
		if co.Rank() != 0 {
			return nil
		}
		if err := co.Send(0, 9, 8, 3.14); err != nil {
			return err
		}
		f, err := co.Recv(0, 9)
		if err != nil {
			return err
		}
		if f.Payload != 3.14 || f.Src != 0 {
			t.Errorf("self-recv = %+v", f)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestZeroByteFrames(t *testing.T) {
	c := testCluster(t, 2, false)
	_, err := c.Run(func(co *Comm) error {
		if co.Rank() == 0 {
			return co.Send(1, 1, 0, 0)
		}
		f, err := co.Recv(0, 1)
		if err != nil {
			return err
		}
		if f.Bytes != 0 {
			t.Errorf("bytes = %d", f.Bytes)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// everyNth drops one frame in every n deterministically.
func everyNth(n int) func() bool {
	i := 0
	return func() bool {
		i++
		return i%n == 0
	}
}

func TestLossyLinkRetransmits(t *testing.T) {
	cfg := testConfig(2, false)
	cfg.Drop = everyNth(4) // 25% loss
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 50
	got := make([]bool, msgs)
	_, err = c.Run(func(co *Comm) error {
		if co.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := co.Send(1, i, 64, float64(i)); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			f, err := co.Recv(0, i)
			if err != nil {
				return err
			}
			if f.Payload != float64(i) {
				t.Errorf("msg %d payload %v", i, f.Payload)
			}
			got[i] = true
		}
		return nil
	})
	if err != nil {
		t.Fatalf("25%% loss not recovered: %v", err)
	}
	for i, ok := range got {
		if !ok {
			t.Fatalf("message %d never delivered", i)
		}
	}
	if c.Stats.Retx == 0 || c.Stats.Dropped == 0 {
		t.Fatalf("stats show no recovery: %+v", c.Stats)
	}
}

func TestMismatchedTagsUnderRetransmission(t *testing.T) {
	// Drops force dup retransmissions; tag matching must still pick
	// messages by tag, never deliver a frame twice, and never reorder a
	// tag's payload.
	cfg := testConfig(2, false)
	cfg.Drop = everyNth(3)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(func(co *Comm) error {
		if co.Rank() == 0 {
			for i := 0; i < 20; i++ {
				if err := co.Send(1, 100+i, 32, float64(i)); err != nil {
					return err
				}
			}
			return nil
		}
		// Receive in reverse tag order: every message must be matched by
		// tag even though retransmissions shuffle arrival order.
		for i := 19; i >= 0; i-- {
			f, err := co.Recv(0, 100+i)
			if err != nil {
				return err
			}
			if f.Payload != float64(i) {
				t.Errorf("tag %d carried %v, want %d", 100+i, f.Payload, i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.Dups > 0 && c.Stats.DataSent != 20 {
		t.Fatalf("dup discarding broke accounting: %+v", c.Stats)
	}
}

func TestDropEverythingExhaustsRetryBudget(t *testing.T) {
	cfg := testConfig(2, false)
	cfg.Drop = func() bool { return true } // rate 1.0
	cfg.Retx = RetxPolicy{TimeoutNS: 5_000, Backoff: 2, MaxRetries: 3}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(func(co *Comm) error {
		if co.Rank() == 0 {
			if err := co.Send(1, 1, 64, 1); err != nil {
				return err
			}
			_, err := co.Recv(1, 2)
			return err
		}
		_, err := co.Recv(0, 1)
		return err
	})
	if err == nil {
		t.Fatal("expected a transport error on a drop-rate-1.0 link")
	}
	if !strings.Contains(err.Error(), "link failed") {
		t.Fatalf("error = %v, want a clean link-failure report", err)
	}
	if c.Stats.Retx != 3 {
		t.Fatalf("retx = %d, want exactly the budget (3)", c.Stats.Retx)
	}
	if c.Err() == nil {
		t.Fatal("cluster error not latched")
	}
}

func TestCorruptFramesAreRetransmitted(t *testing.T) {
	cfg := testConfig(2, false)
	cfg.Corrupt = everyNth(5)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	_, err = c.Run(func(co *Comm) error {
		if co.Rank() == 0 {
			for i := 0; i < 30; i++ {
				if err := co.Send(1, 5, 64, 1); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 30; i++ {
			f, err := co.Recv(0, 5)
			if err != nil {
				return err
			}
			sum += f.Payload
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 30 {
		t.Fatalf("sum = %v, want 30 (each message exactly once)", sum)
	}
	if c.Stats.Corrupted == 0 {
		t.Fatal("no corruption recorded despite the hook")
	}
}

func TestAllreduceUnderLoss(t *testing.T) {
	cfg := testConfig(4, false)
	cfg.Drop = everyNth(20) // 5% loss
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]float64, 4)
	elapsed, err := c.Run(func(co *Comm) error {
		v := float64(co.Rank() + 1)
		s, err := co.Allreduce(v, 1024, func(a, b float64) float64 { return a + b }, 100)
		sums[co.Rank()] = s
		return err
	})
	if err != nil {
		t.Fatalf("allreduce under 5%% loss: %v", err)
	}
	for r, s := range sums {
		if s != 10 {
			t.Fatalf("rank %d sum = %v, want 10", r, s)
		}
	}
	if elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestReliableModeDeterministic(t *testing.T) {
	run := func() (int64, LinkStats) {
		cfg := testConfig(2, false)
		cfg.Drop = everyNth(4)
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		elapsed, err := c.Run(func(co *Comm) error {
			if co.Rank() == 0 {
				for i := 0; i < 40; i++ {
					if err := co.Send(1, i, 128, float64(i)); err != nil {
						return err
					}
				}
				return nil
			}
			for i := 0; i < 40; i++ {
				if _, err := co.Recv(0, i); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed, c.Stats
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 || s1 != s2 {
		t.Fatalf("non-deterministic lossy run: %d/%+v vs %d/%+v", e1, s1, e2, s2)
	}
}
