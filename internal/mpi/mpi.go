// Package mpi sketches the multi-node direction of §7: "a 'pure'
// in-kernel MPI implementation would proceed along the lines of RTK or
// PIK. MPI implementations already have layered designs in which
// NIC-specific code lies below a HAL. An in-kernel implementation or
// port would implement the HAL directly on top of kernel drivers."
//
// The package models a small cluster inside one simulator: each node is
// a CPU partition running its own Nautilus kernel; a simulated NIC
// carries frames between nodes with latency + bandwidth costs; a HAL
// sits between the communicator and the NIC; and the communicator
// implements the MPI data-plane primitives (Send/Recv with tag matching,
// Barrier, Allreduce via recursive doubling). The in-kernel advantage is
// mechanical: the kernel HAL path has no per-message syscall crossing.
//
// The link is optionally lossy: with Drop/Corrupt fault hooks installed
// (or Reliable set), the transport adds per-pair sequence numbers,
// receiver-side dedup + acks, and sender-side retransmission with
// exponential backoff under a retry budget. A fault-free reliable run
// differs from the fast path only by the ack traffic; exhausting the
// retry budget fails the link cleanly — every blocked Recv returns the
// transport error instead of hanging.
package mpi

import (
	"fmt"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/nautilus"
	"github.com/interweaving/komp/internal/sim"
)

// Frame is what the HAL moves: opaque payload plus addressing. Seq and
// IsAck belong to the reliable transport; both are zero on the fast path.
type Frame struct {
	Src, Dst int
	Tag      int
	Bytes    int64
	Payload  float64

	Seq   uint64 // per (src,dst) sequence number (reliable mode)
	IsAck bool   // transport ack for Seq (never user-visible)
}

// HAL is the hardware abstraction the communicator sits on. Tx charges
// the sender-side path and schedules delivery.
type HAL interface {
	Tx(tc exec.TC, f Frame)
}

// Link models the wire: per-frame latency plus serialization.
type Link struct {
	LatencyNS  int64
	BytesPerUS int64 // bandwidth
}

// frameTime returns the wire time of a frame.
func (l Link) frameTime(bytes int64) int64 {
	t := l.LatencyNS
	if l.BytesPerUS > 0 {
		t += bytes * 1000 / l.BytesPerUS
	}
	return t
}

// RetxPolicy bounds the reliable transport's recovery: the first
// retransmit fires after TimeoutNS, each subsequent one backs off by
// Backoff, and after MaxRetries unacked attempts the link is declared
// failed.
type RetxPolicy struct {
	TimeoutNS  int64
	Backoff    float64
	MaxRetries int
}

// DefaultRetx is the retransmission policy used when none is given:
// 20 µs initial timeout (a dozen wire round trips), doubling per retry,
// eight retries before declaring the link dead.
var DefaultRetx = RetxPolicy{TimeoutNS: 20_000, Backoff: 2, MaxRetries: 8}

// LinkStats counts transport-level events on the cluster.
type LinkStats struct {
	DataSent  int64 // first transmissions of data frames
	Retx      int64 // retransmitted data frames
	AcksSent  int64
	Dropped   int64 // frames lost on the wire (fault hook)
	Corrupted int64 // frames discarded by the receiver checksum
	Dups      int64 // duplicate data frames discarded by dedup
}

// Cluster is a simulated multi-node configuration sharing one simulator.
type Cluster struct {
	Sim   *sim.Sim
	Nodes []*Node
	Link  Link
	// TxPathNS is the per-frame sender-side software path below MPI: the
	// in-kernel HAL talks to the driver directly; a user-level MPI pays
	// an additional syscall crossing per frame (§7's point).
	TxPathNS int64

	// Reliable transport state (nil hooks + false => fast path).
	reliable bool
	drop     func() bool
	corrupt  func() bool
	retx     RetxPolicy

	Stats LinkStats

	err error // first transport failure; poisons every communicator
}

// Node is one cluster member: a CPU partition with its own kernel and
// receive queue.
type Node struct {
	Rank   int
	CPUs   []int
	Kernel *nautilus.Kernel

	cluster *Cluster
	rxq     *sim.WaitQueue
	inbox   []Frame

	nextSeq   map[int]uint64            // per-destination next sequence number
	delivered map[int]map[uint64]bool   // per-source seqs already delivered
	pending   map[pendKey]*pendingFrame // unacked data frames by (dst, seq)
}

type pendKey struct {
	dst int
	seq uint64
}

type pendingFrame struct {
	frame  Frame
	tries  int
	acked  bool
	cancel func()
}

// Config builds a cluster.
type Config struct {
	Machine     *machine.Machine
	Seed        int64
	Nodes       int
	KernelCosts exec.Costs
	Link        Link
	// UserLevel models a user-space MPI (per-frame syscall tax) instead
	// of the in-kernel HAL.
	UserLevel bool

	// Drop and Corrupt, if set, are rolled once per frame put on the
	// wire (acks included): Drop loses the frame in flight, Corrupt
	// delivers it but the receiver's checksum discards it. Installing
	// either enables the reliable transport.
	Drop    func() bool
	Corrupt func() bool
	// Reliable forces seq/ack/retransmit transport even with no fault
	// hooks (to measure the ack overhead itself).
	Reliable bool
	// Retx overrides DefaultRetx when non-zero.
	Retx RetxPolicy
}

// New builds the cluster: the machine's CPUs split evenly into nodes,
// each running a Nautilus kernel on the shared simulator.
func New(cfg Config) (*Cluster, error) {
	m := cfg.Machine
	if cfg.Nodes < 2 || m.NumCPUs()%cfg.Nodes != 0 {
		return nil, fmt.Errorf("mpi: %d nodes must evenly split %d CPUs", cfg.Nodes, m.NumCPUs())
	}
	per := m.NumCPUs() / cfg.Nodes
	s := sim.New(m.NumCPUs(), cfg.Seed)
	c := &Cluster{
		Sim: s, Link: cfg.Link, TxPathNS: 400,
		reliable: cfg.Reliable || cfg.Drop != nil || cfg.Corrupt != nil,
		drop:     cfg.Drop, corrupt: cfg.Corrupt, retx: cfg.Retx,
	}
	if c.retx.TimeoutNS <= 0 {
		c.retx.TimeoutNS = DefaultRetx.TimeoutNS
	}
	if c.retx.Backoff < 1 {
		c.retx.Backoff = DefaultRetx.Backoff
	}
	if c.retx.MaxRetries <= 0 {
		c.retx.MaxRetries = DefaultRetx.MaxRetries
	}
	if cfg.UserLevel {
		c.TxPathNS = 400 + 800 // plus the syscall crossing each way
	}
	if c.Link.LatencyNS == 0 {
		c.Link.LatencyNS = 1200 // one switch hop of modern interconnect
	}
	if c.Link.BytesPerUS == 0 {
		c.Link.BytesPerUS = 12_000 // ~12 GB/s
	}
	for r := 0; r < cfg.Nodes; r++ {
		cpus := make([]int, per)
		for i := range cpus {
			cpus[i] = r*per + i
		}
		n := &Node{
			Rank: r,
			CPUs: cpus,
			Kernel: nautilus.Boot(nautilus.Config{
				Machine: m, Seed: cfg.Seed + int64(r), Sim: s, CPUs: cpus,
				Costs: cfg.KernelCosts,
			}),
			cluster:   c,
			rxq:       sim.NewWaitQueue(s).SetLabel(fmt.Sprintf("mpi rx rank%d", r)),
			nextSeq:   make(map[int]uint64),
			delivered: make(map[int]map[uint64]bool),
			pending:   make(map[pendKey]*pendingFrame),
		}
		c.Nodes = append(c.Nodes, n)
	}
	return c, nil
}

// Err returns the transport failure, if any (retry budget exhausted).
func (c *Cluster) Err() error { return c.err }

// Tx implements the HAL: charge the sender path, put the frame on the
// wire, deliver into the destination's inbox after the wire time.
func (c *Cluster) Tx(tc exec.TC, f Frame) {
	if f.Dst < 0 || f.Dst >= len(c.Nodes) {
		panic(fmt.Sprintf("mpi: Tx to rank %d of %d", f.Dst, len(c.Nodes)))
	}
	tc.Charge(c.TxPathNS)
	if c.reliable {
		c.txReliable(f)
		return
	}
	dst := c.Nodes[f.Dst]
	wire := c.Link.frameTime(f.Bytes)
	now := tc.Now()
	c.Sim.At(now+wire, func() {
		dst.inbox = append(dst.inbox, f)
		// RX interrupt -> wake a blocked receiver.
		dst.rxq.WakeAll(c.Sim.Now(), 200, 0)
	})
}

// --- Reliable transport ---

// txReliable assigns the frame a sequence number, records it pending,
// puts the first copy on the wire, and arms the retransmit timer. Runs
// in the sender proc's context (the TxPathNS charge already happened).
func (c *Cluster) txReliable(f Frame) {
	src := c.Nodes[f.Src]
	f.Seq = src.nextSeq[f.Dst]
	src.nextSeq[f.Dst]++
	pd := &pendingFrame{frame: f}
	src.pending[pendKey{f.Dst, f.Seq}] = pd
	c.Stats.DataSent++
	c.putOnWire(f)
	c.armRetx(src, pd)
}

// putOnWire rolls the wire faults and schedules delivery. Scheduler-safe
// (retransmits and acks call it outside any proc).
func (c *Cluster) putOnWire(f Frame) {
	if c.drop != nil && c.drop() {
		c.Stats.Dropped++
		return
	}
	corrupt := c.corrupt != nil && c.corrupt()
	wire := c.Link.frameTime(f.Bytes)
	c.Sim.After(wire, func() {
		if corrupt {
			// Receiver NIC checksum rejects the frame: indistinguishable
			// from a drop except that wire time was spent.
			c.Stats.Corrupted++
			return
		}
		c.rxFrame(f)
	})
}

// rxFrame is the receive-side NIC interrupt path for the reliable
// transport: acks complete pending sends; data frames are deduplicated,
// delivered, and acked.
func (c *Cluster) rxFrame(f Frame) {
	dst := c.Nodes[f.Dst]
	if f.IsAck {
		key := pendKey{f.Src, f.Seq}
		if pd := dst.pending[key]; pd != nil {
			pd.acked = true
			if pd.cancel != nil {
				pd.cancel()
			}
			delete(dst.pending, key)
		}
		return
	}
	seen := dst.delivered[f.Src]
	if seen == nil {
		seen = make(map[uint64]bool)
		dst.delivered[f.Src] = seen
	}
	if seen[f.Seq] {
		// Duplicate (our ack was lost): discard, but re-ack so the
		// sender stops retransmitting.
		c.Stats.Dups++
	} else {
		seen[f.Seq] = true
		dst.inbox = append(dst.inbox, f)
		dst.rxq.WakeAll(c.Sim.Now(), 200, 0)
	}
	c.Stats.AcksSent++
	c.putOnWire(Frame{Src: f.Dst, Dst: f.Src, Seq: f.Seq, Bytes: ackBytes, IsAck: true})
}

// ackBytes is the wire size of a transport ack.
const ackBytes = 16

// armRetx schedules the next retransmission of pd, with exponential
// backoff over the attempt count. Retransmits run in NIC/timer context:
// they cost wire time but steal no CPU from the sending proc (the frame
// is already in the NIC ring).
func (c *Cluster) armRetx(n *Node, pd *pendingFrame) {
	timeout := c.retx.TimeoutNS
	for i := 0; i < pd.tries; i++ {
		timeout = int64(float64(timeout) * c.retx.Backoff)
	}
	pd.cancel = c.Sim.AfterCancel(timeout, func() {
		if pd.acked || c.err != nil {
			return
		}
		if pd.tries >= c.retx.MaxRetries {
			c.failLink(fmt.Errorf("mpi: link failed: frame %d->%d tag=%d seq=%d unacked after %d retransmits",
				pd.frame.Src, pd.frame.Dst, pd.frame.Tag, pd.frame.Seq, pd.tries))
			return
		}
		pd.tries++
		c.Stats.Retx++
		c.putOnWire(pd.frame)
		c.armRetx(n, pd)
	})
}

// failLink records the first transport failure and wakes every blocked
// receiver on every node so Recv returns the error instead of hanging.
func (c *Cluster) failLink(err error) {
	if c.err != nil {
		return
	}
	c.err = err
	for _, n := range c.Nodes {
		n.rxq.WakeAll(c.Sim.Now(), 0, 0)
	}
}

// Comm is a rank's communicator handle, bound to a thread context on
// that rank's kernel.
type Comm struct {
	node *Node
	tc   exec.TC
}

// Comm returns rank r's communicator for a thread context running on one
// of its CPUs.
func (c *Cluster) Comm(r int, tc exec.TC) *Comm {
	return &Comm{node: c.Nodes[r], tc: tc}
}

// Rank returns this communicator's rank.
func (co *Comm) Rank() int { return co.node.Rank }

// Size returns the cluster size.
func (co *Comm) Size() int { return len(co.node.cluster.Nodes) }

// selfCopyNS is the cost of a rank sending to itself: a local memcpy
// through the MPI progress engine, no NIC involved.
const selfCopyNS = 150

// Send transmits a payload to rank dst with a tag. A send to self is a
// local copy (never touches the wire, cannot be dropped). It returns an
// error only once the transport has failed.
func (co *Comm) Send(dst, tag int, bytes int64, payload float64) error {
	c := co.node.cluster
	if c.err != nil {
		return c.err
	}
	f := Frame{Src: co.node.Rank, Dst: dst, Tag: tag, Bytes: bytes, Payload: payload}
	if dst == co.node.Rank {
		co.tc.Charge(selfCopyNS)
		co.node.inbox = append(co.node.inbox, f)
		co.node.rxq.WakeAll(co.tc.Now(), 0, 0)
		return nil
	}
	c.Tx(co.tc, f)
	return nil
}

// Recv blocks until a frame from src (-1: any) with the tag arrives and
// returns it. It returns an error if the transport fails while (or
// before) waiting.
func (co *Comm) Recv(src, tag int) (Frame, error) {
	n := co.node
	c := n.cluster
	p := procOf(co.tc)
	for {
		for i, f := range n.inbox {
			if (src < 0 || f.Src == src) && f.Tag == tag {
				n.inbox = append(n.inbox[:i], n.inbox[i+1:]...)
				co.tc.Charge(300) // rx path: copy out, complete the request
				return f, nil
			}
		}
		if c.err != nil {
			return Frame{}, c.err
		}
		n.rxq.Wait(p)
	}
}

func procOf(tc exec.TC) *sim.Proc {
	ph, ok := tc.(exec.ProcHolder)
	if !ok {
		panic("mpi: communicator must run on the simulator")
	}
	return ph.Proc()
}

// Allreduce combines each rank's value with op across the cluster and
// returns the result on every rank — recursive doubling for power-of-two
// sizes, gather+broadcast through rank 0 otherwise. bytes sets the
// message size for the wire model.
func (co *Comm) Allreduce(value float64, bytes int64, op func(a, b float64) float64, tag int) (float64, error) {
	size := co.Size()
	rank := co.Rank()
	if size&(size-1) == 0 {
		acc := value
		for step := 1; step < size; step <<= 1 {
			partner := rank ^ step
			if err := co.Send(partner, tag+step, bytes, acc); err != nil {
				return 0, err
			}
			f, err := co.Recv(partner, tag+step)
			if err != nil {
				return 0, err
			}
			acc = op(acc, f.Payload)
		}
		return acc, nil
	}
	// Gather to 0, combine, broadcast.
	if rank == 0 {
		acc := value
		for r := 1; r < size; r++ {
			f, err := co.Recv(-1, tag)
			if err != nil {
				return 0, err
			}
			acc = op(acc, f.Payload)
		}
		for r := 1; r < size; r++ {
			if err := co.Send(r, tag+1, bytes, acc); err != nil {
				return 0, err
			}
		}
		return acc, nil
	}
	if err := co.Send(0, tag, bytes, value); err != nil {
		return 0, err
	}
	f, err := co.Recv(0, tag+1)
	if err != nil {
		return 0, err
	}
	return f.Payload, nil
}

// Barrier synchronizes all ranks (a zero-byte allreduce).
func (co *Comm) Barrier(tag int) error {
	_, err := co.Allreduce(0, 8, func(a, b float64) float64 { return a + b }, tag)
	return err
}

// SpawnOnRank starts a thread on one of the rank's CPUs with a kernel
// thread context, returning a joinable handle usable from any rank.
func (c *Cluster) SpawnOnRank(r int, fn func(tc exec.TC)) exec.Handle {
	node := c.Nodes[r]
	h := &rankHandle{ft: sim.NewFutexTable(c.Sim)}
	layer := node.Kernel.Layer
	c.Sim.Go(fmt.Sprintf("rank%d", r), node.CPUs[0], c.Sim.Now(), func(p *sim.Proc) {
		tc := layer.AdoptProc(p)
		fn(tc)
		h.done = 1
		h.ft.Wake(p, &h.done, -1, 0, 100, 0)
	})
	return h
}

type rankHandle struct {
	done uint32
	ft   *sim.FutexTable
}

// Join blocks until the rank thread finishes.
func (h *rankHandle) Join(tc exec.TC) {
	p := procOf(tc)
	for h.done == 0 {
		h.ft.Wait(p, &h.done, 0, 0)
	}
}

// Run drives a single-program-multiple-data function on every rank and
// runs the simulator to completion, returning elapsed virtual ns. The
// first error — from a rank body or from the transport — is returned.
func (c *Cluster) Run(body func(co *Comm) error) (int64, error) {
	start := c.Sim.Now()
	rankErrs := make([]error, len(c.Nodes))
	for r := range c.Nodes {
		r := r
		c.SpawnOnRank(r, func(tc exec.TC) {
			rankErrs[r] = body(c.Comm(r, tc))
		})
	}
	if err := c.Sim.Run(); err != nil {
		return 0, err
	}
	elapsed := c.Sim.Now() - start
	for _, err := range rankErrs {
		if err != nil {
			return elapsed, err
		}
	}
	if c.err != nil {
		return elapsed, c.err
	}
	return elapsed, nil
}
