// Package mpi sketches the multi-node direction of §7: "a 'pure'
// in-kernel MPI implementation would proceed along the lines of RTK or
// PIK. MPI implementations already have layered designs in which
// NIC-specific code lies below a HAL. An in-kernel implementation or
// port would implement the HAL directly on top of kernel drivers."
//
// The package models a small cluster inside one simulator: each node is
// a CPU partition running its own Nautilus kernel; a simulated NIC
// carries frames between nodes with latency + bandwidth costs; a HAL
// sits between the communicator and the NIC; and the communicator
// implements the MPI data-plane primitives (Send/Recv with tag matching,
// Barrier, Allreduce via recursive doubling). The in-kernel advantage is
// mechanical: the kernel HAL path has no per-message syscall crossing.
package mpi

import (
	"fmt"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/nautilus"
	"github.com/interweaving/komp/internal/sim"
)

// Frame is what the HAL moves: opaque payload plus addressing.
type Frame struct {
	Src, Dst int
	Tag      int
	Bytes    int64
	Payload  float64
}

// HAL is the hardware abstraction the communicator sits on. Tx charges
// the sender-side path and schedules delivery.
type HAL interface {
	Tx(tc exec.TC, f Frame)
}

// Link models the wire: per-frame latency plus serialization.
type Link struct {
	LatencyNS  int64
	BytesPerUS int64 // bandwidth
}

// frameTime returns the wire time of a frame.
func (l Link) frameTime(bytes int64) int64 {
	t := l.LatencyNS
	if l.BytesPerUS > 0 {
		t += bytes * 1000 / l.BytesPerUS
	}
	return t
}

// Cluster is a simulated multi-node configuration sharing one simulator.
type Cluster struct {
	Sim   *sim.Sim
	Nodes []*Node
	Link  Link
	// TxPathNS is the per-frame sender-side software path below MPI: the
	// in-kernel HAL talks to the driver directly; a user-level MPI pays
	// an additional syscall crossing per frame (§7's point).
	TxPathNS int64
}

// Node is one cluster member: a CPU partition with its own kernel and
// receive queue.
type Node struct {
	Rank   int
	CPUs   []int
	Kernel *nautilus.Kernel

	cluster *Cluster
	rxq     *sim.WaitQueue
	inbox   []Frame
}

// Config builds a cluster.
type Config struct {
	Machine     *machine.Machine
	Seed        int64
	Nodes       int
	KernelCosts exec.Costs
	Link        Link
	// UserLevel models a user-space MPI (per-frame syscall tax) instead
	// of the in-kernel HAL.
	UserLevel bool
}

// New builds the cluster: the machine's CPUs split evenly into nodes,
// each running a Nautilus kernel on the shared simulator.
func New(cfg Config) (*Cluster, error) {
	m := cfg.Machine
	if cfg.Nodes < 2 || m.NumCPUs()%cfg.Nodes != 0 {
		return nil, fmt.Errorf("mpi: %d nodes must evenly split %d CPUs", cfg.Nodes, m.NumCPUs())
	}
	per := m.NumCPUs() / cfg.Nodes
	s := sim.New(m.NumCPUs(), cfg.Seed)
	c := &Cluster{Sim: s, Link: cfg.Link, TxPathNS: 400}
	if cfg.UserLevel {
		c.TxPathNS = 400 + 800 // plus the syscall crossing each way
	}
	if c.Link.LatencyNS == 0 {
		c.Link.LatencyNS = 1200 // one switch hop of modern interconnect
	}
	if c.Link.BytesPerUS == 0 {
		c.Link.BytesPerUS = 12_000 // ~12 GB/s
	}
	for r := 0; r < cfg.Nodes; r++ {
		cpus := make([]int, per)
		for i := range cpus {
			cpus[i] = r*per + i
		}
		n := &Node{
			Rank: r,
			CPUs: cpus,
			Kernel: nautilus.Boot(nautilus.Config{
				Machine: m, Seed: cfg.Seed + int64(r), Sim: s, CPUs: cpus,
				Costs: cfg.KernelCosts,
			}),
			cluster: c,
			rxq:     sim.NewWaitQueue(s),
		}
		c.Nodes = append(c.Nodes, n)
	}
	return c, nil
}

// Tx implements the HAL: charge the sender path, put the frame on the
// wire, deliver into the destination's inbox after the wire time.
func (c *Cluster) Tx(tc exec.TC, f Frame) {
	if f.Dst < 0 || f.Dst >= len(c.Nodes) {
		panic(fmt.Sprintf("mpi: Tx to rank %d of %d", f.Dst, len(c.Nodes)))
	}
	tc.Charge(c.TxPathNS)
	dst := c.Nodes[f.Dst]
	wire := c.Link.frameTime(f.Bytes)
	now := tc.Now()
	c.Sim.At(now+wire, func() {
		dst.inbox = append(dst.inbox, f)
		// RX interrupt -> wake a blocked receiver.
		dst.rxq.WakeAll(c.Sim.Now(), 200, 0)
	})
}

// Comm is a rank's communicator handle, bound to a thread context on
// that rank's kernel.
type Comm struct {
	node *Node
	tc   exec.TC
}

// Comm returns rank r's communicator for a thread context running on one
// of its CPUs.
func (c *Cluster) Comm(r int, tc exec.TC) *Comm {
	return &Comm{node: c.Nodes[r], tc: tc}
}

// Rank returns this communicator's rank.
func (co *Comm) Rank() int { return co.node.Rank }

// Size returns the cluster size.
func (co *Comm) Size() int { return len(co.node.cluster.Nodes) }

// Send transmits a payload to rank dst with a tag.
func (co *Comm) Send(dst, tag int, bytes int64, payload float64) {
	co.node.cluster.Tx(co.tc, Frame{
		Src: co.node.Rank, Dst: dst, Tag: tag, Bytes: bytes, Payload: payload,
	})
}

// Recv blocks until a frame from src (-1: any) with the tag arrives and
// returns it.
func (co *Comm) Recv(src, tag int) Frame {
	n := co.node
	p := procOf(co.tc)
	for {
		for i, f := range n.inbox {
			if (src < 0 || f.Src == src) && f.Tag == tag {
				n.inbox = append(n.inbox[:i], n.inbox[i+1:]...)
				co.tc.Charge(300) // rx path: copy out, complete the request
				return f
			}
		}
		n.rxq.Wait(p)
	}
}

func procOf(tc exec.TC) *sim.Proc {
	ph, ok := tc.(exec.ProcHolder)
	if !ok {
		panic("mpi: communicator must run on the simulator")
	}
	return ph.Proc()
}

// Allreduce combines each rank's value with op across the cluster and
// returns the result on every rank — recursive doubling for power-of-two
// sizes, gather+broadcast through rank 0 otherwise. bytes sets the
// message size for the wire model.
func (co *Comm) Allreduce(value float64, bytes int64, op func(a, b float64) float64, tag int) float64 {
	size := co.Size()
	rank := co.Rank()
	if size&(size-1) == 0 {
		acc := value
		for step := 1; step < size; step <<= 1 {
			partner := rank ^ step
			co.Send(partner, tag+step, bytes, acc)
			f := co.Recv(partner, tag+step)
			acc = op(acc, f.Payload)
		}
		return acc
	}
	// Gather to 0, combine, broadcast.
	if rank == 0 {
		acc := value
		for r := 1; r < size; r++ {
			f := co.Recv(-1, tag)
			acc = op(acc, f.Payload)
		}
		for r := 1; r < size; r++ {
			co.Send(r, tag+1, bytes, acc)
		}
		return acc
	}
	co.Send(0, tag, bytes, value)
	return co.Recv(0, tag+1).Payload
}

// Barrier synchronizes all ranks (a zero-byte allreduce).
func (co *Comm) Barrier(tag int) {
	co.Allreduce(0, 8, func(a, b float64) float64 { return a + b }, tag)
}

// SpawnOnRank starts a thread on one of the rank's CPUs with a kernel
// thread context, returning a joinable handle usable from any rank.
func (c *Cluster) SpawnOnRank(r int, fn func(tc exec.TC)) exec.Handle {
	node := c.Nodes[r]
	h := &rankHandle{ft: sim.NewFutexTable(c.Sim)}
	layer := node.Kernel.Layer
	c.Sim.Go(fmt.Sprintf("rank%d", r), node.CPUs[0], c.Sim.Now(), func(p *sim.Proc) {
		tc := layer.AdoptProc(p)
		fn(tc)
		h.done = 1
		h.ft.Wake(p, &h.done, -1, 0, 100, 0)
	})
	return h
}

type rankHandle struct {
	done uint32
	ft   *sim.FutexTable
}

// Join blocks until the rank thread finishes.
func (h *rankHandle) Join(tc exec.TC) {
	p := procOf(tc)
	for h.done == 0 {
		h.ft.Wait(p, &h.done, 0, 0)
	}
}

// Run drives a single-program-multiple-data function on every rank and
// runs the simulator to completion, returning elapsed virtual ns.
func (c *Cluster) Run(body func(co *Comm)) (int64, error) {
	start := c.Sim.Now()
	var handles []exec.Handle
	for r := range c.Nodes {
		r := r
		handles = append(handles, c.SpawnOnRank(r, func(tc exec.TC) {
			body(c.Comm(r, tc))
		}))
	}
	if err := c.Sim.Run(); err != nil {
		return 0, err
	}
	_ = handles
	return c.Sim.Now() - start, nil
}
