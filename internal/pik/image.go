// Package pik implements the process in kernel (PIK) path (§4): a
// multiboot2-style executable image format, a kernel loader that places
// the image anywhere in physical memory (static PIE), a kernel-mode
// process abstraction (thread group + custom allocator, no user mode, no
// privilege switch), and an emulated subset of the Linux syscall ABI —
// stubs for everything, real implementations for what the C runtime and
// libomp actually use, plus /proc/self.
//
// One substitution from the paper is unavoidable in Go: machine code
// cannot be carried in the image, so the image stores the *name* of its
// entry point and the loader resolves it against a registry of Go
// functions (the registry plays the role of the ELF entry address). All
// other mechanics — header parsing, checksums, placement, BSS/TBSS
// initialization, the copy costs — operate on real bytes.
package pik

import (
	"encoding/binary"
	"fmt"
)

// Multiboot2-style constants. The header magic is the real multiboot2
// header magic; the architecture field uses an unused value to mark our
// 64-bit variant (§4.1: "a custom-designed 64-bit variant of a multiboot2
// header at the very beginning of the output file").
const (
	HeaderMagic = 0xE85250D6
	Arch64      = 0x40
)

// Image flags.
const (
	// FlagPIE marks a position-independent static executable. The
	// Nautilus loader requires it (§4.1).
	FlagPIE = 1 << iota
	// FlagRedZone marks code compiled with x64 red zone use (the PIK
	// default: no -mno-red-zone needed).
	FlagRedZone
)

// Image is a parsed PIK executable.
type Image struct {
	Name      string
	Flags     uint32
	Entry     string // entry symbol, resolved via the registry
	TextBytes []byte // opaque "text+rodata+data" payload
	BSSSize   uint32
	TDATA     []byte // TLS initialized data template
	TBSSSize  uint32
	StackSize uint32
}

// TotalLoadSize returns the memory footprint the loader must allocate.
func (img *Image) TotalLoadSize() int64 {
	return int64(len(img.TextBytes)) + int64(img.BSSSize) + int64(img.StackSize)
}

// Link serializes an Image to its on-disk byte format — the job of the
// paper's nld wrapper script. Layout (little-endian):
//
//	u32 magic | u32 arch | u32 headerLen | u32 checksum
//	u32 flags | u32 bssSize | u32 tbssSize | u32 stackSize
//	u16 nameLen | name | u16 entryLen | entry
//	u32 textLen | text | u32 tdataLen | tdata
func Link(img *Image) []byte {
	var buf []byte
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	u16 := func(v uint16) { buf = binary.LittleEndian.AppendUint16(buf, v) }

	headerLen := uint32(32)
	u32(HeaderMagic)
	u32(Arch64)
	u32(headerLen)
	u32(0 - (HeaderMagic + Arch64 + headerLen)) // multiboot2 checksum rule
	u32(img.Flags)
	u32(img.BSSSize)
	u32(img.TBSSSize)
	u32(img.StackSize)

	u16(uint16(len(img.Name)))
	buf = append(buf, img.Name...)
	u16(uint16(len(img.Entry)))
	buf = append(buf, img.Entry...)
	u32(uint32(len(img.TextBytes)))
	buf = append(buf, img.TextBytes...)
	u32(uint32(len(img.TDATA)))
	buf = append(buf, img.TDATA...)
	return buf
}

// Parse decodes an image file, validating the multiboot2-style header.
func Parse(data []byte) (*Image, error) {
	if len(data) < 32 {
		return nil, fmt.Errorf("pik: image truncated (%d bytes)", len(data))
	}
	u32 := func(off int) uint32 { return binary.LittleEndian.Uint32(data[off:]) }
	magic, arch, hlen, csum := u32(0), u32(4), u32(8), u32(12)
	if magic != HeaderMagic {
		return nil, fmt.Errorf("pik: bad header magic %#x", magic)
	}
	if arch != Arch64 {
		return nil, fmt.Errorf("pik: unsupported architecture %#x", arch)
	}
	if magic+arch+hlen+csum != 0 {
		return nil, fmt.Errorf("pik: header checksum mismatch")
	}
	img := &Image{
		Flags:     u32(16),
		BSSSize:   u32(20),
		TBSSSize:  u32(24),
		StackSize: u32(28),
	}
	off := 32
	str := func() (string, error) {
		if off+2 > len(data) {
			return "", fmt.Errorf("pik: image truncated in string length")
		}
		n := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+n > len(data) {
			return "", fmt.Errorf("pik: image truncated in string body")
		}
		s := string(data[off : off+n])
		off += n
		return s, nil
	}
	blob := func() ([]byte, error) {
		if off+4 > len(data) {
			return nil, fmt.Errorf("pik: image truncated in blob length")
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if off+n > len(data) {
			return nil, fmt.Errorf("pik: image truncated in blob body")
		}
		b := data[off : off+n]
		off += n
		return b, nil
	}
	var err error
	if img.Name, err = str(); err != nil {
		return nil, err
	}
	if img.Entry, err = str(); err != nil {
		return nil, err
	}
	if img.TextBytes, err = blob(); err != nil {
		return nil, err
	}
	if img.TDATA, err = blob(); err != nil {
		return nil, err
	}
	return img, nil
}
