package pik

import (
	"strings"
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/nautilus"
)

func testImage(name, entry string) *Image {
	return &Image{
		Name:      name,
		Flags:     FlagPIE | FlagRedZone,
		Entry:     entry,
		TextBytes: make([]byte, 64<<10),
		BSSSize:   128 << 10,
		TDATA:     []byte{1, 2, 3, 4},
		TBSSSize:  16,
		StackSize: 64 << 10,
	}
}

func bootKernel() *nautilus.Kernel {
	return nautilus.Boot(nautilus.Config{Machine: machine.PHI(), Seed: 1,
		Costs: exec.Costs{MallocNS: 200, SyscallExtraNS: 120, FutexWaitEntryNS: 80,
			FutexWakeEntryNS: 80, FutexWakeLatencyNS: 300, ThreadSpawnNS: 1500}})
}

func TestLinkParseRoundTrip(t *testing.T) {
	img := testImage("app", "app_main")
	data := Link(img)
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "app" || got.Entry != "app_main" {
		t.Fatalf("roundtrip: %+v", got)
	}
	if got.BSSSize != img.BSSSize || got.TBSSSize != img.TBSSSize || got.StackSize != img.StackSize {
		t.Fatal("sizes lost in roundtrip")
	}
	if len(got.TextBytes) != len(img.TextBytes) || string(got.TDATA) != string(img.TDATA) {
		t.Fatal("payload lost in roundtrip")
	}
	if got.Flags&FlagPIE == 0 {
		t.Fatal("flags lost")
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	img := testImage("app", "m")
	data := Link(img)
	// Bad magic.
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, err := Parse(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: %v", err)
	}
	// Bad checksum.
	bad = append([]byte(nil), data...)
	bad[12] ^= 0x01
	if _, err := Parse(bad); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("bad checksum: %v", err)
	}
	// Truncation at various points.
	for _, cut := range []int{8, 31, 40, len(data) - 1} {
		if _, err := Parse(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestLoaderRejectsNonPIE(t *testing.T) {
	RegisterEntry("nonpie_main", func(tc exec.TC, p *Process, args []string) int { return 0 })
	img := testImage("nonpie", "nonpie_main")
	img.Flags = FlagRedZone // no PIE
	k := bootKernel()
	_, err := k.Layer.Run(func(tc exec.TC) {
		if _, err := Load(tc, k, Link(img)); err == nil || !strings.Contains(err.Error(), "position-independent") {
			t.Errorf("non-PIE image must be rejected: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoaderRejectsUnknownEntry(t *testing.T) {
	img := testImage("ghost", "no_such_symbol")
	k := bootKernel()
	_, err := k.Layer.Run(func(tc exec.TC) {
		if _, err := Load(tc, k, Link(img)); err == nil || !strings.Contains(err.Error(), "unresolved") {
			t.Errorf("unknown entry must be rejected: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadExecRunsProgram(t *testing.T) {
	ran := false
	RegisterEntry("hello_main", func(tc exec.TC, p *Process, args []string) int {
		ran = true
		p.WriteString(tc, "hello from ring 0\n")
		if len(args) != 2 || args[1] != "world" {
			t.Errorf("args = %v", args)
		}
		return 7
	})
	k := bootKernel()
	k.Setenv("OMP_NUM_THREADS", "4")
	_, err := k.Layer.Run(func(tc exec.TC) {
		p, code, err := Run(tc, k, Link(testImage("hello", "hello_main")), []string{"hello", "world"})
		if err != nil {
			t.Error(err)
			return
		}
		if code != 7 || !p.Exited {
			t.Errorf("exit = %d exited=%v", code, p.Exited)
		}
		if !strings.Contains(p.Stdout.String(), "ring 0") {
			t.Errorf("stdout = %q", p.Stdout.String())
		}
		// The process must inherit the kernel environment.
		if v, ok := p.Getenv("OMP_NUM_THREADS"); !ok || v != "4" {
			t.Errorf("env not inherited: %q %v", v, ok)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("entry never ran")
	}
}

func TestLoaderEnablesISTAndLazyFPU(t *testing.T) {
	RegisterEntry("cfg_main", func(tc exec.TC, p *Process, args []string) int { return 0 })
	k := bootKernel()
	if k.ISTTrampoline || k.LazyFPU {
		t.Fatal("kernel must boot without PIK features")
	}
	_, err := k.Layer.Run(func(tc exec.TC) {
		if _, _, err := Run(tc, k, Link(testImage("cfg", "cfg_main")), nil); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !k.ISTTrampoline || !k.LazyFPU {
		t.Fatal("PIK load must enable IST trampoline and lazy FPU (§4.2)")
	}
}

func TestSyscallStubsReturnENOSYS(t *testing.T) {
	RegisterEntry("stub_main", func(tc exec.TC, p *Process, args []string) int {
		if r := p.Syscall(tc, 999); r != -ENOSYS {
			t.Errorf("unknown syscall returned %d", r)
		}
		if r := p.Syscall(tc, 16 /* ioctl */); r != -ENOSYS {
			t.Errorf("ioctl stub returned %d", r)
		}
		return 0
	})
	k := bootKernel()
	_, err := k.Layer.Run(func(tc exec.TC) {
		p, _, err := Run(tc, k, Link(testImage("stub", "stub_main")), nil)
		if err != nil {
			t.Error(err)
			return
		}
		if p.StubCalls[999] != 1 || p.StubCalls[16] != 1 {
			t.Errorf("stub accounting: %v", p.StubCalls)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMmapBrkMunmap(t *testing.T) {
	RegisterEntry("mem_main", func(tc exec.TC, p *Process, args []string) int {
		a := p.Syscall(tc, SysMmap, 0, 1<<20)
		if a <= 0 {
			t.Errorf("mmap = %d", a)
		}
		b := p.Syscall(tc, SysMmap, 0, 1<<20)
		if b <= a {
			t.Errorf("second mmap %d must be above first %d", b, a)
		}
		if r := p.Syscall(tc, SysMunmap, a); r != 0 {
			t.Errorf("munmap = %d", r)
		}
		if r := p.Syscall(tc, SysMunmap, a); r != -EINVAL {
			t.Errorf("double munmap = %d", r)
		}
		cur := p.Syscall(tc, SysBrk, 0)
		if r := p.Syscall(tc, SysBrk, cur+4096); r != cur+4096 {
			t.Errorf("brk grow = %d", r)
		}
		return 0
	})
	k := bootKernel()
	if _, err := k.Layer.Run(func(tc exec.TC) {
		if _, _, err := Run(tc, k, Link(testImage("mem", "mem_main")), nil); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestProcSelfOnly(t *testing.T) {
	RegisterEntry("proc_main", func(tc exec.TC, p *Process, args []string) int {
		st, err := p.ReadFile(tc, "/proc/self/status")
		if err != nil {
			t.Error(err)
			return 1
		}
		if !strings.Contains(st, "Cpus_allowed_list:\t0-63") {
			t.Errorf("status = %q", st)
		}
		if _, err := p.ReadFile(tc, "/proc/cpuinfo"); err == nil {
			t.Error("/proc/cpuinfo must not exist (only /proc/self, §4.3)")
		}
		if _, err := p.ReadFile(tc, "/sys/devices"); err == nil {
			t.Error("/sys must not exist")
		}
		if r := p.Syscall(tc, SysOpenat, 0, PathArg("/proc/self/maps")); r < 3 {
			t.Errorf("openat /proc/self/maps = %d", r)
		}
		return 0
	})
	k := bootKernel()
	if _, err := k.Layer.Run(func(tc exec.TC) {
		if _, _, err := Run(tc, k, Link(testImage("proc", "proc_main")), nil); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneAndFutexAcrossThreads(t *testing.T) {
	RegisterEntry("thr_main", func(tc exec.TC, p *Process, args []string) int {
		const addr = 0x1000
		w := p.FutexWord(addr)
		h := p.Clone(tc, 1, func(wtc exec.TC, tid int) {
			if tid == p.PID {
				t.Error("cloned thread must get a fresh tid")
			}
			wtc.Charge(5000)
			w.Store(1)
			p.FutexWake(wtc, addr, 1)
		})
		for w.Load() == 0 {
			p.FutexWait(tc, addr, 0)
		}
		h.Join(tc)
		return 0
	})
	k := bootKernel()
	if _, err := k.Layer.Run(func(tc exec.TC) {
		p, code, err := Run(tc, k, Link(testImage("thr", "thr_main")), nil)
		if err != nil || code != 0 {
			t.Errorf("err=%v code=%d", err, code)
			return
		}
		if p.Calls[SysClone] != 1 {
			t.Errorf("clone calls = %d", p.Calls[SysClone])
		}
		if p.Calls[SysFutex] == 0 {
			t.Error("futex syscalls not accounted")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestArchPrctlFSBase(t *testing.T) {
	RegisterEntry("tls_main", func(tc exec.TC, p *Process, args []string) int {
		if r := p.Syscall(tc, SysArchPrctl, ArchSetFS, 0xBEEF000); r != 0 {
			t.Errorf("ARCH_SET_FS = %d", r)
		}
		if r := p.Syscall(tc, SysArchPrctl, ArchGetFS); r != 0xBEEF000 {
			t.Errorf("ARCH_GET_FS = %#x", r)
		}
		if r := p.Syscall(tc, SysArchPrctl, 0x9999); r != -EINVAL {
			t.Errorf("bad arch_prctl code = %d", r)
		}
		return 0
	})
	k := bootKernel()
	if _, err := k.Layer.Run(func(tc exec.TC) {
		if _, _, err := Run(tc, k, Link(testImage("tls", "tls_main")), nil); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRedZonePreservedUnderPIK(t *testing.T) {
	RegisterEntry("rz_main", func(tc exec.TC, p *Process, args []string) int {
		th := p.K.Thread(tc)
		if !th.UsesRedZone {
			t.Error("PIK binaries use the red zone")
		}
		p.K.IRQ.Register(&nautilus.IRQHandler{Name: "tick", PathNS: 200})
		p.K.IRQ.Fire("tick", 0)
		if !th.RedZoneIntact {
			t.Error("IST trampoline must preserve the red zone (§4.2)")
		}
		return 0
	})
	k := bootKernel()
	if _, err := k.Layer.Run(func(tc exec.TC) {
		if _, _, err := Run(tc, k, Link(testImage("rz", "rz_main")), nil); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTLSTemplateInstalledByPreStart(t *testing.T) {
	RegisterEntry("tdata_main", func(tc exec.TC, p *Process, args []string) int {
		v, err := p.K.TLSLoad(tc, 1)
		if err != nil {
			t.Error(err)
			return 1
		}
		if v != 2 {
			t.Errorf("TLS data = %d, want template byte", v)
		}
		return 0
	})
	k := bootKernel()
	if _, err := k.Layer.Run(func(tc exec.TC) {
		if _, _, err := Run(tc, k, Link(testImage("tdata", "tdata_main")), nil); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAffinityAndSignalSyscalls(t *testing.T) {
	RegisterEntry("aff_main", func(tc exec.TC, p *Process, args []string) int {
		if r := p.Syscall(tc, SysSchedGetaff); r != 64 {
			t.Errorf("default affinity = %d", r)
		}
		if r := p.Syscall(tc, SysSchedSetaff, 0, 8); r != 0 {
			t.Errorf("setaffinity = %d", r)
		}
		if r := p.Syscall(tc, SysSchedGetaff); r != 8 {
			t.Errorf("narrowed affinity = %d", r)
		}
		if r := p.Syscall(tc, SysSchedSetaff, 0, 9999); r != -EINVAL {
			t.Errorf("oversized mask = %d", r)
		}
		if r := p.Syscall(tc, SysRtSigaction, 11); r != 0 {
			t.Errorf("rt_sigaction = %d", r)
		}
		if p.sigHandlers[11] != 1 {
			t.Error("handler not recorded")
		}
		if r := p.Syscall(tc, SysMadvise, 0, 4096, 14); r != 0 {
			t.Errorf("MADV_HUGEPAGE = %d", r)
		}
		if r := p.Syscall(tc, SysMadvise, 0, 4096, 4); r != -EINVAL {
			t.Errorf("unsupported advice = %d", r)
		}
		if r := p.Syscall(tc, SysGetcpu); r != int64(tc.CPU()) {
			t.Errorf("getcpu = %d on cpu %d", r, tc.CPU())
		}
		return 0
	})
	k := bootKernel()
	if _, err := k.Layer.Run(func(tc exec.TC) {
		if _, _, err := Run(tc, k, Link(testImage("aff", "aff_main")), nil); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
}
