package pik

import (
	"testing"
	"testing/quick"
)

// Property: Link/Parse round-trips arbitrary image contents exactly.
func TestPropertyLinkParseRoundTrip(t *testing.T) {
	f := func(name string, entry string, text []byte, tdata []byte, bss, tbss, stack uint32, flags uint8) bool {
		if len(name) > 60000 || len(entry) > 60000 {
			return true
		}
		img := &Image{
			Name:      name,
			Flags:     uint32(flags) | FlagPIE,
			Entry:     entry,
			TextBytes: text,
			BSSSize:   bss,
			TDATA:     tdata,
			TBSSSize:  tbss,
			StackSize: stack,
		}
		got, err := Parse(Link(img))
		if err != nil {
			return false
		}
		return got.Name == img.Name &&
			got.Entry == img.Entry &&
			got.Flags == img.Flags &&
			got.BSSSize == img.BSSSize &&
			got.TBSSSize == img.TBSSSize &&
			got.StackSize == img.StackSize &&
			string(got.TextBytes) == string(img.TextBytes) &&
			string(got.TDATA) == string(img.TDATA)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parse never panics and never accepts a truncation of a valid
// image as valid (every strict prefix must error).
func TestPropertyParseRejectsAllTruncations(t *testing.T) {
	img := testImage("trunc", "m")
	data := Link(img)
	for cut := 0; cut < len(data); cut++ {
		if _, err := Parse(data[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", cut, len(data))
		}
	}
}

// Property: Parse tolerates arbitrary garbage without panicking.
func TestPropertyParseGarbageSafe(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("Parse panicked on garbage")
			}
		}()
		img, err := Parse(data)
		// Either an error, or a structurally valid image.
		return err != nil || img != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
