package pik

import (
	"fmt"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/nautilus"
)

// Loader cost knobs (virtual ns).
const (
	// copyNSPerKB is the cost of copying image content into place.
	copyNSPerKB = 90
	// zeroNSPerKB is the cost of zeroing BSS/TBSS.
	zeroNSPerKB = 25
	// setupNS is the fixed cost of process/thread setup ("pre-start").
	setupNS = 4000
)

// Load parses an image file, places it in kernel memory, initializes
// BSS and TBSS, and creates the kernel-mode process — everything the
// paper's "Windows-style CreateProcess, but done entirely in kernel"
// loader does (§4.2). It does not start execution; see Exec.
func Load(tc exec.TC, k *nautilus.Kernel, file []byte) (*Process, error) {
	img, err := Parse(file)
	if err != nil {
		return nil, err
	}
	if img.Flags&FlagPIE == 0 {
		// The loader places the executable wherever prior allocations
		// allow; without position independence that is unsound (§4.1).
		return nil, fmt.Errorf("pik: image %q is not position-independent (nld requires -fPIE)", img.Name)
	}
	if _, ok := lookupEntry(img.Entry); !ok {
		return nil, fmt.Errorf("pik: unresolved entry symbol %q", img.Entry)
	}
	size := img.TotalLoadSize()
	if size <= 0 {
		return nil, fmt.Errorf("pik: image %q loads nothing", img.Name)
	}
	region, err := k.KAlloc(tc, "pik-image-"+img.Name, size, tc.CPU())
	if err != nil {
		return nil, err
	}
	_ = region
	// "Copies the file content to it, initializes BSS/TBSS."
	tc.Charge(int64(len(img.TextBytes))/1024*copyNSPerKB + setupNS)
	tc.Charge(int64(img.BSSSize+img.TBSSSize) / 1024 * zeroNSPerKB)

	base := int64(0x100000) + int64(len(img.Name))*0x1000 // placement varies with prior allocations
	p := newProcess(k, img, base)
	// Inherit the kernel layer's instrumentation spine, so a process
	// loaded into an instrumented environment emits futex events without
	// per-call-site wiring (SetSpine overrides).
	p.spine = k.Layer.Spine
	// The process inherits the kernel environment (how OMP_NUM_THREADS
	// reaches the emulated process).
	for _, kv := range k.Environ() {
		for i := 0; i < len(kv); i++ {
			if kv[i] == '=' {
				p.Setenv(kv[:i], kv[i+1:])
				break
			}
		}
	}
	// PIK eases the red-zone restriction with the IST trampoline (§4.2)
	// and needs hardware TLS + lazy FPU for the unmodified binary (§4.2).
	k.ISTTrampoline = true
	k.LazyFPU = true
	return p, nil
}

// Exec runs the loaded process's entry function on the calling thread —
// the loader's final "jumps to the entry point". It returns the exit
// code. The entry symbol is resolved again here: it may have been
// unregistered between Load and Exec, which is an error, not a crash.
func Exec(tc exec.TC, p *Process, args []string) (int, error) {
	fn, ok := lookupEntry(p.Img.Entry)
	if !ok {
		return 0, fmt.Errorf("pik: entry symbol %q of image %q is no longer registered", p.Img.Entry, p.Img.Name)
	}
	// The initial thread runs the pre-start wrapper that completes
	// process setup before invoking the user's code (§4.2). The wrapper
	// installs the TLS template for the initial thread.
	th := p.K.Thread(tc)
	th.UsesRedZone = p.Img.Flags&FlagRedZone != 0
	if len(p.Img.TDATA) > 0 || p.Img.TBSSSize > 0 {
		p.K.SetTLS(tc, &nautilus.TLSImage{Data: p.Img.TDATA, BSSSize: int(p.Img.TBSSSize)})
	}
	tc.Charge(setupNS)
	code := fn(tc, p, args)
	if !p.Exited {
		p.Exited = true
		p.ExitCode = code
	}
	return p.ExitCode, nil
}

// Run is Load followed by Exec.
func Run(tc exec.TC, k *nautilus.Kernel, file []byte, args []string) (*Process, int, error) {
	p, err := Load(tc, k, file)
	if err != nil {
		return nil, 0, err
	}
	code, err := Exec(tc, p, args)
	if err != nil {
		return nil, 0, err
	}
	return p, code, nil
}
