package pik

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/memsim"
	"github.com/interweaving/komp/internal/nautilus"
	"github.com/interweaving/komp/internal/ompt"
)

// Linux x86-64 syscall numbers (the subset with stubs/implementations).
const (
	SysRead          = 0
	SysWrite         = 1
	SysMmap          = 9
	SysMunmap        = 11
	SysBrk           = 12
	SysRtSigaction   = 13
	SysRtSigprocmask = 14
	SysSchedYield    = 24
	SysMadvise       = 28
	SysNanosleep     = 35
	SysGetpid        = 39
	SysClone         = 56
	SysExit          = 60
	SysUname         = 63
	SysGettid        = 186
	SysFutex         = 202
	SysSchedSetaff   = 203
	SysSchedGetaff   = 204
	SysArchPrctl     = 158
	SysSetTidAddress = 218
	SysClockGettime  = 228
	SysExitGroup     = 231
	SysOpenat        = 257
	SysGetcpu        = 309
)

// Errnos (negated in return values, Linux-style).
const (
	ENOSYS = 38
	ENOENT = 2
	EBADF  = 9
	EINVAL = 22
	EAGAIN = 11
)

// arch_prctl codes.
const (
	ArchSetFS = 0x1002
	ArchGetFS = 0x1003
)

// Program is a registered PIK entry point: the Go stand-in for the ELF
// entry address. It returns the process exit code.
type Program func(tc exec.TC, p *Process, args []string) int

var (
	registryMu sync.Mutex
	registry   = map[string]Program{}
)

// RegisterEntry installs an entry symbol. Re-registering a name replaces
// the previous entry (tests rely on this).
func RegisterEntry(name string, fn Program) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = fn
}

func lookupEntry(name string) (Program, bool) {
	registryMu.Lock()
	defer registryMu.Unlock()
	fn, ok := registry[name]
	return fn, ok
}

// mapping is one mmap'd range of the process.
type mapping struct {
	addr, size int64
	region     *memsim.Region
}

// Process is a kernel-mode process: a thread group sharing the kernel
// address space (no user mode, no separate page tables by default), with
// a custom allocator layered on kernel memory and an emulated Linux
// syscall surface (§4.2, §4.3).
type Process struct {
	K   *nautilus.Kernel
	Img *Image
	PID int

	// Base is the physical placement the loader chose.
	Base int64

	env map[string]string

	// Heap / mmap arena.
	nextAddr int64
	brk      int64
	brkStart int64
	maps     []mapping

	// Console output (write to fd 1/2).
	Stdout strings.Builder

	// Open file descriptors (only /proc/self files).
	fds    map[int]*procFile
	nextFD int

	// Thread accounting.
	nextTID int
	threads int

	// Futex words by emulated address.
	futexMu sync.Mutex
	futexes map[int64]*exec.Word

	// spine, if set, receives the kernel-side view of the process's
	// futex traffic (SyncFutex events keyed by emulated address).
	spine *ompt.Spine

	// Per-thread FSBASE (arch_prctl ARCH_SET_FS), keyed by TID.
	fsbase map[int]int64
	// affinity is the sched_setaffinity mask (CPU count granularity).
	affinity int64
	// sigHandlers counts installed rt_sigaction handlers per signo.
	sigHandlers map[int64]int64

	// Exit state.
	Exited   bool
	ExitCode int

	// Syscall accounting: the "stubs so we can see all activity" design.
	Calls     map[int]int64
	StubCalls map[int]int64
}

type procFile struct {
	path    string
	content []byte
	off     int
}

func newProcess(k *nautilus.Kernel, img *Image, base int64) *Process {
	return &Process{
		K: k, Img: img, PID: 1000 + int(base%1000), Base: base,
		env:         map[string]string{},
		nextAddr:    0x7f00_0000_0000,
		fds:         map[int]*procFile{},
		nextFD:      3,
		futexes:     map[int64]*exec.Word{},
		fsbase:      map[int]int64{},
		sigHandlers: map[int64]int64{},
		Calls:       map[int]int64{},
		StubCalls:   map[int]int64{},
	}
}

// SetSpine attaches an instrumentation spine: the futex syscalls emit
// SyncFutex acquire/acquired/release events keyed by the emulated
// address — the kernel-side observability the stub-counting design
// gives per-call counts for, as a typed event stream.
func (p *Process) SetSpine(sp *ompt.Spine) { p.spine = sp }

// Setenv sets a process environment variable (the loader copies the
// kernel environment in, mirroring how RTK reads kernel env vars).
func (p *Process) Setenv(k, v string) { p.env[k] = v }

// Getenv reads a process environment variable.
func (p *Process) Getenv(k string) (string, bool) {
	v, ok := p.env[k]
	return v, ok
}

// syscallEnter charges the PIK syscall path: same address space, same
// privilege level, same stack — far cheaper than a real mode switch; the
// handler only adjusts the stack pointer past the red zone (§4.2).
func (p *Process) syscallEnter(tc exec.TC, num int) {
	tc.Charge(tc.Costs().SyscallExtraNS)
	p.Calls[num]++
}

// Syscall dispatches an emulated Linux system call. Unimplemented calls
// return -ENOSYS and are counted, exactly like the stub design of §4.3.
func (p *Process) Syscall(tc exec.TC, num int, args ...int64) int64 {
	p.syscallEnter(tc, num)
	arg := func(i int) int64 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	switch num {
	case SysWrite:
		return p.sysWrite(int(arg(0)), arg(1), arg(2))
	case SysRead:
		return p.sysRead(int(arg(0)), arg(1), arg(2))
	case SysMmap:
		return p.sysMmap(tc, arg(1))
	case SysMunmap:
		return p.sysMunmap(arg(0))
	case SysBrk:
		return p.sysBrk(tc, arg(0))
	case SysSchedYield:
		tc.Yield()
		return 0
	case SysNanosleep:
		tc.Sleep(arg(0))
		return 0
	case SysGetpid:
		return int64(p.PID)
	case SysGettid:
		return int64(p.PID) // main thread; clone() assigns others
	case SysUname, SysSetTidAddress:
		return 0
	case SysClockGettime:
		// No vDSO in PIK (§4.3): this really is a syscall, but a cheap
		// same-privilege one.
		return tc.Now()
	case SysSchedGetaff:
		if p.affinity != 0 {
			return p.affinity
		}
		return int64(p.K.Machine.NumCPUs())
	case SysSchedSetaff:
		if arg(1) <= 0 || arg(1) > int64(p.K.Machine.NumCPUs()) {
			return -EINVAL
		}
		p.affinity = arg(1)
		return 0
	case SysRtSigaction:
		// libomp installs handlers at init; accept and count them.
		p.sigHandlers[arg(0)]++
		return 0
	case SysRtSigprocmask:
		return 0
	case SysMadvise:
		// The PIK address space is identity-mapped; MADV_HUGEPAGE is a
		// successful no-op, everything else is unsupported advice.
		if arg(2) == 14 /* MADV_HUGEPAGE */ {
			return 0
		}
		return -EINVAL
	case SysGetcpu:
		return int64(tc.CPU())
	case SysArchPrctl:
		return p.sysArchPrctl(int(arg(0)), arg(1))
	case SysExit, SysExitGroup:
		p.Exited = true
		p.ExitCode = int(arg(0))
		return 0
	case SysOpenat:
		return int64(p.openProcSelf(procPathFromArg(arg(1))))
	default:
		p.StubCalls[num]++
		return -ENOSYS
	}
}

// procPathArgs maps fake path "addresses" to strings for the openat
// emulation; test programs pass PathArg("...") as the address argument.
var (
	pathMu   sync.Mutex
	pathTab        = map[int64]string{}
	pathNext int64 = 1
)

// PathArg interns a path string into a fake address for Syscall(SysOpenat).
func PathArg(path string) int64 {
	pathMu.Lock()
	defer pathMu.Unlock()
	pathNext++
	pathTab[pathNext] = path
	return pathNext
}

func procPathFromArg(a int64) string {
	pathMu.Lock()
	defer pathMu.Unlock()
	return pathTab[a]
}

func (p *Process) sysWrite(fd int, _ int64, n int64) int64 {
	if fd != 1 && fd != 2 {
		return -EBADF
	}
	// The data pointer is opaque in the simulation; account length only.
	p.Stdout.WriteString(fmt.Sprintf("[write fd=%d len=%d]", fd, n))
	return n
}

// WriteString is the test/program-facing console write (data + syscall
// accounting).
func (p *Process) WriteString(tc exec.TC, s string) int64 {
	p.syscallEnter(tc, SysWrite)
	p.Stdout.WriteString(s)
	return int64(len(s))
}

func (p *Process) sysRead(fd int, _ int64, n int64) int64 {
	f, ok := p.fds[fd]
	if !ok {
		return -EBADF
	}
	remain := len(f.content) - f.off
	if remain <= 0 {
		return 0
	}
	if int64(remain) < n {
		n = int64(remain)
	}
	f.off += int(n)
	return n
}

// ReadFile reads a whole emulated /proc file through the fd interface.
func (p *Process) ReadFile(tc exec.TC, path string) (string, error) {
	fd := p.openProcSelf(path)
	if fd < 0 {
		return "", fmt.Errorf("pik: open %s: errno %d", path, -fd)
	}
	f := p.fds[fd]
	delete(p.fds, fd)
	p.syscallEnter(tc, SysRead)
	return string(f.content), nil
}

// openProcSelf implements the only virtual filesystem PIK provides:
// /proc/self (§4.3).
func (p *Process) openProcSelf(path string) int {
	if !strings.HasPrefix(path, "/proc/self") {
		return -ENOENT
	}
	var content string
	switch path {
	case "/proc/self/status":
		content = fmt.Sprintf("Name:\t%s\nPid:\t%d\nThreads:\t%d\nCpus_allowed_list:\t0-%d\n",
			p.Img.Name, p.PID, p.threads+1, p.K.Machine.NumCPUs()-1)
	case "/proc/self/stat":
		content = fmt.Sprintf("%d (%s) R 0 0 0", p.PID, p.Img.Name)
	case "/proc/self/maps":
		var b strings.Builder
		fmt.Fprintf(&b, "%012x-%012x r-xp image %s\n", p.Base, p.Base+p.Img.TotalLoadSize(), p.Img.Name)
		for _, m := range p.maps {
			fmt.Fprintf(&b, "%012x-%012x rw-p anon\n", m.addr, m.addr+m.size)
		}
		content = b.String()
	default:
		return -ENOENT
	}
	fd := p.nextFD
	p.nextFD++
	p.fds[fd] = &procFile{path: path, content: []byte(content)}
	return fd
}

func (p *Process) sysMmap(tc exec.TC, size int64) int64 {
	if size <= 0 {
		return -EINVAL
	}
	r, err := p.K.KAlloc(tc, fmt.Sprintf("pik-mmap-%x", p.nextAddr), size, tc.CPU())
	if err != nil {
		return -EINVAL
	}
	addr := p.nextAddr
	p.nextAddr += (size + 0xFFF) &^ 0xFFF
	p.maps = append(p.maps, mapping{addr: addr, size: size, region: r})
	return addr
}

func (p *Process) sysMunmap(addr int64) int64 {
	for i, m := range p.maps {
		if m.addr == addr {
			p.maps = append(p.maps[:i], p.maps[i+1:]...)
			return 0
		}
	}
	return -EINVAL
}

func (p *Process) sysBrk(tc exec.TC, newBrk int64) int64 {
	if p.brkStart == 0 {
		p.brkStart = 0x5555_0000_0000
		p.brk = p.brkStart
	}
	if newBrk == 0 {
		return p.brk
	}
	if newBrk < p.brkStart {
		return -EINVAL
	}
	if newBrk > p.brk {
		tc.Charge(tc.Costs().MallocNS)
	}
	p.brk = newBrk
	return p.brk
}

func (p *Process) sysArchPrctl(code int, val int64) int64 {
	switch code {
	case ArchSetFS:
		p.fsbase[0] = val
		return 0
	case ArchGetFS:
		return p.fsbase[0]
	default:
		return -EINVAL
	}
}

// Clone spawns a new kernel thread in the process on the given CPU —
// the clone(2) path pthread_create takes. It charges the (cheap, same-
// privilege) syscall plus the kernel thread spawn.
func (p *Process) Clone(tc exec.TC, cpu int, fn func(tc exec.TC, tid int)) exec.Handle {
	p.syscallEnter(tc, SysClone)
	p.nextTID++
	p.threads++
	tid := p.PID + p.nextTID
	return tc.Spawn(fmt.Sprintf("pik-thread-%d", tid), cpu, func(wtc exec.TC) {
		fn(wtc, tid)
	})
}

// FutexWait emulates futex(FUTEX_WAIT) on an address in process memory.
func (p *Process) FutexWait(tc exec.TC, addr int64, val uint32) bool {
	p.syscallEnter(tc, SysFutex)
	sp := p.spine
	if sp.Enabled(ompt.SyncAcquire) {
		sp.Emit(ompt.Event{Kind: ompt.SyncAcquire, Sync: ompt.SyncFutex,
			Thread: int32(tc.CPU()), CPU: int32(tc.CPU()), TimeNS: tc.Now(), Obj: uint64(addr)})
	}
	woke := tc.FutexWait(p.futexWord(addr), val)
	if sp.Enabled(ompt.SyncAcquired) {
		sp.Emit(ompt.Event{Kind: ompt.SyncAcquired, Sync: ompt.SyncFutex,
			Thread: int32(tc.CPU()), CPU: int32(tc.CPU()), TimeNS: tc.Now(), Obj: uint64(addr)})
	}
	return woke
}

// FutexWake emulates futex(FUTEX_WAKE).
func (p *Process) FutexWake(tc exec.TC, addr int64, n int) int {
	p.syscallEnter(tc, SysFutex)
	if sp := p.spine; sp.Enabled(ompt.SyncRelease) {
		sp.Emit(ompt.Event{Kind: ompt.SyncRelease, Sync: ompt.SyncFutex,
			Thread: int32(tc.CPU()), CPU: int32(tc.CPU()), TimeNS: tc.Now(), Obj: uint64(addr)})
	}
	return tc.FutexWake(p.futexWord(addr), n)
}

// FutexWord returns the futex word backing an emulated address (programs
// store/load through it).
func (p *Process) FutexWord(addr int64) *exec.Word { return p.futexWord(addr) }

func (p *Process) futexWord(addr int64) *exec.Word {
	p.futexMu.Lock()
	defer p.futexMu.Unlock()
	w, ok := p.futexes[addr]
	if !ok {
		w = &exec.Word{}
		p.futexes[addr] = w
	}
	return w
}

// SyscallNames returns sorted "num:count" strings for reporting.
func (p *Process) SyscallNames() []string {
	var out []string
	for num, n := range p.Calls {
		out = append(out, fmt.Sprintf("%d:%d", num, n))
	}
	sort.Strings(out)
	return out
}
