package pik

import (
	"bytes"
	"testing"
)

// FuzzParse drives the image parser with arbitrary bytes: it must never
// panic, and anything it accepts must survive a re-link round trip.
func FuzzParse(f *testing.F) {
	f.Add(Link(testImage("seed", "main")))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xE8}, 64))
	corrupt := Link(testImage("c", "m"))
	corrupt[20] ^= 0xFF
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Parse(data)
		if err != nil {
			return
		}
		again, err := Parse(Link(img))
		if err != nil {
			t.Fatalf("re-parse of accepted image failed: %v", err)
		}
		if again.Name != img.Name || again.Entry != img.Entry ||
			!bytes.Equal(again.TextBytes, img.TextBytes) ||
			!bytes.Equal(again.TDATA, img.TDATA) {
			t.Fatal("accepted image does not round-trip")
		}
	})
}
