package pik

import (
	"strings"
	"testing"

	"github.com/interweaving/komp/internal/exec"
)

// TestExecUnresolvedEntryIsError: an entry symbol vanishing between Load
// and Exec must come back as an error, not a panic.
func TestExecUnresolvedEntryIsError(t *testing.T) {
	k := bootKernel()
	img := testImage("ghost", "ghost_entry_never_registered")
	_, err := k.Layer.Run(func(tc exec.TC) {
		p := newProcess(k, img, 0x100000)
		code, eerr := Exec(tc, p, nil)
		if eerr == nil {
			t.Errorf("Exec of unresolved entry returned code %d, want error", code)
		} else if !strings.Contains(eerr.Error(), "ghost_entry_never_registered") {
			t.Errorf("error does not name the missing symbol: %v", eerr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunPropagatesExecError: Run must surface an Exec failure instead
// of reporting a bogus exit code.
func TestRunPropagatesExecError(t *testing.T) {
	// Register the entry so Load succeeds, then unregister it by
	// replacing the registry entry is impossible — instead exercise the
	// Load-time check: a never-registered entry fails Load with an error.
	k := bootKernel()
	img := testImage("lost", "lost_entry_never_registered")
	data := Link(img)
	_, err := k.Layer.Run(func(tc exec.TC) {
		if _, _, rerr := Run(tc, k, data, nil); rerr == nil {
			t.Error("Run with unresolved entry succeeded")
		} else if !strings.Contains(rerr.Error(), "unresolved entry") {
			t.Errorf("error = %v", rerr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
