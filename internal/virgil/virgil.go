// Package virgil implements VIRGIL, the custom task-based run-time system
// that CCK-compiled code targets instead of libomp (§5). VIRGIL is
// deliberately tiny: it only runs tasks that are already independent and
// ready — "the compiler generates code such that all tasks that are
// handed to the runtime are immediately ready". Group joins are not the
// runtime's business; the compiler emits landing-task counters in the
// generated code.
//
// Two versions exist, as in the paper:
//
//   - User: builds on threads and futex-style blocking (the C++17/futex
//     version that runs on Linux, 620 LoC in the paper).
//   - Kernel: a thin veneer over the Nautilus task system, which operates
//     like Linux's SoftIRQ mechanism (550 LoC in the paper).
package virgil

import (
	"sync/atomic"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/nautilus"
)

// Runtime is the minimal interface CCK-generated code needs.
type Runtime interface {
	// Start brings up the worker fleet; tc is a running thread context.
	Start(tc exec.TC)
	// Submit hands an immediately-ready task to the runtime.
	Submit(tc exec.TC, fn func(exec.TC))
	// SubmitBatch hands a whole group of ready tasks to the runtime in
	// one operation — what CCK's generated code does at the head of a
	// parallel region, so the submitting thread does not interleave
	// with already-running tasks.
	SubmitBatch(tc exec.TC, fns []func(exec.TC))
	// Stop drains outstanding tasks and shuts the workers down.
	Stop(tc exec.TC)
	// Workers returns the worker count.
	Workers() int
}

// --- User-level VIRGIL ---

// User is the user-level VIRGIL: n worker threads sharing one queue,
// blocking on a futex word when idle.
type User struct {
	n       int
	queue   []func(exec.TC)
	qlock   chan struct{} // 1-token structural lock (layer-agnostic)
	pending exec.Word
	stop    exec.Word
	workers []exec.Handle

	// Executed counts completed tasks.
	Executed atomic.Int64
}

// NewUser creates a user-level VIRGIL with n workers.
func NewUser(n int) *User {
	u := &User{n: n, qlock: make(chan struct{}, 1)}
	u.qlock <- struct{}{}
	return u
}

// Workers returns the worker count.
func (u *User) Workers() int { return u.n }

// Start spawns the worker threads, bound round-robin to CPUs.
func (u *User) Start(tc exec.TC) {
	ncpu := tc.NumCPUs()
	for i := 0; i < u.n; i++ {
		h := tc.Spawn("virgil-user", i%ncpu, u.workerLoop)
		u.workers = append(u.workers, h)
	}
}

// Submit enqueues a ready task and wakes an idle worker.
func (u *User) Submit(tc exec.TC, fn func(exec.TC)) {
	c := tc.Costs()
	tc.Charge(c.MallocNS/2 + c.AtomicRMWNS)
	<-u.qlock
	u.queue = append(u.queue, fn)
	u.qlock <- struct{}{}
	u.pending.Add(1)
	// Wake one worker per submission: with a shared queue, waking only on
	// the empty→non-empty edge would leave all but one worker asleep
	// during a burst of submissions.
	tc.FutexWake(&u.pending, 1)
}

// SubmitBatch enqueues a group of ready tasks with a single charge and
// wakes enough workers to start draining it.
func (u *User) SubmitBatch(tc exec.TC, fns []func(exec.TC)) {
	if len(fns) == 0 {
		return
	}
	c := tc.Costs()
	tc.Charge(int64(len(fns)) * (c.MallocNS/2 + c.AtomicRMWNS))
	<-u.qlock
	u.queue = append(u.queue, fns...)
	u.qlock <- struct{}{}
	u.pending.Add(uint32(len(fns)))
	n := len(fns)
	if n > u.n {
		n = u.n
	}
	tc.FutexWake(&u.pending, n)
}

func (u *User) pop() func(exec.TC) {
	<-u.qlock
	defer func() { u.qlock <- struct{}{} }()
	if len(u.queue) == 0 {
		return nil
	}
	fn := u.queue[0]
	copy(u.queue, u.queue[1:])
	u.queue[len(u.queue)-1] = nil
	u.queue = u.queue[:len(u.queue)-1]
	u.pending.Add(^uint32(0))
	return fn
}

// stopBit is folded into the pending word so that a Stop between a
// worker's emptiness check and its futex wait changes the word value and
// defeats the lost-wakeup race.
const stopBit = uint32(1) << 31

func (u *User) workerLoop(tc exec.TC) {
	c := tc.Costs()
	for {
		if fn := u.pop(); fn != nil {
			tc.Charge(c.AtomicRMWNS)
			fn(tc)
			u.Executed.Add(1)
			continue
		}
		v := u.pending.Load()
		if v&^stopBit != 0 {
			continue // a task arrived between pop and the check
		}
		if v&stopBit != 0 {
			return
		}
		tc.FutexWait(&u.pending, v)
	}
}

// Stop shuts the workers down after the queue drains.
func (u *User) Stop(tc exec.TC) {
	u.stop.Store(1)
	u.pending.Add(stopBit)
	tc.FutexWake(&u.pending, -1)
	for _, h := range u.workers {
		h.Join(tc)
	}
	u.workers = nil
}

// --- Kernel-level VIRGIL ---

// Kernel is the kernel-level VIRGIL: a thin veneer over the Nautilus task
// system.
type Kernel struct {
	k    *nautilus.Kernel
	cpus []int
}

// NewKernel creates a kernel-level VIRGIL running on the given CPUs of a
// booted kernel.
func NewKernel(k *nautilus.Kernel, cpus []int) *Kernel {
	return &Kernel{k: k, cpus: cpus}
}

// Workers returns the worker count.
func (v *Kernel) Workers() int { return len(v.cpus) }

// Start brings up the kernel task workers.
func (v *Kernel) Start(tc exec.TC) { v.k.Tasks.Start(tc, v.cpus) }

// Submit hands a ready task to the kernel task system (round-robin CPU).
func (v *Kernel) Submit(tc exec.TC, fn func(exec.TC)) {
	v.k.Tasks.Submit(tc, -1, &nautilus.KTask{Fn: fn})
}

// SubmitBatch spreads a group of ready tasks across the per-CPU queues
// with a single submission charge.
func (v *Kernel) SubmitBatch(tc exec.TC, fns []func(exec.TC)) {
	tasks := make([]*nautilus.KTask, len(fns))
	for i, fn := range fns {
		tasks[i] = &nautilus.KTask{Fn: fn}
	}
	v.k.Tasks.SubmitBatch(tc, tasks)
}

// Stop drains and shuts down the kernel task workers.
func (v *Kernel) Stop(tc exec.TC) { v.k.Tasks.Stop(tc) }

// --- The compiler-side join helper ---

// Group is the landing-task counter CCK compiles into generated code: the
// runtime itself stays unaware of joins (§5.4). Done must be called once
// per task; Wait blocks the caller until the whole group has landed.
type Group struct {
	remaining exec.Word
	waiting   exec.Word
}

// NewGroup creates a group expecting n completions.
func NewGroup(n int) *Group {
	g := &Group{}
	g.remaining.Store(uint32(n))
	return g
}

// Done records one task completion, waking the landing code when the
// group is complete.
func (g *Group) Done(tc exec.TC) {
	if g.remaining.Add(^uint32(0)) == 0 && g.waiting.Load() == 1 {
		tc.FutexWake(&g.remaining, -1)
	}
}

// Wait blocks until every task in the group has called Done.
func (g *Group) Wait(tc exec.TC) {
	g.waiting.Store(1)
	for {
		n := g.remaining.Load()
		if n == 0 {
			return
		}
		tc.FutexWait(&g.remaining, n)
	}
}
