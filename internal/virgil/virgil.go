// Package virgil implements VIRGIL, the custom task-based run-time system
// that CCK-compiled code targets instead of libomp (§5). VIRGIL is
// deliberately tiny: it only runs tasks that are already independent and
// ready — "the compiler generates code such that all tasks that are
// handed to the runtime are immediately ready". Group joins are not the
// runtime's business; the compiler emits landing-task counters in the
// generated code.
//
// Two versions exist, as in the paper:
//
//   - User: builds on threads and futex-style blocking (the C++17/futex
//     version that runs on Linux, 620 LoC in the paper).
//   - Kernel: a thin veneer over the Nautilus task system, which operates
//     like Linux's SoftIRQ mechanism (550 LoC in the paper).
package virgil

import (
	"sync/atomic"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/nautilus"
	"github.com/interweaving/komp/internal/ompt"
)

// Runtime is the minimal interface CCK-generated code needs.
type Runtime interface {
	// Start brings up the worker fleet; tc is a running thread context.
	Start(tc exec.TC)
	// Submit hands an immediately-ready task to the runtime.
	Submit(tc exec.TC, fn func(exec.TC))
	// SubmitBatch hands a whole group of ready tasks to the runtime in
	// one operation — what CCK's generated code does at the head of a
	// parallel region, so the submitting thread does not interleave
	// with already-running tasks.
	SubmitBatch(tc exec.TC, fns []func(exec.TC))
	// Stop drains outstanding tasks and shuts the workers down.
	Stop(tc exec.TC)
	// Workers returns the worker count.
	Workers() int
}

// --- User-level VIRGIL ---

// utask is one queued task: the body plus its spine task id.
type utask struct {
	fn func(exec.TC)
	id uint64
}

// User is the user-level VIRGIL: n worker threads sharing one queue,
// blocking on a futex word when idle. The queue is a head-index ring:
// pop advances head instead of shifting the slice (the shift made a
// full drain O(n²)), and the enqueue path reclaims the popped prefix
// before it would grow the backing array.
type User struct {
	n       int
	queue   []utask
	head    int           // queue[head:] is live; the prefix is popped
	qlock   chan struct{} // 1-token structural lock (layer-agnostic)
	pending exec.Word
	stop    exec.Word
	workers []exec.Handle

	spine   *ompt.Spine
	taskSeq atomic.Uint64

	// Executed counts completed tasks.
	Executed atomic.Int64
}

// SetSpine attaches an instrumentation spine: Submit emits TaskCreate
// and the workers emit TaskSchedule/TaskComplete around every body.
// Must be called before Start.
func (u *User) SetSpine(sp *ompt.Spine) { u.spine = sp }

// NewUser creates a user-level VIRGIL with n workers.
func NewUser(n int) *User {
	u := &User{n: n, qlock: make(chan struct{}, 1)}
	u.qlock <- struct{}{}
	return u
}

// Workers returns the worker count.
func (u *User) Workers() int { return u.n }

// Start spawns the worker threads, bound round-robin to CPUs.
func (u *User) Start(tc exec.TC) {
	ncpu := tc.NumCPUs()
	for i := 0; i < u.n; i++ {
		worker := i
		h := tc.Spawn("virgil-user", i%ncpu, func(wtc exec.TC) {
			u.workerLoop(wtc, worker)
		})
		u.workers = append(u.workers, h)
	}
}

// newTask stamps a body with a task id and emits TaskCreate.
func (u *User) newTask(tc exec.TC, fn func(exec.TC)) utask {
	t := utask{fn: fn, id: u.taskSeq.Add(1)}
	if sp := u.spine; sp.Enabled(ompt.TaskCreate) {
		sp.Emit(ompt.Event{Kind: ompt.TaskCreate, Thread: int32(tc.CPU()),
			CPU: int32(tc.CPU()), TimeNS: tc.Now(), Obj: t.id})
	}
	return t
}

// enqueue appends tasks at the ring's tail; the caller holds qlock.
// When the append would grow the backing array while popped slots sit
// before head, the live region is slid down first — so the ring reuses
// its storage instead of leaking the drained prefix (Submit and
// SubmitBatch share this path).
func (u *User) enqueue(tasks ...utask) {
	if u.head > 0 && len(u.queue)+len(tasks) > cap(u.queue) {
		n := copy(u.queue, u.queue[u.head:])
		for i := n; i < len(u.queue); i++ {
			u.queue[i] = utask{}
		}
		u.queue = u.queue[:n]
		u.head = 0
	}
	u.queue = append(u.queue, tasks...)
}

// Submit enqueues a ready task and wakes an idle worker.
func (u *User) Submit(tc exec.TC, fn func(exec.TC)) {
	c := tc.Costs()
	tc.Charge(c.MallocNS/2 + c.AtomicRMWNS)
	t := u.newTask(tc, fn)
	<-u.qlock
	u.enqueue(t)
	u.qlock <- struct{}{}
	u.pending.Add(1)
	// Wake one worker per submission: with a shared queue, waking only on
	// the empty→non-empty edge would leave all but one worker asleep
	// during a burst of submissions.
	tc.FutexWake(&u.pending, 1)
}

// SubmitBatch enqueues a group of ready tasks with a single charge and
// wakes enough workers to start draining it.
func (u *User) SubmitBatch(tc exec.TC, fns []func(exec.TC)) {
	if len(fns) == 0 {
		return
	}
	c := tc.Costs()
	tc.Charge(int64(len(fns)) * (c.MallocNS/2 + c.AtomicRMWNS))
	tasks := make([]utask, len(fns))
	for i, fn := range fns {
		tasks[i] = u.newTask(tc, fn)
	}
	<-u.qlock
	u.enqueue(tasks...)
	u.qlock <- struct{}{}
	u.pending.Add(uint32(len(fns)))
	n := len(fns)
	if n > u.n {
		n = u.n
	}
	tc.FutexWake(&u.pending, n)
}

// pop takes the task at head, advancing the index — O(1), where the old
// copy-down shift made each pop O(n) and a full drain O(n²). A fully
// drained ring resets to its base so head never outruns the storage.
func (u *User) pop() (utask, bool) {
	<-u.qlock
	defer func() { u.qlock <- struct{}{} }()
	if u.head == len(u.queue) {
		return utask{}, false
	}
	t := u.queue[u.head]
	u.queue[u.head] = utask{}
	u.head++
	if u.head == len(u.queue) {
		u.queue = u.queue[:0]
		u.head = 0
	}
	u.pending.Add(^uint32(0))
	return t, true
}

// stopBit is folded into the pending word so that a Stop between a
// worker's emptiness check and its futex wait changes the word value and
// defeats the lost-wakeup race.
const stopBit = uint32(1) << 31

func (u *User) workerLoop(tc exec.TC, worker int) {
	c := tc.Costs()
	sp := u.spine
	for {
		if t, ok := u.pop(); ok {
			tc.Charge(c.AtomicRMWNS)
			if sp.Enabled(ompt.TaskSchedule) {
				sp.Emit(ompt.Event{Kind: ompt.TaskSchedule, Thread: int32(worker),
					CPU: int32(tc.CPU()), TimeNS: tc.Now(), Obj: t.id})
			}
			t.fn(tc)
			if sp.Enabled(ompt.TaskComplete) {
				sp.Emit(ompt.Event{Kind: ompt.TaskComplete, Thread: int32(worker),
					CPU: int32(tc.CPU()), TimeNS: tc.Now(), Obj: t.id})
			}
			u.Executed.Add(1)
			continue
		}
		v := u.pending.Load()
		if v&^stopBit != 0 {
			continue // a task arrived between pop and the check
		}
		if v&stopBit != 0 {
			return
		}
		tc.FutexWait(&u.pending, v)
	}
}

// Stop shuts the workers down after the queue drains.
func (u *User) Stop(tc exec.TC) {
	u.stop.Store(1)
	u.pending.Add(stopBit)
	tc.FutexWake(&u.pending, -1)
	for _, h := range u.workers {
		h.Join(tc)
	}
	u.workers = nil
}

// --- Kernel-level VIRGIL ---

// Kernel is the kernel-level VIRGIL: a thin veneer over the Nautilus task
// system.
type Kernel struct {
	k    *nautilus.Kernel
	cpus []int

	spine   *ompt.Spine
	taskSeq atomic.Uint64
}

// NewKernel creates a kernel-level VIRGIL running on the given CPUs of a
// booted kernel.
func NewKernel(k *nautilus.Kernel, cpus []int) *Kernel {
	return &Kernel{k: k, cpus: cpus}
}

// SetSpine attaches an instrumentation spine: submissions emit
// TaskCreate, and every body is wrapped to emit TaskSchedule and
// TaskComplete on the executing CPU. Must be called before Start.
func (v *Kernel) SetSpine(sp *ompt.Spine) { v.spine = sp }

// Workers returns the worker count.
func (v *Kernel) Workers() int { return len(v.cpus) }

// Start brings up the kernel task workers.
func (v *Kernel) Start(tc exec.TC) { v.k.Tasks.Start(tc, v.cpus) }

// newKTask builds the kernel task, emitting TaskCreate and wrapping the
// body with schedule/complete events when a spine is attached. Per-CPU
// kernel workers have no separate worker index; the bound CPU is the
// thread identity, as in the per-CPU SoftIRQ model.
func (v *Kernel) newKTask(tc exec.TC, fn func(exec.TC)) *nautilus.KTask {
	sp := v.spine
	if sp == nil {
		return &nautilus.KTask{Fn: fn}
	}
	id := v.taskSeq.Add(1)
	if sp.Enabled(ompt.TaskCreate) {
		sp.Emit(ompt.Event{Kind: ompt.TaskCreate, Thread: int32(tc.CPU()),
			CPU: int32(tc.CPU()), TimeNS: tc.Now(), Obj: id})
	}
	return &nautilus.KTask{Fn: func(wtc exec.TC) {
		if sp.Enabled(ompt.TaskSchedule) {
			sp.Emit(ompt.Event{Kind: ompt.TaskSchedule, Thread: int32(wtc.CPU()),
				CPU: int32(wtc.CPU()), TimeNS: wtc.Now(), Obj: id})
		}
		fn(wtc)
		if sp.Enabled(ompt.TaskComplete) {
			sp.Emit(ompt.Event{Kind: ompt.TaskComplete, Thread: int32(wtc.CPU()),
				CPU: int32(wtc.CPU()), TimeNS: wtc.Now(), Obj: id})
		}
	}}
}

// Submit hands a ready task to the kernel task system (round-robin CPU).
func (v *Kernel) Submit(tc exec.TC, fn func(exec.TC)) {
	v.k.Tasks.Submit(tc, -1, v.newKTask(tc, fn))
}

// SubmitBatch spreads a group of ready tasks across the per-CPU queues
// with a single submission charge.
func (v *Kernel) SubmitBatch(tc exec.TC, fns []func(exec.TC)) {
	tasks := make([]*nautilus.KTask, len(fns))
	for i, fn := range fns {
		tasks[i] = v.newKTask(tc, fn)
	}
	v.k.Tasks.SubmitBatch(tc, tasks)
}

// Stop drains and shuts down the kernel task workers.
func (v *Kernel) Stop(tc exec.TC) { v.k.Tasks.Stop(tc) }

// --- The compiler-side join helper ---

// Group is the landing-task counter CCK compiles into generated code: the
// runtime itself stays unaware of joins (§5.4). Done must be called once
// per task; Wait blocks the caller until the whole group has landed.
type Group struct {
	remaining exec.Word
	waiting   exec.Word
}

// NewGroup creates a group expecting n completions.
func NewGroup(n int) *Group {
	g := &Group{}
	g.remaining.Store(uint32(n))
	return g
}

// Done records one task completion, waking the landing code when the
// group is complete.
func (g *Group) Done(tc exec.TC) {
	if g.remaining.Add(^uint32(0)) == 0 && g.waiting.Load() == 1 {
		tc.FutexWake(&g.remaining, -1)
	}
}

// Wait blocks until every task in the group has called Done.
func (g *Group) Wait(tc exec.TC) {
	g.waiting.Store(1)
	for {
		n := g.remaining.Load()
		if n == 0 {
			return
		}
		tc.FutexWait(&g.remaining, n)
	}
}
