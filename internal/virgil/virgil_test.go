package virgil

import (
	"sync/atomic"
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/nautilus"
	"github.com/interweaving/komp/internal/sim"
)

func TestUserRunsAllTasks(t *testing.T) {
	for name, mk := range map[string]func() exec.Layer{
		"real": func() exec.Layer { return exec.NewRealLayer(8) },
		"sim": func() exec.Layer {
			return exec.NewSimLayer(sim.New(8, 1), exec.Costs{
				ThreadSpawnNS: 1000, MallocNS: 100, AtomicRMWNS: 20,
				FutexWaitEntryNS: 80, FutexWakeEntryNS: 80, FutexWakeLatencyNS: 200,
			})
		},
	} {
		t.Run(name, func(t *testing.T) {
			layer := mk()
			u := NewUser(6)
			var done atomic.Int64
			_, err := layer.Run(func(tc exec.TC) {
				u.Start(tc)
				g := NewGroup(500)
				for i := 0; i < 500; i++ {
					u.Submit(tc, func(tc exec.TC) {
						tc.Charge(100)
						done.Add(1)
						g.Done(tc)
					})
				}
				g.Wait(tc)
				u.Stop(tc)
			})
			if err != nil {
				t.Fatal(err)
			}
			if done.Load() != 500 {
				t.Fatalf("done = %d, want 500", done.Load())
			}
			if u.Executed.Load() != 500 {
				t.Fatalf("executed = %d", u.Executed.Load())
			}
		})
	}
}

func TestUserParallelismOnSim(t *testing.T) {
	layer := exec.NewSimLayer(sim.New(8, 1), exec.Costs{
		ThreadSpawnNS: 1000, FutexWakeLatencyNS: 200,
	})
	u := NewUser(8)
	elapsed, err := layer.Run(func(tc exec.TC) {
		u.Start(tc)
		g := NewGroup(8)
		for i := 0; i < 8; i++ {
			u.Submit(tc, func(tc exec.TC) {
				tc.Charge(1_000_000)
				g.Done(tc)
			})
		}
		g.Wait(tc)
		u.Stop(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	// 8 x 1ms tasks on 8 workers: ~1ms, certainly below 3ms.
	if elapsed > 3_000_000 {
		t.Fatalf("elapsed = %d; tasks did not run in parallel", elapsed)
	}
}

func TestGroupWaitBlocksUntilAllDone(t *testing.T) {
	layer := exec.NewSimLayer(sim.New(4, 1), exec.Costs{})
	u := NewUser(3)
	var doneAt, waitedAt int64
	_, err := layer.Run(func(tc exec.TC) {
		u.Start(tc)
		g := NewGroup(3)
		for i := 0; i < 3; i++ {
			d := int64((i + 1) * 1000)
			u.Submit(tc, func(tc exec.TC) {
				tc.Charge(d)
				if d == 3000 {
					doneAt = tc.Now()
				}
				g.Done(tc)
			})
		}
		g.Wait(tc)
		waitedAt = tc.Now()
		u.Stop(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if waitedAt < doneAt {
		t.Fatalf("Wait returned at %d before last task at %d", waitedAt, doneAt)
	}
}

func TestKernelVirgilOverTaskSystem(t *testing.T) {
	k := nautilus.Boot(nautilus.Config{Machine: machine.PHI(), Seed: 1})
	v := NewKernel(k, []int{1, 2, 3, 4})
	if v.Workers() != 4 {
		t.Fatal("workers")
	}
	var done atomic.Int64
	_, err := k.Layer.Run(func(tc exec.TC) {
		v.Start(tc)
		g := NewGroup(100)
		for i := 0; i < 100; i++ {
			v.Submit(tc, func(tc exec.TC) {
				tc.Charge(500)
				done.Add(1)
				g.Done(tc)
			})
		}
		g.Wait(tc)
		v.Stop(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if done.Load() != 100 {
		t.Fatalf("done = %d", done.Load())
	}
	if k.Tasks.Executed != 100 {
		t.Fatalf("kernel task system executed %d", k.Tasks.Executed)
	}
}

func TestKernelVirgilCheaperSubmitThanUserOnSameCosts(t *testing.T) {
	// The kernel task path avoids the user-level queue-lock/malloc path:
	// with identical cost tables, per-task overhead must be lower. This
	// is the "thin veneer over the kernel's task framework" claim (§6.2).
	costs := exec.Costs{MallocNS: 150, AtomicRMWNS: 25, FutexWaitEntryNS: 300,
		FutexWakeEntryNS: 300, FutexWakeLatencyNS: 1500}

	runUser := func() int64 {
		layer := exec.NewSimLayer(sim.New(4, 1), costs)
		u := NewUser(4)
		elapsed, err := layer.Run(func(tc exec.TC) {
			u.Start(tc)
			g := NewGroup(2000)
			for i := 0; i < 2000; i++ {
				u.Submit(tc, func(tc exec.TC) { tc.Charge(50); g.Done(tc) })
			}
			g.Wait(tc)
			u.Stop(tc)
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	runKernel := func() int64 {
		k := nautilus.Boot(nautilus.Config{Machine: machine.PHI(), Seed: 1,
			Costs: exec.Costs{MallocNS: 60, AtomicRMWNS: 20, FutexWaitEntryNS: 60,
				FutexWakeEntryNS: 60, FutexWakeLatencyNS: 400}})
		v := NewKernel(k, []int{0, 1, 2, 3})
		elapsed, err := k.Layer.Run(func(tc exec.TC) {
			v.Start(tc)
			g := NewGroup(2000)
			for i := 0; i < 2000; i++ {
				v.Submit(tc, func(tc exec.TC) { tc.Charge(50); g.Done(tc) })
			}
			g.Wait(tc)
			v.Stop(tc)
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	user, kernel := runUser(), runKernel()
	if kernel >= user {
		t.Fatalf("kernel VIRGIL (%d) must beat user VIRGIL (%d) on task overheads", kernel, user)
	}
}

func TestUserStopWithEmptyQueue(t *testing.T) {
	layer := exec.NewRealLayer(4)
	u := NewUser(4)
	_, err := layer.Run(func(tc exec.TC) {
		u.Start(tc)
		u.Stop(tc) // no tasks at all: must not hang
	})
	if err != nil {
		t.Fatal(err)
	}
}
