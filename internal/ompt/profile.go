package ompt

import (
	"fmt"
	"io"
	"sync"
)

// Profile is the per-construct profiler: a spine consumer that
// attributes time to fork/join, barriers, worksharing, locks, and
// tasking, per construct category. On the simulator the attributed
// times are virtual nanoseconds and the whole breakdown is a pure
// function of the seed — `kompbench -profile` relies on that to diff
// two runs byte-for-byte.
type Profile struct {
	mu sync.Mutex

	cat [catCount]catAcc

	// Per-worker open-interval state, keyed by (gid, thread): once
	// teams nest, the OpenMP thread number alone aliases across sibling
	// inner teams (each has a "thread 0"), and the region id alone is
	// not stable across a span — a pool worker's implicit-task end is
	// emitted after the join barrier, by which time a reused hot team
	// may already carry the next region's id. The physical-worker gid
	// is both unique and stable, so spans pair correctly. A worker
	// waits on at most one sync object at a time, so one open slot per
	// (worker, sync kind) suffices; work and task bodies nest, so
	// those are stacks.
	threads map[profKey]*threadProf
	// regionBegin is ParallelBegin's time per live region, read by
	// other threads' ImplicitTaskBegin to attribute fork latency.
	regionBegin map[regionKey]int64
	// regionLevel records each live region's nesting level so
	// ParallelEnd can attribute inner regions to catNested.
	regionLevel map[regionKey]int32
}

// profKey identifies one physical executing worker: Event.Gid when the
// emitter carries one (all OpenMP runtime events; unique per physical
// worker, stable across regions and levels), the bare thread id
// otherwise (gid 0: thread lifecycle, VIRGIL, CCK — emitters with no
// cross-region spans). The tenant id disambiguates workers of distinct
// runtimes sharing one pool: a pool worker keeps its gid across leases,
// so without the tenant a worker's spans from two tenants would
// interleave in one slot.
type profKey struct {
	gid, thread int32
	tenant      int32
}

// regionKey identifies one live parallel region. Region ids are scoped
// per runtime instance, so two tenants of a shared pool both have a
// region 1; the tenant id keeps their fork spans from colliding.
type regionKey struct {
	tenant int32
	region uint64
}

type threadProf struct {
	syncAt [8]int64 // SyncAcquire time, by Sync; -1 when closed
	work   []workOpen
	task   []int64
	implAt int64 // ImplicitTaskBegin time; -1 when closed
	born   int64 // ThreadBegin time
}

type workOpen struct {
	kind Work
	at   int64
}

// Category indices: fixed order, which is also the report order.
const (
	catRegion = iota
	catFork
	catImplicit
	catBarrier
	catLoopStatic
	catLoopDynamic
	catLoopGuided
	catSections
	catSingle
	catChunk
	catTaskCreate
	catTaskExec
	catTaskSteal
	catCritical
	catLock
	catOrdered
	catTaskwait
	catFutex
	catTaskDep
	catTaskgroup
	catThread
	catShrink
	// catNested double-counts regions at level >= 2 (their time is also
	// in catRegion); the row only appears once a run actually nests, so
	// non-nested reports are unchanged.
	catNested
	// Device offload categories; the rows only appear when a run
	// offloads, so host-only reports are unchanged.
	catDeviceInit
	catTarget
	catDataOp
	catCount
)

var catNames = [catCount]string{
	"parallel-region", "fork-dispatch", "implicit-task", "barrier-wait",
	"loop-static", "loop-dynamic", "loop-guided", "sections", "single",
	"chunk-dispatch", "task-create", "task-exec", "task-steal",
	"critical-wait", "lock-wait", "ordered-wait", "taskwait", "futex-wait",
	"task-dependence", "taskgroup-wait",
	"thread", "team-shrink",
	"nested-region",
	"device-init", "target-region", "data-op",
}

type catAcc struct {
	count   int64
	totalNS int64
}

func syncCat(s Sync) int {
	switch s {
	case SyncBarrier:
		return catBarrier
	case SyncCritical:
		return catCritical
	case SyncLock:
		return catLock
	case SyncOrdered:
		return catOrdered
	case SyncTaskwait:
		return catTaskwait
	case SyncFutex:
		return catFutex
	case SyncTaskgroup:
		return catTaskgroup
	}
	return -1
}

func workCat(w Work) int {
	switch w {
	case WorkLoopStatic:
		return catLoopStatic
	case WorkLoopDynamic:
		return catLoopDynamic
	case WorkLoopGuided:
		return catLoopGuided
	case WorkSections:
		return catSections
	case WorkSingle:
		return catSingle
	}
	return -1
}

// NewProfile creates a profiler and registers it on sp.
func NewProfile(sp *Spine) *Profile {
	p := &Profile{threads: map[profKey]*threadProf{},
		regionBegin: map[regionKey]int64{}, regionLevel: map[regionKey]int32{}}
	sp.On(p.consume,
		ThreadBegin, ThreadEnd,
		ParallelBegin, ParallelEnd,
		ImplicitTaskBegin, ImplicitTaskEnd,
		TaskCreate, TaskSchedule, TaskComplete, TaskSteal, TaskDependence,
		WorkBegin, WorkEnd, DispatchChunk,
		SyncAcquire, SyncAcquired,
		ShrinkTeam,
		DeviceInit, TargetEnd, DataOp)
	return p
}

func (p *Profile) thread(who profKey) *threadProf {
	tp := p.threads[who]
	if tp == nil {
		tp = &threadProf{implAt: -1}
		for i := range tp.syncAt {
			tp.syncAt[i] = -1
		}
		p.threads[who] = tp
	}
	return tp
}

func (p *Profile) add(cat int, ns int64) {
	p.cat[cat].count++
	p.cat[cat].totalNS += ns
}

func (p *Profile) consume(ev Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	tp := p.thread(profKey{ev.Gid, ev.Thread, ev.Tenant})
	rk := regionKey{ev.Tenant, ev.Region}
	switch ev.Kind {
	case ThreadBegin:
		tp.born = ev.TimeNS
	case ThreadEnd:
		p.add(catThread, ev.TimeNS-tp.born)
	case ParallelBegin:
		p.regionBegin[rk] = ev.TimeNS
		p.regionLevel[rk] = ev.Level
	case ParallelEnd:
		if t0, ok := p.regionBegin[rk]; ok {
			p.add(catRegion, ev.TimeNS-t0)
			if p.regionLevel[rk] > 1 {
				p.add(catNested, ev.TimeNS-t0)
			}
			delete(p.regionBegin, rk)
			delete(p.regionLevel, rk)
		}
	case ImplicitTaskBegin:
		if t0, ok := p.regionBegin[rk]; ok {
			p.add(catFork, ev.TimeNS-t0)
		}
		tp.implAt = ev.TimeNS
	case ImplicitTaskEnd:
		if tp.implAt >= 0 {
			p.add(catImplicit, ev.TimeNS-tp.implAt)
			tp.implAt = -1
		}
	case TaskCreate:
		p.add(catTaskCreate, 0)
	case TaskSchedule:
		tp.task = append(tp.task, ev.TimeNS)
	case TaskComplete:
		if n := len(tp.task); n > 0 {
			p.add(catTaskExec, ev.TimeNS-tp.task[n-1])
			tp.task = tp.task[:n-1]
		}
	case TaskSteal:
		p.add(catTaskSteal, 0)
	case TaskDependence:
		p.add(catTaskDep, 0)
	case WorkBegin:
		tp.work = append(tp.work, workOpen{kind: ev.Work, at: ev.TimeNS})
	case WorkEnd:
		if n := len(tp.work); n > 0 {
			o := tp.work[n-1]
			tp.work = tp.work[:n-1]
			if c := workCat(o.kind); c >= 0 {
				p.add(c, ev.TimeNS-o.at)
			}
		}
	case DispatchChunk:
		p.add(catChunk, 0)
	case SyncAcquire:
		if int(ev.Sync) < len(tp.syncAt) {
			tp.syncAt[ev.Sync] = ev.TimeNS
		}
	case SyncAcquired:
		if int(ev.Sync) < len(tp.syncAt) && tp.syncAt[ev.Sync] >= 0 {
			if c := syncCat(ev.Sync); c >= 0 {
				p.add(c, ev.TimeNS-tp.syncAt[ev.Sync])
			}
			tp.syncAt[ev.Sync] = -1
		}
	case ShrinkTeam:
		p.add(catShrink, 0)
	case DeviceInit:
		p.add(catDeviceInit, 0)
	case TargetEnd:
		// TargetEnd carries the kernel's device elapsed time in Arg0, so
		// no begin-pairing state is needed.
		p.add(catTarget, ev.Arg0)
	case DataOp:
		p.add(catDataOp, 0)
	}
}

// Report renders the breakdown: one row per construct category that
// occurred, in a fixed order, with count, total attributed time, and
// time per occurrence. The output is deterministic given a
// deterministic event stream.
func (p *Profile) Report(w io.Writer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(w, "%-16s %10s %14s %12s\n", "construct", "count", "total us", "us/op")
	for c := 0; c < catCount; c++ {
		a := p.cat[c]
		if a.count == 0 {
			continue
		}
		fmt.Fprintf(w, "%-16s %10d %14.3f %12.3f\n", catNames[c], a.count,
			float64(a.totalNS)/1e3, float64(a.totalNS)/1e3/float64(a.count))
	}
}

// Total returns the accumulated (count, total ns) of a category by its
// report name, for tests.
func (p *Profile) Total(name string) (int64, int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := 0; c < catCount; c++ {
		if catNames[c] == name {
			return p.cat[c].count, p.cat[c].totalNS
		}
	}
	return 0, 0
}
