package ompt

import (
	"strings"
	"testing"
)

func TestNilSpineIsSafeAndDisabled(t *testing.T) {
	var sp *Spine
	for k := Kind(0); k < KindCount; k++ {
		if sp.Enabled(k) {
			t.Errorf("nil spine reports %v enabled", k)
		}
	}
	sp.Emit(Event{Kind: ParallelBegin}) // must not panic
}

func TestSpineDispatchesOnlyRegisteredKinds(t *testing.T) {
	sp := NewSpine()
	var got []Kind
	sp.On(func(ev Event) { got = append(got, ev.Kind) }, WorkBegin, WorkEnd)
	if sp.Enabled(SyncAcquire) {
		t.Error("SyncAcquire enabled without a consumer")
	}
	if !sp.Enabled(WorkBegin) || !sp.Enabled(WorkEnd) {
		t.Error("registered kinds not enabled")
	}
	sp.Emit(Event{Kind: WorkBegin})
	sp.Emit(Event{Kind: SyncAcquire}) // nobody listens: dropped
	sp.Emit(Event{Kind: WorkEnd})
	if len(got) != 2 || got[0] != WorkBegin || got[1] != WorkEnd {
		t.Errorf("dispatched %v", got)
	}
}

func TestSpineOnWithoutKindsRegistersAll(t *testing.T) {
	sp := NewSpine()
	n := 0
	sp.On(func(Event) { n++ })
	for k := Kind(0); k < KindCount; k++ {
		if !sp.Enabled(k) {
			t.Fatalf("%v not enabled after blanket On", k)
		}
		sp.Emit(Event{Kind: k})
	}
	if n != int(KindCount) {
		t.Errorf("got %d events, want %d", n, KindCount)
	}
}

func TestRecorderPerThread(t *testing.T) {
	sp := NewSpine()
	r := NewRecorder(sp, WorkBegin, WorkEnd)
	sp.Emit(Event{Kind: WorkBegin, Thread: 0, TimeNS: 1})
	sp.Emit(Event{Kind: WorkBegin, Thread: 1, TimeNS: 2})
	sp.Emit(Event{Kind: WorkEnd, Thread: 0, TimeNS: 3})
	sp.Emit(Event{Kind: SyncAcquire, Thread: 0, TimeNS: 4}) // unregistered
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	per := r.PerThread()
	if len(per[0]) != 2 || len(per[1]) != 1 {
		t.Errorf("per-thread split: %d/%d", len(per[0]), len(per[1]))
	}
}

func TestProfileAttributesCategories(t *testing.T) {
	sp := NewSpine()
	p := NewProfile(sp)
	// One region: begin at 100, thread 0 implicit task at 150 (fork 50),
	// a barrier wait of 30 on thread 1, a static loop body of 200, end.
	sp.Emit(Event{Kind: ParallelBegin, Thread: 0, TimeNS: 100, Region: 1})
	sp.Emit(Event{Kind: ImplicitTaskBegin, Thread: 0, TimeNS: 150, Region: 1})
	sp.Emit(Event{Kind: WorkBegin, Work: WorkLoopStatic, Thread: 0, TimeNS: 200})
	sp.Emit(Event{Kind: WorkEnd, Work: WorkLoopStatic, Thread: 0, TimeNS: 400})
	sp.Emit(Event{Kind: SyncAcquire, Sync: SyncBarrier, Thread: 1, TimeNS: 500, Region: 1})
	sp.Emit(Event{Kind: SyncAcquired, Sync: SyncBarrier, Thread: 1, TimeNS: 530, Region: 1})
	sp.Emit(Event{Kind: ImplicitTaskEnd, Thread: 0, TimeNS: 600, Region: 1})
	sp.Emit(Event{Kind: ParallelEnd, Thread: 0, TimeNS: 700, Region: 1})

	check := func(name string, count, total int64) {
		t.Helper()
		c, ns := p.Total(name)
		if c != count || ns != total {
			t.Errorf("%s = (%d, %d), want (%d, %d)", name, c, ns, count, total)
		}
	}
	check("parallel-region", 1, 600)
	check("fork-dispatch", 1, 50)
	check("implicit-task", 1, 450)
	check("loop-static", 1, 200)
	check("barrier-wait", 1, 30)

	var b strings.Builder
	p.Report(&b)
	out := b.String()
	if !strings.Contains(out, "parallel-region") || !strings.Contains(out, "barrier-wait") {
		t.Errorf("report missing rows:\n%s", out)
	}
	if strings.Contains(out, "task-steal") {
		t.Errorf("report shows categories that never occurred:\n%s", out)
	}
}

// lockEv builds the acquire/acquired/release triple a lock emits.
func lockEv(k Kind, thread int32, obj uint64) Event {
	return Event{Kind: k, Sync: SyncLock, Thread: thread, Obj: obj}
}

func TestLockCheckDetectsInversion(t *testing.T) {
	sp := NewSpine()
	c := NewLockCheck(sp)
	// Thread 0: A then B. Thread 1: B then A.
	sp.Emit(lockEv(SyncAcquired, 0, 0xA))
	sp.Emit(lockEv(SyncAcquired, 0, 0xB))
	sp.Emit(lockEv(SyncRelease, 0, 0xB))
	sp.Emit(lockEv(SyncRelease, 0, 0xA))
	sp.Emit(lockEv(SyncAcquired, 1, 0xB))
	sp.Emit(lockEv(SyncAcquired, 1, 0xA))
	sp.Emit(lockEv(SyncRelease, 1, 0xA))
	sp.Emit(lockEv(SyncRelease, 1, 0xB))
	v := c.Violations()
	if len(v) == 0 {
		t.Fatal("inversion not detected")
	}
	found := false
	for _, s := range v {
		if strings.Contains(s, "inversion") || strings.Contains(s, "cycle") {
			found = true
		}
	}
	if !found {
		t.Errorf("violations lack inversion/cycle: %v", v)
	}
}

func TestLockCheckCleanDiscipline(t *testing.T) {
	sp := NewSpine()
	c := NewLockCheck(sp)
	// Both threads: A then B — consistent order; nested re-entry allowed.
	for _, th := range []int32{0, 1} {
		sp.Emit(lockEv(SyncAcquired, th, 0xA))
		sp.Emit(lockEv(SyncAcquired, th, 0xB))
		sp.Emit(lockEv(SyncAcquired, th, 0xB)) // nest-lock re-entry
		sp.Emit(lockEv(SyncRelease, th, 0xB))
		sp.Emit(lockEv(SyncRelease, th, 0xB))
		sp.Emit(lockEv(SyncRelease, th, 0xA))
	}
	if v := c.Violations(); len(v) != 0 {
		t.Errorf("clean discipline flagged: %v", v)
	}
}

func TestLockCheckReleaseWithoutHold(t *testing.T) {
	sp := NewSpine()
	c := NewLockCheck(sp)
	sp.Emit(lockEv(SyncRelease, 2, 0xC))
	v := c.Violations()
	if len(v) != 1 || !strings.Contains(v[0], "does not hold") {
		t.Errorf("violations = %v", v)
	}
}

func TestLockCheckBarrierDivergence(t *testing.T) {
	sp := NewSpine()
	c := NewLockCheck(sp)
	barrier := func(th int32) {
		sp.Emit(Event{Kind: SyncAcquire, Sync: SyncBarrier, Thread: th, Region: 7})
		sp.Emit(Event{Kind: SyncAcquired, Sync: SyncBarrier, Thread: th, Region: 7})
	}
	sp.Emit(Event{Kind: ParallelBegin, Thread: 0, Region: 7})
	sp.Emit(Event{Kind: ImplicitTaskBegin, Thread: 0, Region: 7})
	sp.Emit(Event{Kind: ImplicitTaskBegin, Thread: 1, Region: 7})
	barrier(0)
	barrier(0) // thread 0 passes two barriers, thread 1 only one
	barrier(1)
	sp.Emit(Event{Kind: ParallelEnd, Thread: 0, Region: 7})
	v := c.Violations()
	if len(v) != 1 || !strings.Contains(v[0], "divergence") {
		t.Errorf("violations = %v", v)
	}
}

func TestLockCheckShrunkThreadMayDiverge(t *testing.T) {
	sp := NewSpine()
	c := NewLockCheck(sp)
	sp.Emit(Event{Kind: ParallelBegin, Thread: 0, Region: 9})
	sp.Emit(Event{Kind: ImplicitTaskBegin, Thread: 0, Region: 9})
	sp.Emit(Event{Kind: ImplicitTaskBegin, Thread: 1, Region: 9})
	sp.Emit(Event{Kind: SyncAcquire, Sync: SyncBarrier, Thread: 0, Region: 9})
	sp.Emit(Event{Kind: SyncAcquire, Sync: SyncBarrier, Thread: 0, Region: 9})
	// Thread 1 was shrunk out after zero barriers.
	sp.Emit(Event{Kind: ShrinkTeam, Thread: 0, Region: 9, Arg0: 1})
	sp.Emit(Event{Kind: ParallelEnd, Thread: 0, Region: 9})
	if v := c.Violations(); len(v) != 0 {
		t.Errorf("shrunk thread flagged: %v", v)
	}
}

func TestEnumStrings(t *testing.T) {
	if ParallelBegin.String() == "" || SyncBarrier.String() == "" || WorkLoopStatic.String() == "" {
		t.Error("enum String() returned empty")
	}
	if s := SyncFutex.String(); s != "futex" {
		t.Errorf("SyncFutex = %q", s)
	}
}
