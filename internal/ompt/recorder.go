package ompt

import "sync"

// Recorder is the simplest spine consumer: it appends every event it
// sees to a buffer. Tests use it to compare event streams across
// layers; it is safe for concurrent emission on the real layer.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder creates a recorder and registers it on sp for the given
// kinds (all kinds when none given).
func NewRecorder(sp *Spine, kinds ...Kind) *Recorder {
	r := &Recorder{}
	sp.On(r.record, kinds...)
	return r
}

func (r *Recorder) record(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Events returns a copy of everything recorded so far.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// PerThread splits the recorded stream into per-thread subsequences,
// preserving emission order within each thread. Emission order within
// one thread is deterministic on both layers — that is the equivalence
// tests' invariant — while cross-thread interleaving is only
// deterministic on the simulator.
func (r *Recorder) PerThread() map[int32][]Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[int32][]Event{}
	for _, ev := range r.events {
		out[ev.Thread] = append(out[ev.Thread], ev)
	}
	return out
}
