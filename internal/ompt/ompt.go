// Package ompt is the runtime instrumentation spine of this repository,
// modeled on the OpenMP Tools interface (OMPT, OpenMP 5.x chapter 4): a
// single typed event taxonomy that every layer — the execution layers,
// the OpenMP runtime, VIRGIL, and the RTK/PIK/CCK environments — emits
// through, so one tool sees identical event streams whether the program
// runs on real goroutines or on the deterministic simulator.
//
// The spine is deliberately passive: it owns no buffer and spawns
// nothing. Consumers (the Chrome-trace emitter in internal/trace, the
// per-construct Profile, the LockCheck discipline checker, the test
// Recorder) register callbacks per event kind before the program runs;
// an emitting layer pays one nil check and one mask test when the spine
// is disabled, and never allocates. Callbacks run on the emitting
// thread, so consumers must be safe for concurrent use on the real
// layer; on the simulator only one proc runs at a time and every stream
// is deterministic.
package ompt

// Kind is an instrumentation event kind. The taxonomy follows OMPT's
// callback set: thread lifecycle, parallel regions, implicit and
// explicit tasks, worksharing dispatch, and synchronization regions,
// plus the two events this runtime adds for its resilience path (task
// steal as a first-class event, and team shrink).
type Kind uint8

// Event kinds and the OMPT callbacks they correspond to.
const (
	// ThreadBegin / ThreadEnd: an execution-layer thread starts or
	// exits (ompt_callback_thread_begin/end). Thread is the layer's
	// thread index, Obj its bound CPU.
	ThreadBegin Kind = iota
	ThreadEnd
	// ParallelBegin / ParallelEnd: a parallel region forks and joins
	// (ompt_callback_parallel_begin/end). Emitted by the encountering
	// thread; Region is the region id, Arg0 the requested team size.
	ParallelBegin
	ParallelEnd
	// ImplicitTaskBegin / ImplicitTaskEnd: one thread's implicit task
	// of a region (ompt_callback_implicit_task). Thread is the OpenMP
	// thread number.
	ImplicitTaskBegin
	ImplicitTaskEnd
	// TaskCreate: an explicit task is created
	// (ompt_callback_task_create). Obj is the task id.
	TaskCreate
	// TaskSchedule: a task body begins executing on Thread
	// (ompt_callback_task_schedule, prior_task_status=switch-in).
	TaskSchedule
	// TaskComplete: a task body finished (ompt_callback_task_schedule,
	// ompt_task_complete).
	TaskComplete
	// TaskSteal: a task was taken from another thread's deque (no OMPT
	// equivalent; Arg0 is the victim thread).
	TaskSteal
	// WorkBegin / WorkEnd: a worksharing construct — loop, sections,
	// single — is entered and left by Thread (ompt_callback_work). Work
	// carries the construct kind, Obj the per-thread construct
	// sequence, Arg0/Arg1 the iteration bounds.
	WorkBegin
	WorkEnd
	// DispatchChunk: one chunk of a worksharing loop is handed to
	// Thread (ompt_callback_dispatch). Arg0/Arg1 are the chunk bounds.
	DispatchChunk
	// SyncAcquire: Thread starts waiting on a synchronization object —
	// arrives at a barrier, requests a lock
	// (ompt_callback_mutex_acquire / sync_region begin).
	SyncAcquire
	// SyncAcquired: the wait is over — barrier released, lock held
	// (ompt_callback_mutex_acquired / sync_region end).
	SyncAcquired
	// SyncRelease: Thread releases the object
	// (ompt_callback_mutex_released).
	SyncRelease
	// ShrinkTeam: a worker was removed from the team by a CPU-offline
	// fault (this runtime's resilience extension; no OMPT equivalent).
	// Arg0 is the removed thread, Arg1 the live count after removal.
	ShrinkTeam
	// TaskDependence: a depend clause created an edge between two
	// sibling tasks (ompt_callback_task_dependence). Obj is the sink
	// (newly created) task id, Arg0 the source (predecessor) task id.
	TaskDependence
	// TaskgroupBegin / TaskgroupEnd: a taskgroup region opens and
	// closes (ompt_callback_sync_region with
	// ompt_sync_region_taskgroup). Obj is the group id; the wait at the
	// end additionally emits SyncAcquire/SyncAcquired with
	// SyncTaskgroup.
	TaskgroupBegin
	TaskgroupEnd
	// ThreadBind: the affinity subsystem bound a team worker to a CPU of
	// its assigned place (OMP_PLACES / OMP_PROC_BIND; the closest OMPT
	// analogue is the place info of ompt_callback_implicit_task). Thread
	// is the OpenMP thread number, Obj the assigned CPU, Arg0 the place
	// index (-1 when unplaced, e.g. proc_bind(false) migration), and
	// Arg1 the number of lower-numbered teammates already bound to the
	// same CPU — nonzero Arg1 is the oversubscription signal (more
	// threads than the binding's CPUs can hold one-per-CPU).
	ThreadBind
	// Cancel: a cancellation event (ompt_callback_cancel). Arg0 is the
	// construct kind cancelled (omp.CancelKind: parallel, for, sections,
	// taskgroup); Arg1 distinguishes the activation (0, emitted by the
	// thread that executed the cancel — Thread -1 when a region deadline
	// fired) from a discarded task body (1, Obj is the task id).
	Cancel
	// DeviceInit: a device was initialized on first use
	// (ompt_callback_device_initialize). Obj is the device number, Arg0
	// the compute-unit count, Arg1 the SIMT lanes per compute unit.
	DeviceInit
	// TargetBegin / TargetEnd: a target region — a kernel offloaded to a
	// device — starts and finishes from the host's point of view
	// (ompt_callback_target). Obj is the device number, Region the
	// target-region id; on TargetEnd Arg0 is the kernel's device elapsed
	// nanoseconds and Arg1 the distribute block count executed.
	TargetBegin
	TargetEnd
	// DataOp: one host↔device data operation — alloc, transfer, delete —
	// on the device's DMA engine (ompt_callback_target_data_op). Obj is
	// the device number, Arg0 the byte count, and Arg1 the operation:
	// 0 alloc, 1 host-to-device transfer, 2 device-to-host transfer,
	// 3 delete.
	DataOp

	// KindCount is the number of event kinds.
	KindCount
)

var kindNames = [KindCount]string{
	"thread-begin", "thread-end",
	"parallel-begin", "parallel-end",
	"implicit-task-begin", "implicit-task-end",
	"task-create", "task-schedule", "task-complete", "task-steal",
	"work-begin", "work-end", "dispatch-chunk",
	"sync-acquire", "sync-acquired", "sync-release",
	"team-shrink",
	"task-dependence", "taskgroup-begin", "taskgroup-end",
	"thread-bind", "cancel",
	"device-init", "target-begin", "target-end", "data-op",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// Sync identifies the synchronization construct of a Sync* event.
type Sync uint8

// Synchronization constructs.
const (
	SyncNone Sync = iota
	// SyncBarrier is an explicit or implicit team barrier (including
	// the barrier a reduction fuses its combine into).
	SyncBarrier
	// SyncCritical is a named critical section; Obj hashes the name.
	SyncCritical
	// SyncOrdered is the ordered construct's iteration turnstile.
	SyncOrdered
	// SyncLock is an omp_lock_t / omp_nest_lock_t; Obj is the lock id.
	SyncLock
	// SyncTaskwait is a taskwait region.
	SyncTaskwait
	// SyncFutex is a raw futex syscall (the PIK kernel-side view).
	SyncFutex
	// SyncTaskgroup is the wait at the end of a taskgroup region.
	SyncTaskgroup
)

var syncNames = []string{"none", "barrier", "critical", "ordered", "lock", "taskwait", "futex", "taskgroup"}

func (s Sync) String() string {
	if int(s) < len(syncNames) {
		return syncNames[s]
	}
	return "sync?"
}

// Work identifies the worksharing construct of a Work* event.
type Work uint8

// Worksharing constructs.
const (
	WorkNone Work = iota
	WorkLoopStatic
	WorkLoopDynamic
	WorkLoopGuided
	WorkSections
	WorkSingle
	// WorkLoopAffinity is the affinity-aware static loop schedule: chunks
	// are assigned by the worker's rank in place (CPU) order, so the
	// chunk→CPU mapping is stable across repeated loops over the same
	// range whatever permutation the binding policy dealt the thread ids.
	WorkLoopAffinity
)

var workNames = []string{"none", "loop-static", "loop-dynamic", "loop-guided", "sections", "single", "loop-affinity"}

func (w Work) String() string {
	if int(w) < len(workNames) {
		return workNames[w]
	}
	return "work?"
}

// Event is one instrumentation record. It is passed to callbacks by
// value and holds no pointers, so emitting never allocates and a
// consumer may retain events freely.
type Event struct {
	Kind Kind
	Sync Sync // meaningful on Sync* kinds
	Work Work // meaningful on Work* kinds
	// Thread is the emitting thread: the OpenMP thread number for
	// runtime events, the layer thread index for Thread* events, the
	// worker index for VIRGIL events.
	Thread int32
	// CPU is the thread's bound virtual CPU (-1 if unbound/unknown).
	CPU int32
	// TimeNS is the event time: virtual nanoseconds on the simulator,
	// wall-clock nanoseconds on the real layer.
	TimeNS int64
	// Region identifies the enclosing parallel region (0 outside any).
	Region uint64
	// Level is the nesting level of the emitting team (1 for a
	// top-level region, 2 for a region forked inside it, ...; 0 for
	// events outside any region, e.g. thread lifecycle). On
	// ParallelBegin/ParallelEnd, Obj additionally carries the enclosing
	// (ancestor) region id, 0 at top level.
	Level int32
	// Gid identifies the physical executing worker across regions and
	// nesting levels: the pool-worker id (>= 1) for leased workers, -1
	// for the encountering thread (which masters every team it forks,
	// at any level), 0 for emitters outside the OpenMP runtime. Unlike
	// (Region, Thread) it is stable across a region boundary, so
	// consumers pairing begin/end spans that straddle a join — a pool
	// worker emits its implicit-task end after the join barrier, by
	// which time the master may have re-forked the team under a new
	// region id — key on it.
	Gid int32
	// Tenant identifies the runtime instance that emitted the event when
	// several runtimes share one worker pool (the multi-tenant service):
	// tenant ids are >= 1, and 0 means the emitter is not a tenant (a
	// single-owner runtime, an execution layer, VIRGIL, CCK). Region ids
	// are scoped per tenant, so consumers correlating regions across a
	// shared stream must key on (Tenant, Region).
	Tenant int32
	// Obj identifies the construct instance: task id, lock id,
	// construct sequence number — scoped by Kind.
	Obj uint64
	// Arg0, Arg1 are kind-specific (team size, chunk bounds, victim).
	Arg0, Arg1 int64
}

// Callback receives one event on the emitting thread. It must not
// block on runtime synchronization (it runs inside the runtime's hot
// paths) and must be concurrency-safe on the real layer.
type Callback func(Event)

// Spine is a registry of callbacks per event kind. The zero value and
// the nil pointer are both valid, disabled spines. Registration must
// complete before the spine is handed to running threads; emission
// itself takes no lock.
type Spine struct {
	mask uint32
	cbs  [KindCount][]Callback
}

// NewSpine returns an empty spine.
func NewSpine() *Spine { return &Spine{} }

// On registers cb for the given kinds (all kinds when none given).
func (s *Spine) On(cb Callback, kinds ...Kind) *Spine {
	if len(kinds) == 0 {
		for k := Kind(0); k < KindCount; k++ {
			kinds = append(kinds, k)
		}
	}
	for _, k := range kinds {
		s.cbs[k] = append(s.cbs[k], cb)
		s.mask |= 1 << k
	}
	return s
}

// Enabled reports whether any callback is registered for kind k. It is
// the nil-safe fast-path guard every emit site uses: on a nil or empty
// spine it is one comparison and never allocates.
func (s *Spine) Enabled(k Kind) bool {
	return s != nil && s.mask&(1<<k) != 0
}

// Emit delivers ev to every callback registered for its kind, in
// registration order, on the calling thread. Callers normally guard
// with Enabled so the Event literal is not even constructed when the
// spine is disabled.
func (s *Spine) Emit(ev Event) {
	if s == nil {
		return
	}
	for _, cb := range s.cbs[ev.Kind] {
		cb(ev)
	}
}
