package ompt

import (
	"fmt"
	"sort"
	"sync"
)

// LockCheck is the lock-discipline checker: a spine consumer that
// asserts, over the observed event stream,
//
//   - lock-order consistency: the "held while acquiring" relation over
//     locks and critical sections stays acyclic (a cycle is a potential
//     deadlock even if this run did not hit it);
//   - release sanity: a thread only releases objects it holds;
//   - barrier convergence: within one parallel region every thread
//     that was not removed by a team shrink passes the same number of
//     barriers (an SPMD divergence is the classic OpenMP hang).
//
// It runs as a correctness tool in tests: attach it to the runtime's
// spine, run the workload, then assert Violations() is empty.
type LockCheck struct {
	mu sync.Mutex

	// held is keyed by (region, thread), not thread alone: with nested
	// parallelism two sibling inner teams each have a "thread 0", and
	// distinct (region, thread) pairs are distinct executing workers.
	// The order graph stays global — a potential deadlock spans teams.
	held  map[holder][]uint64        // per worker, in acquisition order
	order map[uint64]map[uint64]bool // held -> acquired edges

	regions map[uint64]*regionCheck

	violations []string
}

// holder identifies one executing worker: the OpenMP thread number is
// only unique within its region once teams nest.
type holder struct {
	region uint64
	thread int32
}

type regionCheck struct {
	barriers  map[int32]int
	removed   map[int32]bool
	cancelled bool
}

// lockKey folds the sync kind into the object id so critical sections
// and locks with colliding ids stay distinct.
func lockKey(s Sync, obj uint64) uint64 { return uint64(s)<<56 ^ obj }

// NewLockCheck creates a checker and registers it on sp.
func NewLockCheck(sp *Spine) *LockCheck {
	c := &LockCheck{
		held:    map[holder][]uint64{},
		order:   map[uint64]map[uint64]bool{},
		regions: map[uint64]*regionCheck{},
	}
	sp.On(c.consume,
		ParallelBegin, ParallelEnd, ImplicitTaskBegin,
		SyncAcquire, SyncAcquired, SyncRelease, ShrinkTeam, Cancel)
	return c
}

func (c *LockCheck) violatef(format string, args ...any) {
	c.violations = append(c.violations, fmt.Sprintf(format, args...))
}

func (c *LockCheck) region(id uint64) *regionCheck {
	r := c.regions[id]
	if r == nil {
		r = &regionCheck{barriers: map[int32]int{}, removed: map[int32]bool{}}
		c.regions[id] = r
	}
	return r
}

func (c *LockCheck) consume(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch ev.Kind {
	case ParallelBegin:
		c.region(ev.Region)
	case ImplicitTaskBegin:
		r := c.region(ev.Region)
		if _, ok := r.barriers[ev.Thread]; !ok {
			r.barriers[ev.Thread] = 0
		}
	case SyncAcquire:
		// Barriers are counted at arrival, not release: every arrival
		// happens-before the join barrier completes, so by the time
		// ParallelEnd is emitted all counts are final — the release-side
		// SyncAcquired may land after ParallelEnd on the real layer.
		if ev.Sync == SyncBarrier {
			if r := c.regions[ev.Region]; r != nil {
				r.barriers[ev.Thread]++
			}
		}
	case SyncAcquired:
		switch ev.Sync {
		case SyncLock, SyncCritical:
			k := lockKey(ev.Sync, ev.Obj)
			who := holder{ev.Region, ev.Thread}
			for _, h := range c.held[who] {
				if h == k {
					continue // re-entry (nest lock): no self edge
				}
				if c.order[k][h] {
					c.violatef("lock-order inversion: %s %#x acquired while holding %#x, elsewhere the reverse", ev.Sync, ev.Obj, h)
				}
				if c.order[h] == nil {
					c.order[h] = map[uint64]bool{}
				}
				c.order[h][k] = true
			}
			c.held[who] = append(c.held[who], k)
		}
	case SyncRelease:
		switch ev.Sync {
		case SyncLock, SyncCritical:
			k := lockKey(ev.Sync, ev.Obj)
			who := holder{ev.Region, ev.Thread}
			held := c.held[who]
			for i := len(held) - 1; i >= 0; i-- {
				if held[i] == k {
					c.held[who] = append(held[:i], held[i+1:]...)
					return
				}
			}
			c.violatef("thread %d released %s %#x it does not hold", ev.Thread, ev.Sync, ev.Obj)
		}
	case ShrinkTeam:
		c.region(ev.Region).removed[int32(ev.Arg0)] = true
	case Cancel:
		// A region may be cancelled by a deadline alarm racing the join
		// on the real layer: the event can land after ParallelEnd ended
		// the region, so an unknown region is ignored, not an error.
		if r := c.regions[ev.Region]; r != nil {
			r.cancelled = true
		}
	case ParallelEnd:
		r := c.regions[ev.Region]
		if r == nil {
			return
		}
		delete(c.regions, ev.Region)
		want, have := -1, false
		var ids []int
		for id := range r.barriers {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		if r.cancelled {
			// A cancelled region legitimately diverges: a thread that
			// observes the cancel early skips barriers teammates had
			// already arrived at. Convergence reduces to every surviving
			// thread reaching the region's join — at least one arrival.
			for _, id := range ids {
				if r.removed[int32(id)] {
					continue
				}
				if r.barriers[int32(id)] == 0 {
					c.violatef("cancelled region %d: thread %d never reached the join barrier", ev.Region, id)
				}
			}
			return
		}
		for _, id := range ids {
			if r.removed[int32(id)] {
				continue // shrunk out mid-region: allowed to diverge
			}
			n := r.barriers[int32(id)]
			if !have {
				want, have = n, true
				continue
			}
			if n != want {
				c.violatef("barrier divergence in region %d: thread %d passed %d barriers, thread %d passed %d",
					ev.Region, ids[0], want, id, n)
			}
		}
	}
}

// Violations returns every recorded violation, including lock-order
// cycles longer than two detected over the final held-while-acquiring
// graph, sorted for determinism. Empty means the discipline held.
func (c *LockCheck) Violations() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]string(nil), c.violations...)
	out = append(out, c.cyclesLocked()...)
	sort.Strings(out)
	return out
}

// cyclesLocked reports one violation per lock participating in a cycle
// of the order graph (DFS three-color walk in sorted key order).
func (c *LockCheck) cyclesLocked() []string {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[uint64]int{}
	var out []string
	var keys []uint64
	for k := range c.order {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var walk func(k uint64)
	walk = func(k uint64) {
		color[k] = grey
		var next []uint64
		for n := range c.order[k] {
			next = append(next, n)
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		for _, n := range next {
			switch color[n] {
			case grey:
				out = append(out, fmt.Sprintf("lock-order cycle through %#x and %#x", k, n))
			case white:
				walk(n)
			}
		}
		color[k] = black
	}
	for _, k := range keys {
		if color[k] == white {
			walk(k)
		}
	}
	return out
}
