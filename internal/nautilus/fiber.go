package nautilus

import (
	"fmt"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/sim"
)

// Fibers are Nautilus's third execution model next to threads and tasks
// (§3.3 lists "thread, fiber, task, synchronization, and interrupt
// models"): cooperatively-scheduled contexts multiplexed on one CPU,
// with creation and switch costs far below kernel threads — part of how
// an HRT grants a parallel runtime "more subtle control of concurrency".

// Fiber cost knobs (virtual ns).
const (
	// FiberSpawnNS is fiber creation: allocate a context, push to the
	// owner's ready queue. No scheduler interaction.
	FiberSpawnNS = 180
	// FiberSwitchNS is a cooperative switch: save/restore registers,
	// no privilege or stack-table changes.
	FiberSwitchNS = 45
)

// Fiber is a cooperative execution context.
type Fiber struct {
	ID   int
	proc *sim.Proc
	done exec.Word
	grp  *FiberGroup
}

// FiberCtx is the capability a fiber body runs with.
type FiberCtx struct {
	TC    exec.TC
	fiber *Fiber
}

// Yield cooperatively switches to the next runnable fiber on the CPU.
func (fc *FiberCtx) Yield() {
	fc.TC.Charge(FiberSwitchNS)
	if ph, ok := fc.TC.(exec.ProcHolder); ok {
		ph.Proc().Yield()
	}
}

// FiberGroup owns the fibers multiplexed on one CPU.
type FiberGroup struct {
	k      *Kernel
	cpu    int
	nextID int
	fibers []*Fiber
}

// NewFiberGroup creates a fiber group bound to a CPU.
func (k *Kernel) NewFiberGroup(cpu int) *FiberGroup {
	if cpu < 0 || cpu >= k.Machine.NumCPUs() {
		panic(fmt.Sprintf("nautilus: fiber group on CPU %d", cpu))
	}
	return &FiberGroup{k: k, cpu: cpu}
}

// Spawn creates a fiber running fn on the group's CPU. Creation is an
// order of magnitude cheaper than a kernel thread spawn; the fiber runs
// interleaved with its siblings through cooperative yields (and with
// whatever else the CPU runs, through the usual timeline).
func (g *FiberGroup) Spawn(tc exec.TC, fn func(*FiberCtx)) *Fiber {
	tc.Charge(FiberSpawnNS)
	g.nextID++
	f := &Fiber{ID: g.nextID, grp: g}
	layer := g.k.Layer
	start := int64(0)
	if ph, ok := tc.(exec.ProcHolder); ok {
		start = ph.Proc().Now()
	}
	f.proc = g.k.Sim.Go(fmt.Sprintf("fiber/%d.%d", g.cpu, f.ID), g.cpu, start, func(p *sim.Proc) {
		ftc := fiberTC(layer, p)
		fn(&FiberCtx{TC: ftc, fiber: f})
		f.done.Store(1)
		ftc.FutexWake(&f.done, -1)
	})
	g.fibers = append(g.fibers, f)
	return f
}

// fiberTC builds a thread context for a raw sim proc on the kernel's
// layer (fibers bypass the thread-spawn path entirely).
func fiberTC(layer *exec.SimLayer, p *sim.Proc) exec.TC {
	return layer.AdoptProc(p)
}

// Join blocks the caller until the fiber finishes.
func (f *Fiber) Join(tc exec.TC) {
	for f.done.Load() == 0 {
		tc.FutexWait(&f.done, 0)
	}
}

// JoinAll joins every fiber spawned in the group.
func (g *FiberGroup) JoinAll(tc exec.TC) {
	for _, f := range g.fibers {
		f.Join(tc)
	}
	g.fibers = g.fibers[:0]
}
