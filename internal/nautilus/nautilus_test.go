package nautilus

import (
	"sync/atomic"
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
)

func bootPHI(t *testing.T) *Kernel {
	t.Helper()
	return Boot(Config{Machine: machine.PHI(), Seed: 1})
}

func TestBootAllocatorsPerZone(t *testing.T) {
	k := Boot(Config{Machine: machine.XEON8(), Seed: 1})
	if len(k.Buddies) != 8 {
		t.Fatalf("buddies = %d, want one per DRAM zone (8)", len(k.Buddies))
	}
	k2 := bootPHI(t)
	if len(k2.Buddies) != 1 {
		t.Fatalf("PHI buddies = %d, want 1 (MCDRAM zone is CPU-less)", len(k2.Buddies))
	}
}

func TestIdentityPagingAtBoot(t *testing.T) {
	k := bootPHI(t)
	if k.AS.Policy != 0 { // memsim.Identity
		t.Fatal("kernel must identity-map")
	}
	if k.AS.PageSize != 1<<30 {
		t.Fatalf("page size = %d, want 1GiB (largest possible)", k.AS.PageSize)
	}
}

func TestFirstTouchConfig(t *testing.T) {
	k := Boot(Config{Machine: machine.XEON8(), Seed: 1, FirstTouch: true})
	if k.AS.PageSize != 2<<20 {
		t.Fatalf("first-touch page size = %d, want 2MiB (§6.3)", k.AS.PageSize)
	}
}

func TestEnvVars(t *testing.T) {
	k := bootPHI(t)
	k.Setenv("OMP_NUM_THREADS", "32")
	if v, ok := k.Getenv("OMP_NUM_THREADS"); !ok || v != "32" {
		t.Fatalf("getenv = %q %v", v, ok)
	}
	if n := k.ParseEnvInt("OMP_NUM_THREADS", 64); n != 32 {
		t.Fatalf("ParseEnvInt = %d, want 32", n)
	}
	if n := k.ParseEnvInt("MISSING", 7); n != 7 {
		t.Fatalf("default = %d, want 7", n)
	}
	if env := k.Environ(); len(env) != 1 || env[0] != "OMP_NUM_THREADS=32" {
		t.Fatalf("environ = %v", env)
	}
}

func TestSysconf(t *testing.T) {
	k := bootPHI(t)
	if n, err := k.Sysconf(ScNProcessorsOnln); err != nil || n != 64 {
		t.Fatalf("nproc = %d, %v", n, err)
	}
	if _, err := k.Sysconf("_SC_BOGUS"); err == nil {
		t.Fatal("unsupported sysconf key must error (limited key set)")
	}
}

func TestShellCommand(t *testing.T) {
	k := bootPHI(t)
	ran := false
	var gotArgs []string
	k.RegisterCommand("bt.B", func(tc exec.TC, k *Kernel, args []string) error {
		ran = true
		gotArgs = args
		return nil
	})
	_, err := k.Layer.Run(func(tc exec.TC) {
		if err := k.RunCommand(tc, "bt.B -n 8"); err != nil {
			t.Error(err)
		}
		if err := k.RunCommand(tc, "nope"); err == nil {
			t.Error("unknown command must fail")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran || len(gotArgs) != 2 || gotArgs[0] != "-n" {
		t.Fatalf("command ran=%v args=%v", ran, gotArgs)
	}
	if cmds := k.Commands(); len(cmds) != 1 || cmds[0] != "bt.B" {
		t.Fatalf("commands = %v", cmds)
	}
}

func TestKAllocChargesAndPlaces(t *testing.T) {
	k := Boot(Config{Machine: machine.XEON8(), Seed: 1,
		Costs: exec.Costs{MallocNS: 500}})
	_, err := k.Layer.Run(func(tc exec.TC) {
		r, err := k.KAlloc(tc, "buf", 1<<20, 30) // CPU 30 -> zone 1
		if err != nil {
			t.Error(err)
			return
		}
		if r.ZoneOfPage(0) != 1 {
			t.Errorf("zone = %d, want 1 (local to allocating CPU)", r.ZoneOfPage(0))
		}
		if tc.Now() < 500 {
			t.Errorf("malloc cost not charged: now=%d", tc.Now())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if k.Buddies[1].BytesLive != 1<<20 {
		t.Fatalf("zone 1 live = %d, want 1MiB", k.Buddies[1].BytesLive)
	}
}

func TestBootImageResident(t *testing.T) {
	k := Boot(Config{Machine: machine.PHI(), Seed: 1, BootImageBytes: 2 << 30})
	img := k.BootImage()
	if img == nil || img.ResidentPages() != img.Pages() {
		t.Fatal("boot image must be fully resident at boot (the MMIO-overlap hazard of §6.2)")
	}
	if k.Buddies[0].BytesLive < 2<<30 {
		t.Fatal("boot image must consume zone 0 memory")
	}
}

func TestHWTLSCloneAndIsolation(t *testing.T) {
	k := bootPHI(t)
	img := &TLSImage{Data: []byte{1, 2, 3}, BSSSize: 2}
	_, err := k.Layer.Run(func(tc exec.TC) {
		k.SetTLS(tc, img)
		if v, _ := k.TLSLoad(tc, 1); v != 2 {
			t.Errorf("TLS data not cloned: %d", v)
		}
		if v, _ := k.TLSLoad(tc, 4); v != 0 {
			t.Errorf("TBSS not zeroed: %d", v)
		}
		k.TLSStore(tc, 0, 99)
		h := tc.Spawn("child", 1, func(tc exec.TC) {
			k.SetTLS(tc, img)
			if v, _ := k.TLSLoad(tc, 0); v != 1 {
				t.Errorf("child TLS saw parent's write: %d (clone must isolate)", v)
			}
		})
		h.Join(tc)
		if v, _ := k.TLSLoad(tc, 0); v != 99 {
			t.Errorf("parent TLS lost its write: %d", v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTLSWithoutFSBase(t *testing.T) {
	k := bootPHI(t)
	_, err := k.Layer.Run(func(tc exec.TC) {
		if _, err := k.TLSLoad(tc, 0); err == nil {
			t.Error("TLS load without FSBASE must fail")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIRQSteering(t *testing.T) {
	k := bootPHI(t)
	k.IRQ.Register(&IRQHandler{Name: "nic", PathNS: 1000})
	_, err := k.Layer.Run(func(tc exec.TC) {
		if _, err := k.IRQ.Fire("nic", 5); err == nil {
			t.Error("unsteered CPU must not receive interrupts")
		}
		if _, err := k.IRQ.Fire("nic", 0); err != nil {
			t.Error(err)
		}
		k.IRQ.Steer(5)
		if _, err := k.IRQ.Fire("nic", 5); err != nil {
			t.Error(err)
		}
		if _, err := k.IRQ.Fire("nic", 0); err == nil {
			t.Error("re-steering must remove CPU 0")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := k.IRQ.Handler("nic")
	if h.Fires != 2 {
		t.Fatalf("fires = %d, want 2", h.Fires)
	}
}

func TestSSECorruptionWithoutLazyFPU(t *testing.T) {
	k := bootPHI(t)
	k.IRQ.Register(&IRQHandler{Name: "vec", PathNS: 500, UsesSSE: true})
	_, err := k.Layer.Run(func(tc exec.TC) {
		th := k.Thread(tc)
		th.FPU = FPUState{1, 2, 3, 4}
		tc.Charge(100)
		k.IRQ.Fire("vec", 0)
		if !th.FPUCorrupted {
			t.Error("SSE-using interrupt without lazy save must corrupt FPU state (§3.4)")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLazyFPUSavesAndIdentifiesOffender(t *testing.T) {
	k := bootPHI(t)
	k.LazyFPU = true
	k.IRQ.Register(&IRQHandler{Name: "vec", PathNS: 500, UsesSSE: true})
	_, err := k.Layer.Run(func(tc exec.TC) {
		th := k.Thread(tc)
		th.FPU = FPUState{1, 2, 3, 4}
		k.IRQ.Fire("vec", 0)
		if th.FPUCorrupted {
			t.Error("lazy FPU must preserve thread state")
		}
		if th.FPU != (FPUState{1, 2, 3, 4}) {
			t.Error("FPU registers changed despite lazy save")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if k.IRQ.LazySaves != 1 || k.IRQ.Offenders["vec"] != 1 {
		t.Fatalf("offender not identified: saves=%d offenders=%v", k.IRQ.LazySaves, k.IRQ.Offenders)
	}
}

func TestNoSSEAttributeSkipsSave(t *testing.T) {
	k := bootPHI(t)
	k.LazyFPU = true
	k.IRQ.Register(&IRQHandler{Name: "vec", PathNS: 500, UsesSSE: true, NoSSE: true})
	_, err := k.Layer.Run(func(tc exec.TC) {
		k.Thread(tc).FPU = FPUState{9, 9, 9, 9}
		k.IRQ.Fire("vec", 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if k.IRQ.LazySaves != 0 {
		t.Fatal("NoSSE handler must not trigger lazy saves (the fix of §3.4)")
	}
}

func TestRedZoneClobberAndISTTrampoline(t *testing.T) {
	// RTK case: code compiled -mno-red-zone is immune.
	k := bootPHI(t)
	k.IRQ.Register(&IRQHandler{Name: "tick", PathNS: 300})
	_, err := k.Layer.Run(func(tc exec.TC) {
		th := k.Thread(tc)
		th.UsesRedZone = false
		k.IRQ.Fire("tick", 0)
		if !th.RedZoneIntact {
			t.Error("-mno-red-zone code must survive on-stack interrupts")
		}
		// PIK binary compiled WITH red zone: clobbered without IST.
		th.UsesRedZone = true
		k.IRQ.Fire("tick", 0)
		if th.RedZoneIntact {
			t.Error("red-zone code must be clobbered without the IST trampoline")
		}
		// With the trampoline (PIK's configuration, §4.2) it survives.
		th.RedZoneIntact = true
		k.ISTTrampoline = true
		k.IRQ.Fire("tick", 0)
		if !th.RedZoneIntact {
			t.Error("IST trampoline must preserve the red zone")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTaskSystemRunsTasks(t *testing.T) {
	k := bootPHI(t)
	done := 0
	_, err := k.Layer.Run(func(tc exec.TC) {
		k.Tasks.Start(tc, []int{1, 2, 3})
		for i := 0; i < 30; i++ {
			k.Tasks.Submit(tc, -1, &KTask{Fn: func(tc exec.TC) {
				tc.Charge(100)
				done++
			}})
		}
		k.Tasks.Stop(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if done != 30 {
		t.Fatalf("executed %d tasks, want 30", done)
	}
	if k.Tasks.Executed != 30 || k.Tasks.Submitted != 30 {
		t.Fatalf("stats: %d/%d", k.Tasks.Executed, k.Tasks.Submitted)
	}
}

func TestTaskSystemStealsFromImbalance(t *testing.T) {
	k := bootPHI(t)
	_, err := k.Layer.Run(func(tc exec.TC) {
		k.Tasks.Start(tc, []int{1, 2})
		// Pile everything on CPU 1's queue; CPU 2's worker must steal.
		for i := 0; i < 40; i++ {
			k.Tasks.Submit(tc, 1, &KTask{Fn: func(tc exec.TC) { tc.Charge(5000) }})
		}
		k.Tasks.Stop(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if k.Tasks.Steals == 0 {
		t.Fatal("idle worker never stole despite imbalance")
	}
	if k.Tasks.Executed != 40 {
		t.Fatalf("executed = %d, want 40", k.Tasks.Executed)
	}
}

func TestNautilusNoiseOnlySteeredCPU(t *testing.T) {
	n := NewNautilusNoise(machine.PHI())
	k := bootPHI(t)
	rng := k.Sim.RNG()
	if end := n.Extend(rng, 3, 0, 1_000_000_000); end != 1_000_000_000 {
		t.Fatalf("unsteered CPU extended: %d", end)
	}
	end := n.Extend(rng, 0, 0, 1_000_000_000)
	if end <= 1_000_000_000 {
		t.Fatal("steered CPU must see residual interrupts over 1s")
	}
	// ~100 interrupts x 2us = ~200us on 1s: well under 0.1%.
	if end > 1_000_000_000+400_000 {
		t.Fatalf("noise too large: %d", end-1_000_000_000)
	}
}

func TestPeriodicIRQCancel(t *testing.T) {
	k := bootPHI(t)
	k.IRQ.Register(&IRQHandler{Name: "timer", PathNS: 100})
	cancel := k.IRQ.FirePeriodic("timer", 0, 1000)
	k.Sim.RunUntil(10_500)
	cancel()
	k.Sim.RunUntil(20_000)
	h, _ := k.IRQ.Handler("timer")
	if h.Fires != 10 {
		t.Fatalf("fires = %d, want 10 (cancelled after 10.5us)", h.Fires)
	}
}

func TestTaskSystemStealRaceAfterYield(t *testing.T) {
	// Regression: a steal candidate can be drained while the thief pays
	// the steal cost (the charge yields the simulated CPU). Large batch
	// counts with many workers reproduce the window.
	k := bootPHI(t)
	var done atomic.Int64
	_, err := k.Layer.Run(func(tc exec.TC) {
		k.Tasks.Start(tc, []int{1, 2, 3, 4, 5, 6, 7, 8})
		const n = 5000
		tasks := make([]*KTask, n)
		for i := range tasks {
			tasks[i] = &KTask{Fn: func(tc exec.TC) {
				tc.Charge(100)
				done.Add(1)
			}}
		}
		k.Tasks.SubmitBatch(tc, tasks)
		k.Tasks.Stop(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if done.Load() != 5000 {
		t.Fatalf("done = %d", done.Load())
	}
}
