package nautilus

import (
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
)

func TestFibersInterleaveOnOneCPU(t *testing.T) {
	k := bootPHI(t)
	var order []int
	_, err := k.Layer.Run(func(tc exec.TC) {
		g := k.NewFiberGroup(1)
		for i := 0; i < 3; i++ {
			i := i
			g.Spawn(tc, func(fc *FiberCtx) {
				for r := 0; r < 3; r++ {
					order = append(order, i)
					fc.TC.Charge(1000) // a work step longer than the spawn stagger
					fc.Yield()
				}
			})
		}
		g.JoinAll(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 9 {
		t.Fatalf("fibers ran %d steps, want 9", len(order))
	}
	// Cooperative yields interleave the fibers rather than running each
	// to completion.
	runToCompletion := true
	for i := 1; i < 3; i++ {
		if order[i] != order[0] {
			runToCompletion = false
		}
	}
	if runToCompletion {
		t.Fatalf("fibers did not interleave: %v", order)
	}
}

func TestFiberSpawnFarCheaperThanThread(t *testing.T) {
	k := Boot(Config{Machine: machine.PHI(), Seed: 1,
		Costs: exec.Costs{ThreadSpawnNS: 2200, FutexWaitEntryNS: 60, FutexWakeEntryNS: 60,
			FutexWakeLatencyNS: 300}})
	var fiberNS, threadNS int64
	_, err := k.Layer.Run(func(tc exec.TC) {
		g := k.NewFiberGroup(2)
		t0 := tc.Now()
		for i := 0; i < 50; i++ {
			g.Spawn(tc, func(fc *FiberCtx) {})
		}
		fiberNS = tc.Now() - t0
		g.JoinAll(tc)

		t0 = tc.Now()
		var hs []exec.Handle
		for i := 0; i < 50; i++ {
			hs = append(hs, tc.Spawn("th", 3, func(exec.TC) {}))
		}
		threadNS = tc.Now() - t0
		for _, h := range hs {
			h.Join(tc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fiberNS*5 > threadNS {
		t.Fatalf("fiber spawns (%dns) must be far cheaper than thread spawns (%dns)", fiberNS, threadNS)
	}
}

func TestFiberJoinWaitsForBody(t *testing.T) {
	k := bootPHI(t)
	var doneAt, joinedAt int64
	_, err := k.Layer.Run(func(tc exec.TC) {
		g := k.NewFiberGroup(1)
		f := g.Spawn(tc, func(fc *FiberCtx) {
			fc.TC.Charge(10_000)
			doneAt = fc.TC.Now()
		})
		f.Join(tc)
		joinedAt = tc.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if joinedAt < doneAt {
		t.Fatalf("join at %d before fiber finished at %d", joinedAt, doneAt)
	}
}
