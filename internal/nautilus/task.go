package nautilus

import (
	"fmt"

	"github.com/interweaving/komp/internal/exec"
)

// KTask is a unit of deferred work for the kernel task system.
type KTask struct {
	Name string
	Fn   func(tc exec.TC)
}

type cpuQueue struct {
	tasks []*KTask
	word  exec.Word // pending count, doubles as the futex word
}

// TaskSystem is the SoftIRQ-like per-CPU task framework (§2.1, §5: the
// kernel-level VIRGIL runtime "directly uses the kernel's internal task
// system, which operates similarly to the SoftIRQ mechanism in the Linux
// kernel"). Each participating CPU runs a worker that drains its queue;
// idle workers steal from the fullest remote queue.
type TaskSystem struct {
	k       *Kernel
	queues  []*cpuQueue
	workers []exec.Handle
	cpus    []int
	stop    bool
	stopW   exec.Word
	rr      int

	// Cost knobs (virtual ns). These are the "thin veneer" costs of the
	// kernel task path — far below a thread spawn.
	SubmitNS   int64
	DispatchNS int64
	StealNS    int64

	// Stats.
	Submitted int64
	Executed  int64
	Steals    int64
}

func newTaskSystem(k *Kernel) *TaskSystem {
	ts := &TaskSystem{
		k:          k,
		queues:     make([]*cpuQueue, k.Machine.NumCPUs()),
		SubmitNS:   90,
		DispatchNS: 60,
		StealNS:    250,
	}
	for i := range ts.queues {
		ts.queues[i] = &cpuQueue{}
	}
	return ts
}

// Start spawns one worker thread per given CPU. It must be called from a
// running thread context before Submit.
func (ts *TaskSystem) Start(tc exec.TC, cpus []int) {
	if len(ts.workers) > 0 {
		panic("nautilus: task system already started")
	}
	ts.stop = false
	ts.stopW.Store(0)
	ts.cpus = append([]int(nil), cpus...)
	for _, cpu := range cpus {
		cpu := cpu
		h := tc.Spawn(fmt.Sprintf("ktask/%d", cpu), cpu, func(wtc exec.TC) {
			ts.workerLoop(wtc, cpu)
		})
		ts.workers = append(ts.workers, h)
	}
}

// Submit enqueues a task for a CPU (-1 selects round-robin over the
// started worker CPUs) and wakes that CPU's worker.
func (ts *TaskSystem) Submit(tc exec.TC, cpu int, t *KTask) {
	if cpu < 0 {
		if len(ts.cpus) == 0 {
			panic("nautilus: Submit before Start")
		}
		cpu = ts.cpus[ts.rr%len(ts.cpus)]
		ts.rr++
	}
	tc.Charge(ts.SubmitNS)
	q := ts.queues[cpu]
	q.tasks = append(q.tasks, t)
	ts.Submitted++
	if q.word.Add(1) == 1 {
		tc.FutexWake(&q.word, 1)
	}
}

// SubmitBatch enqueues tasks round-robin across the started worker CPUs
// with one aggregate charge, then wakes every worker whose queue became
// non-empty. Unlike per-task Submit, the submitting thread does not
// interleave its charges with running tasks.
func (ts *TaskSystem) SubmitBatch(tc exec.TC, tasks []*KTask) {
	if len(tasks) == 0 {
		return
	}
	if len(ts.cpus) == 0 {
		panic("nautilus: SubmitBatch before Start")
	}
	tc.Charge(int64(len(tasks)) * ts.SubmitNS)
	// Wake order must be deterministic (map iteration is not): the wake
	// sequence decides which workers run first, and on the simulator that
	// ordering is part of the seed-pure virtual timeline.
	seen := map[int]bool{}
	var touched []int
	for _, t := range tasks {
		cpu := ts.cpus[ts.rr%len(ts.cpus)]
		ts.rr++
		q := ts.queues[cpu]
		q.tasks = append(q.tasks, t)
		q.word.Add(1)
		if !seen[cpu] {
			seen[cpu] = true
			touched = append(touched, cpu)
		}
	}
	ts.Submitted += int64(len(tasks))
	for _, cpu := range touched {
		tc.FutexWake(&ts.queues[cpu].word, 1)
	}
}

// Stop shuts the workers down and joins them.
func (ts *TaskSystem) Stop(tc exec.TC) {
	ts.stop = true
	ts.stopW.Store(1)
	for _, cpu := range ts.cpus {
		tc.FutexWake(&ts.queues[cpu].word, -1)
	}
	for _, h := range ts.workers {
		h.Join(tc)
	}
	ts.workers = nil
	ts.cpus = nil
}

func (ts *TaskSystem) pop(cpu int) *KTask {
	q := ts.queues[cpu]
	if len(q.tasks) == 0 {
		return nil
	}
	t := q.tasks[0]
	copy(q.tasks, q.tasks[1:])
	q.tasks[len(q.tasks)-1] = nil
	q.tasks = q.tasks[:len(q.tasks)-1]
	q.word.Add(^uint32(0))
	return t
}

// stealFrom finds the fullest remote queue and steals half its pending
// tasks (at least one), returning one to run immediately.
func (ts *TaskSystem) stealFrom(tc exec.TC, cpu int) *KTask {
	best, bestLen := -1, 1 // need at least 2 pending to be worth stealing
	for _, c := range ts.cpus {
		if c == cpu {
			continue
		}
		if n := len(ts.queues[c].tasks); n > bestLen {
			best, bestLen = c, n
		}
	}
	if best < 0 {
		return nil
	}
	tc.Charge(ts.StealNS)
	ts.Steals++
	victim := ts.queues[best]
	// The charge above yields the CPU: other workers may have drained
	// the victim in the meantime.
	if len(victim.tasks) == 0 {
		return nil
	}
	n := len(victim.tasks) / 2
	if n < 1 {
		n = 1
	}
	stolen := make([]*KTask, n)
	copy(stolen, victim.tasks[len(victim.tasks)-n:])
	victim.tasks = victim.tasks[:len(victim.tasks)-n]
	victim.word.Store(uint32(len(victim.tasks)))
	mine := ts.queues[cpu]
	mine.tasks = append(mine.tasks, stolen[1:]...)
	mine.word.Store(uint32(len(mine.tasks)))
	return stolen[0]
}

func (ts *TaskSystem) workerLoop(tc exec.TC, cpu int) {
	q := ts.queues[cpu]
	for {
		if t := ts.pop(cpu); t != nil {
			tc.Charge(ts.DispatchNS)
			t.Fn(tc)
			ts.Executed++
			continue
		}
		if t := ts.stealFrom(tc, cpu); t != nil {
			tc.Charge(ts.DispatchNS)
			t.Fn(tc)
			ts.Executed++
			continue
		}
		if ts.stop {
			return
		}
		tc.FutexWait(&q.word, 0)
	}
}

// QueueLen returns the pending count on a CPU's queue (for tests).
func (ts *TaskSystem) QueueLen(cpu int) int { return len(ts.queues[cpu].tasks) }
