package nautilus

import (
	"fmt"
	"sort"
)

// IRQHandler is a registered interrupt handler with a deterministic path
// length — one of Nautilus's predictability features (§2.1: "interrupt
// handler logic with deterministic path lengths").
type IRQHandler struct {
	Name   string
	PathNS int64
	// UsesSSE marks a handler whose code the compiler vectorized; firing
	// it clobbers the interrupted thread's vector registers unless the
	// kernel saves them (§3.4).
	UsesSSE bool
	// NoSSE is the attribute the paper added to offending handlers after
	// the lazy-save machinery identified them.
	NoSSE bool

	Fires int64
}

// IRQController models interrupt delivery: full steering (so interrupts
// can "largely be avoided on most hardware threads", §2.1), on-thread-
// stack delivery with red zone interaction (§3.1), optional IST
// trampoline copies (§4.2), and lazy FPU save/restore (§3.4).
type IRQController struct {
	k        *Kernel
	handlers map[string]*IRQHandler
	// steerMask[cpu] is true if the CPU may receive device interrupts.
	steerMask []bool

	// LazySaves counts lazy FPU save/restores; Offenders records which
	// handlers triggered them (the identification feature of §3.4).
	LazySaves int64
	Offenders map[string]int64
}

func newIRQController(k *Kernel) *IRQController {
	c := &IRQController{
		k:         k,
		handlers:  make(map[string]*IRQHandler),
		steerMask: make([]bool, k.Machine.NumCPUs()),
		Offenders: make(map[string]int64),
	}
	// Default steering: everything to CPU 0.
	c.steerMask[0] = true
	return c
}

// Register installs a handler.
func (c *IRQController) Register(h *IRQHandler) {
	if h.Name == "" {
		panic("nautilus: IRQ handler without name")
	}
	c.handlers[h.Name] = h
}

// Handler returns a registered handler.
func (c *IRQController) Handler(name string) (*IRQHandler, bool) {
	h, ok := c.handlers[name]
	return h, ok
}

// Handlers returns registered handler names, sorted.
func (c *IRQController) Handlers() []string {
	out := make([]string, 0, len(c.handlers))
	for n := range c.handlers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Steer restricts device interrupt delivery to the given CPUs.
func (c *IRQController) Steer(cpus ...int) {
	for i := range c.steerMask {
		c.steerMask[i] = false
	}
	for _, cpu := range cpus {
		c.steerMask[cpu] = true
	}
}

// Steerable reports whether a CPU accepts device interrupts.
func (c *IRQController) Steerable(cpu int) bool { return c.steerMask[cpu] }

// Fire delivers the named interrupt on a CPU at the current virtual time.
// It steals the handler's path length from the CPU timeline and applies
// the FPU and red zone interactions. It returns the total time consumed
// by the interrupt (path + FPU handling).
func (c *IRQController) Fire(name string, cpu int) (int64, error) {
	h, ok := c.handlers[name]
	if !ok {
		return 0, fmt.Errorf("nautilus: fire of unregistered IRQ %q", name)
	}
	if !c.steerMask[cpu] {
		return 0, fmt.Errorf("nautilus: IRQ %q not steered to CPU %d", name, cpu)
	}
	h.Fires++
	cost := h.PathNS

	victim := c.k.threadOnCPU(cpu)

	// FPU interaction (§3.4): Clang aggressively used SSE in interrupt
	// handlers; without management this corrupts the interrupted
	// thread's state. With LazyFPU the kernel saves/restores and records
	// the offender; with the NoSSE attribute the handler never touches
	// vector state.
	if h.UsesSSE && !h.NoSSE {
		if c.k.LazyFPU {
			c.LazySaves++
			c.Offenders[h.Name]++
			cost += 180 // save + restore of the vector file
		} else if victim != nil {
			victim.FPUCorrupted = true
			victim.FPU = FPUState{0xDEAD, 0xDEAD, 0xDEAD, 0xDEAD}
		}
	}

	// Red zone interaction: Nautilus handles interrupts on the current
	// thread's stack (§3.1), which clobbers unallocated red zone state
	// unless either the code was compiled -mno-red-zone (RTK) or the
	// kernel copies the frame past the red zone via IST (PIK, §4.2).
	if victim != nil && victim.UsesRedZone {
		if c.k.ISTTrampoline {
			cost += 60 // trampoline copy of the interrupt frame
		} else {
			victim.RedZoneIntact = false
		}
	}

	// Steal the time from the CPU's timeline.
	hw := c.k.Sim.CPU(cpu)
	now := c.k.Sim.Now()
	start := now
	if hw.FreeAt > start {
		start = hw.FreeAt
	}
	hw.FreeAt = start + cost
	return cost, nil
}

// FirePeriodic schedules the named interrupt to fire on a CPU every
// period nanoseconds until the returned cancel function is called. The
// periodic event keeps the simulator's queue non-empty, so callers
// driving the simulator with Run (rather than RunUntil) must cancel
// before expecting Run to return.
func (c *IRQController) FirePeriodic(name string, cpu int, period int64) (cancel func()) {
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		if _, err := c.Fire(name, cpu); err == nil {
			c.k.Sim.After(period, tick)
		}
	}
	c.k.Sim.After(period, tick)
	return func() { stopped = true }
}
