// Package nautilus implements the Nautilus-analogue kernel framework: the
// hybrid-runtime (HRT) substrate the paper builds RTK, PIK, and the
// kernel-level VIRGIL runtime on (§2.1). It provides:
//
//   - boot-time identity-mapped memory with the largest possible page
//     size, per-NUMA-zone buddy allocators, and no page faults;
//   - kernel threads bound to CPUs, with hardware-TLS (FSBASE) context
//     switching and lazy SSE/FPU save-restore across interrupts (§3.4);
//   - a steerable interrupt model with deterministic handler path lengths;
//   - a SoftIRQ-like per-CPU task system (the substrate for kernel-level
//     VIRGIL, §5);
//   - a kernel environment-variable mechanism and a sysconf() subset
//     (exactly the libomp dependencies §3.4 calls out);
//   - a shell whose commands are how an RTK application's main() enters
//     the kernel (§3.1).
package nautilus

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/memsim"
	"github.com/interweaving/komp/internal/sim"
)

// Sysconf keys (the subset libomp needs, §3.4).
const (
	ScNProcessorsOnln = "_SC_NPROCESSORS_ONLN"
	ScNProcessorsConf = "_SC_NPROCESSORS_CONF"
	ScPageSize        = "_SC_PAGESIZE"
	ScClkTck          = "_SC_CLK_TCK"
)

// Config configures a kernel boot.
type Config struct {
	Machine *machine.Machine
	Seed    int64
	// Sim, if non-nil, boots the kernel onto an existing simulator (the
	// multi-kernel configuration of §7: Nautilus sharing the machine
	// with another kernel). The kernel then only applies its noise model
	// to its own CPU set.
	Sim *sim.Sim
	// EQ selects the simulator event-queue algorithm when Boot creates
	// a fresh simulator (EQDefault: the KOMP_SIM_EQ ICV, wheel when
	// unset). Ignored when Sim is supplied.
	EQ sim.EQAlgo
	// CPUs restricts the kernel to a CPU subset (nil: all CPUs). The
	// scheduler, task system, and noise model honor it.
	CPUs []int
	// ZoneBudget caps the buddy allocator bytes per zone id (0: the
	// whole zone) — the space partitioning of a co-kernel deployment.
	ZoneBudget map[int]int64
	// Costs is the kernel primitive cost table (used by the exec layer).
	Costs exec.Costs
	// Noise is the interference model; nil means NautilusNoise with
	// default steering (all device interrupts to CPU 0).
	Noise sim.NoiseModel
	// FirstTouch enables first-touch allocation at 2 MiB granularity
	// instead of immediate allocation — the paper's 8XEON extension for
	// 24+ cores (§6.3).
	FirstTouch bool
	// BootImageBytes is the size of static data linked into the kernel
	// image (RTK/CCK gigabyte-size globals problem, §6.2). It is
	// resident at boot.
	BootImageBytes int64
	// AllocFail, if non-nil, is consulted on every KAlloc; returning true
	// fails that allocation with a caller-visible error (fault
	// injection: transient allocator exhaustion).
	AllocFail func() bool
}

// ShellCmd is a kernel shell command. In RTK the application's main() is
// converted into one of these (§3.1).
type ShellCmd func(tc exec.TC, k *Kernel, args []string) error

// Kernel is a booted Nautilus-analogue kernel.
type Kernel struct {
	Machine *machine.Machine
	Sim     *sim.Sim
	Layer   *exec.SimLayer
	// AS is the kernel's identity-mapped address space.
	AS *memsim.AddressSpace
	// Buddies holds the per-DRAM-zone buddy allocators.
	Buddies map[int]*memsim.BuddyAllocator
	// IRQ is the interrupt controller.
	IRQ *IRQController
	// Tasks is the SoftIRQ-like task system.
	Tasks *TaskSystem

	env        map[string]string
	shell      map[string]ShellCmd
	threads    map[int]*KThread // proc id -> kthread
	nextTID    int
	bootImg    *memsim.Region
	firstTouch bool
	allocFail  func() bool

	// InjectedAllocFails counts KAllocs failed by the AllocFail hook.
	InjectedAllocFails int64

	// CPUs is the kernel's CPU set (nil: the whole machine) — restricted
	// in multi-kernel configurations (§7).
	CPUs []int
	// BootNS is the modeled boot time of this kernel instance.
	BootNS int64

	// Features toggled by the RTK/PIK ports.
	LazyFPU       bool // lazy SSE save/restore on interrupts (§3.4)
	ISTTrampoline bool // PIK: copy interrupt frame past the red zone (§4.2)
}

// NumCPUs returns the kernel's CPU count (its subset in a multi-kernel
// configuration, the machine otherwise).
func (k *Kernel) NumCPUs() int {
	if len(k.CPUs) > 0 {
		return len(k.CPUs)
	}
	return k.Machine.NumCPUs()
}

// OwnsCPU reports whether the kernel's partition includes the CPU.
func (k *Kernel) OwnsCPU(cpu int) bool {
	if len(k.CPUs) == 0 {
		return true
	}
	for _, c := range k.CPUs {
		if c == cpu {
			return true
		}
	}
	return false
}

// BootCost models the specialized kernel's startup: a fixed firmware/
// init path plus per-CPU bringup plus boot-image placement — the
// "milliseconds" scale §7 compares to Linux process creation.
func BootCost(cpus int, imageBytes int64) int64 {
	const baseNS = 2_500_000 // 2.5 ms: early init, paging, IRQ setup
	const perCPUNS = 18_000  // INIT/SIPI + per-CPU state
	const perMBNS = 9_000    // image copy into place
	return baseNS + int64(cpus)*perCPUNS + imageBytes/(1<<20)*perMBNS
}

// Boot creates and boots a kernel — over a fresh simulator, or onto an
// existing one when Config.Sim is set (the multi-kernel deployment).
func Boot(cfg Config) *Kernel {
	if cfg.Machine == nil {
		panic("nautilus: Boot without machine")
	}
	s := cfg.Sim
	fresh := s == nil
	if fresh {
		s = sim.NewEQ(cfg.Machine.NumCPUs(), cfg.Seed, cfg.EQ)
	}
	noise := cfg.Noise
	if noise == nil {
		noise = NewNautilusNoise(cfg.Machine)
	}
	if fresh {
		s.SetNoise(noise)
	} else {
		// Shared machine: only this kernel's CPUs get its noise model.
		for _, c := range cfg.CPUs {
			s.CPU(c).Noise = noise
		}
	}

	// Identity paging with the largest possible page size; everything is
	// mapped at boot, so faults never occur (§2.1).
	pageSize := cfg.Machine.TLBs[len(cfg.Machine.TLBs)-1].PageSize
	place := memsim.PlaceLocal
	if cfg.FirstTouch {
		place = memsim.PlaceFirstTouch
		pageSize = 2 << 20 // first-touch at 2 MiB granularity (§6.3)
	}
	as := memsim.NewAddressSpace(cfg.Machine, memsim.Identity, pageSize, place, 0)

	k := &Kernel{
		Machine:    cfg.Machine,
		Sim:        s,
		AS:         as,
		Buddies:    make(map[int]*memsim.BuddyAllocator),
		env:        make(map[string]string),
		shell:      make(map[string]ShellCmd),
		threads:    make(map[int]*KThread),
		firstTouch: cfg.FirstTouch,
		allocFail:  cfg.AllocFail,
	}
	for _, z := range cfg.Machine.Zones {
		if z.Kind == machine.DRAM && len(z.CPUs) > 0 {
			budget := z.Bytes
			if b, ok := cfg.ZoneBudget[z.ID]; ok && b > 0 && b < budget {
				budget = b
			}
			b, err := memsim.NewBuddy(budget)
			if err != nil {
				// A zone whose budget cannot hold one block simply gets no
				// allocator: KAlloc on its CPUs reports "no allocator for
				// zone" instead of the whole boot crashing.
				continue
			}
			k.Buddies[z.ID] = b
		}
	}
	k.CPUs = append([]int(nil), cfg.CPUs...)
	k.BootNS = BootCost(k.NumCPUs(), cfg.BootImageBytes)
	if cfg.BootImageBytes > 0 {
		k.bootImg = as.Alloc("boot-image", cfg.BootImageBytes, 0)
		// The boot image is carved out of zone 0's allocator.
		if b := k.Buddies[0]; b != nil {
			b.Alloc(cfg.BootImageBytes)
		}
	}
	k.Layer = exec.NewSimLayer(s, cfg.Costs)
	k.Layer.SpawnHook = k.spawnHook
	k.IRQ = newIRQController(k)
	k.Tasks = newTaskSystem(k)
	return k
}

// BootImage returns the region holding statics linked into the kernel
// image, or nil.
func (k *Kernel) BootImage() *memsim.Region { return k.bootImg }

// --- Environment variables (general-purpose kernel mechanism, §3.4) ---

// Setenv sets a kernel environment variable.
func (k *Kernel) Setenv(key, val string) { k.env[key] = val }

// Getenv reads a kernel environment variable.
func (k *Kernel) Getenv(key string) (string, bool) {
	v, ok := k.env[key]
	return v, ok
}

// Environ returns the environment as sorted KEY=VALUE strings.
func (k *Kernel) Environ() []string {
	out := make([]string, 0, len(k.env))
	for kk, v := range k.env {
		out = append(out, kk+"="+v)
	}
	sort.Strings(out)
	return out
}

// --- sysconf (limited key set, §3.4) ---

// Sysconf returns the value for a supported sysconf key, or an error for
// unsupported keys (mirroring the limited in-kernel implementation).
func (k *Kernel) Sysconf(key string) (int64, error) {
	switch key {
	case ScNProcessorsOnln, ScNProcessorsConf:
		return int64(k.NumCPUs()), nil
	case ScPageSize:
		return int64(k.AS.PageSize), nil
	case ScClkTck:
		return 100, nil
	default:
		return 0, fmt.Errorf("nautilus: sysconf key %q not supported", key)
	}
}

// --- Kernel memory allocation (per-zone buddy allocators, §2.1) ---

// KAlloc allocates size bytes from the buddy allocator of the zone local
// to the given CPU, charging the allocator cost to tc. It returns a
// region in the kernel address space.
func (k *Kernel) KAlloc(tc exec.TC, name string, size int64, cpu int) (*memsim.Region, error) {
	zone := k.Machine.ZoneOf(cpu)
	b := k.Buddies[zone]
	if b == nil {
		return nil, fmt.Errorf("nautilus: no allocator for zone %d", zone)
	}
	if k.allocFail != nil && k.allocFail() {
		k.InjectedAllocFails++
		return nil, fmt.Errorf("nautilus: zone %d allocation of %d bytes failed (injected fault)", zone, size)
	}
	if _, ok := b.Alloc(size); !ok {
		return nil, fmt.Errorf("nautilus: zone %d out of memory for %d bytes", zone, size)
	}
	tc.Charge(tc.Costs().MallocNS)
	r := k.AS.Alloc(name, size, cpu)
	return r, nil
}

// --- Shell (§3.1: application main() becomes a shell command) ---

// RegisterCommand installs a shell command.
func (k *Kernel) RegisterCommand(name string, cmd ShellCmd) {
	k.shell[name] = cmd
}

// Commands returns the sorted names of registered shell commands.
func (k *Kernel) Commands() []string {
	out := make([]string, 0, len(k.shell))
	for name := range k.shell {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RunCommand parses and runs a shell command line on the calling thread.
func (k *Kernel) RunCommand(tc exec.TC, line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	cmd, ok := k.shell[fields[0]]
	if !ok {
		return fmt.Errorf("nautilus: unknown command %q", fields[0])
	}
	return cmd(tc, k, fields[1:])
}

// ParseEnvInt reads an integer-valued kernel environment variable with a
// default, the way the in-kernel libomp port reads OMP_NUM_THREADS.
func (k *Kernel) ParseEnvInt(key string, def int) int {
	if v, ok := k.env[key]; ok {
		if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil {
			return n
		}
	}
	return def
}

func (k *Kernel) spawnHook(tc exec.TC, cpu int) {
	// Every spawned proc becomes a kernel thread; the hook runs on the
	// parent, the thread registers itself on first context use.
	k.nextTID++
}
