package nautilus

import (
	"math/rand"

	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/sim"
)

// NautilusNoise is the interference model of the Nautilus environment:
// interrupts are fully steerable and "can largely be avoided on most
// hardware threads" (§2.1); there is no swapping, no page movement, no
// competing processes, and the kernel is tickless. Only the steered CPU
// (CPU 0) sees rare housekeeping interrupts with deterministic path
// lengths.
type NautilusNoise struct {
	// SteeredCPU receives the machine's residual interrupts.
	SteeredCPU int
	// IntervalNS is the mean interval between residual interrupts.
	IntervalNS int64
	// PathNS is the deterministic handler path length.
	PathNS int64
}

// NewNautilusNoise returns the default model for a machine.
func NewNautilusNoise(m *machine.Machine) *NautilusNoise {
	return &NautilusNoise{
		SteeredCPU: 0,
		IntervalNS: 10 * int64(sim.Millisecond),
		PathNS:     2 * int64(sim.Microsecond),
	}
}

// Extend implements sim.NoiseModel.
func (n *NautilusNoise) Extend(rng *rand.Rand, cpu int, start, d sim.Time) sim.Time {
	if cpu != n.SteeredCPU || n.IntervalNS <= 0 {
		return start + d
	}
	// Expected interrupts during the segment; fractional remainder is
	// resolved with a deterministic draw.
	exp := float64(d) / float64(n.IntervalNS)
	count := int64(exp)
	if rng.Float64() < exp-float64(count) {
		count++
	}
	return start + d + count*n.PathNS
}
