package nautilus

import (
	"fmt"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/sim"
)

// FPUState is a simulated SSE/AVX register file slice — enough state to
// demonstrate the corruption the paper debugged (§3.4: "SSE (and higher)
// floating point state being corrupted" by interrupt handlers).
type FPUState [4]uint64

// TLSImage is the template for a thread's TLS segment: initialized data
// (TDATA) plus zeroed TBSS. Thread launch clones it (§3.4: "Thread launch
// clones TLS data and BSS to complete the support").
type TLSImage struct {
	Data    []byte
	BSSSize int
}

// Instantiate clones the image into a fresh TLS block.
func (img *TLSImage) Instantiate() *TLSBlock {
	b := &TLSBlock{Data: make([]byte, len(img.Data)+img.BSSSize)}
	copy(b.Data, img.Data)
	return b
}

// TLSBlock is a thread's hardware-TLS block; in real Nautilus+RTK the
// FSBASE MSR points at it and %fs-relative accesses index into it.
type TLSBlock struct {
	Data []byte
}

// Load8 reads a byte at an %fs-relative offset.
func (b *TLSBlock) Load8(off int) byte { return b.Data[off] }

// Store8 writes a byte at an %fs-relative offset.
func (b *TLSBlock) Store8(off int, v byte) { b.Data[off] = v }

// KThread is a kernel thread: the Nautilus thread state that RTK's
// pthread compatibility layer wraps ("Within the kernel, a pthread thread
// is a variant of a kernel thread", §3.3).
type KThread struct {
	TID  int
	Name string

	// FSBase emulates the FSBASE MSR: the thread's hardware-TLS block.
	// Nautilus reserves %gs for per-CPU state, so only %fs is available
	// to the compiler (§3.4).
	FSBase *TLSBlock

	// FPU is the thread's live vector register state.
	FPU FPUState
	// FPUCorrupted is set when an SSE-using interrupt clobbered the
	// thread's registers without a save/restore.
	FPUCorrupted bool

	// RedZoneIntact is cleared when an interrupt ran on this thread's
	// stack inside the red zone window while the thread's code relied
	// on it.
	RedZoneIntact bool
	// UsesRedZone marks code compiled *with* red zone use (PIK binaries;
	// RTK code is compiled -mno-red-zone, §3.1).
	UsesRedZone bool

	proc *sim.Proc
}

// Thread returns (creating if necessary) the kernel thread object for the
// calling thread context. It panics if tc is not simulator-backed.
func (k *Kernel) Thread(tc exec.TC) *KThread {
	ph, ok := tc.(exec.ProcHolder)
	if !ok {
		panic("nautilus: thread context is not simulator-backed")
	}
	p := ph.Proc()
	if t, ok := p.Data.(*KThread); ok {
		return t
	}
	k.nextTID++
	t := &KThread{TID: k.nextTID, Name: p.Name, RedZoneIntact: true, proc: p}
	p.Data = t
	k.threads[p.ID] = t
	return t
}

// CurrentCPUThread returns the kernel thread currently associated with the
// given CPU's last dispatch, if any. The interrupt model uses it to find
// the FPU owner.
func (k *Kernel) threadOnCPU(cpu int) *KThread {
	// With 1:1 bound HPC threads the owner is the unique thread bound to
	// the CPU; scan the registry (small) for it.
	for _, t := range k.threads {
		if t.proc != nil && t.proc.CPUID() == cpu && t.proc.State() != sim.StateDone {
			return t
		}
	}
	return nil
}

// SetTLS installs a TLS block as the thread's FSBASE, charging the MSR
// write. This is what arch_prctl(ARCH_SET_FS) does in the PIK syscall
// layer and what RTK thread launch does after cloning the image.
func (k *Kernel) SetTLS(tc exec.TC, img *TLSImage) *TLSBlock {
	t := k.Thread(tc)
	t.FSBase = img.Instantiate()
	tc.Charge(tc.Costs().TLSAccessNS)
	return t.FSBase
}

// TLSLoad performs an %fs-relative load for the calling thread.
func (k *Kernel) TLSLoad(tc exec.TC, off int) (byte, error) {
	t := k.Thread(tc)
	if t.FSBase == nil {
		return 0, fmt.Errorf("nautilus: thread %d has no FSBASE", t.TID)
	}
	tc.Charge(tc.Costs().TLSAccessNS)
	return t.FSBase.Load8(off), nil
}

// TLSStore performs an %fs-relative store for the calling thread.
func (k *Kernel) TLSStore(tc exec.TC, off int, v byte) error {
	t := k.Thread(tc)
	if t.FSBase == nil {
		return fmt.Errorf("nautilus: thread %d has no FSBASE", t.TID)
	}
	tc.Charge(tc.Costs().TLSAccessNS)
	t.FSBase.Store8(off, v)
	return nil
}
