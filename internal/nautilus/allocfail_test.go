package nautilus

import (
	"strings"
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
)

// TestKAllocInjectedFailure: the AllocFail hook turns individual KAllocs
// into caller-visible errors; the allocator itself is untouched, so the
// next allocation succeeds (transient exhaustion, not corruption).
func TestKAllocInjectedFailure(t *testing.T) {
	calls := 0
	k := Boot(Config{Machine: machine.PHI(), Seed: 1,
		AllocFail: func() bool {
			calls++
			return calls == 1 // fail exactly the first allocation
		}})
	_, err := k.Layer.Run(func(tc exec.TC) {
		if _, aerr := k.KAlloc(tc, "doomed", 1<<20, 0); aerr == nil {
			t.Error("first KAlloc succeeded despite injected fault")
		} else if !strings.Contains(aerr.Error(), "injected fault") {
			t.Errorf("error = %v", aerr)
		}
		r, aerr := k.KAlloc(tc, "fine", 1<<20, 0)
		if aerr != nil || r == nil {
			t.Errorf("second KAlloc = %v, %v; want success", r, aerr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if k.InjectedAllocFails != 1 {
		t.Fatalf("InjectedAllocFails = %d, want 1", k.InjectedAllocFails)
	}
	// The failed allocation must not have touched the buddy allocator.
	if got := k.Buddies[0].Allocs; got != 1 {
		t.Fatalf("buddy allocs = %d, want only the successful one", got)
	}
}

// TestBootSkipsUnusableZoneBudget: a zone budget below one buddy block
// yields a kernel without that zone's allocator rather than a panic, and
// KAlloc on its CPUs reports the missing allocator.
func TestBootSkipsUnusableZoneBudget(t *testing.T) {
	k := Boot(Config{Machine: machine.PHI(), Seed: 1,
		ZoneBudget: map[int]int64{0: 512}}) // below the 4 KiB minimum block
	if k.Buddies[0] != nil {
		t.Fatal("unusable budget produced an allocator")
	}
	_, err := k.Layer.Run(func(tc exec.TC) {
		if _, aerr := k.KAlloc(tc, "x", 4096, 0); aerr == nil {
			t.Error("KAlloc on allocator-less zone succeeded")
		} else if !strings.Contains(aerr.Error(), "no allocator") {
			t.Errorf("error = %v", aerr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
