package memsim

import (
	"fmt"

	"github.com/interweaving/komp/internal/machine"
)

// PagingPolicy selects how virtual pages become resident.
type PagingPolicy int

// Paging policies.
const (
	// Identity maps every page at boot with the largest possible page
	// size — Nautilus's model (§2.1): no page faults, ever.
	Identity PagingPolicy = iota
	// Demand maps pages on first touch, charging a fault — the Linux
	// user-level model.
	Demand
)

func (p PagingPolicy) String() string {
	if p == Identity {
		return "identity"
	}
	return "demand"
}

// Placement selects how pages are assigned to NUMA zones.
type Placement int

// Placement policies.
const (
	// PlaceLocal assigns all pages to the allocating CPU's zone at
	// allocation time (Nautilus's immediate allocation).
	PlaceLocal Placement = iota
	// PlaceInterleave spreads pages round-robin over DRAM zones at
	// allocation time.
	PlaceInterleave
	// PlaceFirstTouch assigns each page to the zone of the first CPU
	// that touches it (Linux default, and Nautilus's 8XEON extension at
	// 2 MB granularity, §6.3).
	PlaceFirstTouch
)

func (p Placement) String() string {
	switch p {
	case PlaceLocal:
		return "local"
	case PlaceInterleave:
		return "interleave"
	default:
		return "first-touch"
	}
}

// Region is an allocated range of simulated memory.
type Region struct {
	Name     string
	Bytes    int64
	PageSize int64
	zones    []int16 // per page; -1 until placed
	resident []bool  // per page

	space *AddressSpace
}

// Pages returns the number of pages in the region.
func (r *Region) Pages() int { return len(r.zones) }

// ZoneOfPage returns the NUMA zone holding page i, or -1 if unplaced.
func (r *Region) ZoneOfPage(i int) int { return int(r.zones[i]) }

// ResidentPages returns how many pages are mapped.
func (r *Region) ResidentPages() int {
	n := 0
	for _, m := range r.resident {
		if m {
			n++
		}
	}
	return n
}

// AddressSpace is the per-environment view of memory: a paging policy, a
// page size, a placement policy, and fault accounting.
type AddressSpace struct {
	Machine   *machine.Machine
	Policy    PagingPolicy
	PageSize  int64
	Placement Placement

	// FaultCostNS is the cost of one minor page fault (trap, allocate,
	// zero, map). Zero under Identity paging.
	FaultCostNS float64

	regions    []*Region
	interleave int

	// Stats.
	Faults      int64
	FaultTimeNS float64
}

// NewAddressSpace creates an address space over m.
func NewAddressSpace(m *machine.Machine, policy PagingPolicy, pageSize int64, place Placement, faultCostNS float64) *AddressSpace {
	if pageSize < MinBlock {
		panic("memsim: page size below 4KiB")
	}
	if policy == Identity {
		faultCostNS = 0
	}
	return &AddressSpace{
		Machine:     m,
		Policy:      policy,
		PageSize:    pageSize,
		Placement:   place,
		FaultCostNS: faultCostNS,
	}
}

// Alloc creates a region of the given size. cpu is the allocating CPU,
// used for PlaceLocal. Under Identity paging all pages are resident (and
// placed, unless first-touch) immediately.
func (a *AddressSpace) Alloc(name string, bytes int64, cpu int) *Region {
	if bytes <= 0 {
		panic(fmt.Sprintf("memsim: Alloc(%q, %d)", name, bytes))
	}
	npages := int((bytes + a.PageSize - 1) / a.PageSize)
	r := &Region{
		Name:     name,
		Bytes:    bytes,
		PageSize: a.PageSize,
		zones:    make([]int16, npages),
		resident: make([]bool, npages),
		space:    a,
	}
	for i := range r.zones {
		r.zones[i] = -1
	}
	switch a.Placement {
	case PlaceLocal:
		z := int16(a.Machine.ZoneOf(cpu))
		for i := range r.zones {
			r.zones[i] = z
		}
	case PlaceInterleave:
		zones := a.Machine.DRAMZones()
		for i := range r.zones {
			r.zones[i] = int16(zones[a.interleave%len(zones)])
			a.interleave++
		}
	case PlaceFirstTouch:
		// zones assigned on touch
	}
	if a.Policy == Identity {
		for i := range r.resident {
			r.resident[i] = true
		}
	}
	a.regions = append(a.regions, r)
	return r
}

// Touch simulates cpu touching [off, off+bytes) of r, faulting unmapped
// pages in and applying first-touch placement. It returns the virtual
// nanoseconds of fault cost incurred.
func (a *AddressSpace) Touch(r *Region, cpu int, off, bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	first := int(off / r.PageSize)
	last := int((off + bytes - 1) / r.PageSize)
	if last >= len(r.resident) {
		last = len(r.resident) - 1
	}
	var cost float64
	zone := int16(a.Machine.ZoneOf(cpu))
	for i := first; i <= last; i++ {
		if r.zones[i] < 0 {
			r.zones[i] = zone
		}
		if !r.resident[i] {
			r.resident[i] = true
			a.Faults++
			cost += a.FaultCostNS
		}
	}
	a.FaultTimeNS += cost
	return cost
}

// TouchAll touches the entire region from cpu.
func (a *AddressSpace) TouchAll(r *Region, cpu int) float64 {
	return a.Touch(r, cpu, 0, r.Bytes)
}

// TouchSlice simulates the slice of the region a given thread touches in a
// block-partitioned parallel loop: thread tid of nthreads touches its
// contiguous 1/nthreads share. Used for first-touch initialization loops.
func (a *AddressSpace) TouchSlice(r *Region, cpu, tid, nthreads int) float64 {
	share := (r.Bytes + int64(nthreads) - 1) / int64(nthreads)
	off := int64(tid) * share
	if off >= r.Bytes {
		return 0
	}
	n := share
	if off+n > r.Bytes {
		n = r.Bytes - off
	}
	return a.Touch(r, cpu, off, n)
}

// RemoteFraction returns the fraction of r's placed pages that are remote
// to the given CPU. Unplaced pages are ignored.
func (a *AddressSpace) RemoteFraction(r *Region, cpu int) float64 {
	local := int16(a.Machine.ZoneOf(cpu))
	placed, remote := 0, 0
	for _, z := range r.zones {
		if z < 0 {
			continue
		}
		placed++
		if z != local {
			remote++
		}
	}
	if placed == 0 {
		return 0
	}
	return float64(remote) / float64(placed)
}

// Madvise promotes a demand-paged region to transparent huge pages (the
// MADV_HUGEPAGE path; both testbeds run with THP set to madvise, §2.2):
// already-resident small pages are collapsed into 2 MiB pages (khugepaged
// work, charged per collapsed page) and future faults map 2 MiB at a
// time. It returns the promotion cost in virtual ns and reports whether
// the region was promoted (identity-mapped and already-huge regions are
// left alone).
func (a *AddressSpace) Madvise(r *Region) (float64, bool) {
	const hugeSize = 2 << 20
	const collapseNSPerPage = 9000 // copy + remap of one 2 MiB page
	if a.Policy != Demand || r.PageSize >= hugeSize {
		return 0, false
	}
	ratio := int(hugeSize / r.PageSize)
	npages := (len(r.zones) + ratio - 1) / ratio
	zones := make([]int16, npages)
	resident := make([]bool, npages)
	var cost float64
	for i := range zones {
		zones[i] = -1
		// A huge page becomes resident (and owes collapse work) if any
		// of its small pages was resident; it inherits the zone of the
		// first placed small page.
		for j := i * ratio; j < (i+1)*ratio && j < len(r.zones); j++ {
			if r.resident[j] && !resident[i] {
				resident[i] = true
				cost += collapseNSPerPage
			}
			if zones[i] < 0 && r.zones[j] >= 0 {
				zones[i] = r.zones[j]
			}
		}
	}
	r.PageSize = hugeSize
	r.zones = zones
	r.resident = resident
	a.FaultTimeNS += cost
	return cost, true
}

// RemoteFractionSlice returns the fraction of placed pages in thread
// tid's block-partition slice of r that are remote to the given CPU —
// the locality a block-partitioned loop over first-touch data actually
// sees.
func (a *AddressSpace) RemoteFractionSlice(r *Region, cpu, tid, nthreads int) float64 {
	local := int16(a.Machine.ZoneOf(cpu))
	// Partition by byte range, then map to the covering pages: with huge
	// pages many threads share one page, and a page-index partition
	// would leave most threads with an empty slice.
	loB := int64(tid) * r.Bytes / int64(nthreads)
	hiB := int64(tid+1)*r.Bytes/int64(nthreads) - 1
	if hiB < loB {
		hiB = loB
	}
	lo := int(loB / r.PageSize)
	hi := int(hiB / r.PageSize)
	if hi >= len(r.zones) {
		hi = len(r.zones) - 1
	}
	placed, remote := 0, 0
	for i := lo; i <= hi; i++ {
		if r.zones[i] < 0 {
			continue
		}
		placed++
		if r.zones[i] != local {
			remote++
		}
	}
	if placed == 0 {
		return 0
	}
	return float64(remote) / float64(placed)
}

// ZoneSpread returns, for each DRAM zone id, the fraction of r's placed
// pages residing there.
func (a *AddressSpace) ZoneSpread(r *Region) map[int]float64 {
	counts := make(map[int]int)
	placed := 0
	for _, z := range r.zones {
		if z < 0 {
			continue
		}
		counts[int(z)]++
		placed++
	}
	out := make(map[int]float64, len(counts))
	if placed == 0 {
		return out
	}
	for z, c := range counts {
		out[z] = float64(c) / float64(placed)
	}
	return out
}
