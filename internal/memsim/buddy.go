// Package memsim implements the memory subsystem underneath both simulated
// kernels: a buddy-system allocator (Nautilus allocates from per-NUMA-zone
// buddy allocators, §2.1), page tables with identity-mapped and
// demand-paged policies, NUMA placement policies (immediate, interleaved,
// first-touch), and an analytic TLB model keyed to machine TLB reach.
package memsim

import (
	"fmt"
	"math/bits"
)

// MinBlock is the smallest buddy block (one 4 KiB page).
const MinBlock int64 = 4 << 10

// BuddyAllocator is a classic binary buddy allocator over a contiguous
// range of a memory zone. Offsets are relative to the zone base.
type BuddyAllocator struct {
	size     int64
	maxOrder int
	free     [][]int64     // free[order] = offsets of free blocks
	alloc    map[int64]int // offset -> order of live allocation
	inFree   map[int64]int // offset -> order of free block (for merge lookup)

	// Stats.
	Allocs, Frees int64
	BytesLive     int64
	PeakLive      int64
	Failures      int64
}

// NewBuddy creates a buddy allocator managing size bytes (rounded down to
// a multiple of MinBlock). It returns an error when the zone cannot hold
// even one minimum block — a misconfigured budget a kernel must surface,
// not crash on.
func NewBuddy(size int64) (*BuddyAllocator, error) {
	size = size / MinBlock * MinBlock
	if size < MinBlock {
		return nil, fmt.Errorf("memsim: buddy zone of %d bytes is smaller than the %d-byte minimum block", size, MinBlock)
	}
	maxOrder := 0
	for MinBlock<<maxOrder < size {
		maxOrder++
	}
	b := &BuddyAllocator{
		size:     size,
		maxOrder: maxOrder,
		free:     make([][]int64, maxOrder+1),
		alloc:    make(map[int64]int),
		inFree:   make(map[int64]int),
	}
	// Seed the free lists by greedily carving the zone into power-of-two
	// blocks (handles non-power-of-two zone sizes).
	off := int64(0)
	rem := size
	for rem >= MinBlock {
		o := b.maxOrder
		for MinBlock<<o > rem || off%(MinBlock<<o) != 0 {
			o--
		}
		b.pushFree(off, o)
		off += MinBlock << o
		rem -= MinBlock << o
	}
	return b, nil
}

// Size returns the number of bytes managed.
func (b *BuddyAllocator) Size() int64 { return b.size }

func (b *BuddyAllocator) pushFree(off int64, order int) {
	b.free[order] = append(b.free[order], off)
	b.inFree[off] = order
}

func (b *BuddyAllocator) popFree(order int) (int64, bool) {
	l := b.free[order]
	if len(l) == 0 {
		return 0, false
	}
	off := l[len(l)-1]
	b.free[order] = l[:len(l)-1]
	delete(b.inFree, off)
	return off, true
}

func (b *BuddyAllocator) removeFree(off int64, order int) bool {
	if o, ok := b.inFree[off]; !ok || o != order {
		return false
	}
	l := b.free[order]
	for i, x := range l {
		if x == off {
			l[i] = l[len(l)-1]
			b.free[order] = l[:len(l)-1]
			delete(b.inFree, off)
			return true
		}
	}
	return false
}

func orderFor(size int64) int {
	if size <= MinBlock {
		return 0
	}
	blocks := (size + MinBlock - 1) / MinBlock
	return bits.Len64(uint64(blocks - 1))
}

// BlockSize returns the actual byte size a request of size bytes occupies.
func BlockSize(size int64) int64 { return MinBlock << orderFor(size) }

// Alloc allocates a block of at least size bytes, returning its offset.
// ok is false if the zone cannot satisfy the request.
func (b *BuddyAllocator) Alloc(size int64) (offset int64, ok bool) {
	if size <= 0 {
		size = 1
	}
	want := orderFor(size)
	if want > b.maxOrder {
		b.Failures++
		return 0, false
	}
	// Find the smallest order ≥ want with a free block.
	o := want
	for o <= b.maxOrder {
		if len(b.free[o]) > 0 {
			break
		}
		o++
	}
	if o > b.maxOrder {
		b.Failures++
		return 0, false
	}
	off, _ := b.popFree(o)
	// Split down to the wanted order, freeing the upper buddies.
	for o > want {
		o--
		b.pushFree(off+MinBlock<<o, o)
	}
	b.alloc[off] = want
	b.Allocs++
	b.BytesLive += MinBlock << want
	if b.BytesLive > b.PeakLive {
		b.PeakLive = b.BytesLive
	}
	return off, true
}

// Free releases the block at offset, merging buddies upward.
func (b *BuddyAllocator) Free(offset int64) error {
	order, ok := b.alloc[offset]
	if !ok {
		return fmt.Errorf("memsim: free of unallocated offset %#x", offset)
	}
	delete(b.alloc, offset)
	b.Frees++
	b.BytesLive -= MinBlock << order
	for order < b.maxOrder {
		buddy := offset ^ (MinBlock << order)
		if buddy+MinBlock<<order > b.size {
			break
		}
		if !b.removeFree(buddy, order) {
			break
		}
		if buddy < offset {
			offset = buddy
		}
		order++
	}
	b.pushFree(offset, order)
	return nil
}

// FreeBytes returns the number of bytes currently free.
func (b *BuddyAllocator) FreeBytes() int64 {
	var total int64
	for o, l := range b.free {
		total += int64(len(l)) * (MinBlock << o)
	}
	return total
}

// LargestFree returns the size of the largest free block.
func (b *BuddyAllocator) LargestFree() int64 {
	for o := b.maxOrder; o >= 0; o-- {
		if len(b.free[o]) > 0 {
			return MinBlock << o
		}
	}
	return 0
}
