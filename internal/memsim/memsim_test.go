package memsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/interweaving/komp/internal/machine"
)

func mustBuddy(t *testing.T, size int64) *BuddyAllocator {
	t.Helper()
	b, err := NewBuddy(size)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBuddyRejectsTinyZone(t *testing.T) {
	for _, size := range []int64{0, 1, MinBlock - 1, -4096} {
		if b, err := NewBuddy(size); err == nil {
			t.Fatalf("NewBuddy(%d) = %v, want error", size, b)
		}
	}
	// Exactly one minimum block is the smallest legal zone.
	b, err := NewBuddy(MinBlock)
	if err != nil {
		t.Fatal(err)
	}
	if b.Size() != MinBlock {
		t.Fatalf("size = %d, want %d", b.Size(), MinBlock)
	}
}

func TestBuddyAllocFree(t *testing.T) {
	b := mustBuddy(t, 1<<20) // 1 MiB: 256 pages
	off, ok := b.Alloc(4096)
	if !ok {
		t.Fatal("alloc failed")
	}
	if err := b.Free(off); err != nil {
		t.Fatal(err)
	}
	if b.FreeBytes() != 1<<20 {
		t.Fatalf("free bytes = %d, want %d", b.FreeBytes(), 1<<20)
	}
	if b.LargestFree() != 1<<20 {
		t.Fatalf("largest free = %d, want full zone (buddies must merge)", b.LargestFree())
	}
}

func TestBuddySplitsAndMerges(t *testing.T) {
	b := mustBuddy(t, 64<<10) // 16 pages
	var offs []int64
	for i := 0; i < 16; i++ {
		off, ok := b.Alloc(4096)
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		offs = append(offs, off)
	}
	if _, ok := b.Alloc(4096); ok {
		t.Fatal("allocated beyond zone size")
	}
	if b.FreeBytes() != 0 {
		t.Fatalf("free bytes = %d, want 0", b.FreeBytes())
	}
	seen := map[int64]bool{}
	for _, off := range offs {
		if seen[off] {
			t.Fatalf("duplicate offset %#x", off)
		}
		seen[off] = true
		if err := b.Free(off); err != nil {
			t.Fatal(err)
		}
	}
	if b.LargestFree() != 64<<10 {
		t.Fatalf("largest free = %d after freeing all, want 64KiB", b.LargestFree())
	}
}

func TestBuddyRoundsToPowerOfTwo(t *testing.T) {
	if got := BlockSize(4097); got != 8192 {
		t.Fatalf("BlockSize(4097) = %d, want 8192", got)
	}
	if got := BlockSize(4096); got != 4096 {
		t.Fatalf("BlockSize(4096) = %d, want 4096", got)
	}
	if got := BlockSize(1); got != 4096 {
		t.Fatalf("BlockSize(1) = %d, want 4096", got)
	}
}

func TestBuddyDoubleFree(t *testing.T) {
	b := mustBuddy(t, 1<<20)
	off, _ := b.Alloc(8192)
	if err := b.Free(off); err != nil {
		t.Fatal(err)
	}
	if err := b.Free(off); err == nil {
		t.Fatal("double free not detected")
	}
}

func TestBuddyNonPowerOfTwoZone(t *testing.T) {
	b := mustBuddy(t, 3<<20) // 3 MiB: 2 MiB + 1 MiB blocks
	if b.FreeBytes() != 3<<20 {
		t.Fatalf("free = %d, want 3MiB", b.FreeBytes())
	}
	off, ok := b.Alloc(2 << 20)
	if !ok {
		t.Fatal("2MiB alloc failed")
	}
	if _, ok := b.Alloc(2 << 20); ok {
		t.Fatal("second 2MiB alloc should fail in 3MiB zone")
	}
	if _, ok := b.Alloc(1 << 20); !ok {
		t.Fatal("1MiB alloc should fit")
	}
	_ = off
}

// Property: after any sequence of allocs and frees, freeing everything
// restores the zone to one maximal free region and FreeBytes == Size.
func TestBuddyPropertyConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := mustBuddy(t, 1<<22) // 4 MiB
		live := map[int64]bool{}
		for i := 0; i < 300; i++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				size := int64(1 + rng.Intn(64*1024))
				if off, ok := b.Alloc(size); ok {
					if live[off] {
						return false // overlapping allocation
					}
					live[off] = true
				}
			} else {
				for off := range live {
					if b.Free(off) != nil {
						return false
					}
					delete(live, off)
					break
				}
			}
			if b.FreeBytes()+b.BytesLive != b.Size() {
				return false
			}
		}
		for off := range live {
			if b.Free(off) != nil {
				return false
			}
		}
		return b.FreeBytes() == b.Size() && b.LargestFree() == b.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityPagingNoFaults(t *testing.T) {
	m := machine.PHI()
	as := NewAddressSpace(m, Identity, 1<<30, PlaceLocal, 2000)
	r := as.Alloc("static", 512<<20, 0)
	if cost := as.TouchAll(r, 3); cost != 0 {
		t.Fatalf("identity paging charged %v fault ns", cost)
	}
	if as.Faults != 0 {
		t.Fatalf("identity paging recorded %d faults", as.Faults)
	}
	if r.ResidentPages() != r.Pages() {
		t.Fatal("identity paging must map everything at boot")
	}
}

func TestDemandPagingFaultsOncePerPage(t *testing.T) {
	m := machine.PHI()
	as := NewAddressSpace(m, Demand, 4096, PlaceFirstTouch, 1500)
	r := as.Alloc("heap", 40960, 0) // 10 pages
	cost := as.TouchAll(r, 0)
	if as.Faults != 10 {
		t.Fatalf("faults = %d, want 10", as.Faults)
	}
	if cost != 15000 {
		t.Fatalf("cost = %v, want 15000", cost)
	}
	if c := as.TouchAll(r, 0); c != 0 {
		t.Fatalf("re-touch charged %v", c)
	}
}

func TestFirstTouchPlacement(t *testing.T) {
	m := machine.XEON8()
	as := NewAddressSpace(m, Demand, 2<<20, PlaceFirstTouch, 1500)
	r := as.Alloc("grid", 8<<20, 0) // 4 huge pages
	// CPU 0 (zone 0) touches first half, CPU 30 (zone 1) second half.
	as.Touch(r, 0, 0, 4<<20)
	as.Touch(r, 30, 4<<20, 4<<20)
	if z := r.ZoneOfPage(0); z != 0 {
		t.Fatalf("page 0 zone = %d, want 0", z)
	}
	if z := r.ZoneOfPage(3); z != 1 {
		t.Fatalf("page 3 zone = %d, want 1", z)
	}
	if f := as.RemoteFraction(r, 0); f != 0.5 {
		t.Fatalf("remote fraction from cpu0 = %v, want 0.5", f)
	}
}

func TestImmediateLocalPlacement(t *testing.T) {
	m := machine.XEON8()
	as := NewAddressSpace(m, Identity, 2<<20, PlaceLocal, 0)
	r := as.Alloc("grid", 8<<20, 50) // allocated from CPU 50 (zone 2)
	for i := 0; i < r.Pages(); i++ {
		if r.ZoneOfPage(i) != 2 {
			t.Fatalf("page %d zone = %d, want 2 (immediate local)", i, r.ZoneOfPage(i))
		}
	}
	// From a remote CPU everything is remote: the paper's 8XEON problem.
	if f := as.RemoteFraction(r, 0); f != 1.0 {
		t.Fatalf("remote fraction = %v, want 1.0", f)
	}
}

func TestInterleavePlacement(t *testing.T) {
	m := machine.XEON8()
	as := NewAddressSpace(m, Identity, 2<<20, PlaceInterleave, 0)
	r := as.Alloc("grid", 16<<20, 0) // 8 pages over 8 zones
	spread := as.ZoneSpread(r)
	if len(spread) != 8 {
		t.Fatalf("interleave hit %d zones, want 8", len(spread))
	}
	for z, f := range spread {
		if f != 0.125 {
			t.Fatalf("zone %d fraction %v, want 0.125", z, f)
		}
	}
}

func TestTouchSliceCoversRegion(t *testing.T) {
	m := machine.PHI()
	as := NewAddressSpace(m, Demand, 4096, PlaceFirstTouch, 1000)
	r := as.Alloc("arr", 1<<20, 0)
	n := 7
	for tid := 0; tid < n; tid++ {
		as.TouchSlice(r, tid%64, tid, n)
	}
	if r.ResidentPages() != r.Pages() {
		t.Fatalf("resident %d/%d after all slices touched", r.ResidentPages(), r.Pages())
	}
}

func TestTLBOverhead(t *testing.T) {
	m := machine.PHI() // 4K TLB reach = 1MiB, 2M reach = 256MiB, 1G reach = 16GiB
	tm := TLBModel{Machine: m}
	if ov := tm.OverheadFraction(512<<10, 0.5, 4096); ov != 0 {
		t.Fatalf("in-reach working set overhead = %v, want 0", ov)
	}
	ov4k := tm.OverheadFraction(1<<30, 0.5, 4096)
	ov2m := tm.OverheadFraction(1<<30, 0.5, 2<<20)
	ov1g := tm.OverheadFraction(1<<30, 0.5, 1<<30)
	if !(ov4k > ov2m) {
		t.Fatalf("4K overhead %v must exceed 2M overhead %v", ov4k, ov2m)
	}
	if ov1g != 0 {
		t.Fatalf("1G pages cover 1GiB working set; overhead = %v, want 0", ov1g)
	}
	if ov4k > 0.5 {
		t.Fatalf("overhead %v exceeds pressure bound", ov4k)
	}
}

func TestBestPageSize(t *testing.T) {
	m := machine.PHI()
	tm := TLBModel{Machine: m}
	if got := tm.BestPageSize(8<<30, 0.5); got != 1<<30 {
		t.Fatalf("best page size for 8GiB = %d, want 1GiB", got)
	}
}

// Property: TLB overhead is monotonically non-increasing in page size and
// bounded by pressure.
func TestTLBPropertyMonotone(t *testing.T) {
	m := machine.XEON8()
	tm := TLBModel{Machine: m}
	f := func(wsKB uint32, pr uint8) bool {
		ws := int64(wsKB%4_000_000)*1024 + 4096
		pressure := float64(pr%101) / 100
		prev := 2.0
		for _, lvl := range m.TLBs {
			ov := tm.OverheadFraction(ws, pressure, lvl.PageSize)
			if ov < 0 || ov > pressure+1e-12 {
				return false
			}
			if ov > prev+1e-12 {
				return false
			}
			prev = ov
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMadvisePromotesToHugePages(t *testing.T) {
	m := machine.PHI()
	as := NewAddressSpace(m, Demand, 4096, PlaceFirstTouch, 1000)
	r := as.Alloc("heap", 8<<20, 0)
	as.Touch(r, 0, 0, 4<<20) // fault in the first half
	cost, ok := as.Madvise(r)
	if !ok || cost <= 0 {
		t.Fatalf("promotion: ok=%v cost=%v", ok, cost)
	}
	if r.PageSize != 2<<20 || r.Pages() != 4 {
		t.Fatalf("region now %d pages of %d bytes", r.Pages(), r.PageSize)
	}
	// First half resident (collapsed), second half still unmapped.
	if r.ResidentPages() != 2 {
		t.Fatalf("resident huge pages = %d, want 2", r.ResidentPages())
	}
	// Future faults are per huge page now.
	faults0 := as.Faults
	as.Touch(r, 0, 4<<20, 4<<20)
	if as.Faults-faults0 != 2 {
		t.Fatalf("huge faults = %d, want 2", as.Faults-faults0)
	}
	// TLB overhead drops with the larger page size.
	tm := TLBModel{Machine: m}
	if tm.OverheadFraction(1<<30, 0.5, 2<<20) >= tm.OverheadFraction(1<<30, 0.5, 4096) {
		t.Fatal("promotion must reduce translation overhead")
	}
}

func TestMadviseNoopOnIdentity(t *testing.T) {
	m := machine.PHI()
	as := NewAddressSpace(m, Identity, 1<<30, PlaceLocal, 0)
	r := as.Alloc("static", 4<<30, 0)
	if _, ok := as.Madvise(r); ok {
		t.Fatal("identity regions must not be 'promoted'")
	}
}
