package memsim

import "github.com/interweaving/komp/internal/machine"

// TLBModel estimates the fraction of a compute phase lost to address
// translation, given the phase's per-thread working set, its translation
// pressure (how often it changes pages: strided and random codes are high,
// streaming codes low), and the page size in use.
//
// The model is analytic rather than trace-driven: a working set fully
// covered by TLB reach misses only on first touch (≈0 steady-state); as
// the working set exceeds reach, the miss overhead approaches the phase's
// full translation pressure. This reproduces the behaviour the paper
// leans on (§2.1): identity-mapped huge pages make TLB misses "extremely
// rare... if the TLB entries can cover the physical address space, do not
// occur at all after startup".
type TLBModel struct {
	Machine *machine.Machine
}

// OverheadFraction returns the fraction of compute time lost to TLB
// misses and page walks for a phase with the given per-thread working set
// (bytes), translation pressure (0..1, the asymptotic fraction of time a
// translation-bound version of the phase would lose), and page size.
func (t TLBModel) OverheadFraction(workingSet int64, pressure float64, pageSize int64) float64 {
	if workingSet <= 0 || pressure <= 0 {
		return 0
	}
	tlb, ok := t.Machine.TLBFor(pageSize)
	if !ok {
		// Unknown page size: assume one entry per page with no caching
		// benefit beyond a single page.
		tlb = machine.TLB{PageSize: pageSize, Entries: 1}
	}
	reach := tlb.Reach()
	if reach >= workingSet {
		return 0
	}
	// Fraction of accesses whose page is not covered by the TLB, under a
	// uniform-reuse approximation.
	missing := float64(workingSet-reach) / float64(workingSet)
	return pressure * missing
}

// BestPageSize returns the machine page size that minimizes overhead for
// the working set (the "largest possible page size" rule Nautilus uses).
func (t TLBModel) BestPageSize(workingSet int64, pressure float64) int64 {
	best := int64(0)
	bestOv := -1.0
	for _, lvl := range t.Machine.TLBs {
		ov := t.OverheadFraction(workingSet, pressure, lvl.PageSize)
		if bestOv < 0 || ov < bestOv || (ov == bestOv && lvl.PageSize > best) {
			best, bestOv = lvl.PageSize, ov
		}
	}
	return best
}
