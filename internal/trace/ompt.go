package trace

import (
	"fmt"
	"sync"

	"github.com/interweaving/komp/internal/ompt"
)

// Attach registers the tracer as a consumer on sp: from then on every
// spine event stream — whichever layer or environment emits it — is
// folded into Chrome trace spans. Must be called before the spine is
// handed to running threads, like any consumer registration.
func Attach(t *Tracer, sp *ompt.Spine) {
	c := &consumer{
		t:       t,
		regions: map[uint64]regionOpen{},
		targets: map[uint64]int64{},
		threads: map[int32]*laneState{},
	}
	sp.On(c.consume,
		ompt.ThreadBegin, ompt.ThreadEnd,
		ompt.ParallelBegin, ompt.ParallelEnd,
		ompt.WorkBegin, ompt.WorkEnd,
		ompt.SyncAcquire, ompt.SyncAcquired,
		ompt.TaskCreate, ompt.TaskSchedule, ompt.TaskComplete,
		ompt.ShrinkTeam,
		ompt.DeviceInit, ompt.TargetBegin, ompt.TargetEnd, ompt.DataOp)
}

type regionOpen struct {
	at   int64
	args map[string]string // {"threads": n}, built once per region
}

// laneState is one thread lane's open-interval state.
type laneState struct {
	bornAt int64
	born   bool
	syncAt [8]int64 // SyncAcquire time by ompt.Sync; -1 when closed
	work   []int64  // WorkBegin time stack
	task   []int64  // TaskSchedule time stack
}

// consumer rebuilds spans from begin/end event pairs. One mutex guards
// the interval state; on the simulator callbacks are serial anyway, on
// the real layer the tracer was always lock-per-record.
type consumer struct {
	t  *Tracer
	mu sync.Mutex

	regions  map[uint64]regionOpen
	targets  map[uint64]int64 // open target regions: id -> begin time
	threads  map[int32]*laneState
	pending  int64 // tasks created and not yet completed
	devBytes int64 // cumulative host<->device transfer bytes
}

func (c *consumer) lane(id int32) *laneState {
	l := c.threads[id]
	if l == nil {
		l = &laneState{}
		for i := range l.syncAt {
			l.syncAt[i] = -1
		}
		c.threads[id] = l
	}
	return l
}

// workSpanName keeps the span names the tracer always used for loops.
func workSpanName(w ompt.Work) string {
	switch w {
	case ompt.WorkLoopStatic:
		return "for/static"
	case ompt.WorkLoopDynamic:
		return "for/dynamic"
	case ompt.WorkLoopGuided:
		return "for/guided"
	case ompt.WorkSections:
		return "sections"
	case ompt.WorkSingle:
		return "single"
	}
	return "work"
}

func (c *consumer) consume(ev ompt.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tid := int(ev.Thread)
	switch ev.Kind {
	case ompt.ThreadBegin:
		l := c.lane(ev.Thread)
		l.bornAt, l.born = ev.TimeNS, true
	case ompt.ThreadEnd:
		if l := c.lane(ev.Thread); l.born {
			c.t.Span("thread", "exec", tid, l.bornAt, ev.TimeNS-l.bornAt, nil)
			l.born = false
		}
	case ompt.ParallelBegin:
		c.regions[ev.Region] = regionOpen{
			at:   ev.TimeNS,
			args: map[string]string{"threads": fmt.Sprint(ev.Arg0)},
		}
	case ompt.ParallelEnd:
		if r, ok := c.regions[ev.Region]; ok {
			delete(c.regions, ev.Region)
			c.t.Span(fmt.Sprintf("parallel#%d", ev.Region), "omp", tid,
				r.at, ev.TimeNS-r.at, r.args)
		}
	case ompt.WorkBegin:
		l := c.lane(ev.Thread)
		l.work = append(l.work, ev.TimeNS)
	case ompt.WorkEnd:
		l := c.lane(ev.Thread)
		if n := len(l.work); n > 0 {
			at := l.work[n-1]
			l.work = l.work[:n-1]
			c.t.Span(workSpanName(ev.Work), "omp", tid, at, ev.TimeNS-at, nil)
		}
	case ompt.SyncAcquire:
		if int(ev.Sync) < 8 {
			c.lane(ev.Thread).syncAt[ev.Sync] = ev.TimeNS
		}
	case ompt.SyncAcquired:
		l := c.lane(ev.Thread)
		if int(ev.Sync) < 8 && l.syncAt[ev.Sync] >= 0 {
			at := l.syncAt[ev.Sync]
			l.syncAt[ev.Sync] = -1
			c.t.Span("wait/"+ev.Sync.String(), "sync", tid, at, ev.TimeNS-at, nil)
		}
	case ompt.TaskCreate:
		c.pending++
		c.t.Counter("tasks-pending", tid, ev.TimeNS, c.pending)
	case ompt.TaskSchedule:
		l := c.lane(ev.Thread)
		l.task = append(l.task, ev.TimeNS)
	case ompt.TaskComplete:
		l := c.lane(ev.Thread)
		if n := len(l.task); n > 0 {
			at := l.task[n-1]
			l.task = l.task[:n-1]
			c.t.Span("task", "omp", tid, at, ev.TimeNS-at, nil)
		}
		c.pending--
		c.t.Counter("tasks-pending", tid, ev.TimeNS, c.pending)
	case ompt.ShrinkTeam:
		c.t.Span("team-shrink", "fault", tid, ev.TimeNS, 0, nil)
	case ompt.DeviceInit:
		c.t.Span(fmt.Sprintf("device-init#%d", ev.Obj), "device", deviceLane(ev.Obj),
			ev.TimeNS, 0, map[string]string{
				"cus": fmt.Sprint(ev.Arg0), "lanes": fmt.Sprint(ev.Arg1)})
	case ompt.TargetBegin:
		c.targets[ev.Region] = ev.TimeNS
	case ompt.TargetEnd:
		if at, ok := c.targets[ev.Region]; ok {
			delete(c.targets, ev.Region)
			c.t.Span(fmt.Sprintf("target#%d", ev.Region), "device", deviceLane(ev.Obj),
				at, ev.TimeNS-at, map[string]string{"blocks": fmt.Sprint(ev.Arg1)})
		}
	case ompt.DataOp:
		// Only the transfers move the counter; alloc/delete are marks.
		if ev.Arg1 == 1 || ev.Arg1 == 2 {
			c.devBytes += ev.Arg0
			c.t.Counter("device-bytes", deviceLane(ev.Obj), ev.TimeNS, c.devBytes)
		}
	}
}

// deviceLane maps a device id onto its own trace row, away from the
// host thread lanes.
func deviceLane(dev uint64) int { return 1_000_000 + int(dev) }
