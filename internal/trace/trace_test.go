package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSpanAndJSON(t *testing.T) {
	tr := New()
	tr.Span("parallel#1", "omp", 0, 1000, 5000, map[string]string{"threads": "4"})
	tr.Counter("tasks", 3, 2000, 7)
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.TraceEvents) != 2 {
		t.Fatalf("decoded %d events", len(decoded.TraceEvents))
	}
	e := decoded.TraceEvents[0]
	if e.Name != "parallel#1" || e.Ph != "X" || e.TS != 1.0 || e.Dur != 5.0 {
		t.Fatalf("event = %+v (timestamps must be microseconds)", e)
	}
	if !strings.Contains(buf.String(), `"threads":"4"`) {
		t.Fatal("args lost")
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Span("x", "y", 0, 0, 1, nil) // must not panic
	tr.Counter("c", 0, 0, 0)
	if tr.Len() != 0 {
		t.Fatal("nil tracer recorded something")
	}
}
