// Package trace records execution timelines in the Chrome trace-event
// format (chrome://tracing, Perfetto): parallel regions, worksharing
// loops, barriers, locks, and tasks, on either execution layer —
// wall-clock spans on real goroutines, virtual-time spans on the
// simulator. Durations are emitted in microseconds as the format
// requires.
//
// The tracer is the first consumer of the instrumentation spine
// (package ompt): Attach registers it on a Spine and every span below
// is reconstructed from the typed event stream, so the same trace falls
// out of every layer and environment that emits through the spine.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event is one trace-event entry ("X" complete events and "C" counters).
type Event struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// Tracer collects events; safe for concurrent use.
type Tracer struct {
	mu     sync.Mutex
	events []Event
}

// New creates an empty tracer.
func New() *Tracer { return &Tracer{} }

// Span records a complete span on a thread lane. The args map is
// retained as-is, not copied: hot paths should pass nil or a pre-built
// map shared across calls (and must not mutate it afterwards), so the
// per-span cost stays one event append.
func (t *Tracer) Span(name, cat string, tid int, startNS, durNS int64, args map[string]string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{
		Name: name, Cat: cat, Ph: "X",
		TS: float64(startNS) / 1000, Dur: float64(durNS) / 1000,
		Pid: 1, Tid: tid, Args: args,
	})
	t.mu.Unlock()
}

// Counter records a counter sample (e.g. pending tasks) on a thread
// lane.
func (t *Tracer) Counter(name string, tid int, tsNS int64, value int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{
		Name: name, Ph: "C", TS: float64(tsNS) / 1000, Pid: 1, Tid: tid,
		Args: map[string]string{"value": fmt.Sprint(value)},
	})
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// WriteJSON emits the trace as a Chrome trace-event JSON array.
func (t *Tracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	enc := json.NewEncoder(w)
	type file struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	return enc.Encode(file{TraceEvents: t.events})
}
