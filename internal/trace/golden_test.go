package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/interweaving/komp/internal/ompt"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenStream feeds a fixed synthetic event sequence covering every
// span type the consumer reconstructs: thread lanes, a parallel region,
// worksharing, sync waits, tasks (with the pending counter), and a
// team-shrink marker.
func goldenStream(sp *ompt.Spine) {
	emit := func(ev ompt.Event) { sp.Emit(ev) }
	emit(ompt.Event{Kind: ompt.ThreadBegin, Thread: 0, TimeNS: 0})
	emit(ompt.Event{Kind: ompt.ThreadBegin, Thread: 1, TimeNS: 500})
	emit(ompt.Event{Kind: ompt.ParallelBegin, Thread: 0, TimeNS: 1000, Region: 1, Arg0: 2})
	emit(ompt.Event{Kind: ompt.WorkBegin, Work: ompt.WorkLoopStatic, Thread: 0, TimeNS: 1500})
	emit(ompt.Event{Kind: ompt.WorkBegin, Work: ompt.WorkLoopDynamic, Thread: 1, TimeNS: 1600})
	emit(ompt.Event{Kind: ompt.WorkEnd, Work: ompt.WorkLoopStatic, Thread: 0, TimeNS: 2500})
	emit(ompt.Event{Kind: ompt.WorkEnd, Work: ompt.WorkLoopDynamic, Thread: 1, TimeNS: 2700})
	emit(ompt.Event{Kind: ompt.SyncAcquire, Sync: ompt.SyncBarrier, Thread: 0, TimeNS: 2500, Region: 1})
	emit(ompt.Event{Kind: ompt.SyncAcquire, Sync: ompt.SyncBarrier, Thread: 1, TimeNS: 2700, Region: 1})
	emit(ompt.Event{Kind: ompt.SyncAcquired, Sync: ompt.SyncBarrier, Thread: 0, TimeNS: 3000, Region: 1})
	emit(ompt.Event{Kind: ompt.SyncAcquired, Sync: ompt.SyncBarrier, Thread: 1, TimeNS: 3000, Region: 1})
	emit(ompt.Event{Kind: ompt.TaskCreate, Thread: 0, TimeNS: 3100, Obj: 1})
	emit(ompt.Event{Kind: ompt.TaskSchedule, Thread: 1, TimeNS: 3200, Obj: 1})
	emit(ompt.Event{Kind: ompt.TaskComplete, Thread: 1, TimeNS: 3900, Obj: 1})
	emit(ompt.Event{Kind: ompt.SyncAcquire, Sync: ompt.SyncCritical, Thread: 1, TimeNS: 4000, Obj: 7})
	emit(ompt.Event{Kind: ompt.SyncAcquired, Sync: ompt.SyncCritical, Thread: 1, TimeNS: 4400, Obj: 7})
	emit(ompt.Event{Kind: ompt.ShrinkTeam, Thread: 0, TimeNS: 4500, Region: 1, Arg0: 1})
	emit(ompt.Event{Kind: ompt.ParallelEnd, Thread: 0, TimeNS: 5000, Region: 1, Arg0: 2})
	emit(ompt.Event{Kind: ompt.ThreadEnd, Thread: 1, TimeNS: 5500})
	emit(ompt.Event{Kind: ompt.ThreadEnd, Thread: 0, TimeNS: 6000})
}

// TestGoldenChromeTrace renders the synthetic stream through the spine
// consumer and compares the Chrome trace JSON byte-for-byte against the
// checked-in golden file (regenerate with `go test -run Golden -update`).
func TestGoldenChromeTrace(t *testing.T) {
	tr := New()
	sp := ompt.NewSpine()
	Attach(tr, sp)
	goldenStream(sp)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	// The emitted bytes must be valid Chrome trace JSON regardless of
	// the golden comparison.
	var file struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	for _, ev := range file.TraceEvents {
		if ev.Ph != "X" && ev.Ph != "C" {
			t.Errorf("unexpected phase %q in event %q", ev.Ph, ev.Name)
		}
	}

	path := filepath.Join("testdata", "chrome_trace.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file: %v (run `go test ./internal/trace/ -run Golden -update`)", err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Errorf("trace JSON diverged from golden file %s\ngot:\n%s\nwant:\n%s", path, buf.Bytes(), golden)
	}
}
