// Package core assembles the paper's four execution environments — Linux
// user-level (the baseline), RTK, PIK, and the CCK kernel target — from
// the substrate packages: a machine model, a simulator with the
// environment's noise model, an execution layer with the environment's
// primitive cost table, an address space with the environment's paging
// and placement policies, and the memory-overhead model that converts a
// region's memory profile into effective compute cost.
//
// This package is the home of the paper's primary contribution in this
// reproduction: the three paths to OpenMP in the kernel, expressed as
// differences in what lies beneath an unchanged runtime (RTK, PIK) or an
// alternative compilation pipeline (CCK).
package core

import (
	"fmt"
	"sync"

	"github.com/interweaving/komp/internal/cck"
	"github.com/interweaving/komp/internal/device"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/linuxsim"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/memsim"
	"github.com/interweaving/komp/internal/nautilus"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/ompt"
	"github.com/interweaving/komp/internal/places"
	"github.com/interweaving/komp/internal/pthread"
	"github.com/interweaving/komp/internal/sim"
	"github.com/interweaving/komp/internal/virgil"
)

// Kind identifies an execution environment.
type Kind int

// Environment kinds.
const (
	// Linux is the user-level baseline: stock OpenMP on the Linux-
	// analogue (demand paging, futex syscalls, OS noise).
	Linux Kind = iota
	// RTK is runtime-in-kernel: the OpenMP runtime over the Nautilus
	// pthread compatibility layer, statics in the boot image.
	RTK
	// PIK is process-in-kernel: the unmodified user-level stack behind
	// the emulated Linux syscall ABI, inside the kernel.
	PIK
	// CCK is custom-compilation-for-kernel: AutoMP-compiled tasks on
	// kernel-level VIRGIL.
	CCK
	// LinuxAutoMP is the AutoMP pipeline targeting user-level Linux
	// (user-level VIRGIL) — the middle column of Fig. 11.
	LinuxAutoMP
)

func (k Kind) String() string {
	switch k {
	case Linux:
		return "linux-omp"
	case RTK:
		return "rtk"
	case PIK:
		return "pik"
	case CCK:
		return "nk-automp"
	case LinuxAutoMP:
		return "linux-automp"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// InKernel reports whether the environment executes in kernel mode.
func (k Kind) InKernel() bool { return k == RTK || k == PIK || k == CCK }

// Config tunes environment construction.
type Config struct {
	Machine *machine.Machine
	Kind    Kind
	Seed    int64
	// Threads is the worker count experiments will use (drives the
	// first-touch decision on 8XEON, §6.3: 24+ cores).
	Threads int
	// BootImageBytes models statics linked into the kernel image
	// (RTK/CCK only).
	BootImageBytes int64
	// PthreadImpl overrides the pthread layer (RTK defaults to Custom).
	PthreadImpl pthread.Impl
	// ForceImmediate forces the kernel environments onto immediate
	// (allocation-time local) placement regardless of thread count —
	// the baseline of the §6.3 first-touch ablation.
	ForceImmediate bool
	// BarrierAlgo selects the OpenMP barrier topology (zero value:
	// hierarchical combining tree); BarrierFanout its arity (0 = default).
	// Exposed for the barrier-topology ablation.
	BarrierAlgo   omp.BarrierAlgo
	BarrierFanout int
	// TaskDeque selects the task deque algorithm (zero value:
	// Chase–Lev), TaskCutoff the queue-depth serialization threshold
	// (0 = off), TaskStealTries the steal fanout (0 = all teammates).
	// Exposed for the tasking ablation.
	TaskDeque      omp.TaskDequeAlgo
	TaskCutoff     int
	TaskStealTries int
	// Places is an OMP_PLACES-style specification parsed over the
	// machine's topology (empty = one place per core); ProcBind the
	// OMP_PROC_BIND policy (zero value defers to the legacy close-over-
	// cores placement); StealOrder the task-steal victim sweep order.
	// Exposed for the affinity ablation.
	Places     string
	ProcBind   places.Bind
	StealOrder omp.StealOrder
	// Cancellation enables the cancel constructs (the OMP_CANCELLATION
	// ICV); CancelProp selects flat vs tree cancel-bit propagation;
	// RegionDeadlineNS arms a deadline on every parallel region
	// (KOMP_REGION_DEADLINE; 0 = off). Exposed for the cancel ablation.
	Cancellation     bool
	CancelProp       omp.CancelProp
	RegionDeadlineNS int64
	// MaxActiveLevels caps how many nested parallel regions may be
	// active at once (the OMP_MAX_ACTIVE_LEVELS ICV; 0 = 1, nested
	// regions serialize); NumThreadsList is the per-level team-size
	// list of a comma-list OMP_NUM_THREADS; ProcBindList the per-level
	// binding list of a comma-nested OMP_PROC_BIND; NestedPool the
	// inner-team lease policy (KOMP_NESTED_POOL). Exposed for the
	// nested-parallelism ablation.
	MaxActiveLevels int
	NumThreadsList  []int
	ProcBindList    []places.Bind
	NestedPool      omp.NestedPoolPolicy
	// SimEQ selects the simulator's event-queue algorithm (the
	// KOMP_SIM_EQ ICV; zero value resolves the environment variable,
	// wheel when unset, heap as the differential-testing baseline).
	SimEQ sim.EQAlgo
	// Spine, if non-nil, is threaded through every layer the environment
	// assembles — the exec layer (thread events), the OpenMP runtime or
	// VIRGIL, and the kernel facilities — so one tool observes the whole
	// stack.
	Spine *ompt.Spine
}

// Env is a constructed execution environment.
type Env struct {
	Kind    Kind
	Machine *machine.Machine
	Layer   *exec.SimLayer
	// Kernel is non-nil for in-kernel environments.
	Kernel *nautilus.Kernel
	// AS is the environment's application address space.
	AS *memsim.AddressSpace
	// PageSize is the effective application page size.
	PageSize int64
	// BootImageStatics: large static arrays live in the (pre-placed,
	// identity-mapped) kernel boot image.
	BootImageStatics bool
	// FirstTouch reports the active NUMA placement policy.
	FirstTouch bool

	tlb            memsim.TLBModel
	pthreadImpl    pthread.Impl
	threads        int
	barrierAlgo    omp.BarrierAlgo
	barrierFanout  int
	taskDeque      omp.TaskDequeAlgo
	taskCutoff     int
	taskStealTries int
	placesSpec     string
	procBind       places.Bind
	stealOrder     omp.StealOrder
	cancellation   bool
	cancelProp     omp.CancelProp
	regionDeadline int64
	maxActive      int
	numThreadsList []int
	procBindList   []places.Bind
	nestedPool     omp.NestedPoolPolicy
	spine          *ompt.Spine

	devMu sync.Mutex
	dev   *device.Dev
}

// Spine returns the environment's instrumentation spine (nil when
// disabled).
func (e *Env) Spine() *ompt.Spine { return e.spine }

// Device returns the environment's accelerator, built lazily over the
// machine's attached device topology (machine.WithDevice), or nil for a
// host-only machine. All runtimes constructed from this environment
// share the one instance, so its map table and CU busy state persist
// across regions the way a real device's do.
func (e *Env) Device() *device.Dev {
	if e.Machine.Dev == nil {
		return nil
	}
	e.devMu.Lock()
	defer e.devMu.Unlock()
	if e.dev == nil {
		e.dev = device.New(e.Machine.Dev, 0, e.spine)
	}
	return e.dev
}

// New constructs an environment.
func New(cfg Config) *Env {
	m := cfg.Machine
	if m == nil {
		panic("core: environment without machine")
	}
	threads := cfg.Threads
	if threads <= 0 {
		threads = m.NumCPUs()
	}
	e := &Env{Kind: cfg.Kind, Machine: m, tlb: memsim.TLBModel{Machine: m}, threads: threads,
		barrierAlgo: cfg.BarrierAlgo, barrierFanout: cfg.BarrierFanout,
		taskDeque: cfg.TaskDeque, taskCutoff: cfg.TaskCutoff, taskStealTries: cfg.TaskStealTries,
		placesSpec: cfg.Places, procBind: cfg.ProcBind, stealOrder: cfg.StealOrder,
		cancellation: cfg.Cancellation, cancelProp: cfg.CancelProp,
		regionDeadline: cfg.RegionDeadlineNS,
		maxActive:      cfg.MaxActiveLevels,
		numThreadsList: cfg.NumThreadsList,
		procBindList:   cfg.ProcBindList,
		nestedPool:     cfg.NestedPool,
		spine:          cfg.Spine}

	switch cfg.Kind {
	case Linux, LinuxAutoMP:
		e.Layer = exec.NewSimLayer(linuxsim.NewSimEQ(m, cfg.Seed, cfg.SimEQ), linuxsim.Costs(m))
		e.AS = linuxsim.NewAddressSpace(m)
		e.PageSize = 4 << 10
		e.FirstTouch = true
		e.pthreadImpl = pthread.NPTL

	case RTK, PIK, CCK:
		// The paper's 8XEON extension: first-touch at 2 MiB for 24+
		// cores; immediate (local) allocation otherwise (§6.3).
		firstTouch := m.Sockets > 1 && threads >= 24 && !cfg.ForceImmediate
		boot := cfg.BootImageBytes
		if cfg.Kind == PIK {
			boot = 0 // PIK does not link statics into the kernel image
		}
		k := nautilus.Boot(nautilus.Config{
			Machine:        m,
			Seed:           cfg.Seed,
			EQ:             cfg.SimEQ,
			Costs:          kernelCosts(cfg.Kind, m),
			FirstTouch:     firstTouch,
			BootImageBytes: boot,
		})
		e.Kernel = k
		e.Layer = k.Layer
		e.AS = k.AS
		e.PageSize = k.AS.PageSize
		e.FirstTouch = firstTouch
		e.BootImageStatics = cfg.Kind == RTK || cfg.Kind == CCK
		switch cfg.Kind {
		case RTK:
			e.pthreadImpl = cfg.PthreadImpl
			if e.pthreadImpl == pthread.NPTL {
				e.pthreadImpl = pthread.Custom
			}
			k.LazyFPU = true
		case PIK:
			e.pthreadImpl = pthread.NPTL
			k.LazyFPU = true
			k.ISTTrampoline = true
			// PIK binaries see a slightly coarser effective page size
			// than the 1 GiB identity map: the emulated mmap hands out
			// buddy blocks, so translations behave like 2 MiB pages.
			if !firstTouch {
				e.PageSize = 2 << 20
			}
		case CCK:
			e.pthreadImpl = pthread.Custom
		}
	default:
		panic(fmt.Sprintf("core: unknown environment kind %d", cfg.Kind))
	}
	e.Layer.Spine = cfg.Spine
	return e
}

// OMPRuntime builds the environment's OpenMP runtime (not meaningful for
// CCK, which has no OpenMP runtime — §6.1's "no microbenchmark numbers
// for CCK").
func (e *Env) OMPRuntime() *omp.Runtime {
	if e.Kind == CCK {
		panic("core: CCK has no OpenMP runtime to instantiate")
	}
	part, err := places.Parse(e.placesSpec, places.ForMachine(e.Machine))
	if err != nil {
		// Config.Places is programmatic, not user environment: a spec the
		// machine cannot satisfy is a configuration bug.
		panic(fmt.Sprintf("core: %v", err))
	}
	opts := omp.Options{
		MaxThreads:       e.threads,
		Bind:             true,
		Places:           part,
		ProcBind:         e.procBind,
		StealOrder:       e.stealOrder,
		PthreadImpl:      e.pthreadImpl,
		BarrierAlgo:      e.barrierAlgo,
		BarrierFanout:    e.barrierFanout,
		TaskDeque:        e.taskDeque,
		TaskCutoff:       e.taskCutoff,
		TaskStealTries:   e.taskStealTries,
		Cancellation:     e.cancellation,
		CancelProp:       e.cancelProp,
		RegionDeadlineNS: e.regionDeadline,
		MaxActiveLevels:  e.maxActive,
		NumThreadsList:   e.numThreadsList,
		ProcBindList:     e.procBindList,
		NestedPool:       e.nestedPool,
		Spine:            e.spine,
		Device:           e.Device(),
	}
	return omp.New(e.Layer, opts)
}

// Virgil builds the environment's VIRGIL runtime (the AutoMP target):
// kernel-level on CCK, user-level otherwise.
func (e *Env) Virgil() virgil.Runtime {
	if e.Kind == CCK {
		cpus := make([]int, e.threads)
		for i := range cpus {
			cpus[i] = i
		}
		v := virgil.NewKernel(e.Kernel, cpus)
		if e.spine != nil {
			v.SetSpine(e.spine)
		}
		return v
	}
	v := virgil.NewUser(e.threads)
	if e.spine != nil {
		v.SetSpine(e.spine)
	}
	return v
}

// Threads returns the environment's configured worker count.
func (e *Env) Threads() int { return e.threads }

// Multiplier converts a region's memory profile into the environment's
// effective-cost multiplier: translation overhead at the environment's
// page size, the static-layout overhead boot-image placement removes,
// the user-level environment overhead every kernel path removes, and the
// NUMA penalty for the given remote-access fraction. Per-environment
// overheads are damped as the memory system saturates (beyond
// mem.SatThreads, every environment increasingly waits on the same DRAM,
// compressing the ratios — the high-core-count behaviour of Fig. 9).
func (e *Env) Multiplier(mem cck.MemProfile, remoteFrac float64) float64 {
	over := e.tlb.OverheadFraction(mem.WorkingSetBytes, mem.TLBPressure, e.PageSize)
	if !e.BootImageStatics {
		over += mem.StaticLayoutFrac
	}
	if !e.Kind.InKernel() {
		over += mem.KernelFrac
	}
	if mem.SatThreads > 0 {
		over /= 1 + float64(e.threads)/mem.SatThreads
	}
	if remoteFrac > 0 && mem.MemBoundFrac > 0 {
		ratio := e.Machine.RemoteLatencyNS/e.Machine.LocalLatencyNS - 1
		over += mem.MemBoundFrac * remoteFrac * ratio
	}
	return 1 + over
}

// Scale returns a cck.CostScale closure with a fixed remote fraction.
func (e *Env) Scale(remoteFrac float64) cck.CostScale {
	return func(mem cck.MemProfile, cost int64) int64 {
		return int64(float64(cost) * e.Multiplier(mem, remoteFrac))
	}
}

// TouchCost charges first-touch behaviour for a freshly allocated region:
// under demand paging this is where the Linux fault volume lands.
func (e *Env) TouchCost(r *memsim.Region, cpu int) float64 {
	return e.AS.TouchAll(r, cpu)
}
