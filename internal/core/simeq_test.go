package core

import (
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/sim"
)

// runOMPWorkload runs a parallel/barrier/task workload on the given
// environment kind and event-queue algorithm and returns the elapsed
// virtual nanoseconds.
func runOMPWorkload(t *testing.T, kind Kind, eq sim.EQAlgo) int64 {
	t.Helper()
	env := New(Config{
		Machine: machine.XEON8(),
		Kind:    kind,
		Seed:    42,
		Threads: 24,
		SimEQ:   eq,
	})
	rt := env.OMPRuntime()
	elapsed, err := env.Layer.Run(func(tc exec.TC) {
		rt.Parallel(tc, 24, func(wk *omp.Worker) {
			for round := 0; round < 3; round++ {
				wk.TC().Charge(int64(1000 * (wk.ThreadNum() + 1)))
				wk.Barrier()
			}
			if wk.ThreadNum() == 0 {
				for i := 0; i < 32; i++ {
					i := i
					wk.Task(func(tw *omp.Worker) {
						tw.TC().Charge(int64(500 + i*37))
					})
				}
			}
			wk.Barrier()
		})
		rt.Close(tc)
	})
	if err != nil {
		t.Fatalf("%v/%v: %v", kind, eq, err)
	}
	return elapsed
}

// TestCoreEQEquivalence: the SimEQ config knob must be behaviorally
// invisible — an OpenMP parallel/barrier/task workload takes the exact
// same virtual time on the wheel and the heap, on both exec layers (the
// Linux user-level SimLayer and the Nautilus in-kernel RTK path).
func TestCoreEQEquivalence(t *testing.T) {
	for _, kind := range []Kind{Linux, RTK} {
		wheel := runOMPWorkload(t, kind, sim.EQWheel)
		heap := runOMPWorkload(t, kind, sim.EQHeap)
		if wheel != heap {
			t.Errorf("%v: elapsed wheel=%d heap=%d (must be identical)", kind, wheel, heap)
		}
		if wheel <= 0 {
			t.Errorf("%v: elapsed = %d, want > 0", kind, wheel)
		}
	}
}

// TestCoreSimEQPlumbing pins that the SimEQ knob actually reaches the
// simulator on both construction paths.
func TestCoreSimEQPlumbing(t *testing.T) {
	for _, kind := range []Kind{Linux, RTK} {
		env := New(Config{Machine: machine.PHI(), Kind: kind, SimEQ: sim.EQHeap})
		if got := env.Layer.Sim.EQ(); got != sim.EQHeap {
			t.Errorf("%v: SimEQ=heap reached sim as %v", kind, got)
		}
		env = New(Config{Machine: machine.PHI(), Kind: kind})
		if got := env.Layer.Sim.EQ(); got != sim.EQWheel {
			t.Errorf("%v: default EQ resolved to %v, want wheel", kind, got)
		}
	}
}
