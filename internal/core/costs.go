package core

import (
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
)

// kernelCosts builds the primitive cost table for the in-kernel
// environments. The qualitative relationships come straight from the
// paper's evaluation:
//
//   - Kernel primitives (thread dispatch, event signaling) avoid the
//     syscall boundary, KPTI, and the general-purpose scheduler (§2.1).
//   - RTK nevertheless shows *slightly higher* EPCC overheads than Linux
//     on PHI (§6.1): the ported runtime pays the pthread compatibility
//     layer on every operation and allocates from the kernel buddy
//     allocator. Those paths are dependent-instruction chains that the
//     1.3 GHz in-order Phi cores cannot overlap, so they carry a
//     quadratic clock sensitivity here (scale2); on the out-of-order
//     2.1 GHz Xeons the same paths cost little and the kernel's latency
//     advantages win (Fig. 13).
//   - PIK runs the identical user-level code; its "syscalls" stay at the
//     same privilege level in the same address space (§4.3), making the
//     entries cheaper than Linux everywhere, and the kernel brings
//     jitter near zero.
//   - SCHEDULE overheads are atomic chunk-grabbing in user-level code —
//     the same instructions in every environment — so they stay
//     comparable (§6.3).
func kernelCosts(kind Kind, m *machine.Machine) exec.Costs {
	scale := func(ns float64) int64 { return int64(ns * 2.1 / m.GHz) }
	scale2 := func(ns float64) int64 {
		f := 2.1 / m.GHz
		return int64(ns * f * f)
	}
	crossSocket := int64(1)
	if m.Sockets > 1 {
		crossSocket = 2 // the kernel wake path crosses sockets more cheaply than Linux's 3x
	}
	switch kind {
	case RTK, CCK:
		return exec.Costs{
			// Kernel thread creation is "orders of magnitude faster".
			ThreadSpawnNS: 2_200,
			ThreadExitNS:  400,
			ThreadJoinNS:  scale(300),

			// Direct waitqueue operations behind the PTE-heritage
			// compatibility layering.
			FutexWaitEntryNS:   scale2(300),
			FutexWakeEntryNS:   scale2(280),
			FutexWakeLatencyNS: 900,
			FutexWakeStaggerNS: scale2(110) * crossSocket,

			AtomicRMWNS:     scale(22),
			CacheLineXferNS: 45 * crossSocket,
			YieldNS:         scale(140),

			// The buddy allocator has no thread-local magazine layer
			// (§6.1's "experiences kernel memory allocation directly").
			MallocNS: scale2(200),
			FreeNS:   scale2(140),

			TLSAccessNS:    scale(4),
			SyscallExtraNS: 0, // there is no syscall boundary at all
		}
	case PIK:
		return exec.Costs{
			// clone(2) through the emulated ABI into the fast kernel
			// thread path.
			ThreadSpawnNS: 6_000,
			ThreadExitNS:  900,
			ThreadJoinNS:  scale(500),

			// The same NPTL futex code, but the "syscall" stays at the
			// same privilege level on the same stack (§4.2).
			FutexWaitEntryNS:   scale(300),
			FutexWakeEntryNS:   scale(280),
			FutexWakeLatencyNS: 1_500,
			FutexWakeStaggerNS: scale(120) * crossSocket,

			AtomicRMWNS:     scale(22),
			CacheLineXferNS: 45 * crossSocket,
			YieldNS:         scale(320),

			// glibc malloc emulated over kernel mmap.
			MallocNS: scale(210),
			FreeNS:   scale(150),

			TLSAccessNS:    scale(4),
			SyscallExtraNS: scale(130),
		}
	default:
		panic("core: kernelCosts for non-kernel environment")
	}
}
