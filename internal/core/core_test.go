package core

import (
	"testing"

	"github.com/interweaving/komp/internal/cck"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/virgil"
)

func TestEnvConstructionAllKinds(t *testing.T) {
	m := machine.PHI()
	for _, kind := range []Kind{Linux, RTK, PIK, CCK, LinuxAutoMP} {
		e := New(Config{Machine: m, Kind: kind, Seed: 1, Threads: 8})
		if e.Layer == nil || e.AS == nil {
			t.Fatalf("%v: incomplete env", kind)
		}
		if kind.InKernel() && e.Kernel == nil {
			t.Fatalf("%v: kernel env without kernel", kind)
		}
		if !kind.InKernel() && e.Kernel != nil {
			t.Fatalf("%v: user env with kernel", kind)
		}
	}
}

func TestLinuxEnvPagesAndNoise(t *testing.T) {
	e := New(Config{Machine: machine.PHI(), Kind: Linux, Seed: 3, Threads: 4})
	if e.PageSize != 4<<10 {
		t.Fatalf("Linux page size = %d", e.PageSize)
	}
	r := e.AS.Alloc("heap", 1<<20, 0)
	if cost := e.TouchCost(r, 0); cost <= 0 {
		t.Fatal("Linux must charge demand-paging faults")
	}
	elapsed, err := e.Layer.Run(func(tc exec.TC) { tc.Charge(50_000_000) })
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 50_000_000 {
		t.Fatal("Linux noise missing")
	}
}

func TestKernelEnvNoFaultsBigPages(t *testing.T) {
	e := New(Config{Machine: machine.PHI(), Kind: RTK, Seed: 3, Threads: 8})
	if e.PageSize != 1<<30 {
		t.Fatalf("RTK page size = %d, want 1GiB identity", e.PageSize)
	}
	r := e.AS.Alloc("static", 1<<30, 0)
	if cost := e.TouchCost(r, 0); cost != 0 {
		t.Fatal("identity paging must not fault")
	}
	if !e.BootImageStatics {
		t.Fatal("RTK statics live in the boot image")
	}
}

func TestPIKHasNoBootImageStatics(t *testing.T) {
	e := New(Config{Machine: machine.PHI(), Kind: PIK, Seed: 1, Threads: 8,
		BootImageBytes: 1 << 30})
	if e.BootImageStatics {
		t.Fatal("PIK must not claim boot-image statics")
	}
	if e.Kernel.BootImage() != nil {
		t.Fatal("PIK must not link statics into the kernel image (§6.2: PIK does not have this issue)")
	}
}

func TestFirstTouchKicksInAt24CoresOn8XEON(t *testing.T) {
	m := machine.XEON8()
	low := New(Config{Machine: m, Kind: RTK, Seed: 1, Threads: 16})
	if low.FirstTouch {
		t.Fatal("below 24 cores Nautilus uses immediate allocation")
	}
	high := New(Config{Machine: m, Kind: RTK, Seed: 1, Threads: 48})
	if !high.FirstTouch {
		t.Fatal("24+ cores must enable first-touch at 2MiB (§6.3)")
	}
	if high.PageSize != 2<<20 {
		t.Fatalf("first-touch page size = %d", high.PageSize)
	}
	phi := New(Config{Machine: machine.PHI(), Kind: RTK, Seed: 1, Threads: 64})
	if phi.FirstTouch {
		t.Fatal("single-socket PHI never needs the first-touch extension")
	}
}

func TestMultiplierComponents(t *testing.T) {
	m := machine.PHI()
	prof := cck.MemProfile{
		WorkingSetBytes:  1 << 30,
		TLBPressure:      0.4,
		StaticLayoutFrac: 0.5,
		MemBoundFrac:     0.6,
	}
	lin := New(Config{Machine: m, Kind: Linux, Seed: 1, Threads: 64})
	rtk := New(Config{Machine: m, Kind: RTK, Seed: 1, Threads: 64})
	pik := New(Config{Machine: m, Kind: PIK, Seed: 1, Threads: 64})

	ml := lin.Multiplier(prof, 0)
	mr := rtk.Multiplier(prof, 0)
	mp := pik.Multiplier(prof, 0)
	if !(ml > mp && mp > mr) {
		t.Fatalf("multipliers: linux %v > pik %v > rtk %v expected", ml, mp, mr)
	}
	if mr != 1.0 {
		t.Fatalf("RTK multiplier = %v, want 1.0 (all overheads removed)", mr)
	}
	// NUMA term only with remote accesses.
	if rtk.Multiplier(prof, 0.5) <= mr {
		t.Fatal("remote accesses must add overhead")
	}
}

func TestOMPRuntimeRunsInEveryOMPEnv(t *testing.T) {
	for _, kind := range []Kind{Linux, RTK, PIK} {
		e := New(Config{Machine: machine.PHI(), Kind: kind, Seed: 1, Threads: 8})
		rt := e.OMPRuntime()
		total := 0
		_, err := e.Layer.Run(func(tc exec.TC) {
			rt.Parallel(tc, 8, func(w *omp.Worker) {
				w.ForEach(0, 64, omp.ForOpt{Sched: omp.Static}, func(i int) {
					w.Critical("", func() { total++ })
				})
			})
			rt.Close(tc)
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if total != 64 {
			t.Fatalf("%v: total = %d", kind, total)
		}
	}
}

func TestCCKRefusesOMPRuntime(t *testing.T) {
	e := New(Config{Machine: machine.PHI(), Kind: CCK, Seed: 1, Threads: 8})
	defer func() {
		if recover() == nil {
			t.Fatal("CCK must panic on OMPRuntime (no OpenMP runtime exists there)")
		}
	}()
	e.OMPRuntime()
}

func TestVirgilSelection(t *testing.T) {
	cckEnv := New(Config{Machine: machine.PHI(), Kind: CCK, Seed: 1, Threads: 8})
	if _, ok := cckEnv.Virgil().(*virgil.Kernel); !ok {
		t.Fatal("CCK must use kernel VIRGIL")
	}
	lin := New(Config{Machine: machine.PHI(), Kind: LinuxAutoMP, Seed: 1, Threads: 8})
	if _, ok := lin.Virgil().(*virgil.User); !ok {
		t.Fatal("Linux AutoMP must use user VIRGIL")
	}
}

func TestCCKVirgilExecutesCompiledProgram(t *testing.T) {
	e := New(Config{Machine: machine.PHI(), Kind: CCK, Seed: 1, Threads: 8})
	l := &cck.Loop{Name: "l", N: 1024, CostNS: 1500,
		Effects: []cck.Effect{{Obj: "a", Mode: cck.Write, Pattern: cck.Disjoint}},
		Pragma:  &cck.Pragma{Kind: cck.PragmaParallelFor, Independent: true}}
	p := &cck.Program{Name: "p", Funcs: []*cck.Function{{Name: "f", Body: []cck.Node{l}}}}
	comp, err := cck.Compile(p, cck.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	v := e.Virgil()
	elapsed, err := e.Layer.Run(func(tc exec.TC) {
		v.Start(tc)
		comp.RunVirgil(tc, v, e.Scale(0))
		v.Stop(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	serial := int64(1024 * 1500)
	if elapsed >= serial {
		t.Fatalf("no speedup: %d vs serial %d", elapsed, serial)
	}
}

func TestKindStrings(t *testing.T) {
	if Linux.String() != "linux-omp" || CCK.String() != "nk-automp" {
		t.Fatal("kind strings changed")
	}
	if !RTK.InKernel() || Linux.InKernel() {
		t.Fatal("InKernel wrong")
	}
}
