package nas

import (
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/omp"
)

// ISResult is the integer sort benchmark output.
type ISResult struct {
	Keys   int
	Sorted bool
	// RankSum is a checksum over the final ranks.
	RankSum uint64
}

// IS runs the NAS IS structure: generate n keys in [0, maxKey) with the
// NAS PRNG (Gaussian-ish sum of four uniforms, as the official benchmark
// does), then rank them with a parallel bucket/counting sort. The
// per-thread histogram arrays are exactly the privatization pattern that
// defeats AutoMP (§6.2: IS "an extreme case in which no parallelism is
// extracted").
func IS(tc exec.TC, rt *omp.Runtime, n, maxKey, threads int) ISResult {
	keys := make([]int32, n)
	rt.Parallel(tc, threads, func(w *omp.Worker) {
		w.For(0, n, omp.ForOpt{Sched: omp.Static, NoWait: true}, func(lo, hi int) {
			r := RandAt(DefaultSeed, uint64(4*lo))
			for i := lo; i < hi; i++ {
				v := (r.Next() + r.Next() + r.Next() + r.Next()) / 4
				keys[i] = int32(v * float64(maxKey))
				if keys[i] >= int32(maxKey) {
					keys[i] = int32(maxKey - 1)
				}
			}
		})
	})

	// Parallel counting sort: per-thread private histograms merged into
	// the global one.
	global := make([]int64, maxKey)
	perThread := make([][]int64, threads)
	rt.Parallel(tc, threads, func(w *omp.Worker) {
		local := make([]int64, maxKey) // the private scratch array
		w.For(0, n, omp.ForOpt{Sched: omp.Static, NoWait: true}, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				local[keys[i]]++
			}
		})
		perThread[w.ThreadNum()] = local
		w.Barrier()
		// Merge: each thread owns a slice of the key space.
		w.ForEach(0, maxKey, omp.ForOpt{Sched: omp.Static}, func(k int) {
			var s int64
			for t := 0; t < w.NumThreads(); t++ {
				s += perThread[t][k]
			}
			global[k] = s
		})
	})

	// Exclusive prefix sum (ranks) — sequential scan as in the reference.
	ranks := make([]int64, maxKey)
	var acc int64
	for k := 0; k < maxKey; k++ {
		ranks[k] = acc
		acc += global[k]
	}

	// Permute into sorted order and verify.
	out := make([]int32, n)
	next := make([]int64, maxKey)
	copy(next, ranks)
	for i := 0; i < n; i++ {
		k := keys[i]
		out[next[k]] = k
		next[k]++
	}
	res := ISResult{Keys: n, Sorted: true}
	for i := 1; i < n; i++ {
		if out[i-1] > out[i] {
			res.Sorted = false
			break
		}
	}
	for k := 0; k < maxKey; k++ {
		res.RankSum += uint64(ranks[k]) * uint64(k+1)
	}
	return res
}
