package nas

import (
	"fmt"

	"github.com/interweaving/komp/internal/cck"
	"github.com/interweaving/komp/internal/core"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/linuxsim"
	"github.com/interweaving/komp/internal/machine"
)

// Pipeline selects the compilation pipeline for a model run.
type Pipeline int

// Pipelines.
const (
	// PipeOpenMP is the conventional pipeline: pragmas lowered onto the
	// OpenMP runtime (Linux, RTK, PIK).
	PipeOpenMP Pipeline = iota
	// PipeAutoMP is the CCK pipeline: AutoMP task extraction onto VIRGIL
	// (Linux+AutoMP, NK+AutoMP).
	PipeAutoMP
)

func (p Pipeline) String() string {
	if p == PipeAutoMP {
		return "automp"
	}
	return "openmp"
}

// profile returns the machine calibration, which must exist.
func (s *Spec) profile(m *machine.Machine) MachineProfile {
	p, ok := s.Profiles[m.Name]
	if !ok {
		panic(fmt.Sprintf("nas: %s has no profile for machine %s", s.Name, m.Name))
	}
	return p
}

// memProfile builds the cck.MemProfile for this spec at a thread count.
func (s *Spec) memProfile(m *machine.Machine, threads int) cck.MemProfile {
	p := s.profile(m)
	return cck.MemProfile{
		WorkingSetBytes:  s.WorkingSetBytes / int64(threads),
		TLBPressure:      p.TLBPressure,
		MemBoundFrac:     s.MemBoundFrac,
		Footprint:        s.WorkingSetBytes,
		StaticLayoutFrac: p.StaticFrac,
		KernelFrac:       p.KernelFrac,
		SatThreads:       p.SatThreads,
	}
}

// baseNS returns the clean (overhead-free) sequential compute cost,
// calibrated so that the Linux environment at one thread reproduces the
// paper's measured t.
func (s *Spec) baseNS(m *machine.Machine) float64 {
	p := s.profile(m)
	ref := core.New(core.Config{Machine: m, Kind: core.Linux, Seed: 1, Threads: 1})
	mult := ref.Multiplier(s.memProfile(m, 1), 0)
	// The paper's t includes the one-time demand-paging fault-in, which
	// the runner charges separately; remove it from the compute base.
	faultNS := float64(s.WorkingSetBytes) / (4 << 10) * linuxsim.PageFaultNS
	return (p.TimeSec*1e9 - faultNS) / mult
}

// Program builds the cck IR for this benchmark on a machine for a given
// pipeline. The AutoMP pipeline applies the whole-function codegen factor.
func (s *Spec) Program(m *machine.Machine, threads int, pipe Pipeline) *cck.Program {
	base := s.baseNS(m)
	if pipe == PipeAutoMP {
		base *= s.AutoMPSerial
	}
	mem := s.memProfile(m, threads)
	fn := &cck.Function{Name: "main"}
	prevObj := ""
	for step := 0; step < s.Steps; step++ {
		for _, ls := range s.Loops {
			loopCost := base * ls.Share / float64(s.Steps)
			perIter := loopCost / float64(ls.N)
			l := &cck.Loop{
				Name:   fmt.Sprintf("%s_t%03d", ls.Name, step),
				N:      ls.N,
				CostNS: int64(perIter),
				Skew:   ls.Skew,
				Mem:    mem,
			}
			obj := ls.Name + "_data"
			// Consume the previous loop's output: elementwise reads keep
			// fusion legal; global reads (transposes, direction changes,
			// and every step boundary) block it.
			if prevObj != "" {
				pat := cck.SharedRO
				if ls.Reads == ReadElementwise {
					pat = cck.Disjoint
				}
				l.Effects = append(l.Effects, cck.Effect{Obj: prevObj, Mode: cck.Read, Pattern: pat})
			}
			switch ls.Pattern {
			case PatDOALL:
				l.Effects = append(l.Effects, cck.Effect{Obj: obj, Mode: cck.ReadWrite, Pattern: cck.Disjoint})
				l.Pragma = &cck.Pragma{Kind: cck.PragmaParallelFor, Independent: true}
			case PatReduction:
				l.Effects = append(l.Effects,
					cck.Effect{Obj: obj, Mode: cck.ReadWrite, Pattern: cck.Disjoint},
					cck.Effect{Obj: ls.Name + "_acc", Mode: cck.ReadWrite, Pattern: cck.ReductionAcc})
				l.Pragma = &cck.Pragma{Kind: cck.PragmaParallelFor, Independent: true,
					Reductions: map[string]string{ls.Name + "_acc": "+"}}
			case PatPrivate:
				l.Effects = append(l.Effects,
					cck.Effect{Obj: obj, Mode: cck.ReadWrite, Pattern: cck.Disjoint},
					cck.Effect{Obj: ls.Name + "_scratch", Mode: cck.ReadWrite, Pattern: cck.PrivateScratch})
				l.Pragma = &cck.Pragma{Kind: cck.PragmaParallelFor, Independent: true,
					Private: []string{ls.Name + "_scratch"}}
			case PatSequential:
				l.Effects = append(l.Effects, cck.Effect{Obj: obj, Mode: cck.ReadWrite, Pattern: cck.SharedRW})
			}
			prevObj = obj
			fn.Body = append(fn.Body, l)
		}
	}
	return &cck.Program{
		Name:  fmt.Sprintf("%s.%s-%s", s.Name, s.Class, pipe),
		Funcs: []*cck.Function{fn},
	}
}

// RunResult is a measured model run.
type RunResult struct {
	Spec     *Spec
	Env      core.Kind
	Machine  string
	Threads  int
	Pipeline Pipeline
	Seconds  float64
}

// RunModel executes the benchmark model in an environment and returns
// the virtual run time in seconds. The environment must have been
// constructed for the same machine and thread count.
func RunModel(env *core.Env, s *Spec, threads int) (RunResult, error) {
	pipe := PipeOpenMP
	if env.Kind == core.CCK || env.Kind == core.LinuxAutoMP {
		pipe = PipeAutoMP
	}
	prog := s.Program(env.Machine, threads, pipe)

	// Allocate and fault in the benchmark's data, with the environment's
	// placement policy; derive the average remote-access fraction.
	region := env.AS.Alloc(s.Name+"-data", s.WorkingSetBytes, 0)
	var faultNS float64
	for t := 0; t < threads; t++ {
		faultNS += env.AS.TouchSlice(region, t, t, threads)
	}
	var remote float64
	for t := 0; t < threads; t++ {
		remote += env.AS.RemoteFractionSlice(region, t, t, threads)
	}
	remote /= float64(threads)
	scale := env.Scale(remote)

	res := RunResult{Spec: s, Env: env.Kind, Machine: env.Machine.Name, Threads: threads, Pipeline: pipe}

	var compiled *cck.Compiled
	if pipe == PipeAutoMP {
		var err error
		compiled, err = cck.Compile(prog, cck.Options{Workers: threads, Fuse: true})
		if err != nil {
			return res, err
		}
	}

	elapsed, err := runTimed(env, func(tc exec.TC) {
		// Demand-paging faults hit on first touch, in parallel.
		if faultNS > 0 {
			tc.Charge(int64(faultNS / float64(threads)))
		}
		if pipe == PipeAutoMP {
			// The orchestrating thread only submits and waits; in a real
			// kernel its microsecond-scale operations preempt and
			// interleave with the worker occupying its CPU. Unbind it so
			// the non-preemptive simulated CPU does not serialize worker
			// wakeups behind multi-millisecond task bodies.
			if ph, ok := tc.(exec.ProcHolder); ok {
				ph.Proc().SetCPU(-1)
			}
			v := env.Virgil()
			v.Start(tc)
			compiled.RunVirgil(tc, v, scale)
			v.Stop(tc)
		} else {
			rt := env.OMPRuntime()
			cck.RunOpenMP(tc, prog, rt, threads, scale)
			rt.Close(tc)
		}
	})
	if err != nil {
		return res, err
	}
	res.Seconds = float64(elapsed) / 1e9
	return res, nil
}

// RunOffloadModel executes the benchmark model in the device
// environment — the fourth configuration next to Linux, Linux+AutoMP
// and NK+AutoMP: the AutoMP pipeline with every DOALL region lowered to
// `teams distribute` kernels on the environment's accelerator
// (machine.WithDevice), operands hoisted around the run target-data
// style. teams sizes the league the chunker targets (0: one team per
// compute unit).
func RunOffloadModel(env *core.Env, s *Spec, teams int) (RunResult, error) {
	d := env.Device()
	if d == nil {
		return RunResult{}, fmt.Errorf("nas: environment machine has no device (use machine.WithDevice)")
	}
	if teams <= 0 {
		teams = d.Topo().CUs
	}
	prog := s.Program(env.Machine, teams, PipeAutoMP)
	res := RunResult{Spec: s, Env: env.Kind, Machine: env.Machine.Name, Threads: teams, Pipeline: PipeAutoMP}
	compiled, err := cck.Compile(prog, cck.Options{Workers: teams, Fuse: true})
	if err != nil {
		return res, err
	}
	var runErr error
	elapsed, err := runTimed(env, func(tc exec.TC) {
		runErr = compiled.RunOffload(tc, d, env.Scale(0), cck.OffloadOpt{Hoist: true})
	})
	if err != nil {
		return res, err
	}
	if runErr != nil {
		return res, runErr
	}
	res.Seconds = float64(elapsed) / 1e9
	return res, nil
}

func runTimed(env *core.Env, fn func(exec.TC)) (int64, error) {
	return env.Layer.Run(fn)
}
