package nas

import (
	"math"
	"math/cmplx"
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/sim"
)

// withRuntime runs body inside an OpenMP runtime on a small simulated
// layer (deterministic) and closes the pool.
func withRuntime(t *testing.T, threads int, body func(tc exec.TC, rt *omp.Runtime)) {
	t.Helper()
	layer := exec.NewSimLayer(sim.New(threads, 5), exec.Costs{
		ThreadSpawnNS: 1000, FutexWaitEntryNS: 60, FutexWakeEntryNS: 60,
		FutexWakeLatencyNS: 200, AtomicRMWNS: 15, CacheLineXferNS: 30, MallocNS: 60})
	rt := omp.New(layer, omp.Options{MaxThreads: threads, Bind: true})
	_, err := layer.Run(func(tc exec.TC) {
		body(tc, rt)
		rt.Close(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// --- PRNG ---

func TestRandlcMatchesSequential(t *testing.T) {
	r1 := NewRand(0)
	for i := 0; i < 1000; i++ {
		r1.Next()
	}
	r2 := RandAt(DefaultSeed, 1000)
	if r1.Next() != r2.Next() {
		t.Fatal("skip-ahead diverges from sequential stream")
	}
}

func TestRandlcRange(t *testing.T) {
	r := NewRand(0)
	for i := 0; i < 10000; i++ {
		v := r.Next()
		if v <= 0 || v >= 1 {
			t.Fatalf("value %v out of (0,1)", v)
		}
	}
}

func TestRandlcSkipZero(t *testing.T) {
	a := NewRand(0)
	b := NewRand(0)
	b.Skip(0)
	if a.Next() != b.Next() {
		t.Fatal("Skip(0) changed the stream")
	}
}

// --- EP ---

func TestEPMatchesSequential(t *testing.T) {
	seq := EPSequential(14)
	for _, threads := range []int{1, 3, 8} {
		withRuntime(t, 8, func(tc exec.TC, rt *omp.Runtime) {
			par := EP(tc, rt, 14, threads)
			// Sums differ in the last bits across thread counts (FP
			// addition is non-associative); counts are exact.
			if math.Abs(par.Sx-seq.Sx) > 1e-9 || math.Abs(par.Sy-seq.Sy) > 1e-9 {
				t.Errorf("threads=%d: sums %v,%v != %v,%v", threads, par.Sx, par.Sy, seq.Sx, seq.Sy)
			}
			if par.Counts != seq.Counts {
				t.Errorf("threads=%d: counts %v != %v", threads, par.Counts, seq.Counts)
			}
		})
	}
}

func TestEPGaussianStatistics(t *testing.T) {
	res := EPSequential(16)
	var accepted int64
	for _, c := range res.Counts {
		accepted += c
	}
	// Polar method acceptance rate is pi/4 of pairs.
	rate := float64(accepted) / float64(res.Pairs)
	if math.Abs(rate-math.Pi/4) > 0.01 {
		t.Fatalf("acceptance rate %v, want ~pi/4", rate)
	}
	// Deviates are ~N(0,1): sums of ~51k samples stay well under 3*sqrt(n).
	bound := 3 * math.Sqrt(float64(2*accepted))
	if math.Abs(res.Sx) > bound || math.Abs(res.Sy) > bound {
		t.Fatalf("sums %v/%v exceed %v", res.Sx, res.Sy, bound)
	}
}

// --- CG ---

func TestCGSolvesSystem(t *testing.T) {
	a := MakeSparse(256, 8, 10)
	withRuntime(t, 4, func(tc exec.TC, rt *omp.Runtime) {
		res := CG(tc, rt, a, 3, 25, 20, 4)
		if res.Iters != 3 {
			t.Errorf("iters = %d", res.Iters)
		}
		if res.RNorm > 1e-6 {
			t.Errorf("CG residual %v too large (SPD system must converge)", res.RNorm)
		}
		if math.IsNaN(res.Zeta) || res.Zeta <= 20 {
			t.Errorf("zeta = %v, want > shift", res.Zeta)
		}
	})
}

func TestCGDeterministicAcrossThreadCounts(t *testing.T) {
	a := MakeSparse(128, 6, 8)
	var z1, z4 float64
	withRuntime(t, 4, func(tc exec.TC, rt *omp.Runtime) {
		z1 = CG(tc, rt, a, 2, 15, 12, 1).Zeta
	})
	withRuntime(t, 4, func(tc exec.TC, rt *omp.Runtime) {
		z4 = CG(tc, rt, a, 2, 15, 12, 4).Zeta
	})
	// Block-static partition keeps per-thread accumulation order stable
	// enough that results agree to near machine precision.
	if math.Abs(z1-z4) > 1e-8*math.Abs(z1) {
		t.Fatalf("zeta differs across thread counts: %v vs %v", z1, z4)
	}
}

func TestSparseMatrixIsSymmetricCSR(t *testing.T) {
	a := MakeSparse(64, 4, 5)
	if a.RowPtr[a.N] != len(a.Val) || len(a.Col) != len(a.Val) {
		t.Fatal("CSR structure inconsistent")
	}
	get := func(i, j int) float64 {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.Col[k] == j {
				return a.Val[k]
			}
		}
		return 0
	}
	for i := 0; i < a.N; i += 7 {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.Col[k]
			if math.Abs(a.Val[k]-get(j, i)) > 1e-12 {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
	// Columns ascending per row.
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i] + 1; k < a.RowPtr[i+1]; k++ {
			if a.Col[k-1] >= a.Col[k] {
				t.Fatalf("row %d columns not ascending", i)
			}
		}
	}
}

// --- MG ---

func TestMGReducesResidual(t *testing.T) {
	withRuntime(t, 4, func(tc exec.TC, rt *omp.Runtime) {
		one := MG(tc, rt, 16, 1, 4)
		four := MG(tc, rt, 16, 4, 4)
		if !(four.RNorm < one.RNorm) {
			t.Errorf("V-cycles must reduce residual: 1 cycle %v, 4 cycles %v", one.RNorm, four.RNorm)
		}
	})
}

func TestMGDeterministicAcrossThreads(t *testing.T) {
	var r1, r4 float64
	withRuntime(t, 4, func(tc exec.TC, rt *omp.Runtime) {
		r1 = MG(tc, rt, 16, 2, 1).RNorm
	})
	withRuntime(t, 4, func(tc exec.TC, rt *omp.Runtime) {
		r4 = MG(tc, rt, 16, 2, 4).RNorm
	})
	if math.Abs(r1-r4) > 1e-12 {
		t.Fatalf("MG differs across threads: %v vs %v", r1, r4)
	}
}

func TestGrid3PeriodicIndexing(t *testing.T) {
	g := NewGrid3(4)
	g.Set(0, 0, 0, 7)
	if g.At(4, 4, 4) != 7 || g.At(-4, 0, 0) != 7 {
		t.Fatal("periodic wrap broken")
	}
}

// --- FT ---

func TestFFT1MatchesDFT(t *testing.T) {
	n := 16
	a := make([]complex128, n)
	r := NewRand(0)
	for i := range a {
		a[i] = complex(r.Next(), r.Next())
	}
	want := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k*j) / float64(n)
			want[k] += a[j] * cmplx.Exp(complex(0, ang))
		}
	}
	got := append([]complex128(nil), a...)
	fft1(got, -1)
	for k := 0; k < n; k++ {
		if cmplx.Abs(got[k]-want[k]) > 1e-9 {
			t.Fatalf("FFT[%d] = %v, want %v", k, got[k], want[k])
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	n := 64
	a := make([]complex128, n)
	r := NewRand(0)
	for i := range a {
		a[i] = complex(r.Next(), r.Next())
	}
	b := append([]complex128(nil), a...)
	fft1(b, -1)
	fft1(b, +1)
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > 1e-10 {
			t.Fatalf("roundtrip broke at %d", i)
		}
	}
}

func TestFTChecksumsStableAcrossThreads(t *testing.T) {
	var c1, c4 []complex128
	withRuntime(t, 4, func(tc exec.TC, rt *omp.Runtime) {
		c1 = FT(tc, rt, 8, 3, 1).Checksums
	})
	withRuntime(t, 4, func(tc exec.TC, rt *omp.Runtime) {
		c4 = FT(tc, rt, 8, 3, 4).Checksums
	})
	if len(c1) != 3 || len(c4) != 3 {
		t.Fatalf("checksum counts: %d, %d", len(c1), len(c4))
	}
	for i := range c1 {
		if cmplx.Abs(c1[i]-c4[i]) > 1e-9 {
			t.Fatalf("checksum %d differs: %v vs %v", i, c1[i], c4[i])
		}
	}
}

func TestFTEvolutionDecays(t *testing.T) {
	withRuntime(t, 4, func(tc exec.TC, rt *omp.Runtime) {
		res := FT(tc, rt, 8, 4, 4)
		// The exponential filter removes energy; checksum magnitude of
		// later iterations must not grow.
		first := cmplx.Abs(res.Checksums[0])
		last := cmplx.Abs(res.Checksums[len(res.Checksums)-1])
		if last > first*1.0001 {
			t.Errorf("evolution grew: %v -> %v", first, last)
		}
	})
}

// --- IS ---

func TestISSortsAndIsPermutation(t *testing.T) {
	withRuntime(t, 4, func(tc exec.TC, rt *omp.Runtime) {
		res := IS(tc, rt, 1<<14, 1<<9, 4)
		if !res.Sorted {
			t.Error("output not sorted")
		}
	})
}

func TestISDeterministicAcrossThreads(t *testing.T) {
	var s1, s4 uint64
	withRuntime(t, 4, func(tc exec.TC, rt *omp.Runtime) {
		s1 = IS(tc, rt, 1<<12, 1<<8, 1).RankSum
	})
	withRuntime(t, 4, func(tc exec.TC, rt *omp.Runtime) {
		s4 = IS(tc, rt, 1<<12, 1<<8, 4).RankSum
	})
	if s1 != s4 {
		t.Fatalf("rank checksum differs: %d vs %d", s1, s4)
	}
}

// --- BT/SP compact (ADI) ---

func TestSolveTri(t *testing.T) {
	n := 32
	x := make([]float64, n)
	r := NewRand(0)
	for i := range x {
		x[i] = 2*r.Next() - 1
	}
	rhs := append([]float64(nil), x...)
	scratch := make([]float64, 6*n)
	c := 0.3
	solveTri(x, scratch, c)
	// Verify (I + c*L) x = rhs.
	for i := 0; i < n; i++ {
		s := (1 + 2*c) * x[i]
		if i > 0 {
			s -= c * x[i-1]
		}
		if i < n-1 {
			s -= c * x[i+1]
		}
		if math.Abs(s-rhs[i]) > 1e-10 {
			t.Fatalf("tri solve residual at %d: %v", i, s-rhs[i])
		}
	}
}

func TestSolvePenta(t *testing.T) {
	n := 40
	x := make([]float64, n)
	r := NewRand(0)
	for i := range x {
		x[i] = 2*r.Next() - 1
	}
	rhs := append([]float64(nil), x...)
	scratch := make([]float64, 6*n)
	c := 0.2
	solvePenta(x, scratch, c)
	for i := 0; i < n; i++ {
		s := (1 + 6*c) * x[i]
		if i >= 1 {
			s += -4 * c * x[i-1]
		}
		if i+1 < n {
			s += -4 * c * x[i+1]
		}
		if i >= 2 {
			s += c * x[i-2]
		}
		if i+2 < n {
			s += c * x[i+2]
		}
		if math.Abs(s-rhs[i]) > 1e-9 {
			t.Fatalf("penta solve residual at %d: %v", i, s-rhs[i])
		}
	}
}

func TestADIDiffusionSmooths(t *testing.T) {
	withRuntime(t, 4, func(tc exec.TC, rt *omp.Runtime) {
		short := BTCompact(tc, rt, 12, 1, 4)
		long := BTCompact(tc, rt, 12, 6, 4)
		if !(long.MaxAbs < short.MaxAbs) {
			t.Errorf("diffusion must shrink max-norm: %v -> %v", short.MaxAbs, long.MaxAbs)
		}
	})
}

func TestADIDeterministicAcrossThreads(t *testing.T) {
	var a, b ADIResult
	withRuntime(t, 4, func(tc exec.TC, rt *omp.Runtime) {
		a = SPCompact(tc, rt, 10, 3, 1)
	})
	withRuntime(t, 4, func(tc exec.TC, rt *omp.Runtime) {
		b = SPCompact(tc, rt, 10, 3, 4)
	})
	if math.Abs(a.Sum-b.Sum) > 1e-9 || math.Abs(a.MaxAbs-b.MaxAbs) > 1e-12 {
		t.Fatalf("ADI differs across threads: %+v vs %+v", a, b)
	}
}

// --- LU compact ---

func TestLUSSORConverges(t *testing.T) {
	withRuntime(t, 4, func(tc exec.TC, rt *omp.Runtime) {
		res := LUCompactRun(tc, rt, 12, 60, 1.5, 4)
		if !(res.RNorm < res.RNorm0/5) {
			t.Errorf("SSOR barely converged: %v -> %v", res.RNorm0, res.RNorm)
		}
	})
}

func TestLUDeterministicAcrossThreads(t *testing.T) {
	var a, b LUResult
	withRuntime(t, 4, func(tc exec.TC, rt *omp.Runtime) {
		a = LUCompactRun(tc, rt, 10, 6, 1.1, 1)
	})
	withRuntime(t, 4, func(tc exec.TC, rt *omp.Runtime) {
		b = LUCompactRun(tc, rt, 10, 6, 1.1, 4)
	})
	// Red-black ordering is independent of the thread count.
	if math.Abs(a.RNorm-b.RNorm) > 1e-12 {
		t.Fatalf("SSOR differs across threads: %v vs %v", a.RNorm, b.RNorm)
	}
}
