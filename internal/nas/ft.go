package nas

import (
	"math"
	"math/cmplx"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/omp"
)

// FTResult is the 3D FFT benchmark output: the checksum series the NAS
// verification compares.
type FTResult struct {
	Checksums []complex128
}

// FT runs the NAS FT structure on an n^3 grid: initialize with the NAS
// PRNG, forward 3D FFT once, then niter evolution steps (frequency-space
// exponential decay) each followed by an inverse 3D FFT and a checksum.
// n must be a power of two.
func FT(tc exec.TC, rt *omp.Runtime, n, niter, threads int) FTResult {
	total := n * n * n
	u0 := make([]complex128, total) // frequency-space state
	u1 := make([]complex128, total)

	// Initialization with the NAS random stream (two values per cell).
	rt.Parallel(tc, threads, func(w *omp.Worker) {
		w.For(0, total, omp.ForOpt{Sched: omp.Static, NoWait: true}, func(lo, hi int) {
			r := RandAt(DefaultSeed, uint64(2*lo))
			for i := lo; i < hi; i++ {
				u1[i] = complex(r.Next(), r.Next())
			}
		})
	})

	fft3(tc, rt, u1, u0, n, threads, -1) // forward

	// Per-cell evolution factor exponents.
	var res FTResult
	work := make([]complex128, total)
	for it := 1; it <= niter; it++ {
		alpha := 1e-6
		rt.Parallel(tc, threads, func(w *omp.Worker) {
			w.ForEach(0, n, omp.ForOpt{Sched: omp.Static}, func(i int) {
				ki := freq(i, n)
				for j := 0; j < n; j++ {
					kj := freq(j, n)
					for k := 0; k < n; k++ {
						kk := freq(k, n)
						e := math.Exp(-alpha * float64(it) * float64(ki*ki+kj*kj+kk*kk))
						idx := (i*n+j)*n + k
						work[idx] = u0[idx] * complex(e, 0)
					}
				}
			})
		})
		fft3(tc, rt, work, u1, n, threads, +1) // inverse
		res.Checksums = append(res.Checksums, checksum(u1, n))
	}
	return res
}

func freq(i, n int) int {
	if i > n/2 {
		return i - n
	}
	return i
}

// checksum is the NAS FT checksum: a strided sample of 1024 cells.
func checksum(u []complex128, n int) complex128 {
	total := n * n * n
	var s complex128
	for j := 1; j <= 1024; j++ {
		q := (j * 9677) % total // large stride sample
		s += u[q]
	}
	return s / complex(float64(total), 0)
}

// fft3 performs a 3D FFT (sign=-1 forward, +1 inverse with 1/n scaling
// per dimension) from src into dst, parallelized over pencil lines along
// each dimension in turn — the cff* structure of NAS FT.
func fft3(tc exec.TC, rt *omp.Runtime, src, dst []complex128, n, threads, sign int) {
	copyBuf := make([]complex128, len(src))
	copy(copyBuf, src)
	// Dimension k (stride 1).
	rt.Parallel(tc, threads, func(w *omp.Worker) {
		line := make([]complex128, n)
		w.ForEach(0, n*n, omp.ForOpt{Sched: omp.Static}, func(p int) {
			base := p * n
			copy(line, copyBuf[base:base+n])
			fft1(line, sign)
			copy(copyBuf[base:base+n], line)
		})
	})
	// Dimension j (stride n).
	rt.Parallel(tc, threads, func(w *omp.Worker) {
		line := make([]complex128, n)
		w.ForEach(0, n*n, omp.ForOpt{Sched: omp.Static}, func(p int) {
			i, k := p/n, p%n
			for j := 0; j < n; j++ {
				line[j] = copyBuf[(i*n+j)*n+k]
			}
			fft1(line, sign)
			for j := 0; j < n; j++ {
				copyBuf[(i*n+j)*n+k] = line[j]
			}
		})
	})
	// Dimension i (stride n*n).
	rt.Parallel(tc, threads, func(w *omp.Worker) {
		line := make([]complex128, n)
		w.ForEach(0, n*n, omp.ForOpt{Sched: omp.Static}, func(p int) {
			j, k := p/n, p%n
			for i := 0; i < n; i++ {
				line[i] = copyBuf[(i*n+j)*n+k]
			}
			fft1(line, sign)
			for i := 0; i < n; i++ {
				copyBuf[(i*n+j)*n+k] = line[i]
			}
		})
	})
	copy(dst, copyBuf)
}

// fft1 is an in-place iterative radix-2 Cooley-Tukey FFT. sign=-1 is the
// forward transform; sign=+1 the inverse, scaled by 1/n.
func fft1(a []complex128, sign int) {
	n := len(a)
	// Bit reversal.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := float64(sign) * 2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := a[i+j]
				v := a[i+j+length/2] * w
				a[i+j] = u + v
				a[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	if sign > 0 {
		inv := complex(1/float64(n), 0)
		for i := range a {
			a[i] *= inv
		}
	}
}
