package nas

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/omp"
)

func TestBlock3Inverse(t *testing.T) {
	r := NewRand(0)
	for trial := 0; trial < 50; trial++ {
		var a Block3
		for i := range a {
			a[i] = 2*r.Next() - 1
		}
		// Make it comfortably nonsingular.
		a[0] += 3
		a[4] += 3
		a[8] += 3
		inv, ok := a.Inv()
		if !ok {
			t.Fatalf("trial %d: invertible block reported singular", trial)
		}
		prod := a.Mul(inv)
		id := Identity3()
		for i := range prod {
			if math.Abs(prod[i]-id[i]) > 1e-9 {
				t.Fatalf("trial %d: A*inv(A) != I at %d: %v", trial, i, prod[i])
			}
		}
	}
}

func TestBlock3SingularDetected(t *testing.T) {
	// Rank-deficient: row 2 = row 0.
	a := Block3{1, 2, 3, 4, 5, 6, 1, 2, 3}
	if _, ok := a.Inv(); ok {
		t.Fatal("singular block inverted")
	}
}

func TestPropertyBlockMulAssociative(t *testing.T) {
	f := func(raw [27]int8) bool {
		var a, b, c Block3
		for i := 0; i < 9; i++ {
			a[i] = float64(raw[i])
			b[i] = float64(raw[i+9])
			c[i] = float64(raw[i+18])
		}
		l := a.Mul(b).Mul(c)
		r := a.Mul(b.Mul(c))
		for i := range l {
			// Integer inputs: exact within float64 for these magnitudes.
			if math.Abs(l[i]-r[i]) > 1e-6*(1+math.Abs(l[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveBlockTriResidual(t *testing.T) {
	const n = 24
	A, B, C := btCoupling(0.1)
	rhs := make([]Vec3, n)
	r := NewRand(0)
	for i := range rhs {
		rhs[i] = Vec3{2*r.Next() - 1, 2*r.Next() - 1, 2*r.Next() - 1}
	}
	x := append([]Vec3(nil), rhs...)
	if !solveBlockTri(A, B, C, x, newBlockTriScratch(n)) {
		t.Fatal("solver failed")
	}
	// Verify A x_{i-1} + B x_i + C x_{i+1} = rhs_i.
	for i := 0; i < n; i++ {
		got := B.MulVec(x[i])
		if i > 0 {
			av := A.MulVec(x[i-1])
			for k := 0; k < 3; k++ {
				got[k] += av[k]
			}
		}
		if i < n-1 {
			cv := C.MulVec(x[i+1])
			for k := 0; k < 3; k++ {
				got[k] += cv[k]
			}
		}
		for k := 0; k < 3; k++ {
			if math.Abs(got[k]-rhs[i][k]) > 1e-9 {
				t.Fatalf("residual at (%d,%d): %v", i, k, got[k]-rhs[i][k])
			}
		}
	}
}

func TestBTBlockDiffusionSmooths(t *testing.T) {
	withRuntime(t, 4, func(tc exec.TC, rt *omp.Runtime) {
		short := BTBlock(tc, rt, 10, 1, 4)
		long := BTBlock(tc, rt, 10, 5, 4)
		if !(long.MaxAbs < short.MaxAbs) {
			t.Errorf("coupled diffusion must shrink max-norm: %v -> %v", short.MaxAbs, long.MaxAbs)
		}
	})
}

func TestBTBlockDeterministicAcrossThreads(t *testing.T) {
	var a, b BTBlockResult
	withRuntime(t, 4, func(tc exec.TC, rt *omp.Runtime) {
		a = BTBlock(tc, rt, 8, 3, 1)
	})
	withRuntime(t, 4, func(tc exec.TC, rt *omp.Runtime) {
		b = BTBlock(tc, rt, 8, 3, 4)
	})
	if math.Abs(a.Sum-b.Sum) > 1e-9 || math.Abs(a.MaxAbs-b.MaxAbs) > 1e-12 {
		t.Fatalf("BT block differs across threads: %+v vs %+v", a, b)
	}
}
