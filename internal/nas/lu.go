package nas

import (
	"math"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/omp"
)

// LUCompact is the compact LU variant: the real LU applies SSOR sweeps
// to the Navier-Stokes equations with wavefront parallelism; this
// variant applies red-black SSOR to the 3D Poisson problem — the same
// sweep structure (lower then upper triangular relaxations), the same
// parallelization pattern (independent points within a color), and the
// same per-sweep synchronization density.

// LUResult is the compact LU output.
type LUResult struct {
	Iters int
	// RNorm is the final residual norm; SSOR must drive it down.
	RNorm0, RNorm float64
}

// LUCompactRun performs iters SSOR iterations with relaxation omega on
// an n^3 grid with unit right-hand side and homogeneous boundary.
func LUCompactRun(tc exec.TC, rt *omp.Runtime, n, iters int, omega float64, threads int) LUResult {
	u := make([]float64, n*n*n)
	f := make([]float64, n*n*n)
	for i := range f {
		f[i] = 1
	}
	idx := func(i, j, k int) int { return (i*n+j)*n + k }
	interiorResid := func() float64 {
		var s float64
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				for k := 1; k < n-1; k++ {
					r := f[idx(i, j, k)] - (6*u[idx(i, j, k)] -
						u[idx(i-1, j, k)] - u[idx(i+1, j, k)] -
						u[idx(i, j-1, k)] - u[idx(i, j+1, k)] -
						u[idx(i, j, k-1)] - u[idx(i, j, k+1)])
					s += r * r
				}
			}
		}
		return math.Sqrt(s)
	}
	res := LUResult{RNorm0: interiorResid()}
	relaxColor := func(color int, reverse bool) {
		rt.Parallel(tc, threads, func(w *omp.Worker) {
			w.ForEach(1, n-1, omp.ForOpt{Sched: omp.Static}, func(i int) {
				ii := i
				if reverse {
					ii = n - 1 - i
				}
				for j := 1; j < n-1; j++ {
					for k := 1; k < n-1; k++ {
						if (ii+j+k)%2 != color {
							continue
						}
						r := f[idx(ii, j, k)] - (6*u[idx(ii, j, k)] -
							u[idx(ii-1, j, k)] - u[idx(ii+1, j, k)] -
							u[idx(ii, j-1, k)] - u[idx(ii, j+1, k)] -
							u[idx(ii, j, k-1)] - u[idx(ii, j, k+1)])
						u[idx(ii, j, k)] += omega * r / 6
					}
				}
			})
		})
	}
	for it := 0; it < iters; it++ {
		// Lower-triangular sweep (forward): red then black.
		relaxColor(0, false)
		relaxColor(1, false)
		// Upper-triangular sweep (backward): black then red.
		relaxColor(1, true)
		relaxColor(0, true)
		res.Iters++
	}
	res.RNorm = interiorResid()
	return res
}
