package nas

import (
	"math"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/omp"
)

// SparseMatrix is a CSR symmetric positive-definite matrix.
type SparseMatrix struct {
	N      int
	RowPtr []int
	Col    []int
	Val    []float64
}

// MakeSparse generates a random sparse SPD matrix in the spirit of CG's
// makea: random off-diagonal pattern with geometric weights plus a
// dominant shifted diagonal.
func MakeSparse(n, nonzerPerRow int, shift float64) *SparseMatrix {
	r := NewRand(0)
	type entry struct {
		col int
		val float64
	}
	rows := make([]map[int]float64, n)
	for i := range rows {
		rows[i] = map[int]float64{}
	}
	for i := 0; i < n; i++ {
		for k := 0; k < nonzerPerRow; k++ {
			j := int(r.Next() * float64(n))
			if j >= n {
				j = n - 1
			}
			v := r.Next() * math.Pow(0.5, float64(k))
			// Symmetrize.
			rows[i][j] += v
			rows[j][i] += v
		}
	}
	m := &SparseMatrix{N: n, RowPtr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		// Diagonal dominance: diag = shift + row sum.
		var sum float64
		for _, v := range rows[i] {
			sum += math.Abs(v)
		}
		rows[i][i] += sum + shift
		// CSR, columns ascending.
		cols := make([]entry, 0, len(rows[i]))
		for c, v := range rows[i] {
			cols = append(cols, entry{c, v})
		}
		for a := 1; a < len(cols); a++ {
			for b := a; b > 0 && cols[b-1].col > cols[b].col; b-- {
				cols[b-1], cols[b] = cols[b], cols[b-1]
			}
		}
		for _, e := range cols {
			m.Col = append(m.Col, e.col)
			m.Val = append(m.Val, e.val)
		}
		m.RowPtr[i+1] = len(m.Col)
	}
	return m
}

// CGResult is the conjugate-gradient benchmark output.
type CGResult struct {
	Zeta  float64
	RNorm float64
	Iters int
}

// CG runs the NAS CG benchmark structure: niter outer iterations, each
// solving A z = x with cgitmax inner CG steps and updating the shifted
// eigenvalue estimate zeta.
func CG(tc exec.TC, rt *omp.Runtime, a *SparseMatrix, niter, cgitmax int, lambda float64, threads int) CGResult {
	n := a.N
	x := make([]float64, n)
	z := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	var res CGResult
	for it := 0; it < niter; it++ {
		rnorm := cgSolve(tc, rt, a, x, z, cgitmax, threads)
		// zeta = lambda + 1 / (x . z), then x = z / ||z||.
		var dot, znorm float64
		rt.Parallel(tc, threads, func(w *omp.Worker) {
			var d, zn float64
			w.For(0, n, omp.ForOpt{Sched: omp.Static, NoWait: true}, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					d += x[i] * z[i]
					zn += z[i] * z[i]
				}
			})
			gd := w.Reduce(omp.ReduceSum, d)
			gz := w.Reduce(omp.ReduceSum, zn)
			w.Master(func() { dot, znorm = gd, gz })
		})
		znorm = math.Sqrt(znorm)
		rt.Parallel(tc, threads, func(w *omp.Worker) {
			w.ForEach(0, n, omp.ForOpt{Sched: omp.Static}, func(i int) {
				x[i] = z[i] / znorm
			})
		})
		res.Zeta = lambda + 1/dot
		res.RNorm = rnorm
		res.Iters++
	}
	return res
}

// cgSolve performs cgitmax steps of conjugate gradient on A z = rhs,
// returning ||rhs - A z||.
func cgSolve(tc exec.TC, rt *omp.Runtime, a *SparseMatrix, rhs, z []float64, cgitmax, threads int) float64 {
	n := a.N
	r := make([]float64, n)
	p := make([]float64, n)
	q := make([]float64, n)
	var rho float64
	rt.Parallel(tc, threads, func(w *omp.Worker) {
		var lr float64
		w.For(0, n, omp.ForOpt{Sched: omp.Static, NoWait: true}, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				z[i] = 0
				r[i] = rhs[i]
				p[i] = rhs[i]
				lr += r[i] * r[i]
			}
		})
		g := w.Reduce(omp.ReduceSum, lr)
		w.Master(func() { rho = g })
	})
	for it := 0; it < cgitmax; it++ {
		var pq float64
		rt.Parallel(tc, threads, func(w *omp.Worker) {
			var lpq float64
			// q = A p  (the irregular-access loop that dominates CG).
			w.For(0, n, omp.ForOpt{Sched: omp.Static, NoWait: true}, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					var s float64
					for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
						s += a.Val[k] * p[a.Col[k]]
					}
					q[i] = s
					lpq += p[i] * s
				}
			})
			g := w.Reduce(omp.ReduceSum, lpq)
			w.Master(func() { pq = g })
		})
		alpha := rho / pq
		var rhoNew float64
		rt.Parallel(tc, threads, func(w *omp.Worker) {
			var lr float64
			w.For(0, n, omp.ForOpt{Sched: omp.Static, NoWait: true}, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					z[i] += alpha * p[i]
					r[i] -= alpha * q[i]
					lr += r[i] * r[i]
				}
			})
			g := w.Reduce(omp.ReduceSum, lr)
			w.Master(func() { rhoNew = g })
		})
		beta := rhoNew / rho
		rho = rhoNew
		rt.Parallel(tc, threads, func(w *omp.Worker) {
			w.ForEach(0, n, omp.ForOpt{Sched: omp.Static}, func(i int) {
				p[i] = r[i] + beta*p[i]
			})
		})
	}
	// Residual ||rhs - A z||.
	var norm float64
	rt.Parallel(tc, threads, func(w *omp.Worker) {
		var ln float64
		w.For(0, n, omp.ForOpt{Sched: omp.Static, NoWait: true}, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				var s float64
				for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
					s += a.Val[k] * z[a.Col[k]]
				}
				d := rhs[i] - s
				ln += d * d
			}
		})
		g := w.Reduce(omp.ReduceSum, ln)
		w.Master(func() { norm = g })
	})
	return math.Sqrt(norm)
}
