package nas

import (
	"math"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/omp"
)

// EPResult is the embarrassingly-parallel benchmark's output: Gaussian
// deviate sums and the per-annulus counts the official benchmark
// verifies.
type EPResult struct {
	Sx, Sy float64
	Counts [10]int64
	Pairs  int64
}

// EP runs the embarrassingly parallel benchmark: generate 2^m uniform
// pairs with the NAS LCG, apply the Marsaglia polar method, and histogram
// the accepted Gaussian deviates by annulus. Threads carve the stream
// into disjoint blocks using LCG skip-ahead.
func EP(tc exec.TC, rt *omp.Runtime, m uint, threads int) EPResult {
	n := int64(1) << m
	var res EPResult
	res.Pairs = n
	rt.Parallel(tc, threads, func(w *omp.Worker) {
		var sx, sy float64
		var counts [10]int64
		w.For(0, int(n), omp.ForOpt{Sched: omp.Static, NoWait: true}, func(lo, hi int) {
			// Each pair consumes two stream values; skip to 2*lo.
			r := RandAt(DefaultSeed, uint64(2*lo))
			for i := lo; i < hi; i++ {
				x := 2*r.Next() - 1
				y := 2*r.Next() - 1
				t := x*x + y*y
				if t > 1 || t == 0 {
					continue
				}
				f := math.Sqrt(-2 * math.Log(t) / t)
				gx, gy := x*f, y*f
				sx += gx
				sy += gy
				l := int(math.Max(math.Abs(gx), math.Abs(gy)))
				if l < 10 {
					counts[l]++
				}
			}
		})
		// Combine per-thread partials.
		gx := w.Reduce(omp.ReduceSum, sx)
		gy := w.Reduce(omp.ReduceSum, sy)
		w.Master(func() {
			res.Sx, res.Sy = gx, gy
		})
		for l := 0; l < 10; l++ {
			c := w.Reduce(omp.ReduceSum, float64(counts[l]))
			w.Master(func() { res.Counts[l] = int64(c) })
		}
	})
	return res
}

// EPSequential is the reference single-stream implementation used for
// verification.
func EPSequential(m uint) EPResult {
	n := int64(1) << m
	r := NewRand(0)
	var res EPResult
	res.Pairs = n
	for i := int64(0); i < n; i++ {
		x := 2*r.Next() - 1
		y := 2*r.Next() - 1
		t := x*x + y*y
		if t > 1 || t == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(t) / t)
		gx, gy := x*f, y*f
		res.Sx += gx
		res.Sy += gy
		l := int(math.Max(math.Abs(gx), math.Abs(gy)))
		if l < 10 {
			res.Counts[l]++
		}
	}
	return res
}
