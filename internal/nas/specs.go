package nas

// Structural models of the NAS benchmarks at the paper's classes. Every
// spec carries:
//
//   - the paper's measured single-thread Linux times (the t values in the
//     captions of Figs. 9-12 and 14-15), used to calibrate absolute cost;
//   - the benchmark's timestep/loop structure with OpenMP pragma
//     metadata, including which loops need object privatization (the
//     property that decides the CCK outcomes of §6.2);
//   - a memory behaviour profile per machine: the translation pressure
//     (mechanically evaluated against each environment's page size), the
//     static-layout fraction only boot-image linkage removes, the
//     user-level environment fraction every kernel path removes, and the
//     saturation point beyond which DRAM bandwidth compresses the
//     environment ratios.
//
// The layout/kernel fractions are calibrated from the paper's own Fig. 9
// and Fig. 10 single-CPU ratios (see EXPERIMENTS.md for the bookkeeping);
// everything else — scheduling, synchronization, placement, page-size
// effects, AutoMP's parallelization decisions — is computed, not assumed.

// LoopPattern classifies a model loop for dependence analysis.
type LoopPattern int

// Loop patterns.
const (
	// PatDOALL: disjoint per-iteration writes, pragma parallel for.
	PatDOALL LoopPattern = iota
	// PatReduction: DOALL plus a reduction accumulator.
	PatReduction
	// PatPrivate: needs per-thread scratch objects (private clause) —
	// parallel under OpenMP, sequential under AutoMP (§6.2).
	PatPrivate
	// PatSequential: genuinely sequential (no pragma; carried deps).
	PatSequential
)

// ReadKind classifies how a loop consumes its predecessor's output.
type ReadKind int

// Read kinds.
const (
	// ReadGlobal: the loop reads its predecessor's whole output (a
	// transpose, a stencil, a different traversal direction) — blocks
	// loop fusion.
	ReadGlobal ReadKind = iota
	// ReadElementwise: iteration i reads only element i of the
	// predecessor's output — fusable.
	ReadElementwise
)

// LoopSpec is one parallel loop of a timestep.
type LoopSpec struct {
	Name string
	// Share is this loop's fraction of a timestep's compute.
	Share float64
	// N is the trip count (the parallel dimension).
	N int
	// Pattern drives the pragma metadata and memory effects.
	Pattern LoopPattern
	// Skew makes iteration costs non-uniform (see cck.Loop.Skew); the
	// imbalanced loops where AutoMP's latency-aware chunking wins.
	Skew float64
	// Reads classifies the consumption of the previous loop's output.
	Reads ReadKind
}

// MachineProfile is the per-machine calibrated memory behaviour.
type MachineProfile struct {
	// TimeSec is the paper's single-thread Linux time.
	TimeSec float64
	// TLBPressure is the asymptotic translation overhead fraction.
	TLBPressure float64
	// StaticFrac is removed only by boot-image static linkage (RTK/CCK).
	StaticFrac float64
	// KernelFrac is removed by every in-kernel environment.
	KernelFrac float64
	// SatThreads is the DRAM saturation point (0: compute-bound).
	SatThreads float64
}

// Spec is a benchmark's structural model.
type Spec struct {
	Name  string
	Class string
	// Steps is the timestep count (scaled from the benchmark's real
	// iteration count to keep simulation event counts manageable; the
	// synchronization density per unit compute is what matters).
	Steps int
	Loops []LoopSpec
	// WorkingSetBytes is the resident data size (drives TLB reach and
	// the RTK/CCK boot-image size).
	WorkingSetBytes int64
	// MemBoundFrac drives NUMA remote-access sensitivity.
	MemBoundFrac float64
	// AutoMPSerial scales single-thread cost under the AutoMP pipeline:
	// the whole-function analysis (no outlining) sometimes produces
	// substantially better scalar code (MG, CG in Fig. 11).
	AutoMPSerial float64
	// Profiles keys machine name ("PHI", "8XEON") to calibration.
	Profiles map[string]MachineProfile
}

// TotalShare returns the summed loop shares (should be ~1).
func (s *Spec) TotalShare() float64 {
	var t float64
	for _, l := range s.Loops {
		t += l.Share
	}
	return t
}

// Specs returns the eight benchmark models in the paper's figure order.
func Specs() []*Spec {
	return []*Spec{btSpec(), ftSpec(), epSpec(), mgSpec(), spSpec(), luSpec(), cgSpec(), isSpec()}
}

// SpecByName returns a model by name ("BT", "FT", ...).
func SpecByName(name string) *Spec {
	for _, s := range Specs() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

func btSpec() *Spec {
	return &Spec{
		Name: "BT", Class: "B",
		Steps: 20,
		Loops: []LoopSpec{
			{Name: "rhs_xyz", Share: 0.40, N: 192, Pattern: PatDOALL},
			{Name: "rhs_add", Share: 0.35, N: 192, Pattern: PatDOALL, Reads: ReadElementwise},
			{Name: "x_solve", Share: 0.0833, N: 192, Pattern: PatPrivate},
			{Name: "y_solve", Share: 0.0833, N: 192, Pattern: PatPrivate},
			{Name: "z_solve", Share: 0.0834, N: 192, Pattern: PatPrivate},
		},
		WorkingSetBytes: 700 << 20,
		MemBoundFrac:    0.40,
		AutoMPSerial:    1.0,
		Profiles: map[string]MachineProfile{
			"PHI":   {TimeSec: 1813.51, TLBPressure: 0.16, StaticFrac: 0.61, KernelFrac: 0.11, SatThreads: 30},
			"8XEON": {TimeSec: 467.16, TLBPressure: 0.08, StaticFrac: 0.01, KernelFrac: 0.20, SatThreads: 120},
		},
	}
}

func ftSpec() *Spec {
	return &Spec{
		Name: "FT", Class: "B",
		Steps: 20, // FT-B's real niter
		Loops: []LoopSpec{
			{Name: "evolve", Share: 0.15, N: 192, Pattern: PatDOALL},
			{Name: "fft_x", Share: 0.28, N: 192, Pattern: PatDOALL},
			{Name: "fft_y", Share: 0.28, N: 192, Pattern: PatDOALL},
			{Name: "fft_z", Share: 0.28, N: 192, Pattern: PatDOALL},
			{Name: "checksum", Share: 0.01, N: 192, Pattern: PatReduction},
		},
		WorkingSetBytes: 1536 << 20,
		MemBoundFrac:    0.50,
		AutoMPSerial:    0.92,
		Profiles: map[string]MachineProfile{
			"PHI":   {TimeSec: 239.80, TLBPressure: 0.04, StaticFrac: 0.0, KernelFrac: 0.08, SatThreads: 90},
			"8XEON": {TimeSec: 56.72, TLBPressure: 0.05, StaticFrac: 0.02, KernelFrac: 0.28, SatThreads: 100},
		},
	}
}

func epSpec() *Spec {
	return &Spec{
		Name: "EP", Class: "C",
		Steps: 4,
		Loops: []LoopSpec{
			{Name: "gaussian_pairs", Share: 0.99, N: 192, Pattern: PatReduction},
			{Name: "histogram", Share: 0.01, N: 192, Pattern: PatDOALL},
		},
		WorkingSetBytes: 1 << 20, // per-thread state only
		MemBoundFrac:    0.02,
		AutoMPSerial:    1.0,
		Profiles: map[string]MachineProfile{
			"PHI":   {TimeSec: 2133.20, TLBPressure: 0.0, StaticFrac: 0.0, KernelFrac: 0.18, SatThreads: 0},
			"8XEON": {TimeSec: 473.76, TLBPressure: 0.0, StaticFrac: 0.0, KernelFrac: 0.03, SatThreads: 0},
		},
	}
}

func mgSpec() *Spec {
	return &Spec{
		Name: "MG", Class: "C",
		Steps: 20,
		Loops: []LoopSpec{
			{Name: "resid", Share: 0.30, N: 192, Pattern: PatDOALL, Skew: 0.15},
			{Name: "psinv", Share: 0.25, N: 192, Pattern: PatDOALL, Skew: 0.35},
			{Name: "rprj3", Share: 0.20, N: 96, Pattern: PatDOALL, Skew: 0.55},
			{Name: "interp", Share: 0.25, N: 96, Pattern: PatDOALL, Skew: 0.45},
		},
		WorkingSetBytes: 3500 << 20,
		MemBoundFrac:    0.60,
		AutoMPSerial:    0.39,
		Profiles: map[string]MachineProfile{
			"PHI":   {TimeSec: 426.16, TLBPressure: 0.012, StaticFrac: 0.0, KernelFrac: 0.045, SatThreads: 0},
			"8XEON": {TimeSec: 88.55, TLBPressure: 0.03, StaticFrac: 0.0, KernelFrac: 0.13, SatThreads: 140},
		},
	}
}

func spSpec() *Spec {
	return &Spec{
		Name: "SP", Class: "C",
		Steps: 25,
		Loops: []LoopSpec{
			{Name: "rhs", Share: 0.43, N: 192, Pattern: PatDOALL},
			{Name: "txinvr", Share: 0.30, N: 192, Pattern: PatDOALL},
			{Name: "x_solve", Share: 0.09, N: 192, Pattern: PatPrivate},
			{Name: "y_solve", Share: 0.09, N: 192, Pattern: PatPrivate},
			{Name: "z_solve", Share: 0.09, N: 192, Pattern: PatPrivate},
		},
		WorkingSetBytes: 550 << 20,
		MemBoundFrac:    0.40,
		AutoMPSerial:    1.0,
		Profiles: map[string]MachineProfile{
			"PHI":   {TimeSec: 3917.06, TLBPressure: 0.12, StaticFrac: 0.31, KernelFrac: 0.23, SatThreads: 80},
			"8XEON": {TimeSec: 1024.77, TLBPressure: 0.09, StaticFrac: 0.05, KernelFrac: 0.28, SatThreads: 130},
		},
	}
}

func luSpec() *Spec {
	return &Spec{
		Name: "LU", Class: "C",
		Steps: 25,
		Loops: []LoopSpec{
			{Name: "rhs", Share: 0.34, N: 192, Pattern: PatDOALL},
			{Name: "jacld_blts", Share: 0.17, N: 192, Pattern: PatPrivate},
			{Name: "jacu_buts", Share: 0.15, N: 192, Pattern: PatPrivate},
			{Name: "l2norm", Share: 0.04, N: 192, Pattern: PatReduction},
			{Name: "ssor_update", Share: 0.30, N: 192, Pattern: PatDOALL},
		},
		WorkingSetBytes: 650 << 20,
		MemBoundFrac:    0.40,
		AutoMPSerial:    1.0,
		Profiles: map[string]MachineProfile{
			"PHI":   {TimeSec: 4810.22, TLBPressure: 0.06, StaticFrac: 0.0, KernelFrac: 0.12, SatThreads: 0},
			"8XEON": {TimeSec: 1211.43, TLBPressure: 0.06, StaticFrac: 0.02, KernelFrac: 0.24, SatThreads: 150},
		},
	}
}

func cgSpec() *Spec {
	return &Spec{
		Name: "CG", Class: "C",
		Steps: 15,
		Loops: []LoopSpec{
			{Name: "spmv", Share: 0.75, N: 192, Pattern: PatDOALL, Skew: 0.35},
			{Name: "axpy1", Share: 0.08, N: 192, Pattern: PatDOALL},
			{Name: "axpy2", Share: 0.07, N: 192, Pattern: PatDOALL},
			{Name: "dot1", Share: 0.05, N: 192, Pattern: PatReduction},
			{Name: "dot2", Share: 0.05, N: 192, Pattern: PatReduction},
		},
		WorkingSetBytes: 1100 << 20,
		MemBoundFrac:    0.70,
		AutoMPSerial:    0.66,
		Profiles: map[string]MachineProfile{
			"PHI":   {TimeSec: 988.41, TLBPressure: 0.02, StaticFrac: 0.0, KernelFrac: 0.045, SatThreads: 0},
			"8XEON": {TimeSec: 271.15, TLBPressure: 0.04, StaticFrac: 0.0, KernelFrac: 0.22, SatThreads: 160},
		},
	}
}

func isSpec() *Spec {
	return &Spec{
		Name: "IS", Class: "C",
		Steps: 10,
		Loops: []LoopSpec{
			{Name: "genkeys", Share: 0.30, N: 192, Pattern: PatPrivate},
			{Name: "histogram", Share: 0.45, N: 192, Pattern: PatPrivate},
			{Name: "rank_scan", Share: 0.10, N: 192, Pattern: PatSequential},
			{Name: "permute", Share: 0.15, N: 192, Pattern: PatPrivate},
		},
		WorkingSetBytes: 550 << 20,
		MemBoundFrac:    0.30,
		AutoMPSerial:    1.0,
		Profiles: map[string]MachineProfile{
			"PHI":   {TimeSec: 48.15, TLBPressure: 0.03, StaticFrac: 0.0, KernelFrac: 0.17, SatThreads: 48},
			"8XEON": {TimeSec: 10.43, TLBPressure: 0.04, StaticFrac: 0.0, KernelFrac: 0.30, SatThreads: 100},
		},
	}
}
