package nas

import (
	"math"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/omp"
)

// Grid3 is a cubic grid of float64 with edge length n (power of two plus
// ghost-free periodic indexing).
type Grid3 struct {
	N int
	V []float64
}

// NewGrid3 allocates an n^3 grid.
func NewGrid3(n int) *Grid3 { return &Grid3{N: n, V: make([]float64, n*n*n)} }

// At returns the value at (i,j,k) with periodic wrapping.
func (g *Grid3) At(i, j, k int) float64 {
	n := g.N
	return g.V[((i+n)%n)*n*n+((j+n)%n)*n+((k+n)%n)]
}

// Set stores a value at (i,j,k).
func (g *Grid3) Set(i, j, k int, v float64) {
	g.V[i*g.N*g.N+j*g.N+k] = v
}

// MGResult is the multigrid benchmark output.
type MGResult struct {
	RNorm  float64
	Cycles int
}

// MG runs the NAS MG structure: niter V-cycles of the multigrid solver
// for the scalar Poisson problem A u = v on an n^3 periodic grid.
func MG(tc exec.TC, rt *omp.Runtime, n, niter, threads int) MGResult {
	v := NewGrid3(n) // right-hand side: a few +1/-1 point charges
	u := NewGrid3(n)
	r := NewRand(0)
	for c := 0; c < 10; c++ {
		i := int(r.Next() * float64(n))
		j := int(r.Next() * float64(n))
		k := int(r.Next() * float64(n))
		val := 1.0
		if c%2 == 1 {
			val = -1.0
		}
		v.Set(i%n, j%n, k%n, val)
	}
	var res MGResult
	for it := 0; it < niter; it++ {
		vcycle(tc, rt, u, v, threads)
		res.Cycles++
	}
	res.RNorm = residNorm(tc, rt, u, v, threads)
	return res
}

// vcycle performs one multigrid V-cycle: restrict the residual to the
// coarsest grid, then interpolate back up with smoothing — rprj3, psinv,
// interp and resid in NAS terms.
func vcycle(tc exec.TC, rt *omp.Runtime, u, v *Grid3, threads int) {
	n := u.N
	if n <= 4 {
		smooth(tc, rt, u, v, threads)
		return
	}
	r := resid(tc, rt, u, v, threads)
	rc := restrict(tc, rt, r, threads)
	uc := NewGrid3(rc.N)
	vcycle(tc, rt, uc, rc, threads)
	prolongAdd(tc, rt, u, uc, threads)
	smooth(tc, rt, u, v, threads)
}

// stencil coefficients (the S(a) smoother class of MG).
var smoothC = [4]float64{-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0}

// applyStencil27 computes out(i,j,k) = sum of the 27-point stencil of g
// with distance-class coefficients c[0..3].
func applyStencil27(g *Grid3, i, j, k int, c [4]float64) float64 {
	var s float64
	for di := -1; di <= 1; di++ {
		for dj := -1; dj <= 1; dj++ {
			for dk := -1; dk <= 1; dk++ {
				d := di*di + dj*dj + dk*dk
				var w float64
				switch d {
				case 0:
					w = c[0]
				case 1:
					w = c[1]
				case 2:
					w = c[2]
				default:
					w = c[3]
				}
				if w != 0 {
					s += w * g.At(i+di, j+dj, k+dk)
				}
			}
		}
	}
	return s
}

// residC is the A-operator stencil.
var residC = [4]float64{-8.0 / 3.0, 0, 1.0 / 6.0, 1.0 / 12.0}

// resid computes r = v - A u (NAS resid).
func resid(tc exec.TC, rt *omp.Runtime, u, v *Grid3, threads int) *Grid3 {
	n := u.N
	r := NewGrid3(n)
	rt.Parallel(tc, threads, func(w *omp.Worker) {
		w.ForEach(0, n, omp.ForOpt{Sched: omp.Static}, func(i int) {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					r.Set(i, j, k, v.At(i, j, k)-applyStencil27(u, i, j, k, residC))
				}
			}
		})
	})
	return r
}

// smooth applies u += S r with r = v - A u (NAS psinv after resid).
func smooth(tc exec.TC, rt *omp.Runtime, u, v *Grid3, threads int) {
	r := resid(tc, rt, u, v, threads)
	n := u.N
	rt.Parallel(tc, threads, func(w *omp.Worker) {
		w.ForEach(0, n, omp.ForOpt{Sched: omp.Static}, func(i int) {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					u.Set(i, j, k, u.At(i, j, k)+applyStencil27(r, i, j, k, smoothC))
				}
			}
		})
	})
}

// restrict projects a fine grid onto the half-resolution grid (rprj3).
func restrict(tc exec.TC, rt *omp.Runtime, f *Grid3, threads int) *Grid3 {
	nc := f.N / 2
	c := NewGrid3(nc)
	rt.Parallel(tc, threads, func(w *omp.Worker) {
		w.ForEach(0, nc, omp.ForOpt{Sched: omp.Static}, func(i int) {
			for j := 0; j < nc; j++ {
				for k := 0; k < nc; k++ {
					// Full-weighting restriction.
					var s float64
					var wsum float64
					for di := -1; di <= 1; di++ {
						for dj := -1; dj <= 1; dj++ {
							for dk := -1; dk <= 1; dk++ {
								wgt := 1.0 / float64(int(1)<<uint(abs(di)+abs(dj)+abs(dk)))
								s += wgt * f.At(2*i+di, 2*j+dj, 2*k+dk)
								wsum += wgt
							}
						}
					}
					c.Set(i, j, k, s/wsum)
				}
			}
		})
	})
	return c
}

// prolongAdd interpolates the coarse correction onto the fine grid
// (interp) and adds it to u.
func prolongAdd(tc exec.TC, rt *omp.Runtime, u, c *Grid3, threads int) {
	n := u.N
	rt.Parallel(tc, threads, func(w *omp.Worker) {
		w.ForEach(0, n, omp.ForOpt{Sched: omp.Static}, func(i int) {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					// Trilinear interpolation from the coarse grid.
					fi, fj, fk := float64(i)/2, float64(j)/2, float64(k)/2
					i0, j0, k0 := int(fi), int(fj), int(fk)
					di, dj, dk := fi-float64(i0), fj-float64(j0), fk-float64(k0)
					var s float64
					for a := 0; a <= 1; a++ {
						for b := 0; b <= 1; b++ {
							for cc := 0; cc <= 1; cc++ {
								wgt := lerpW(di, a) * lerpW(dj, b) * lerpW(dk, cc)
								s += wgt * c.At(i0+a, j0+b, k0+cc)
							}
						}
					}
					u.Set(i, j, k, u.At(i, j, k)+s)
				}
			}
		})
	})
}

func lerpW(frac float64, side int) float64 {
	if side == 0 {
		return 1 - frac
	}
	return frac
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// residNorm returns ||v - A u||_2 / n^1.5.
func residNorm(tc exec.TC, rt *omp.Runtime, u, v *Grid3, threads int) float64 {
	r := resid(tc, rt, u, v, threads)
	n := r.N
	var total float64
	rt.Parallel(tc, threads, func(w *omp.Worker) {
		var s float64
		w.For(0, len(r.V), omp.ForOpt{Sched: omp.Static, NoWait: true}, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				s += r.V[i] * r.V[i]
			}
		})
		g := w.Reduce(omp.ReduceSum, s)
		w.Master(func() { total = g })
	})
	return math.Sqrt(total) / math.Pow(float64(n), 1.5)
}
