package nas

import (
	"math"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/omp"
)

// This file holds the compact BT/SP variants: the full NAS BT and SP
// codes are ~10k-line ADI solvers for the compressible Navier-Stokes
// equations; these variants keep their computational *structure* — an
// implicit timestep split into x, y and z line-solves over a 3D grid,
// parallelized across the planes perpendicular to the solve direction,
// with per-line scratch arrays (the privatization pattern that matters
// for CCK) — while solving the scalar diffusion problem.
//
// BTCompact uses tridiagonal (Thomas) line solves, standing in for BT's
// block-tridiagonal solves; SPCompact uses pentadiagonal solves, as the
// real SP does (scalar pentadiagonal).

// ADIResult is the output of a compact ADI run.
type ADIResult struct {
	Steps int
	// MaxAbs is the max-norm of the field after the run (diffusion must
	// shrink it monotonically).
	MaxAbs float64
	// Sum is a conservation checksum.
	Sum float64
}

// BTCompact runs timesteps of tridiagonal ADI diffusion on an n^3 grid.
func BTCompact(tc exec.TC, rt *omp.Runtime, n, timesteps, threads int) ADIResult {
	return adiRun(tc, rt, n, timesteps, threads, false)
}

// SPCompact runs timesteps of pentadiagonal ADI diffusion on an n^3 grid.
func SPCompact(tc exec.TC, rt *omp.Runtime, n, timesteps, threads int) ADIResult {
	return adiRun(tc, rt, n, timesteps, threads, true)
}

func adiRun(tc exec.TC, rt *omp.Runtime, n, timesteps, threads int, penta bool) ADIResult {
	u := initField(n)
	const dt = 0.1
	for step := 0; step < timesteps; step++ {
		for dim := 0; dim < 3; dim++ {
			sweep(tc, rt, u, n, dim, dt/3, threads, penta)
		}
	}
	var res ADIResult
	res.Steps = timesteps
	for _, v := range u {
		res.Sum += v
		if a := math.Abs(v); a > res.MaxAbs {
			res.MaxAbs = a
		}
	}
	return res
}

func initField(n int) []float64 {
	u := make([]float64, n*n*n)
	r := NewRand(0)
	for i := range u {
		u[i] = 2*r.Next() - 1
	}
	return u
}

// sweep solves (I - dt*D_dim) u' = u along every line in direction dim.
// The loop over the n*n perpendicular lines is the parallel loop; each
// line solve uses private scratch arrays — BT/SP's lhs work arrays.
func sweep(tc exec.TC, rt *omp.Runtime, u []float64, n, dim int, dt float64, threads int, penta bool) {
	stride := [3]int{n * n, n, 1}[dim]
	rt.Parallel(tc, threads, func(w *omp.Worker) {
		// Private per-thread scratch (the privatization pattern).
		line := make([]float64, n)
		scratch := make([]float64, 6*n)
		w.ForEach(0, n*n, omp.ForOpt{Sched: omp.Static}, func(p int) {
			base := lineBase(p, n, dim)
			for i := 0; i < n; i++ {
				line[i] = u[base+i*stride]
			}
			if penta {
				solvePenta(line, scratch, dt)
			} else {
				solveTri(line, scratch, dt)
			}
			for i := 0; i < n; i++ {
				u[base+i*stride] = line[i]
			}
		})
	})
}

// lineBase returns the flat index of the first cell of perpendicular
// line p for a sweep along dim.
func lineBase(p, n, dim int) int {
	a, b := p/n, p%n
	switch dim {
	case 0: // lines along i: perpendicular coords (j,k)
		return a*n + b
	case 1: // lines along j: coords (i,k)
		return a*n*n + b
	default: // lines along k: coords (i,j)
		return a*n*n + b*n
	}
}

// solveTri solves (1+2c) x_i - c x_{i-1} - c x_{i+1} = rhs_i with
// Dirichlet-like ends, in place (Thomas algorithm).
func solveTri(x, scratch []float64, c float64) {
	n := len(x)
	cp := scratch[:n]
	dp := scratch[n : 2*n]
	b := 1 + 2*c
	cp[0] = -c / b
	dp[0] = x[0] / b
	for i := 1; i < n; i++ {
		m := b + c*cp[i-1]
		cp[i] = -c / m
		dp[i] = (x[i] + c*dp[i-1]) / m
	}
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
}

// solvePenta solves the symmetric pentadiagonal system arising from a
// 4th-order diffusion stencil, (1+6c) x_i - 4c x_{i±1} + c x_{i±2} =
// rhs_i, in place, by banded Gaussian elimination without pivoting (the
// matrix is strictly diagonally dominant for c > 0).
func solvePenta(x, scratch []float64, c float64) {
	n := len(x)
	if n < 3 {
		solveTri(x, scratch, c)
		return
	}
	// Band arrays: sub2 A, sub1 B, diag D, sup1 E, sup2 F, rhs R.
	A := scratch[:n]
	B := scratch[n : 2*n]
	D := scratch[2*n : 3*n]
	E := scratch[3*n : 4*n]
	F := scratch[4*n : 5*n]
	R := scratch[5*n : 6*n]
	for i := 0; i < n; i++ {
		A[i], B[i], D[i], E[i], F[i], R[i] = c, -4*c, 1+6*c, -4*c, c, x[i]
	}
	// Boundary rows have no out-of-range couplings.
	B[0], A[0], A[1] = 0, 0, 0
	E[n-1], F[n-1], F[n-2] = 0, 0, 0
	// Forward elimination.
	for i := 1; i < n; i++ {
		m := B[i] / D[i-1]
		D[i] -= m * E[i-1]
		E[i] -= m * F[i-1]
		R[i] -= m * R[i-1]
		if i+1 < n {
			m2 := A[i+1] / D[i-1]
			B[i+1] -= m2 * E[i-1]
			D[i+1] -= m2 * F[i-1]
			R[i+1] -= m2 * R[i-1]
		}
	}
	// Back substitution.
	x[n-1] = R[n-1] / D[n-1]
	x[n-2] = (R[n-2] - E[n-2]*x[n-1]) / D[n-2]
	for i := n - 3; i >= 0; i-- {
		x[i] = (R[i] - E[i]*x[i+1] - F[i]*x[i+2]) / D[i]
	}
}
