package nas

import (
	"math"
	"testing"

	"github.com/interweaving/komp/internal/cck"
	"github.com/interweaving/komp/internal/core"
	"github.com/interweaving/komp/internal/machine"
)

func TestSpecsWellFormed(t *testing.T) {
	for _, s := range Specs() {
		if math.Abs(s.TotalShare()-1.0) > 0.02 {
			t.Errorf("%s: loop shares sum to %v", s.Name, s.TotalShare())
		}
		for _, mn := range []string{"PHI", "8XEON"} {
			p, ok := s.Profiles[mn]
			if !ok {
				t.Fatalf("%s: missing %s profile", s.Name, mn)
			}
			if p.TimeSec <= 0 {
				t.Fatalf("%s/%s: bad t", s.Name, mn)
			}
		}
		prog := s.Program(machine.PHI(), 8, PipeOpenMP)
		if err := prog.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
	if SpecByName("BT") == nil || SpecByName("nope") != nil {
		t.Fatal("SpecByName lookup broken")
	}
}

// The calibration contract: Linux at 1 thread reproduces the paper's t.
func TestLinuxSingleThreadMatchesPaperT(t *testing.T) {
	for _, mk := range []func() *machine.Machine{machine.PHI, machine.XEON8} {
		m := mk()
		for _, s := range Specs() {
			env := core.New(core.Config{Machine: m, Kind: core.Linux, Seed: 2, Threads: 1})
			res, err := RunModel(env, s, 1)
			if err != nil {
				t.Fatalf("%s/%s: %v", s.Name, m.Name, err)
			}
			want := s.profile(m).TimeSec
			if rel := math.Abs(res.Seconds-want) / want; rel > 0.03 {
				t.Errorf("%s/%s: Linux@1 = %.2fs, paper t = %.2fs (%.1f%% off)",
					s.Name, m.Name, res.Seconds, want, rel*100)
			}
		}
	}
}

func TestModelScalesWithThreads(t *testing.T) {
	m := machine.PHI()
	s := SpecByName("EP")
	t1 := mustRun(t, m, core.Linux, s, 1)
	t32 := mustRun(t, m, core.Linux, s, 32)
	speedup := t1 / t32
	if speedup < 25 {
		t.Fatalf("EP speedup at 32 threads = %.1f, want near-linear", speedup)
	}
}

func mustRun(t *testing.T, m *machine.Machine, kind core.Kind, s *Spec, threads int) float64 {
	t.Helper()
	env := core.New(core.Config{Machine: m, Kind: kind, Seed: 2, Threads: threads})
	res, err := RunModel(env, s, threads)
	if err != nil {
		t.Fatalf("%s %v@%d: %v", s.Name, kind, threads, err)
	}
	return res.Seconds
}

// Fig. 9 shape at single CPU: RTK gains per benchmark on PHI.
func TestRTKSingleCPURatiosOnPHI(t *testing.T) {
	m := machine.PHI()
	targets := map[string]float64{ // from Fig. 9
		"BT": 1.91, "FT": 1.10, "EP": 1.17, "MG": 1.05,
		"SP": 1.64, "LU": 1.16, "CG": 1.08, "IS": 1.20,
	}
	for name, want := range targets {
		s := SpecByName(name)
		lin := mustRun(t, m, core.Linux, s, 1)
		rtk := mustRun(t, m, core.RTK, s, 1)
		got := lin / rtk
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("%s: RTK/Linux@1 = %.2f, paper %.2f", name, got, want)
		}
	}
}

// Fig. 10 shape at single CPU: PIK gains are the ~10% class.
func TestPIKSingleCPURatiosOnPHI(t *testing.T) {
	m := machine.PHI()
	targets := map[string]float64{ // from Fig. 10
		"BT": 1.10, "FT": 1.09, "EP": 1.20, "MG": 1.09,
		"SP": 1.20, "LU": 1.17, "CG": 1.07,
	}
	for name, want := range targets {
		s := SpecByName(name)
		lin := mustRun(t, m, core.Linux, s, 1)
		pik := mustRun(t, m, core.PIK, s, 1)
		got := lin / pik
		if math.Abs(got-want)/want > 0.12 {
			t.Errorf("%s: PIK/Linux@1 = %.2f, paper %.2f", name, got, want)
		}
	}
}

// The BT decay: RTK's edge compresses at full PHI scale (1.91 -> ~1.28).
func TestBTGainDecaysAtScale(t *testing.T) {
	m := machine.PHI()
	s := SpecByName("BT")
	at1 := mustRun(t, m, core.Linux, s, 1) / mustRun(t, m, core.RTK, s, 1)
	at64 := mustRun(t, m, core.Linux, s, 64) / mustRun(t, m, core.RTK, s, 64)
	if !(at64 < at1-0.3) {
		t.Fatalf("BT RTK gain must decay with scale: %.2f@1 -> %.2f@64", at1, at64)
	}
	if at64 < 1.05 || at64 > 1.55 {
		t.Errorf("BT@64 = %.2f, paper shows ~1.28", at64)
	}
}

// The AutoMP story of Fig. 11/12: IS extracts no parallelism; BT/SP/LU
// plateau from privatization-limited loops; MG/CG beat OpenMP.
func TestAutoMPCoverage(t *testing.T) {
	m := machine.PHI()
	progIS := SpecByName("IS").Program(m, 8, PipeAutoMP)
	cIS, err := compileFor(progIS, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cov := cIS.ParallelCoverage(); cov != 0 {
		t.Fatalf("IS AutoMP coverage = %v, paper: no parallelism extracted", cov)
	}
	progBT := SpecByName("BT").Program(m, 8, PipeAutoMP)
	cBT, err := compileFor(progBT, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cov := cBT.ParallelCoverage(); math.Abs(cov-0.75) > 0.02 {
		t.Fatalf("BT AutoMP coverage = %v, want ~0.75", cov)
	}
	progFT := SpecByName("FT").Program(m, 8, PipeAutoMP)
	cFT, err := compileFor(progFT, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cov := cFT.ParallelCoverage(); cov < 0.99 {
		t.Fatalf("FT AutoMP coverage = %v, want ~1", cov)
	}
}

func TestMGAutoMPBeatsOpenMPOnLinux(t *testing.T) {
	m := machine.PHI()
	s := SpecByName("MG")
	omp1 := mustRun(t, m, core.Linux, s, 1)
	auto1 := mustRun(t, m, core.LinuxAutoMP, s, 1)
	// Fig. 11: the whole-function pipeline produces ~2.6x better scalar
	// MG code.
	if r := omp1 / auto1; r < 2.0 || r > 3.2 {
		t.Errorf("MG AutoMP@1 ratio = %.2f, paper ~2.6", r)
	}
	omp32 := mustRun(t, m, core.Linux, s, 32)
	auto32 := mustRun(t, m, core.LinuxAutoMP, s, 32)
	if auto32 >= omp32 {
		t.Errorf("MG AutoMP@32 (%.2fs) must beat OpenMP (%.2fs)", auto32, omp32)
	}
}

func TestBTAutoMPLosesAtScale(t *testing.T) {
	m := machine.PHI()
	s := SpecByName("BT")
	omp64 := mustRun(t, m, core.Linux, s, 64)
	auto64 := mustRun(t, m, core.LinuxAutoMP, s, 64)
	if auto64 <= omp64 {
		t.Errorf("BT AutoMP@64 (%.2fs) must lose to OpenMP (%.2fs): privatization", auto64, omp64)
	}
}

func TestFirstTouchBeatsImmediateOn8XEON(t *testing.T) {
	// The §6.3 extension ablation: at 96 threads, first-touch (threads >=
	// 24 enables it) must beat a hypothetical immediate-allocation run.
	// We emulate "immediate" by running at 16 threads' policy... instead,
	// compare the remote fractions directly.
	m := machine.XEON8()
	ft := core.New(core.Config{Machine: m, Kind: core.RTK, Seed: 2, Threads: 96})
	im := core.New(core.Config{Machine: m, Kind: core.RTK, Seed: 2, Threads: 16})
	if !ft.FirstTouch || im.FirstTouch {
		t.Fatal("policy selection broken")
	}
	s := SpecByName("MG")
	rFT := ft.AS.Alloc("d", s.WorkingSetBytes, 0)
	for t := 0; t < 96; t++ {
		ft.AS.TouchSlice(rFT, t, t, 96)
	}
	rIM := im.AS.Alloc("d", s.WorkingSetBytes, 0)
	var remFT, remIM float64
	for t := 0; t < 96; t++ {
		remFT += ft.AS.RemoteFractionSlice(rFT, t, t, 96) / 96
		remIM += im.AS.RemoteFractionSlice(rIM, t, t, 96) / 96
	}
	if !(remFT < remIM/2) {
		t.Fatalf("first-touch remote %.2f must be far below immediate %.2f", remFT, remIM)
	}
}

func compileFor(p *cck.Program, workers int) (*cck.Compiled, error) {
	return cck.Compile(p, cck.Options{Workers: workers, Fuse: true})
}
