// Package nas implements the NAS Parallel Benchmarks used in the paper's
// evaluation (§2.2, §6.2) in two forms:
//
//   - Real computational kernels (EP, CG, MG, FT, IS in full; BT, SP and
//     LU as compact ADI/SSOR variants with the same parallel structure),
//     written against the OpenMP runtime and verified by sequential-vs-
//     parallel equivalence and analytic invariants. These run on real
//     goroutines (the examples) and on the simulator.
//
//   - Structural models (model.go, specs.go): per-benchmark region tables
//     carrying class-B/C scale — timestep structure, loop trip counts,
//     per-iteration cost calibrated from the paper's single-thread times,
//     memory profiles, and the OpenMP pragma metadata that drives the CCK
//     compiler. The performance figures are regenerated from these.
package nas

import "math/bits"

// NAS pseudorandom number generator: x_{k+1} = a * x_k mod 2^46, the
// exact linear congruential generator the suite specifies (randlc). The
// implementation is exact 46-bit integer arithmetic rather than the
// original's double-precision trickery.
const (
	randMod  = uint64(1) << 46
	randMask = randMod - 1
	// DefaultSeed is the NAS standard seed 271828183.
	DefaultSeed = uint64(271828183)
	// LCGMultiplier is the NAS standard multiplier 5^13.
	LCGMultiplier = uint64(1220703125)
)

// Rand is a NAS randlc stream.
type Rand struct {
	x uint64
	a uint64
}

// NewRand creates a stream with the given seed (0 uses the NAS default).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = DefaultSeed
	}
	return &Rand{x: seed & randMask, a: LCGMultiplier}
}

func mulMod46(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_ = hi // the low 46 bits of the 128-bit product are lo & randMask
	return lo & randMask
}

// Next returns the next value in (0,1), advancing the stream.
func (r *Rand) Next() float64 {
	r.x = mulMod46(r.a, r.x)
	return float64(r.x) / float64(randMod)
}

// Skip advances the stream by n steps in O(log n) — the skip-ahead that
// lets EP's threads generate disjoint blocks independently, exactly as
// the NAS reference does with its power-of-a trick.
func (r *Rand) Skip(n uint64) {
	a := r.a
	for n > 0 {
		if n&1 == 1 {
			r.x = mulMod46(a, r.x)
		}
		a = mulMod46(a, a)
		n >>= 1
	}
}

// At returns a new stream positioned n steps after seed.
func RandAt(seed, n uint64) *Rand {
	r := NewRand(seed)
	r.Skip(n)
	return r
}
