package nas

import (
	"math"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/omp"
)

// BT's defining feature is its *block*-tridiagonal line solves: each
// grid cell carries a small vector of coupled unknowns (five in the
// real code), and the implicit systems along each line have small dense
// matrices as their entries. This file implements real 3x3 block
// algebra, the block-Thomas solver, and BTBlock — a coupled three-field
// ADI diffusion benchmark exercising them with the same parallelization
// pattern as BT (plane-parallel line solves with private block scratch).

// Block3 is a dense 3x3 matrix, row-major.
type Block3 [9]float64

// Vec3 is the per-cell unknown vector.
type Vec3 [3]float64

// Identity3 returns the identity block.
func Identity3() Block3 {
	return Block3{1, 0, 0, 0, 1, 0, 0, 0, 1}
}

// Mul returns a*b.
func (a Block3) Mul(b Block3) Block3 {
	var c Block3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var s float64
			for k := 0; k < 3; k++ {
				s += a[i*3+k] * b[k*3+j]
			}
			c[i*3+j] = s
		}
	}
	return c
}

// MulVec returns a*v.
func (a Block3) MulVec(v Vec3) Vec3 {
	var r Vec3
	for i := 0; i < 3; i++ {
		r[i] = a[i*3]*v[0] + a[i*3+1]*v[1] + a[i*3+2]*v[2]
	}
	return r
}

// Sub returns a-b.
func (a Block3) Sub(b Block3) Block3 {
	var c Block3
	for i := range c {
		c[i] = a[i] - b[i]
	}
	return c
}

// Scale returns s*a.
func (a Block3) Scale(s float64) Block3 {
	var c Block3
	for i := range c {
		c[i] = s * a[i]
	}
	return c
}

// SubVec returns u-v.
func (u Vec3) SubVec(v Vec3) Vec3 {
	return Vec3{u[0] - v[0], u[1] - v[1], u[2] - v[2]}
}

// Inv returns a^{-1} by Gauss-Jordan elimination with partial pivoting.
// It returns ok=false for a singular block.
func (a Block3) Inv() (Block3, bool) {
	m := a
	inv := Identity3()
	for col := 0; col < 3; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r*3+col]) > math.Abs(m[p*3+col]) {
				p = r
			}
		}
		if math.Abs(m[p*3+col]) < 1e-300 {
			return Block3{}, false
		}
		if p != col {
			for j := 0; j < 3; j++ {
				m[p*3+j], m[col*3+j] = m[col*3+j], m[p*3+j]
				inv[p*3+j], inv[col*3+j] = inv[col*3+j], inv[p*3+j]
			}
		}
		// Normalize the pivot row.
		d := m[col*3+col]
		for j := 0; j < 3; j++ {
			m[col*3+j] /= d
			inv[col*3+j] /= d
		}
		// Eliminate the column elsewhere.
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r*3+col]
			if f == 0 {
				continue
			}
			for j := 0; j < 3; j++ {
				m[r*3+j] -= f * m[col*3+j]
				inv[r*3+j] -= f * inv[col*3+j]
			}
		}
	}
	return inv, true
}

// blockTriScratch is the per-line solver scratch (the private lhs work
// arrays of real BT — the privatization pattern §6.2 turns on).
type blockTriScratch struct {
	cp []Block3 // modified super-diagonal blocks
	dp []Vec3   // modified right-hand sides
}

func newBlockTriScratch(n int) *blockTriScratch {
	return &blockTriScratch{cp: make([]Block3, n), dp: make([]Vec3, n)}
}

// solveBlockTri solves the block-tridiagonal system with constant
// coefficient blocks: A x_{i-1} + B x_i + C x_{i+1} = r_i (A/C absent at
// the ends), overwriting x with the solution — the block Thomas
// algorithm of BT's x/y/z_solve.
func solveBlockTri(A, B, C Block3, x []Vec3, s *blockTriScratch) bool {
	n := len(x)
	binv, ok := B.Inv()
	if !ok {
		return false
	}
	s.cp[0] = binv.Mul(C)
	s.dp[0] = binv.MulVec(x[0])
	for i := 1; i < n; i++ {
		// denom = B - A*cp[i-1]
		denom := B.Sub(A.Mul(s.cp[i-1]))
		dinv, ok := denom.Inv()
		if !ok {
			return false
		}
		if i < n-1 {
			s.cp[i] = dinv.Mul(C)
		}
		s.dp[i] = dinv.MulVec(x[i].SubVec(A.MulVec(s.dp[i-1])))
	}
	x[n-1] = s.dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = s.dp[i].SubVec(s.cp[i].MulVec(x[i+1]))
	}
	return true
}

// BTBlockResult is the block-ADI benchmark output.
type BTBlockResult struct {
	Steps  int
	MaxAbs float64
	Sum    float64
}

// btCoupling is the cross-field coupling matrix of the model system
// u_t = D ∇²u with a non-diagonal diffusion tensor D (the three fields
// diffuse into each other) — diagonally dominant, so the implicit
// systems are well conditioned.
func btCoupling(dt float64) (A, B, C Block3) {
	d := Block3{
		1.0, 0.2, 0.1,
		0.2, 0.8, 0.2,
		0.1, 0.2, 1.2,
	}
	off := d.Scale(-dt)
	diag := Identity3().Sub(off.Scale(2)) // I + 2*dt*D
	return off, diag, off
}

// BTBlock runs timesteps of block-tridiagonal ADI on an n^3 grid of
// 3-vectors: the real BT computational pattern (block line solves along
// x, y, z with per-thread block scratch), on a coupled diffusion system.
func BTBlock(tc exec.TC, rt *omp.Runtime, n, timesteps, threads int) BTBlockResult {
	u := make([]Vec3, n*n*n)
	r := NewRand(0)
	for i := range u {
		u[i] = Vec3{2*r.Next() - 1, 2*r.Next() - 1, 2*r.Next() - 1}
	}
	const dt = 0.05
	A, B, C := btCoupling(dt / 3)
	for step := 0; step < timesteps; step++ {
		for dim := 0; dim < 3; dim++ {
			blockSweep(tc, rt, u, n, dim, A, B, C, threads)
		}
	}
	var res BTBlockResult
	res.Steps = timesteps
	for _, v := range u {
		for _, c := range v {
			res.Sum += c
			if a := math.Abs(c); a > res.MaxAbs {
				res.MaxAbs = a
			}
		}
	}
	return res
}

// blockSweep performs the block line solves along one dimension,
// parallel over the perpendicular plane — BT's x_solve/y_solve/z_solve.
func blockSweep(tc exec.TC, rt *omp.Runtime, u []Vec3, n, dim int, A, B, C Block3, threads int) {
	stride := [3]int{n * n, n, 1}[dim]
	rt.Parallel(tc, threads, func(w *omp.Worker) {
		// Private per-thread scratch: the lhs work arrays.
		line := make([]Vec3, n)
		scratch := newBlockTriScratch(n)
		w.ForEach(0, n*n, omp.ForOpt{Sched: omp.Static}, func(p int) {
			base := lineBase(p, n, dim)
			for i := 0; i < n; i++ {
				line[i] = u[base+i*stride]
			}
			if !solveBlockTri(A, B, C, line, scratch) {
				panic("nas: singular block system")
			}
			for i := 0; i < n; i++ {
				u[base+i*stride] = line[i]
			}
		})
	})
}
