package bench

import (
	"fmt"
	"io"
	"sync/atomic"

	"github.com/interweaving/komp/internal/cck"
	"github.com/interweaving/komp/internal/core"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/ompt"
)

// profileEnvs is the fixed environment order of the profile report.
var profileEnvs = []core.Kind{core.Linux, core.RTK, core.PIK, core.CCK}

// ProfileReport runs a fixed construct-mix workload under every
// environment on the simulated PHI machine with a per-construct profiler
// attached, and renders one breakdown per environment (`kompbench
// -profile`). The three OpenMP environments (Linux, RTK, PIK) run the
// same mix through the runtime; CCK — which has no OpenMP runtime — runs
// a small AutoMP-compiled program on kernel-level VIRGIL. Everything is
// virtual time on the simulator, so the whole report is a pure function
// of the seed: two runs diff byte-for-byte.
func ProfileReport(w io.Writer, opt Options) error {
	m := machine.PHI()
	threads, reps := 16, 4
	if opt.Quick {
		threads, reps = 8, 2
	}
	fmt.Fprintf(w, "Per-construct profile: %s, %d threads, %d reps, seed %d\n",
		m.Name, threads, reps, opt.seed())
	for _, kind := range profileEnvs {
		fmt.Fprintf(w, "\n--- %s ---\n", kind)
		sp := ompt.NewSpine()
		prof := ompt.NewProfile(sp)
		env := core.New(core.Config{Machine: m, Kind: kind, Seed: opt.seed(),
			Threads: threads, Spine: sp})
		var err error
		if kind == core.CCK {
			err = runProfileCCK(env, threads, reps)
		} else {
			err = runProfileOMP(env, threads, reps)
		}
		if err != nil {
			return fmt.Errorf("profile %s: %w", kind, err)
		}
		prof.Report(w)
	}
	return nil
}

// runProfileOMP exercises every instrumented construct: the three loop
// schedules, sections, single, ordered, barrier, critical, lock,
// reduction, and an explicit-task burst with taskwait.
func runProfileOMP(env *core.Env, threads, reps int) error {
	rt := env.OMPRuntime()
	lock := rt.NewLock()
	var acc atomic.Int64
	_, err := env.Layer.Run(func(tc exec.TC) {
		for r := 0; r < reps; r++ {
			rt.Parallel(tc, threads, func(w *omp.Worker) {
				w.For(0, threads*8, omp.ForOpt{Sched: omp.Static}, func(lo, hi int) {
					w.TC().Charge(int64(hi-lo) * 400)
				})
				w.For(0, threads*8, omp.ForOpt{Sched: omp.Dynamic, Chunk: 2}, func(lo, hi int) {
					w.TC().Charge(int64(hi-lo) * 400)
				})
				w.For(0, threads*8, omp.ForOpt{Sched: omp.Guided}, func(lo, hi int) {
					w.TC().Charge(int64(hi-lo) * 400)
				})
				w.Sections(false,
					func() { w.TC().Charge(900) },
					func() { w.TC().Charge(600) },
					func() { w.TC().Charge(300) })
				w.Single(false, func() { w.TC().Charge(1200) })
				w.ForOrdered(0, threads*2, omp.ForOpt{Sched: omp.Static},
					func(i int, ordered func(func())) {
						w.TC().Charge(200)
						ordered(func() { acc.Add(1) })
					})
				w.Barrier()
				w.Critical("profile", func() { w.TC().Charge(150) })
				lock.Set(w)
				w.TC().Charge(100)
				lock.Unset(w)
				_ = w.Reduce(omp.ReduceSum, float64(w.ThreadNum()))
				w.Master(func() {
					for i := 0; i < threads*2; i++ {
						w.Task(func(tw *omp.Worker) { tw.TC().Charge(500) })
					}
				})
				w.Taskwait()
			})
		}
		rt.Close(tc)
	})
	return err
}

// profileProgram is the small AutoMP source for the CCK column: a
// parallelizable loop, a reduction loop, and a sequential tail.
func profileProgram(n int) *cck.Program {
	return &cck.Program{Name: "profile", Funcs: []*cck.Function{{
		Name: "main",
		Body: []cck.Node{
			&cck.Loop{Name: "stream", N: n, CostNS: 700,
				Pragma:  &cck.Pragma{Kind: cck.PragmaParallelFor, Independent: true},
				Effects: []cck.Effect{{Obj: "a", Mode: cck.Write, Pattern: cck.Disjoint}},
			},
			&cck.Loop{Name: "dot", N: n, CostNS: 500,
				Pragma: &cck.Pragma{Kind: cck.PragmaParallelFor, Independent: true,
					Reductions: map[string]string{"s": "sum"}},
				Effects: []cck.Effect{
					{Obj: "a", Mode: cck.Read, Pattern: cck.SharedRO},
					{Obj: "s", Mode: cck.ReadWrite, Pattern: cck.ReductionAcc},
				},
			},
			&cck.Seq{Name: "tail", CostNS: 2500},
		},
	}}}
}

func runProfileCCK(env *core.Env, threads, reps int) error {
	compiled, err := cck.Compile(profileProgram(threads*64),
		cck.Options{Workers: threads, TargetChunkNS: 4000})
	if err != nil {
		return err
	}
	compiled.Spine = env.Spine()
	_, err = env.Layer.Run(func(tc exec.TC) {
		if ph, ok := tc.(exec.ProcHolder); ok {
			ph.Proc().SetCPU(-1)
		}
		v := env.Virgil()
		v.Start(tc)
		for r := 0; r < reps; r++ {
			compiled.RunVirgil(tc, v, env.Scale(0))
		}
		v.Stop(tc)
	})
	return err
}
