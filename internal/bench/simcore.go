package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"github.com/interweaving/komp/internal/core"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/sim"
)

// AblationSimcore measures the DES core itself, on both queue
// algorithms (KOMP_SIM_EQ): first a raw event-storm throughput sweep —
// per-core timer streams, same-timestamp barrier-release storms, and
// armed-then-cancelled alarms, the event mix the simulated kernels
// generate — across {24..1024} simulated cores, then an end-to-end RTK
// barrier figure point on the synthetic 1024-core machine. Virtual
// results (events fired, spill counts, ns/barrier, heap/wheel
// agreement) are deterministic and go to stdout; wall-clock throughput
// (events/sec, the wheel speedup, the built-in acceptance check) is
// machine-dependent and goes to stderr so bench-smoke byte-identity
// holds. The ablation fails if the two queues disagree on any virtual
// result, or if the wheel does not beat the heap's events/sec at 192
// cores (the CI regression gate).
func AblationSimcore(w io.Writer, opt Options) error {
	scales := []int{24, 48, 96, 192, 1024}
	horizon := int64(1_000_000) // virtual ns of storm per scale
	rounds := 120               // barrier rounds at the 1024-core point
	if opt.Quick {
		scales = []int{192, 1024}
		horizon = 200_000
		rounds = 24
	}

	type cell struct {
		virtualNS int64
		events    int64
		spilled   int64
		wallSec   float64
	}
	algos := []sim.EQAlgo{sim.EQHeap, sim.EQWheel}

	// The event storm: two tick streams per core at staggered periods
	// (every 64th tick arms and immediately cancels an alarm — the
	// futex recheck pattern), and a coordinator that releases an n-wide
	// same-timestamp storm every 400 ns (a barrier release in
	// miniature). Pure scheduler callbacks: this is queue cost, not
	// goroutine-handoff cost.
	storm := func(algo sim.EQAlgo, n int) cell {
		s := sim.NewEQ(1, opt.seed(), algo)
		noop := func() {}
		// Standing far-future load: an armed timeout per core (region
		// deadlines, watchdogs, scheduled faults) that never fires
		// inside the horizon. The heap sifts past them on every
		// operation; the wheel keeps them in the spill level.
		for i := 0; i < n; i++ {
			s.At(sim.Time(horizon)+1_000_000+sim.Time(i), noop)
		}
		// Two timer streams per core (a scheduler tick and a profiling
		// tick) at staggered, mutually-prime-ish periods.
		ticks := make([]func(), 2*n)
		for i := range ticks {
			i := i
			period := sim.Time(96 + i%67)
			beat := 0
			ticks[i] = func() {
				beat++
				if beat%64 == 0 {
					cancel := s.AfterCancel(500, noop)
					cancel()
				}
				s.After(period, ticks[i])
			}
			s.After(sim.Time(1+i%97), ticks[i])
		}
		var release func()
		release = func() {
			at := s.Now() + 1 // all n at the same timestamp
			for i := 0; i < n; i++ {
				s.At(at, noop)
			}
			s.After(400, release)
		}
		s.After(400, release)
		start := time.Now()
		s.RunUntil(sim.Time(horizon))
		wall := time.Since(start).Seconds()
		return cell{int64(s.Now()), s.EventsFired(), s.EventsSpilled(), wall}
	}

	// The end-to-end figure point: an RTK barrier storm on the
	// synthetic 1024-core machine (16 sockets x 64 cores) — the scale
	// the heap-based queue could not sustain.
	barrier := func(algo sim.EQAlgo, n int) (cell, error) {
		env := core.New(core.Config{Machine: machine.BigIron(16, 64), Kind: core.RTK,
			Seed: opt.seed(), Threads: n, SimEQ: algo})
		rt := env.OMPRuntime()
		start := time.Now()
		elapsed, err := env.Layer.Run(func(tc exec.TC) {
			rt.Parallel(tc, n, func(wk *omp.Worker) {
				for r := 0; r < rounds; r++ {
					// Slightly skewed work so arrivals stagger and the
					// release is a same-timestamp storm.
					wk.TC().Charge(int64(100 + ((wk.ThreadNum()+r)%7)*13))
					wk.Barrier()
				}
			})
			rt.Close(tc)
		})
		wall := time.Since(start).Seconds()
		if err != nil {
			return cell{}, err
		}
		return cell{elapsed, env.Layer.Sim.EventsFired(), env.Layer.Sim.EventsSpilled(), wall}, nil
	}

	checkAgree := func(label string, n int, heap, wheel cell) error {
		if heap.virtualNS != wheel.virtualNS || heap.events != wheel.events {
			return fmt.Errorf("simcore %s at %d cores: heap and wheel disagree (virtual %d vs %d ns, %d vs %d events) — determinism broken",
				label, n, heap.virtualNS, wheel.virtualNS, heap.events, wheel.events)
		}
		return nil
	}
	eps := func(c cell) float64 { return float64(c.events) / c.wallSec }

	fmt.Fprintf(w, "Ablation: DES event queue — binary heap vs timer wheel (KOMP_SIM_EQ)\n")
	fmt.Fprintf(w, "Event storm: per-core ticks + same-timestamp releases + cancelled alarms, %d virtual us\n", horizon/1000)
	fmt.Fprintf(w, "%-6s %-6s %12s %10s %7s\n", "cores", "eq", "events", "spilled", "agree")
	for _, n := range scales {
		var cells [2]cell
		for i, algo := range algos {
			cells[i] = storm(algo, n)
		}
		heap, wheel := cells[0], cells[1]
		agree := heap.virtualNS == wheel.virtualNS && heap.events == wheel.events
		for i, algo := range algos {
			fmt.Fprintf(w, "%-6d %-6s %12d %10d %7v\n", n, algo, cells[i].events, cells[i].spilled, agree)
			opt.Recorder.Add(Record{
				Figure: "simcore", Construct: "EVENT-STORM", Env: "rtk", Cores: n,
				EQAlgo: algo.String(), EventsPerSec: eps(cells[i]),
			})
		}
		if err := checkAgree("storm", n, heap, wheel); err != nil {
			return err
		}
		speedup := eps(wheel) / eps(heap)
		fmt.Fprintf(os.Stderr, "simcore: storm %4d cores: heap %.2fM events/s, wheel %.2fM events/s (%.2fx)\n",
			n, eps(heap)/1e6, eps(wheel)/1e6, speedup)
		if n == 192 && eps(wheel) <= eps(heap) {
			return fmt.Errorf("simcore acceptance: wheel %.0f events/s did not beat heap %.0f events/s at 192 cores",
				eps(wheel), eps(heap))
		}
	}

	fmt.Fprintf(w, "Figure point: RTK barrier on 16x64 = 1024 cores, %d rounds\n", rounds)
	fmt.Fprintf(w, "%-6s %-6s %14s %12s %10s %7s\n", "cores", "eq", "vus/barrier", "events", "spilled", "agree")
	var cells [2]cell
	for i, algo := range algos {
		c, err := barrier(algo, 1024)
		if err != nil {
			return fmt.Errorf("simcore barrier %s: %w", algo, err)
		}
		cells[i] = c
	}
	heap, wheel := cells[0], cells[1]
	agree := heap.virtualNS == wheel.virtualNS && heap.events == wheel.events
	for i, algo := range algos {
		c := cells[i]
		fmt.Fprintf(w, "%-6d %-6s %14.2f %12d %10d %7v\n",
			1024, algo, float64(c.virtualNS)/float64(rounds)/1e3, c.events, c.spilled, agree)
		opt.Recorder.Add(Record{
			Figure: "simcore", Construct: "BARRIER-1024", Env: "rtk", Cores: 1024,
			MedianNS: float64(c.virtualNS) / float64(rounds),
			EQAlgo:   algo.String(), EventsPerSec: eps(c),
		})
	}
	if err := checkAgree("barrier", 1024, heap, wheel); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "simcore: barrier 1024 cores: heap %.2fs wall, wheel %.2fs wall (%.2fx)\n",
		heap.wallSec, wheel.wallSec, heap.wallSec/wheel.wallSec)
	return nil
}
