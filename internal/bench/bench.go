// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (§6) — Figure 6 through Figure 15
// — as text tables, from the simulated environments.
package bench

import (
	"fmt"
	"io"
	"sort"

	"github.com/interweaving/komp/internal/core"
	"github.com/interweaving/komp/internal/epcc"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/nas"
	"github.com/interweaving/komp/internal/stats"
)

// Options tunes a figure run.
type Options struct {
	// Seed for the deterministic simulators.
	Seed int64
	// Quick reduces repetitions and scales for smoke runs.
	Quick bool
	// Scales overrides the machine's CPU sweep (nil: paper sweep).
	Scales []int
	// Benchmarks restricts the NAS set (nil: all eight).
	Benchmarks []string
	// Recorder, when non-nil, collects machine-readable Records from
	// every figure run (kompbench -json).
	Recorder *Recorder
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

// Figure is a regenerable figure.
type Figure struct {
	ID    string
	Title string
	Run   func(w io.Writer, opt Options) error
}

// Figures returns all figures in paper order.
func Figures() []Figure {
	return []Figure{
		{"fig6", "Design and software engineering tradeoffs", Fig6},
		{"fig7", "EPCC microbenchmarks: RTK vs Linux, 64 cores of PHI", Fig7},
		{"fig8", "EPCC microbenchmarks: PIK vs Linux, 64 cores of PHI", Fig8},
		{"fig9", "NAS: RTK relative to Linux on PHI", Fig9},
		{"fig10", "NAS: PIK relative to Linux on PHI", Fig10},
		{"fig11", "NAS: CCK absolute times on PHI", Fig11},
		{"fig12", "NAS: CCK relative to Linux OpenMP on PHI", Fig12},
		{"fig13", "EPCC microbenchmarks: RTK and PIK vs Linux, 192 cores of 8XEON", Fig13},
		{"fig14", "NAS: RTK and PIK relative to Linux on 8XEON", Fig14},
		{"fig15", "NAS: CCK relative to Linux OpenMP on 8XEON", Fig15},
	}
}

// ByID returns a figure by its id.
func ByID(id string) (Figure, bool) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}

// --- Figure 6: the static design-tradeoff table ---

// Fig6 renders the design/software-engineering summary (the paper's
// Figure 6, which is a table, reproduced verbatim as the design facts of
// this reproduction).
func Fig6(w io.Writer, _ Options) error {
	fmt.Fprintln(w, "Figure 6: summary of design and software engineering tradeoffs")
	fmt.Fprintln(w, "")
	fmt.Fprintf(w, "%-34s %10s %10s %12s\n", "Aspect", "RTK", "PIK", "CCK")
	fmt.Fprintln(w, "--- Effort ---")
	fmt.Fprintf(w, "%-34s %10s %10s %12s\n", "Runtime", "major", "none", "minor")
	fmt.Fprintf(w, "%-34s %10s %10s %12s\n", "Kernel", "minor", "major", "minor")
	fmt.Fprintf(w, "%-34s %10s %10s %12s\n", "Compiler", "none", "none", "major")
	fmt.Fprintln(w, "--- Implementation Size (C LOC in the paper) ---")
	fmt.Fprintf(w, "%-34s %10s %10s %12s\n", "Runtime", "1,600", "0", "550")
	fmt.Fprintf(w, "%-34s %10s %10s %12s\n", "Kernel", "2,200", "13,250", "600")
	fmt.Fprintf(w, "%-34s %10s %10s %12s\n", "Compiler", "0", "0", "6,550 (C++)")
	fmt.Fprintln(w, "--- Benefits and Opportunities ---")
	fmt.Fprintf(w, "%-34s %10s %10s %12s\n", "Application development", "easier", "easiest", "easy")
	fmt.Fprintf(w, "%-34s %10s %10s %12s\n", "Leveraging kernel context", "easier", "difficult", "easiest")
	fmt.Fprintf(w, "%-34s %10s %10s %12s\n", "Decoupled from OpenMP runtime", "no", "no", "yes")
	fmt.Fprintf(w, "%-34s %10s %10s %12s\n", "Applies to all code in kernel", "yes", "no", "no")
	fmt.Fprintf(w, "%-34s %10s %10s %12s\n", "Automatic parallelization", "no", "no", "yes")
	return nil
}

// --- EPCC figures ---

func epccConfig(threads int, quick bool) epcc.Config {
	cfg := epcc.Defaults(threads)
	if quick {
		cfg.OuterReps = 3
	} else {
		cfg.OuterReps = 7
	}
	return cfg
}

// runEPCC runs all four suites under one environment kind, returning
// results keyed by suite, plus the per-suite benchmark order.
func runEPCC(m *machine.Machine, kind core.Kind, threads int, seed int64, quick bool) (map[string]map[string]epcc.Result, map[string][]string, error) {
	env := core.New(core.Config{Machine: m, Kind: kind, Seed: seed, Threads: threads})
	rt := env.OMPRuntime()
	bySuite := map[string]map[string]epcc.Result{}
	order := map[string][]string{}
	var runErr error
	_, err := env.Layer.Run(func(tc exec.TC) {
		defer rt.Close(tc)
		for _, suite := range epcc.Suites() {
			rs, err := epcc.Run(tc, rt, suite, epccConfig(threads, quick))
			if err != nil {
				runErr = err
				return
			}
			m := map[string]epcc.Result{}
			for _, r := range rs {
				m[r.Name] = r
				order[suite] = append(order[suite], r.Name)
			}
			bySuite[suite] = m
		}
	})
	if err == nil {
		err = runErr
	}
	return bySuite, order, err
}

// epccTable renders one suite comparison.
func epccTable(w io.Writer, suite string, names []string, cols []string, data map[string]map[string]epcc.Result) {
	fmt.Fprintf(w, "\n(%s)\n", suite)
	fmt.Fprintf(w, "%-26s", "benchmark")
	for _, c := range cols {
		fmt.Fprintf(w, " %14s %10s", c+" us", "sd")
	}
	fmt.Fprintln(w)
	for _, n := range names {
		fmt.Fprintf(w, "%-26s", n)
		for _, c := range cols {
			r := data[c][n]
			fmt.Fprintf(w, " %14.3f %10.3f", r.OverheadUS, r.SDUS)
		}
		fmt.Fprintln(w)
	}
}

// --- NAS sweep helpers ---

func nasScales(m *machine.Machine, opt Options) []int {
	if len(opt.Scales) > 0 {
		return opt.Scales
	}
	if opt.Quick {
		if m.Sockets > 1 {
			return []int{1, 24, 192}
		}
		return []int{1, 8, 64}
	}
	return m.Scales
}

func nasSpecs(opt Options) []*nas.Spec {
	if len(opt.Benchmarks) == 0 {
		return nas.Specs()
	}
	var out []*nas.Spec
	for _, n := range opt.Benchmarks {
		if s := nas.SpecByName(n); s != nil {
			out = append(out, s)
		}
	}
	return out
}

// sweep runs spec under kind across scales, returning seconds per scale.
func sweep(m *machine.Machine, kind core.Kind, s *nas.Spec, scales []int, seed int64) (map[int]float64, error) {
	out := map[int]float64{}
	for _, n := range scales {
		env := core.New(core.Config{Machine: m, Kind: kind, Seed: seed, Threads: n,
			BootImageBytes: bootImageBytes(kind, s)})
		res, err := nas.RunModel(env, s, n)
		if err != nil {
			return nil, fmt.Errorf("%s %v@%d: %w", s.Name, kind, n, err)
		}
		out[n] = res.Seconds
	}
	return out, nil
}

// bootImageBytes: RTK and CCK link the benchmark's statics into the boot
// image (§6.2).
func bootImageBytes(kind core.Kind, s *nas.Spec) int64 {
	if kind == core.RTK || kind == core.CCK {
		return s.WorkingSetBytes
	}
	return 0
}

// relTable renders a normalized-performance table (Linux/env per scale).
func relTable(w io.Writer, title string, scales []int, specs []*nas.Spec,
	linux map[string]map[int]float64, envs map[string]map[string]map[int]float64, envOrder []string) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-8s %-14s %-12s", "bench", "t(Linux,1thr)", "env")
	for _, n := range scales {
		fmt.Fprintf(w, " %7d", n)
	}
	fmt.Fprintln(w)
	var all = map[string][]float64{}
	for _, s := range specs {
		for _, en := range envOrder {
			ev, ok := envs[en][s.Name]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "%-8s %-14.2f %-12s", s.Name+"-"+s.Class, linux[s.Name][1], en)
			for _, n := range scales {
				ratio := linux[s.Name][n] / ev[n]
				fmt.Fprintf(w, " %7.2f", ratio)
				all[en] = append(all[en], ratio)
			}
			fmt.Fprintln(w)
		}
	}
	var names []string
	for en := range all {
		names = append(names, en)
	}
	sort.Strings(names)
	for _, en := range names {
		fmt.Fprintf(w, "geomean(%s) across benchmarks and scales: %.2f\n", en, stats.GeoMean(all[en]))
	}
}
