package bench

import (
	"fmt"
	"io"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/fault"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/mpi"
	"github.com/interweaving/komp/internal/multikernel"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/sim"
)

// AblationFaults is the resilience study: the three recovery mechanisms
// (MPI retransmission, OpenMP team shrink, multikernel reboot-and-rerun)
// each driven by a seeded fault plan, reporting completion and
// virtual-time overhead against the fault-free baseline. Every number is
// virtual-time derived, so the whole report is byte-identical across
// runs with the same seed.
func AblationFaults(w io.Writer, opt Options) error {
	if err := faultsMPI(w, opt); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := faultsOMP(w, opt); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return faultsMultikernel(w, opt)
}

// faultsMPI runs a CG-style iterative solve (ring halo exchange + an
// Allreduce residual per iteration) across a sweep of NIC frame-drop
// rates. The reliable transport (seq/ack/retransmit with exponential
// backoff) must complete every lossy run; rate 1.0 exhausts the retry
// budget and must fail with a clean error instead of hanging.
func faultsMPI(w io.Writer, opt Options) error {
	m := machine.PHI()
	const nodes = 4
	iters := 20
	if opt.Quick {
		iters = 5
	}
	plans := []string{"none", "drop=0.01", "drop=0.05", "drop=0.10", "drop=1"}

	fmt.Fprintf(w, "Resilience: CG-style MPI solve, %d nodes on PHI, %d iterations (16KiB halo + Allreduce per iter)\n", nodes, iters)
	fmt.Fprintf(w, "%-12s %-16s %10s %10s %8s %8s\n", "plan", "completed", "time(ms)", "overhead", "dropped", "retx")

	var baseNS int64
	for i, planStr := range plans {
		plan, err := fault.Parse(planStr)
		if err != nil {
			return err
		}
		plan.Seed = opt.seed() + int64(i)
		var eng *fault.Engine
		cfg := mpi.Config{
			Machine: m, Seed: opt.seed(), Nodes: nodes,
			KernelCosts: exec.Costs{ThreadSpawnNS: 2200, FutexWaitEntryNS: 80,
				FutexWakeEntryNS: 80, FutexWakeLatencyNS: 400, MallocNS: 300},
			Retx: mpi.RetxPolicy{TimeoutNS: 20_000, Backoff: 2, MaxRetries: 6},
		}
		if plan.DropRate > 0 {
			cfg.Drop = func() bool { return eng.DropFrame() }
		}
		c, err := mpi.New(cfg)
		if err != nil {
			return err
		}
		eng = fault.New(c.Sim, plan)
		elapsed, runErr := c.Run(func(co *mpi.Comm) error {
			r, size := co.Rank(), co.Size()
			for it := 0; it < iters; it++ {
				base := it * 8
				if err := co.Send((r+1)%size, base+1, 16<<10, float64(r)); err != nil {
					return err
				}
				if _, err := co.Recv((r+size-1)%size, base+1); err != nil {
					return err
				}
				if _, err := co.Allreduce(float64(r), 8, func(a, b float64) float64 { return a + b }, base+2); err != nil {
					return err
				}
			}
			return nil
		})
		completed := "yes"
		if runErr != nil {
			completed = "no (link failed)"
		}
		if i == 0 {
			baseNS = elapsed
		}
		overhead := "-"
		if i > 0 && runErr == nil && baseNS > 0 {
			overhead = fmt.Sprintf("%+.1f%%", 100*float64(elapsed-baseNS)/float64(baseNS))
		}
		fmt.Fprintf(w, "%-12s %-16s %10.2f %10s %8d %8d\n",
			planStr, completed, float64(elapsed)/1e6, overhead, c.Stats.Dropped, c.Stats.Retx)
	}
	fmt.Fprintln(w, "(rate 1.0 exhausts the retry budget: the transport latches a clean")
	fmt.Fprintln(w, " link-failure error on every rank instead of hanging the job)")
	return nil
}

// faultsOMP runs an EP-style embarrassingly parallel loop in Resilient
// mode under CPU-offline faults: doomed workers leave the team at safe
// points, unclaimed chunks redistribute over the survivors, and the
// checksum proves every iteration ran exactly once. A lost-wake plan
// exercises the futex timed-recheck recovery on the same workload.
func faultsOMP(w io.Writer, opt Options) error {
	iters := 400
	if opt.Quick {
		iters = 200
	}
	const threads = 8
	type scenario struct {
		label, plan string
	}
	// Offline times must land inside the loop (~1.25ms at the quick
	// scale) so the team actually shrinks mid-region; a fault after the
	// region ends only dooms idle pool workers.
	scenarios := []scenario{
		{"none", "none"},
		{"1 CPU off", "cpu-offline@400us:5"},
		{"2 CPUs off", "cpu-offline@300us:3;cpu-offline@700us:6"},
		{"lost wakes", "lostwake=0.02"},
	}

	fmt.Fprintf(w, "Resilience: EP-style OpenMP loop, %d threads, %d chunks of 50us (Resilient ICV on)\n", threads, iters)
	fmt.Fprintf(w, "%-12s %-40s %-10s %9s %9s %10s %10s\n", "scenario", "plan", "checksum", "alive", "injected", "time(ms)", "overhead")

	var baseNS int64
	for i, sc := range scenarios {
		plan, err := fault.Parse(sc.plan)
		if err != nil {
			return err
		}
		plan.Seed = opt.seed() + int64(i)
		s := sim.New(16, opt.seed())
		layer := exec.NewSimLayer(s, exec.Costs{
			ThreadSpawnNS: 2000, ThreadJoinNS: 300,
			FutexWaitEntryNS: 100, FutexWakeEntryNS: 100,
			FutexWakeLatencyNS: 300, FutexWakeStaggerNS: 30,
			AtomicRMWNS: 20, CacheLineXferNS: 40, MallocNS: 100,
		})
		rt := omp.New(layer, omp.Options{MaxThreads: threads, Bind: true, Resilient: true})
		eng := fault.New(s, plan)
		eng.Arm(fault.Handlers{CPUOffline: func(cpu int) { rt.OfflineCPU(cpu) }})
		if plan.LostWakeRate > 0 {
			// Dropped wakes stall the waiter until its 50us timed recheck
			// fires; the run completes slower instead of hanging.
			layer.FaultFutex(eng.LoseWake, 50_000)
		}
		done := 0
		alive := 0
		elapsed, err := layer.Run(func(tc exec.TC) {
			rt.Parallel(tc, threads, func(wk *omp.Worker) {
				wk.ForEach(0, iters, omp.ForOpt{Sched: omp.Dynamic, Chunk: 2}, func(int) {
					wk.TC().Charge(50_000)
					wk.Atomic(func() { done++ })
				})
				alive = wk.NumAlive()
			})
			rt.Close(tc)
		})
		if err != nil {
			return err
		}
		checksum := "ok"
		if done != iters {
			checksum = fmt.Sprintf("BAD (%d/%d)", done, iters)
		}
		if i == 0 {
			baseNS = elapsed
		}
		overhead := "-"
		if i > 0 && baseNS > 0 {
			overhead = fmt.Sprintf("%+.1f%%", 100*float64(elapsed-baseNS)/float64(baseNS))
		}
		fmt.Fprintf(w, "%-12s %-40s %-10s %5d/%-3d %9d %10.2f %10s\n",
			sc.label, sc.plan, checksum, alive, threads, eng.InjectedTotal(), float64(elapsed)/1e6, overhead)
	}
	fmt.Fprintln(w, "(static schedules degrade to exactly-once chunk claiming under the")
	fmt.Fprintln(w, " Resilient ICV; a dying worker completes the barrier its departure")
	fmt.Fprintln(w, " finishes, so the survivors are never left waiting)")
	return nil
}

// faultsMultikernel crashes the Nautilus compartment of a multikernel
// partition mid-job and lets the host-side supervisor reboot and rerun
// under a bounded restart budget; §7's millisecond reboot is what makes
// the loop affordable.
func faultsMultikernel(w io.Writer, opt Options) error {
	jobNS := int64(12_000_000)
	if opt.Quick {
		jobNS = 6_000_000
	}
	type scenario struct {
		label, plan string
	}
	scenarios := []scenario{
		{"none", "none"},
		{"1 crash", "crash@4ms:0"},
		{"2 crashes", "crash@4ms:0;crash@9ms:0"},
		{"crash storm", "crash@2ms:0;crash@5ms:0;crash@8ms:0;crash@11ms:0"},
	}
	fmt.Fprintf(w, "Resilience: multikernel compartment crash + supervised rerun (%.0fms job, restart budget 2)\n", float64(jobNS)/1e6)
	fmt.Fprintf(w, "%-12s %-56s %-10s %8s %10s\n", "scenario", "plan", "completed", "restarts", "time(ms)")

	for i, sc := range scenarios {
		plan, err := fault.Parse(sc.plan)
		if err != nil {
			return err
		}
		plan.Seed = opt.seed() + int64(i)
		part, err := multikernel.Boot(multikernel.Config{
			Machine:          machine.PHI(),
			Seed:             opt.seed(),
			CompartmentCPUs:  16,
			CompartmentBytes: 8 << 30,
			KernelCosts: exec.Costs{ThreadSpawnNS: 2200, FutexWaitEntryNS: 80,
				FutexWakeEntryNS: 80, FutexWakeLatencyNS: 400, MallocNS: 300},
			BootImageBytes: 64 << 20,
		})
		if err != nil {
			return err
		}
		eng := fault.New(part.Sim, plan)
		eng.Arm(fault.Handlers{CompartmentCrash: func(int) { part.Crash() }})
		var res multikernel.SupervisedResult
		var supErr error
		elapsed, err := part.HostLayer.Run(func(tc exec.TC) {
			res, supErr = part.RunSupervised(tc, "job", part.CompCPUs[0],
				multikernel.RestartPolicy{MaxRestarts: 2},
				func(ktc exec.TC) { ktc.Charge(jobNS) })
		})
		if err != nil {
			return err
		}
		completed := "yes"
		if supErr != nil {
			completed = "no (budget)"
		}
		fmt.Fprintf(w, "%-12s %-56s %-10s %8d %10.2f\n",
			sc.label, sc.plan, completed, res.Restarts, float64(elapsed)/1e6)
	}
	fmt.Fprintln(w, "(each recovery is one compartment reboot — milliseconds of virtual")
	fmt.Fprintln(w, " time — plus a rerun from scratch; the storm exhausts the budget and")
	fmt.Fprintln(w, " fails with a clean error rather than restarting forever)")
	return nil
}
