package bench

import (
	"fmt"
	"io"

	"github.com/interweaving/komp/internal/core"
	"github.com/interweaving/komp/internal/epcc"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/nas"
)

// epccFigure renders one EPCC comparison figure, recording a Record per
// (environment, benchmark) when opt.Recorder is set.
func epccFigure(w io.Writer, id, title string, m *machine.Machine, kinds []core.Kind, threads int, opt Options) error {
	fmt.Fprintln(w, title)
	data := map[string]map[string]map[string]epcc.Result{} // kind -> suite -> name
	var order map[string][]string
	var cols []string
	for _, kind := range kinds {
		bySuite, ord, err := runEPCC(m, kind, threads, opt.seed(), opt.Quick)
		if err != nil {
			return err
		}
		data[kind.String()] = bySuite
		if order == nil {
			order = ord
		}
		cols = append(cols, kind.String())
	}
	for _, suite := range epcc.Suites() {
		perKind := map[string]map[string]epcc.Result{}
		for _, c := range cols {
			perKind[c] = data[c][suite]
		}
		epccTable(w, suite, order[suite], cols, perKind)
		for _, c := range cols {
			for _, n := range order[suite] {
				r := perKind[c][n]
				rec := Record{Figure: id, Suite: suite, Construct: n, Env: c,
					Cores: threads, MedianNS: r.OverheadUS * 1000, SDNS: r.SDUS * 1000}
				if suite == "SCHEDULE" {
					rec.Construct, rec.Schedule = "for", n
				}
				opt.Recorder.Add(rec)
			}
		}
	}
	return nil
}

// Fig7 regenerates Figure 7: EPCC, RTK vs Linux, 64 cores of PHI.
func Fig7(w io.Writer, opt Options) error {
	threads := 64
	if opt.Quick {
		threads = 8
	}
	return epccFigure(w, "fig7",
		fmt.Sprintf("Figure 7: RTK vs Linux, EPCC microbenchmarks, %d cores of PHI (overhead us; lower is better)", threads),
		machine.PHI(), []core.Kind{core.Linux, core.RTK}, threads, opt)
}

// Fig8 regenerates Figure 8: EPCC, PIK vs Linux, 64 cores of PHI.
func Fig8(w io.Writer, opt Options) error {
	threads := 64
	if opt.Quick {
		threads = 8
	}
	return epccFigure(w, "fig8",
		fmt.Sprintf("Figure 8: PIK vs Linux, EPCC microbenchmarks, %d cores of PHI (overhead us; lower is better)", threads),
		machine.PHI(), []core.Kind{core.Linux, core.PIK}, threads, opt)
}

// Fig13 regenerates Figure 13: EPCC, RTK and PIK vs Linux, 192 cores of
// 8XEON.
func Fig13(w io.Writer, opt Options) error {
	threads := 192
	if opt.Quick {
		threads = 24
	}
	return epccFigure(w, "fig13",
		fmt.Sprintf("Figure 13: RTK and PIK vs Linux, EPCC microbenchmarks, %d cores of 8XEON (overhead us; lower is better)", threads),
		machine.XEON8(), []core.Kind{core.Linux, core.RTK, core.PIK}, threads, opt)
}

// nasRelFigure renders a normalized-performance NAS figure for one or
// more environments against the Linux baseline, recording absolute
// Seconds per (environment, benchmark, scale) when opt.Recorder is set.
func nasRelFigure(w io.Writer, id, title string, m *machine.Machine, kinds []core.Kind, opt Options) error {
	scales := nasScales(m, opt)
	specs := nasSpecs(opt)
	linux := map[string]map[int]float64{}
	envs := map[string]map[string]map[int]float64{}
	var envOrder []string
	for _, kind := range kinds {
		envs[kind.String()] = map[string]map[int]float64{}
		envOrder = append(envOrder, kind.String())
	}
	record := func(s *nas.Spec, env string, secs map[int]float64) {
		for _, n := range scales {
			opt.Recorder.Add(Record{Figure: id, Construct: s.Name + "-" + s.Class,
				Env: env, Cores: n, Seconds: secs[n]})
		}
	}
	for _, s := range specs {
		ls, err := sweep(m, core.Linux, s, scales, opt.seed())
		if err != nil {
			return err
		}
		// Record the paper-calibrated single-thread time for the caption
		// even when 1 is not in the sweep.
		if _, ok := ls[1]; !ok {
			ls[1] = s.Profiles[m.Name].TimeSec
		}
		linux[s.Name] = ls
		record(s, core.Linux.String(), ls)
		for _, kind := range kinds {
			es, err := sweep(m, kind, s, scales, opt.seed())
			if err != nil {
				return err
			}
			envs[kind.String()][s.Name] = es
			record(s, kind.String(), es)
		}
	}
	relTable(w, title, scales, specs, linux, envs, envOrder)
	return nil
}

// Fig9 regenerates Figure 9: NAS, RTK relative to Linux on PHI.
func Fig9(w io.Writer, opt Options) error {
	return nasRelFigure(w, "fig9",
		"Figure 9: RTK performance relative to Linux (NAS on PHI; higher is better; baseline 1.0)",
		machine.PHI(), []core.Kind{core.RTK}, opt)
}

// Fig10 regenerates Figure 10: NAS, PIK relative to Linux on PHI.
func Fig10(w io.Writer, opt Options) error {
	return nasRelFigure(w, "fig10",
		"Figure 10: PIK performance relative to Linux (NAS on PHI; higher is better; baseline 1.0)",
		machine.PHI(), []core.Kind{core.PIK}, opt)
}

// Fig14 regenerates Figure 14: NAS, RTK and PIK relative to Linux on
// 8XEON.
func Fig14(w io.Writer, opt Options) error {
	return nasRelFigure(w, "fig14",
		"Figure 14: RTK and PIK performance relative to Linux (NAS on 8XEON; higher is better; baseline 1.0)",
		machine.XEON8(), []core.Kind{core.RTK, core.PIK}, opt)
}

// cckSpecs drops IS from the AutoMP comparisons: AutoMP extracts no
// parallelism from it (§6.2: "IS, which we elide entirely, is an extreme
// case").
func cckSpecs(opt Options) []*nas.Spec {
	var out []*nas.Spec
	for _, s := range nasSpecs(opt) {
		if s.Name == "IS" {
			continue
		}
		out = append(out, s)
	}
	return out
}

// cckData runs the three CCK-figure configurations.
func cckData(m *machine.Machine, opt Options) (scales []int, specs []*nas.Spec,
	data map[string]map[string]map[int]float64, err error) {
	scales = nasScales(m, opt)
	specs = cckSpecs(opt)
	data = map[string]map[string]map[int]float64{}
	for _, kind := range []core.Kind{core.Linux, core.LinuxAutoMP, core.CCK} {
		data[kind.String()] = map[string]map[int]float64{}
		for _, s := range specs {
			es, err2 := sweep(m, kind, s, scales, opt.seed())
			if err2 != nil {
				return nil, nil, nil, err2
			}
			data[kind.String()][s.Name] = es
		}
	}
	return scales, specs, data, nil
}

// Fig11 regenerates Figure 11: CCK absolute times on PHI (Linux OMP,
// Linux AutoMP, NK AutoMP).
func Fig11(w io.Writer, opt Options) error {
	m := machine.PHI()
	scales, specs, data, err := cckData(m, opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 11: CCK absolute performance on PHI (seconds; lower is better)")
	fmt.Fprintln(w, "note: IS elided — AutoMP extracts no parallelism from it (§6.2)")
	cols := []string{core.Linux.String(), core.LinuxAutoMP.String(), core.CCK.String()}
	for _, s := range specs {
		for _, c := range cols {
			for _, n := range scales {
				opt.Recorder.Add(Record{Figure: "fig11", Construct: s.Name + "-" + s.Class,
					Env: c, Cores: n, Seconds: data[c][s.Name][n]})
			}
		}
	}
	for _, s := range specs {
		fmt.Fprintf(w, "\n%s-%s\n", s.Name, s.Class)
		fmt.Fprintf(w, "%-14s", "config")
		for _, n := range scales {
			fmt.Fprintf(w, " %10d", n)
		}
		fmt.Fprintln(w)
		for _, c := range cols {
			fmt.Fprintf(w, "%-14s", c)
			for _, n := range scales {
				fmt.Fprintf(w, " %10.2f", data[c][s.Name][n])
			}
			fmt.Fprintln(w)
		}
		if s.Name == "EP" {
			// The fourth environment: the AutoMP pipeline retargeted at the
			// simulated accelerator (device offload). EP is embarrassingly
			// parallel — the best case for a wide SIMT league — so it is
			// the one benchmark the device point is plotted for.
			const devCUs, devLanes = 32, 64
			env := core.New(core.Config{
				Machine: machine.WithDevice(machine.PHI(), devCUs, devLanes),
				Kind:    core.CCK, Seed: opt.seed(), Threads: 1,
				BootImageBytes: s.WorkingSetBytes})
			res, err := nas.RunOffloadModel(env, s, 0)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-14s %10.2f   (%dx%d device, single point)\n",
				"nk-automp+dev", res.Seconds, devCUs, devLanes)
			st := env.Device().Stats()
			opt.Recorder.Add(Record{Figure: "fig11", Construct: s.Name + "-" + s.Class,
				Env: "nk-automp+dev", Cores: devCUs * devLanes, Seconds: res.Seconds,
				DeviceCUs: devCUs, DeviceLanes: devLanes,
				BytesH2D: st.BytesH2D, BytesD2H: st.BytesD2H})
		}
	}
	return nil
}

// cckRelFigure renders Fig. 12/15: both AutoMP variants normalized to
// Linux OpenMP.
func cckRelFigure(w io.Writer, id, title string, m *machine.Machine, opt Options) error {
	scales, specs, data, err := cckData(m, opt)
	if err != nil {
		return err
	}
	for _, s := range specs {
		for _, env := range []string{core.Linux.String(), core.LinuxAutoMP.String(), core.CCK.String()} {
			for _, n := range scales {
				opt.Recorder.Add(Record{Figure: id, Construct: s.Name + "-" + s.Class,
					Env: env, Cores: n, Seconds: data[env][s.Name][n]})
			}
		}
	}
	linux := map[string]map[int]float64{}
	for _, s := range specs {
		linux[s.Name] = data[core.Linux.String()][s.Name]
		if _, ok := linux[s.Name][1]; !ok {
			linux[s.Name][1] = s.Profiles[m.Name].TimeSec
		}
	}
	envs := map[string]map[string]map[int]float64{
		core.LinuxAutoMP.String(): data[core.LinuxAutoMP.String()],
		core.CCK.String():         data[core.CCK.String()],
	}
	relTable(w, title, scales, specs, linux, envs,
		[]string{core.LinuxAutoMP.String(), core.CCK.String()})
	fmt.Fprintln(w, "note: IS elided — AutoMP extracts no parallelism from it (§6.2)")
	return nil
}

// Fig12 regenerates Figure 12: CCK relative to Linux OpenMP on PHI.
func Fig12(w io.Writer, opt Options) error {
	return cckRelFigure(w, "fig12",
		"Figure 12: CCK performance relative to Linux OpenMP (NAS on PHI; higher is better; baseline 1.0)",
		machine.PHI(), opt)
}

// Fig15 regenerates Figure 15: CCK relative to Linux OpenMP on 8XEON.
func Fig15(w io.Writer, opt Options) error {
	return cckRelFigure(w, "fig15",
		"Figure 15: CCK performance relative to Linux OpenMP (NAS on 8XEON; higher is better; baseline 1.0)",
		machine.XEON8(), opt)
}
