package bench

import (
	"fmt"
	"io"
	"os"

	"github.com/interweaving/komp/internal/core"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/places"
)

// AblationNested measures real nested parallelism against the
// serialized-inner-region baseline every flat OpenMP runtime falls back
// to (OMP_MAX_ACTIVE_LEVELS=1), on the RTK kernel cost table across
// 8XEON scales.
//
// Two sections:
//
//  1. Inner fork/join overhead — the marginal virtual cost of one inner
//     parallel region forked from inside an active 8-wide outer team,
//     for both KOMP_NESTED_POOL lease policies (hold caches the leased
//     workers on the forking worker; return gives them back at every
//     inner join and re-leases next time).
//
//  2. A two-level BT-style plane sweep: 8 independent planes (the
//     outer parallelism the kernel exposes), each a worksharing loop
//     over its cells. With inner regions serialized, the run can use at
//     most 8 of the machine's cores no matter the team size — exactly
//     the limited-outer-parallelism shape that motivates nesting. With
//     OMP_MAX_ACTIVE_LEVELS=2 each plane forks an inner team leased
//     from the idle pool, bound close inside the plane-owner's socket
//     place, and the remaining cores light up.
//
// The two lease policies produce identical virtual times by design —
// leasing is host-side memory management (hold caches the inner team's
// workers and allocations across regions; return frees them) — so equal
// rows in section 1 are themselves the result: the policy is a memory
// footprint knob, not a latency knob.
//
// Virtual results are deterministic and go to stdout (bench-smoke
// byte-identity); the acceptance summary goes to stderr. The ablation
// fails if the nested sweep does not beat the serialized one at the top
// scale — the CI regression gate for the nesting machinery.
func AblationNested(w io.Writer, opt Options) error {
	m := machine.XEON8()
	scales := []int{24, 48, 96, 192}
	const baseRounds, moreRounds = 20, 40
	sweeps, cells := 4, 256
	if opt.Quick {
		scales = []int{24, 192} // keep the acceptance scale in quick runs
		sweeps, cells = 2, 128
	}
	const outer = 8 // outer team width of the fork/join section

	// region runs `rounds` back-to-back inner parallel regions on each
	// worker of an 8-wide outer team and returns the elapsed virtual ns.
	// Inner teams of n/8 make the leases exactly cover the pool.
	region := func(policy omp.NestedPoolPolicy, n, rounds int) (int64, error) {
		inner := n / outer
		env := core.New(core.Config{Machine: m, Kind: core.RTK, Seed: opt.seed(),
			Threads: n, MaxActiveLevels: 2, NumThreadsList: []int{outer, inner},
			NestedPool: policy, Places: "sockets", ProcBind: places.BindSpread,
			ProcBindList: []places.Bind{places.BindSpread, places.BindClose}})
		rt := env.OMPRuntime()
		return env.Layer.Run(func(tc exec.TC) {
			rt.Parallel(tc, outer, func(ow *omp.Worker) {
				for r := 0; r < rounds; r++ {
					ow.Parallel(inner, func(iw *omp.Worker) {
						iw.TC().Charge(100)
					})
				}
			})
			rt.Close(tc)
		})
	}
	// marginal is the per-inner-region slope in microseconds (8 inner
	// regions run concurrently per round; this is the per-worker cost).
	marginal := func(policy omp.NestedPoolPolicy, n int) (float64, error) {
		short, err := region(policy, n, baseRounds)
		if err != nil {
			return 0, err
		}
		long, err := region(policy, n, moreRounds)
		if err != nil {
			return 0, err
		}
		return float64(long-short) / float64(moreRounds-baseRounds) / 1000, nil
	}

	fmt.Fprintln(w, "Ablation: nested parallelism, RTK on 8XEON")
	fmt.Fprintf(w, "Inner fork/join from an %d-wide outer team (us/inner region, marginal)\n", outer)
	fmt.Fprintf(w, "%-14s", "lease policy")
	for _, n := range scales {
		fmt.Fprintf(w, " %9d", n)
	}
	fmt.Fprintln(w)
	for _, policy := range []omp.NestedPoolPolicy{omp.NestedPoolHold, omp.NestedPoolReturn} {
		fmt.Fprintf(w, "%-14s", policy.String())
		for _, n := range scales {
			us, err := marginal(policy, n)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %9.2f", us)
			opt.Recorder.Add(Record{
				Figure: "nested", Construct: "INNER-FORK", Env: "rtk", Cores: n,
				MedianNS: us * 1000, NestedPool: policy.String(),
				MaxActiveLevels: 2, OuterTeam: outer, InnerTeam: n / outer,
			})
		}
		fmt.Fprintln(w)
	}

	// The plane-sweep kernel. maxLevels=1 is the serialized baseline:
	// identical code, but every inner region collapses to a team of one.
	// One plane per socket: the outer team spreads over the 8 socket
	// places and each plane's inner team binds close inside its owner's
	// socket (the per-level OMP_PROC_BIND list at work), so at 192 cores
	// each inner team exactly fills a socket.
	const planes = 8
	kernel := func(n, maxLevels int) (int64, error) {
		inner := n / planes
		if inner < 1 {
			inner = 1
		}
		env := core.New(core.Config{Machine: m, Kind: core.RTK, Seed: opt.seed(),
			Threads: n, MaxActiveLevels: maxLevels, NumThreadsList: []int{planes, inner},
			Places: "sockets", ProcBind: places.BindSpread,
			ProcBindList: []places.Bind{places.BindSpread, places.BindClose}})
		rt := env.OMPRuntime()
		const workNS = 2000
		return env.Layer.Run(func(tc exec.TC) {
			for s := 0; s < sweeps; s++ {
				rt.Parallel(tc, planes, func(ow *omp.Worker) {
					ow.ForEach(0, planes, omp.ForOpt{}, func(p int) {
						ow.Parallel(inner, func(iw *omp.Worker) {
							iw.ForEach(0, cells, omp.ForOpt{}, func(c int) {
								iw.TC().Charge(workNS)
							})
						})
					})
				})
			}
			rt.Close(tc)
		})
	}

	fmt.Fprintf(w, "\nTwo-level plane sweep: %d planes x %d cells, %d sweeps (virtual ms)\n", planes, cells, sweeps)
	fmt.Fprintf(w, "%-14s", "inner regions")
	for _, n := range scales {
		fmt.Fprintf(w, " %9d", n)
	}
	fmt.Fprintln(w)
	var serialTop, nestedTop int64
	for _, maxLevels := range []int{1, 2} {
		label := "serialized"
		if maxLevels == 2 {
			label = "nested"
		}
		fmt.Fprintf(w, "%-14s", label)
		for _, n := range scales {
			elapsed, err := kernel(n, maxLevels)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %9.2f", float64(elapsed)/1e6)
			opt.Recorder.Add(Record{
				Figure: "nested", Construct: "PLANE-SWEEP", Env: "rtk", Cores: n,
				Seconds: float64(elapsed) / 1e9, MaxActiveLevels: maxLevels,
				OuterTeam: planes, InnerTeam: n / planes,
			})
			if n == scales[len(scales)-1] {
				if maxLevels == 1 {
					serialTop = elapsed
				} else {
					nestedTop = elapsed
				}
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\n(the sweep exposes only 8-way outer parallelism: serialized inner")
	fmt.Fprintln(w, " regions strand every core past the 8th, while nesting leases them")
	fmt.Fprintln(w, " to per-plane inner teams bound inside each plane-owner's socket)")

	top := scales[len(scales)-1]
	speedup := float64(serialTop) / float64(nestedTop)
	fmt.Fprintf(os.Stderr, "nested: plane sweep at %d cores: serialized %.2fms, nested %.2fms (%.2fx)\n",
		top, float64(serialTop)/1e6, float64(nestedTop)/1e6, speedup)
	if nestedTop >= serialTop {
		return fmt.Errorf("nested acceptance: nested sweep %.2fms did not beat serialized %.2fms at %d cores",
			float64(nestedTop)/1e6, float64(serialTop)/1e6, top)
	}
	return nil
}
