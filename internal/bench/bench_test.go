package bench

import (
	"fmt"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	figs := Figures()
	if len(figs) != 10 {
		t.Fatalf("figures = %d, want 10 (fig6..fig15)", len(figs))
	}
	for _, id := range []string{"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15"} {
		if _, ok := ByID(id); !ok {
			t.Fatalf("missing %s", id)
		}
	}
	if _, ok := ByID("fig99"); ok {
		t.Fatal("bogus id resolved")
	}
}

func TestFig6Table(t *testing.T) {
	var b strings.Builder
	if err := Fig6(&b, Options{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"RTK", "PIK", "CCK", "13,250", "6,550", "Automatic parallelization"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig6 missing %q", want)
		}
	}
}

func TestFig9Quick(t *testing.T) {
	var b strings.Builder
	err := Fig9(&b, Options{Quick: true, Benchmarks: []string{"BT", "EP"}})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "BT-B") || !strings.Contains(out, "geomean") {
		t.Fatalf("fig9 output malformed:\n%s", out)
	}
}

func TestFig11QuickElidesIS(t *testing.T) {
	var b strings.Builder
	err := Fig11(&b, Options{Quick: true, Benchmarks: []string{"MG", "IS"}})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "IS-C") {
		t.Fatal("fig11 must elide IS")
	}
	if !strings.Contains(out, "MG-C") || !strings.Contains(out, "nk-automp") {
		t.Fatalf("fig11 malformed:\n%s", out)
	}
}

func TestFig14Quick(t *testing.T) {
	var b strings.Builder
	err := Fig14(&b, Options{Quick: true, Scales: []int{1, 48}, Benchmarks: []string{"CG"}})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "rtk") || !strings.Contains(out, "pik") {
		t.Fatalf("fig14 must show both kernel paths:\n%s", out)
	}
}

func TestFig7QuickRuns(t *testing.T) {
	var b strings.Builder
	if err := Fig7(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"ARRAY", "SCHEDULE", "SYNCH", "TASK", "BARRIER", "DYNAMIC_1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig7 missing %q", want)
		}
	}
}

func TestDeterministicFigure(t *testing.T) {
	render := func() string {
		var b strings.Builder
		if err := Fig10(&b, Options{Quick: true, Benchmarks: []string{"FT"}}); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if render() != render() {
		t.Fatal("figure output must be deterministic")
	}
}

// Headline regression guards: the paper's geomean claims must keep
// holding after any retuning. Full-fidelity NAS sweeps (a few seconds).
func TestHeadlineGeomeans(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	check := func(id string, want map[string][2]float64) {
		var b strings.Builder
		f, _ := ByID(id)
		if err := f.Run(&b, Options{Seed: 42}); err != nil {
			t.Fatal(err)
		}
		for env, bounds := range want {
			needle := "geomean(" + env + ") across benchmarks and scales: "
			out := b.String()
			i := strings.Index(out, needle)
			if i < 0 {
				t.Fatalf("%s: missing %q", id, needle)
			}
			var v float64
			if _, err := fmt.Sscanf(out[i+len(needle):], "%f", &v); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if v < bounds[0] || v > bounds[1] {
				t.Errorf("%s %s geomean = %.2f, want [%.2f, %.2f] (paper shape)",
					id, env, v, bounds[0], bounds[1])
			}
		}
	}
	// Paper: RTK ~22% on PHI, PIK ~10%; both ~20% on 8XEON.
	check("fig9", map[string][2]float64{"rtk": {1.15, 1.32}})
	check("fig10", map[string][2]float64{"pik": {1.05, 1.22}})
	check("fig14", map[string][2]float64{"rtk": {1.12, 1.32}, "pik": {1.10, 1.30}})
}
