package bench

import (
	"encoding/json"
	"io"
)

// Record is one machine-readable measurement row. EPCC rows carry the
// per-directive overhead (MedianNS/SDNS); NAS rows carry whole-benchmark
// Seconds. The schema is documented in EXPERIMENTS.md.
type Record struct {
	// Figure is the figure or ablation id the row came from (fig7, ...).
	Figure string `json:"figure"`
	// Suite is the EPCC suite (ARRAY, SCHEDULE, SYNCH, TASK); empty for
	// NAS rows.
	Suite string `json:"suite,omitempty"`
	// Construct names the measured construct: the EPCC benchmark name
	// (BARRIER, REDUCTION, ...) or the NAS benchmark (MG-C, ...).
	Construct string `json:"construct"`
	// Schedule is the loop schedule for SCHEDULE-suite rows (STATIC_2,
	// DYNAMIC_8, ...); empty otherwise.
	Schedule string `json:"schedule,omitempty"`
	// Env is the execution environment (linux-omp, rtk, pik, ...).
	Env string `json:"env"`
	// Cores is the team size / worker count of the measurement.
	Cores int `json:"cores"`
	// MedianNS is the median per-directive overhead in nanoseconds
	// (EPCC rows); SDNS its standard deviation.
	MedianNS float64 `json:"median_ns,omitempty"`
	SDNS     float64 `json:"sd_ns,omitempty"`
	// Seconds is the modeled whole-benchmark time (NAS rows).
	Seconds float64 `json:"seconds,omitempty"`
	// Deque, StealFanout and Cutoff identify a tasking-ablation cell:
	// the deque algorithm (chase-lev, mutex), the per-sweep steal fanout
	// (0 = all teammates) and the queue-depth cutoff (0 = off).
	Deque       string `json:"deque,omitempty"`
	StealFanout int    `json:"steal_fanout,omitempty"`
	Cutoff      int    `json:"cutoff,omitempty"`
	// TasksPerMS is the tasking-ablation throughput; Steals and Cutoffs
	// are the run's total steal and cutoff-serialization counts.
	TasksPerMS float64 `json:"tasks_per_ms,omitempty"`
	Steals     int64   `json:"steals,omitempty"`
	Cutoffs    int64   `json:"cutoffs,omitempty"`
	// Bind and Places identify an affinity-ablation cell: the
	// OMP_PROC_BIND policy and the OMP_PLACES spec the team ran under.
	Bind   string `json:"bind,omitempty"`
	Places string `json:"places,omitempty"`
	// LocalFrac is the fraction of an affinity-ablation run's memory
	// accesses (or steals) that stayed NUMA-local; LocalSteals and
	// RemoteSteals split the run's task steals by whether thief and
	// victim shared a socket.
	LocalFrac    float64 `json:"local_frac,omitempty"`
	LocalSteals  int64   `json:"local_steals,omitempty"`
	RemoteSteals int64   `json:"remote_steals,omitempty"`
	// CancelLatencyNS is the cancel-ablation propagation latency: virtual
	// ns from the Cancel call until the last teammate observed it at a
	// cancellation point. Cancelled marks a fault-composed row whose
	// region was cut short (by the deadline or an explicit cancel), and
	// DeadlineNS is the KOMP_REGION_DEADLINE armed for that row (0 = none).
	CancelLatencyNS int64 `json:"cancel_latency_ns,omitempty"`
	Cancelled       bool  `json:"cancelled,omitempty"`
	DeadlineNS      int64 `json:"deadline_ns,omitempty"`
	// MaxActiveLevels, OuterTeam and InnerTeam identify a
	// nested-ablation cell: the OMP_MAX_ACTIVE_LEVELS cap (1 =
	// serialized baseline) and the two team widths; NestedPool is the
	// KOMP_NESTED_POOL lease policy (hold, return) of fork/join rows.
	MaxActiveLevels int    `json:"max_active_levels,omitempty"`
	OuterTeam       int    `json:"outer_team,omitempty"`
	InnerTeam       int    `json:"inner_team,omitempty"`
	NestedPool      string `json:"nested_pool,omitempty"`
	// Tenants, QDepth, P50NS, P99NS and Rejected describe a
	// tenancy-ablation cell: the concurrent tenant count, the admission
	// queue depth (KOMP_TENANCY_QUEUE), the open-loop region-latency
	// percentiles (virtual ns from scheduled arrival to join), and the
	// submissions shed by backpressure.
	Tenants  int   `json:"tenants,omitempty"`
	QDepth   int   `json:"qdepth,omitempty"`
	P50NS    int64 `json:"p50_ns,omitempty"`
	P99NS    int64 `json:"p99_ns,omitempty"`
	Rejected int64 `json:"rejected,omitempty"`
	// EQAlgo identifies a simcore-ablation cell's event-queue algorithm
	// (wheel, heap); EventsPerSec is that run's wall-clock DES
	// throughput (simulator events fired per second of host time —
	// machine-dependent, so excluded from determinism diffs).
	EQAlgo       string  `json:"eq_algo,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// DeviceCUs and DeviceLanes identify an offload-ablation cell's
	// accelerator geometry; BytesH2D and BytesD2H are the run's
	// host-to-device and device-to-host map traffic.
	DeviceCUs   int   `json:"device_cus,omitempty"`
	DeviceLanes int   `json:"device_lanes,omitempty"`
	BytesH2D    int64 `json:"bytes_h2d,omitempty"`
	BytesD2H    int64 `json:"bytes_d2h,omitempty"`
}

// Recorder accumulates Records alongside a figure run. All methods are
// nil-receiver safe so figure code can Add unconditionally; recording
// happens only when the caller (kompbench -json) hangs a Recorder on
// Options.
type Recorder struct {
	Records []Record
}

// Add appends one record; a nil Recorder drops it.
func (r *Recorder) Add(rec Record) {
	if r == nil {
		return
	}
	r.Records = append(r.Records, rec)
}

// WriteJSON emits the accumulated records as an indented JSON array.
func (r *Recorder) WriteJSON(w io.Writer) error {
	recs := []Record{}
	if r != nil {
		recs = r.Records
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}
