package bench

import (
	"strings"
	"testing"
)

func TestAblationRegistry(t *testing.T) {
	abs := Ablations()
	if len(abs) != 6 {
		t.Fatalf("ablations = %d", len(abs))
	}
	for _, id := range []string{"ab-firsttouch", "ab-pthread", "ab-chunk", "ab-privatization", "faults"} {
		if _, ok := AblationByID(id); !ok {
			t.Fatalf("missing %s", id)
		}
	}
	if _, ok := AblationByID("ab-nope"); ok {
		t.Fatal("bogus ablation resolved")
	}
}

func TestAblationFirstTouchShowsGap(t *testing.T) {
	var b strings.Builder
	if err := AblationFirstTouch(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "first-touch") || !strings.Contains(out, "immediate") {
		t.Fatalf("ablation output malformed:\n%s", out)
	}
}

func TestAblationPthreadCustomWins(t *testing.T) {
	var b strings.Builder
	if err := AblationPthread(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "barrier round") {
		t.Fatalf("malformed:\n%s", out)
	}
}

func TestAblationChunkRuns(t *testing.T) {
	var b strings.Builder
	if err := AblationChunk(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "single task") {
		t.Fatalf("malformed:\n%s", b.String())
	}
}

func TestAblationPrivatizationRecovers(t *testing.T) {
	var b strings.Builder
	if err := AblationPrivatization(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "with privatization") {
		t.Fatalf("malformed:\n%s", out)
	}
}
