package bench

import (
	"strings"
	"testing"
)

func TestAblationRegistry(t *testing.T) {
	abs := Ablations()
	if len(abs) != 14 {
		t.Fatalf("ablations = %d", len(abs))
	}
	for _, id := range []string{"ab-firsttouch", "ab-pthread", "ab-chunk", "ab-privatization", "barrier", "tasking", "affinity", "faults", "cancel", "simcore", "nested", "tenancy", "offload"} {
		if _, ok := AblationByID(id); !ok {
			t.Fatalf("missing %s", id)
		}
	}
	if _, ok := AblationByID("ab-nope"); ok {
		t.Fatal("bogus ablation resolved")
	}
}

func TestAblationFirstTouchShowsGap(t *testing.T) {
	var b strings.Builder
	if err := AblationFirstTouch(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "first-touch") || !strings.Contains(out, "immediate") {
		t.Fatalf("ablation output malformed:\n%s", out)
	}
}

func TestAblationPthreadCustomWins(t *testing.T) {
	var b strings.Builder
	if err := AblationPthread(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "barrier round") {
		t.Fatalf("malformed:\n%s", out)
	}
}

func TestAblationChunkRuns(t *testing.T) {
	var b strings.Builder
	if err := AblationChunk(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "single task") {
		t.Fatalf("malformed:\n%s", b.String())
	}
}

// TestAblationBarrierShape checks the topology study's output: all three
// algorithms appear, and the fused-reduction comparison line is present.
// (The quantitative ≥2× hier-vs-flat claim is asserted by the omp
// package's TestHierBeatsFlatAtScale at the same 192-core scale.)
func TestAblationBarrierShape(t *testing.T) {
	var b strings.Builder
	if err := AblationBarrier(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"flat", "tree", "hier", "fused Reduce", "2 flat barriers"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q:\n%s", want, out)
		}
	}
}

func TestAblationTaskingShape(t *testing.T) {
	// AblationTasking itself errors when Chase–Lev fails to beat the
	// mutex deque at the top scale or the steal distribution collapses,
	// so a clean return is most of the assertion.
	var b strings.Builder
	if err := AblationTasking(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"chase-lev", "mutex", "spread OK", "nk-automp"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q:\n%s", want, out)
		}
	}
}

func TestAblationAffinityShape(t *testing.T) {
	// AblationAffinity itself errors when a close-bound team on the
	// affinity schedule fails to measurably beat the unbound baseline
	// under a roving master, so a clean return is most of the assertion.
	var b strings.Builder
	if err := AblationAffinity(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"close", "spread", "affinity", "faster", "locality immaterial", "near", "rr"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q:\n%s", want, out)
		}
	}
}

func TestAblationCancelShape(t *testing.T) {
	// AblationCancel itself errors when tree propagation fails to beat
	// flat polling at the top scale or a fault-composed run double-counts
	// a chunk, so a clean return is most of the assertion.
	var b strings.Builder
	if err := AblationCancel(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"cancel-flat", "cancel-tree", "deadline+off", "deadline+storm", "yes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "NO (chunk ran twice)") {
		t.Fatalf("fault-composed abort double-counted a chunk:\n%s", out)
	}
}

func TestAblationSimcoreShape(t *testing.T) {
	// AblationSimcore itself errors when heap and wheel disagree on any
	// virtual result or when the wheel fails to beat the heap's
	// events/sec at 192 cores, so a clean return is most of the
	// assertion.
	var b strings.Builder
	if err := AblationSimcore(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"heap", "wheel", "Event storm", "vus/barrier", "true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "false") {
		t.Fatalf("heap/wheel disagreement in ablation output:\n%s", out)
	}
}

func TestAblationNestedShape(t *testing.T) {
	// AblationNested itself errors when the nested plane sweep fails to
	// beat the serialized baseline at the top scale, so a clean return
	// is most of the assertion.
	var b strings.Builder
	if err := AblationNested(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"hold", "return", "serialized", "nested", "plane sweep"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q:\n%s", want, out)
		}
	}
}

// TestAblationTenancyShape: AblationTenancy itself errors when any of
// its acceptance gates fail — sharded p99 not beating interleaved,
// shallow queues shedding nothing (or the roomy one shedding), no
// rebalance after the transient departs, or the post-rebalance region
// time drifting more than 5% off the single-tenant baseline — so a
// clean return is most of the assertion.
func TestAblationTenancyShape(t *testing.T) {
	rec := &Recorder{}
	var b strings.Builder
	if err := AblationTenancy(&b, Options{Quick: true, Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"interleaved", "sharded", "2,reject", "rebalance", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q:\n%s", want, out)
		}
	}
	// The JSON rows must carry the tenancy schema fields.
	var openLoop, admission int
	for _, r := range rec.Records {
		if r.Figure != "tenancy" {
			t.Fatalf("record figure = %q", r.Figure)
		}
		switch {
		case r.Construct == "OPEN-LOOP":
			openLoop++
			if r.Tenants != 8 || r.P50NS <= 0 || r.P99NS <= 0 {
				t.Fatalf("open-loop record incomplete: %+v", r)
			}
		case strings.HasPrefix(r.Construct, "ADMISSION-"):
			admission++
			if r.QDepth < 0 || r.P99NS <= 0 {
				t.Fatalf("admission record incomplete: %+v", r)
			}
		}
	}
	if openLoop != 2 || admission != 3 {
		t.Fatalf("records = %d open-loop, %d admission; want 2 and 3", openLoop, admission)
	}
}

func TestAblationPrivatizationRecovers(t *testing.T) {
	var b strings.Builder
	if err := AblationPrivatization(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "with privatization") {
		t.Fatalf("malformed:\n%s", out)
	}
}
