package bench

import (
	"encoding/json"
	"io"
	"strings"
	"testing"
)

// TestRecorderCollectsEPCCRows: a figure run with a Recorder hung on the
// options yields one machine-readable row per (environment, benchmark),
// with SCHEDULE-suite rows carrying the schedule name, and the JSON
// round-trips.
func TestRecorderCollectsEPCCRows(t *testing.T) {
	rec := &Recorder{}
	if err := Fig7(io.Discard, Options{Quick: true, Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) == 0 {
		t.Fatal("no records collected")
	}
	envs := map[string]bool{}
	sched := 0
	for _, r := range rec.Records {
		if r.Figure != "fig7" {
			t.Fatalf("record figure = %q", r.Figure)
		}
		if r.Cores <= 0 {
			t.Fatalf("record without cores: %+v", r)
		}
		envs[r.Env] = true
		if r.Schedule != "" {
			sched++
			if r.Construct != "for" {
				t.Fatalf("schedule row construct = %q", r.Construct)
			}
		}
	}
	if !envs["linux-omp"] || !envs["rtk"] {
		t.Fatalf("environments recorded = %v", envs)
	}
	if sched == 0 {
		t.Fatal("no SCHEDULE-suite rows recorded")
	}

	var b strings.Builder
	if err := rec.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back []Record
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(back) != len(rec.Records) {
		t.Fatalf("round-trip lost records: %d != %d", len(back), len(rec.Records))
	}
}

// TestRecorderNilSafe: figure code Adds unconditionally; a nil Recorder
// must drop records silently, and WriteJSON on nil must emit an empty
// array.
func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Add(Record{Figure: "x"})
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Fatalf("nil recorder wrote %q", b.String())
	}
}
