package bench

import (
	"fmt"
	"io"
	"strings"

	"github.com/interweaving/komp/internal/core"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/places"
)

// AblationAffinity is the places/affinity design study (`kompbench
// -ablation affinity`): a first-touch array sweep — pass 0 touches every
// element and parks its page in the toucher's NUMA zone, later passes
// re-read the array charging each access the machine's local or remote
// DRAM latency — swept over the binding policy (unbound, close, spread)
// and the loop schedule (static, affinity, dynamic) on the simulated
// 8XEON, with one worker per socket place. Two master regimes bound the
// comparison: a pinned master (every region forks from CPU 0, the
// legacy best case) and a roving master (each region forks from a
// different socket, the way kernel launch contexts drift), where the
// thread-id-keyed static partition silently loses its chunk-to-CPU
// mapping and only the place-rank-keyed affinity schedule keeps pages
// local. A second section drains a single-producer task flood under
// nearest-first vs round-robin steal sweeps and splits the runtime's
// steal counters by socket locality. Everything is virtual time on the
// simulator: two runs with one seed diff byte-for-byte.
func AblationAffinity(w io.Writer, opt Options) error {
	m := machine.XEON8()
	const placesSpec = "sockets"
	threads := m.Sockets // one worker per socket place
	passes := 6
	perThread := 256
	if opt.Quick {
		passes = 4
		perThread = 128
	}
	iters := threads * perThread
	// Each element read is a few cache-line transfers at the owning
	// zone's DRAM latency — enough for memory, not loop bookkeeping, to
	// be what the cells differ in.
	const linesPerElem = 16

	type cell struct {
		bind  places.Bind
		sched omp.Schedule
	}
	cells := []cell{
		{places.BindFalse, omp.Static},
		{places.BindFalse, omp.Affinity},
		{places.BindFalse, omp.Dynamic},
		{places.BindClose, omp.Static},
		{places.BindClose, omp.Affinity},
		{places.BindClose, omp.Dynamic},
		{places.BindSpread, omp.Static},
		{places.BindSpread, omp.Affinity},
	}

	type result struct {
		nsPerPass float64 // virtual ns per compute pass
		localFrac float64 // fraction of compute-pass accesses that hit the local zone
	}

	// run executes the sweep in one cell: pass 0 first-touches the
	// array, the remaining passes re-read it, each pass its own parallel
	// region so the binding policy re-places the team (and an unbound
	// team drifts). With rove, the master hops one socket per region.
	run := func(mach *machine.Machine, spec string, n int, c cell, rove bool) (result, error) {
		env := core.New(core.Config{Machine: mach, Kind: core.RTK, Seed: opt.seed(),
			Threads: n, Places: spec, ProcBind: c.bind})
		rt := env.OMPRuntime()
		perCPU := mach.CoresPerSocket * mach.SMT()
		zoneOf := make([]int, mach.NumCPUs())
		for c := range zoneOf {
			zoneOf[c] = mach.ZoneOf(c)
		}
		zones := make([]int, n*perThread)
		for i := range zones {
			zones[i] = -1
		}
		// Per-thread tallies; summed after the run (the simulator is
		// deterministic, but disjoint slots are race-proof on any layer).
		local := make([]int64, n)
		total := make([]int64, n)
		chunk := 0
		if c.sched == omp.Dynamic {
			chunk = 16
		}
		var computeNS int64
		_, err := env.Layer.Run(func(tc exec.TC) {
			ph, _ := tc.(exec.ProcHolder)
			for p := 0; p < passes; p++ {
				if rove && ph != nil {
					ph.Proc().SetCPU((p * perCPU) % mach.NumCPUs())
				}
				pass := p
				var t0, t1 int64
				rt.Parallel(tc, n, func(wk *omp.Worker) {
					wk.Barrier() // settle the fork before the clock starts
					if wk.ThreadNum() == 0 {
						t0 = wk.TC().Now()
					}
					id := wk.ThreadNum()
					wk.ForEach(0, len(zones), omp.ForOpt{Sched: c.sched, Chunk: chunk}, func(i int) {
						cpu := wk.TC().CPU()
						z := zones[i]
						if z < 0 { // first touch: the page lands here
							z = zoneOf[cpu]
							zones[i] = z
						}
						wk.TC().Charge(int64(linesPerElem * mach.LatencyNS(cpu, z)))
						if pass > 0 {
							total[id]++
							if zoneOf[cpu] == z {
								local[id]++
							}
						}
					})
					if wk.ThreadNum() == 0 {
						t1 = wk.TC().Now()
					}
				})
				if p > 0 {
					computeNS += t1 - t0
				}
			}
			rt.Close(tc)
		})
		if err != nil {
			return result{}, err
		}
		var loc, tot int64
		for i := 0; i < n; i++ {
			loc += local[i]
			tot += total[i]
		}
		return result{
			nsPerPass: float64(computeNS) / float64(passes-1),
			localFrac: float64(loc) / float64(tot),
		}, nil
	}

	fmt.Fprintf(w, "Ablation: proc_bind x schedule over %q places, RTK on 8XEON (%d threads)\n", placesSpec, threads)
	fmt.Fprintf(w, "(first-touch array of %d pages, %d compute passes; us/pass — lower is\n", iters, passes-1)
	fmt.Fprintln(w, " better — and the fraction of accesses that stayed in the local zone)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s %-10s %21s  %21s\n", "", "", "pinned master", "roving master")
	fmt.Fprintf(w, "%-8s %-10s %12s %8s  %12s %8s\n", "bind", "schedule", "us/pass", "local", "us/pass", "local")

	// grid[rove][cell] feeds the summary comparison below the table.
	grid := map[bool]map[cell]result{false: {}, true: {}}
	for _, c := range cells {
		fmt.Fprintf(w, "%-8s %-10s", c.bind, c.sched)
		for _, rove := range []bool{false, true} {
			res, err := run(m, placesSpec, threads, c, rove)
			if err != nil {
				return err
			}
			grid[rove][c] = res
			fmt.Fprintf(w, " %12.1f %7.0f%%", res.nsPerPass/1000, 100*res.localFrac)
			if !rove {
				fmt.Fprint(w, " ")
			}
			regime := "pinned"
			if rove {
				regime = "roving"
			}
			opt.Recorder.Add(Record{Figure: "affinity", Suite: "AFFINITY",
				Construct: "FIRST_TOUCH_SWEEP_" + strings.ToUpper(regime),
				Schedule:  strings.ToUpper(c.sched.String()), Env: core.RTK.String(),
				Cores: threads, Bind: c.bind.String(), Places: placesSpec,
				Seconds: res.nsPerPass / 1e9, LocalFrac: res.localFrac})
		}
		fmt.Fprintln(w)
	}

	// The acceptance comparison: a bound team on the locality-aware
	// schedule must beat the unbound baseline even when the master
	// roves — that is the whole point of carrying places through the
	// stack.
	bound := grid[true][cell{places.BindClose, omp.Affinity}]
	unbound := grid[true][cell{places.BindFalse, omp.Static}]
	ratio := unbound.nsPerPass / bound.nsPerPass
	fmt.Fprintf(w, "\nroving master: close+affinity vs unbound static: %.2fx faster (%.0f%% vs %.0f%% local)\n",
		ratio, 100*bound.localFrac, 100*unbound.localFrac)
	if ratio < 1.2 {
		return fmt.Errorf("affinity ablation: close+affinity (%.1f us/pass) is not measurably faster than the unbound baseline (%.1f us/pass)",
			bound.nsPerPass/1000, unbound.nsPerPass/1000)
	}

	// Flat-machine control: on single-socket PHI every zone a CPU can
	// first-touch is local, so the machinery must cost nothing.
	pm := machine.PHI()
	phiBound, err := run(pm, "cores", 16, cell{places.BindClose, omp.Affinity}, true)
	if err != nil {
		return err
	}
	phiUnbound, err := run(pm, "cores", 16, cell{places.BindFalse, omp.Static}, true)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "flat-machine control (PHI, 16 threads, roving): %.2fx — locality immaterial\n",
		phiUnbound.nsPerPass/phiBound.nsPerPass)

	// --- Steal locality: nearest-first vs round-robin victim sweeps ---
	// 48 close-bound threads span two 8XEON sockets — the smallest team
	// where the sweep order has a locality choice to make.
	stealThreads := 48
	tasksPerThread := 16
	if !opt.Quick {
		stealThreads = 96
	}
	const taskNS = 300
	stealRun := func(order omp.StealOrder) (int64, int64, int64, error) {
		env := core.New(core.Config{Machine: m, Kind: core.RTK, Seed: opt.seed(),
			Threads: stealThreads, Places: "cores", ProcBind: places.BindClose,
			StealOrder: order})
		rt := env.OMPRuntime()
		var t0, t1 int64
		_, err := env.Layer.Run(func(tc exec.TC) {
			rt.Parallel(tc, stealThreads, func(wk *omp.Worker) {
				wk.Barrier()
				if wk.ThreadNum() == 0 {
					t0 = wk.TC().Now()
					for i := 0; i < stealThreads*tasksPerThread; i++ {
						wk.Task(func(tw *omp.Worker) { tw.TC().Charge(taskNS) })
					}
				}
				wk.Barrier() // scheduling point: the team drains the flood
				if wk.ThreadNum() == 0 {
					t1 = wk.TC().Now()
				}
			})
			rt.Close(tc)
		})
		if err != nil {
			return 0, 0, 0, err
		}
		return t1 - t0, rt.LocalSteals.Load(), rt.RemoteSteals.Load(), nil
	}

	fmt.Fprintf(w, "\nSteal locality: single-producer flood, close-bound team of %d on 8XEON\n", stealThreads)
	fmt.Fprintf(w, "%-14s %10s %10s %10s %8s\n", "sweep order", "drain us", "local", "remote", "local%")
	for _, order := range []omp.StealOrder{omp.StealNear, omp.StealRR} {
		drainNS, loc, rem, err := stealRun(order)
		if err != nil {
			return err
		}
		frac := 0.0
		if loc+rem > 0 {
			frac = float64(loc) / float64(loc+rem)
		}
		fmt.Fprintf(w, "%-14s %10.1f %10d %10d %7.0f%%\n",
			order, float64(drainNS)/1000, loc, rem, 100*frac)
		opt.Recorder.Add(Record{Figure: "affinity", Suite: "AFFINITY",
			Construct: "STEAL_LOCALITY", Env: core.RTK.String(), Cores: stealThreads,
			Bind: places.BindClose.String(), Places: "cores", Schedule: strings.ToUpper(order.String()),
			Seconds: float64(drainNS) / 1e9, LocalSteals: loc, RemoteSteals: rem, LocalFrac: frac})
	}

	fmt.Fprintln(w, "\n(the thread-id-keyed static partition re-deals blocks whenever the")
	fmt.Fprintln(w, " team's thread numbering shifts under it — a roving master or an")
	fmt.Fprintln(w, " unbound, drifting team — so first-touched pages go remote; dealing")
	fmt.Fprintln(w, " blocks by place rank pins the chunk-to-CPU map to the topology, and")
	fmt.Fprintln(w, " nearest-first stealing keeps the displaced tasks on the same socket)")
	return nil
}
