package bench

import (
	"fmt"
	"io"
	"sync"

	"github.com/interweaving/komp/internal/cck"
	"github.com/interweaving/komp/internal/core"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/ompt"
)

// AblationTasking is the tasking design study (`kompbench -ablation
// tasking`): an imbalanced task flood — even-numbered threads each
// produce a burst of short tasks, odd-numbered threads produce nothing
// and live off stealing — swept over the deque algorithm (mutex-guarded
// slice vs lock-free Chase–Lev), the steal fanout (victims probed per
// sweep), and the queue-depth cutoff, on the RTK kernel cost table
// across 8XEON scales. The half-and-half shape keeps every producer's
// deque under simultaneous owner and thief traffic — the regime where
// the deque algorithm is the difference — instead of collapsing all
// contention onto one victim. A second section runs the same flood on
// all four environments. Everything is virtual time on the simulator:
// two runs with one seed diff byte-for-byte.
func AblationTasking(w io.Writer, opt Options) error {
	m := machine.XEON8()
	scales := []int{48, 96, 192}
	if opt.Quick {
		scales = []int{192}
	}
	// taskNS is each task body's compute — short on purpose, EPCC-style:
	// the body must not drown the deque traffic the study measures.
	// tasksPerCore scales the flood with the team so per-thread work
	// stays fixed.
	const taskNS = 500
	tasksPerCore := 24
	if opt.Quick {
		tasksPerCore = 12
	}

	type cell struct {
		algo   omp.TaskDequeAlgo
		fanout int // TaskStealTries; 0 = probe every teammate
		cutoff int
	}
	cells := []cell{
		{omp.DequeMutex, 0, 0},
		{omp.DequeMutex, 4, 0},
		{omp.DequeChaseLev, 0, 0},
		{omp.DequeChaseLev, 4, 0},
		{omp.DequeChaseLev, 1, 0},
		{omp.DequeChaseLev, 0, 8},
	}
	if !opt.Quick {
		cells = append(cells, cell{omp.DequeMutex, 0, 8}, cell{omp.DequeChaseLev, 4, 8})
	}

	fanoutLabel := func(f int) string {
		if f == 0 {
			return "all"
		}
		return fmt.Sprintf("%d", f)
	}

	// run executes the flood in one environment and returns the timed
	// flood interval in virtual ns plus the runtime's tasking counters.
	// The interval is taken inside the region with TC.Now() — warmup
	// barrier, flood, draining barrier — so fork/join overhead (PR 2's
	// own study) stays out of the deque measurement; at 192 cores the
	// fork alone is ~10x the whole flood and would drown the comparison.
	// thiefSpread, when non-nil, receives how many distinct threads
	// stole at least once.
	run := func(kind core.Kind, n int, c cell, thiefSpread *int) (int64, int64, int64, error) {
		var sp *ompt.Spine
		var mu sync.Mutex
		thieves := map[int32]bool{}
		if thiefSpread != nil {
			sp = ompt.NewSpine()
			sp.On(func(ev ompt.Event) {
				mu.Lock()
				thieves[ev.Thread] = true
				mu.Unlock()
			}, ompt.TaskSteal)
		}
		// The sweep order is pinned round-robin: this study isolates the
		// deque algorithm and steal fanout, and its thief-spread check
		// assumes distance-blind victim selection. The locality-aware
		// nearest-first default is the affinity ablation's subject.
		env := core.New(core.Config{Machine: m, Kind: kind, Seed: opt.seed(), Threads: n,
			TaskDeque: c.algo, TaskStealTries: c.fanout, TaskCutoff: c.cutoff,
			StealOrder: omp.StealRR, Spine: sp})
		rt := env.OMPRuntime()
		perProducer := 2 * tasksPerCore
		var t0, t1 int64
		_, err := env.Layer.Run(func(tc exec.TC) {
			rt.Parallel(tc, n, func(wk *omp.Worker) {
				wk.Barrier() // settle the fork before the clock starts
				if wk.ThreadNum() == 0 {
					t0 = wk.TC().Now()
				}
				if wk.ThreadNum()%2 == 0 {
					for i := 0; i < perProducer; i++ {
						wk.Task(func(tw *omp.Worker) { tw.TC().Charge(taskNS) })
					}
				}
				wk.Barrier() // scheduling point: the team drains the flood
				if wk.ThreadNum() == 0 {
					t1 = wk.TC().Now()
				}
			})
			rt.Close(tc)
		})
		if err != nil {
			return 0, 0, 0, err
		}
		if thiefSpread != nil {
			*thiefSpread = len(thieves)
		}
		return t1 - t0, rt.TaskSteals.Load(), rt.TaskCutoffs.Load(), nil
	}

	fmt.Fprintf(w, "Ablation: task deque x steal fanout x cutoff, RTK on 8XEON\n")
	fmt.Fprintf(w, "(half the team produces %d tasks x %d ns each, the other half steals;\n", 2*tasksPerCore, taskNS)
	fmt.Fprintln(w, " tasks/ms — higher is better)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %-7s %-7s", "deque", "fanout", "cutoff")
	for _, n := range scales {
		fmt.Fprintf(w, " %9d", n)
	}
	fmt.Fprintln(w)

	// best tracks each algorithm's default-config throughput at the top
	// scale for the summary comparison line.
	best := map[omp.TaskDequeAlgo]float64{}
	topScale := scales[len(scales)-1]
	for _, c := range cells {
		fmt.Fprintf(w, "%-10s %-7s %-7d", c.algo, fanoutLabel(c.fanout), c.cutoff)
		for _, n := range scales {
			interval, steals, cutoffs, err := run(core.RTK, n, c, nil)
			if err != nil {
				return err
			}
			thr := float64(tasksPerCore*n) / (float64(interval) / 1e6)
			fmt.Fprintf(w, " %9.1f", thr)
			if n == topScale && c.fanout == 0 && c.cutoff == 0 {
				best[c.algo] = thr
			}
			opt.Recorder.Add(Record{Figure: "tasking", Suite: "TASK",
				Construct: "IMBALANCED_TASK_FLOOD", Env: core.RTK.String(), Cores: n,
				Deque: c.algo.String(), StealFanout: c.fanout, Cutoff: c.cutoff,
				TasksPerMS: thr, Steals: steals, Cutoffs: cutoffs})
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nChase–Lev vs mutex at %d cores (fanout all, no cutoff): %.2fx\n",
		topScale, best[omp.DequeChaseLev]/best[omp.DequeMutex])
	if best[omp.DequeChaseLev] <= best[omp.DequeMutex] {
		return fmt.Errorf("tasking ablation: Chase–Lev (%.1f tasks/ms) did not beat the mutex deque (%.1f tasks/ms) at %d cores",
			best[omp.DequeChaseLev], best[omp.DequeMutex], topScale)
	}

	// Steal-distribution check: with the rotating steal start, a failed
	// sweep moves each thief's next probe window, so the flood's steals
	// must spread across the team instead of clustering on the few
	// thieves whose window happens to open on the producer.
	var spread int
	if _, _, _, err := run(core.RTK, topScale, cell{omp.DequeChaseLev, 4, 0}, &spread); err != nil {
		return err
	}
	if spread < topScale/4 {
		return fmt.Errorf("tasking ablation: steal distribution collapsed — only %d of %d threads ever stole", spread, topScale)
	}
	fmt.Fprintf(w, "steal distribution at %d cores (fanout 4): %d/%d threads stole — spread OK\n",
		topScale, spread, topScale)

	// Four-environment section: the same flood through the three OpenMP
	// environments, and the AutoMP/VIRGIL task path for CCK (which has
	// no OpenMP runtime — its compiler-generated chunks are its tasks).
	envThreads := 16
	if opt.Quick {
		envThreads = 8
	}
	pm := machine.PHI()
	fmt.Fprintf(w, "\nSame flood on every environment (%s, %d threads; ms)\n", pm.Name, envThreads)
	for _, kind := range []core.Kind{core.Linux, core.RTK, core.PIK} {
		env := core.New(core.Config{Machine: pm, Kind: kind, Seed: opt.seed(), Threads: envThreads})
		rt := env.OMPRuntime()
		total := tasksPerCore * envThreads
		elapsed, err := env.Layer.Run(func(tc exec.TC) {
			rt.Parallel(tc, envThreads, func(wk *omp.Worker) {
				if wk.ThreadNum()%2 == 0 {
					for i := 0; i < 2*tasksPerCore; i++ {
						wk.Task(func(tw *omp.Worker) { tw.TC().Charge(taskNS) })
					}
				}
				wk.Barrier()
			})
			rt.Close(tc)
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s %10.3f\n", kind, float64(elapsed)/1e6)
		opt.Recorder.Add(Record{Figure: "tasking", Suite: "TASK", Construct: "ENV_TASK_FLOOD",
			Env: kind.String(), Cores: envThreads, Deque: omp.DequeChaseLev.String(),
			TasksPerMS: float64(total) / (float64(elapsed) / 1e6)})
	}
	{
		elapsed, tasks, err := taskFloodCCK(pm, envThreads, tasksPerCore, taskNS, opt.seed())
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s %10.3f  (%d VIRGIL tasks)\n", core.CCK, float64(elapsed)/1e6, tasks)
		opt.Recorder.Add(Record{Figure: "tasking", Suite: "TASK", Construct: "ENV_TASK_FLOOD",
			Env: core.CCK.String(), Cores: envThreads,
			TasksPerMS: float64(tasks) / (float64(elapsed) / 1e6)})
	}
	fmt.Fprintln(w, "\n(the mutex deque serializes the producer against every thief on one")
	fmt.Fprintln(w, " lock line and pays an O(n) copy per steal; Chase–Lev keeps the owner's")
	fmt.Fprintln(w, " push/pop off the contended line entirely, so thieves only fight each")
	fmt.Fprintln(w, " other — and the cutoff converts queue pressure into inline execution)")
	return nil
}

// taskFloodCCK runs the tasking flood's CCK analogue: a fine-chunked
// AutoMP loop whose compiler-generated chunks execute as VIRGIL tasks.
func taskFloodCCK(m *machine.Machine, threads, tasksPerCore int, taskNS int64, seed int64) (int64, int, error) {
	prog := &cck.Program{Name: "taskflood", Funcs: []*cck.Function{{
		Name: "main",
		Body: []cck.Node{
			&cck.Loop{Name: "flood", N: threads * tasksPerCore, CostNS: taskNS,
				Pragma:  &cck.Pragma{Kind: cck.PragmaParallelFor, Independent: true},
				Effects: []cck.Effect{{Obj: "a", Mode: cck.Write, Pattern: cck.Disjoint}},
			},
		},
	}}}
	comp, err := cck.Compile(prog, cck.Options{Workers: threads, TargetChunkNS: taskNS})
	if err != nil {
		return 0, 0, err
	}
	tasks := 0
	for _, cf := range comp.Fns {
		for _, r := range cf.Regions {
			tasks += len(r.Chunks)
		}
	}
	env := core.New(core.Config{Machine: m, Kind: core.CCK, Seed: seed, Threads: threads})
	v := env.Virgil()
	elapsed, err := env.Layer.Run(func(tc exec.TC) {
		if ph, ok := tc.(exec.ProcHolder); ok {
			ph.Proc().SetCPU(-1)
		}
		v.Start(tc)
		comp.RunVirgil(tc, v, env.Scale(0))
		v.Stop(tc)
	})
	if err != nil {
		return 0, 0, err
	}
	return elapsed, tasks, nil
}
