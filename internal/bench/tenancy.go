package bench

import (
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/interweaving/komp/internal/core"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/places"
	"github.com/interweaving/komp/internal/pthread"
	"github.com/interweaving/komp/internal/tenancy"
)

// tenancyLoad parameterizes one open-loop run of the multi-tenant
// service: every tenant's driver submits a region each periodNS of
// virtual time (arrivals are scheduled, not paced by completions — the
// open-loop discipline), and the per-region latency is measured from the
// scheduled arrival to the join, so queueing delay is part of the
// number, exactly as a service-level objective would count it.
type tenancyLoad struct {
	tenants     int
	width       int // team size per region (1 master + width-1 leases)
	workers     int // shared pool size
	rounds      int // regions per tenant
	periodNS    int64
	sharded     bool // deal tenants onto disjoint socket shards
	maxInflight int  // 0 = admission control off
	queueDepth  int
	policy      tenancy.Policy
}

type tenancyResult struct {
	lat      []int64 // admitted-region latencies (all tenants), virtual ns
	stats    tenancy.Stats
	makespan int64 // first scheduled arrival (t=0) to last driver exit
}

// pctNS is the nearest-rank percentile of a latency sample.
func pctNS(lat []int64, p float64) int64 {
	if len(lat) == 0 {
		return 0
	}
	s := append([]int64(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(p/100*float64(len(s)) + 0.9999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// tenancyOpenLoop drives one service configuration on the 192-core
// 8XEON simulator under RTK kernel costs. Every driver is spawned on
// the launch socket (CPU i, all socket 0) — where processes land before
// anyone thinks about placement — so the only difference between the
// interleaved and sharded modes is where the service puts the teams.
func tenancyOpenLoop(opt Options, L tenancyLoad) (tenancyResult, error) {
	m := machine.XEON8()
	env := core.New(core.Config{Machine: m, Kind: core.RTK, Seed: opt.seed(), Threads: m.NumCPUs()})
	const regionItems, itemNS = 96, 4000

	cfg := tenancy.Config{
		Workers:     L.workers,
		MaxInflight: L.maxInflight,
		QueueDepth:  L.queueDepth,
		Policy:      L.policy,
		Base:        omp.Options{PthreadImpl: pthread.Custom},
	}
	sockets, err := places.Parse("sockets", places.ForMachine(m))
	if err != nil {
		return tenancyResult{}, err
	}
	if L.sharded {
		cfg.Shards = L.tenants
		cfg.Places = sockets
	} else {
		// Interleaved baseline: every tenant binds close over the full
		// per-core place list from wherever its master sits, the way a
		// placement-oblivious service packs teams — they overlap on the
		// same low CPUs and serialize there.
		cores, err := places.Parse("", places.ForMachine(m))
		if err != nil {
			return tenancyResult{}, err
		}
		cfg.Places = cores
		cfg.Base.Bind = true
		cfg.Base.ProcBind = places.BindClose
	}

	var res tenancyResult
	lats := make([][]int64, L.tenants)
	done := make([]int64, L.tenants)
	if _, err := env.Layer.Run(func(tc exec.TC) {
		svc := tenancy.New(tc, env.Layer, cfg)
		tens := make([]*tenancy.Tenant, L.tenants)
		for i := range tens {
			tens[i] = svc.Tenant(L.width)
		}
		var hs []exec.Handle
		for i := 0; i < L.tenants; i++ {
			i := i
			phase := int64(i) * L.periodNS / int64(L.tenants)
			hs = append(hs, tc.Spawn(fmt.Sprintf("tenant%d", i), i, func(dtc exec.TC) {
				for k := 0; k < L.rounds; k++ {
					due := phase + int64(k)*L.periodNS
					if now := dtc.Now(); now < due {
						dtc.Sleep(due - now)
					}
					err := tens[i].Parallel(dtc, L.width, func(w *omp.Worker) {
						w.ForEach(0, regionItems, omp.ForOpt{}, func(int) {
							w.TC().Charge(itemNS)
						})
					})
					if err == nil {
						lats[i] = append(lats[i], dtc.Now()-due)
					}
				}
				done[i] = dtc.Now()
			}))
		}
		for _, h := range hs {
			h.Join(tc)
		}
		res.stats = svc.Stats()
		svc.Shutdown(tc)
	}); err != nil {
		return tenancyResult{}, err
	}
	for i := range lats {
		res.lat = append(res.lat, lats[i]...)
		if done[i] > res.makespan {
			res.makespan = done[i]
		}
	}
	return res, nil
}

// AblationTenancy is the multi-tenant service study (`kompbench
// -ablation tenancy`): N independent tenants submitting parallel
// regions open-loop into one shared worker pool on the 192-core 8XEON
// under RTK kernel costs.
//
// Three sections:
//
//  1. Placement: interleaved (every team packed close from its master
//     over the whole machine — overlapping CPUs, serialized by the
//     simulator's non-preemptive per-CPU timelines) vs sharded (each
//     tenant confined to its own socket shard). Open-loop p50/p99
//     region latency and throughput; the acceptance gate requires the
//     sharded p99 to beat the interleaved p99 at 192 cores.
//
//  2. Admission control: a KOMP_TENANCY_QUEUE sweep under ~3x
//     overload — a roomy parking queue (latency absorbs the excess), a
//     shallow queue (parks then sheds), and pure reject (load
//     shedding). The shallow and reject rows must shed (rejected > 0),
//     the roomy row must not.
//
//  3. Work-conserving rebalance: a busy 24-wide tenant shares the pool
//     with a transient 16-wide tenant that departs still holding its
//     hot-team leases. The starved latch + rebalance drain hands them
//     back; the busy tenant's late-phase region time must come within
//     5% of its single-tenant baseline.
//
// Everything runs on the simulator: stdout is a pure function of the
// seed (bench-smoke byte-identity); the acceptance summary goes to
// stderr and a violated gate is the error return CI fails on.
func AblationTenancy(w io.Writer, opt Options) error {
	tenants := 8
	rounds := 30
	if opt.Quick {
		rounds = 12 // keep the tenant count and the 192-core machine: the acceptance scale
	}
	const width = 16

	// --- Section 1: placement ---
	base := tenancyLoad{
		tenants: tenants, width: width, rounds: rounds,
		workers:  tenants * (width - 1), // exactly covers every hot team
		periodNS: 120_000,
	}
	fmt.Fprintf(w, "Ablation: multi-tenant service, RTK on 8XEON (192 cores, %d tenants, open-loop)\n", tenants)
	fmt.Fprintf(w, "Placement: %d-wide regions every %dus per tenant (latency from scheduled arrival)\n",
		width, base.periodNS/1000)
	fmt.Fprintf(w, "%-14s %9s %11s %10s %10s\n", "placement", "admitted", "regions/s", "p50 us", "p99 us")
	p99 := map[bool]int64{}
	for _, sharded := range []bool{false, true} {
		L := base
		L.sharded = sharded
		r, err := tenancyOpenLoop(opt, L)
		if err != nil {
			return err
		}
		label := "interleaved"
		if sharded {
			label = "sharded"
		}
		p50 := pctNS(r.lat, 50)
		p99[sharded] = pctNS(r.lat, 99)
		thru := float64(r.stats.Admitted) / (float64(r.makespan) / 1e9)
		fmt.Fprintf(w, "%-14s %9d %11.0f %10.1f %10.1f\n",
			label, r.stats.Admitted, thru, float64(p50)/1000, float64(p99[sharded])/1000)
		opt.Recorder.Add(Record{
			Figure: "tenancy", Construct: "OPEN-LOOP", Env: core.RTK.String(),
			Cores: 192, Tenants: tenants, Bind: label,
			P50NS: p50, P99NS: p99[sharded], Seconds: float64(r.makespan) / 1e9,
		})
	}

	// --- Section 2: admission control under overload ---
	over := base
	over.sharded = true
	over.periodNS = 40_000 // ~3x the admitted service capacity
	over.maxInflight = 2
	queues := []string{"16,park", "2,park", "2,reject"}
	fmt.Fprintf(w, "\nAdmission control: MaxInflight=%d, ~3x overload, KOMP_TENANCY_QUEUE sweep (sharded)\n", over.maxInflight)
	fmt.Fprintf(w, "%-10s %9s %8s %9s %10s %10s\n", "queue", "admitted", "parked", "rejected", "p50 us", "p99 us")
	shed := map[string]int64{}
	for _, q := range queues {
		depth, pol, err := tenancy.ParseQueue(q)
		if err != nil {
			return err
		}
		L := over
		L.queueDepth, L.policy = depth, pol
		r, err := tenancyOpenLoop(opt, L)
		if err != nil {
			return err
		}
		shed[q] = r.stats.Rejected
		p50, p99 := pctNS(r.lat, 50), pctNS(r.lat, 99)
		fmt.Fprintf(w, "%-10s %9d %8d %9d %10.1f %10.1f\n",
			q, r.stats.Admitted, r.stats.Parked, r.stats.Rejected,
			float64(p50)/1000, float64(p99)/1000)
		opt.Recorder.Add(Record{
			Figure: "tenancy", Construct: "ADMISSION-" + pol.String(), Env: core.RTK.String(),
			Cores: 192, Tenants: tenants, QDepth: depth,
			P50NS: p50, P99NS: p99, Rejected: r.stats.Rejected,
		})
	}

	// --- Section 3: work-conserving rebalance ---
	// A 24-wide busy tenant (23 leases) and a transient 16-wide tenant
	// (15 leases) share a 26-worker pool: while both run, forks starve
	// and shrink; when the transient departs still holding its hot-team
	// leases, only the rebalance drain gets them back to the busy one.
	busyRounds, transientRounds := 24, 6
	if opt.Quick {
		busyRounds, transientRounds = 16, 4
	}
	lateN := busyRounds / 4
	const busyWidth, transientWidth, poolWorkers = 24, 16, 26
	const rbItems, rbItemNS = 96, 4000

	// run measures the busy tenant's per-region times, alone or sharing.
	run := func(withTransient bool) (overlap, late float64, rebalances int64, err error) {
		m := machine.XEON8()
		env := core.New(core.Config{Machine: m, Kind: core.RTK, Seed: opt.seed(), Threads: m.NumCPUs()})
		sockets, err := places.Parse("sockets", places.ForMachine(m))
		if err != nil {
			return 0, 0, 0, err
		}
		cfg := tenancy.Config{
			Workers: poolWorkers, Shards: 2, Places: sockets,
			Base: omp.Options{PthreadImpl: pthread.Custom},
		}
		regionNS := make([]int64, 0, busyRounds)
		var stats tenancy.Stats
		if _, err := env.Layer.Run(func(tc exec.TC) {
			svc := tenancy.New(tc, env.Layer, cfg)
			busy := svc.Tenant(busyWidth)
			transient := svc.Tenant(transientWidth)
			body := func(w *omp.Worker) {
				w.ForEach(0, rbItems, omp.ForOpt{}, func(int) {
					w.TC().Charge(rbItemNS)
				})
			}
			var th exec.Handle
			if withTransient {
				// The transient forks first (the busy driver waits out its
				// burst's head start), grabs its leases, runs its burst, and
				// goes idle still caching its hot team.
				th = tc.Spawn("transient", 1, func(dtc exec.TC) {
					for k := 0; k < transientRounds; k++ {
						if err := transient.Parallel(dtc, transientWidth, body); err != nil {
							return
						}
					}
				})
			}
			bh := tc.Spawn("busy", 0, func(dtc exec.TC) {
				dtc.Sleep(50_000)
				for k := 0; k < busyRounds; k++ {
					t0 := dtc.Now()
					if err := busy.Parallel(dtc, busyWidth, body); err != nil {
						return
					}
					regionNS = append(regionNS, dtc.Now()-t0)
				}
			})
			bh.Join(tc)
			if th != nil {
				th.Join(tc)
			}
			stats = svc.Stats()
			svc.Shutdown(tc)
		}); err != nil {
			return 0, 0, 0, err
		}
		mean := func(s []int64) float64 {
			var sum int64
			for _, v := range s {
				sum += v
			}
			return float64(sum) / float64(len(s))
		}
		return mean(regionNS[:lateN]), mean(regionNS[len(regionNS)-lateN:]), stats.Rebalances, nil
	}

	_, solo, _, err := run(false)
	if err != nil {
		return err
	}
	overlap, late, rebalances, err := run(true)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nWork-conserving rebalance: %d-wide busy + transient %d-wide tenant, pool of %d\n",
		busyWidth, transientWidth, poolWorkers)
	fmt.Fprintf(w, "%-44s %10.1f\n", "single-tenant baseline, late (us/region)", solo/1000)
	fmt.Fprintf(w, "%-44s %10.1f\n", "shared, overlap phase (us/region)", overlap/1000)
	fmt.Fprintf(w, "%-44s %10.1f\n", "shared, after transient departs (us/region)", late/1000)
	fmt.Fprintf(w, "%-44s %10d\n", "rebalances", rebalances)
	fmt.Fprintln(w, "\n(the transient departs holding its hot-team leases; the busy tenant's")
	fmt.Fprintln(w, " next fork starves, latches the pool, and the completion-path rebalance")
	fmt.Fprintln(w, " drains the idle tenant's cache — parked capacity flows back to work)")
	opt.Recorder.Add(Record{Figure: "tenancy", Construct: "REBALANCE-SOLO", Env: core.RTK.String(),
		Cores: 192, Tenants: 1, MedianNS: solo})
	opt.Recorder.Add(Record{Figure: "tenancy", Construct: "REBALANCE-SHARED", Env: core.RTK.String(),
		Cores: 192, Tenants: 2, MedianNS: late})

	// --- Acceptance gates (stderr + error return: the CI hooks) ---
	fmt.Fprintf(os.Stderr, "tenancy: p99 interleaved %.1fus vs sharded %.1fus; shed %v; rebalance late %.1fus vs solo %.1fus (%d rebalances)\n",
		float64(p99[false])/1000, float64(p99[true])/1000,
		[]int64{shed["16,park"], shed["2,park"], shed["2,reject"]},
		late/1000, solo/1000, rebalances)
	if p99[true] >= p99[false] {
		return fmt.Errorf("tenancy acceptance: sharded p99 %.1fus did not beat interleaved p99 %.1fus at 192 cores",
			float64(p99[true])/1000, float64(p99[false])/1000)
	}
	if shed["2,park"] == 0 || shed["2,reject"] == 0 {
		return fmt.Errorf("tenancy acceptance: saturated shallow-queue rows shed nothing (rejected %d park, %d reject)",
			shed["2,park"], shed["2,reject"])
	}
	if shed["16,park"] != 0 {
		return fmt.Errorf("tenancy acceptance: roomy parking queue shed %d submissions, want 0", shed["16,park"])
	}
	if rebalances == 0 {
		return fmt.Errorf("tenancy acceptance: transient departure triggered no rebalance")
	}
	if late > solo*1.05 {
		return fmt.Errorf("tenancy acceptance: post-rebalance region time %.1fus is more than 5%% over the single-tenant baseline %.1fus",
			late/1000, solo/1000)
	}
	return nil
}
