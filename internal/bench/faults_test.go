package bench

import (
	"strings"
	"testing"
)

// TestAblationFaultsRecovers pins the three acceptance behaviors of the
// resilience study: lossy MPI completes (and total loss fails cleanly),
// the shrunken OpenMP team covers every iteration exactly once, and the
// crashed compartment is recovered within the restart budget.
func TestAblationFaultsRecovers(t *testing.T) {
	var b strings.Builder
	if err := AblationFaults(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"drop=0.05    yes", // lossy Allreduce run completed
		"no (link failed)", // total loss failed cleanly, did not hang
		"6/8",              // two CPUs gone, six survivors finished
		"no (budget)",      // storm exhausted the restart budget
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "BAD") {
		t.Errorf("a shrunken loop lost or repeated iterations:\n%s", out)
	}
}

// TestAblationFaultsDeterministic: two runs with the same seed must be
// byte-identical — the whole point of a seeded fault plan.
func TestAblationFaultsDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := AblationFaults(&a, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	if err := AblationFaults(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same-seed runs diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a.String(), b.String())
	}
}
