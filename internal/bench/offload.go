package bench

import (
	"fmt"
	"io"
	"os"

	"github.com/interweaving/komp/internal/core"
	"github.com/interweaving/komp/internal/device"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/omp"
)

// Offload-ablation workload parameters: a saxpy-like DOALL loop whose
// host per-iteration cost is offloadIterNS; a device SIMT lane runs one
// iteration offloadSlowdown times slower (simple in-order lanes), and
// every iteration streams one float64 operand.
const (
	offloadIterNS   = 1200
	offloadSlowdown = 4
	offloadLanes    = 64
)

// offloadHost runs the DOALL loop on the RTK host environment with n
// workers (n == 1: serial on the encountering thread, the
// initial-device fallback's schedule) and returns virtual elapsed ns.
func offloadHost(opt Options, n, iters int) (int64, error) {
	m := machine.XEON8()
	env := core.New(core.Config{Machine: m, Kind: core.RTK, Seed: opt.seed(), Threads: n})
	rt := env.OMPRuntime()
	return env.Layer.Run(func(tc exec.TC) {
		if n == 1 {
			tc.Charge(int64(iters) * offloadIterNS)
		} else {
			rt.Parallel(tc, n, func(w *omp.Worker) {
				w.For(0, iters, omp.ForOpt{}, func(lo, hi int) {
					w.TC().Charge(int64(hi-lo) * offloadIterNS)
				})
			})
		}
		rt.Close(tc)
	})
}

type offloadDevRes struct {
	elapsedNS int64
	stats     device.Stats
	sum       float64
}

// offloadDevice runs `kernels` back-to-back target regions over one
// mapped operand on a cus x offloadLanes accelerator attached to the
// 8XEON. hoist brackets the launches in a single `target data` region;
// otherwise every region maps tofrom on its own — the traffic the
// hoisting section measures. The kernel computes a league sum for real
// (integer-valued, so exact under any combine order), which the caller
// checks against the serial value.
func offloadDevice(opt Options, cus, iters, kernels int, hoist bool) (offloadDevRes, error) {
	m := machine.WithDevice(machine.XEON8(), cus, offloadLanes)
	env := core.New(core.Config{Machine: m, Kind: core.RTK, Seed: opt.seed(), Threads: 1})
	rt := env.OMPRuntime()
	d := env.Device()
	a := make([]float64, iters)
	for i := range a {
		a[i] = float64(i%7 + 1)
	}
	k := device.Kernel{
		Name:         "doall",
		N:            iters,
		IterNS:       offloadIterNS * offloadSlowdown,
		BytesPerIter: 8,
		Uses:         []any{a},
		Body: func(b device.Block) float64 {
			da := d.Ptr(a).([]float64)
			var s float64
			for i := b.Lo; i < b.Hi; i++ {
				s += da[i]
			}
			return s
		},
		Reduce: func(x, y float64) float64 { return x + y },
	}
	var res offloadDevRes
	var runErr error
	elapsed, err := env.Layer.Run(func(tc exec.TC) {
		maps := []device.Map{device.MapTofrom(a)}
		run := func() {
			for j := 0; j < kernels; j++ {
				r, kerr := rt.Target(tc, maps, k)
				if kerr != nil {
					runErr = kerr
					return
				}
				res.sum = r.Reduced
			}
		}
		if hoist {
			rt.TargetData(tc, maps, run)
		} else {
			run()
		}
		rt.Close(tc)
	})
	if err != nil {
		return res, err
	}
	if runErr != nil {
		return res, runErr
	}
	res.elapsedNS = elapsed
	res.stats = d.Stats()
	return res, nil
}

// offloadExpectedSum is the exact serial reduction value of the
// workload's integer-valued operand.
func offloadExpectedSum(iters int) float64 {
	var s float64
	for i := 0; i < iters; i++ {
		s += float64(i%7 + 1)
	}
	return s
}

// AblationOffload is the device-offload study (`kompbench -ablation
// offload`): `target teams distribute` on the simulated accelerator
// against host worksharing on the 192-core 8XEON.
//
// Two sections:
//
//  1. DOALL sweep: the same loop on host teams of {24,96,192} cores and
//     on accelerators of {8,16,32} CUs x 64 lanes (each lane 4x slower
//     than a host core), map(tofrom) traffic included. The acceptance
//     gate requires the largest device to beat host-serial at the
//     largest size — offload must pay for its transfers.
//
//  2. Map-traffic hoisting: several kernels over one operand, mapped
//     tofrom per region vs hoisted into one enclosing `target data`.
//     The present-table refcount makes the hoisted runs move the
//     operand exactly once each way; the gate requires strictly less
//     traffic and no more time than the per-region rows.
//
// Every kernel also computes its league reduction for real and the run
// fails on a wrong value, so the timing rows double as a correctness
// check of the map/translate/execute path. Everything runs on the
// simulator: stdout is a pure function of the seed; the acceptance
// summary goes to stderr and a violated gate is the error return CI
// fails on.
func AblationOffload(w io.Writer, opt Options) error {
	sizes := []int{1 << 16, 1 << 18, 1 << 20}
	if opt.Quick {
		sizes = []int{1 << 16, 1 << 18}
	}
	hostCores := []int{24, 96, 192}
	devCUs := []int{8, 16, 32}

	fmt.Fprintln(w, "Ablation: device offload — target teams distribute vs host worksharing (8XEON + accelerator)")
	fmt.Fprintf(w, "DOALL sweep: %dns/iter on a host core, %dx lane slowdown, %d lanes/CU, map(tofrom) operand\n",
		offloadIterNS, offloadSlowdown, offloadLanes)
	fmt.Fprintf(w, "%-12s", "config")
	for _, n := range sizes {
		fmt.Fprintf(w, " %12d", n)
	}
	fmt.Fprintf(w, " %14s\n", "h2d+d2h bytes")

	elapsed := map[string]map[int]int64{} // config -> size -> ns
	row := func(label string) map[int]int64 {
		r := map[int]int64{}
		elapsed[label] = r
		return r
	}

	serial := row("host-serial")
	fmt.Fprintf(w, "%-12s", "host-serial")
	for _, n := range sizes {
		ns, err := offloadHost(opt, 1, n)
		if err != nil {
			return err
		}
		serial[n] = ns
		fmt.Fprintf(w, " %12.3f", float64(ns)/1e6)
		opt.Recorder.Add(Record{Figure: "offload", Construct: "DOALL", Env: core.RTK.String(),
			Cores: 1, Seconds: float64(ns) / 1e9})
	}
	fmt.Fprintf(w, " %14s\n", "-")

	for _, c := range hostCores {
		label := fmt.Sprintf("host-%d", c)
		r := row(label)
		fmt.Fprintf(w, "%-12s", label)
		for _, n := range sizes {
			ns, err := offloadHost(opt, c, n)
			if err != nil {
				return err
			}
			r[n] = ns
			fmt.Fprintf(w, " %12.3f", float64(ns)/1e6)
			opt.Recorder.Add(Record{Figure: "offload", Construct: "DOALL", Env: core.RTK.String(),
				Cores: c, Seconds: float64(ns) / 1e9})
		}
		fmt.Fprintf(w, " %14s\n", "-")
	}

	for _, cus := range devCUs {
		label := fmt.Sprintf("dev-%dx%d", cus, offloadLanes)
		r := row(label)
		fmt.Fprintf(w, "%-12s", label)
		var traffic int64
		for _, n := range sizes {
			res, err := offloadDevice(opt, cus, n, 1, false)
			if err != nil {
				return err
			}
			if want := offloadExpectedSum(n); res.sum != want {
				return fmt.Errorf("offload acceptance: device reduction %v, want %v (cus=%d n=%d)",
					res.sum, want, cus, n)
			}
			r[n] = res.elapsedNS
			traffic = res.stats.BytesH2D + res.stats.BytesD2H
			fmt.Fprintf(w, " %12.3f", float64(res.elapsedNS)/1e6)
			opt.Recorder.Add(Record{Figure: "offload", Construct: "DOALL", Env: "device",
				Cores: cus * offloadLanes, DeviceCUs: cus, DeviceLanes: offloadLanes,
				BytesH2D: res.stats.BytesH2D, BytesD2H: res.stats.BytesD2H,
				Seconds: float64(res.elapsedNS) / 1e9})
		}
		fmt.Fprintf(w, " %14d\n", traffic)
	}
	fmt.Fprintln(w, "(ms per run; device columns include kernel launch and DMA transfer time)")

	// --- Section 2: per-region tofrom vs target-data hoisting ---
	const trafficCUs, trafficKernels = 16, 8
	trafficIters := 1 << 18
	if opt.Quick {
		trafficIters = 1 << 16
	}
	fmt.Fprintf(w, "\nMap traffic: %d kernels over one %d KiB operand, %dx%d device\n",
		trafficKernels, trafficIters*8/1024, trafficCUs, offloadLanes)
	fmt.Fprintf(w, "%-20s %10s %14s %14s\n", "strategy", "ms", "bytes h2d", "bytes d2h")
	type trafficRow struct {
		res offloadDevRes
	}
	rows := map[bool]trafficRow{}
	for _, hoist := range []bool{false, true} {
		res, err := offloadDevice(opt, trafficCUs, trafficIters, trafficKernels, hoist)
		if err != nil {
			return err
		}
		if want := offloadExpectedSum(trafficIters); res.sum != want {
			return fmt.Errorf("offload acceptance: device reduction %v, want %v (hoist=%v)",
				res.sum, want, hoist)
		}
		rows[hoist] = trafficRow{res}
		label, construct := "per-region tofrom", "MAP-TRAFFIC-TOFROM"
		if hoist {
			label, construct = "target-data hoist", "MAP-TRAFFIC-HOIST"
		}
		fmt.Fprintf(w, "%-20s %10.3f %14d %14d\n", label,
			float64(res.elapsedNS)/1e6, res.stats.BytesH2D, res.stats.BytesD2H)
		opt.Recorder.Add(Record{Figure: "offload", Construct: construct, Env: "device",
			Cores: trafficCUs * offloadLanes, DeviceCUs: trafficCUs, DeviceLanes: offloadLanes,
			BytesH2D: res.stats.BytesH2D, BytesD2H: res.stats.BytesD2H,
			Seconds: float64(res.elapsedNS) / 1e9})
	}
	fmt.Fprintln(w, "\n(a mapping already present only gains a reference — the enclosing")
	fmt.Fprintln(w, " target data region moves the operand once each way, however many")
	fmt.Fprintln(w, " kernels run inside; per-region tofrom pays the DMA round trip every time)")

	// --- Acceptance gates (stderr + error return: the CI hooks) ---
	top := sizes[len(sizes)-1]
	bigDev := elapsed[fmt.Sprintf("dev-%dx%d", devCUs[len(devCUs)-1], offloadLanes)][top]
	perRegion, hoisted := rows[false].res, rows[true].res
	fmt.Fprintf(os.Stderr, "offload: dev-%dx%d %.3fms vs host-serial %.3fms at n=%d; traffic %d vs hoisted %d bytes\n",
		devCUs[len(devCUs)-1], offloadLanes, float64(bigDev)/1e6, float64(serial[top])/1e6, top,
		perRegion.stats.BytesH2D+perRegion.stats.BytesD2H,
		hoisted.stats.BytesH2D+hoisted.stats.BytesD2H)
	if bigDev >= serial[top] {
		return fmt.Errorf("offload acceptance: largest device %.3fms did not beat host-serial %.3fms at n=%d",
			float64(bigDev)/1e6, float64(serial[top])/1e6, top)
	}
	if ht, pt := hoisted.stats.BytesH2D+hoisted.stats.BytesD2H,
		perRegion.stats.BytesH2D+perRegion.stats.BytesD2H; ht >= pt {
		return fmt.Errorf("offload acceptance: hoisted traffic %d bytes is not below per-region tofrom %d bytes", ht, pt)
	}
	if hoisted.elapsedNS > perRegion.elapsedNS {
		return fmt.Errorf("offload acceptance: hoisted run %.3fms is slower than per-region tofrom %.3fms",
			float64(hoisted.elapsedNS)/1e6, float64(perRegion.elapsedNS)/1e6)
	}
	return nil
}
