package bench

import (
	"fmt"
	"io"

	"github.com/interweaving/komp/internal/cck"
	"github.com/interweaving/komp/internal/core"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/linuxsim"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/multikernel"
	"github.com/interweaving/komp/internal/nas"
	"github.com/interweaving/komp/internal/nautilus"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/pik"
	"github.com/interweaving/komp/internal/pthread"
)

// Ablations returns the design-choice studies DESIGN.md calls out —
// experiments the paper motivates but does not plot directly.
func Ablations() []Figure {
	return []Figure{
		{"ab-firsttouch", "Ablation: first-touch vs immediate allocation on 8XEON (the §6.3 extension)", AblationFirstTouch},
		{"ab-pthread", "Ablation: PTE port vs customized pthread layer (Fig. 2a vs 2b)", AblationPthread},
		{"ab-chunk", "Ablation: AutoMP latency-aware chunk budget sweep", AblationChunk},
		{"ab-privatization", "Ablation: exploiting privatization directives (the §6.2 future-work fix)", AblationPrivatization},
		{"ab-boot", "Experiment: compartment reboot vs process creation (the §7 deployment argument)", AblationBootTime},
		{"barrier", "Ablation: barrier arrival/release topology — flat vs tree vs hierarchical on 8XEON", AblationBarrier},
		{"tasking", "Ablation: task deque algorithm (mutex vs Chase–Lev) x steal fanout x cutoff on 8XEON", AblationTasking},
		{"affinity", "Ablation: proc_bind x schedule over places, plus steal locality, on 8XEON", AblationAffinity},
		{"faults", "Resilience study: seeded fault injection across the MPI, OpenMP, and multikernel recovery paths", AblationFaults},
		{"cancel", "Ablation: cancellation propagation latency (flat vs tree) and fault-composed graceful abort", AblationCancel},
		{"simcore", "Ablation: DES event-queue algorithm (heap vs timer wheel) — events/sec and trace equality up to 1024 cores", AblationSimcore},
		{"nested", "Ablation: nested parallelism — inner fork/join cost x lease policy, and a two-level plane sweep vs the serialized baseline", AblationNested},
		{"tenancy", "Ablation: multi-tenant service — open-loop latency under placement sharding, admission backpressure, and work-conserving rebalance", AblationTenancy},
		{"offload", "Ablation: device offload — target teams distribute on the simulated accelerator vs host worksharing, with map-traffic hoisting", AblationOffload},
	}
}

// AblationByID resolves an ablation id.
func AblationByID(id string) (Figure, bool) {
	for _, f := range Ablations() {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}

// AblationFirstTouch quantifies the paper's 8XEON extension (§6.3):
// "first-touch allocation at 2 MB granularity instead of immediate
// allocation... Immediate allocation results in such arrays being
// assigned to a single NUMA zone, lowering performance."
func AblationFirstTouch(w io.Writer, opt Options) error {
	m := machine.XEON8()
	scales := []int{48, 96, 192}
	if opt.Quick {
		scales = []int{96}
	}
	fmt.Fprintln(w, "Ablation: RTK on 8XEON with first-touch vs immediate allocation (seconds; lower is better)")
	fmt.Fprintf(w, "%-8s %-12s", "bench", "policy")
	for _, n := range scales {
		fmt.Fprintf(w, " %9d", n)
	}
	fmt.Fprintln(w)
	for _, name := range []string{"MG", "CG", "FT"} {
		s := nas.SpecByName(name)
		for _, firstTouch := range []bool{true, false} {
			policy := "first-touch"
			if !firstTouch {
				policy = "immediate"
			}
			fmt.Fprintf(w, "%-8s %-12s", name+"-"+s.Class, policy)
			for _, n := range scales {
				env := core.New(core.Config{Machine: m, Kind: core.RTK, Seed: opt.seed(),
					Threads: n, ForceImmediate: !firstTouch, BootImageBytes: s.WorkingSetBytes})
				res, err := nas.RunModel(env, s, n)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, " %9.2f", res.Seconds)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "\n(immediate allocation parks every page in the allocating CPU's zone;")
	fmt.Fprintln(w, " cross-socket threads then pay remote DRAM latency on every access)")
	return nil
}

// AblationPthread compares the two pthread compatibility layers of
// Fig. 2 — the portable PTE port against the Nautilus-customized
// implementation — on the pthread primitives themselves: barrier rounds,
// uncontended lock/unlock pairs, contended lock handoffs, and condvar
// signal ping-pong, all over the RTK kernel cost table.
func AblationPthread(w io.Writer, opt Options) error {
	m := machine.PHI()
	threads := 16
	if opt.Quick {
		threads = 8
	}
	rounds := 200
	fmt.Fprintf(w, "Ablation: pthread compatibility layer variants, %d kernel threads on PHI (us/op)\n", threads)
	fmt.Fprintf(w, "%-28s %12s %12s\n", "primitive", "pte", "custom")

	type row struct {
		name string
		vals map[string]float64
	}
	rows := []row{
		{"barrier round", map[string]float64{}},
		{"lock/unlock (uncontended)", map[string]float64{}},
		{"lock/unlock (contended)", map[string]float64{}},
		{"cond signal ping-pong", map[string]float64{}},
	}
	for _, impl := range []pthread.Impl{pthread.PTE, pthread.Custom} {
		env := core.New(core.Config{Machine: m, Kind: core.RTK, Seed: opt.seed(), Threads: threads})
		lib := pthread.New(env.Layer, impl)
		var barrierUS, lockUS, contUS, condUS float64
		if _, err := env.Layer.Run(func(tc exec.TC) {
			// Barrier rounds across the team.
			b := lib.NewBarrier(threads)
			t0 := tc.Now()
			var ths []*pthread.Thread
			for i := 0; i < threads; i++ {
				ths = append(ths, lib.Create(tc, pthread.Attr{CPU: i}, func(tc exec.TC) {
					for r := 0; r < rounds; r++ {
						b.Wait(tc)
					}
				}))
			}
			for _, th := range ths {
				lib.Join(tc, th)
			}
			barrierUS = float64(tc.Now()-t0) / float64(rounds) / 1000

			// Uncontended lock/unlock.
			mu := lib.NewMutex()
			t0 = tc.Now()
			for r := 0; r < rounds; r++ {
				mu.Lock(tc)
				mu.Unlock(tc)
			}
			lockUS = float64(tc.Now()-t0) / float64(rounds) / 1000

			// Contended lock handoffs.
			cmu := lib.NewMutex()
			t0 = tc.Now()
			ths = ths[:0]
			for i := 0; i < 4; i++ {
				ths = append(ths, lib.Create(tc, pthread.Attr{CPU: 1 + i}, func(tc exec.TC) {
					for r := 0; r < rounds/4; r++ {
						cmu.Lock(tc)
						tc.Charge(200)
						cmu.Unlock(tc)
					}
				}))
			}
			for _, th := range ths {
				lib.Join(tc, th)
			}
			contUS = float64(tc.Now()-t0) / float64(rounds) / 1000

			// Condvar ping-pong between two threads.
			pm := lib.NewMutex()
			cv := lib.NewCond()
			turn := 0
			t0 = tc.Now()
			pong := lib.Create(tc, pthread.Attr{CPU: 2}, func(tc exec.TC) {
				pm.Lock(tc)
				for r := 0; r < rounds; r++ {
					for turn != 1 {
						cv.Wait(tc, pm)
					}
					turn = 0
					cv.Broadcast(tc)
				}
				pm.Unlock(tc)
			})
			pm.Lock(tc)
			for r := 0; r < rounds; r++ {
				turn = 1
				cv.Broadcast(tc)
				for turn != 0 {
					cv.Wait(tc, pm)
				}
			}
			pm.Unlock(tc)
			lib.Join(tc, pong)
			condUS = float64(tc.Now()-t0) / float64(rounds) / 1000
		}); err != nil {
			return err
		}
		rows[0].vals[impl.String()] = barrierUS
		rows[1].vals[impl.String()] = lockUS
		rows[2].vals[impl.String()] = contUS
		rows[3].vals[impl.String()] = condUS
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %12.3f %12.3f\n", r.name, r.vals["pte"], r.vals["custom"])
	}
	fmt.Fprintln(w, "\n(the PTE port pays generic layering on every operation and builds")
	fmt.Fprintln(w, " barriers from mutex+condvar; the customized layer maps onto kernel")
	fmt.Fprintln(w, " primitives directly — the reason the paper revisited it, §3.3)")
	return nil
}

// AblationChunk sweeps AutoMP's per-task latency budget on the skewed MG
// model: too coarse re-creates OpenMP's imbalance, too fine drowns in
// task overheads.
func AblationChunk(w io.Writer, opt Options) error {
	m := machine.PHI()
	threads := 32
	s := nas.SpecByName("MG")
	prog := s.Program(m, threads, nas.PipeAutoMP)
	type point struct {
		label  string
		budget int64
		minPer int
	}
	points := []point{
		{"5us", 5_000, 4},
		{"50us (default)", 50_000, 4},
		{"5ms", 5_000_000, 4},
		{"50ms", 50_000_000, 4},
		{"~1 task/worker", 78_000_000, 1}, // OpenMP-style coarse partition
		{"single task", 1 << 60, 1},       // fully serial loops
	}
	fmt.Fprintf(w, "Ablation: AutoMP task latency budget, MG-C model, %d workers on PHI\n", threads)
	fmt.Fprintf(w, "%-16s %10s %12s\n", "budget", "tasks", "seconds")
	for _, pt := range points {
		budget := pt.budget
		comp, err := cck.Compile(prog, cck.Options{Workers: threads, Fuse: true,
			TargetChunkNS: budget, MinChunksPerWorker: pt.minPer})
		if err != nil {
			return err
		}
		tasks := 0
		for _, cf := range comp.Fns {
			for _, r := range cf.Regions {
				tasks += len(r.Chunks)
			}
		}
		env := core.New(core.Config{Machine: m, Kind: core.CCK, Seed: opt.seed(),
			Threads: threads, BootImageBytes: s.WorkingSetBytes})
		v := env.Virgil()
		elapsed, err := env.Layer.Run(func(tc exec.TC) {
			if ph, ok := tc.(exec.ProcHolder); ok {
				ph.Proc().SetCPU(-1)
			}
			v.Start(tc)
			comp.RunVirgil(tc, v, env.Scale(0))
			v.Stop(tc)
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-16s %10d %12.2f\n", pt.label, tasks, float64(elapsed)/1e9)
	}
	return nil
}

// AblationPrivatization turns on the ExploitPrivatization knob — the
// capability whose absence costs LU/BT/SP their parallelism (§6.2) —
// and shows the BT model recovering.
func AblationPrivatization(w io.Writer, opt Options) error {
	m := machine.PHI()
	scales := []int{8, 32, 64}
	if opt.Quick {
		scales = []int{8}
	}
	fmt.Fprintln(w, "Ablation: AutoMP with privatization support (BT-B model on PHI, seconds)")
	fmt.Fprintf(w, "%-24s", "compiler")
	for _, n := range scales {
		fmt.Fprintf(w, " %9d", n)
	}
	fmt.Fprintln(w)
	s := nas.SpecByName("BT")
	for _, exploit := range []bool{false, true} {
		label := "paper AutoMP"
		if exploit {
			label = "with privatization"
		}
		fmt.Fprintf(w, "%-24s", label)
		for _, n := range scales {
			prog := s.Program(m, n, nas.PipeAutoMP)
			comp, err := cck.Compile(prog, cck.Options{Workers: n, Fuse: true, ExploitPrivatization: exploit})
			if err != nil {
				return err
			}
			env := core.New(core.Config{Machine: m, Kind: core.CCK, Seed: opt.seed(),
				Threads: n, BootImageBytes: s.WorkingSetBytes})
			v := env.Virgil()
			elapsed, err := env.Layer.Run(func(tc exec.TC) {
				if ph, ok := tc.(exec.ProcHolder); ok {
					ph.Proc().SetCPU(-1)
				}
				v.Start(tc)
				comp.RunVirgil(tc, v, env.Scale(0))
				v.Stop(tc)
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %9.2f", float64(elapsed)/1e9)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// AblationBarrier measures the per-barrier overhead of the three arrival
// topologies — flat counter, tree release, hierarchical combining tree —
// on the RTK kernel cost table across 8XEON scales. The overhead is the
// marginal cost of one extra barrier round (the slope between a 20- and a
// 40-round region), which cancels the one-time pool spawn and fork/join,
// exactly as EPCC's reference-subtracted overhead does. A final line
// shows the payoff of fusing reduction into the arrival tree: one fused
// Reduce against the two flat barriers the classic algorithm pays.
func AblationBarrier(w io.Writer, opt Options) error {
	m := machine.XEON8()
	scales := []int{24, 48, 96, 192}
	if opt.Quick {
		scales = []int{24, 96}
	}
	const baseRounds, moreRounds = 20, 40

	// region runs `rounds` repetitions of body inside one parallel region
	// under the given barrier topology and returns the elapsed virtual ns.
	region := func(algo omp.BarrierAlgo, n, rounds int, body func(wk *omp.Worker)) (int64, error) {
		env := core.New(core.Config{Machine: m, Kind: core.RTK, Seed: opt.seed(),
			Threads: n, BarrierAlgo: algo})
		rt := env.OMPRuntime()
		return env.Layer.Run(func(tc exec.TC) {
			rt.Parallel(tc, n, func(wk *omp.Worker) {
				for r := 0; r < rounds; r++ {
					body(wk)
				}
			})
			rt.Close(tc)
		})
	}
	// marginal is the per-round slope in microseconds.
	marginal := func(algo omp.BarrierAlgo, n int, body func(wk *omp.Worker)) (float64, error) {
		short, err := region(algo, n, baseRounds, body)
		if err != nil {
			return 0, err
		}
		long, err := region(algo, n, moreRounds, body)
		if err != nil {
			return 0, err
		}
		return float64(long-short) / float64(moreRounds-baseRounds) / 1000, nil
	}
	barrier := func(wk *omp.Worker) { wk.Barrier() }
	reduce := func(wk *omp.Worker) { wk.Reduce(omp.ReduceSum, 1) }

	fmt.Fprintln(w, "Ablation: barrier arrival/release topology, RTK on 8XEON (us/barrier, marginal)")
	fmt.Fprintf(w, "%-14s", "algorithm")
	for _, n := range scales {
		fmt.Fprintf(w, " %9d", n)
	}
	fmt.Fprintln(w)
	for _, algo := range []omp.BarrierAlgo{omp.BarrierFlat, omp.BarrierTree, omp.BarrierHier} {
		fmt.Fprintf(w, "%-14s", algo.String())
		for _, n := range scales {
			us, err := marginal(algo, n, barrier)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %9.2f", us)
		}
		fmt.Fprintln(w)
	}

	top := scales[len(scales)-1]
	fusedUS, err := marginal(omp.BarrierHier, top, reduce)
	if err != nil {
		return err
	}
	flatUS, err := marginal(omp.BarrierFlat, top, barrier)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%-40s %9.2f us\n", fmt.Sprintf("fused Reduce at %d cores (hier)", top), fusedUS)
	fmt.Fprintf(w, "%-40s %9.2f us\n", "classic Reduce = 2 flat barriers + scan", 2*flatUS)
	fmt.Fprintln(w, "\n(flat arrival serializes every thread on one counter line and the")
	fmt.Fprintln(w, " release wakes all waiters from one CPU; the hierarchical tree bounds")
	fmt.Fprintln(w, " both to O(fanout) transfers per node and folds the reduction into")
	fmt.Fprintln(w, " the arrival combine, so a Reduce costs one barrier, not two)")
	return nil
}

// AblationBootTime measures the §7 deployment argument: rebooting the
// Nautilus compartment of a multi-kernel configuration happens "at
// timescales similar to a process creation in Linux". It compares the
// modeled compartment boot against loading a PIK executable and against
// a Linux-analogue process creation (fork+exec-scale costs).
func AblationBootTime(w io.Writer, opt Options) error {
	m := machine.PHI()
	part, err := multikernel.Boot(multikernel.Config{
		Machine:          m,
		Seed:             opt.seed(),
		CompartmentCPUs:  16,
		CompartmentBytes: 8 << 30,
		KernelCosts: exec.Costs{ThreadSpawnNS: 2200, FutexWaitEntryNS: 80,
			FutexWakeEntryNS: 80, FutexWakeLatencyNS: 400, MallocNS: 300,
			SyscallExtraNS: 130},
		BootImageBytes: 64 << 20,
	})
	if err != nil {
		return err
	}
	pik.RegisterEntry("boot_probe", func(tc exec.TC, p *pik.Process, args []string) int { return 0 })
	img := pik.Link(&pik.Image{Name: "probe", Flags: pik.FlagPIE, Entry: "boot_probe",
		TextBytes: make([]byte, 8<<20), BSSSize: 16 << 20, StackSize: 1 << 20})

	var rebootNS, pikNS, linuxProcNS int64
	if _, err := part.HostLayer.Run(func(tc exec.TC) {
		rebootNS = part.Reboot(tc)
		h := part.SpawnInCompartment("pik-load", part.CompCPUs[0], func(ktc exec.TC) {
			t0 := ktc.Now()
			if _, _, err := pik.Run(ktc, part.Kernel, img, nil); err != nil {
				return
			}
			pikNS = ktc.Now() - t0
		})
		h.Join(tc)
		// Linux-analogue process creation: fork + exec + runtime linker +
		// faulting the image in (modeled with the same image volume).
		t0 := tc.Now()
		tc.Charge(1_200_000)                                         // fork+execve+ld.so path
		tc.Charge(int64(len(img)) / 4096 * linuxsim.PageFaultNS / 2) // demand-fault half the image
		linuxProcNS = tc.Now() - t0
	}); err != nil {
		return err
	}
	fmt.Fprintln(w, "Experiment: compartment reboot vs process creation (PHI, 16-CPU compartment)")
	fmt.Fprintf(w, "%-44s %10.2f ms\n", "Nautilus compartment reboot (64MiB image)", float64(rebootNS)/1e6)
	fmt.Fprintf(w, "%-44s %10.2f ms\n", "PIK load+exec of a 24MiB executable", float64(pikNS)/1e6)
	fmt.Fprintf(w, "%-44s %10.2f ms\n", "Linux process creation (same executable)", float64(linuxProcNS)/1e6)
	fmt.Fprintln(w, "\n(all three are single-digit milliseconds: cycling the specialized")
	fmt.Fprintln(w, " kernel per job is as cheap as starting a process, §7)")
	var _ = nautilus.BootCost
	return nil
}
