package bench

import (
	"fmt"
	"io"

	"github.com/interweaving/komp/internal/core"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/fault"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/sim"
)

// AblationCancel is the cancellation study. Section one measures
// cancellation propagation latency — the virtual time from one thread's
// Cancel(parallel) until the last teammate has observed it at a
// cancellation point and left the region — across 8XEON team sizes, for
// the flat central-word poll against the barrier-tree propagation.
// Section two composes cancellation with the resilience machinery: a
// region deadline and a CPU-offline fault plan land on the same join,
// and the loop must abort gracefully with a clean partial result (every
// completed chunk counted exactly once, survivors converged). All
// numbers are virtual-time derived, so the report is byte-identical
// across runs with the same seed.
func AblationCancel(w io.Writer, opt Options) error {
	if err := cancelLatency(w, opt); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return cancelFaultCompose(w, opt)
}

// cancelLatency: every thread polls CancellationPoint on a fixed
// cadence; thread 0 cancels the region after a warmup. The latency is
// max(observation) - publish. Flat polling misses on one shared word —
// every observer serializes on its cache line, O(n) at the tail — while
// tree propagation copies the bits down the barrier arrival tree, so a
// poller only ever misses on a line shared by its fanout siblings.
func cancelLatency(w io.Writer, opt Options) error {
	m := machine.XEON8()
	scales := []int{24, 48, 96, 192}
	if opt.Quick {
		scales = []int{24, 96}
	}
	const pollGapNS = 2_000

	latency := func(prop omp.CancelProp, n int) (int64, error) {
		env := core.New(core.Config{Machine: m, Kind: core.RTK, Seed: opt.seed(),
			Threads: n, Cancellation: true, CancelProp: prop})
		rt := env.OMPRuntime()
		var published int64
		exit := make([]int64, n)
		_, err := env.Layer.Run(func(tc exec.TC) {
			rt.Parallel(tc, n, func(wk *omp.Worker) {
				if wk.ThreadNum() == 0 {
					// Warm up past the fork so every teammate is polling.
					wk.TC().Charge(50_000)
					wk.Cancel(omp.CancelParallel)
					published = wk.TC().Now()
					exit[0] = published
					return
				}
				for !wk.CancellationPoint(omp.CancelParallel) {
					wk.TC().Charge(pollGapNS)
				}
				exit[wk.ThreadNum()] = wk.TC().Now()
			})
			rt.Close(tc)
		})
		if err != nil {
			return 0, err
		}
		var last int64
		for _, e := range exit {
			if e > last {
				last = e
			}
		}
		return last - published, nil
	}

	fmt.Fprintln(w, "Ablation: cancellation propagation latency, RTK on 8XEON (us from Cancel to last observer)")
	fmt.Fprintf(w, "%-14s", "propagation")
	for _, n := range scales {
		fmt.Fprintf(w, " %9d", n)
	}
	fmt.Fprintln(w)
	for _, p := range []struct {
		label string
		prop  omp.CancelProp
	}{{"cancel-flat", omp.CancelPropFlat}, {"cancel-tree", omp.CancelPropTree}} {
		fmt.Fprintf(w, "%-14s", p.label)
		for _, n := range scales {
			ns, err := latency(p.prop, n)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %9.2f", float64(ns)/1000)
			opt.Recorder.Add(Record{Figure: "cancel", Construct: p.label,
				Env: "rtk", Cores: n, CancelLatencyNS: ns})
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\n(flat polling serializes every observer on the one cancel word's cache")
	fmt.Fprintln(w, " line; tree propagation copies the bits down the barrier arrival tree,")
	fmt.Fprintln(w, " so each poller misses only on a line shared with its fanout siblings)")
	return nil
}

// cancelFaultCompose: an EP-style loop on a Resilient + cancellable
// team, with a region deadline armed and a CPU-offline fault scheduled
// so the shrink and the deadline cancellation land on the same join.
// The partial result is clean when every chunk that completed was
// counted exactly once and the survivors all converged.
func cancelFaultCompose(w io.Writer, opt Options) error {
	iters := 400
	if opt.Quick {
		iters = 200
	}
	const threads = 8
	const deadlineNS = 800_000 // fires mid-loop at both scales
	type scenario struct {
		label, plan string
		deadline    int64
	}
	scenarios := []scenario{
		{"none", "none", 0},
		{"deadline", "none", deadlineNS},
		{"deadline+off", "cpu-offline@400us:5", deadlineNS},
		{"deadline+storm", "cpu-offline@400us:5;irq-storm@200us:2+1ms", deadlineNS},
	}

	fmt.Fprintf(w, "Fault-composed abort: EP-style loop, %d threads, %d chunks of 50us (Resilient + OMP_CANCELLATION on)\n", threads, iters)
	fmt.Fprintf(w, "%-16s %-40s %10s %9s %9s %10s\n", "scenario", "plan", "chunks", "clean", "alive", "time(ms)")

	for i, sc := range scenarios {
		plan, err := fault.Parse(sc.plan)
		if err != nil {
			return err
		}
		plan.Seed = opt.seed() + int64(i)
		s := sim.New(16, opt.seed())
		layer := exec.NewSimLayer(s, exec.Costs{
			ThreadSpawnNS: 2000, ThreadJoinNS: 300,
			FutexWaitEntryNS: 100, FutexWakeEntryNS: 100,
			FutexWakeLatencyNS: 300, FutexWakeStaggerNS: 30,
			AtomicRMWNS: 20, CacheLineXferNS: 40, MallocNS: 100,
		})
		rt := omp.New(layer, omp.Options{MaxThreads: threads, Bind: true,
			Resilient: true, Cancellation: true, RegionDeadlineNS: sc.deadline})
		eng := fault.New(s, plan)
		eng.Arm(fault.Handlers{CPUOffline: func(cpu int) { rt.OfflineCPU(cpu) }})
		done := 0
		marks := make([]int, iters)
		alive := 0
		elapsed, err := layer.Run(func(tc exec.TC) {
			rt.Parallel(tc, threads, func(wk *omp.Worker) {
				wk.ForEach(0, iters, omp.ForOpt{Sched: omp.Dynamic, Chunk: 2}, func(it int) {
					wk.TC().Charge(50_000)
					wk.Atomic(func() { done++; marks[it]++ })
				})
				alive = wk.NumAlive()
			})
			rt.Close(tc)
		})
		if err != nil {
			return err
		}
		clean := "yes"
		for _, m := range marks {
			if m > 1 {
				clean = "NO (chunk ran twice)"
				break
			}
		}
		cancelled := done < iters
		chunks := fmt.Sprintf("%d/%d", done, iters)
		fmt.Fprintf(w, "%-16s %-40s %10s %9s %5d/%-3d %10.2f\n",
			sc.label, sc.plan, chunks, clean, alive, threads, float64(elapsed)/1e6)
		opt.Recorder.Add(Record{Figure: "cancel", Construct: "fault-compose-" + sc.label,
			Env: "sim", Cores: threads, Seconds: float64(elapsed) / 1e9,
			Cancelled: cancelled, DeadlineNS: sc.deadline})
	}
	fmt.Fprintln(w, "(the deadline alarm publishes the same cancel bit a thread would; the")
	fmt.Fprintln(w, " offlined worker's departure and the cancelled survivors meet at the")
	fmt.Fprintln(w, " region's dedicated join, which completes under either count)")
	return nil
}
