package sim

import (
	"errors"
	"strings"
	"testing"
)

func TestDeadlockDiagnostics(t *testing.T) {
	s := New(2, 1)
	q := NewWaitQueue(s).SetLabel("testq")
	s.Go("parker", 0, 0, func(p *Proc) {
		p.Compute(100)
		p.Park()
	})
	s.Go("queued", 1, 0, func(p *Proc) {
		p.Compute(250)
		q.Wait(p)
	})
	err := s.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("error type %T, want *StallError", err)
	}
	if se.Kind != "deadlock" || len(se.Stalled) != 2 {
		t.Fatalf("kind=%q stalled=%d, want deadlock/2", se.Kind, len(se.Stalled))
	}
	msg := err.Error()
	for _, want := range []string{
		"parker", "blocked on park since t=100ns",
		"queued", "blocked on waitqueue testq since t=250ns",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, msg)
		}
	}
	// Stalls are sorted by proc ID for deterministic output.
	if se.Stalled[0].ID > se.Stalled[1].ID {
		t.Errorf("stalls not sorted by ID: %v", se.Stalled)
	}
	if se.Stalled[0].Since != 100 || se.Stalled[0].Waited != se.Now-100 {
		t.Errorf("stall[0] since=%d waited=%d now=%d", se.Stalled[0].Since, se.Stalled[0].Waited, se.Now)
	}
}

func TestWatchdogFlagsStalledProc(t *testing.T) {
	s := New(2, 1)
	s.SetWatchdog(1000)
	s.Go("stuck", 0, 0, func(p *Proc) {
		p.Compute(10)
		p.ParkReason("lost wake")
	})
	// A live proc keeps the event queue busy well past the deadline.
	s.Go("spinner", 1, 0, func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Compute(100)
		}
	})
	err := s.Run()
	if err == nil {
		t.Fatal("expected watchdog error")
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("error type %T, want *StallError", err)
	}
	if se.Kind != "watchdog" {
		t.Fatalf("kind = %q, want watchdog", se.Kind)
	}
	if len(se.Stalled) != 1 || se.Stalled[0].Name != "stuck" {
		t.Fatalf("stalled = %+v, want just 'stuck'", se.Stalled)
	}
	if se.Stalled[0].Reason != "lost wake" {
		t.Fatalf("reason = %q, want 'lost wake'", se.Stalled[0].Reason)
	}
	if !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("message lacks 'watchdog': %s", err)
	}
}

func TestWatchdogIgnoresSleepers(t *testing.T) {
	s := New(1, 1)
	s.SetWatchdog(100)
	// A long sleep is progress (it has a pending event), not a stall.
	s.Go("sleeper", 0, 0, func(p *Proc) { p.Sleep(10_000) })
	s.Go("ticker", 0, 0, func(p *Proc) {
		for i := 0; i < 200; i++ {
			p.Compute(60)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("watchdog flagged a sleeper: %v", err)
	}
}

func TestKillBlockedProc(t *testing.T) {
	s := New(2, 1)
	q := NewWaitQueue(s)
	ran := false
	victim := s.Go("victim", 0, 0, func(p *Proc) {
		q.Wait(p)
		ran = true // must never run: proc dies while blocked
	})
	s.Go("killer", 1, 0, func(p *Proc) {
		p.Compute(500)
		s.Kill(victim)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("killed proc resumed past its block point")
	}
	if victim.State() != StateDone {
		t.Fatalf("victim state = %v, want done", victim.State())
	}
	if q.Len() != 0 {
		t.Fatal("killed proc left on wait queue")
	}
}

func TestKillRunnableProc(t *testing.T) {
	s := New(1, 1)
	steps := 0
	var victim *Proc
	victim = s.Go("victim", 0, 10, func(p *Proc) {
		for {
			steps++
			p.Compute(100)
		}
	})
	s.At(5, func() { s.Kill(victim) }) // before first dispatch
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if steps != 0 {
		t.Fatalf("victim ran %d steps after pre-start kill", steps)
	}
}

func TestKillMidCompute(t *testing.T) {
	s := New(1, 1)
	steps := 0
	victim := s.Go("victim", 0, 0, func(p *Proc) {
		for {
			p.Compute(100)
			steps++
		}
	})
	s.At(450, func() { s.Kill(victim) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if victim.State() != StateDone {
		t.Fatalf("victim state = %v, want done", victim.State())
	}
	if steps == 0 || steps > 5 {
		t.Fatalf("victim ran %d steps, want a few then death", steps)
	}
	if s.Procs() == nil && len(s.Procs()) != 0 {
		t.Fatal("dead proc still listed")
	}
}

func TestKillIsIdempotent(t *testing.T) {
	s := New(1, 1)
	victim := s.Go("victim", 0, 0, func(p *Proc) { p.Park() })
	s.At(10, func() {
		s.Kill(victim)
		s.Kill(victim) // second kill must be a no-op
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.Kill(victim) // kill after death must be a no-op too
}

func TestProcsAccessor(t *testing.T) {
	s := New(2, 1)
	s.Go("a", 0, 0, func(p *Proc) { p.Compute(100) })
	s.Go("b", 1, 0, func(p *Proc) { p.Compute(100) })
	procs := s.Procs()
	if len(procs) != 2 || procs[0].Name != "a" || procs[1].Name != "b" {
		t.Fatalf("Procs() = %v", procs)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n := len(s.Procs()); n != 0 {
		t.Fatalf("%d procs listed after completion", n)
	}
}

func TestLostWakeRecoveredByRecheck(t *testing.T) {
	s := New(2, 1)
	ft := NewFutexTable(s)
	ft.SetRecheck(1000, 0)
	lose := true
	ft.LoseWake = func() bool {
		l := lose
		lose = false
		return l
	}
	word := uint32(0)
	var wokeAt Time = -1
	s.Go("waiter", 0, 0, func(p *Proc) {
		if !ft.Wait(p, &word, 0, 10) {
			t.Error("expected to block")
		}
		wokeAt = p.Now()
	})
	s.Go("waker", 1, 100, func(p *Proc) {
		word = 1
		ft.Wake(p, &word, 1, 10, 10, 0) // this wake is lost
	})
	if err := s.Run(); err != nil {
		t.Fatalf("lost wake not recovered: %v", err)
	}
	if ft.WakesLost != 1 {
		t.Fatalf("WakesLost = %d, want 1", ft.WakesLost)
	}
	if ft.Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1", ft.Recovered)
	}
	if wokeAt < 1000 {
		t.Fatalf("waiter woke at %d, expected recheck-driven wake >= 1000", wokeAt)
	}
}

func TestRecheckBudgetBoundsRecovery(t *testing.T) {
	s := New(1, 1)
	ft := NewFutexTable(s)
	ft.SetRecheck(100, 3)
	word := uint32(0)
	s.Go("waiter", 0, 0, func(p *Proc) {
		ft.Wait(p, &word, 0, 0) // nobody will ever wake or flip the word
	})
	err := s.Run()
	if err == nil {
		t.Fatal("expected deadlock once recheck budget is exhausted")
	}
	if ft.Rechecks != 3 {
		t.Fatalf("rechecks = %d, want 3 (budget)", ft.Rechecks)
	}
}

func TestFaultFreeRunsUnperturbedByRecheck(t *testing.T) {
	// With rechecks armed but no fault, timings must match the plain run:
	// recheck callbacks observe-and-disarm without touching timelines.
	run := func(arm bool) Time {
		s := New(2, 7)
		ft := NewFutexTable(s)
		if arm {
			ft.SetRecheck(500, 0)
		}
		word := uint32(0)
		s.Go("waiter", 0, 0, func(p *Proc) { ft.Wait(p, &word, 0, 100) })
		s.Go("waker", 1, 300, func(p *Proc) {
			word = 1
			ft.Wake(p, &word, 1, 100, 50, 0)
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Now()
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("recheck arming perturbed a fault-free run: %d vs %d", a, b)
	}
}
