package sim

import (
	"math/rand"
	"testing"
)

func TestSingleProcAdvancesTime(t *testing.T) {
	s := New(1, 1)
	var end Time
	s.Go("p", 0, 0, func(p *Proc) {
		p.Compute(100)
		p.Compute(50)
		end = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 150 {
		t.Fatalf("proc time = %d, want 150", end)
	}
	if s.Now() != 150 {
		t.Fatalf("sim time = %d, want 150", s.Now())
	}
}

func TestParallelProcsOverlap(t *testing.T) {
	s := New(4, 1)
	ends := make([]Time, 4)
	for i := 0; i < 4; i++ {
		i := i
		s.Go("p", i, 0, func(p *Proc) {
			p.Compute(1000)
			ends[i] = p.Now()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, e := range ends {
		if e != 1000 {
			t.Fatalf("proc %d end = %d, want 1000 (parallel execution)", i, e)
		}
	}
	if s.Now() != 1000 {
		t.Fatalf("sim end = %d, want 1000", s.Now())
	}
}

func TestSameCPUContends(t *testing.T) {
	s := New(1, 1)
	ends := make([]Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		s.Go("p", 0, 0, func(p *Proc) {
			p.Compute(1000)
			ends[i] = p.Now()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	got := []Time{ends[0], ends[1]}
	if got[0] > got[1] {
		got[0], got[1] = got[1], got[0]
	}
	if got[0] != 1000 || got[1] != 2000 {
		t.Fatalf("contended ends = %v, want [1000 2000]", got)
	}
}

func TestSleepDoesNotOccupyCPU(t *testing.T) {
	s := New(1, 1)
	var computeEnd Time
	s.Go("sleeper", 0, 0, func(p *Proc) { p.Sleep(1000) })
	s.Go("worker", 0, 0, func(p *Proc) {
		p.Compute(500)
		computeEnd = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if computeEnd != 500 {
		t.Fatalf("worker end = %d, want 500 (sleeper must not hold the CPU)", computeEnd)
	}
}

func TestParkUnpark(t *testing.T) {
	s := New(2, 1)
	var consumer *Proc
	var got Time
	consumer = s.Go("consumer", 0, 0, func(p *Proc) {
		p.Park()
		got = p.Now()
	})
	s.Go("producer", 1, 0, func(p *Proc) {
		p.Compute(700)
		s.Unpark(consumer, p.Now()+42)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 742 {
		t.Fatalf("consumer woke at %d, want 742", got)
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := New(1, 1)
	s.Go("stuck", 0, 0, func(p *Proc) { p.Park() })
	if err := s.Run(); err == nil {
		t.Fatal("expected deadlock error, got nil")
	}
}

func TestWaitQueueFIFO(t *testing.T) {
	s := New(4, 1)
	q := NewWaitQueue(s)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		s.Go("waiter", i, Time(i), func(p *Proc) {
			q.Wait(p)
			order = append(order, i)
		})
	}
	s.Go("waker", 3, 100, func(p *Proc) {
		for q.Len() > 0 {
			q.WakeOne(p.Now(), 10)
			p.Compute(5)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("wake order = %v, want [0 1 2]", order)
	}
}

func TestWakeAllStagger(t *testing.T) {
	s := New(8, 1)
	q := NewWaitQueue(s)
	ends := make([]Time, 4)
	for i := 0; i < 4; i++ {
		i := i
		s.Go("waiter", i, 0, func(p *Proc) {
			q.Wait(p)
			ends[i] = p.Now()
		})
	}
	s.Go("waker", 7, 100, func(p *Proc) {
		if n := q.WakeAll(p.Now(), 10, 3); n != 4 {
			t.Errorf("WakeAll woke %d, want 4", n)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, e := range ends {
		want := Time(110 + 3*i)
		if e != want {
			t.Fatalf("waiter %d woke at %d, want %d", i, e, want)
		}
	}
}

func TestFutexValueCheck(t *testing.T) {
	s := New(2, 1)
	ft := NewFutexTable(s)
	word := uint32(1)
	var blocked bool
	s.Go("w", 0, 0, func(p *Proc) {
		blocked = ft.Wait(p, &word, 7, 25) // value mismatch: no block
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if blocked {
		t.Fatal("futex Wait blocked despite value mismatch")
	}
	if s.Now() != 25 {
		t.Fatalf("entry cost not charged: now=%d want 25", s.Now())
	}
}

func TestFutexWaitWake(t *testing.T) {
	s := New(2, 1)
	ft := NewFutexTable(s)
	word := uint32(0)
	var wakeTime Time
	s.Go("waiter", 0, 0, func(p *Proc) {
		if !ft.Wait(p, &word, 0, 100) {
			t.Error("expected to block")
		}
		wakeTime = p.Now()
	})
	s.Go("waker", 1, 500, func(p *Proc) {
		word = 1
		if n := ft.Wake(p, &word, 1, 100, 50, 0); n != 1 {
			t.Errorf("woke %d, want 1", n)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// waker: starts at 500, entry cost 100 -> wake issued at 600, +50 latency.
	if wakeTime != 650 {
		t.Fatalf("waiter woke at %d, want 650", wakeTime)
	}
	if ft.Waiters(&word) != 0 {
		t.Fatal("queue not cleaned up")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Time {
		s := New(8, 42)
		s.SetNoise(jitterNoise{})
		done := NewWaitQueue(s)
		for i := 0; i < 8; i++ {
			s.Go("p", i, 0, func(p *Proc) {
				for k := 0; k < 50; k++ {
					p.Compute(100)
					p.Yield()
				}
			})
		}
		_ = done
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Now()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}

// jitterNoise adds a pseudo-random stretch to every segment.
type jitterNoise struct{}

func (jitterNoise) Extend(rng *rand.Rand, _ int, start, d Time) Time {
	return start + d + Time(rng.Intn(20))
}

func TestNoiseExtends(t *testing.T) {
	s := New(1, 7)
	s.SetNoise(jitterNoise{})
	var end Time
	s.Go("p", 0, 0, func(p *Proc) {
		p.Compute(1000)
		end = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if end < 1000 || end >= 1020 {
		t.Fatalf("noisy end = %d, want [1000,1020)", end)
	}
}

func TestAtCallback(t *testing.T) {
	s := New(1, 1)
	var fired Time = -1
	s.At(333, func() { fired = s.Now() })
	s.Go("p", 0, 0, func(p *Proc) { p.Compute(1000) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 333 {
		t.Fatalf("callback fired at %d, want 333", fired)
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1, 1)
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		s.After(100, tick)
	}
	s.After(100, tick)
	s.RunUntil(1000)
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	if s.Now() != 1000 {
		t.Fatalf("now = %d, want 1000", s.Now())
	}
}

func TestCPUAccounting(t *testing.T) {
	s := New(2, 1)
	s.Go("a", 0, 0, func(p *Proc) { p.Compute(300) })
	s.Go("b", 0, 0, func(p *Proc) { p.Compute(200) })
	s.Go("c", 1, 0, func(p *Proc) { p.Compute(50) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.CPU(0).BusyNS != 500 || s.CPU(0).Segments != 2 {
		t.Fatalf("cpu0 busy=%d segs=%d, want 500/2", s.CPU(0).BusyNS, s.CPU(0).Segments)
	}
	if s.CPU(1).BusyNS != 50 {
		t.Fatalf("cpu1 busy=%d, want 50", s.CPU(1).BusyNS)
	}
}

func TestWaitQueueRemove(t *testing.T) {
	s := New(2, 1)
	q := NewWaitQueue(s)
	var victim *Proc
	woke := false
	victim = s.Go("victim", 0, 0, func(p *Proc) {
		q.Wait(p)
		woke = true
	})
	s.Go("killer", 1, 10, func(p *Proc) {
		if !q.Remove(victim) {
			t.Error("Remove failed")
		}
		s.Unpark(victim, p.Now())
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !woke {
		t.Fatal("victim never resumed")
	}
	if q.Len() != 0 {
		t.Fatal("queue should be empty")
	}
}

func TestUtilizationReport(t *testing.T) {
	s := New(4, 1)
	s.Go("busy", 0, 0, func(p *Proc) { p.Compute(1000) })
	s.Go("half", 1, 0, func(p *Proc) { p.Compute(500) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	u := s.Utilization()
	if u.ElapsedNS != 1000 {
		t.Fatalf("elapsed = %d", u.ElapsedNS)
	}
	if u.BusyFrac[0] != 1.0 || u.BusyFrac[1] != 0.5 || u.BusyFrac[2] != 0 {
		t.Fatalf("busy = %v", u.BusyFrac)
	}
	if u.Mean != (1.0+0.5)/4 {
		t.Fatalf("mean = %v", u.Mean)
	}
}
