package sim

import (
	"fmt"
	"math/bits"
	"os"
	"strings"
)

// EQAlgo selects the simulator's event-queue algorithm (the KOMP_SIM_EQ
// ICV). The wheel is the default; the binary heap is retained as the
// differential-testing baseline — both produce the exact same event
// firing order (timestamp, then seq), so traces are byte-identical.
type EQAlgo int

// Event-queue algorithms.
const (
	// EQDefault resolves to the KOMP_SIM_EQ environment variable, or the
	// wheel when unset.
	EQDefault EQAlgo = iota
	// EQWheel is the timer-wheel/spill hybrid: near-future events in
	// fixed wheel buckets (one virtual nanosecond per bucket, so a bucket
	// holds exactly one timestamp and FIFO order preserves seq order),
	// far-future events in a sorted spill heap that refills the wheel as
	// the clock advances.
	EQWheel
	// EQHeap is the classic binary min-heap over (at, seq) — O(log n)
	// sift per event, kept as the differential-testing baseline.
	EQHeap
)

func (a EQAlgo) String() string {
	switch a {
	case EQHeap:
		return "heap"
	default:
		return "wheel"
	}
}

// ParseEQAlgo parses a KOMP_SIM_EQ-style string.
func ParseEQAlgo(s string) (EQAlgo, error) {
	switch strings.TrimSpace(strings.ToLower(s)) {
	case "", "wheel":
		return EQWheel, nil
	case "heap":
		return EQHeap, nil
	}
	return 0, fmt.Errorf("sim: unknown event-queue algorithm %q (want wheel or heap)", s)
}

// EQFromEnv resolves the KOMP_SIM_EQ ICV from the host environment
// (wheel when unset). An unparseable value panics: the variable is a
// development knob, and silently falling back would invalidate a
// differential run.
func EQFromEnv() EQAlgo {
	v, ok := os.LookupEnv("KOMP_SIM_EQ")
	if !ok {
		return EQWheel
	}
	a, err := ParseEQAlgo(v)
	if err != nil {
		panic(fmt.Sprintf("sim: KOMP_SIM_EQ=%q: %v", v, err))
	}
	return a
}

// eventNode is one scheduled event. Nodes are intrusive (the next link
// chains both wheel buckets and the per-Sim free list) and recycled on
// fire or cancel, so the steady-state scheduling path allocates nothing.
// gen is bumped on every recycle; a cancel handle captures the node's
// generation and becomes a no-op once the node has been reused.
type eventNode struct {
	at        Time
	seq       uint64 // FIFO tiebreak for equal times
	gen       uint32 // recycle generation (lazy-deletion cancel safety)
	cancelled bool   // discarded on pop without advancing the clock
	proc      *Proc  // proc to resume, or nil if fn-only
	fn        func() // optional callback run on the scheduler goroutine
	next      *eventNode
}

// eventQueue is the priority queue of pending events, ordered by
// (at, seq). Cancelled nodes stay queued (lazy deletion) and are
// recycled by the caller on pop.
type eventQueue interface {
	push(n *eventNode)
	// pop removes and returns the minimum event, or nil when empty.
	pop() *eventNode
	// peekTime reports the minimum pending timestamp.
	peekTime() (Time, bool)
	size() int
}

// --- Binary-heap baseline ---

// heapQueue is the classic binary min-heap, hand-rolled over *eventNode
// so pushes and pops stay free of the container/heap interface boxing.
type heapQueue struct {
	h []*eventNode
}

func eventLess(a, b *eventNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *heapQueue) push(n *eventNode) {
	q.h = append(q.h, n)
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(q.h[i], q.h[parent]) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *heapQueue) pop() *eventNode {
	if len(q.h) == 0 {
		return nil
	}
	min := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h[last] = nil
	q.h = q.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(q.h) && eventLess(q.h[l], q.h[small]) {
			small = l
		}
		if r < len(q.h) && eventLess(q.h[r], q.h[small]) {
			small = r
		}
		if small == i {
			break
		}
		q.h[i], q.h[small] = q.h[small], q.h[i]
		i = small
	}
	return min
}

func (q *heapQueue) peekTime() (Time, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

func (q *heapQueue) size() int { return len(q.h) }

// --- Timer-wheel / spill hybrid ---

// Wheel geometry: one bucket per virtual nanosecond, wheelSize buckets,
// so the wheel covers [cur, cur+wheelSpan). A bucket can only ever hold
// events of a single timestamp (two times with the same ring index
// differ by a multiple of wheelSpan, which cannot both be inside the
// window), so FIFO order within a bucket IS (at, seq) order: seq grows
// monotonically and every insertion appends at the tail.
const (
	wheelBits = 16
	wheelSize = 1 << wheelBits // buckets (and ns of horizon)
	wheelMask = wheelSize - 1
	wheelSpan = Time(wheelSize)
)

// wbucket is a FIFO chain of same-timestamp events.
type wbucket struct {
	head, tail *eventNode
}

// wheelQueue indexes near-future events by timestamp delta in wheel
// buckets and keeps far-future events in a sorted spill heap. A
// three-level bitmap (64-ary) over the buckets finds the next non-empty
// bucket in a handful of word scans, so the simulator's "jump to next
// event" stays O(1)-ish even when the horizon is sparse.
//
// Invariants:
//   - cur is the timestamp of the last popped event (the DES clock as the
//     queue has observed it); every queued event has at >= cur.
//   - every bucket-resident event has at - cur < wheelSpan;
//   - spill events had at - cur >= wheelSpan when last examined; migrate
//     moves them into the wheel as cur advances (order-preserving: the
//     spill pops in (at, seq) order and appends to bucket tails).
type wheelQueue struct {
	cur Time
	n   int // total queued events (buckets + chain + spill)

	// chain is the detached remainder of the bucket currently being
	// served: popping a 1024-waiter same-timestamp release is one bucket
	// drain, and subsequent pops walk the chain with no bitmap search.
	chain *eventNode

	buckets []wbucket
	l0      []uint64 // wheelSize bits
	l1      []uint64 // one bit per l0 word
	l2      uint64   // one bit per l1 word
	spill   spillHeap

	// spilled counts events that took the far-future path (diagnostics
	// for the simcore ablation; deterministic).
	spilled int64
}

func newWheelQueue() *wheelQueue {
	return &wheelQueue{
		buckets: make([]wbucket, wheelSize),
		l0:      make([]uint64, wheelSize/64),
		l1:      make([]uint64, wheelSize/64/64),
	}
}

func (q *wheelQueue) setBit(i int) {
	q.l0[i>>6] |= 1 << uint(i&63)
	q.l1[i>>12] |= 1 << uint((i>>6)&63)
	q.l2 |= 1 << uint(i>>12)
}

func (q *wheelQueue) clearBit(i int) {
	w := i >> 6
	q.l0[w] &^= 1 << uint(i&63)
	if q.l0[w] == 0 {
		q.l1[w>>6] &^= 1 << uint(w&63)
		if q.l1[w>>6] == 0 {
			q.l2 &^= 1 << uint(w>>6)
		}
	}
}

// nextFrom returns the lowest set bucket index >= i, or -1. Shift counts
// of 64 are fine in Go (the result is 0), so the word-boundary cases
// fall out naturally.
func (q *wheelQueue) nextFrom(i int) int {
	w := i >> 6
	if x := q.l0[w] >> uint(i&63); x != 0 {
		return i + bits.TrailingZeros64(x)
	}
	w1 := w >> 6
	if x := q.l1[w1] & (^uint64(0) << uint(w&63+1)); x != 0 {
		w = w1<<6 | bits.TrailingZeros64(x)
		return w<<6 | bits.TrailingZeros64(q.l0[w])
	}
	if x := q.l2 & (^uint64(0) << uint(w1+1)); x != 0 {
		w1 = bits.TrailingZeros64(x)
		w = w1<<6 | bits.TrailingZeros64(q.l1[w1])
		return w<<6 | bits.TrailingZeros64(q.l0[w])
	}
	return -1
}

// nextBucket returns the index of the bucket holding the earliest wheel
// event. The circular scan starts at cur's ring position: ring order
// from there is timestamp order, because the window is at most wheelSpan
// wide. Must only be called when the wheel is non-empty (l2 != 0).
func (q *wheelQueue) nextBucket() int {
	start := int(q.cur) & wheelMask
	if i := q.nextFrom(start); i >= 0 {
		return i
	}
	return q.nextFrom(0)
}

func (q *wheelQueue) bucketInsert(n *eventNode) {
	i := int(n.at) & wheelMask
	b := &q.buckets[i]
	n.next = nil
	if b.head == nil {
		b.head = n
		q.setBit(i)
	} else {
		b.tail.next = n
	}
	b.tail = n
}

// migrate refills the wheel from the spill as the clock advances. The
// spill pops in (at, seq) order, so same-timestamp spill events land in
// their bucket in seq order; and any event scheduled directly into that
// bucket later necessarily carries a larger seq, so FIFO stays correct.
func (q *wheelQueue) migrate() {
	for q.spill.size() > 0 && q.spill.min().at-q.cur < wheelSpan {
		q.bucketInsert(q.spill.pop())
	}
}

func (q *wheelQueue) push(n *eventNode) {
	q.n++
	if n.at-q.cur < wheelSpan {
		q.bucketInsert(n)
		return
	}
	q.spilled++
	q.spill.push(n)
}

func (q *wheelQueue) pop() *eventNode {
	if n := q.chain; n != nil {
		q.chain = n.next
		n.next = nil
		q.n--
		return n
	}
	q.migrate()
	if q.l2 != 0 {
		i := q.nextBucket()
		b := &q.buckets[i]
		n := b.head
		q.chain = n.next
		n.next = nil
		b.head, b.tail = nil, nil
		q.clearBit(i)
		q.cur = n.at
		q.n--
		return n
	}
	if q.spill.size() > 0 {
		n := q.spill.pop()
		q.cur = n.at
		q.n--
		return n
	}
	return nil
}

func (q *wheelQueue) peekTime() (Time, bool) {
	if q.chain != nil {
		return q.chain.at, true
	}
	q.migrate()
	if q.l2 != 0 {
		return q.buckets[q.nextBucket()].head.at, true
	}
	if q.spill.size() > 0 {
		return q.spill.min().at, true
	}
	return 0, false
}

func (q *wheelQueue) size() int { return q.n }

// spillHeap is the far-future overflow level: a plain binary min-heap
// over (at, seq). Only events beyond the wheel horizon pay its O(log n);
// its backing slice is reused across refills, so the steady state
// allocates nothing.
type spillHeap struct {
	h []*eventNode
}

func (s *spillHeap) size() int       { return len(s.h) }
func (s *spillHeap) min() *eventNode { return s.h[0] }

func (s *spillHeap) push(n *eventNode) {
	s.h = append(s.h, n)
	i := len(s.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(s.h[i], s.h[parent]) {
			break
		}
		s.h[i], s.h[parent] = s.h[parent], s.h[i]
		i = parent
	}
}

func (s *spillHeap) pop() *eventNode {
	min := s.h[0]
	last := len(s.h) - 1
	s.h[0] = s.h[last]
	s.h[last] = nil
	s.h = s.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(s.h) && eventLess(s.h[l], s.h[small]) {
			small = l
		}
		if r < len(s.h) && eventLess(s.h[r], s.h[small]) {
			small = r
		}
		if small == i {
			break
		}
		s.h[i], s.h[small] = s.h[small], s.h[i]
		i = small
	}
	return min
}
