// Package sim implements a deterministic discrete-event simulator with
// cooperative simulated threads ("procs"), per-CPU timelines, wait queues,
// and a seeded random source.
//
// The simulator is the substrate for every simulated kernel environment in
// this repository (the Nautilus-analogue and the Linux-analogue). It runs
// exactly one proc at a time, so all state touched from proc code is
// race-free and every run with the same seed is bit-identical.
//
// Time is virtual and measured in nanoseconds (the Time alias). A proc
// advances time only through explicit operations: Compute (occupies its
// CPU), Sleep (does not occupy a CPU), Park/Unpark, and wait queues.
//
// The event queue is a timer-wheel/spill hybrid by default (see
// queue.go); the KOMP_SIM_EQ ICV or NewEQ selects the binary-heap
// baseline for differential testing. Both orders events identically by
// (timestamp, seq), so every trace is byte-identical across algorithms.
// Event nodes are recycled through a per-Sim free list, keeping the
// schedule/fire hot path allocation-free.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
)

// Time is virtual time in nanoseconds.
type Time = int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// NoiseModel extends compute segments with environment-dependent
// interference (OS noise, interrupts, competing activity). Extend returns
// the completion time of a compute burst of duration d that starts at
// time start on the given CPU. Implementations must be deterministic
// given the simulator's seeded RNG.
type NoiseModel interface {
	Extend(rng *rand.Rand, cpu int, start, d Time) Time
}

// NoNoise is the zero-interference noise model.
type NoNoise struct{}

// Extend returns start + d unchanged.
func (NoNoise) Extend(_ *rand.Rand, _ int, start, d Time) Time { return start + d }

// CPU is a simulated hardware thread with its own timeline.
type CPU struct {
	ID     int
	FreeAt Time // time at which the current compute segment ends
	Noise  NoiseModel

	// Accounting.
	BusyNS   Time // virtual ns spent computing (including noise stretch)
	Segments int64
}

// ProcState describes what a proc is currently doing.
type ProcState int

// Proc states.
const (
	StateNew ProcState = iota
	StateRunnable
	StateRunning
	StateBlocked
	StateDone
)

func (s ProcState) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("ProcState(%d)", int(s))
	}
}

// Proc is a simulated thread of execution, backed by a goroutine that runs
// cooperatively under the simulator's control.
type Proc struct {
	ID   int
	Name string

	sim   *Sim
	cpu   int // bound CPU, or -1
	state ProcState
	now   Time // proc-local clock: the virtual time it has reached

	resume chan struct{}

	// Diagnostics: what the proc is blocked on and since when (valid
	// while state == StateBlocked).
	waitReason   string
	blockedSince Time
	// hasEvent marks a proc with a pending wake-up event in the queue
	// (sleepers and scheduled resumes), distinguishing it from a proc
	// blocked with no way forward.
	hasEvent bool
	// killed marks a proc condemned by Kill; it exits at its next
	// scheduling point instead of resuming.
	killed bool
	// wq is the wait queue the proc is currently parked on, if any, so
	// Kill can extract it.
	wq *WaitQueue

	// Data is an arbitrary per-proc slot for the layers above (e.g. the
	// kernel thread object wrapping this proc).
	Data any
}

// CPUID returns the CPU the proc is bound to, or -1 if unbound.
func (p *Proc) CPUID() int { return p.cpu }

// SetCPU rebinds the proc to a CPU (or -1 to unbind). The binding takes
// effect at the proc's next compute segment.
func (p *Proc) SetCPU(cpu int) {
	if cpu >= len(p.sim.cpus) {
		panic(fmt.Sprintf("sim: SetCPU(%d) beyond %d CPUs", cpu, len(p.sim.cpus)))
	}
	p.cpu = cpu
}

// State reports the proc's current state.
func (p *Proc) State() ProcState { return p.state }

// WaitReason describes what a blocked proc is waiting on ("" while
// runnable or running).
func (p *Proc) WaitReason() string { return p.waitReason }

// BlockedSince returns the virtual time at which a blocked proc blocked.
func (p *Proc) BlockedSince() Time { return p.blockedSince }

// Killed reports whether the proc has been condemned by Kill.
func (p *Proc) Killed() bool { return p.killed }

// Now returns the proc's local virtual time.
func (p *Proc) Now() Time { return p.now }

// Sim returns the owning simulator.
func (p *Proc) Sim() *Sim { return p.sim }

// Sim is a deterministic discrete-event simulator.
type Sim struct {
	now    Time
	eq     eventQueue
	algo   EQAlgo
	free   *eventNode // recycled event nodes (alloc-free hot path)
	seq    uint64
	fired  int64 // events popped and acted on (cancelled pops excluded)
	rng    *rand.Rand
	cpus   []*CPU
	nextID int

	yield   chan struct{} // proc -> scheduler: "I have blocked or exited"
	running *Proc
	live    int // procs not yet done
	blocked map[int]*Proc
	procs   map[int]*Proc // all live procs, for diagnostics and Kill

	// watchdogNS is the per-proc progress deadline (0: disabled): a proc
	// blocked with no pending event for longer than this aborts Run with
	// a StallError carrying a full diagnostic dump.
	watchdogNS Time
	wdNext     Time
	// noEvent counts procs blocked with no pending wake-up event — the
	// only procs a watchdog or deadlock report can name. The check scans
	// the blocked set only when this is non-zero (the queue-quiescence
	// fast path) and the conservative earliest block time is old enough
	// to possibly have breached the deadline.
	noEvent int
	// wdEarliest is a lower bound on the earliest blockedSince among
	// no-event blocked procs (never raised on unblock, so it may go
	// stale-low; a full scan refreshes it). Stale-low only costs an
	// unnecessary scan, never a missed stall.
	wdEarliest Time
	// wdScratch is the pooled diagnostic buffer for watchdog scans.
	wdScratch []ProcStall
}

// New creates a simulator with ncpu CPUs and the given RNG seed, using
// the event-queue algorithm named by KOMP_SIM_EQ (wheel by default).
func New(ncpu int, seed int64) *Sim { return NewEQ(ncpu, seed, EQDefault) }

// NewEQ creates a simulator with an explicit event-queue algorithm
// (EQDefault defers to KOMP_SIM_EQ). Both algorithms fire events in the
// exact same order; EQHeap exists as the differential-testing baseline.
func NewEQ(ncpu int, seed int64, algo EQAlgo) *Sim {
	if ncpu < 1 {
		panic("sim: need at least one CPU")
	}
	if algo == EQDefault {
		algo = EQFromEnv()
	}
	s := &Sim{
		algo:       algo,
		rng:        rand.New(rand.NewSource(seed)),
		yield:      make(chan struct{}),
		blocked:    make(map[int]*Proc),
		procs:      make(map[int]*Proc),
		wdEarliest: math.MaxInt64,
	}
	if algo == EQHeap {
		s.eq = &heapQueue{}
	} else {
		s.eq = newWheelQueue()
	}
	for i := 0; i < ncpu; i++ {
		s.cpus = append(s.cpus, &CPU{ID: i, Noise: NoNoise{}})
	}
	return s
}

// EQ reports the event-queue algorithm in use.
func (s *Sim) EQ() EQAlgo { return s.algo }

// EventsFired returns the number of events processed so far (cancelled
// events, which are discarded without advancing the clock, do not
// count). It is the numerator of the simcore ablation's events/sec.
func (s *Sim) EventsFired() int64 { return s.fired }

// EventsSpilled returns how many events took the far-future spill path
// instead of a wheel bucket (always 0 on the heap baseline). Like every
// queue property, it is a pure function of the seed.
func (s *Sim) EventsSpilled() int64 {
	if w, ok := s.eq.(*wheelQueue); ok {
		return w.spilled
	}
	return 0
}

// newNode takes an event node from the free list (or allocates one),
// stamping it with the next seq.
func (s *Sim) newNode(at Time, p *Proc, fn func()) *eventNode {
	n := s.free
	if n != nil {
		s.free = n.next
		n.next = nil
	} else {
		n = &eventNode{}
	}
	s.seq++
	n.at, n.seq, n.proc, n.fn, n.cancelled = at, s.seq, p, fn, false
	return n
}

// freeNode recycles a node. The generation bump invalidates any
// outstanding cancel handle, so a stale cancel after the event fired
// (or after the node was reused) is a safe no-op.
func (s *Sim) freeNode(n *eventNode) {
	n.gen++
	n.proc, n.fn = nil, nil
	n.next = s.free
	s.free = n
}

// Now returns the current global virtual time.
func (s *Sim) Now() Time { return s.now }

// RNG returns the simulator's seeded random source. It must only be used
// from proc code or scheduler callbacks (never concurrently).
func (s *Sim) RNG() *rand.Rand { return s.rng }

// NumCPU returns the number of simulated CPUs.
func (s *Sim) NumCPU() int { return len(s.cpus) }

// CPU returns the CPU with the given id.
func (s *Sim) CPU(id int) *CPU { return s.cpus[id] }

// SetNoise installs a noise model on every CPU.
func (s *Sim) SetNoise(n NoiseModel) {
	for _, c := range s.cpus {
		c.Noise = n
	}
}

func (s *Sim) schedule(at Time, p *Proc, fn func()) {
	if at < s.now {
		at = s.now
	}
	if p != nil {
		p.hasEvent = true
	}
	s.eq.push(s.newNode(at, p, fn))
}

// At schedules fn to run on the scheduler at virtual time at (clamped to
// now). Use it for interrupts, timers, and other asynchronous machinery.
func (s *Sim) At(at Time, fn func()) { s.schedule(at, nil, fn) }

// After schedules fn to run d nanoseconds from now.
func (s *Sim) After(d Time, fn func()) { s.schedule(s.now+d, nil, fn) }

// AfterCancel schedules fn like After and returns a cancel function. A
// cancelled event is discarded on pop without advancing the clock, so an
// armed-but-unneeded timer (e.g. a futex recheck) leaves no trace on
// fault-free timings. Cancellation is lazy (the node stays queued until
// its timestamp) and generation-counted: calling cancel after the event
// fired — even after its node was recycled into a new event — is a
// no-op.
func (s *Sim) AfterCancel(d Time, fn func()) (cancel func()) {
	at := s.now + d
	if at < s.now {
		at = s.now
	}
	n := s.newNode(at, nil, fn)
	s.eq.push(n)
	return s.cancelFunc(n)
}

// cancelFunc returns the lazy-deletion cancel handle for a queued node.
// The captured generation makes a stale handle inert; a live cancel of a
// proc-carrying event also clears the proc's hasEvent flag (and folds it
// into the watchdog's no-event accounting), so the proc is correctly
// reported as having no way forward instead of carrying a stale flag.
func (s *Sim) cancelFunc(n *eventNode) func() {
	gen := n.gen
	return func() {
		if n.gen != gen || n.cancelled {
			return
		}
		n.cancelled = true
		n.fn = nil
		if p := n.proc; p != nil {
			n.proc = nil
			p.hasEvent = false
			if p.state == StateBlocked {
				s.countBlockedNoEvent(p)
			}
		}
	}
}

// countBlockedNoEvent folds a proc that is blocked with no pending event
// into the watchdog fast-path accounting.
func (s *Sim) countBlockedNoEvent(p *Proc) {
	s.noEvent++
	if p.blockedSince < s.wdEarliest {
		s.wdEarliest = p.blockedSince
	}
}

// Go creates a proc bound to the given CPU (-1 for unbound) that starts at
// virtual time max(now, start) and runs fn. It may be called from the
// scheduler (before Run) or from proc code.
func (s *Sim) Go(name string, cpu int, start Time, fn func(p *Proc)) *Proc {
	if cpu >= len(s.cpus) {
		panic(fmt.Sprintf("sim: Go on CPU %d beyond %d CPUs", cpu, len(s.cpus)))
	}
	s.nextID++
	p := &Proc{ID: s.nextID, Name: name, sim: s, cpu: cpu, state: StateNew, resume: make(chan struct{})}
	s.live++
	s.procs[p.ID] = p
	if start < s.now {
		start = s.now
	}
	go func() {
		// The deferred handshake also fires if fn unwinds via
		// runtime.Goexit (e.g. t.Fatal on a proc goroutine, or a proc
		// condemned by Kill), so the scheduler never deadlocks waiting
		// for a vanished proc.
		done := false
		defer func() {
			if r := recover(); r != nil {
				panic(r)
			}
			if !done {
				p.state = StateDone
				s.live--
				s.yield <- struct{}{}
			}
		}()
		<-p.resume // wait for first dispatch
		if !p.killed {
			fn(p)
		}
		p.state = StateDone
		s.live--
		done = true
		s.yield <- struct{}{}
	}()
	p.state = StateRunnable
	s.schedule(start, p, nil)
	return p
}

// dispatch resumes proc p and waits until it blocks or exits.
func (s *Sim) dispatch(p *Proc) {
	if p.state == StateDone {
		return
	}
	p.state = StateRunning
	p.waitReason = ""
	if p.now < s.now {
		p.now = s.now
	}
	prev := s.running
	s.running = p
	p.resume <- struct{}{}
	<-s.yield
	s.running = prev
	if p.state == StateDone {
		delete(s.procs, p.ID)
		delete(s.blocked, p.ID)
	}
}

// Run processes events until none remain. It returns an error if live
// procs remain blocked with an empty event queue (deadlock), or — when a
// watchdog is set — if a proc misses its progress deadline (stall).
func (s *Sim) Run() error {
	for {
		n := s.eq.pop()
		if n == nil {
			break
		}
		if n.cancelled {
			s.freeNode(n)
			continue
		}
		s.now = n.at
		s.fired++
		if s.watchdogNS > 0 && s.now >= s.wdNext {
			if err := s.watchdogCheck(); err != nil {
				s.freeNode(n)
				return err
			}
		}
		fn, p := n.fn, n.proc
		s.freeNode(n)
		if fn != nil {
			fn()
			continue
		}
		if p != nil {
			delete(s.blocked, p.ID)
			p.hasEvent = false
			s.dispatch(p)
		}
	}
	if s.live > 0 {
		return s.deadlockError()
	}
	return nil
}

// RunUntil processes events with time ≤ t, then returns. The clock is
// advanced to t.
func (s *Sim) RunUntil(t Time) {
	for {
		at, ok := s.eq.peekTime()
		if !ok || at > t {
			break
		}
		n := s.eq.pop()
		if n.cancelled {
			s.freeNode(n)
			continue
		}
		s.now = n.at
		s.fired++
		fn, p := n.fn, n.proc
		s.freeNode(n)
		if fn != nil {
			fn()
			continue
		}
		if p != nil {
			delete(s.blocked, p.ID)
			p.hasEvent = false
			s.dispatch(p)
		}
	}
	if s.now < t {
		s.now = t
	}
}

// SetWatchdog arms a per-proc progress deadline: if any proc stays
// blocked (with no pending wake-up event) for longer than limit of
// virtual time while the simulation is otherwise advancing, Run aborts
// with a StallError naming every stalled proc, its wait reason, and how
// long it has been stuck. Zero disables the watchdog.
func (s *Sim) SetWatchdog(limit Time) {
	s.watchdogNS = limit
	s.wdNext = s.now + limit
}

func (s *Sim) watchdogCheck() error {
	// Re-check one quarter-deadline later: granular enough to catch a
	// stall promptly, coarse enough to stay off the hot path.
	step := s.watchdogNS / 4
	if step < 1 {
		step = 1
	}
	// Fast path: scan the blocked set only when some proc is truly
	// quiescent (blocked with no pending event) AND the conservative
	// earliest block time is old enough that the deadline could have
	// been breached. Runs with every proc reachable from the queue —
	// the common case — never pay the O(nprocs) sweep.
	if s.noEvent == 0 || s.now-s.wdEarliest <= s.watchdogNS {
		s.wdNext = s.now + step
		return nil
	}
	s.wdScratch = s.wdScratch[:0]
	earliest := Time(math.MaxInt64)
	for _, p := range s.blocked {
		if p.hasEvent || p.state != StateBlocked {
			continue
		}
		if p.blockedSince < earliest {
			earliest = p.blockedSince
		}
		if s.now-p.blockedSince > s.watchdogNS {
			s.wdScratch = append(s.wdScratch, p.stall(s.now))
		}
	}
	s.wdEarliest = earliest
	if len(s.wdScratch) > 0 {
		stalled := make([]ProcStall, len(s.wdScratch))
		copy(stalled, s.wdScratch)
		sortStalls(stalled)
		return &StallError{Kind: "watchdog", Now: s.now, Limit: s.watchdogNS, Stalled: stalled}
	}
	s.wdNext = s.now + step
	return nil
}

// ProcStall describes one blocked proc in a stall or deadlock report.
type ProcStall struct {
	Name   string
	ID     int
	CPU    int
	Reason string // what it is blocked on
	Since  Time   // virtual time at which it blocked
	Waited Time   // how long it has been blocked
}

func (p *Proc) stall(now Time) ProcStall {
	reason := p.waitReason
	if reason == "" {
		reason = "unknown"
	}
	return ProcStall{Name: p.Name, ID: p.ID, CPU: p.cpu, Reason: reason,
		Since: p.blockedSince, Waited: now - p.blockedSince}
}

func sortStalls(st []ProcStall) {
	sort.Slice(st, func(i, j int) bool { return st[i].ID < st[j].ID })
}

// StallError reports procs blocked forever (deadlock) or beyond the
// watchdog deadline (stall), with a per-proc diagnostic dump.
type StallError struct {
	Kind    string // "deadlock" or "watchdog"
	Now     Time
	Limit   Time // watchdog deadline (0 for deadlock)
	Stalled []ProcStall
}

func (e *StallError) Error() string {
	var b strings.Builder
	if e.Kind == "watchdog" {
		fmt.Fprintf(&b, "sim: watchdog: %d proc(s) exceeded the %dns progress deadline at t=%dns:",
			len(e.Stalled), e.Limit, e.Now)
	} else {
		fmt.Fprintf(&b, "sim: deadlock: %d proc(s) blocked forever at t=%dns:", len(e.Stalled), e.Now)
	}
	for _, st := range e.Stalled {
		fmt.Fprintf(&b, "\n  %s(#%d) cpu=%d blocked on %s since t=%dns (%dns ago)",
			st.Name, st.ID, st.CPU, st.Reason, st.Since, st.Waited)
	}
	return b.String()
}

func (s *Sim) deadlockError() error {
	var stalled []ProcStall
	for _, p := range s.blocked {
		stalled = append(stalled, p.stall(s.now))
	}
	sortStalls(stalled)
	return &StallError{Kind: "deadlock", Now: s.now, Stalled: stalled}
}

// Procs returns the live (not yet done) procs, sorted by ID. It is meant
// for diagnostics and fault injection (e.g. crashing a kernel
// compartment kills every proc on its CPUs).
func (s *Sim) Procs() []*Proc {
	out := make([]*Proc, 0, len(s.procs))
	for _, p := range s.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Kill condemns a proc: instead of resuming at its next scheduling
// point, it exits. A blocked proc is extracted from its wait queue and
// scheduled to die now; a runnable proc dies at dispatch. Kill models
// hard faults (a crashed kernel compartment, a failed CPU) — the victim
// gets no chance to clean up, exactly like real hardware.
func (s *Sim) Kill(p *Proc) {
	if p == nil || p.state == StateDone || p.killed {
		return
	}
	p.killed = true
	if p.state == StateBlocked && !p.hasEvent {
		if p.wq != nil {
			p.wq.Remove(p)
		}
		s.Unpark(p, s.now)
	}
}

// --- Proc operations (must be called from the proc's own goroutine) ---

func (p *Proc) mustBeRunning() {
	if p.sim.running != p {
		panic(fmt.Sprintf("sim: proc %s(#%d) operated on while not running", p.Name, p.ID))
	}
}

// block parks the proc until the scheduler dispatches it again,
// recording what it is waiting on for stall/deadlock diagnostics. A proc
// condemned by Kill exits here instead of resuming; the deferred
// handshake in Go completes the bookkeeping.
func (p *Proc) block(reason string) {
	p.state = StateBlocked
	p.waitReason = reason
	p.blockedSince = p.now
	p.sim.blocked[p.ID] = p
	if !p.hasEvent {
		p.sim.countBlockedNoEvent(p)
	}
	p.sim.yield <- struct{}{}
	<-p.resume
	if p.killed {
		runtime.Goexit()
	}
}

// Compute advances the proc by d nanoseconds of work on its bound CPU,
// respecting CPU contention (non-preemptive FIFO) and the CPU's noise
// model. Unbound procs advance without contention or noise.
func (p *Proc) Compute(d Time) {
	p.mustBeRunning()
	if d < 0 {
		panic("sim: negative compute duration")
	}
	s := p.sim
	if p.cpu < 0 {
		p.sleepUntil(p.now + d)
		return
	}
	c := s.cpus[p.cpu]
	start := p.now
	if c.FreeAt > start {
		start = c.FreeAt
	}
	end := c.Noise.Extend(s.rng, c.ID, start, d)
	if end < start+d {
		panic("sim: noise model shortened compute")
	}
	c.FreeAt = end
	c.BusyNS += end - start
	c.Segments++
	p.sleepUntil(end)
}

// Sleep advances the proc by d nanoseconds without occupying its CPU.
func (p *Proc) Sleep(d Time) {
	p.mustBeRunning()
	if d < 0 {
		panic("sim: negative sleep duration")
	}
	p.sleepUntil(p.now + d)
}

func (p *Proc) sleepUntil(t Time) {
	if t <= p.now && t <= p.sim.now {
		// Zero-length: still yield through the queue so same-time events
		// interleave fairly and deterministically.
		t = p.sim.now
	}
	p.sim.schedule(t, p, nil)
	p.block("sleep")
}

// Yield reschedules the proc at the current time, letting same-time events
// run first.
func (p *Proc) Yield() {
	p.mustBeRunning()
	p.sleepUntil(p.now)
}

// Park blocks the proc until another proc (or a scheduler callback) calls
// Unpark on it.
func (p *Proc) Park() {
	p.mustBeRunning()
	p.block("park")
}

// ParkReason is Park with an explicit wait reason for diagnostics (e.g.
// "futex 0xc0000140a0" or "mpi recv tag=3"). The reason appears in
// watchdog and deadlock reports.
func (p *Proc) ParkReason(reason string) {
	p.mustBeRunning()
	p.block(reason)
}

// Unpark makes a parked proc runnable at virtual time at (clamped to now).
// It may be called from any proc or scheduler callback, but not for a proc
// that is runnable or running.
func (s *Sim) Unpark(p *Proc, at Time) {
	if p.state != StateBlocked {
		panic(fmt.Sprintf("sim: Unpark of %s proc %s(#%d)", p.state, p.Name, p.ID))
	}
	if at < s.now {
		at = s.now
	}
	if !p.hasEvent {
		// The proc leaves the quiescent-blocked set (wdEarliest may go
		// stale-low; the next full scan refreshes it).
		s.noEvent--
	}
	p.state = StateRunnable
	s.schedule(at, p, nil)
}

// Utilization summarizes CPU busy fractions over the elapsed time.
type Utilization struct {
	ElapsedNS Time
	// BusyFrac[c] is CPU c's busy fraction of the elapsed time.
	BusyFrac []float64
	// Mean is the average busy fraction.
	Mean float64
}

// Utilization reports per-CPU busy fractions since time 0.
func (s *Sim) Utilization() Utilization {
	u := Utilization{ElapsedNS: s.now, BusyFrac: make([]float64, len(s.cpus))}
	if s.now == 0 {
		return u
	}
	var sum float64
	for i, c := range s.cpus {
		u.BusyFrac[i] = float64(c.BusyNS) / float64(s.now)
		sum += u.BusyFrac[i]
	}
	u.Mean = sum / float64(len(s.cpus))
	return u
}

// --- Wait queues ---

// WaitQueue is a FIFO queue of blocked procs.
type WaitQueue struct {
	sim    *Sim
	label  string
	reason string // "waitqueue <label>", precomputed so Wait never allocates
	procs  []*Proc
}

// NewWaitQueue creates a wait queue on s.
func NewWaitQueue(s *Sim) *WaitQueue { return &WaitQueue{sim: s} }

// SetLabel names the queue for stall/deadlock diagnostics: procs blocked
// on it report "waitqueue <label>" as their wait reason.
func (q *WaitQueue) SetLabel(label string) *WaitQueue {
	q.label = label
	q.reason = "waitqueue " + label
	return q
}

// Len returns the number of waiting procs.
func (q *WaitQueue) Len() int { return len(q.procs) }

// Wait blocks the calling proc on the queue.
func (q *WaitQueue) Wait(p *Proc) {
	p.mustBeRunning()
	q.procs = append(q.procs, p)
	p.wq = q
	reason := q.reason
	if reason == "" {
		reason = "waitqueue"
	}
	p.block(reason)
}

// WakeOne wakes the oldest waiter at time at, with an extra delay latency
// added to model the wake path cost on the waiter's side. It returns the
// woken proc, or nil if the queue was empty.
func (q *WaitQueue) WakeOne(at, latency Time) *Proc {
	if len(q.procs) == 0 {
		return nil
	}
	p := q.procs[0]
	copy(q.procs, q.procs[1:])
	q.procs[len(q.procs)-1] = nil
	q.procs = q.procs[:len(q.procs)-1]
	p.wq = nil
	q.sim.Unpark(p, at+latency)
	return p
}

// WakeAll wakes every waiter. Each waiter i resumes at at+latency+i*stagger,
// modeling serialized wake-up paths. It returns the number woken.
func (q *WaitQueue) WakeAll(at, latency, stagger Time) int {
	n := len(q.procs)
	for i, p := range q.procs {
		p.wq = nil
		q.sim.Unpark(p, at+latency+Time(i)*stagger)
		q.procs[i] = nil
	}
	q.procs = q.procs[:0]
	return n
}

// Remove removes a specific proc from the queue without waking it. It
// reports whether the proc was present.
func (q *WaitQueue) Remove(p *Proc) bool {
	for i, w := range q.procs {
		if w == p {
			q.procs = append(q.procs[:i], q.procs[i+1:]...)
			p.wq = nil
			return true
		}
	}
	return false
}
