package sim

// FutexTable implements futex-style wait/wake keyed on word addresses.
// It is the primitive beneath the simulated pthread and OpenMP layers,
// mirroring how libomp on Linux ultimately blocks in futex(2).
//
// For fault injection the table supports two knobs:
//
//   - LoseWake: a deterministic predicate consulted once per would-be
//     woken waiter. When it returns true the wake-up is silently dropped
//     (the waiter stays parked), modeling a lost futex wake — the classic
//     missed-wakeup kernel bug class.
//   - Timed rechecks (SetRecheck): a waiter re-examines its word every
//     RecheckNS of virtual time and self-wakes if the value moved on
//     without it, which is exactly how futex timeouts paper over lost
//     wakes in production runtimes. The recheck budget bounds recovery
//     attempts so a genuine deadlock still terminates detection.
type FutexTable struct {
	sim    *Sim
	queues map[*uint32]*WaitQueue

	// free recycles emptied wait queues: a futex sleep/wake cycle on the
	// OpenMP fork/barrier fast path must not allocate, so Wake parks the
	// drained queue here instead of dropping it (keeping the map entry
	// itself would pin dead words forever; the free list pins nothing).
	free []*WaitQueue

	// LoseWake, if set, is asked before each individual wake delivery;
	// returning true drops that wake. It must be deterministic (driven by
	// the fault engine's seeded RNG).
	LoseWake func() bool

	// recheckNS is the timed-recheck period (0: no rechecks); budget caps
	// the number of rechecks a single Wait may arm.
	recheckNS     Time
	recheckBudget int

	// Stats.
	WakesLost int64 // wakes dropped by LoseWake
	Rechecks  int64 // timed rechecks that fired
	Recovered int64 // waiters recovered by a recheck (value had moved)
}

// DefaultRecheckBudget bounds timed rechecks per Wait so that a genuinely
// dead proc stops re-arming and the deadlock detector can fire.
const DefaultRecheckBudget = 64

// NewFutexTable creates a futex table on s.
func NewFutexTable(s *Sim) *FutexTable {
	return &FutexTable{sim: s, queues: make(map[*uint32]*WaitQueue)}
}

// SetRecheck arms timed rechecks: every period ns of virtual time a
// blocked waiter re-reads its word and self-wakes if the value changed.
// budget caps rechecks per Wait call (<= 0 selects DefaultRecheckBudget).
func (t *FutexTable) SetRecheck(period Time, budget int) {
	if budget <= 0 {
		budget = DefaultRecheckBudget
	}
	t.recheckNS = period
	t.recheckBudget = budget
}

// Wait blocks p on addr if *addr still equals val, after charging entryCost
// (the syscall/trap path) to p's timeline. It returns true if the proc
// blocked (and has since been woken), false if the value check failed
// (EAGAIN in Linux terms).
func (t *FutexTable) Wait(p *Proc, addr *uint32, val uint32, entryCost Time) bool {
	if entryCost > 0 {
		p.Compute(entryCost)
	}
	if *addr != val {
		return false
	}
	q := t.queues[addr]
	if q == nil {
		if n := len(t.free); n > 0 {
			q, t.free[n-1], t.free = t.free[n-1], nil, t.free[:n-1]
		} else {
			q = NewWaitQueue(t.sim).SetLabel("futex")
		}
		t.queues[addr] = q
	}
	if t.recheckNS > 0 {
		st := &recheckState{}
		t.armRecheck(p, q, addr, val, 1, st)
		// Disarm the pending recheck once the waiter resumes (or dies via
		// Kill — the defer runs under runtime.Goexit too), so fault-free
		// runs carry no leftover timer events.
		defer func() {
			if st.cancel != nil {
				st.cancel()
			}
		}()
	}
	q.Wait(p)
	return true
}

// recheckState carries the cancel handle of the currently armed recheck
// in a chain, so the waiter can disarm it on wake-up.
type recheckState struct{ cancel func() }

// armRecheck schedules the n-th timed recheck for p blocked on addr. If
// the recheck fires while p is still parked on q and the word has moved,
// p is extracted and woken (self-recovery from a lost wake). If the word
// is unchanged, the next recheck is armed until the budget runs out.
func (t *FutexTable) armRecheck(p *Proc, q *WaitQueue, addr *uint32, val uint32, n int, st *recheckState) {
	st.cancel = t.sim.AfterCancel(t.recheckNS, func() {
		st.cancel = nil
		if p.state != StateBlocked || p.wq != q {
			return // woken (or moved on) in the meantime
		}
		t.Rechecks++
		if *addr != val {
			q.Remove(p)
			if q.Len() == 0 && t.queues[addr] == q {
				t.retire(addr, q)
			}
			t.Recovered++
			t.sim.Unpark(p, t.sim.now)
			return
		}
		if n < t.recheckBudget {
			t.armRecheck(p, q, addr, val, n+1, st)
		}
	})
}

// Wake wakes up to n waiters on addr, charging entryCost to the caller and
// delivering wakeLatency (plus a per-waiter stagger) to each waiter. It
// returns the number of procs woken. Wakes may be dropped by the LoseWake
// fault hook; dropped wakes count against n (as in a real lost wake, the
// waker believes it delivered them).
func (t *FutexTable) Wake(p *Proc, addr *uint32, n int, entryCost, wakeLatency, stagger Time) int {
	if entryCost > 0 {
		p.Compute(entryCost)
	}
	q := t.queues[addr]
	if q == nil || q.Len() == 0 {
		return 0
	}
	if n < 0 || n > q.Len() {
		n = q.Len()
	}
	woken := 0
	at := p.Now()
	for i := 0; i < n; i++ {
		if t.LoseWake != nil && t.LoseWake() {
			t.WakesLost++
			continue
		}
		if q.WakeOne(at+Time(i)*stagger, wakeLatency) == nil {
			break
		}
		woken++
	}
	if q.Len() == 0 {
		t.retire(addr, q)
	}
	return woken
}

// retire drops an emptied queue's map entry and recycles the queue
// object for the next Wait on any address.
func (t *FutexTable) retire(addr *uint32, q *WaitQueue) {
	delete(t.queues, addr)
	t.free = append(t.free, q)
}

// Waiters returns the number of procs currently blocked on addr.
func (t *FutexTable) Waiters(addr *uint32) int {
	if q := t.queues[addr]; q != nil {
		return q.Len()
	}
	return 0
}
