package sim

// FutexTable implements futex-style wait/wake keyed on word addresses.
// It is the primitive beneath the simulated pthread and OpenMP layers,
// mirroring how libomp on Linux ultimately blocks in futex(2).
type FutexTable struct {
	sim    *Sim
	queues map[*uint32]*WaitQueue
}

// NewFutexTable creates a futex table on s.
func NewFutexTable(s *Sim) *FutexTable {
	return &FutexTable{sim: s, queues: make(map[*uint32]*WaitQueue)}
}

// Wait blocks p on addr if *addr still equals val, after charging entryCost
// (the syscall/trap path) to p's timeline. It returns true if the proc
// blocked (and has since been woken), false if the value check failed
// (EAGAIN in Linux terms).
func (t *FutexTable) Wait(p *Proc, addr *uint32, val uint32, entryCost Time) bool {
	if entryCost > 0 {
		p.Compute(entryCost)
	}
	if *addr != val {
		return false
	}
	q := t.queues[addr]
	if q == nil {
		q = NewWaitQueue(t.sim)
		t.queues[addr] = q
	}
	q.Wait(p)
	return true
}

// Wake wakes up to n waiters on addr, charging entryCost to the caller and
// delivering wakeLatency (plus a per-waiter stagger) to each waiter. It
// returns the number of procs woken.
func (t *FutexTable) Wake(p *Proc, addr *uint32, n int, entryCost, wakeLatency, stagger Time) int {
	if entryCost > 0 {
		p.Compute(entryCost)
	}
	q := t.queues[addr]
	if q == nil || q.Len() == 0 {
		return 0
	}
	if n < 0 || n > q.Len() {
		n = q.Len()
	}
	woken := 0
	at := p.Now()
	for i := 0; i < n; i++ {
		if q.WakeOne(at+Time(i)*stagger, wakeLatency) == nil {
			break
		}
		woken++
	}
	if q.Len() == 0 {
		delete(t.queues, addr)
	}
	return woken
}

// Waiters returns the number of procs currently blocked on addr.
func (t *FutexTable) Waiters(addr *uint32) int {
	if q := t.queues[addr]; q != nil {
		return q.Len()
	}
	return 0
}
