package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestParseEQAlgo(t *testing.T) {
	cases := []struct {
		in   string
		want EQAlgo
		err  bool
	}{
		{"", EQWheel, false},
		{"wheel", EQWheel, false},
		{"WHEEL", EQWheel, false},
		{" heap ", EQHeap, false},
		{"calendar", 0, true},
	}
	for _, c := range cases {
		got, err := ParseEQAlgo(c.in)
		if (err != nil) != c.err || (err == nil && got != c.want) {
			t.Errorf("ParseEQAlgo(%q) = %v, %v; want %v, err=%v", c.in, got, err, c.want, c.err)
		}
	}
	if EQWheel.String() != "wheel" || EQHeap.String() != "heap" || EQDefault.String() != "wheel" {
		t.Errorf("String(): wheel=%s heap=%s default=%s", EQWheel, EQHeap, EQDefault)
	}
}

func TestEQFromEnv(t *testing.T) {
	t.Setenv("KOMP_SIM_EQ", "heap")
	if got := EQFromEnv(); got != EQHeap {
		t.Fatalf("KOMP_SIM_EQ=heap resolved to %v", got)
	}
	t.Setenv("KOMP_SIM_EQ", "wheel")
	if got := EQFromEnv(); got != EQWheel {
		t.Fatalf("KOMP_SIM_EQ=wheel resolved to %v", got)
	}
	t.Setenv("KOMP_SIM_EQ", "bogus")
	defer func() {
		if recover() == nil {
			t.Fatal("KOMP_SIM_EQ=bogus must panic")
		}
	}()
	EQFromEnv()
}

// TestQueueDifferentialFuzz drives the wheel and the heap baseline with
// the same randomized push/pop stream (timestamps spanning same-time
// storms, the wheel window, and far-beyond-horizon spills) and demands
// identical (at, seq) pop order — the determinism property that makes
// the trace byte-identity guarantee hold by construction.
func TestQueueDifferentialFuzz(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		wheel := newWheelQueue()
		heap := &heapQueue{}
		var cur Time // queue invariant: pushes never precede the last pop
		var seq uint64
		for op := 0; op < 20_000; op++ {
			if rng.Intn(3) != 0 || heap.size() == 0 {
				var d Time
				switch rng.Intn(4) {
				case 0:
					d = Time(rng.Intn(4)) // same-timestamp storm
				case 1:
					d = Time(rng.Intn(int(wheelSpan))) // in-window
				case 2:
					d = wheelSpan + Time(rng.Intn(1_000_000)) // spill
				default:
					d = Time(rng.Intn(20_000_000)) // anywhere
				}
				seq++
				wheel.push(&eventNode{at: cur + d, seq: seq})
				heap.push(&eventNode{at: cur + d, seq: seq})
				continue
			}
			hw, hh := wheel.pop(), heap.pop()
			if hw.at != hh.at || hw.seq != hh.seq {
				t.Fatalf("seed %d op %d: wheel popped (%d,%d), heap (%d,%d)",
					seed, op, hw.at, hw.seq, hh.at, hh.seq)
			}
			cur = hw.at
			pw, okw := wheel.peekTime()
			ph, okh := heap.peekTime()
			if okw != okh || pw != ph {
				t.Fatalf("seed %d op %d: peek wheel (%d,%v) heap (%d,%v)",
					seed, op, pw, okw, ph, okh)
			}
			if wheel.size() != heap.size() {
				t.Fatalf("seed %d op %d: size wheel %d heap %d",
					seed, op, wheel.size(), heap.size())
			}
		}
		for {
			hw, hh := wheel.pop(), heap.pop()
			if hw == nil || hh == nil {
				if hw != hh {
					t.Fatalf("seed %d: drain length mismatch", seed)
				}
				break
			}
			if hw.at != hh.at || hw.seq != hh.seq {
				t.Fatalf("seed %d drain: wheel (%d,%d) heap (%d,%d)",
					seed, hw.at, hw.seq, hh.at, hh.seq)
			}
		}
	}
}

type fireRec struct {
	at  Time
	tag int
}

// buildFuzzWorkload schedules a randomized mix of callbacks (same-time
// storms, in-window, far-future spills, self-rescheduling chains),
// cancellable alarms (cancelled before firing, after firing, and twice),
// and procs exercising Compute/Sleep/Yield and Park/Unpark. Everything
// is derived from the given rng seed, so two sims given the same seed
// receive the identical workload.
func buildFuzzWorkload(s *Sim, seed int64, trace *[]fireRec) {
	rng := rand.New(rand.NewSource(seed))
	rec := func(tag int) { *trace = append(*trace, fireRec{s.Now(), tag}) }

	for i := 0; i < 300; i++ {
		tag := i
		var at Time
		switch rng.Intn(4) {
		case 0:
			at = Time(rng.Intn(64))
		case 1:
			at = Time(rng.Intn(int(wheelSpan)))
		case 2:
			at = wheelSpan + Time(rng.Intn(2_000_000))
		default:
			at = Time(rng.Intn(10_000_000))
		}
		if rng.Intn(3) == 0 {
			hops := rng.Intn(3) + 1
			step := Time(rng.Intn(200_000) + 1)
			var chain func()
			chain = func() {
				rec(tag)
				if hops > 0 {
					hops--
					s.After(step, chain)
				}
			}
			s.At(at, chain)
			continue
		}
		s.At(at, func() { rec(tag) })
	}

	// Alarms: half cancelled immediately, some cancelled from a later
	// callback (often after the alarm already fired — the stale-handle
	// path), some cancelled twice.
	for i := 0; i < 120; i++ {
		tag := 1000 + i
		d := Time(rng.Intn(3_000_000))
		cancel := s.AfterCancel(d, func() { rec(tag) })
		switch rng.Intn(4) {
		case 0:
			cancel()
		case 1:
			cancel()
			cancel()
		case 2:
			s.At(Time(rng.Intn(3_000_000)), cancel)
		}
	}

	// Procs: bound compute/sleep/yield workers plus park/unpark pairs.
	for i := 0; i < 6; i++ {
		tag := 2000 + i
		cpu := rng.Intn(s.NumCPU())
		start := Time(rng.Intn(5000))
		steps := rng.Intn(5) + 2
		kinds := make([]int, steps)
		durs := make([]Time, steps)
		for j := range kinds {
			kinds[j] = rng.Intn(3)
			durs[j] = Time(rng.Intn(80_000) + 1)
		}
		s.Go(fmt.Sprintf("w%d", i), cpu, start, func(p *Proc) {
			for j := 0; j < steps; j++ {
				switch kinds[j] {
				case 0:
					p.Compute(durs[j])
				case 1:
					p.Sleep(durs[j])
				default:
					p.Yield()
				}
				rec(tag)
			}
		})
	}
	for i := 0; i < 3; i++ {
		tag := 3000 + i
		cpu := rng.Intn(s.NumCPU())
		wake := Time(rng.Intn(8_000_000) + 1)
		sleeper := s.Go(fmt.Sprintf("p%d", i), cpu, 0, func(p *Proc) {
			p.Park()
			rec(tag)
			p.Compute(100)
		})
		s.At(wake, func() { s.Unpark(sleeper, s.Now()) })
	}
}

// TestSimDifferentialFuzz runs the full randomized workload on a
// wheel-backed and a heap-backed simulator and requires the event-firing
// traces — (virtual time, tag) for every callback and proc step — to be
// identical, along with the fired-event totals and final clocks.
func TestSimDifferentialFuzz(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		var traces [2][]fireRec
		var fired [2]int64
		var final [2]Time
		for i, algo := range []EQAlgo{EQWheel, EQHeap} {
			s := NewEQ(8, 42, algo)
			buildFuzzWorkload(s, seed, &traces[i])
			if err := s.Run(); err != nil {
				t.Fatalf("seed %d %s: Run: %v", seed, algo, err)
			}
			fired[i] = s.EventsFired()
			final[i] = s.Now()
		}
		if len(traces[0]) != len(traces[1]) {
			t.Fatalf("seed %d: trace lengths wheel=%d heap=%d",
				seed, len(traces[0]), len(traces[1]))
		}
		for j := range traces[0] {
			if traces[0][j] != traces[1][j] {
				t.Fatalf("seed %d: trace[%d] wheel=%+v heap=%+v",
					seed, j, traces[0][j], traces[1][j])
			}
		}
		if fired[0] != fired[1] || final[0] != final[1] {
			t.Fatalf("seed %d: fired wheel=%d heap=%d, final wheel=%d heap=%d",
				seed, fired[0], fired[1], final[0], final[1])
		}
	}
}

// TestWheelSpillPath pins that far-future events actually take the spill
// level and still fire in order (the rollover/refill machinery is
// exercised, not bypassed).
func TestWheelSpillPath(t *testing.T) {
	s := NewEQ(1, 1, EQWheel)
	var got []Time
	for _, d := range []Time{wheelSpan * 3, 5, wheelSpan + 1, wheelSpan * 2, 50} {
		at := d
		s.At(at, func() { got = append(got, at) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{5, 50, wheelSpan + 1, wheelSpan * 2, wheelSpan * 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
	if s.EventsSpilled() != 3 {
		t.Fatalf("EventsSpilled = %d, want 3", s.EventsSpilled())
	}
}

// TestAfterCancelGeneration pins the lazy-deletion generation counter: a
// cancel handle invoked after its event fired — even after the node has
// been recycled into new events — must not disturb them, and cancelling
// twice is inert.
func TestAfterCancelGeneration(t *testing.T) {
	for _, algo := range []EQAlgo{EQWheel, EQHeap} {
		s := NewEQ(1, 1, algo)
		firedA, firedB, firedC := 0, 0, 0
		cancel := s.AfterCancel(10, func() { firedA++ })
		s.At(20, func() {
			// The alarm's node is back on the free list; these two
			// events recycle it (and this event's own node).
			s.After(10, func() { firedB++ })
			s.After(20, func() { firedC++ })
			cancel() // stale: must not cancel the recycled nodes
			cancel()
		})
		if err := s.Run(); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if firedA != 1 || firedB != 1 || firedC != 1 {
			t.Fatalf("%s: fired A=%d B=%d C=%d, want 1/1/1", algo, firedA, firedB, firedC)
		}
	}
}

// TestCancelledEventDoesNotAdvanceClock: a cancelled alarm discarded on
// pop must leave no trace on the virtual clock (fault-free timings are a
// tier-1 property).
func TestCancelledEventDoesNotAdvanceClock(t *testing.T) {
	for _, algo := range []EQAlgo{EQWheel, EQHeap} {
		s := NewEQ(1, 1, algo)
		cancel := s.AfterCancel(1_000_000, func() { t.Fatal("cancelled alarm fired") })
		cancel()
		fired := false
		s.At(10, func() { fired = true })
		if err := s.Run(); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !fired {
			t.Fatalf("%s: live event did not fire", algo)
		}
		if s.Now() != 10 {
			t.Fatalf("%s: clock at %d after run, want 10 (cancelled alarm advanced it)", algo, s.Now())
		}
		if s.EventsFired() != 1 {
			t.Fatalf("%s: EventsFired = %d, want 1", algo, s.EventsFired())
		}
	}
}

// TestCancelClearsProcHasEvent is the regression test for the stale
// hasEvent flag: cancelling the pending event of a blocked proc must
// clear the flag and fold the proc into the watchdog's no-event
// accounting, so diagnostics see a proc with no way forward rather than
// a phantom wakeup. (White-box: proc-carrying events are cancelled via
// the internal cancelFunc, the path an alarm-backed wait uses.)
func TestCancelClearsProcHasEvent(t *testing.T) {
	s := NewEQ(1, 1, EQHeap)
	woke := false
	p := s.Go("sleeper", 0, 0, func(p *Proc) {
		p.Sleep(1000)
		woke = true
	})
	s.At(100, func() {
		if !p.hasEvent || p.State() != StateBlocked {
			t.Fatalf("precondition: hasEvent=%v state=%v", p.hasEvent, p.State())
		}
		// Find the sleeper's wake event and cancel it out from under it.
		hq := s.eq.(*heapQueue)
		var n *eventNode
		for _, c := range hq.h {
			if c.proc == p {
				n = c
			}
		}
		if n == nil {
			t.Fatal("no pending proc event found")
		}
		s.cancelFunc(n)()
		if p.hasEvent {
			t.Fatal("hasEvent still set after its event was cancelled")
		}
		if s.noEvent != 1 {
			t.Fatalf("noEvent = %d after cancel, want 1", s.noEvent)
		}
		// Recover the proc so the run finishes cleanly.
		s.Unpark(p, s.Now())
		if s.noEvent != 0 {
			t.Fatalf("noEvent = %d after Unpark, want 0", s.noEvent)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !woke {
		t.Fatal("sleeper never resumed")
	}
}

// TestSteadyStateZeroAlloc asserts the event hot path — schedule, pop,
// fire, recycle — allocates nothing once the free list is warm, for both
// queue algorithms.
func TestSteadyStateZeroAlloc(t *testing.T) {
	for _, algo := range []EQAlgo{EQWheel, EQHeap} {
		s := NewEQ(4, 7, algo)
		var ticks [4]func()
		for i := range ticks {
			period := Time(89 + 13*i)
			i := i
			ticks[i] = func() { s.After(period, ticks[i]) }
			s.After(Time(i+1), ticks[i])
		}
		s.RunUntil(10_000) // warm the free list and queue capacity
		next := s.Now()
		avg := testing.AllocsPerRun(100, func() {
			next += 10_000
			s.RunUntil(next)
		})
		if avg != 0 {
			t.Errorf("%s: steady-state RunUntil allocates %.1f/run, want 0", algo, avg)
		}
	}
}
