package sim

import (
	"fmt"
	"testing"
)

// The microbenchmark grid: concurrent timer streams standing in for
// machine sizes from a workstation to the 1024-core scale target.
var benchProcs = []int{24, 192, 1024}

func benchAlgos() []EQAlgo { return []EQAlgo{EQWheel, EQHeap} }

// preload fills the queue with n far-future events (one per simulated
// proc) so every benchmarked operation runs against a realistically
// loaded queue — this is where the heap pays its O(log n) sift and the
// wheel does not.
func preload(s *Sim, n int) {
	for i := 0; i < n; i++ {
		s.At(1<<40+Time(i), func() {})
	}
}

// BenchmarkSchedule measures one schedule+fire round trip (push, pop,
// recycle) with n pending events in the queue.
func BenchmarkSchedule(b *testing.B) {
	for _, algo := range benchAlgos() {
		for _, n := range benchProcs {
			b.Run(fmt.Sprintf("%s/procs=%d", algo, n), func(b *testing.B) {
				s := NewEQ(1, 1, algo)
				preload(s, n)
				fn := func() {}
				s.After(1, fn)
				s.RunUntil(s.Now() + 2) // warm the free list
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.After(1, fn)
					s.RunUntil(s.Now() + 2)
				}
			})
		}
	}
}

// BenchmarkRunUntil measures steady-state event throughput: n
// self-rearming timer streams with staggered periods, advanced in
// fixed windows. Events per op scales with n, so compare via the
// events/sec figure (ns/op divided by events per window).
func BenchmarkRunUntil(b *testing.B) {
	for _, algo := range benchAlgos() {
		for _, n := range benchProcs {
			b.Run(fmt.Sprintf("%s/procs=%d", algo, n), func(b *testing.B) {
				s := NewEQ(1, 1, algo)
				ticks := make([]func(), n)
				for i := range ticks {
					period := Time(83 + i%211)
					i := i
					ticks[i] = func() { s.After(period, ticks[i]) }
					s.After(Time(i%977), ticks[i])
				}
				s.RunUntil(100_000) // warm
				base := s.EventsFired()
				next := s.Now()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					next += 10_000
					s.RunUntil(next)
				}
				b.StopTimer()
				if b.N > 0 {
					b.ReportMetric(float64(s.EventsFired()-base)/float64(b.N), "events/op")
				}
			})
		}
	}
}

// BenchmarkAlarmCancel measures the arm+cancel path (the futex-recheck
// pattern: almost every alarm is cancelled before firing) with n pending
// events. Lazy deletion leaves the cancelled node queued, so the
// benchmark periodically advances the clock past the corpses to include
// their pop-and-discard cost.
func BenchmarkAlarmCancel(b *testing.B) {
	for _, algo := range benchAlgos() {
		for _, n := range benchProcs {
			b.Run(fmt.Sprintf("%s/procs=%d", algo, n), func(b *testing.B) {
				s := NewEQ(1, 1, algo)
				preload(s, n)
				fn := func() {}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cancel := s.AfterCancel(100, fn)
					cancel()
					if i%1024 == 1023 {
						s.RunUntil(s.Now() + 200) // recycle the corpses
					}
				}
			})
		}
	}
}
