package cck

import (
	"errors"
	"testing"

	"github.com/interweaving/komp/internal/device"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/sim"
)

// offloadProgram is a three-region function exercising every lowering
// path: a DOALL loop (device kernel), a reduction loop (device kernel
// with a league combine) and a carried-dependence loop that must stay on
// the host.
func offloadProgram(n int, cov []int, acc *float64, seqRan *bool) *Program {
	return &Program{Name: "offload-test", Funcs: []*Function{{Name: "main", Body: []Node{
		&Loop{Name: "doall", N: n, CostNS: 300,
			Effects: []Effect{{Obj: "a", Mode: Write, Pattern: Disjoint}},
			Mem:     MemProfile{Footprint: int64(n) * 8},
			Body:    func(i int) { cov[i]++ }},
		&Loop{Name: "reduce", N: n, CostNS: 200,
			Effects: []Effect{{Obj: "s", Mode: ReadWrite, Pattern: ReductionAcc}},
			Mem:     MemProfile{Footprint: int64(n) * 8},
			Body:    func(i int) { *acc += float64(i%7 + 1) }},
		&Seq{Name: "tail", CostNS: 5000, Run: func() { *seqRan = true }},
	}}}}
}

func compileOffload(t *testing.T, p *Program) *Compiled {
	t.Helper()
	c, err := Compile(p, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func offloadRun(t *testing.T, d *device.Dev, c *Compiled, opt OffloadOpt) (int64, error) {
	t.Helper()
	l := exec.NewSimLayer(sim.New(4, 1), exec.Costs{ThreadSpawnNS: 1000})
	var runErr error
	elapsed, err := l.Run(func(tc exec.TC) {
		runErr = c.RunOffload(tc, d, nil, opt)
	})
	if err != nil {
		t.Fatal(err)
	}
	return elapsed, runErr
}

// TestRunOffloadLowersDOALL: DOALL and reduction regions become device
// kernels (exactly-once iteration coverage, exact accumulator) while the
// sequential tail runs on the host; the device sees exactly the two
// offloadable kernels.
func TestRunOffloadLowersDOALL(t *testing.T) {
	const n = 2048
	cov := make([]int, n)
	var acc float64
	var seqRan bool
	c := compileOffload(t, offloadProgram(n, cov, &acc, &seqRan))

	if got := []Strategy{c.Fns[0].Regions[0].Strategy, c.Fns[0].Regions[1].Strategy, c.Fns[0].Regions[2].Strategy}; got[0] != StratTasks || got[1] != StratTasksReduction || got[2] != StratSequential {
		t.Fatalf("strategies = %v, want [tasks tasks-reduction sequential]", got)
	}

	d := device.New(machine.DefaultDevice(4, 8), 0, nil)
	if _, err := offloadRun(t, d, c, OffloadOpt{}); err != nil {
		t.Fatal(err)
	}
	for i, got := range cov {
		if got != 1 {
			t.Fatalf("iteration %d ran %d times, want exactly once", i, got)
		}
	}
	var want float64
	for i := 0; i < n; i++ {
		want += float64(i%7 + 1)
	}
	if acc != want {
		t.Errorf("reduction accumulator %v, want %v", acc, want)
	}
	if !seqRan {
		t.Error("sequential tail did not run on the host")
	}
	if st := d.Stats(); st.Kernels != 2 {
		t.Errorf("device ran %d kernels, want 2 (the two DOALL regions)", st.Kernels)
	}
}

// TestRunOffloadHoistCutsStagingLatency: hoisting stages the combined
// footprint in one transfer each way instead of one pair per region —
// same bytes, fewer DMA round trips, strictly less virtual time.
func TestRunOffloadHoistCutsStagingLatency(t *testing.T) {
	run := func(hoist bool) (int64, device.Stats) {
		const n = 1024
		cov := make([]int, n)
		var acc float64
		var seqRan bool
		c := compileOffload(t, offloadProgram(n, cov, &acc, &seqRan))
		d := device.New(machine.DefaultDevice(4, 8), 0, nil)
		elapsed, err := offloadRun(t, d, c, OffloadOpt{Hoist: hoist})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed, d.Stats()
	}
	perRegion, prStats := run(false)
	hoisted, hStats := run(true)
	if hStats.BytesH2D != prStats.BytesH2D || hStats.BytesD2H != prStats.BytesD2H {
		t.Errorf("hoist changed staged bytes: %+v vs %+v", hStats, prStats)
	}
	if hoisted >= perRegion {
		t.Errorf("hoisted run %dns is not faster than per-region staging %dns", hoisted, perRegion)
	}
}

// TestRunOffloadDeterminism: two fresh simulators, identical elapsed and
// counters.
func TestRunOffloadDeterminism(t *testing.T) {
	once := func() (int64, device.Stats) {
		const n = 4096
		cov := make([]int, n)
		var acc float64
		var seqRan bool
		c := compileOffload(t, offloadProgram(n, cov, &acc, &seqRan))
		d := device.New(machine.DefaultDevice(4, 8), 0, nil)
		elapsed, err := offloadRun(t, d, c, OffloadOpt{Hoist: true})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed, d.Stats()
	}
	e1, s1 := once()
	e2, s2 := once()
	if e1 != e2 || s1 != s2 {
		t.Errorf("two identical runs diverged: %d/%+v vs %d/%+v", e1, s1, e2, s2)
	}
}

// TestRunOffloadDeviceLost: a dead device surfaces ErrDeviceLost from
// the first kernel instead of hanging the lowered program.
func TestRunOffloadDeviceLost(t *testing.T) {
	const n = 256
	cov := make([]int, n)
	var acc float64
	var seqRan bool
	c := compileOffload(t, offloadProgram(n, cov, &acc, &seqRan))
	d := device.New(machine.DefaultDevice(2, 8), 0, nil)
	d.OfflineCU(0)
	d.OfflineCU(1)
	_, err := offloadRun(t, d, c, OffloadOpt{})
	if !errors.Is(err, device.ErrDeviceLost) {
		t.Errorf("RunOffload = %v, want ErrDeviceLost", err)
	}
}
