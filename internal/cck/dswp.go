package cck

import (
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/virgil"
)

// DSWP: decoupled software pipelining, one of the parallelization
// techniques §5.3 lists AutoMP drawing from NOELLE ("HELIX..., DSWP, and
// DOALL"). A loop whose iterations carry a dependence can still be
// parallelized if its body splits into stages whose cross-iteration
// dependences are acyclic: stage s of iteration i needs (s, i-1) and
// (s-1, i), so the stages run on different workers as a pipeline.

// StageSpec describes one pipeline stage of a loop body.
type StageSpec struct {
	Name string
	// CostNS is the stage's share of the iteration cost.
	CostNS int64
	// Carried marks a stage with a cross-iteration self-dependence
	// (it must run its iterations in order — true for most stages; a
	// non-carried stage could be replicated, which this implementation
	// does not do).
	Carried bool
}

// analyzeDSWP decides whether a sequential-verdict loop is pipelinable:
// it needs declared stages, and the stage graph (a chain by
// construction) is acyclic. It returns the verdict upgrade.
func analyzeDSWP(l *Loop) bool {
	return len(l.Stages) >= 2 && l.N >= 2
}

// runDSWP executes a pipelined loop on the task runtime: one long-lived
// task per stage, with single-slot handoff queues between neighbors.
// Stage tasks are "immediately ready" as VIRGIL requires; the inter-stage
// waits ride on the compiler-emitted counters, not the runtime.
func runDSWP(tc exec.TC, rt virgil.Runtime, l *Loop, scale CostScale) {
	stages := l.Stages
	ns := len(stages)
	// ready[s] counts iterations stage s may start (filled by stage s-1);
	// stage 0 is always ready.
	type slot struct {
		word exec.Word
	}
	ready := make([]*slot, ns)
	for s := range ready {
		ready[s] = &slot{}
	}
	g := virgil.NewGroup(ns)
	fns := make([]func(exec.TC), ns)
	for s := 0; s < ns; s++ {
		s := s
		st := stages[s]
		fns[s] = func(wtc exec.TC) {
			perIter := scale(l.Mem, st.CostNS)
			for i := 0; i < l.N; i++ {
				if s > 0 {
					// Wait until the upstream stage has produced iteration i.
					for {
						v := ready[s].word.Load()
						if int(v) > i {
							break
						}
						wtc.FutexWait(&ready[s].word, v)
					}
				}
				if perIter > 0 {
					wtc.Charge(perIter)
				}
				if l.Body != nil && s == ns-1 {
					// Real semantics run once per iteration, at the last
					// stage (the paper's landing of live-outs).
					l.Body(i)
				}
				if s < ns-1 {
					ready[s+1].word.Add(1)
					wtc.FutexWake(&ready[s+1].word, 1)
				}
			}
			g.Done(wtc)
		}
	}
	rt.SubmitBatch(tc, fns)
	g.Wait(tc)
}
