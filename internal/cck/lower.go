package cck

import (
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/ompt"
	"github.com/interweaving/komp/internal/virgil"
)

// CostScale lets an environment transform a region's estimated compute
// cost into effective virtual time (adding TLB, paging and NUMA factors).
// The identity scale returns cost unchanged.
type CostScale func(mem MemProfile, costNS int64) int64

// IdentityScale returns costs unchanged.
func IdentityScale(_ MemProfile, costNS int64) int64 { return costNS }

// landingCombineNS is the landing task's per-chunk combine cost for
// reduction groups.
const landingCombineNS = 12

// RunVirgil executes the compiled program on a VIRGIL runtime: the CCK
// back-end's output (§5.4). Each parallel region submits its chunks as
// immediately-ready tasks and waits on a compiler-generated landing
// group; sequential regions run inline on the calling thread.
func (c *Compiled) RunVirgil(tc exec.TC, rt virgil.Runtime, scale CostScale) {
	if scale == nil {
		scale = IdentityScale
	}
	for _, cf := range c.Fns {
		for i := range cf.Regions {
			r := &cf.Regions[i]
			switch n := r.Node.(type) {
			case *Seq:
				if cost := scale(n.Mem, n.CostNS); cost > 0 {
					tc.Charge(cost)
				}
				if n.Run != nil {
					n.Run()
				}
			case *Loop:
				c.runLoopRegion(tc, rt, r, n, scale)
			}
		}
	}
}

// regionEvent emits a ParallelBegin or ParallelEnd for a task-parallel
// region when a spine is attached. tasks is the region's task count
// (chunks, pipeline stages, or HELIX workers), carried in Arg0.
func (c *Compiled) regionEvent(tc exec.TC, k ompt.Kind, region uint64, tasks int) {
	if sp := c.Spine; sp.Enabled(k) {
		sp.Emit(ompt.Event{Kind: k, Thread: int32(tc.CPU()), CPU: int32(tc.CPU()),
			TimeNS: tc.Now(), Region: region, Arg0: int64(tasks)})
	}
}

func (c *Compiled) runLoopRegion(tc exec.TC, rt virgil.Runtime, r *Region, head *Loop, scale CostScale) {
	loops := r.fusedLoops
	if r.Strategy == StratPipeline {
		region := c.regionSeq.Add(1)
		c.regionEvent(tc, ompt.ParallelBegin, region, len(head.Stages))
		runDSWP(tc, rt, head, scale)
		c.regionEvent(tc, ompt.ParallelEnd, region, len(head.Stages))
		return
	}
	if r.Strategy == StratHELIX {
		workers := c.Opt.Workers
		if workers > head.N {
			workers = head.N
		}
		region := c.regionSeq.Add(1)
		c.regionEvent(tc, ompt.ParallelBegin, region, workers)
		runHELIX(tc, rt, head, c.Opt.Workers, scale)
		c.regionEvent(tc, ompt.ParallelEnd, region, workers)
		return
	}
	if r.Strategy == StratSequential {
		for _, l := range loops {
			if cost := scale(l.Mem, l.TotalCost()); cost > 0 {
				tc.Charge(cost)
			}
			if l.Body != nil {
				for i := 0; i < l.N; i++ {
					l.Body(i)
				}
			}
		}
		return
	}
	region := c.regionSeq.Add(1)
	c.regionEvent(tc, ompt.ParallelBegin, region, len(r.Chunks))
	defer c.regionEvent(tc, ompt.ParallelEnd, region, len(r.Chunks))
	g := virgil.NewGroup(len(r.Chunks))
	fns := make([]func(exec.TC), len(r.Chunks))
	for ci, ch := range r.Chunks {
		ch := ch
		fns[ci] = func(wtc exec.TC) {
			for _, l := range loops {
				if cost := scale(l.Mem, l.RangeCost(ch.Lo, ch.Hi)); cost > 0 {
					wtc.Charge(cost)
				}
				if l.Body != nil {
					for i := ch.Lo; i < ch.Hi; i++ {
						l.Body(i)
					}
				}
			}
			g.Done(wtc)
		}
	}
	rt.SubmitBatch(tc, fns)
	g.Wait(tc)
	if r.Strategy == StratTasksReduction {
		// Landing task combines the per-chunk partials.
		tc.Charge(int64(len(r.Chunks)) * landingCombineNS)
	}
}

// RunOpenMP executes the *source* program through the conventional
// OpenMP pipeline — the baseline CCK is compared against. Pragmas are
// followed blindly: parallel-for loops run under the runtime with the
// pragma's schedule (libomp's default coarse static partition when
// unspecified), everything else stays sequential.
func RunOpenMP(tc exec.TC, p *Program, rt *omp.Runtime, threads int, scale CostScale) {
	if scale == nil {
		scale = IdentityScale
	}
	for _, fn := range p.Funcs {
		for _, n := range fn.Body {
			switch n := n.(type) {
			case *Seq:
				if cost := scale(n.Mem, n.CostNS); cost > 0 {
					tc.Charge(cost)
				}
				if n.Run != nil {
					n.Run()
				}
			case *Loop:
				runOpenMPLoop(tc, n, rt, threads, scale)
			}
		}
	}
}

func runOpenMPLoop(tc exec.TC, l *Loop, rt *omp.Runtime, threads int, scale CostScale) {
	if l.Pragma == nil || l.Pragma.Kind != PragmaParallelFor {
		// No directive: the conventional pipeline has no automatic
		// parallelization; the loop stays sequential.
		if cost := scale(l.Mem, l.TotalCost()); cost > 0 {
			tc.Charge(cost)
		}
		if l.Body != nil {
			for i := 0; i < l.N; i++ {
				l.Body(i)
			}
		}
		return
	}
	opt := omp.ForOpt{Sched: omp.Static}
	switch l.Pragma.Schedule {
	case "dynamic":
		opt = omp.ForOpt{Sched: omp.Dynamic, Chunk: l.Pragma.Chunk}
	case "guided":
		opt = omp.ForOpt{Sched: omp.Guided, Chunk: l.Pragma.Chunk}
	case "static":
		opt.Chunk = l.Pragma.Chunk
	}
	rt.Parallel(tc, threads, func(w *omp.Worker) {
		w.For(0, l.N, opt, func(lo, hi int) {
			if cost := scale(l.Mem, l.RangeCost(lo, hi)); cost > 0 {
				w.TC().Charge(cost)
			}
			if l.Body != nil {
				for i := lo; i < hi; i++ {
					l.Body(i)
				}
			}
		})
	})
}
