// Package cck implements the custom compilation for kernel (CCK) pipeline
// of §5: a small explicit IR carrying OpenMP semantics as metadata, a
// NOELLE-analogue dependence analysis that exploits that metadata, and the
// AutoMP transformation that reduces all OpenMP parallelism to independent
// tasks for the VIRGIL runtime.
//
// The front-end difference the paper describes — annotating the AST
// instead of outlining regions — appears here as the IR keeping every
// region inline in one function body with pragma metadata attached, so
// the analyses see the whole function (§5.2).
package cck

import "fmt"

// EffectMode describes how a region touches an abstract memory object.
type EffectMode int

// Effect modes.
const (
	Read EffectMode = iota
	Write
	ReadWrite
)

func (m EffectMode) String() string {
	switch m {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return "readwrite"
	}
}

// AccessPattern describes the relationship between loop iterations and the
// touched object — the granularity NOELLE-style memory analysis reasons
// at, sharpened by the OpenMP metadata.
type AccessPattern int

// Access patterns.
const (
	// Disjoint: iteration i touches a slice of the object disjoint from
	// every other iteration's (a[i] = ...). No loop-carried dependence.
	Disjoint AccessPattern = iota
	// SharedRO: all iterations read the same data.
	SharedRO
	// SharedRW: iterations read and write overlapping data: a loop-
	// carried dependence unless the pragma asserts independence.
	SharedRW
	// ReductionAcc: iterations accumulate into the object with an
	// associative operator (sum/max/...): parallelizable with partial
	// accumulators.
	ReductionAcc
	// PrivateScratch: every iteration writes and reads a whole scratch
	// object (the OpenMP private/firstprivate array case). Parallel
	// execution requires per-thread privatization of the object.
	PrivateScratch
)

func (p AccessPattern) String() string {
	switch p {
	case Disjoint:
		return "disjoint"
	case SharedRO:
		return "shared-ro"
	case SharedRW:
		return "shared-rw"
	case ReductionAcc:
		return "reduction"
	default:
		return "private-scratch"
	}
}

// Effect is one memory effect of a region on a named object.
type Effect struct {
	Obj     string
	Mode    EffectMode
	Pattern AccessPattern
}

// PragmaKind is the OpenMP construct a pragma annotates.
type PragmaKind int

// Pragma kinds.
const (
	PragmaNone PragmaKind = iota
	PragmaParallelFor
	PragmaCritical
	PragmaAtomic
)

// Pragma is the OpenMP metadata the front-end attaches to the IR instead
// of outlining (§5.2). It asserts semantics the analysis alone may not
// prove.
type Pragma struct {
	Kind PragmaKind
	// Independent asserts the iterations are dependence-free (the core
	// meaning of "#pragma omp parallel for").
	Independent bool
	// Private lists objects the directive privatizes per thread.
	Private []string
	// Reductions maps object names to their reduction operator names.
	Reductions map[string]string
	// Schedule metadata for the conventional OpenMP lowering.
	Schedule string // "static", "dynamic", "guided"
	Chunk    int
	NoWait   bool
}

// MemProfile is the memory behaviour metadata of a region, consumed by
// the environment cost models (working set drives TLB reach, traffic
// drives NUMA sensitivity).
type MemProfile struct {
	// WorkingSetBytes is the per-thread steady-state working set.
	WorkingSetBytes int64
	// TLBPressure is the asymptotic fraction of run time lost to
	// translation when the TLB covers none of the working set (0..1).
	TLBPressure float64
	// MemBoundFrac is the fraction of run time bound on memory latency /
	// bandwidth (drives NUMA remote-access sensitivity).
	MemBoundFrac float64
	// Footprint is the total bytes the region touches (drives first-
	// touch fault volume).
	Footprint int64
	// StaticLayoutFrac is the fraction of run time lost to suboptimal
	// static-data layout and code-model effects that only boot-image
	// placement (RTK/CCK static linkage into the kernel) removes.
	StaticLayoutFrac float64
	// KernelFrac is the fraction of run time lost to the user-level
	// environment as a whole — demand paging, OS noise beyond the
	// explicit noise model, competing threads — removed by every
	// in-kernel path (RTK, PIK, CCK).
	KernelFrac float64
	// SatThreads is the thread count at which memory-system saturation
	// starts washing out per-environment overheads (both environments
	// end up waiting on the same DRAM); 0 disables damping.
	SatThreads float64
}

// Node is an IR node: a Loop or a Seq.
type Node interface {
	NodeName() string
	Reads() []Effect
	isNode()
}

// Seq is a straight-line (sequential) region.
type Seq struct {
	Name    string
	CostNS  int64
	Effects []Effect
	Mem     MemProfile
	// Run optionally executes real semantics (tests and examples).
	Run func()
}

// NodeName returns the region name.
func (s *Seq) NodeName() string { return s.Name }

// Reads returns the region's effects.
func (s *Seq) Reads() []Effect { return s.Effects }
func (s *Seq) isNode()         {}

// Loop is a counted loop region, the unit AutoMP parallelizes.
type Loop struct {
	Name string
	N    int
	// CostNS is the mean per-iteration latency estimate (the quantity
	// AutoMP's parallelism-aware data-flow analysis computes, §6.2).
	CostNS int64
	// Skew makes iteration costs non-uniform: iteration i costs
	// CostNS * (1 + Skew*(2*i/(N-1) - 1)); Skew in [0,1). Zero means
	// uniform. Triangular skew models the imbalanced loops of MG/CG.
	Skew float64
	// Effects lists per-iteration memory effects.
	Effects []Effect
	// Pragma is the attached OpenMP metadata (nil for plain sequential
	// source, the automatic-parallelization case).
	Pragma *Pragma
	Mem    MemProfile
	// Stages optionally decomposes the body for DSWP pipelining: a loop
	// whose iterations carry a dependence can still run as a pipeline
	// when its stages' cross-iteration dependences form a chain (§5.3
	// lists DSWP among AutoMP's techniques).
	Stages []StageSpec
	// Body optionally executes real per-iteration semantics.
	Body func(i int)
}

// NodeName returns the loop name.
func (l *Loop) NodeName() string { return l.Name }

// Reads returns the loop's effects.
func (l *Loop) Reads() []Effect { return l.Effects }
func (l *Loop) isNode()         {}

// IterCost returns the estimated cost of iteration i.
func (l *Loop) IterCost(i int) int64 {
	if l.Skew == 0 || l.N <= 1 {
		return l.CostNS
	}
	frac := 2*float64(i)/float64(l.N-1) - 1 // -1..1
	return int64(float64(l.CostNS) * (1 + l.Skew*frac))
}

// TotalCost returns the summed iteration cost estimate.
func (l *Loop) TotalCost() int64 {
	if l.Skew == 0 {
		return int64(l.N) * l.CostNS
	}
	var t int64
	for i := 0; i < l.N; i++ {
		t += l.IterCost(i)
	}
	return t
}

// RangeCost returns the summed cost of iterations [lo, hi).
func (l *Loop) RangeCost(lo, hi int) int64 {
	if l.Skew == 0 {
		return int64(hi-lo) * l.CostNS
	}
	var t int64
	for i := lo; i < hi; i++ {
		t += l.IterCost(i)
	}
	return t
}

// Function is a sequence of regions with shared state.
type Function struct {
	Name string
	Body []Node
}

// Program is a compilation unit.
type Program struct {
	Name  string
	Funcs []*Function
}

// Validate checks structural invariants of the program.
func (p *Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("cck: program without name")
	}
	seen := map[string]bool{}
	for _, f := range p.Funcs {
		for _, n := range f.Body {
			if n.NodeName() == "" {
				return fmt.Errorf("cck: %s: unnamed region", f.Name)
			}
			key := f.Name + "." + n.NodeName()
			if seen[key] {
				return fmt.Errorf("cck: duplicate region %s", key)
			}
			seen[key] = true
			if l, ok := n.(*Loop); ok {
				if l.N < 0 {
					return fmt.Errorf("cck: %s: negative trip count", key)
				}
				if l.Skew < 0 || l.Skew >= 1 {
					return fmt.Errorf("cck: %s: skew %v out of [0,1)", key, l.Skew)
				}
				for _, e := range l.Effects {
					if e.Obj == "" {
						return fmt.Errorf("cck: %s: effect without object", key)
					}
				}
			}
		}
	}
	return nil
}
