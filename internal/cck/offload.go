// offload.go lowers AutoMP output to device work-groups, in the style
// pocl uses for OpenCL kernels (arXiv 1611.07083): every DOALL region
// the middle-end proved independent becomes a `teams distribute` kernel
// whose work-group size is the device's lane width, while regions that
// stayed sequential (or carry cross-iteration dependences the pipeline
// and HELIX strategies exploit on the host) execute serially on the
// launching thread — the device environment has a host core driving the
// accelerator, not a host worker pool.
package cck

import (
	"github.com/interweaving/komp/internal/device"
	"github.com/interweaving/komp/internal/exec"
)

// OffloadOpt tunes the device lowering.
type OffloadOpt struct {
	// Hoist stages every offloaded region's footprint once, before the
	// first kernel and after the last (the `target data` pattern);
	// without it each region stages its footprint to the device and back
	// around its own launch (the naive per-region tofrom pattern).
	Hoist bool
	// LaneSlowdown is the per-iteration latency ratio of one SIMT lane
	// to the host core the IR's CostNS was estimated on; 0 uses
	// DefaultLaneSlowdown. Device lanes are simple in-order units.
	LaneSlowdown float64
}

// DefaultLaneSlowdown is the default lane/host per-iteration latency
// ratio.
const DefaultLaneSlowdown = 4.0

// RunOffload executes the compiled program with DOALL regions lowered
// to kernels on d: the CCK pipeline retargeted at an accelerator.
// Sequential, pipeline and HELIX regions run on the host thread with
// their environment-scaled cost. Returns device.ErrDeviceLost if the
// accelerator loses every compute unit mid-run.
func (c *Compiled) RunOffload(tc exec.TC, d *device.Dev, scale CostScale, opt OffloadOpt) error {
	if scale == nil {
		scale = IdentityScale
	}
	slow := opt.LaneSlowdown
	if slow <= 0 {
		slow = DefaultLaneSlowdown
	}
	var hoisted int64
	if opt.Hoist {
		// target data: one staging pass covers every offloaded region.
		for _, cf := range c.Fns {
			for i := range cf.Regions {
				if r := &cf.Regions[i]; offloadable(r) {
					for _, l := range r.fusedLoops {
						hoisted += l.Mem.Footprint
					}
				}
			}
		}
		d.StageBytes(tc, hoisted, true)
	}
	for _, cf := range c.Fns {
		for i := range cf.Regions {
			r := &cf.Regions[i]
			if !offloadable(r) {
				runHostRegion(tc, r, scale)
				continue
			}
			if err := c.offloadRegion(tc, d, r, slow, opt.Hoist); err != nil {
				return err
			}
		}
	}
	if opt.Hoist {
		d.StageBytes(tc, hoisted, false)
	}
	return nil
}

// offloadable reports whether AutoMP proved the region independent —
// the precondition for lowering it to a device work-group grid.
func offloadable(r *Region) bool {
	return r.Strategy == StratTasks || r.Strategy == StratTasksReduction
}

// offloadRegion launches one DOALL region as a kernel. The fused loops
// share a trip count; their bodies concatenate into the work-item and
// their per-iteration costs sum. The distribute chunk reuses the
// latency-aware chunker's decision, so the device sees the same task
// granularity the host pipeline chose.
func (c *Compiled) offloadRegion(tc exec.TC, d *device.Dev, r *Region, slow float64, hoisted bool) error {
	head := r.Node.(*Loop)
	loops := r.fusedLoops
	var iterNS, bytesPerIter, footprint int64
	for _, l := range loops {
		iterNS += int64(float64(l.TotalCost()) / float64(max(l.N, 1)) * slow)
		if l.N > 0 {
			bytesPerIter += l.Mem.Footprint / int64(l.N)
		}
		footprint += l.Mem.Footprint
	}
	chunk := 0
	if len(r.Chunks) > 0 {
		chunk = r.Chunks[0].Hi - r.Chunks[0].Lo
	}
	k := device.Kernel{
		Name:         head.Name,
		N:            head.N,
		Chunk:        chunk,
		IterNS:       iterNS,
		BytesPerIter: bytesPerIter,
	}
	if anyBody(loops) {
		k.Body = func(b device.Block) float64 {
			for _, l := range loops {
				if l.Body != nil {
					for i := b.Lo; i < b.Hi; i++ {
						l.Body(i)
					}
				}
			}
			return 0
		}
	}
	if r.Strategy == StratTasksReduction {
		// The landing-task combine becomes the league reduction tree.
		k.Reduce = func(a, b float64) float64 { return a + b }
	}
	if !hoisted {
		d.StageBytes(tc, footprint, true)
	}
	_, err := d.Launch(tc, k)
	if !hoisted {
		d.StageBytes(tc, footprint, false)
	}
	return err
}

func anyBody(loops []*Loop) bool {
	for _, l := range loops {
		if l.Body != nil {
			return true
		}
	}
	return false
}

// runHostRegion executes a non-offloadable region serially on the host
// thread: the device path has no host worker pool to hand pipeline or
// HELIX schedules to.
func runHostRegion(tc exec.TC, r *Region, scale CostScale) {
	switch n := r.Node.(type) {
	case *Seq:
		if cost := scale(n.Mem, n.CostNS); cost > 0 {
			tc.Charge(cost)
		}
		if n.Run != nil {
			n.Run()
		}
	case *Loop:
		for _, l := range r.fusedLoops {
			if cost := scale(l.Mem, l.TotalCost()); cost > 0 {
				tc.Charge(cost)
			}
			if l.Body != nil {
				for i := 0; i < l.N; i++ {
					l.Body(i)
				}
			}
		}
	}
}
