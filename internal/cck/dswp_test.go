package cck

import (
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/sim"
	"github.com/interweaving/komp/internal/virgil"
)

func stagedLoop(n int, stageNS ...int64) *Loop {
	l := &Loop{
		Name: "staged", N: n,
		Effects: []Effect{{Obj: "state", Mode: ReadWrite, Pattern: SharedRW}},
	}
	for i, c := range stageNS {
		l.Stages = append(l.Stages, StageSpec{
			Name: string(rune('A' + i)), CostNS: c, Carried: true,
		})
		l.CostNS += c
	}
	return l
}

func TestDSWPVerdict(t *testing.T) {
	l := stagedLoop(100, 500, 500, 500)
	a := AnalyzeLoop(l, false)
	if a.Verdict != Pipeline {
		t.Fatalf("staged carried loop verdict = %v (%s), want pipeline", a.Verdict, a.Reason)
	}
	// Without stages the same loop is sequential.
	plain := &Loop{Name: "plain", N: 100, CostNS: 1500,
		Effects: []Effect{{Obj: "state", Mode: ReadWrite, Pattern: SharedRW}}}
	if got := AnalyzeLoop(plain, false).Verdict; got != Sequential {
		t.Fatalf("plain carried loop verdict = %v", got)
	}
	// A single stage is not a pipeline.
	one := stagedLoop(100, 1500)
	if got := AnalyzeLoop(one, false).Verdict; got != Sequential {
		t.Fatalf("1-stage loop verdict = %v", got)
	}
}

func runPipelined(t *testing.T, l *Loop, workers int) int64 {
	t.Helper()
	p := &Program{Name: "p", Funcs: []*Function{{Name: "f", Body: []Node{l}}}}
	c, err := Compile(p, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if c.Fns[0].Regions[0].Strategy != StratPipeline {
		t.Fatalf("strategy = %v", c.Fns[0].Regions[0].Strategy)
	}
	layer := exec.NewSimLayer(sim.New(workers+1, 1), exec.Costs{
		MallocNS: 50, AtomicRMWNS: 15, FutexWaitEntryNS: 60,
		FutexWakeEntryNS: 60, FutexWakeLatencyNS: 150})
	u := virgil.NewUser(workers)
	elapsed, err := layer.Run(func(tc exec.TC) {
		if ph, ok := tc.(exec.ProcHolder); ok {
			ph.Proc().SetCPU(-1)
		}
		u.Start(tc)
		c.RunVirgil(tc, u, nil)
		u.Stop(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	return elapsed
}

func TestDSWPPipelineSpeedsUpCarriedLoop(t *testing.T) {
	const n = 400
	l := stagedLoop(n, 2000, 2000, 2000, 2000)
	elapsed := runPipelined(t, l, 4)
	serial := l.TotalCost() // 400 x 8us = 3.2ms
	// A 4-stage pipeline approaches 4x; demand at least 2.5x after
	// synchronization overheads.
	if float64(elapsed) > float64(serial)/2.5 {
		t.Fatalf("pipeline elapsed %d vs serial %d: speedup %.2f too low",
			elapsed, serial, float64(serial)/float64(elapsed))
	}
}

func TestDSWPExecutesBodyInOrder(t *testing.T) {
	const n = 150
	l := stagedLoop(n, 300, 300)
	var order []int
	l.Body = func(i int) { order = append(order, i) }
	runPipelined(t, l, 2)
	if len(order) != n {
		t.Fatalf("body ran %d times", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("iteration order broken at %d: %v", i, order[:i+1])
		}
	}
}

func TestDSWPInReport(t *testing.T) {
	l := stagedLoop(100, 500, 500)
	p := &Program{Name: "p", Funcs: []*Function{{Name: "f", Body: []Node{l}}}}
	c, err := Compile(p, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cov := c.ParallelCoverage(); cov != 1.0 {
		t.Fatalf("pipeline coverage = %v", cov)
	}
}

func helixLoop(n int, seqNS, parNS int64) *Loop {
	return &Loop{
		Name: "helixy", N: n,
		CostNS:  seqNS + parNS,
		Effects: []Effect{{Obj: "chain", Mode: ReadWrite, Pattern: SharedRW}},
		Stages: []StageSpec{
			{Name: "commit", CostNS: seqNS, Carried: true},
			{Name: "compute", CostNS: parNS, Carried: false},
		},
	}
}

func TestHELIXSelectedWhenSequentialMinority(t *testing.T) {
	l := helixLoop(200, 500, 4000) // 11% sequential
	p := &Program{Name: "p", Funcs: []*Function{{Name: "f", Body: []Node{l}}}}
	c, err := Compile(p, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Fns[0].Regions[0].Strategy; got != StratHELIX {
		t.Fatalf("strategy = %v, want helix", got)
	}
	// Majority-sequential stays DSWP.
	l2 := stagedLoop(200, 2000, 2000)
	p2 := &Program{Name: "p2", Funcs: []*Function{{Name: "f", Body: []Node{l2}}}}
	c2, err := Compile(p2, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Fns[0].Regions[0].Strategy; got != StratPipeline {
		t.Fatalf("strategy = %v, want dswp", got)
	}
}

func TestHELIXSpeedsUpMostlyParallelCarriedLoop(t *testing.T) {
	const n = 256
	l := helixLoop(n, 300, 5000)
	p := &Program{Name: "p", Funcs: []*Function{{Name: "f", Body: []Node{l}}}}
	c, err := Compile(p, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	layer := exec.NewSimLayer(sim.New(9, 1), exec.Costs{
		MallocNS: 50, AtomicRMWNS: 15, FutexWaitEntryNS: 60,
		FutexWakeEntryNS: 60, FutexWakeLatencyNS: 150})
	u := virgil.NewUser(8)
	elapsed, err := layer.Run(func(tc exec.TC) {
		if ph, ok := tc.(exec.ProcHolder); ok {
			ph.Proc().SetCPU(-1)
		}
		u.Start(tc)
		c.RunVirgil(tc, u, nil)
		u.Stop(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	serial := l.TotalCost() // 256 x 5.3us = 1.36ms
	if float64(elapsed) > float64(serial)/3 {
		t.Fatalf("HELIX elapsed %d vs serial %d: speedup %.2f too low",
			elapsed, serial, float64(serial)/float64(elapsed))
	}
}

func TestHELIXOrderedCommits(t *testing.T) {
	const n = 120
	l := helixLoop(n, 400, 1200)
	// Put the body on the carried stage by making it last.
	l.Stages = []StageSpec{
		{Name: "compute", CostNS: 1200, Carried: false},
		{Name: "commit", CostNS: 400, Carried: true},
	}
	var order []int
	l.Body = func(i int) { order = append(order, i) }
	p := &Program{Name: "p", Funcs: []*Function{{Name: "f", Body: []Node{l}}}}
	c, err := Compile(p, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	layer := exec.NewSimLayer(sim.New(5, 1), exec.Costs{FutexWaitEntryNS: 50, FutexWakeEntryNS: 50, FutexWakeLatencyNS: 100})
	u := virgil.NewUser(4)
	if _, err := layer.Run(func(tc exec.TC) {
		if ph, ok := tc.(exec.ProcHolder); ok {
			ph.Proc().SetCPU(-1)
		}
		u.Start(tc)
		c.RunVirgil(tc, u, nil)
		u.Stop(tc)
	}); err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("committed %d iterations", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("commit order broken at %d: %v", i, order[:i+1])
		}
	}
}

func TestPipelineLoopsDoNotFuse(t *testing.T) {
	doall := mkDOALL("vec", 200, 50_000, "a")
	staged := helixLoop(200, 400, 4000) // helix-strategy, disjoint objects
	p := &Program{Name: "p", Funcs: []*Function{{Name: "f", Body: []Node{doall, staged}}}}
	c, err := Compile(p, Options{Workers: 4, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Fns[0].Regions) != 2 {
		t.Fatalf("regions = %d: fusing a carried-dependence pipeline into a DOALL region erases its ordering", len(c.Fns[0].Regions))
	}
	if got := c.Fns[0].Regions[1].Strategy; got != StratHELIX {
		t.Fatalf("staged loop strategy = %v", got)
	}
}
