package cck

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"github.com/interweaving/komp/internal/ompt"
)

// Strategy is how a region executes after AutoMP.
type Strategy int

// Strategies.
const (
	StratSequential Strategy = iota
	StratTasks
	StratTasksReduction
	StratPipeline
	StratHELIX
)

func (s Strategy) String() string {
	switch s {
	case StratTasks:
		return "tasks"
	case StratTasksReduction:
		return "tasks+reduction"
	case StratPipeline:
		return "dswp-pipeline"
	case StratHELIX:
		return "helix"
	default:
		return "sequential"
	}
}

// Chunk is a compiler-generated task covering iterations [Lo, Hi) with an
// estimated cost.
type Chunk struct {
	Lo, Hi int
	CostNS int64
}

// Options configures the AutoMP transformation.
type Options struct {
	// Workers is the task-runtime worker count the chunker targets.
	Workers int
	// TargetChunkNS is the latency budget per generated task: the
	// "estimated latency of an iteration" heuristic of §6.2 aims for
	// tasks near this size. Zero selects the default.
	TargetChunkNS int64
	// MinChunksPerWorker lower-bounds the chunk count for balance.
	MinChunksPerWorker int
	// ExploitPrivatization enables exploiting OpenMP privatization
	// directives (off in the paper's AutoMP; an extension knob here).
	ExploitPrivatization bool
	// Fuse enables the loop-fusion optimization pass (§5.3 lists loop
	// fusion among the task-enabling transformations).
	Fuse bool
}

// DefaultTargetChunkNS is the default per-task latency budget.
const DefaultTargetChunkNS = 50_000

// Region is one compiled region.
type Region struct {
	Node     Node
	Analysis LoopAnalysis // meaningful for loops
	Strategy Strategy
	Chunks   []Chunk
	// FusedWith names loops fused into this region.
	FusedWith []string
	// fusedLoops holds the loop group (first entry is Node itself).
	fusedLoops []*Loop
}

// CompiledFn is a compiled function.
type CompiledFn struct {
	Fn      *Function
	PDG     *PDG
	Regions []Region
}

// Compiled is the output of the AutoMP pipeline.
type Compiled struct {
	Prog *Program
	Opt  Options
	Fns  []*CompiledFn

	// Spine, if non-nil, receives ParallelBegin/ParallelEnd events
	// around every task-parallel region RunVirgil executes (sequential
	// and serialized regions emit nothing, matching what the generated
	// code actually does). Set it before RunVirgil.
	Spine *ompt.Spine

	regionSeq atomic.Uint64
}

// Compile runs the full middle-end: validation, PDG construction, loop
// analysis, fusion, strategy selection, and latency-aware chunking.
func Compile(p *Program, opt Options) (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	if opt.TargetChunkNS <= 0 {
		opt.TargetChunkNS = DefaultTargetChunkNS
	}
	if opt.MinChunksPerWorker <= 0 {
		opt.MinChunksPerWorker = 4
	}
	c := &Compiled{Prog: p, Opt: opt}
	for _, fn := range p.Funcs {
		cf := &CompiledFn{Fn: fn, PDG: BuildPDG(fn)}
		for _, n := range fn.Body {
			r := Region{Node: n}
			if l, ok := n.(*Loop); ok {
				r.Analysis = AnalyzeLoop(l, opt.ExploitPrivatization)
				switch r.Analysis.Verdict {
				case DOALL:
					r.Strategy = StratTasks
				case DOALLReduction:
					r.Strategy = StratTasksReduction
				case Pipeline:
					// Pick between the two carried-dependence techniques:
					// HELIX when the sequential segments are the minority,
					// DSWP otherwise (§5.3 lists both).
					if helixApplicable(l) {
						r.Strategy = StratHELIX
					} else {
						r.Strategy = StratPipeline
					}
				default:
					r.Strategy = StratSequential
				}
				r.fusedLoops = []*Loop{l}
			}
			cf.Regions = append(cf.Regions, r)
		}
		if opt.Fuse {
			cf.Regions = fusePass(cf)
		}
		for i := range cf.Regions {
			r := &cf.Regions[i]
			if r.Strategy == StratTasks || r.Strategy == StratTasksReduction {
				r.Chunks = chunkLoops(r.fusedLoops, opt)
				if len(r.Chunks) <= 1 {
					// Not worth a task round-trip.
					r.Strategy = StratSequential
					if r.Analysis.Reason == "" {
						r.Analysis.Reason = "trip count too small for task overheads"
					}
				}
			}
		}
		c.Fns = append(c.Fns, cf)
	}
	return c, nil
}

// fusePass merges adjacent DOALL loops with identical trip counts whose
// shared objects are all accessed disjointly per-iteration (elementwise
// producer/consumer), eliminating one task-creation/join round per fused
// loop.
func fusePass(cf *CompiledFn) []Region {
	var out []Region
	for _, r := range cf.Regions {
		if len(out) > 0 && fusable(&out[len(out)-1], &r) {
			prev := &out[len(out)-1]
			l := r.Node.(*Loop)
			prev.fusedLoops = append(prev.fusedLoops, l)
			prev.FusedWith = append(prev.FusedWith, l.Name)
			if r.Strategy == StratTasksReduction {
				prev.Strategy = StratTasksReduction
				prev.Analysis.Reductions = append(prev.Analysis.Reductions, r.Analysis.Reductions...)
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

func fusable(a, b *Region) bool {
	// Only plain task regions fuse: pipeline/HELIX regions carry
	// cross-iteration ordering that a merged DOALL body would erase.
	okStrat := func(s Strategy) bool { return s == StratTasks || s == StratTasksReduction }
	if !okStrat(a.Strategy) || !okStrat(b.Strategy) {
		return false
	}
	la, ok1 := a.Node.(*Loop)
	lb, ok2 := b.Node.(*Loop)
	if !ok1 || !ok2 || la.N != lb.N {
		return false
	}
	// Every object both touch must be accessed Disjoint in both; any
	// other overlap would reorder cross-iteration communication.
	for _, ea := range allEffects(a) {
		for _, eb := range lb.Effects {
			if ea.Obj != eb.Obj {
				continue
			}
			if !(writes(ea.Mode) || writes(eb.Mode)) {
				continue
			}
			if ea.Pattern != Disjoint || eb.Pattern != Disjoint {
				return false
			}
		}
	}
	return true
}

func allEffects(r *Region) []Effect {
	var out []Effect
	for _, l := range r.fusedLoops {
		out = append(out, l.Effects...)
	}
	return out
}

// chunkLoops builds equal-cost chunks for a (possibly fused) loop group:
// the latency-aware chunking that lets AutoMP beat OpenMP's blind
// count-based static partition on skewed loops (§6.2).
func chunkLoops(loops []*Loop, opt Options) []Chunk {
	n := loops[0].N
	if n == 0 {
		return nil
	}
	iterCost := func(i int) int64 {
		var t int64
		for _, l := range loops {
			t += l.IterCost(i)
		}
		return t
	}
	var total int64
	for i := 0; i < n; i++ {
		total += iterCost(i)
	}
	// Desired chunk count: near the latency budget, at least
	// MinChunksPerWorker per worker for balance, at most one per
	// iteration — unless the whole loop is too small to split at all.
	want := int(total / opt.TargetChunkNS)
	if minChunks := opt.Workers * opt.MinChunksPerWorker; want > 0 && want < minChunks {
		want = minChunks
	}
	if want <= 1 {
		if total < 2*opt.TargetChunkNS {
			return []Chunk{{Lo: 0, Hi: n, CostNS: total}}
		}
		want = 2
	}
	if want > n {
		want = n
	}
	budget := total / int64(want)
	if budget < 1 {
		budget = 1
	}
	var chunks []Chunk
	lo := 0
	var acc int64
	for i := 0; i < n; i++ {
		acc += iterCost(i)
		if acc >= budget || i == n-1 {
			chunks = append(chunks, Chunk{Lo: lo, Hi: i + 1, CostNS: acc})
			lo = i + 1
			acc = 0
		}
	}
	return chunks
}

// Report renders a human-readable compiler report (the cckc driver output).
func (c *Compiled) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "AutoMP report for %s (workers=%d, target=%dns, fuse=%v)\n",
		c.Prog.Name, c.Opt.Workers, c.Opt.TargetChunkNS, c.Opt.Fuse)
	for _, cf := range c.Fns {
		fmt.Fprintf(&b, "function %s: %d region(s), %d dependence edge(s)\n",
			cf.Fn.Name, len(cf.Regions), len(cf.PDG.Deps))
		for _, r := range cf.Regions {
			switch n := r.Node.(type) {
			case *Seq:
				fmt.Fprintf(&b, "  seq  %-22s cost=%dns\n", n.Name, n.CostNS)
			case *Loop:
				fmt.Fprintf(&b, "  loop %-22s N=%-8d %-16s -> %s",
					n.Name, n.N, r.Analysis.Verdict, r.Strategy)
				if len(r.Chunks) > 0 {
					fmt.Fprintf(&b, " (%d tasks)", len(r.Chunks))
				}
				if len(r.FusedWith) > 0 {
					fmt.Fprintf(&b, " fused{%s}", strings.Join(r.FusedWith, ","))
				}
				if r.Analysis.Reason != "" {
					fmt.Fprintf(&b, " [%s]", r.Analysis.Reason)
				}
				if r.Analysis.UsedPragma {
					fmt.Fprintf(&b, " [via OpenMP metadata]")
				}
				b.WriteString("\n")
			}
		}
	}
	return b.String()
}

// ParallelCoverage returns the fraction of the program's total estimated
// cost that AutoMP parallelized — the quantity that collapses for IS.
func (c *Compiled) ParallelCoverage() float64 {
	var par, total int64
	for _, cf := range c.Fns {
		for _, r := range cf.Regions {
			switch n := r.Node.(type) {
			case *Seq:
				total += n.CostNS
			case *Loop:
				cost := int64(0)
				for _, l := range r.fusedLoops {
					cost += l.TotalCost()
				}
				total += cost
				if r.Strategy != StratSequential {
					par += cost
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(par) / float64(total)
}

// SequentialLoops lists the loops AutoMP left sequential, with reasons,
// sorted by name.
func (c *Compiled) SequentialLoops() []string {
	var out []string
	for _, cf := range c.Fns {
		for _, r := range cf.Regions {
			if l, ok := r.Node.(*Loop); ok && r.Strategy == StratSequential {
				out = append(out, fmt.Sprintf("%s: %s", l.Name, r.Analysis.Reason))
			}
		}
	}
	sort.Strings(out)
	return out
}
