package cck

import (
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/virgil"
)

// HELIX: the other carried-dependence technique §5.3 lists ("HELIX...
// without the OS support and without thread speculation"). Where DSWP
// assigns *stages* to workers, HELIX assigns *iterations* to workers
// round-robin and runs the iteration's parallel segments concurrently,
// serializing only the sequential segments (the carried stages) in
// iteration order.
//
// AutoMP picks HELIX over DSWP when most of the iteration cost sits in
// non-carried stages: then the sequential segments form a short critical
// chain and the parallel work overlaps across iterations.

// helixApplicable reports whether the staged loop is better served by
// HELIX: declared stages with a minority of the cost carried.
func helixApplicable(l *Loop) bool {
	if len(l.Stages) < 2 || l.N < 2 {
		return false
	}
	var carried, total int64
	for _, st := range l.Stages {
		total += st.CostNS
		if st.Carried {
			carried += st.CostNS
		}
	}
	return total > 0 && carried*2 < total // sequential segments are the minority
}

// runHELIX executes the loop with W workers: worker w runs iterations
// w, w+W, w+2W, ...; each carried stage acquires its iteration-order
// token before executing (the signal/wait pairs HELIX compiles in).
func runHELIX(tc exec.TC, rt virgil.Runtime, l *Loop, workers int, scale CostScale) {
	if workers > l.N {
		workers = l.N
	}
	if workers < 1 {
		workers = 1
	}
	// One completion token stream per carried stage: tokens[s] counts
	// iterations whose stage s has committed.
	var tokens []*exec.Word
	for range l.Stages {
		tokens = append(tokens, &exec.Word{})
	}
	g := virgil.NewGroup(workers)
	fns := make([]func(exec.TC), workers)
	for w := 0; w < workers; w++ {
		w := w
		fns[w] = func(wtc exec.TC) {
			for i := w; i < l.N; i += workers {
				for s, st := range l.Stages {
					cost := scale(l.Mem, st.CostNS)
					if st.Carried {
						// Sequential segment: wait for iteration order.
						for {
							v := tokens[s].Load()
							if int(v) == i {
								break
							}
							wtc.FutexWait(tokens[s], v)
						}
						if cost > 0 {
							wtc.Charge(cost)
						}
						if l.Body != nil && s == len(l.Stages)-1 {
							l.Body(i)
						}
						tokens[s].Add(1)
						wtc.FutexWake(tokens[s], -1)
					} else {
						if cost > 0 {
							wtc.Charge(cost)
						}
						if l.Body != nil && s == len(l.Stages)-1 {
							l.Body(i)
						}
					}
				}
			}
			g.Done(wtc)
		}
	}
	rt.SubmitBatch(tc, fns)
	g.Wait(tc)
}
