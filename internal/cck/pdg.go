package cck

import "fmt"

// LoopVerdict is the outcome of loop-carried dependence analysis.
type LoopVerdict int

// Verdicts.
const (
	// DOALL: iterations are independent; full task parallelization.
	DOALL LoopVerdict = iota
	// DOALLReduction: independent except for reduction accumulators,
	// handled with per-task partials and a landing-task combine.
	DOALLReduction
	// Pipeline: a loop-carried dependence, but the body's declared
	// stages form an acyclic chain — DSWP applies.
	Pipeline
	// Sequential: a loop-carried dependence (or an unexploitable
	// privatization requirement) forces sequential execution.
	Sequential
)

func (v LoopVerdict) String() string {
	switch v {
	case DOALL:
		return "DOALL"
	case DOALLReduction:
		return "DOALL+reduction"
	case Pipeline:
		return "pipelinable"
	default:
		return "sequential"
	}
}

// LoopAnalysis is the per-loop analysis result.
type LoopAnalysis struct {
	Loop    *Loop
	Verdict LoopVerdict
	// Reason explains a Sequential verdict.
	Reason string
	// Reductions lists the accumulator objects when DOALLReduction.
	Reductions []string
	// UsedPragma reports whether the OpenMP metadata (rather than pure
	// analysis) supplied the independence — the accuracy boost of §5.3.
	UsedPragma bool
}

// AnalyzeLoop performs the loop-carried dependence analysis. The
// exploitPrivatization flag is the capability AutoMP currently lacks
// (§6.2: "AutoMP being currently unable to exploit OpenMP directives
// related to object privatization"); pass true to model a future compiler
// that can.
func AnalyzeLoop(l *Loop, exploitPrivatization bool) LoopAnalysis {
	a := LoopAnalysis{Loop: l, Verdict: DOALL}
	pragmaIndependent := l.Pragma != nil && l.Pragma.Independent
	privatized := map[string]bool{}
	reduced := map[string]bool{}
	if l.Pragma != nil {
		for _, o := range l.Pragma.Private {
			privatized[o] = true
		}
		for o := range l.Pragma.Reductions {
			reduced[o] = true
		}
	}
	for _, e := range l.Effects {
		switch e.Pattern {
		case Disjoint, SharedRO:
			// Never a carried dependence.
		case ReductionAcc:
			a.Verdict = maxVerdict(a.Verdict, DOALLReduction)
			a.Reductions = append(a.Reductions, e.Obj)
		case SharedRW:
			if reduced[e.Obj] {
				a.Verdict = maxVerdict(a.Verdict, DOALLReduction)
				a.Reductions = append(a.Reductions, e.Obj)
				a.UsedPragma = true
			} else if pragmaIndependent {
				// The OpenMP metadata asserts what memory analysis could
				// not prove: the overlapping accesses don't conflict.
				a.UsedPragma = true
			} else if analyzeDSWP(l) {
				a.Verdict = Pipeline
				a.Reason = fmt.Sprintf("carried dependence through %q; %d-stage DSWP pipeline", e.Obj, len(l.Stages))
			} else {
				return LoopAnalysis{Loop: l, Verdict: Sequential,
					Reason: fmt.Sprintf("loop-carried dependence through %q", e.Obj)}
			}
		case PrivateScratch:
			// The object needs per-thread privatization. The OpenMP
			// directive declares it (private clause), but AutoMP cannot
			// exploit that declaration yet — the documented limitation
			// that costs LU/BT/SP/IS their parallelism.
			if exploitPrivatization && (privatized[e.Obj] || pragmaIndependent) {
				continue
			}
			return LoopAnalysis{Loop: l, Verdict: Sequential,
				Reason: fmt.Sprintf("object %q requires privatization (unexploited)", e.Obj)}
		}
	}
	return a
}

func maxVerdict(a, b LoopVerdict) LoopVerdict {
	if b > a {
		return b
	}
	return a
}

// Dep is a node-level dependence edge in the PDG.
type Dep struct {
	From, To int // indices into the function body
	Obj      string
}

// PDG is the program dependence graph over a function's regions.
type PDG struct {
	Fn   *Function
	Deps []Dep
	// preds[i] lists the nodes node i depends on.
	preds [][]int
}

// BuildPDG computes node-level dependences: region B depends on region A
// (A before B) when they touch a common object and at least one writes it.
func BuildPDG(fn *Function) *PDG {
	g := &PDG{Fn: fn, preds: make([][]int, len(fn.Body))}
	for j := 1; j < len(fn.Body); j++ {
		for i := 0; i < j; i++ {
			if obj, dep := conflict(fn.Body[i], fn.Body[j]); dep {
				g.Deps = append(g.Deps, Dep{From: i, To: j, Obj: obj})
				g.preds[j] = append(g.preds[j], i)
			}
		}
	}
	return g
}

func writes(m EffectMode) bool { return m == Write || m == ReadWrite }

func conflict(a, b Node) (string, bool) {
	for _, ea := range a.Reads() {
		for _, eb := range b.Reads() {
			if ea.Obj != eb.Obj {
				continue
			}
			if writes(ea.Mode) || writes(eb.Mode) {
				return ea.Obj, true
			}
		}
	}
	return "", false
}

// Preds returns the indices node i depends on.
func (g *PDG) Preds(i int) []int { return g.preds[i] }

// Independent reports whether nodes i and j have no path between them
// (directly or transitively), i.e. they may execute concurrently.
func (g *PDG) Independent(i, j int) bool {
	if i == j {
		return false
	}
	if j < i {
		i, j = j, i
	}
	// Reachability i -> j over forward edges.
	reach := map[int]bool{i: true}
	for k := i + 1; k <= j; k++ {
		for _, p := range g.preds[k] {
			if reach[p] {
				reach[k] = true
				break
			}
		}
	}
	return !reach[j]
}
