package cck

import (
	"strings"
	"sync/atomic"
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/sim"
	"github.com/interweaving/komp/internal/virgil"
)

func TestAnalyzeLoopVerdicts(t *testing.T) {
	cases := []struct {
		name    string
		loop    Loop
		exploit bool
		want    LoopVerdict
	}{
		{"disjoint", Loop{Effects: []Effect{{Obj: "a", Mode: Write, Pattern: Disjoint}}}, false, DOALL},
		{"shared-read", Loop{Effects: []Effect{{Obj: "a", Mode: Read, Pattern: SharedRO}}}, false, DOALL},
		{"carried-dep", Loop{Effects: []Effect{{Obj: "a", Mode: ReadWrite, Pattern: SharedRW}}}, false, Sequential},
		{"carried-dep-pragma", Loop{
			Effects: []Effect{{Obj: "a", Mode: ReadWrite, Pattern: SharedRW}},
			Pragma:  &Pragma{Kind: PragmaParallelFor, Independent: true},
		}, false, DOALL},
		{"reduction", Loop{Effects: []Effect{{Obj: "s", Mode: ReadWrite, Pattern: ReductionAcc}}}, false, DOALLReduction},
		{"reduction-pragma", Loop{
			Effects: []Effect{{Obj: "s", Mode: ReadWrite, Pattern: SharedRW}},
			Pragma:  &Pragma{Kind: PragmaParallelFor, Reductions: map[string]string{"s": "+"}},
		}, false, DOALLReduction},
		{"private-scratch", Loop{
			Effects: []Effect{{Obj: "tmp", Mode: ReadWrite, Pattern: PrivateScratch}},
			Pragma:  &Pragma{Kind: PragmaParallelFor, Independent: true, Private: []string{"tmp"}},
		}, false, Sequential}, // the documented AutoMP limitation (§6.2)
		{"private-scratch-exploited", Loop{
			Effects: []Effect{{Obj: "tmp", Mode: ReadWrite, Pattern: PrivateScratch}},
			Pragma:  &Pragma{Kind: PragmaParallelFor, Independent: true, Private: []string{"tmp"}},
		}, true, DOALL},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			a := AnalyzeLoop(&tt.loop, tt.exploit)
			if a.Verdict != tt.want {
				t.Fatalf("verdict = %v (%s), want %v", a.Verdict, a.Reason, tt.want)
			}
		})
	}
}

func TestPragmaBeatsPureAnalysis(t *testing.T) {
	l := &Loop{
		Effects: []Effect{{Obj: "a", Mode: ReadWrite, Pattern: SharedRW}},
		Pragma:  &Pragma{Kind: PragmaParallelFor, Independent: true},
	}
	a := AnalyzeLoop(l, false)
	if !a.UsedPragma {
		t.Fatal("analysis must record that the OpenMP metadata supplied independence")
	}
}

func TestPDGEdges(t *testing.T) {
	fn := &Function{Name: "f", Body: []Node{
		&Loop{Name: "produce", N: 10, Effects: []Effect{{Obj: "a", Mode: Write, Pattern: Disjoint}}},
		&Loop{Name: "unrelated", N: 10, Effects: []Effect{{Obj: "b", Mode: Write, Pattern: Disjoint}}},
		&Loop{Name: "consume", N: 10, Effects: []Effect{{Obj: "a", Mode: Read, Pattern: Disjoint}}},
	}}
	g := BuildPDG(fn)
	if len(g.Deps) != 1 || g.Deps[0].From != 0 || g.Deps[0].To != 2 || g.Deps[0].Obj != "a" {
		t.Fatalf("deps = %+v", g.Deps)
	}
	if !g.Independent(0, 1) {
		t.Fatal("produce and unrelated must be independent")
	}
	if g.Independent(0, 2) {
		t.Fatal("produce and consume must be dependent")
	}
}

func TestPDGTransitiveDependence(t *testing.T) {
	fn := &Function{Name: "f", Body: []Node{
		&Loop{Name: "a", N: 1, Effects: []Effect{{Obj: "x", Mode: Write, Pattern: Disjoint}}},
		&Loop{Name: "b", N: 1, Effects: []Effect{
			{Obj: "x", Mode: Read, Pattern: Disjoint},
			{Obj: "y", Mode: Write, Pattern: Disjoint}}},
		&Loop{Name: "c", N: 1, Effects: []Effect{{Obj: "y", Mode: Read, Pattern: Disjoint}}},
	}}
	g := BuildPDG(fn)
	if g.Independent(0, 2) {
		t.Fatal("a->b->c transitive dependence missed")
	}
}

func TestValidate(t *testing.T) {
	bad := &Program{Name: "p", Funcs: []*Function{{Name: "f", Body: []Node{
		&Loop{Name: "l", N: -1},
	}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative trip count must fail validation")
	}
	dup := &Program{Name: "p", Funcs: []*Function{{Name: "f", Body: []Node{
		&Loop{Name: "l", N: 1}, &Loop{Name: "l", N: 1},
	}}}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate region names must fail validation")
	}
}

func mkDOALL(name string, n int, cost int64, obj string) *Loop {
	return &Loop{
		Name: name, N: n, CostNS: cost,
		Effects: []Effect{{Obj: obj, Mode: Write, Pattern: Disjoint}},
		Pragma:  &Pragma{Kind: PragmaParallelFor, Independent: true},
	}
}

func TestChunkingCoversAllIterations(t *testing.T) {
	l := mkDOALL("l", 1000, 1000, "a")
	chunks := chunkLoops([]*Loop{l}, Options{Workers: 8, TargetChunkNS: 50_000, MinChunksPerWorker: 4})
	next := 0
	var total int64
	for _, ch := range chunks {
		if ch.Lo != next {
			t.Fatalf("gap: chunk starts at %d, want %d", ch.Lo, next)
		}
		if ch.Hi <= ch.Lo {
			t.Fatalf("empty chunk %+v", ch)
		}
		next = ch.Hi
		total += ch.CostNS
	}
	if next != 1000 {
		t.Fatalf("chunks end at %d, want 1000", next)
	}
	if total != l.TotalCost() {
		t.Fatalf("chunk cost sum %d != total %d", total, l.TotalCost())
	}
	// 1000 iters x 1us = 1ms / 50us target = 20, raised to 8*4=32 chunks.
	if len(chunks) != 32 {
		t.Fatalf("chunks = %d, want 32", len(chunks))
	}
}

func TestChunkingBalancesSkewedCosts(t *testing.T) {
	l := mkDOALL("skewed", 1024, 1000, "a")
	l.Skew = 0.9
	chunks := chunkLoops([]*Loop{l}, Options{Workers: 4, TargetChunkNS: 50_000, MinChunksPerWorker: 4})
	var maxC, minC int64 = 0, 1 << 62
	for _, ch := range chunks {
		if ch.CostNS > maxC {
			maxC = ch.CostNS
		}
		if ch.CostNS < minC {
			minC = ch.CostNS
		}
	}
	// Equal-cost chunking: spread must be far tighter than the 19x
	// iteration cost spread.
	if float64(maxC) > 2.5*float64(minC) {
		t.Fatalf("cost-based chunks unbalanced: min=%d max=%d", minC, maxC)
	}
	// Early (cheap) chunks must hold more iterations than late ones.
	if first, last := chunks[0], chunks[len(chunks)-1]; first.Hi-first.Lo <= last.Hi-last.Lo {
		t.Fatalf("skew-aware chunking expected: first=%d iters, last=%d iters",
			first.Hi-first.Lo, last.Hi-last.Lo)
	}
}

func TestTinyLoopStaysSequential(t *testing.T) {
	p := &Program{Name: "p", Funcs: []*Function{{Name: "f", Body: []Node{
		mkDOALL("tiny", 4, 100, "a"), // 400ns total: below task overheads
	}}}}
	c, err := Compile(p, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.Fns[0].Regions[0].Strategy != StratSequential {
		t.Fatalf("tiny loop strategy = %v, want sequential", c.Fns[0].Regions[0].Strategy)
	}
}

func TestFusionMergesElementwiseLoops(t *testing.T) {
	p := &Program{Name: "p", Funcs: []*Function{{Name: "f", Body: []Node{
		mkDOALL("scale", 4096, 500, "a"),
		&Loop{Name: "offset", N: 4096, CostNS: 500,
			Effects: []Effect{
				{Obj: "a", Mode: Read, Pattern: Disjoint},
				{Obj: "b", Mode: Write, Pattern: Disjoint}},
			Pragma: &Pragma{Kind: PragmaParallelFor, Independent: true}},
	}}}}
	c, err := Compile(p, Options{Workers: 4, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Fns[0].Regions) != 1 {
		t.Fatalf("regions = %d, want 1 (fused)", len(c.Fns[0].Regions))
	}
	if got := c.Fns[0].Regions[0].FusedWith; len(got) != 1 || got[0] != "offset" {
		t.Fatalf("FusedWith = %v", got)
	}
}

func TestFusionRefusesNonElementwise(t *testing.T) {
	// Second loop reads a shared-RW view of "a" (e.g. a stencil over the
	// whole array): fusing would break cross-iteration visibility.
	p := &Program{Name: "p", Funcs: []*Function{{Name: "f", Body: []Node{
		mkDOALL("produce", 4096, 500, "a"),
		&Loop{Name: "stencil", N: 4096, CostNS: 500,
			Effects: []Effect{
				{Obj: "a", Mode: Read, Pattern: SharedRW},
				{Obj: "b", Mode: Write, Pattern: Disjoint}},
			Pragma: &Pragma{Kind: PragmaParallelFor, Independent: true}},
	}}}}
	c, err := Compile(p, Options{Workers: 4, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Fns[0].Regions) != 2 {
		t.Fatalf("regions = %d, want 2 (fusion must refuse)", len(c.Fns[0].Regions))
	}
	// Different trip counts must also refuse.
	p2 := &Program{Name: "p2", Funcs: []*Function{{Name: "f", Body: []Node{
		mkDOALL("x", 100, 50_000, "a"), mkDOALL("y", 200, 50_000, "b"),
	}}}}
	c2, err := Compile(p2, Options{Workers: 4, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Fns[0].Regions) != 2 {
		t.Fatal("different trip counts must not fuse")
	}
}

func TestParallelCoverage(t *testing.T) {
	p := &Program{Name: "p", Funcs: []*Function{{Name: "f", Body: []Node{
		mkDOALL("par", 1000, 1000, "a"), // 1ms parallel
		&Loop{Name: "seq", N: 1000, CostNS: 1000,
			Effects: []Effect{{Obj: "tmp", Mode: ReadWrite, Pattern: PrivateScratch}},
			Pragma:  &Pragma{Kind: PragmaParallelFor, Independent: true, Private: []string{"tmp"}}},
	}}}}
	c, err := Compile(p, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if cov := c.ParallelCoverage(); cov < 0.49 || cov > 0.51 {
		t.Fatalf("coverage = %v, want ~0.5", cov)
	}
	if seqs := c.SequentialLoops(); len(seqs) != 1 || !strings.Contains(seqs[0], "privatization") {
		t.Fatalf("sequential loops = %v", seqs)
	}
}

func TestCompiledExecutionCorrectness(t *testing.T) {
	// Real bodies: out[i] = in[i]*2 via AutoMP on VIRGIL must equal the
	// sequential result.
	const n = 5000
	in := make([]int64, n)
	out := make([]int64, n)
	for i := range in {
		in[i] = int64(i)
	}
	l := mkDOALL("double", n, 800, "out")
	l.Effects = append(l.Effects, Effect{Obj: "in", Mode: Read, Pattern: SharedRO})
	l.Body = func(i int) { atomic.StoreInt64(&out[i], in[i]*2) }
	p := &Program{Name: "p", Funcs: []*Function{{Name: "f", Body: []Node{l}}}}
	c, err := Compile(p, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	layer := exec.NewSimLayer(sim.New(8, 1), exec.Costs{MallocNS: 50, AtomicRMWNS: 20,
		FutexWaitEntryNS: 80, FutexWakeEntryNS: 80, FutexWakeLatencyNS: 200})
	u := virgil.NewUser(8)
	_, err = layer.Run(func(tc exec.TC) {
		u.Start(tc)
		c.RunVirgil(tc, u, nil)
		u.Stop(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if out[i] != int64(i)*2 {
			t.Fatalf("out[%d] = %d", i, out[i])
		}
	}
}

func TestSequentialVerdictExecutesInline(t *testing.T) {
	const n = 100
	sum := int64(0)
	l := &Loop{Name: "seqdep", N: n, CostNS: 100,
		Effects: []Effect{{Obj: "s", Mode: ReadWrite, Pattern: SharedRW}},
		Body:    func(i int) { sum += int64(i) }} // genuine carried dep
	p := &Program{Name: "p", Funcs: []*Function{{Name: "f", Body: []Node{l}}}}
	c, err := Compile(p, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	layer := exec.NewSimLayer(sim.New(4, 1), exec.Costs{})
	u := virgil.NewUser(4)
	_, err = layer.Run(func(tc exec.TC) {
		u.Start(tc)
		c.RunVirgil(tc, u, nil)
		u.Stop(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != n*(n-1)/2 {
		t.Fatalf("sum = %d", sum)
	}
}

// The headline CCK mechanism: on a skewed loop, AutoMP's latency-aware
// chunking beats OpenMP's blind static partition (the MG/CG gains of
// Fig. 11/12).
func TestAutoMPBeatsStaticOpenMPOnSkewedLoop(t *testing.T) {
	mkLoop := func() *Loop {
		l := mkDOALL("skewed", 4096, 2000, "a")
		l.Skew = 0.85
		return l
	}
	costs := exec.Costs{MallocNS: 60, AtomicRMWNS: 20, CacheLineXferNS: 40,
		FutexWaitEntryNS: 80, FutexWakeEntryNS: 80, FutexWakeLatencyNS: 300,
		ThreadSpawnNS: 2000}

	// OpenMP static (pragma default).
	layer1 := exec.NewSimLayer(sim.New(8, 1), costs)
	rt := omp.New(layer1, omp.Options{MaxThreads: 8, Bind: true})
	p := &Program{Name: "p", Funcs: []*Function{{Name: "f", Body: []Node{mkLoop()}}}}
	ompTime, err := layer1.Run(func(tc exec.TC) {
		RunOpenMP(tc, p, rt, 8, nil)
		rt.Close(tc)
	})
	if err != nil {
		t.Fatal(err)
	}

	// AutoMP on user VIRGIL.
	c, err := Compile(p, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	layer2 := exec.NewSimLayer(sim.New(8, 1), costs)
	u := virgil.NewUser(8)
	autoTime, err := layer2.Run(func(tc exec.TC) {
		u.Start(tc)
		c.RunVirgil(tc, u, nil)
		u.Stop(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if autoTime >= ompTime {
		t.Fatalf("AutoMP (%d) must beat static OpenMP (%d) on skewed loop", autoTime, ompTime)
	}
}

// And the converse: when privatization is required, AutoMP loses badly to
// OpenMP, which supports private objects (the LU/BT/SP losses).
func TestAutoMPLosesOnPrivatizationLoop(t *testing.T) {
	mkLoop := func() *Loop {
		return &Loop{Name: "priv", N: 4096, CostNS: 2000,
			Effects: []Effect{
				{Obj: "out", Mode: Write, Pattern: Disjoint},
				{Obj: "tmp", Mode: ReadWrite, Pattern: PrivateScratch}},
			Pragma: &Pragma{Kind: PragmaParallelFor, Independent: true, Private: []string{"tmp"}}}
	}
	costs := exec.Costs{MallocNS: 60, AtomicRMWNS: 20, CacheLineXferNS: 40,
		FutexWaitEntryNS: 80, FutexWakeEntryNS: 80, FutexWakeLatencyNS: 300,
		ThreadSpawnNS: 2000}
	p := &Program{Name: "p", Funcs: []*Function{{Name: "f", Body: []Node{mkLoop()}}}}

	layer1 := exec.NewSimLayer(sim.New(8, 1), costs)
	rt := omp.New(layer1, omp.Options{MaxThreads: 8, Bind: true})
	ompTime, err := layer1.Run(func(tc exec.TC) {
		RunOpenMP(tc, p, rt, 8, nil)
		rt.Close(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(p, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	layer2 := exec.NewSimLayer(sim.New(8, 1), costs)
	u := virgil.NewUser(8)
	autoTime, err := layer2.Run(func(tc exec.TC) {
		u.Start(tc)
		c.RunVirgil(tc, u, nil)
		u.Stop(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if autoTime <= ompTime {
		t.Fatalf("AutoMP (%d) must lose to OpenMP (%d) when privatization is unexploited", autoTime, ompTime)
	}
	// With the extension knob the gap must close.
	c2, err := Compile(p, Options{Workers: 8, ExploitPrivatization: true})
	if err != nil {
		t.Fatal(err)
	}
	layer3 := exec.NewSimLayer(sim.New(8, 1), costs)
	u2 := virgil.NewUser(8)
	fixedTime, err := layer3.Run(func(tc exec.TC) {
		u2.Start(tc)
		c2.RunVirgil(tc, u2, nil)
		u2.Stop(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if fixedTime >= autoTime {
		t.Fatalf("privatization support (%d) must beat the limited compiler (%d)", fixedTime, autoTime)
	}
}

func TestReport(t *testing.T) {
	p := &Program{Name: "demo", Funcs: []*Function{{Name: "main", Body: []Node{
		&Seq{Name: "init", CostNS: 100},
		mkDOALL("work", 10000, 1000, "a"),
	}}}}
	c, err := Compile(p, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := c.Report()
	for _, want := range []string{"demo", "work", "DOALL", "tasks", "init"} {
		if !strings.Contains(r, want) {
			t.Fatalf("report missing %q:\n%s", want, r)
		}
	}
}

func TestCostScaleApplied(t *testing.T) {
	l := mkDOALL("l", 100, 1000, "a")
	p := &Program{Name: "p", Funcs: []*Function{{Name: "f", Body: []Node{l}}}}
	c, err := Compile(p, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	run := func(scale CostScale) int64 {
		layer := exec.NewSimLayer(sim.New(2, 1), exec.Costs{})
		u := virgil.NewUser(2)
		e, err := layer.Run(func(tc exec.TC) {
			u.Start(tc)
			c.RunVirgil(tc, u, scale)
			u.Stop(tc)
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	plain := run(nil)
	doubled := run(func(_ MemProfile, cost int64) int64 { return 2 * cost })
	if doubled < plain*3/2 {
		t.Fatalf("cost scale not applied: plain=%d doubled=%d", plain, doubled)
	}
}
