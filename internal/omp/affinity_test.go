package omp

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/ompt"
	"github.com/interweaving/komp/internal/places"
	"github.com/interweaving/komp/internal/sim"
)

// pairPartition builds a 4-place partition over the 8 test CPUs
// ({0,1},{2,3},{4,5},{6,7}) — small enough to reason about placements
// exactly.
func pairPartition(t *testing.T) *places.Partition {
	t.Helper()
	p, err := places.Parse("{0:2},{2:2},{4:2},{6:2}", places.Flat(8))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// bindRecorder collects ThreadBind events keyed by thread number.
type bindRecorder struct {
	mu  sync.Mutex
	cpu map[int32][]int32 // thread -> CPUs bound, in order
	occ map[int32][]int64 // thread -> occupancy (Arg1) per bind
}

func newBindRecorder(sp *ompt.Spine) *bindRecorder {
	r := &bindRecorder{cpu: map[int32][]int32{}, occ: map[int32][]int64{}}
	sp.On(func(ev ompt.Event) {
		r.mu.Lock()
		r.cpu[ev.Thread] = append(r.cpu[ev.Thread], int32(ev.Obj))
		r.occ[ev.Thread] = append(r.occ[ev.Thread], ev.Arg1)
		r.mu.Unlock()
	}, ompt.ThreadBind)
	return r
}

// TestProcBindSpreadPlacesWorkers pins the spread placement end to end:
// with 4 two-CPU places and a team of 4, each worker lands on the first
// CPU of its own place, on both layers, and the ThreadBind stream says
// so.
func TestProcBindSpreadPlacesWorkers(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 4, Bind: true,
		ProcBind: places.BindSpread}, func(rt *Runtime, tc exec.TC) {
		rt.opts.Places = pairPartition(t)
		sp := rt.spine
		rec := newBindRecorder(sp)
		var got [4]int32
		rt.Parallel(tc, 4, func(w *Worker) {
			got[w.id] = int32(w.tc.CPU())
		})
		want := [4]int32{0, 2, 4, 6}
		if got != want {
			t.Errorf("spread team CPUs = %v, want %v", got, want)
		}
		for th := int32(0); th < 4; th++ {
			cpus := rec.cpu[th]
			if len(cpus) == 0 || cpus[len(cpus)-1] != want[th] {
				t.Errorf("thread %d ThreadBind CPUs = %v, want last %d", th, cpus, want[th])
			}
		}
	})
}

// TestOversubscriptionSurfaced is the satellite-1 regression: more
// threads than CPUs used to stack workers silently via the modulo wrap.
// Now every stacked worker's ThreadBind event carries Arg1 > 0.
func TestOversubscriptionSurfaced(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 12, Bind: true}, func(rt *Runtime, tc exec.TC) {
		rec := newBindRecorder(rt.spine)
		rt.Parallel(tc, 12, func(w *Worker) {})
		stacked := 0
		seen := 0
		rec.mu.Lock()
		for _, occs := range rec.occ {
			for _, o := range occs {
				seen++
				if o > 0 {
					stacked++
				}
			}
		}
		rec.mu.Unlock()
		if seen < 12 {
			t.Fatalf("only %d ThreadBind events for a 12-thread team", seen)
		}
		// 12 threads over 8 CPUs: at least 4 workers must share a CPU
		// with a lower-numbered teammate.
		if stacked < 4 {
			t.Errorf("oversubscription not surfaced: %d events with Arg1 > 0, want >= 4", stacked)
		}
	})
}

// TestLegacyCloseMatchesModuloPlacement pins backward compatibility:
// Bind:true with no explicit policy still puts worker i on CPU i while
// the team fits the machine.
func TestLegacyCloseMatchesModuloPlacement(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var got [8]int32
		rt.Parallel(tc, 8, func(w *Worker) {
			got[w.id] = int32(w.tc.CPU())
		})
		want := [8]int32{0, 1, 2, 3, 4, 5, 6, 7}
		if got != want {
			t.Errorf("legacy close CPUs = %v, want %v", got, want)
		}
	})
}

// TestBindFalseMigrates: proc_bind(false) teams re-place workers between
// regions (the deterministic drift model), so two consecutive regions
// see different CPU assignments, and on the simulator the assignment is
// reproducible run to run.
func TestBindFalseMigrates(t *testing.T) {
	sample := func() [2][4]int32 {
		layer := exec.NewSimLayer(sim.New(8, 7), simCosts())
		rt := New(layer, Options{MaxThreads: 4, ProcBind: places.BindFalse})
		var got [2][4]int32
		layer.Run(func(tc exec.TC) {
			for r := 0; r < 2; r++ {
				region := r
				rt.Parallel(tc, 4, func(w *Worker) {
					got[region][w.id] = int32(w.tc.CPU())
				})
			}
			rt.Close(tc)
		})
		return got
	}
	a := sample()
	if a[0] == a[1] {
		t.Errorf("proc_bind(false) did not migrate between regions: %v", a)
	}
	for r := range a {
		// Slot 0 is the master (never migrated); pool workers must stay
		// on real CPUs so simulated contention still applies.
		for id := 1; id < 4; id++ {
			if a[r][id] < 0 || a[r][id] >= 8 {
				t.Fatalf("region %d worker %d on CPU %d, want [0,8)", r, id, a[r][id])
			}
		}
	}
	if b := sample(); a != b {
		t.Errorf("migration not deterministic: %v vs %v", a, b)
	}
}

// TestAffinityScheduleStableMapping: with a spread binding whose thread
// ids do not enumerate CPUs in order (master placed mid-partition), the
// affinity schedule deals block k to the worker with CPU rank k, and the
// mapping is identical across repeated loops.
func TestAffinityScheduleStableMapping(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 4, Bind: true,
		ProcBind: places.BindSpread}, func(rt *Runtime, tc exec.TC) {
		rt.opts.Places = pairPartition(t)
		const iters = 64
		var pass1, pass2 [iters]int32
		rt.Parallel(tc, 4, func(w *Worker) {
			cpu := int32(w.tc.CPU())
			w.ForEach(0, iters, ForOpt{Sched: Affinity}, func(i int) {
				atomic.StoreInt32(&pass1[i], cpu)
			})
			w.ForEach(0, iters, ForOpt{Sched: Affinity}, func(i int) {
				atomic.StoreInt32(&pass2[i], cpu)
			})
		})
		if pass1 != pass2 {
			t.Fatal("affinity chunk→cpu mapping changed between passes")
		}
		// Blocks ascend with CPU order: iteration i in block k runs on
		// the k-th smallest team CPU (0,2,4,6 under this spread).
		wantCPU := []int32{0, 2, 4, 6}
		for i := 0; i < iters; i++ {
			if want := wantCPU[i/(iters/4)]; pass1[i] != want {
				t.Fatalf("iter %d ran on CPU %d, want %d (full map %v)", i, pass1[i], want, pass1)
			}
		}
	})
}

// TestStealCountersSplitByLocality: a placed team's steals are split
// into same-socket and remote counters that sum to the total.
func TestStealCountersSplitByLocality(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		rt.Parallel(tc, 8, func(w *Worker) {
			if w.id == 0 {
				for i := 0; i < 64; i++ {
					w.Task(func(tw *Worker) { tw.TC().Charge(200) })
				}
			}
		})
		steals := rt.TaskSteals.Load()
		if steals == 0 {
			// Scheduling-dependent on the real layer: the producer may
			// drain its own flood. Nothing to assert, nothing broken.
			t.Log("flood drained without steals")
			return
		}
		if got := rt.LocalSteals.Load() + rt.RemoteSteals.Load(); got != steals {
			t.Errorf("locality split %d+%d != total steals %d",
				rt.LocalSteals.Load(), rt.RemoteSteals.Load(), steals)
		}
	})
}

// TestStealNearestPrefersNearRing: with places {0,1}{2,3}{4,5}{6,7} and
// a close-bound team of 8, worker 1 shares place 0 with worker 0. When
// only worker 0 has tasks, worker 1's nearest-first sweep steals from it
// via the same-place ring; the sweep order itself is pinned by unit
// tests in package places, here we assert the wiring (the runtime built
// rings and local steals dominate a same-place flood).
func TestStealNearestPrefersNearRing(t *testing.T) {
	layer := exec.NewSimLayer(sim.New(8, 7), simCosts())
	rt := New(layer, Options{MaxThreads: 8, Bind: true})
	rt.opts.Places = pairPartition(t)
	layer.Run(func(tc exec.TC) {
		rt.Parallel(tc, 8, func(w *Worker) {
			if w.id == 0 {
				for i := 0; i < 32; i++ {
					w.Task(func(tw *Worker) { tw.TC().Charge(100) })
				}
			}
		})
		rt.Close(tc)
	})
	if rt.TaskSteals.Load() == 0 {
		t.Fatal("no steals in a single-producer flood")
	}
	// Thieves were built with nearest-first rings: the team is placed
	// and StealAuto resolves to near, so every steal was classified.
	if rt.LocalSteals.Load()+rt.RemoteSteals.Load() != rt.TaskSteals.Load() {
		t.Error("near sweep did not classify every steal")
	}
}

// TestAffinityEnvParsing covers the new ICVs end to end through
// Options.Env.
func TestAffinityEnvParsing(t *testing.T) {
	lookupIn := func(env map[string]string) func(string) (string, bool) {
		return func(k string) (string, bool) { v, ok := env[k]; return v, ok }
	}
	var o Options
	err := o.Env(lookupIn(map[string]string{
		"OMP_PLACES":       "sockets",
		"OMP_PROC_BIND":    "spread",
		"KOMP_STEAL_ORDER": "rr",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if o.PlacesSpec != "sockets" || o.ProcBind != places.BindSpread || !o.Bind || o.StealOrder != StealRR {
		t.Errorf("parsed %+v", o)
	}
	for _, bad := range []map[string]string{
		{"OMP_PLACES": "nodes"},
		{"OMP_PLACES": "{0:"},
		{"OMP_PROC_BIND": "sideways"},
		{"KOMP_STEAL_ORDER": "far"},
	} {
		var o Options
		if err := o.Env(lookupIn(bad)); err == nil {
			t.Errorf("Env(%v): want error", bad)
		}
	}
	// proc_bind(false) must not flip the legacy Bind flag on.
	var off Options
	if err := off.Env(lookupIn(map[string]string{"OMP_PROC_BIND": "false"})); err != nil {
		t.Fatal(err)
	}
	if off.Bind || off.ProcBind != places.BindFalse {
		t.Errorf("proc_bind=false parsed as %+v", off)
	}
}

// TestScheduleParsingAffinity extends the OMP_SCHEDULE grammar.
func TestScheduleParsingAffinity(t *testing.T) {
	kind, chunk, err := ParseSchedule("affinity,8")
	if err != nil || kind != Affinity || chunk != 8 {
		t.Errorf("ParseSchedule(affinity,8) = %v,%d,%v", kind, chunk, err)
	}
	if Affinity.String() != "affinity" {
		t.Errorf("Affinity.String() = %q", Affinity.String())
	}
}

// TestAffinityResilientDegrade: an affinity loop in a resilient region
// degrades to exactly-once chunk claiming like static does.
func TestAffinityResilientDegrade(t *testing.T) {
	layer := exec.NewSimLayer(sim.New(8, 7), simCosts())
	rt := New(layer, Options{MaxThreads: 4, Bind: true, Resilient: true})
	var ran [128]int32
	layer.Run(func(tc exec.TC) {
		rt.Parallel(tc, 4, func(w *Worker) {
			w.ForEach(0, len(ran), ForOpt{Sched: Affinity}, func(i int) {
				atomic.AddInt32(&ran[i], 1)
			})
		})
		rt.Close(tc)
	})
	for i, n := range ran {
		if n != 1 {
			t.Fatalf("iteration %d ran %d times", i, n)
		}
	}
}
