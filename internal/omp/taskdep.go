package omp

import "github.com/interweaving/komp/internal/ompt"

// Task dependences (#pragma omp task depend(in/out/inout: x)). Per the
// spec, depend clauses order *sibling* tasks — tasks with the same
// parent — by the storage locations they name. The encountering thread
// resolves each new task's clauses against the parent's address →
// last-accessor map; a task with unfinished predecessors is held (not
// queued) and released by the completion of its last predecessor.

// DepMode is a depend clause's dependence type.
type DepMode uint8

// Dependence types.
const (
	// DepIn: the task reads the location. In tasks depend on the last
	// out/inout task, and any number of them run concurrently.
	DepIn DepMode = iota
	// DepOut: the task writes the location: it depends on the previous
	// writer and on every reader since.
	DepOut
	// DepInOut: read-modify-write; same ordering as DepOut.
	DepInOut
)

func (m DepMode) String() string {
	switch m {
	case DepOut:
		return "out"
	case DepInOut:
		return "inout"
	}
	return "in"
}

// Dep is one depend clause item: a mode and the storage location it
// names. Addr must be a pointer (any pointer type); tasks naming the
// same pointer are ordered, tasks naming different pointers are not —
// exactly the list-item aliasing rule of the spec.
type Dep struct {
	Mode DepMode
	Addr any
}

// In returns a depend(in: *addr) clause item.
func In(addr any) Dep { return Dep{Mode: DepIn, Addr: addr} }

// Out returns a depend(out: *addr) clause item.
func Out(addr any) Dep { return Dep{Mode: DepOut, Addr: addr} }

// InOut returns a depend(inout: *addr) clause item.
func InOut(addr any) Dep { return Dep{Mode: DepInOut, Addr: addr} }

// depEntry is the dependence state of one storage location within one
// task region: the last writer and the readers that followed it.
type depEntry struct {
	lastOut *task
	readers []*task
}

// depTracker is a parent task's address → last-accessor map. Only the
// thread currently executing the parent's body creates that parent's
// children, so the map needs no lock; the release path never touches
// it (it walks per-task successor lists instead).
type depTracker struct {
	last map[any]*depEntry
}

func (dt *depTracker) entry(addr any) *depEntry {
	if dt.last == nil {
		dt.last = make(map[any]*depEntry)
	}
	e := dt.last[addr]
	if e == nil {
		e = &depEntry{}
		dt.last[addr] = e
	}
	return e
}

// registerDeps resolves t's depend clauses against the parent's
// tracker, creating predecessor edges. It returns with t.npred holding
// the number of unfinished predecessors; the extra +1 the caller seeded
// keeps t unreleasable until the caller decides where it goes.
func (w *Worker) registerDeps(t *task, deps []Dep) {
	parent := t.parent
	if parent.deps == nil {
		parent.deps = &depTracker{}
	}
	dt := parent.deps
	for _, d := range deps {
		e := dt.entry(d.Addr)
		switch d.Mode {
		case DepIn:
			w.addDepEdge(e.lastOut, t)
			e.readers = append(e.readers, t)
		default: // DepOut, DepInOut
			w.addDepEdge(e.lastOut, t)
			for _, r := range e.readers {
				w.addDepEdge(r, t)
			}
			e.lastOut = t
			e.readers = e.readers[:0]
		}
	}
}

// addDepEdge makes succ wait on pred unless pred already finished (or
// is succ itself, via a duplicate clause address). npred is incremented
// before the edge is published in pred.succs: once pred's completion can
// see succ, the count already reflects the edge, so the release-side
// decrement cannot collide with the creator's phantom removal.
func (w *Worker) addDepEdge(pred, succ *task) {
	if pred == nil || pred == succ {
		return
	}
	pred.depMu.Lock()
	if pred.depDone {
		pred.depMu.Unlock()
		return
	}
	succ.npred.Add(1)
	pred.succs = append(pred.succs, succ)
	pred.depMu.Unlock()
	w.team.rt.TaskDepEdges.Add(1)
	w.emitTask(ompt.TaskDependence, succ.id, int64(pred.id))
}

// releaseDeps marks t finished for dependence purposes and releases
// every successor whose last predecessor t was; released tasks join
// this worker's deque.
func (w *Worker) releaseDeps(t *task) {
	t.depMu.Lock()
	t.depDone = true
	succs := t.succs
	t.succs = nil
	t.depMu.Unlock()
	w.releaseSuccs(succs)
}

func (w *Worker) releaseSuccs(succs []*task) {
	for _, s := range succs {
		if s.npred.Add(^uint32(0)) == 0 {
			if s.undeferred {
				// The encountering thread is in waitDeps, blocked on
				// npred or busy helping; it runs the body inline.
				w.tc.FutexWake(&s.npred, -1)
			} else {
				w.deque.push(w.tc, s)
				w.wakeThief()
			}
		}
	}
}
