package omp

import (
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/ompt"
)

// This file is the team barrier: the hierarchical combining-tree arrival
// (BarrierHier, the default), the flat central-counter arrival
// (BarrierFlat/BarrierTree), the tree release both share, the fused
// reduction combine, and the team-shrink removal paths.
//
// Hierarchical arrival: workers arrive at a fanout-k tree of per-node
// counters, each on its own cache line, so a full barrier costs O(k·log n)
// serialized line transfers on the critical path instead of n bounces on
// one central line. Each node tracks {remaining, alive}: arrivals and
// removals both count down `remaining`, and the decrement that takes a
// node to zero is the unique event that propagates one arrival to the
// parent — atomicity of the fetch-and-add makes the propagation
// exactly-once even when an arriving worker races a dying one.

// barNode is one node of the arrival tree. A leaf covers a group of up to
// fanout workers; an internal node covers a contiguous run of child
// nodes.
type barNode struct {
	line      exec.Line // the cache line this node's counters live on
	remaining exec.Word // arrivals still pending this round
	alive     exec.Word // live members (workers or child subtrees)
	mark      exec.Word // reduction round `partial` was combined for
	partial   float64   // combined contribution of this subtree
	// cancel is this subtree's copy of the team cancel bits under tree
	// propagation (cancel.go): pollers read their own leaf's copy — a
	// line shared by at most fanout siblings — instead of all missing on
	// one central line. cancelLine is the line those polls contend on.
	cancel     exec.Word
	cancelLine exec.Line
	parent     int // node index; -1 at the root
	first      int // first worker id (leaf) or first child node index
	count      int // member count
	leaf       bool
}

// barTree is a team's arrival tree. Nodes are stored level by level,
// leaves first, so an internal node's children are contiguous indices.
type barTree struct {
	nodes  []barNode
	leafOf []int // worker id -> leaf node index
	root   int
}

func newBarTree(n, fanout int) *barTree {
	bt := &barTree{leafOf: make([]int, n)}
	level := make([]int, 0, (n+fanout-1)/fanout)
	for s := 0; s < n; s += fanout {
		cnt := min(fanout, n-s)
		bt.nodes = append(bt.nodes, barNode{parent: -1, first: s, count: cnt, leaf: true})
		ni := len(bt.nodes) - 1
		level = append(level, ni)
		for i := s; i < s+cnt; i++ {
			bt.leafOf[i] = ni
		}
	}
	for len(level) > 1 {
		next := make([]int, 0, (len(level)+fanout-1)/fanout)
		for s := 0; s < len(level); s += fanout {
			cnt := min(fanout, len(level)-s)
			ni := len(bt.nodes)
			bt.nodes = append(bt.nodes, barNode{parent: -1, first: level[s], count: cnt})
			for j := 0; j < cnt; j++ {
				bt.nodes[level[s+j]].parent = ni
			}
			next = append(next, ni)
		}
		level = next
	}
	bt.root = level[0]
	for i := range bt.nodes {
		nd := &bt.nodes[i]
		nd.alive.Store(uint32(nd.count))
		nd.remaining.Store(uint32(nd.count))
	}
	return bt
}

// doomed reports whether this worker's CPU has been taken offline. The
// pw.team check scopes the doom to the worker's own dispatch: a pool
// worker acting as the master of an inner team runs that team on a
// Worker whose pw is nil, so the inner region always completes — and
// shrink drains inner teams — before the worker dies at an outer safe
// point.
func (w *Worker) doomed() bool {
	return w.pw != nil && w.pw.doom.Load() == 1 && w.pw.team == w.team
}

// die removes this worker from the team at a safe point and unwinds it
// out of the region body; the pool thread then exits for good.
func (w *Worker) die() {
	w.removeWorker(w.id)
	panic(offlineSignal{})
}

// Barrier synchronizes the team (a task scheduling point: waiting threads
// execute queued tasks, and the barrier completes only when the task pool
// is drained).
func (w *Worker) Barrier() {
	t := w.team
	if t.n == 1 {
		w.drainAllTasks()
		return
	}
	if w.doomed() {
		w.die() // safe point: leave the team instead of arriving
	}
	if t.parCancelled() {
		// The region is cancelled: this barrier is abandoned — arriving
		// could wait forever on threads that already skipped their
		// constructs. Every thread converges at the dedicated join
		// barrier instead (cancel.go).
		return
	}
	// SyncAcquire marks the arrival, SyncAcquired the release — emitted
	// on every exit path (completer and waiters alike), so per-thread
	// event sequences are identical regardless of who completes.
	w.emitSync(ompt.SyncAcquire, ompt.SyncBarrier, 0)
	tc := w.tc
	gen := t.barGen.Load()
	completed := false
	if t.bar != nil {
		// completed: this thread finished the root and released the team.
		completed = w.hierArrive()
	} else {
		c := tc.Costs()
		// Central arrival counter: every arrival bounces the same line.
		tc.Contend(&t.barLine, c.AtomicRMWNS+c.CacheLineXferNS)
		if arrived := t.barArrived.Add(1); arrived >= t.alive.Load() {
			w.finishBarrier(arrived - 1)
			completed = true
		}
	}
	if !completed {
		for t.barGen.Load() == gen {
			if t.parCancelled() {
				// Cancelled while waiting (publishCancel wakes parked
				// waiters): leave without release — the generation never
				// completes, and nothing downstream relies on it. The
				// arrival is balanced so per-thread event pairing holds.
				w.emitSync(ompt.SyncAcquired, ompt.SyncBarrier, 0)
				return
			}
			if t.pendingWork() {
				// The barrier is a task scheduling point: while the pool
				// is non-empty — own team first, then (once teams nest)
				// enclosing and sibling teams — waiters drain it instead
				// of sleeping.
				if !w.runOneTask() {
					tc.Yield()
				}
				continue
			}
			tag := t.addSleeper()
			if !t.pendingWork() {
				// Re-checked after publishing sleepers so a racing task
				// producer either sees this sleeper or this sleeper sees
				// its task (the wake itself can still slip between the
				// check and the wait; the completer's wake-all recovers).
				tc.FutexWait(&t.barGen, gen)
			}
			t.removeSleeper(tag)
		}
		if t.rt.opts.BarrierAlgo != BarrierFlat {
			w.treeRelease()
		}
	}
	if t.cancellable {
		// A worksharing cancellation retires at its construct's closing
		// barrier: the completer cleared the loop/sections bits, and
		// every thread re-bases its poll cache here so the next
		// construct starts clean.
		w.cancelSeen = t.cancelFlags.Load()
	}
	w.emitSync(ompt.SyncAcquired, ompt.SyncBarrier, 0)
}

// hierArrive walks this worker's arrival path up the tree. It returns
// true when this worker completed the root — i.e. it was the last live
// arrival and has already run finishHier (reset + release); the caller
// returns immediately. Otherwise the caller waits on barGen.
func (w *Worker) hierArrive() bool {
	t := w.team
	bt := t.bar
	c := w.tc.Costs()
	ni := bt.leafOf[w.id]
	for {
		nd := &bt.nodes[ni]
		// Siblings serialize on the node's line only; other subtrees
		// proceed in parallel.
		w.tc.Contend(&nd.line, c.AtomicRMWNS+c.CacheLineXferNS)
		if nd.remaining.Add(^uint32(0)) != 0 {
			return false
		}
		w.combineNode(ni)
		if nd.parent < 0 {
			w.finishHier(t.alive.Load() - 1)
			return true
		}
		ni = nd.parent
	}
}

// hierRemove is removeWorker's tree walk: the removed worker's leaf loses
// a member permanently (alive and remaining both count down). If that
// zeroes `remaining`, either the whole subtree is dead — the parent loses
// a child for good, and the removal recurses — or live siblings already
// arrived and the removal doubles as the subtree's completion, which
// propagates upward as an ordinary arrival.
func (w *Worker) hierRemove(id int) {
	t := w.team
	bt := t.bar
	c := w.tc.Costs()
	ni := bt.leafOf[id]
	removing := true
	for {
		nd := &bt.nodes[ni]
		w.tc.Contend(&nd.line, c.AtomicRMWNS+c.CacheLineXferNS)
		subtreeAlive := uint32(1)
		if removing {
			subtreeAlive = nd.alive.Add(^uint32(0))
		}
		if nd.remaining.Add(^uint32(0)) != 0 {
			return
		}
		if removing && subtreeAlive == 0 {
			// No survivors below: the parent's membership shrinks too.
			if nd.parent < 0 {
				return // whole team dead; nobody left to release
			}
			ni = nd.parent
			continue
		}
		// Live members of this subtree had all arrived; the removal
		// completes the node on their behalf.
		w.combineNode(ni)
		if nd.parent < 0 {
			// Every live thread is a waiter (the remover is not waiting).
			w.finishHier(t.alive.Load())
			return
		}
		ni = nd.parent
		removing = false
	}
}

// combineNode folds the node's reduction inputs into its partial when the
// barrier in flight is a fused reduction (redArmed ahead of redDone); a
// plain barrier skips it. Leaves fold their workers' contribution slots,
// internal nodes their children's partials — O(fanout) work per node in
// place of the per-thread O(n) scan of the two-barrier algorithm. Stale
// marks are slots of workers that died before contributing.
func (w *Worker) combineNode(ni int) {
	t := w.team
	round := t.redArmed.Load()
	if round == t.redDone.Load() {
		return
	}
	op := ReduceOp(t.redOp.Load())
	nd := &t.bar.nodes[ni]
	acc := op.Identity()
	if nd.leaf {
		for i := nd.first; i < nd.first+nd.count; i++ {
			if t.redMark[i] == round {
				acc = op.Apply(acc, t.redSlots[i])
			}
		}
	} else {
		for ci := nd.first; ci < nd.first+nd.count; ci++ {
			ch := &t.bar.nodes[ci]
			if ch.mark.Load() == round {
				acc = op.Apply(acc, ch.partial)
			}
		}
	}
	w.tc.Charge(int64(nd.count) * w.tc.Costs().CacheLineXferNS / 4)
	nd.partial = acc
	nd.mark.Store(round)
}

// finishHier completes a hierarchical barrier: drain the task pool,
// publish a fused reduction's result, re-arm every node for the next
// round (remaining := alive), bump the generation and release the
// waiters through the tree.
func (w *Worker) finishHier(waiters uint32) {
	t := w.team
	tc := w.tc
	if t.pending.Load() > 0 {
		// Recruit the parked team: woken waiters see the unchanged
		// generation and spin-drain alongside the completer instead of
		// sleeping through a serial drain.
		tc.FutexWake(&t.barGen, -1)
	}
	for t.pending.Load() > 0 {
		if !w.runOneTask() {
			tc.Yield()
		}
	}
	if round := t.redArmed.Load(); round != t.redDone.Load() {
		t.redResult = t.bar.nodes[t.bar.root].partial
		t.redDone.Store(round)
	}
	if t.cancellable {
		t.clearWSCancel()
	}
	for i := range t.bar.nodes {
		nd := &t.bar.nodes[i]
		nd.remaining.Store(nd.alive.Load())
	}
	t.relBudget.Store(waiters)
	t.barGen.Add(1)
	w.treeRelease()
}

// finishBarrier completes a flat or tree barrier on behalf of the last
// arrival (or of a dying worker whose removal satisfied the count).
// waiters is the number of threads blocked on barGen.
func (w *Worker) finishBarrier(waiters uint32) {
	t := w.team
	tc := w.tc
	if t.pending.Load() > 0 {
		tc.FutexWake(&t.barGen, -1) // recruit parked waiters as thieves
	}
	for t.pending.Load() > 0 {
		if !w.runOneTask() {
			tc.Yield()
		}
	}
	if round := t.redArmed.Load(); round != t.redDone.Load() {
		// Fused reduction, flat arrival: one O(n) scan by the completer
		// replaces the per-thread scans of the two-barrier algorithm.
		op := ReduceOp(t.redOp.Load())
		acc := op.Identity()
		for i := 0; i < t.n; i++ {
			if t.redMark[i] == round {
				acc = op.Apply(acc, t.redSlots[i])
			}
		}
		tc.Charge(int64(t.n) * tc.Costs().CacheLineXferNS / 4)
		t.redResult = acc
		t.redDone.Store(round)
	}
	if t.cancellable {
		t.clearWSCancel()
	}
	t.barArrived.Store(0)
	if t.rt.opts.BarrierAlgo == BarrierFlat {
		t.barGen.Add(1)
		// Wake storm: the single waker pays for every wake.
		tc.FutexWake(&t.barGen, -1)
		return
	}
	t.relBudget.Store(waiters)
	t.barGen.Add(1)
	w.treeRelease()
}

// treeRelease fans the post-barrier wake-up out: each released thread
// takes up to BarrierFanout wakes from the shared budget and issues them
// before going on, so the release completes in O(log n) wake latencies
// instead of one thread paying for all n.
func (w *Worker) treeRelease() {
	t := w.team
	tc := w.tc
	fan := t.rt.opts.BarrierFanout
	for k := 0; k < fan; k++ {
		n := t.relBudget.Load()
		if n == 0 {
			return
		}
		if !t.relBudget.CompareAndSwap(n, n-1) {
			k--
			continue
		}
		tc.FutexWake(&t.barGen, 1)
	}
}
