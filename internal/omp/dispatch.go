package omp

import "github.com/interweaving/komp/internal/exec"

// Dispatch buffers: each team owns a fixed ring of pre-allocated
// descriptors per construct kind (loops, singles), indexed by the
// construct's sequence number mod the ring size — libomp's
// __kmp_dispatch buffers. Claiming a buffer is one CAS on its slot; no
// structural lock is taken and nothing is allocated on the fast path.
//
// Buffers are tagged with seq+1 (so 0 means free). The fault-free
// retirement is the last of the team's n arrivals freeing the buffer. A
// worker that dies mid-construct makes that count unreachable; the
// buffer then lingers — bounded by the ring — until the ring wraps back
// onto it and the claimant of seq+dispatchRingSize reclaims it after
// proving it quiescent: every live worker's published progress counter
// is past the old construct, so no live thread can still touch it. (This
// is the fix for the descriptor leak the map-based design had, where an
// un-GC'd descriptor survived for the team's whole lifetime.)

const (
	dispatchRingSize = 8
	dispatchRingMask = dispatchRingSize - 1
)

// loopBuf is one dispatch ring slot for worksharing loops.
type loopBuf struct {
	claim exec.Word // tag (seq+1) that owns the slot; 0 = free
	ready exec.Word // tag once the descriptor below is initialized
	d     loopDesc
}

// singleBuf is one dispatch ring slot for single constructs.
type singleBuf struct {
	claim exec.Word // tag (seq+1) that owns the slot; 0 = free
	ready exec.Word // tag once usable
	won   exec.Word // CAS winner executes the single's body
	done  exec.Word // arrivals, for the fault-free retirement
	line  exec.Line // the line the winner CAS bounces on
}

// acquireLoop returns loop construct id's dispatch buffer, claiming and
// initializing it on first arrival. The caller must have published
// loopPos = id+1 beforehand (getLoop does).
func (w *Worker) acquireLoop(id uint32, lo, hi int, opt ForOpt) *loopBuf {
	t := w.team
	b := &t.loopRing[id&dispatchRingMask]
	tag := id + 1
	for {
		if b.ready.Load() == tag {
			return b
		}
		if b.claim.CompareAndSwap(0, tag) {
			d := &b.d
			chunk := opt.Chunk
			if chunk <= 0 {
				chunk = 1
			}
			d.lo, d.hi, d.chunk, d.sched = lo, hi, chunk, opt.Sched
			d.next.Store(0)
			d.done.Store(0)
			d.ordNext.Store(0)
			b.ready.Store(tag) // publish: claim's CAS + this Store order the plain writes
			return b
		}
		// The ring wrapped onto a construct from dispatchRingSize ago
		// that was never retired (a worker died before the last
		// arrival). Reclaim it once provably quiescent.
		if old := b.ready.Load(); old != 0 && old != tag && t.loopQuiescent(old) {
			t.freeLoop(b, old)
			continue
		}
		if w.doomed() {
			w.die() // safe point: nothing claimed from this construct yet
		}
		if t.parCancelled() {
			// Cancelled region: teammates may never prove the old slot
			// quiescent (they are en route to the join); the construct
			// is skipped. Callers treat nil as "construct cancelled".
			return nil
		}
		w.tc.Yield()
	}
}

// acquireSingle is acquireLoop for the single-construct ring.
func (w *Worker) acquireSingle(id uint32) *singleBuf {
	t := w.team
	b := &t.singleRing[id&dispatchRingMask]
	tag := id + 1
	for {
		if b.ready.Load() == tag {
			return b
		}
		if b.claim.CompareAndSwap(0, tag) {
			b.won.Store(0)
			b.done.Store(0)
			b.ready.Store(tag)
			return b
		}
		if old := b.ready.Load(); old != 0 && old != tag && t.singleQuiescent(old) {
			t.freeSingle(b, old)
			continue
		}
		if w.doomed() {
			w.die()
		}
		if t.parCancelled() {
			return nil // cancelled: see acquireLoop
		}
		w.tc.Yield()
	}
}

// loopQuiescent reports whether every live worker has moved past the
// loop construct with tag `tag` — its published position names a later
// construct, which it can only have entered after leaving this one.
// Removed workers are skipped: they will never touch the buffer again.
func (t *Team) loopQuiescent(tag uint32) bool {
	for _, ww := range t.workers {
		if ww.gone.Load() != 0 {
			continue
		}
		if ww.loopPos.Load() <= tag {
			return false
		}
	}
	return true
}

func (t *Team) singleQuiescent(tag uint32) bool {
	for _, ww := range t.workers {
		if ww.gone.Load() != 0 {
			continue
		}
		if ww.singlePos.Load() <= tag {
			return false
		}
	}
	return true
}

// freeLoop retires a loop buffer. CAS-guarded so a racing fast-path
// retirement and a quiescence rescue free it exactly once; ready drops
// first so late claimants never see a half-freed slot.
func (t *Team) freeLoop(b *loopBuf, tag uint32) {
	if b.ready.CompareAndSwap(tag, 0) {
		b.claim.CompareAndSwap(tag, 0)
	}
}

func (t *Team) freeSingle(b *singleBuf, tag uint32) {
	if b.ready.CompareAndSwap(tag, 0) {
		b.claim.CompareAndSwap(tag, 0)
	}
}
