package omp

// Taskloop and collapse: the task-generating loop construct (#pragma omp
// taskloop) and multi-dimensional loop collapsing (collapse(2)) — the
// OpenMP features NAS-style codes lean on for nested grids and irregular
// loop bodies.

// TaskloopOpt configures a taskloop.
type TaskloopOpt struct {
	// Grainsize is the iterations per generated task (0: the runtime
	// picks ~2 tasks per thread).
	Grainsize int
	// NumTasks overrides the task count directly (wins over Grainsize).
	NumTasks int
	// NoGroup elides the implicit taskwait at the end (nogroup clause).
	NoGroup bool
}

// Taskloop partitions [lo, hi) into tasks executed by the team's task
// subsystem. Unlike a worksharing For, a single thread encounters the
// construct and generates the tasks; the team executes them at task
// scheduling points. The body receives the *executing* worker (tasks
// migrate across threads). Unless NoGroup, generation runs inside an
// implicit Taskgroup, so the construct waits on exactly the tasks it
// generated (and their descendants) — not on unrelated sibling tasks
// the encountering thread created earlier, which a trailing Taskwait
// would also block on.
func (w *Worker) Taskloop(lo, hi int, opt TaskloopOpt, body func(w *Worker, i int)) {
	if opt.NoGroup {
		w.taskloopGen(lo, hi, opt, body)
		return
	}
	w.Taskgroup(func(gw *Worker) {
		gw.taskloopGen(lo, hi, opt, body)
	})
}

// taskloopGen generates the taskloop's tasks into the current group.
func (w *Worker) taskloopGen(lo, hi int, opt TaskloopOpt, body func(w *Worker, i int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	tasks := opt.NumTasks
	if tasks <= 0 {
		if opt.Grainsize > 0 {
			tasks = (n + opt.Grainsize - 1) / opt.Grainsize
		} else {
			tasks = 2 * w.team.n
		}
	}
	if tasks > n {
		tasks = n
	}
	for t := 0; t < tasks; t++ {
		if w.team.cancellable &&
			(w.team.parCancelled() || w.groupCancelled(w.curGroup)) {
			// Cancelled: stop generating. Already-created members are
			// drained (bodies discarded) by the group's end wait.
			break
		}
		tlo := lo + t*n/tasks
		thi := lo + (t+1)*n/tasks
		w.Task(func(tw *Worker) {
			for i := tlo; i < thi; i++ {
				body(tw, i)
			}
		})
	}
}

// ForCollapse2 executes a collapse(2) worksharing loop over the
// rectangular iteration space [0,ni) x [0,nj): the two loops are fused
// into one ni*nj space before scheduling, exactly as the collapse clause
// specifies — the fix for outer loops too short to feed wide teams.
func (w *Worker) ForCollapse2(ni, nj int, opt ForOpt, body func(i, j int)) {
	w.ForEach(0, ni*nj, opt, func(flat int) {
		body(flat/nj, flat%nj)
	})
}

// ForCollapse3 is collapse(3) over [0,ni) x [0,nj) x [0,nk).
func (w *Worker) ForCollapse3(ni, nj, nk int, opt ForOpt, body func(i, j, k int)) {
	w.ForEach(0, ni*nj*nk, opt, func(flat int) {
		i := flat / (nj * nk)
		rem := flat % (nj * nk)
		body(i, rem/nk, rem%nk)
	})
}
