package omp

import (
	"fmt"
	"sync/atomic"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/ompt"
	"github.com/interweaving/komp/internal/places"
)

// Team is the shared state of one parallel region.
type Team struct {
	rt     *Runtime
	n      int
	fn     func(*Worker)
	region uint64 // spine region id

	// Nesting chain: parent is the enclosing team, parentW the worker of
	// it that forked this team (both nil at top level). level counts
	// every enclosing region including serialized ones (omp_get_level);
	// activeLevel counts only teams of size > 1 (omp_get_active_level).
	parent      *Team
	parentW     *Worker
	level       int
	activeLevel int

	workers []*Worker

	// pws is the team's worker lease: pws[i] is the pool worker bound to
	// team slot i (pws[0] is nil — slot 0 is the encountering thread).
	// Held until the team is released back to the pool.
	pws []*poolWorker

	// cpus is the region's placement: cpus[i] is the CPU the binding
	// policy assigned to team slot i (nil when workers are unmanaged).
	// The worksharing Affinity schedule and the nearest-first steal
	// order key on it. placedCPU is the master CPU cpus was computed
	// for, so a reused hot team only recomputes placement when the
	// encountering thread moved.
	cpus      []int
	placedCPU int
	// migrate marks a proc_bind(false) team: workers are re-bound to a
	// deterministic per-region rotation, modeling unbound threads
	// drifting under a general-purpose scheduler.
	migrate bool

	// alive is the live team size: n minus workers lost to CPU-offline
	// faults. On a fault-free run it stays n, and every comparison
	// against it degenerates to the classic fixed-size protocol.
	alive exec.Word
	// resilient mirrors Options.Resilient for the region.
	resilient bool

	// subActive is a set-once flag: some worker of this team has forked
	// an inner team at least once. Barrier and join wait loops only look
	// across team boundaries for stealable work when it is set, so flat
	// (non-nesting) regions pay nothing for the nested-steal path.
	subActive exec.Word

	// Join/explicit barrier state. bar is the hierarchical arrival tree
	// (BarrierHier, the default); barArrived/barLine are the central
	// counter the flat and tree algorithms arrive on.
	bar        *barTree
	barGen     exec.Word
	barArrived exec.Word
	barLine    exec.Line
	relBudget  exec.Word // tree-release wake budget

	// Cancellation (cancel.go). cancellable mirrors the OMP_CANCELLATION
	// ICV; with it off none of the fields below are ever touched and
	// every cancellation check in the runtime is one branch on the bool.
	// cancelFlags is the authoritative cancel-bit word; cancelLine is
	// the one hot line all pollers miss on under flat propagation (under
	// tree propagation the bits ride the barrier tree's per-node lines
	// instead). joinGen/joinArrived/joinLine are the dedicated join
	// barrier of a cancellable region: inner barriers may be abandoned
	// by a cancel, so the region's join must not share their generation
	// counter (libomp's plain vs fork-join barrier split).
	cancellable bool
	cancelTree  bool // propagate cancel bits down the barrier tree
	cancelFlags exec.Word
	cancelLine  exec.Line
	joinGen     exec.Word
	joinArrived exec.Word
	joinLine    exec.Line

	// Worksharing state: fixed rings of pre-allocated construct
	// descriptors indexed by construct sequence (libomp's dispatch
	// buffers) — no structural lock, no per-construct allocation.
	loopRing   [dispatchRingSize]loopBuf
	singleRing [dispatchRingSize]singleBuf
	sections   exec.Word

	// Tasking.
	pending exec.Word // tasks created and not yet finished
	// sleepers counts threads parked in a barrier's futex wait — a task
	// producer wakes one per ready task (and the barrier completer wakes
	// all before draining), so a parked team turns into thieves instead
	// of sleeping through the drain. The word is epoch-tagged (high half
	// a region epoch, low half the count; see addSleeper/removeSleeper):
	// a join's released waiters decrement only after they resume, which
	// on a reused hot team can be after the master has already forked
	// the next region, and those stragglers are awake — counting them
	// would make the next region's producers pay futex wakes for
	// sleepers that do not exist.
	sleepers exec.Word

	// Reduction state: per-thread contribution slots plus the fused
	// combine-at-barrier protocol. redMark[i] is the reduction round
	// slot i was written for, so the combine skips slots of workers
	// that died before contributing. redArmed/redDone track whether the
	// barrier in flight is a reduction barrier; redResult is the
	// combined value the completer broadcasts before the release.
	redSlots  []float64
	redMark   []uint32
	redOp     exec.Word
	redArmed  exec.Word
	redDone   exec.Word
	redResult float64

	// Copyprivate broadcast slot.
	cpVal any

	// atomicLine is the line shared atomics bounce on.
	atomicLine exec.Line
}

// Parallel runs fn on a team of n threads (0 means the default ICV). The
// calling thread becomes thread 0 of the team; pool workers are leased
// and dispatched through the fork tree. Parallel returns after the
// implicit join barrier.
func (rt *Runtime) Parallel(tc exec.TC, n int, fn func(*Worker)) {
	rt.parallel(tc, nil, n, fn)
}

// Parallel forks a nested parallel region from inside an enclosing one:
// this worker becomes thread 0 of a real inner team leased from the
// shared pool (serialized instead when OMP_MAX_ACTIVE_LEVELS is reached
// or no pool workers are free). It returns after the inner join.
func (w *Worker) Parallel(n int, fn func(*Worker)) {
	w.team.rt.parallel(w.tc, w, n, fn)
}

// masterGid is the physical identity a team's slot-0 worker inherits:
// forking never migrates the encountering thread, so the master of an
// inner team carries its parent worker's gid; the top-level encountering
// thread is -1 (it is not a pool worker).
func masterGid(parent *Worker) int32 {
	if parent == nil {
		return -1
	}
	return parent.gid
}

func (rt *Runtime) parallel(tc exec.TC, parent *Worker, n int, fn func(*Worker)) {
	level, active := 1, 0
	var parentRegion uint64
	if parent != nil {
		level = parent.team.level + 1
		active = parent.team.activeLevel
		parentRegion = parent.team.region
	}
	if n <= 0 {
		n = rt.threadsAt(level)
	}
	if n > rt.opts.MaxThreads {
		n = rt.opts.MaxThreads
	}
	if active >= rt.opts.MaxActiveLevels && n > 1 {
		n = 1 // OMP_MAX_ACTIVE_LEVELS reached: serialize this region
	}
	region := uint64(rt.Regions.Add(1))
	sp := rt.spine
	if sp.Enabled(ompt.ParallelBegin) {
		sp.Emit(ompt.Event{Kind: ompt.ParallelBegin, CPU: int32(tc.CPU()),
			TimeNS: tc.Now(), Region: region, Level: int32(level),
			Tenant: rt.opts.Tenant, Obj: parentRegion, Arg0: int64(n)})
	}
	if n == 1 {
		// Serialized region: no team machinery (but a deadline still
		// arms — a serialized region can cancel its own loops/tasks).
		team := rt.serialTeam(parent, fn)
		team.region = region
		stop := rt.armDeadline(tc, team)
		w := team.workers[0]
		w.tc = tc
		w.gid = masterGid(parent)
		if parent != nil {
			// Register as the parent's sub-team so an outer cancel
			// reaches this region's loops and tasks.
			parent.sub.Store(team)
			parent.team.subActive.Store(1)
		}
		w.emitPlain(ompt.ImplicitTaskBegin, 0, 0)
		fn(w)
		w.drainAllTasks()
		w.emitPlain(ompt.ImplicitTaskEnd, 0, 0)
		if parent != nil {
			parent.sub.Store(nil)
			parent.serialChild = team
		} else if !rt.serial.CompareAndSwap(nil, team) {
			// A concurrent serialized region already parked its team;
			// drop this one (releasing any nested leases its worker
			// accumulated — a serial team itself holds none).
			rt.releaseTeam(team)
		}
		if stop != nil {
			stop()
		}
	} else {
		rt.ensurePool(tc)
		team, hc := rt.hotTeam(parent, n, fn)
		n = team.n // a lease shortfall builds a smaller team
		team.region = region
		rt.placeTeam(team, tc.CPU())
		stop := rt.armDeadline(tc, team)
		master := team.workers[0]
		master.tc = tc
		master.gid = masterGid(parent)
		if parent != nil {
			parent.sub.Store(team)
			parent.team.subActive.Store(1)
			if team.cancellable && team.ancestorCancelled() {
				// Forked under an already-cancelled ancestor: cancel this
				// region up front so it converges straight at its join.
				if team.publishCancel(tc, cancelBitParallel) && sp.Enabled(ompt.Cancel) {
					sp.Emit(ompt.Event{Kind: ompt.Cancel, Thread: -1,
						CPU: int32(tc.CPU()), TimeNS: tc.Now(), Region: region,
						Level: int32(level), Tenant: rt.opts.Tenant,
						Arg0: int64(CancelParallel), Arg1: cancelActivated})
				}
			}
		}
		if team.cpus != nil {
			master.emitBind(team.cpus[0])
		}
		// Tree fork: the master dispatches only its fanout children; woken
		// workers forward the rest, so the serialized fork cost on the
		// master is O(fanout · log n) instead of the linear wake loop.
		master.forkChildren()
		master.emitPlain(ompt.ImplicitTaskBegin, 0, 0)
		fn(master)
		master.join() // implicit join barrier
		master.emitPlain(ompt.ImplicitTaskEnd, 0, 0)
		if parent != nil {
			parent.sub.Store(nil)
		}
		if parent != nil && rt.opts.NestedPool == NestedPoolReturn {
			// Lease policy "return": give the workers back at every
			// join instead of keeping the inner team hot.
			rt.releaseTeam(team)
		} else {
			// Park the team back in its site's cache. It was out of the
			// cache for the whole region, so a concurrent Parallel on
			// this runtime can never have claimed it; anything the LRU
			// bound pushes out goes back to the pool.
			for _, ev := range hc.put(team) {
				rt.releaseTeam(ev)
			}
		}
		if stop != nil {
			stop()
		}
	}
	if sp.Enabled(ompt.ParallelEnd) {
		sp.Emit(ompt.Event{Kind: ompt.ParallelEnd, CPU: int32(tc.CPU()),
			TimeNS: tc.Now(), Region: region, Level: int32(level),
			Tenant: rt.opts.Tenant, Obj: parentRegion, Arg0: int64(n)})
	}
}

// hotTeam claims a team for the region from the nesting site's hot-team
// cache — the top-level cache rt.hot when parent is nil, the forking
// worker's hotChild otherwise — or builds a fresh one over a new lease
// when no cached team of size n is reusable. The claimed team is out of
// the cache while the region runs (parallel parks it back at the join),
// so concurrent regions on one runtime never share a team. A reused
// team costs nothing to "construct": the repeated-region path stays
// allocation-free. Returns the cache the join must park the team in.
func (rt *Runtime) hotTeam(parent *Worker, n int, fn func(*Worker)) (*Team, *hotCache) {
	hc := rt.hot
	if parent != nil {
		if parent.hotChild == nil {
			parent.hotChild = newHotCache(rt.opts.HotTeamsMax)
		}
		hc = parent.hotChild
	}
	for {
		cached := hc.take(n)
		if cached == nil {
			break
		}
		if rt.reusable(cached, n) {
			cached.fn = fn
			cached.resetRegionState()
			return cached, hc
		}
		// Stale (shrunk, doomed, cancel residue): return its lease and
		// try the next entry of this size, if any.
		rt.releaseTeam(cached)
	}
	p := rt.pool.Load()
	leased := p.lease(n - 1)
	if len(leased) < n-1 && hc.size() > 0 {
		// Lease shortfall while idle teams sit in this site's cache:
		// their parked workers are exactly the capacity the pool lacks.
		// Evict them all and re-lease before settling for a smaller team.
		for _, ev := range hc.drain() {
			rt.releaseTeam(ev)
		}
		leased = append(leased, p.lease(n-1-len(leased))...)
	}
	n = 1 + len(leased)
	t := newTeam(rt, parent, n, fn)
	t.pws = make([]*poolWorker, n)
	for i, pw := range leased {
		t.pws[i+1] = pw
		pw.slot = i + 1
	}
	return t, hc
}

// resetRegionState restores per-region scheduler state on a reused hot
// team so the region is indistinguishable — in scheduling decisions and
// in the simulated timeline — from one running on a freshly built team:
// steal cursors start their victim rotation cold, and each deque is
// back at initial capacity with a cold top line (growth is re-charged
// per region, as a fresh team would). Cache state proper (the worker
// lease, the barrier tree, placement) is exactly what hot reuse keeps.
func (t *Team) resetRegionState() {
	for _, w := range t.workers {
		w.stealRR = 0
		w.stealCur = [3]int{}
		w.deque.reset()
	}
	// New sleeper epoch: stragglers still draining out of the previous
	// region's join no longer count as parked (they are awake).
	t.sleepers.Store(((t.sleepers.Load() >> sleepEpochShift) + 1) << sleepEpochShift)
}

// sleepEpochShift splits the sleepers word: the high half is the region
// epoch, the low half the count of threads currently parked in a futex
// wait on this team's barriers.
const sleepEpochShift = 16

// addSleeper publishes this thread as parked and returns the tag its
// matching removeSleeper must present.
func (t *Team) addSleeper() uint32 { return t.sleepers.Add(1) }

// removeSleeper withdraws a sleeper published under tag. If the region
// epoch has moved on — the team was reused while this thread was still
// resuming from the old region's release — the count was already reset
// and there is nothing to withdraw.
func (t *Team) removeSleeper(tag uint32) {
	for {
		cur := t.sleepers.Load()
		if cur>>sleepEpochShift != tag>>sleepEpochShift {
			return
		}
		if t.sleepers.CompareAndSwap(cur, cur-1) {
			return
		}
	}
}

// parkedSleepers returns the current epoch's parked-thread count.
func (t *Team) parkedSleepers() uint32 {
	return t.sleepers.Load() & (1<<sleepEpochShift - 1)
}

// reusable reports whether a cached hot team can serve another region of
// the requested size unchanged: same size, nobody lost to faults, no
// leased worker doomed or dead, and — for cancellable teams — no cancel
// bits or deadline in flight (a cancelled region's barrier trees hold
// half-completed generations, and on the real layer a deadline alarm can
// race the join; both rebuild instead of reusing).
func (rt *Runtime) reusable(t *Team, n int) bool {
	if t.n != n || int(t.alive.Load()) != n {
		return false
	}
	for _, pw := range t.pws[1:] {
		if pw == nil || pw.dead.Load() == 1 || pw.doom.Load() == 1 {
			return false
		}
	}
	if t.cancellable && (t.cancelFlags.Load() != 0 || rt.opts.RegionDeadlineNS != 0) {
		return false
	}
	return true
}

// releaseTeam returns a team's lease (and, recursively, the leases of
// any inner hot teams its workers cached) to the pool.
func (rt *Runtime) releaseTeam(t *Team) {
	for _, w := range t.workers {
		if w.hotChild != nil {
			for _, c := range w.hotChild.drain() {
				rt.releaseTeam(c)
			}
			w.hotChild = nil
		}
		if w.serialChild != nil {
			rt.releaseTeam(w.serialChild)
			w.serialChild = nil
		}
	}
	if len(t.pws) > 1 {
		if p := rt.pool.Load(); p != nil {
			p.release(t.pws[1:])
		}
	}
	t.pws = nil
}

// serialTeam claims the cached single-thread team for a serialized
// region (the top-level slot rt.serial, or the forking worker's
// serialChild), rebuilding only when cancellation state could have
// leaked from a previous region. Like hotTeam, the claim removes the
// team from its slot — parallel parks it back after the region — so
// concurrent serialized regions on one runtime never share it.
func (rt *Runtime) serialTeam(parent *Worker, fn func(*Worker)) *Team {
	var cached *Team
	if parent == nil {
		cached = rt.serial.Swap(nil)
	} else {
		cached, parent.serialChild = parent.serialChild, nil
	}
	if cached != nil &&
		(!cached.cancellable ||
			(cached.cancelFlags.Load() == 0 && rt.opts.RegionDeadlineNS == 0)) {
		cached.fn = fn
		cached.resetRegionState()
		return cached
	}
	if cached != nil {
		// Cancel residue: rebuild, returning any nested leases the stale
		// team's worker accumulated.
		rt.releaseTeam(cached)
	}
	return newTeam(rt, parent, 1, fn)
}

func newTeam(rt *Runtime, parent *Worker, n int, fn func(*Worker)) *Team {
	rt.teamBuilds.Add(1)
	t := &Team{
		rt:        rt,
		n:         n,
		fn:        fn,
		workers:   make([]*Worker, n),
		redSlots:  make([]float64, n),
		redMark:   make([]uint32, n),
		parentW:   parent,
		level:     1,
		placedCPU: -1,
	}
	if parent != nil {
		t.parent = parent.team
		t.level = parent.team.level + 1
		t.activeLevel = parent.team.activeLevel
	}
	if n > 1 {
		t.activeLevel++
	}
	t.alive.Store(uint32(n))
	t.resilient = rt.opts.Resilient
	for i := 0; i < n; i++ {
		t.workers[i] = &Worker{team: t, id: i, deque: newTaskDeque(rt.opts.TaskDeque)}
	}
	if n > 1 && rt.opts.BarrierAlgo == BarrierHier {
		t.bar = newBarTree(n, rt.opts.BarrierFanout)
	}
	t.cancellable = rt.opts.Cancellation
	t.cancelTree = t.cancellable && t.bar != nil &&
		rt.opts.CancelProp != CancelPropFlat
	return t
}

// placeTeam computes the region's worker placement from the binding
// policy at the team's nesting level: master/close/spread assign each
// slot a CPU of its place (an inner team subpartitions its master's
// place), proc_bind(false) arms per-region migration, and the legacy
// unmanaged mode (no ProcBind, Bind off) leaves the team placement-free.
// A reused hot team keeps its placement while the encountering thread
// stays put.
func (rt *Runtime) placeTeam(t *Team, masterCPU int) {
	switch bind := rt.procBindAt(t.level); bind {
	case places.BindDefault:
	case places.BindFalse:
		t.migrate = true
	default:
		if t.cpus != nil && t.placedCPU == masterCPU {
			return
		}
		if t.level > 1 {
			t.cpus = rt.opts.Places.AssignNested(t.n, bind, masterCPU)
		} else {
			t.cpus = rt.opts.Places.Assign(t.n, bind, masterCPU)
		}
		t.placedCPU = masterCPU
		for _, w := range t.workers {
			// The nearest-first steal order is keyed on cpus: recompute
			// lazily against the new placement.
			w.stealOrder, w.stealRings = nil, nil
		}
	}
}

// slotCPU returns the CPU team slot id runs the region on: its assigned
// place CPU under a managed binding, or — under proc_bind(false) — a
// deterministic per-generation rotation that models unbound threads
// drifting across the machine. ok is false for unmanaged teams.
func (t *Team) slotCPU(id int, gen uint32) (cpu int, ok bool) {
	if t.cpus != nil {
		return t.cpus[id], true
	}
	if t.migrate {
		return (id + int(gen)*7) % t.rt.layer.NumCPUs(), true
	}
	return 0, false
}

// Worker is a thread's view of a parallel region: the receiver for every
// OpenMP construct.
type Worker struct {
	tc   exec.TC
	team *Team
	id   int
	pw   *poolWorker // nil for team masters and serialized regions
	// gid is the stable physical-worker identity carried on every
	// emitted event (ompt.Event.Gid): the pool-worker id for leased
	// slots, -1 for the encountering thread and the masters of every
	// team it forks down the nesting chain.
	gid int32

	// sub is the inner team this worker is currently master of (set for
	// the duration of a nested Parallel, nil otherwise): cancel
	// publication descends through it, and teammates waiting at barriers
	// steal from it.
	sub atomic.Pointer[Team]
	// hotChild / serialChild cache this worker's inner teams between
	// nested regions — the per-(nesting site, size) hot-team cache,
	// bounded by KOMP_HOT_TEAMS_MAX. The leases they hold are returned
	// when the enclosing team is released, when the LRU bound evicts, or
	// at every inner join under KOMP_NESTED_POOL=return.
	hotChild    *hotCache
	serialChild *Team

	// Per-thread construct sequence counters (each thread encounters the
	// same constructs in the same order — the SPMD contract).
	loopSeen    uint32
	singleSeen  uint32
	sectionSeen uint32
	redSeen     uint32

	// Published progress: the sequence tag (seq+1) of the latest loop /
	// single construct this worker entered, and whether the worker has
	// been removed from the team. Teammates read these to prove an old
	// dispatch buffer quiescent before reclaiming it.
	loopPos   exec.Word
	singlePos exec.Word
	gone      exec.Word

	// cancelSeen is this worker's private copy of the team cancel bits
	// it has already observed (and paid the coherence miss for): a poll
	// that reads a value equal to cancelSeen is a shared-state cache hit
	// and costs nothing.
	cancelSeen uint32

	// Tasking.
	deque    taskDeque
	curTask  *task
	curGroup *taskgroup
	stealRR  int
	// stealOrder/stealRings are the nearest-first victim sweep — teammate
	// slots ordered same place, same socket, then remote by distance —
	// built lazily at this worker's first steal of a placed team;
	// stealCur rotates each ring independently.
	stealOrder []int
	stealRings []int
	stealCur   [3]int
}

// placeRank returns this worker's rank in the team's CPU order (ties by
// thread id) — the key the Affinity schedule partitions by — or the
// thread id itself when the team has no placement.
func (w *Worker) placeRank() int {
	cpus := w.team.cpus
	if cpus == nil {
		return w.id
	}
	my := cpus[w.id]
	r := 0
	for j, c := range cpus {
		if c < my || (c == my && j < w.id) {
			r++
		}
	}
	return r
}

// forkChildren dispatches this worker's children in the fork tree — a
// ForkFanout-ary heap over team slots 0..n-1 — writing each child's work
// descriptor and waking it. The master seeds the tree and every woken
// worker forwards its own children, replacing the master's linear wake
// loop with an O(log n) critical path.
func (w *Worker) forkChildren() {
	t := w.team
	k := t.rt.opts.ForkFanout
	for j := 1; j <= k; j++ {
		c := w.id*k + j
		if c >= t.n {
			return
		}
		w.dispatchSlot(c)
	}
}

// dispatchSlot forks team slot c. A dead or doomed slot is removed from
// the team here and its orphaned subtree adopted: this worker dispatches
// the grandchildren itself, so a dead interior node never strands its
// descendants.
func (w *Worker) dispatchSlot(c int) {
	t := w.team
	pw := t.pws[c]
	if pw.dead.Load() == 1 || pw.doom.Load() == 1 {
		// The slot's CPU is offline: fork nothing and shrink the team.
		w.removeWorker(c)
		k := t.rt.opts.ForkFanout
		for j := 1; j <= k; j++ {
			gc := c*k + j
			if gc >= t.n {
				return
			}
			w.dispatchSlot(gc)
		}
		return
	}
	pw.team = t
	w.tc.Charge(t.rt.opts.ForkChargeNS + w.tc.Costs().CacheLineXferNS)
	pw.gate.Add(1)
	w.tc.FutexWake(&pw.gate, 1)
}

// removeWorker takes team slot id (possibly this worker itself, on the
// die path) out of the team: the live count shrinks, and if the removal
// is what a barrier in flight was waiting on, the barrier is completed
// on the removed worker's behalf — through the arrival tree under the
// hierarchical algorithm, against the central counter otherwise.
func (w *Worker) removeWorker(id int) {
	t := w.team
	t.workers[id].gone.Store(1)
	alive := t.alive.Add(^uint32(0))
	w.emitPlain(ompt.ShrinkTeam, int64(id), int64(alive))
	if t.cancellable {
		// The removed worker may have been the arrival the dedicated
		// join barrier was waiting on — a team that shrinks and cancels
		// at the same barrier still converges at the join.
		if ja := t.joinArrived.Load(); alive > 0 && ja > 0 && ja >= alive {
			w.finishJoin()
		}
	}
	if t.bar != nil {
		w.hierRemove(id)
		return
	}
	if arrived := t.barArrived.Load(); alive > 0 && arrived > 0 && arrived >= alive {
		w.finishBarrier(arrived)
	}
}

// TC returns the worker's thread context.
func (w *Worker) TC() exec.TC { return w.tc }

// Wtime returns elapsed seconds since the layer started — omp_get_wtime
// (wall-clock on real goroutines, virtual time on the simulator).
func (w *Worker) Wtime() float64 { return float64(w.tc.Now()) / 1e9 }

// InParallel reports whether any enclosing parallel region is active
// (team size > 1) — omp_in_parallel. A serialized region nested inside
// an active one still reports true; a top-level serialized region
// reports false.
func (w *Worker) InParallel() bool { return w.team.activeLevel > 0 }

// Level returns the nesting level of the enclosing parallel region —
// omp_get_level. Serialized regions count: 1 inside any top-level
// region, 2 inside a region forked from it, 0 never (a Worker only
// exists inside a region).
func (w *Worker) Level() int { return w.team.level }

// ActiveLevel returns the number of enclosing active (team size > 1)
// parallel regions — omp_get_active_level.
func (w *Worker) ActiveLevel() int { return w.team.activeLevel }

// AncestorThreadNum returns the thread number of this thread's ancestor
// at nesting level level — omp_get_ancestor_thread_num. Level 0 is the
// initial thread (always 0), level Level() the thread itself; out of
// range returns -1.
func (w *Worker) AncestorThreadNum(level int) int {
	if level < 0 || level > w.team.level {
		return -1
	}
	if level == 0 {
		return 0
	}
	x := w
	for x.team.level > level {
		x = x.team.parentW
	}
	return x.id
}

// TeamSize returns the size of the team at nesting level level —
// omp_get_team_size. Level 0 is the implicit initial team of size 1;
// out of range returns -1.
func (w *Worker) TeamSize(level int) int {
	if level < 0 || level > w.team.level {
		return -1
	}
	if level == 0 {
		return 1
	}
	x := w
	for x.team.level > level {
		x = x.team.parentW
	}
	return x.team.n
}

// MaxThreads returns the pool capacity — omp_get_max_threads.
func (w *Worker) MaxThreads() int { return w.team.rt.opts.MaxThreads }

// ThreadNum returns the OpenMP thread number (omp_get_thread_num).
func (w *Worker) ThreadNum() int { return w.id }

// NumThreads returns the team size (omp_get_num_threads).
func (w *Worker) NumThreads() int { return w.team.n }

// NumAlive returns the live team size: NumThreads minus workers lost to
// CPU-offline faults. Equal to NumThreads on a fault-free run.
func (w *Worker) NumAlive() int { return int(w.team.alive.Load()) }

// Runtime returns the owning runtime.
func (w *Worker) Runtime() *Runtime { return w.team.rt }

// Master runs fn on thread 0 only (no implied barrier).
func (w *Worker) Master(fn func()) {
	if w.id == 0 {
		fn()
	}
}

// String aids debugging.
func (w *Worker) String() string {
	return fmt.Sprintf("omp-worker(%d/%d@L%d)", w.id, w.team.n, w.team.level)
}
