package omp

import (
	"fmt"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/ompt"
	"github.com/interweaving/komp/internal/places"
	"github.com/interweaving/komp/internal/pthread"
)

// pool is the persistent worker pool ("hot team"): workers are created
// once and sleep on per-worker futex words between parallel regions, the
// way libomp keeps its team threads parked.
type pool struct {
	rt      *Runtime
	workers []*poolWorker // index 1..MaxThreads-1; slot 0 is the master
}

type poolWorker struct {
	id   int
	cpu  int       // bound CPU (-1 when unbound)
	gate exec.Word // generation gate; master bumps it to dispatch
	team *Team     // assignment for the new generation
	stop exec.Word
	doom exec.Word // CPU taken offline: die at the next safe point
	dead exec.Word // worker thread has exited for good (offline death)
	th   *pthread.Thread
}

func (rt *Runtime) ensurePool(tc exec.TC) *pool {
	if rt.pool != nil {
		return rt.pool
	}
	p := &pool{rt: rt}
	// Pool-level placement: under a managed binding the affinity
	// subsystem assigns each slot a CPU of its place (close over the
	// default per-core partition reproduces the historic worker-i-on-
	// CPU-i pinning while the pool fits the machine). Per-region
	// placement in workerLoop re-pins workers when a region's policy
	// assignment differs.
	var cpus []int
	if bind := rt.procBind(); bind != places.BindDefault && bind != places.BindFalse {
		cpus = rt.opts.Places.Assign(rt.opts.MaxThreads, bind, tc.CPU())
	}
	for i := 1; i < rt.opts.MaxThreads; i++ {
		pw := &poolWorker{id: i, cpu: -1}
		if cpus != nil {
			pw.cpu = cpus[i]
		}
		pw.th = rt.lib.Create(tc, pthread.Attr{CPU: pw.cpu}, func(wtc exec.TC) {
			p.workerLoop(wtc, pw)
		})
		p.workers = append(p.workers, pw)
	}
	rt.pool = p
	return p
}

// offlineSignal unwinds a doomed worker out of the region body back to
// the worker loop, where it is recovered and the pool thread exits.
type offlineSignal struct{}

func (p *pool) workerLoop(tc exec.TC, pw *poolWorker) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(offlineSignal); !ok {
				panic(r)
			}
			pw.dead.Store(1)
		}
	}()
	gen := uint32(0)
	cpu := pw.cpu // current binding; pw.cpu stays the pool-level one
	for {
		for pw.gate.Load() == gen {
			tc.FutexWait(&pw.gate, gen)
		}
		gen = pw.gate.Load()
		if pw.stop.Load() == 1 {
			return
		}
		team := pw.team
		w := team.workers[pw.id]
		w.tc = tc
		w.pw = pw
		// Region placement: re-pin to this region's assigned CPU (the
		// binding policy may place a small team differently than the
		// pool), or migrate deterministically under proc_bind(false).
		if want, ok := team.slotCPU(pw.id, gen); ok {
			if want != cpu {
				if mv, ok := tc.(exec.Mover); ok {
					mv.MoveCPU(want)
				}
				cpu = want
			}
			w.emitBind(cpu)
		}
		// Forward the fork tree before anything else — even a doomed
		// worker must dispatch its subtree, or the descendants would
		// never wake.
		w.forkChildren()
		if pw.doom.Load() == 1 {
			w.die() // doomed between fork and the first instruction
		}
		w.emitPlain(ompt.ImplicitTaskBegin, 0, 0)
		team.fn(w)
		w.join() // implicit join barrier of the parallel region
		w.emitPlain(ompt.ImplicitTaskEnd, 0, 0)
	}
}

func (p *pool) shutdown(tc exec.TC) {
	for _, pw := range p.workers {
		pw.stop.Store(1)
		pw.gate.Add(1)
		tc.FutexWake(&pw.gate, 1)
	}
	for _, pw := range p.workers {
		p.rt.lib.Join(tc, pw.th)
	}
}

// Team is the shared state of one parallel region.
type Team struct {
	rt     *Runtime
	n      int
	fn     func(*Worker)
	region uint64 // spine region id

	workers []*Worker

	// cpus is the region's placement: cpus[i] is the CPU the binding
	// policy assigned to team slot i (nil when workers are unmanaged).
	// The worksharing Affinity schedule and the nearest-first steal
	// order key on it.
	cpus []int
	// migrate marks a proc_bind(false) team: workers are re-bound to a
	// deterministic per-region rotation, modeling unbound threads
	// drifting under a general-purpose scheduler.
	migrate bool

	// alive is the live team size: n minus workers lost to CPU-offline
	// faults. On a fault-free run it stays n, and every comparison
	// against it degenerates to the classic fixed-size protocol.
	alive exec.Word
	// resilient mirrors Options.Resilient for the region.
	resilient bool

	// Join/explicit barrier state. bar is the hierarchical arrival tree
	// (BarrierHier, the default); barArrived/barLine are the central
	// counter the flat and tree algorithms arrive on.
	bar        *barTree
	barGen     exec.Word
	barArrived exec.Word
	barLine    exec.Line
	relBudget  exec.Word // tree-release wake budget

	// Cancellation (cancel.go). cancellable mirrors the OMP_CANCELLATION
	// ICV; with it off none of the fields below are ever touched and
	// every cancellation check in the runtime is one branch on the bool.
	// cancelFlags is the authoritative cancel-bit word; cancelLine is
	// the one hot line all pollers miss on under flat propagation (under
	// tree propagation the bits ride the barrier tree's per-node lines
	// instead). joinGen/joinArrived/joinLine are the dedicated join
	// barrier of a cancellable region: inner barriers may be abandoned
	// by a cancel, so the region's join must not share their generation
	// counter (libomp's plain vs fork-join barrier split).
	cancellable bool
	cancelTree  bool // propagate cancel bits down the barrier tree
	cancelFlags exec.Word
	cancelLine  exec.Line
	joinGen     exec.Word
	joinArrived exec.Word
	joinLine    exec.Line

	// Worksharing state: fixed rings of pre-allocated construct
	// descriptors indexed by construct sequence (libomp's dispatch
	// buffers) — no structural lock, no per-construct allocation.
	loopRing   [dispatchRingSize]loopBuf
	singleRing [dispatchRingSize]singleBuf
	sections   exec.Word

	// Tasking.
	pending exec.Word // tasks created and not yet finished
	// sleepers counts threads parked in a barrier's futex wait. A task
	// producer wakes one per ready task (and the barrier completer wakes
	// all before draining), so a parked team turns into thieves instead
	// of sleeping through the drain.
	sleepers exec.Word

	// Reduction state: per-thread contribution slots plus the fused
	// combine-at-barrier protocol. redMark[i] is the reduction round
	// slot i was written for, so the combine skips slots of workers
	// that died before contributing. redArmed/redDone track whether the
	// barrier in flight is a reduction barrier; redResult is the
	// combined value the completer broadcasts before the release.
	redSlots  []float64
	redMark   []uint32
	redOp     exec.Word
	redArmed  exec.Word
	redDone   exec.Word
	redResult float64

	// Copyprivate broadcast slot.
	cpVal any

	// atomicLine is the line shared atomics bounce on.
	atomicLine exec.Line
}

// Parallel runs fn on a team of n threads (0 means the default ICV). The
// calling thread becomes thread 0 of the team; pool workers 1..n-1 are
// dispatched through the fork tree. Parallel returns after the implicit
// join barrier.
func (rt *Runtime) Parallel(tc exec.TC, n int, fn func(*Worker)) {
	if n <= 0 {
		n = rt.opts.DefaultThreads
	}
	if n > rt.opts.MaxThreads {
		n = rt.opts.MaxThreads
	}
	region := uint64(rt.Regions.Add(1))
	sp := rt.spine
	if sp.Enabled(ompt.ParallelBegin) {
		sp.Emit(ompt.Event{Kind: ompt.ParallelBegin, CPU: int32(tc.CPU()),
			TimeNS: tc.Now(), Region: region, Arg0: int64(n)})
	}
	if n == 1 {
		// Serialized region: no team machinery (but a deadline still
		// arms — a serialized region can cancel its own loops/tasks).
		team := newTeam(rt, 1, fn)
		team.region = region
		stop := rt.armDeadline(tc, team)
		w := team.workers[0]
		w.tc = tc
		w.emitPlain(ompt.ImplicitTaskBegin, 0, 0)
		fn(w)
		w.drainAllTasks()
		w.emitPlain(ompt.ImplicitTaskEnd, 0, 0)
		if stop != nil {
			stop()
		}
	} else {
		rt.ensurePool(tc)
		team := newTeam(rt, n, fn)
		team.region = region
		rt.placeTeam(team, tc.CPU())
		stop := rt.armDeadline(tc, team)
		master := team.workers[0]
		master.tc = tc
		if team.cpus != nil {
			master.emitBind(team.cpus[0])
		}
		// Tree fork: the master dispatches only its fanout children; woken
		// workers forward the rest, so the serialized fork cost on the
		// master is O(fanout · log n) instead of the linear wake loop.
		master.forkChildren()
		master.emitPlain(ompt.ImplicitTaskBegin, 0, 0)
		fn(master)
		master.join() // implicit join barrier
		master.emitPlain(ompt.ImplicitTaskEnd, 0, 0)
		if stop != nil {
			stop()
		}
	}
	if sp.Enabled(ompt.ParallelEnd) {
		sp.Emit(ompt.Event{Kind: ompt.ParallelEnd, CPU: int32(tc.CPU()),
			TimeNS: tc.Now(), Region: region, Arg0: int64(n)})
	}
}

func newTeam(rt *Runtime, n int, fn func(*Worker)) *Team {
	t := &Team{
		rt:       rt,
		n:        n,
		fn:       fn,
		workers:  make([]*Worker, n),
		redSlots: make([]float64, n),
		redMark:  make([]uint32, n),
	}
	t.alive.Store(uint32(n))
	t.resilient = rt.opts.Resilient
	for i := 0; i < n; i++ {
		t.workers[i] = &Worker{team: t, id: i, deque: newTaskDeque(rt.opts.TaskDeque)}
	}
	if n > 1 && rt.opts.BarrierAlgo == BarrierHier {
		t.bar = newBarTree(n, rt.opts.BarrierFanout)
	}
	t.cancellable = rt.opts.Cancellation
	t.cancelTree = t.cancellable && t.bar != nil &&
		rt.opts.CancelProp != CancelPropFlat
	return t
}

// placeTeam computes the region's worker placement from the binding
// policy: master/close/spread assign each slot a CPU of its place,
// proc_bind(false) arms per-region migration, and the legacy unmanaged
// mode (no ProcBind, Bind off) leaves the team placement-free.
func (rt *Runtime) placeTeam(t *Team, masterCPU int) {
	switch bind := rt.procBind(); bind {
	case places.BindDefault:
	case places.BindFalse:
		t.migrate = true
	default:
		t.cpus = rt.opts.Places.Assign(t.n, bind, masterCPU)
	}
}

// slotCPU returns the CPU team slot id runs the region on: its assigned
// place CPU under a managed binding, or — under proc_bind(false) — a
// deterministic per-generation rotation that models unbound threads
// drifting across the machine. ok is false for unmanaged teams.
func (t *Team) slotCPU(id int, gen uint32) (cpu int, ok bool) {
	if t.cpus != nil {
		return t.cpus[id], true
	}
	if t.migrate {
		return (id + int(gen)*7) % t.rt.layer.NumCPUs(), true
	}
	return 0, false
}

// Worker is a thread's view of a parallel region: the receiver for every
// OpenMP construct.
type Worker struct {
	tc   exec.TC
	team *Team
	id   int
	pw   *poolWorker // nil for the master and serialized regions

	// Per-thread construct sequence counters (each thread encounters the
	// same constructs in the same order — the SPMD contract).
	loopSeen    uint32
	singleSeen  uint32
	sectionSeen uint32
	redSeen     uint32

	// Published progress: the sequence tag (seq+1) of the latest loop /
	// single construct this worker entered, and whether the worker has
	// been removed from the team. Teammates read these to prove an old
	// dispatch buffer quiescent before reclaiming it.
	loopPos   exec.Word
	singlePos exec.Word
	gone      exec.Word

	// cancelSeen is this worker's private copy of the team cancel bits
	// it has already observed (and paid the coherence miss for): a poll
	// that reads a value equal to cancelSeen is a shared-state cache hit
	// and costs nothing.
	cancelSeen uint32

	// Tasking.
	deque    taskDeque
	curTask  *task
	curGroup *taskgroup
	stealRR  int
	// stealOrder/stealRings are the nearest-first victim sweep — teammate
	// slots ordered same place, same socket, then remote by distance —
	// built lazily at this worker's first steal of a placed team;
	// stealCur rotates each ring independently.
	stealOrder []int
	stealRings []int
	stealCur   [3]int
}

// placeRank returns this worker's rank in the team's CPU order (ties by
// thread id) — the key the Affinity schedule partitions by — or the
// thread id itself when the team has no placement.
func (w *Worker) placeRank() int {
	cpus := w.team.cpus
	if cpus == nil {
		return w.id
	}
	my := cpus[w.id]
	r := 0
	for j, c := range cpus {
		if c < my || (c == my && j < w.id) {
			r++
		}
	}
	return r
}

// forkChildren dispatches this worker's children in the fork tree — a
// ForkFanout-ary heap over team slots 0..n-1 — writing each child's work
// descriptor and waking it. The master seeds the tree and every woken
// worker forwards its own children, replacing the master's linear wake
// loop with an O(log n) critical path.
func (w *Worker) forkChildren() {
	t := w.team
	k := t.rt.opts.ForkFanout
	for j := 1; j <= k; j++ {
		c := w.id*k + j
		if c >= t.n {
			return
		}
		w.dispatchSlot(c)
	}
}

// dispatchSlot forks team slot c. A dead or doomed slot is removed from
// the team here and its orphaned subtree adopted: this worker dispatches
// the grandchildren itself, so a dead interior node never strands its
// descendants.
func (w *Worker) dispatchSlot(c int) {
	t := w.team
	pw := t.rt.pool.workers[c-1]
	if pw.dead.Load() == 1 || pw.doom.Load() == 1 {
		// The slot's CPU is offline: fork nothing and shrink the team.
		w.removeWorker(c)
		k := t.rt.opts.ForkFanout
		for j := 1; j <= k; j++ {
			gc := c*k + j
			if gc >= t.n {
				return
			}
			w.dispatchSlot(gc)
		}
		return
	}
	pw.team = t
	w.tc.Charge(t.rt.opts.ForkChargeNS + w.tc.Costs().CacheLineXferNS)
	pw.gate.Add(1)
	w.tc.FutexWake(&pw.gate, 1)
}

// removeWorker takes team slot id (possibly this worker itself, on the
// die path) out of the team: the live count shrinks, and if the removal
// is what a barrier in flight was waiting on, the barrier is completed
// on the removed worker's behalf — through the arrival tree under the
// hierarchical algorithm, against the central counter otherwise.
func (w *Worker) removeWorker(id int) {
	t := w.team
	t.workers[id].gone.Store(1)
	alive := t.alive.Add(^uint32(0))
	w.emitPlain(ompt.ShrinkTeam, int64(id), int64(alive))
	if t.cancellable {
		// The removed worker may have been the arrival the dedicated
		// join barrier was waiting on — a team that shrinks and cancels
		// at the same barrier still converges at the join.
		if ja := t.joinArrived.Load(); alive > 0 && ja > 0 && ja >= alive {
			w.finishJoin()
		}
	}
	if t.bar != nil {
		w.hierRemove(id)
		return
	}
	if arrived := t.barArrived.Load(); alive > 0 && arrived > 0 && arrived >= alive {
		w.finishBarrier(arrived)
	}
}

// TC returns the worker's thread context.
func (w *Worker) TC() exec.TC { return w.tc }

// Wtime returns elapsed seconds since the layer started — omp_get_wtime
// (wall-clock on real goroutines, virtual time on the simulator).
func (w *Worker) Wtime() float64 { return float64(w.tc.Now()) / 1e9 }

// InParallel reports whether the worker is in an active (non-serialized)
// region — omp_in_parallel.
func (w *Worker) InParallel() bool { return w.team.n > 1 }

// MaxThreads returns the pool capacity — omp_get_max_threads.
func (w *Worker) MaxThreads() int { return w.team.rt.opts.MaxThreads }

// ThreadNum returns the OpenMP thread number (omp_get_thread_num).
func (w *Worker) ThreadNum() int { return w.id }

// NumThreads returns the team size (omp_get_num_threads).
func (w *Worker) NumThreads() int { return w.team.n }

// NumAlive returns the live team size: NumThreads minus workers lost to
// CPU-offline faults. Equal to NumThreads on a fault-free run.
func (w *Worker) NumAlive() int { return int(w.team.alive.Load()) }

// Runtime returns the owning runtime.
func (w *Worker) Runtime() *Runtime { return w.team.rt }

// Master runs fn on thread 0 only (no implied barrier).
func (w *Worker) Master(fn func()) {
	if w.id == 0 {
		fn()
	}
}

// String aids debugging.
func (w *Worker) String() string {
	return fmt.Sprintf("omp-worker(%d/%d)", w.id, w.team.n)
}
