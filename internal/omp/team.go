package omp

import (
	"fmt"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/pthread"
)

// pool is the persistent worker pool ("hot team"): workers are created
// once and sleep on per-worker futex words between parallel regions, the
// way libomp keeps its team threads parked.
type pool struct {
	rt      *Runtime
	workers []*poolWorker // index 1..MaxThreads-1; slot 0 is the master
}

type poolWorker struct {
	id   int
	cpu  int       // bound CPU (-1 when unbound)
	gate exec.Word // generation gate; master bumps it to dispatch
	team *Team     // assignment for the new generation
	stop exec.Word
	doom exec.Word // CPU taken offline: die at the next safe point
	dead exec.Word // worker thread has exited for good (offline death)
	th   *pthread.Thread
}

func (rt *Runtime) ensurePool(tc exec.TC) *pool {
	if rt.pool != nil {
		return rt.pool
	}
	p := &pool{rt: rt}
	for i := 1; i < rt.opts.MaxThreads; i++ {
		pw := &poolWorker{id: i, cpu: -1}
		if rt.opts.Bind {
			pw.cpu = i % rt.layer.NumCPUs()
		}
		pw.th = rt.lib.Create(tc, pthread.Attr{CPU: pw.cpu}, func(wtc exec.TC) {
			p.workerLoop(wtc, pw)
		})
		p.workers = append(p.workers, pw)
	}
	rt.pool = p
	return p
}

// offlineSignal unwinds a doomed worker out of the region body back to
// the worker loop, where it is recovered and the pool thread exits.
type offlineSignal struct{}

func (p *pool) workerLoop(tc exec.TC, pw *poolWorker) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(offlineSignal); !ok {
				panic(r)
			}
			pw.dead.Store(1)
		}
	}()
	gen := uint32(0)
	for {
		for pw.gate.Load() == gen {
			tc.FutexWait(&pw.gate, gen)
		}
		gen = pw.gate.Load()
		if pw.stop.Load() == 1 {
			return
		}
		team := pw.team
		w := team.workers[pw.id]
		w.tc = tc
		w.pw = pw
		if pw.doom.Load() == 1 {
			w.die() // doomed between fork and the first instruction
		}
		team.fn(w)
		w.Barrier() // implicit join barrier of the parallel region
	}
}

func (p *pool) shutdown(tc exec.TC) {
	for _, pw := range p.workers {
		pw.stop.Store(1)
		pw.gate.Add(1)
		tc.FutexWake(&pw.gate, 1)
	}
	for _, pw := range p.workers {
		p.rt.lib.Join(tc, pw.th)
	}
}

// Team is the shared state of one parallel region.
type Team struct {
	rt *Runtime
	n  int
	fn func(*Worker)

	workers []*Worker

	// alive is the live team size: n minus workers lost to CPU-offline
	// faults. On a fault-free run it stays n, and every comparison
	// against it degenerates to the classic fixed-size protocol.
	alive exec.Word
	// resilient mirrors Options.Resilient for the region.
	resilient bool

	// Join/explicit barrier state.
	barGen     exec.Word
	barArrived exec.Word
	barLine    exec.Line
	relBudget  exec.Word // tree-release wake budget

	// Worksharing state.
	loopSeq  exec.Word // construct sequence for dynamic loop descriptors
	loops    map[uint32]*loopDesc
	loopsMu  chan struct{} // 1-token structural lock, layer-agnostic
	singles  map[uint32]*exec.Word
	sections exec.Word

	// Ordered construct state.
	orderedNext exec.Word

	// Tasking.
	pending exec.Word // tasks created and not yet finished

	// Reduction slots (one per thread, cache-line padded in spirit).
	// redMark[i] is the reduction round slot i was written for, so the
	// combine skips slots of workers that died before contributing.
	redSlots []float64
	redMark  []uint32

	// Copyprivate broadcast slot.
	cpVal any
	cpGen exec.Word

	// atomicLine is the line shared atomics bounce on.
	atomicLine exec.Line
}

// Parallel runs fn on a team of n threads (0 means the default ICV). The
// calling thread becomes thread 0 of the team; pool workers 1..n-1 are
// dispatched. Parallel returns after the implicit join barrier.
func (rt *Runtime) Parallel(tc exec.TC, n int, fn func(*Worker)) {
	if n <= 0 {
		n = rt.opts.DefaultThreads
	}
	if n > rt.opts.MaxThreads {
		n = rt.opts.MaxThreads
	}
	region := rt.Regions.Add(1)
	t0 := tc.Now()
	defer func() {
		if rt.opts.Tracer != nil {
			rt.opts.Tracer.Span(fmt.Sprintf("parallel#%d", region), "omp", 0,
				t0, tc.Now()-t0, map[string]string{"threads": fmt.Sprint(n)})
		}
	}()
	if n == 1 {
		// Serialized region: no team machinery.
		team := newTeam(rt, 1, fn)
		w := team.workers[0]
		w.tc = tc
		fn(w)
		w.drainAllTasks()
		return
	}
	p := rt.ensurePool(tc)
	team := newTeam(rt, n, fn)
	c := tc.Costs()
	// Fork: write each worker's descriptor and wake it (libomp's linear
	// release).
	for i := 1; i < n; i++ {
		pw := p.workers[i-1]
		if pw.dead.Load() == 1 || pw.doom.Load() == 1 {
			// The slot's CPU is offline: fork nothing and shrink the
			// team up front.
			team.alive.Add(^uint32(0))
			continue
		}
		pw.team = team
		tc.Charge(rt.opts.ForkChargeNS + c.CacheLineXferNS)
		pw.gate.Add(1)
		tc.FutexWake(&pw.gate, 1)
	}
	master := team.workers[0]
	master.tc = tc
	fn(master)
	master.Barrier() // implicit join barrier
}

func newTeam(rt *Runtime, n int, fn func(*Worker)) *Team {
	t := &Team{
		rt:       rt,
		n:        n,
		fn:       fn,
		workers:  make([]*Worker, n),
		loops:    make(map[uint32]*loopDesc),
		loopsMu:  make(chan struct{}, 1),
		singles:  make(map[uint32]*exec.Word),
		redSlots: make([]float64, n),
		redMark:  make([]uint32, n),
	}
	t.alive.Store(uint32(n))
	t.resilient = rt.opts.Resilient
	for i := 0; i < n; i++ {
		t.workers[i] = &Worker{team: t, id: i}
	}
	t.loopsMu <- struct{}{}
	return t
}

func (t *Team) lock()   { <-t.loopsMu }
func (t *Team) unlock() { t.loopsMu <- struct{}{} }

// Worker is a thread's view of a parallel region: the receiver for every
// OpenMP construct.
type Worker struct {
	tc   exec.TC
	team *Team
	id   int
	pw   *poolWorker // nil for the master and serialized regions

	// Per-thread construct sequence counters (each thread encounters the
	// same constructs in the same order — the SPMD contract).
	loopSeen    uint32
	singleSeen  uint32
	sectionSeen uint32
	redSeen     uint32

	// Tasking.
	deque   taskDeque
	curTask *task
	stealRR int
}

// TC returns the worker's thread context.
func (w *Worker) TC() exec.TC { return w.tc }

// Wtime returns elapsed seconds since the layer started — omp_get_wtime
// (wall-clock on real goroutines, virtual time on the simulator).
func (w *Worker) Wtime() float64 { return float64(w.tc.Now()) / 1e9 }

// InParallel reports whether the worker is in an active (non-serialized)
// region — omp_in_parallel.
func (w *Worker) InParallel() bool { return w.team.n > 1 }

// MaxThreads returns the pool capacity — omp_get_max_threads.
func (w *Worker) MaxThreads() int { return w.team.rt.opts.MaxThreads }

// ThreadNum returns the OpenMP thread number (omp_get_thread_num).
func (w *Worker) ThreadNum() int { return w.id }

// NumThreads returns the team size (omp_get_num_threads).
func (w *Worker) NumThreads() int { return w.team.n }

// NumAlive returns the live team size: NumThreads minus workers lost to
// CPU-offline faults. Equal to NumThreads on a fault-free run.
func (w *Worker) NumAlive() int { return int(w.team.alive.Load()) }

// Runtime returns the owning runtime.
func (w *Worker) Runtime() *Runtime { return w.team.rt }

// Master runs fn on thread 0 only (no implied barrier).
func (w *Worker) Master(fn func()) {
	if w.id == 0 {
		fn()
	}
}

// Barrier executes a task-aware team barrier: it completes all pending
// explicit tasks, then releases the team. The release path follows the
// runtime's BarrierAlgo ICV: flat (the last arriver wakes everyone, a
// serialized storm) or tree (released threads fan the wakes out, an
// O(log n) release — the algorithm large machines want).
func (w *Worker) Barrier() {
	t := w.team
	if t.n == 1 {
		w.drainAllTasks()
		return
	}
	if w.doomed() {
		w.die() // safe point: the barrier arrival becomes a departure
	}
	tc := w.tc
	c := tc.Costs()
	// Arrival counter updates serialize on its cache line.
	tc.Contend(&t.barLine, c.AtomicRMWNS+c.CacheLineXferNS)
	gen := t.barGen.Load()
	// Completion compares against the live size, not n: arrived == alive
	// == n fault-free, while after a shrink the survivors alone complete
	// the barrier.
	if arrived := t.barArrived.Add(1); arrived >= t.alive.Load() {
		w.finishBarrier(arrived - 1)
		return
	}
	for t.barGen.Load() == gen {
		// Help with tasks while waiting.
		if t.pending.Load() > 0 && w.runOneTask() {
			continue
		}
		tc.FutexWait(&t.barGen, gen)
	}
	if t.rt.opts.BarrierAlgo == BarrierTree {
		w.treeRelease()
	}
}

// finishBarrier performs the release half of the team barrier: drain the
// task pool, reset the arrival counter, bump the generation and wake the
// waiters (all of them flat, or seed the fanout budget for tree). It
// runs on the last arriver — or on a dying worker whose departure is
// what completes the barrier, in which case every arrived thread is a
// waiter.
func (w *Worker) finishBarrier(waiters uint32) {
	t := w.team
	tc := w.tc
	for t.pending.Load() > 0 {
		if !w.runOneTask() {
			tc.Yield()
		}
	}
	t.barArrived.Store(0)
	if t.rt.opts.BarrierAlgo == BarrierTree {
		t.relBudget.Store(waiters)
		t.barGen.Add(1)
		w.treeRelease()
	} else {
		t.barGen.Add(1)
		tc.FutexWake(&t.barGen, -1)
	}
}

// doomed reports whether this worker's CPU has been taken offline.
func (w *Worker) doomed() bool {
	return w.pw != nil && w.pw.doom.Load() == 1
}

// die removes the worker from the team at a safe point (a barrier
// arrival or a loop chunk claim): the live count shrinks, the team
// barrier is completed if this departure is what completes it, and
// control unwinds to the worker loop, where the pool thread exits for
// good. Safe points are placed so the worker never dies mid-construct:
// claimed chunks have fully executed, held locks were released, and any
// tasks it queued stay stealable by the survivors.
func (w *Worker) die() {
	t := w.team
	alive := t.alive.Add(^uint32(0))
	if arrived := t.barArrived.Load(); alive > 0 && arrived > 0 && arrived >= alive {
		w.finishBarrier(arrived)
	}
	panic(offlineSignal{})
}

// releaseFanout is each thread's share of the tree release.
const releaseFanout = 4

// treeRelease forwards up to releaseFanout wakes from the team's release
// budget. Every woken thread forwards more wakes, so release latency is
// logarithmic in the team size instead of the flat barrier's linear
// storm on the last arriver. Wakes are anonymous and value-checked, so a
// wake "spent" on a thread that never slept is harmless.
func (w *Worker) treeRelease() {
	t := w.team
	for k := 0; k < releaseFanout; k++ {
		for {
			v := t.relBudget.Load()
			if v == 0 {
				return
			}
			if t.relBudget.CompareAndSwap(v, v-1) {
				break
			}
		}
		w.tc.FutexWake(&t.barGen, 1)
	}
}

// String aids debugging.
func (w *Worker) String() string {
	return fmt.Sprintf("omp-worker(%d/%d)", w.id, w.team.n)
}
