package omp

import (
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/ompt"
)

// equivTuple is the layer-independent projection of an event: kinds and
// qualifiers only — timestamps, CPUs and region ids differ by design.
type equivTuple struct {
	k ompt.Kind
	s ompt.Sync
	w ompt.Work
}

// equivKinds are the runtime-emitted kinds compared across layers.
// Thread begin/end is excluded (layer thread ids are a layer concern);
// so is everything schedule-dependent (dynamic/guided chunking, task
// stealing) — the equivalence claim covers deterministic constructs.
var equivKinds = []ompt.Kind{
	ompt.ParallelBegin, ompt.ParallelEnd,
	ompt.ImplicitTaskBegin, ompt.ImplicitTaskEnd,
	ompt.WorkBegin, ompt.WorkEnd, ompt.DispatchChunk,
	ompt.SyncAcquire, ompt.SyncAcquired, ompt.SyncRelease,
}

// equivWorkload runs only deterministic constructs: static loops,
// barriers, criticals, reductions, and single — each thread's event
// sequence is a pure function of the program, not of scheduling.
func equivWorkload(rt *Runtime, tc exec.TC) {
	rt.Parallel(tc, 4, func(w *Worker) {
		w.For(0, 64, ForOpt{Sched: Static}, func(lo, hi int) {})
		w.Barrier()
		w.Critical("equiv", func() {})
		_ = w.Reduce(ReduceSum, float64(w.ThreadNum()))
		w.Single(false, func() {})
		w.For(0, 32, ForOpt{Sched: Static, Chunk: 4, NoWait: true}, func(lo, hi int) {})
		w.Barrier()
	})
}

// TestEventStreamEquivalence asserts that the real layer and the
// simulator produce the same per-thread event sequence for the same
// program: the instrumentation is a property of the runtime, not of the
// layer beneath it.
func TestEventStreamEquivalence(t *testing.T) {
	streams := map[string]map[int32][]equivTuple{}
	for name, mk := range testLayers() {
		sp := ompt.NewSpine()
		rec := ompt.NewRecorder(sp, equivKinds...)
		run(t, mk, Options{MaxThreads: 4, Bind: true, Spine: sp}, equivWorkload)
		per := map[int32][]equivTuple{}
		for th, evs := range rec.PerThread() {
			for _, ev := range evs {
				per[th] = append(per[th], equivTuple{ev.Kind, ev.Sync, ev.Work})
			}
		}
		streams[name] = per
	}
	re, si := streams["real"], streams["sim"]
	if len(re) != len(si) {
		t.Fatalf("thread lanes: real %d, sim %d", len(re), len(si))
	}
	for th, rs := range re {
		ss := si[th]
		if len(rs) != len(ss) {
			t.Errorf("thread %d: real %d events, sim %d", th, len(rs), len(ss))
			continue
		}
		for i := range rs {
			if rs[i] != ss[i] {
				t.Errorf("thread %d event %d: real %v/%v/%v, sim %v/%v/%v",
					th, i, rs[i].k, rs[i].s, rs[i].w, ss[i].k, ss[i].s, ss[i].w)
				break
			}
		}
	}
}

// TestDisabledSpineForIsZeroAlloc asserts the emit fast path on the real
// layer: with no spine attached, a static nowait loop — every emit site
// of the worksharing hot path — performs zero allocations per call.
func TestDisabledSpineForIsZeroAlloc(t *testing.T) {
	layer := exec.NewRealLayer(8)
	rt := New(layer, Options{MaxThreads: 4, Bind: true})
	allocs := -1.0
	_, err := layer.Run(func(tc exec.TC) {
		rt.Parallel(tc, 4, func(w *Worker) {
			if w.ThreadNum() != 0 {
				return
			}
			body := func(lo, hi int) {}
			allocs = testing.AllocsPerRun(200, func() {
				w.For(0, 1024, ForOpt{Sched: Static, NoWait: true}, body)
			})
		})
		rt.Close(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("static nowait For with disabled spine: %v allocs/op, want 0", allocs)
	}
}

// BenchmarkForDisabledSpine records the disabled-spine worksharing fast
// path on the real layer (allocs/op must report 0).
func BenchmarkForDisabledSpine(b *testing.B) {
	layer := exec.NewRealLayer(8)
	rt := New(layer, Options{MaxThreads: 4, Bind: true})
	_, err := layer.Run(func(tc exec.TC) {
		rt.Parallel(tc, 4, func(w *Worker) {
			if w.ThreadNum() != 0 {
				return
			}
			body := func(lo, hi int) {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.For(0, 1024, ForOpt{Sched: Static, NoWait: true}, body)
			}
		})
		rt.Close(tc)
	})
	if err != nil {
		b.Fatal(err)
	}
}
