package omp

import (
	"sync"
	"sync/atomic"

	"github.com/interweaving/komp/internal/exec"
)

// This file is the per-worker task deque: the lock-free Chase–Lev
// work-stealing deque (the default) and the mutex-guarded baseline it
// replaced (kept for the `-ablation tasking` comparison). Both obey the
// classic Cilk/libomp discipline — the owner pushes and pops at the
// bottom (LIFO, for locality), thieves steal from the top (FIFO,
// oldest-first) — and both charge their synchronization costs through
// the exec layer, so the simulated timeline prices each algorithm's
// cache-line behaviour and the real layer runs the same code under real
// atomics.

// TaskDequeAlgo selects the per-worker deque implementation.
type TaskDequeAlgo int

// Task deque algorithms.
const (
	// DequeChaseLev (the default): the Chase–Lev lock-free deque. The
	// owner's push/pop touch only the bottom index (no lock, no CAS on
	// the common path); thieves CAS the top index, so they serialize
	// only against each other on the top cache line, never against the
	// owner.
	DequeChaseLev TaskDequeAlgo = iota
	// DequeMutex: the original sync.Mutex-guarded slice. Every
	// operation — owner or thief — serializes on the deque's lock line,
	// and a steal pays an O(n) copy to close the head gap.
	DequeMutex
)

func (a TaskDequeAlgo) String() string {
	if a == DequeMutex {
		return "mutex"
	}
	return "chase-lev"
}

// ParseTaskDequeAlgo parses a KOMP_TASK_DEQUE-style string.
func ParseTaskDequeAlgo(s string) (TaskDequeAlgo, bool) {
	switch s {
	case "chase-lev", "chaselev", "cl":
		return DequeChaseLev, true
	case "mutex":
		return DequeMutex, true
	}
	return 0, false
}

// taskDeque is the per-worker deque interface. Only the owning worker
// calls push/pop; any teammate may call steal; size is advisory (the
// cutoff heuristic reads it racily).
type taskDeque interface {
	push(tc exec.TC, t *task)
	pop(tc exec.TC) *task
	steal(tc exec.TC) *task
	size() int
	// reset restores the just-constructed state — empty, initial
	// capacity, cold cache-line history — between regions of a reused
	// hot team, so deque traffic prices exactly like on a fresh team
	// (ring growth is re-charged per region, the top line starts
	// unowned). Called only at fork, never concurrently with the
	// region's own operations.
	reset()
}

func newTaskDeque(algo TaskDequeAlgo) taskDeque {
	if algo == DequeMutex {
		return &mutexDeque{}
	}
	return newCLDeque()
}

// --- Chase–Lev ---

// clRing is one circular buffer generation of a Chase–Lev deque. Slots
// are atomic pointers so a thief's read of a slot the owner is about to
// recycle is a benign stale read (the top CAS arbitrates ownership),
// not a data race.
type clRing struct {
	mask int64
	slot []atomic.Pointer[task]
}

func newCLRing(capacity int64) *clRing {
	return &clRing{mask: capacity - 1, slot: make([]atomic.Pointer[task], capacity)}
}

func (r *clRing) get(i int64) *task    { return r.slot[i&r.mask].Load() }
func (r *clRing) put(i int64, t *task) { r.slot[i&r.mask].Store(t) }
func (r *clRing) capacity() int64      { return r.mask + 1 }

// clDeque is the Chase–Lev work-stealing deque (Chase & Lev, SPAA '05;
// the libomp/Cilk deque). bottom is written only by the owner; top only
// advances, by a CAS from a thief or from the owner losing the
// last-element race. The ring grows by doubling; old generations stay
// valid for in-flight thieves because growth only copies, never
// mutates, live slots.
type clDeque struct {
	top    atomic.Int64
	bottom atomic.Int64
	ring   atomic.Pointer[clRing]

	// topLine is the cache line the top index lives on: every CAS on
	// top — thief steals and the owner's last-element race — serializes
	// here in the simulated timeline.
	topLine exec.Line
}

// clInitialCap is the initial ring capacity (must be a power of two).
// EPCC's MASTER_TASK at InnerReps×threads outgrows it; the growth path
// is exercised by tests, the steady state stays allocation-free.
const clInitialCap = 64

func newCLDeque() *clDeque {
	d := &clDeque{}
	d.ring.Store(newCLRing(clInitialCap))
	return d
}

func (d *clDeque) size() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// push appends at the bottom (owner only): one plain store plus the
// bottom publish — an uncontended RMW in the cost model.
func (d *clDeque) push(tc exec.TC, t *task) {
	b := d.bottom.Load()
	top := d.top.Load()
	r := d.ring.Load()
	if b-top >= r.capacity() {
		r = d.grow(tc, r, b, top)
	}
	r.put(b, t)
	d.bottom.Store(b + 1)
	tc.Charge(tc.Costs().AtomicRMWNS)
}

// grow doubles the ring, copying the live window [top, bottom). The old
// ring is never written again, so thieves holding it still read valid
// task pointers until their top CAS settles the race.
func (d *clDeque) grow(tc exec.TC, old *clRing, b, top int64) *clRing {
	c := tc.Costs()
	r := newCLRing(old.capacity() * 2)
	for i := top; i < b; i++ {
		r.put(i, old.get(i))
	}
	d.ring.Store(r)
	tc.Charge(c.MallocNS + (b-top)*copyNSPerTask)
	return r
}

// reset is called on a drained deque (top == bottom). The indices are
// deliberately NOT rewound: keeping them monotonic means a stale
// cross-team thief — one that read the previous region's indices and
// stalled — can never win a top CAS against a recycled index (the
// classic ABA), only observe the deque empty or steal a genuinely new
// task. Shrinking the ring back to the initial capacity and cooling the
// top line is what restores fresh-team pricing: growth is re-charged
// per region and the first contention starts from an unowned line.
func (d *clDeque) reset() {
	r := d.ring.Load()
	if r.capacity() != clInitialCap {
		// The live window is empty, so there is nothing to copy and old
		// generations stay valid for any in-flight thief, exactly as in
		// grow.
		d.ring.Store(newCLRing(clInitialCap))
	} else {
		// Drop stale task pointers so a drained region's tasks are
		// collectable (a fresh ring starts nil-slotted too).
		for i := range r.slot {
			r.slot[i].Store(nil)
		}
	}
	d.topLine = exec.Line{}
}

// pop removes from the bottom (owner only). The common path is
// lock-free and CAS-free; only when the last element is in play does
// the owner CAS the top against racing thieves.
func (d *clDeque) pop(tc exec.TC) *task {
	c := tc.Costs()
	b := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(b)
	top := d.top.Load()
	if top > b {
		// Empty: restore and leave.
		d.bottom.Store(top)
		return nil
	}
	t := r.get(b)
	if top == b {
		// Last element: race thieves for it on the top line.
		tc.Contend(&d.topLine, c.AtomicRMWNS+c.CacheLineXferNS)
		if !d.top.CompareAndSwap(top, top+1) {
			t = nil // a thief got there first
		}
		d.bottom.Store(top + 1)
		return t
	}
	tc.Charge(c.AtomicRMWNS)
	return t
}

// steal removes from the top (any thief). A successful steal is one CAS
// on the top line; a lost CAS means another thief (or the owner's
// last-element pop) won, and the thief retries with fresh indices —
// the retry is one more bounce on the already-local line, far cheaper
// than abandoning the victim and paying a whole failed sweep. The loop
// terminates because every lost CAS is somebody else's progress: the
// deque drains toward the empty exit.
func (d *clDeque) steal(tc exec.TC) *task {
	c := tc.Costs()
	for {
		top := d.top.Load()
		b := d.bottom.Load()
		if top >= b {
			// Empty probe: the thief still pulled the victim's indices.
			tc.Charge(c.CacheLineXferNS)
			return nil
		}
		r := d.ring.Load()
		t := r.get(top)
		tc.Contend(&d.topLine, c.AtomicRMWNS+c.CacheLineXferNS)
		if d.top.CompareAndSwap(top, top+1) {
			return t
		}
	}
}

// --- mutex baseline ---

// copyNSPerTask prices moving one task pointer during the mutex deque's
// head-gap copy and the Chase–Lev ring growth.
const copyNSPerTask = 2

// mutexDeque is the baseline the tasking ablation measures against: a
// mutex around a slice. Owner and thieves all serialize on one lock
// line, and stealing from the head shifts the whole remainder down.
type mutexDeque struct {
	mu    sync.Mutex
	items []*task
	line  exec.Line
}

// lockNS is the modeled hold time of one lock/unlock pair on the
// deque's lock line.
func lockNS(c *exec.Costs) int64 { return 2*c.AtomicRMWNS + c.CacheLineXferNS }

func (d *mutexDeque) reset() {
	d.mu.Lock()
	for i := range d.items {
		d.items[i] = nil
	}
	d.items = d.items[:0]
	d.mu.Unlock()
	d.line = exec.Line{}
}

func (d *mutexDeque) size() int {
	d.mu.Lock()
	n := len(d.items)
	d.mu.Unlock()
	return n
}

func (d *mutexDeque) push(tc exec.TC, t *task) {
	tc.Contend(&d.line, lockNS(tc.Costs()))
	d.mu.Lock()
	d.items = append(d.items, t)
	d.mu.Unlock()
}

func (d *mutexDeque) pop(tc exec.TC) *task {
	tc.Contend(&d.line, lockNS(tc.Costs()))
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return nil
	}
	t := d.items[n-1]
	d.items[n-1] = nil
	d.items = d.items[:n-1]
	return t
}

func (d *mutexDeque) steal(tc exec.TC) *task {
	tc.Contend(&d.line, lockNS(tc.Costs()))
	d.mu.Lock()
	n := len(d.items)
	var t *task
	if n > 0 {
		t = d.items[0]
		copy(d.items, d.items[1:])
		d.items[n-1] = nil
		d.items = d.items[:n-1]
	}
	d.mu.Unlock()
	if t != nil {
		// The O(n) head-gap copy the Chase–Lev deque exists to remove.
		// Charged after the unlock: on the simulator a charge suspends
		// the proc, and suspending while holding the Go mutex would
		// block other procs outside the simulator's control.
		tc.Charge(int64(n) * copyNSPerTask)
	}
	return t
}
