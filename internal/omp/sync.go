package omp

import (
	"sync"

	"github.com/interweaving/komp/internal/ompt"
	"github.com/interweaving/komp/internal/pthread"
)

// Critical executes fn inside the named critical section. The unnamed
// section is the empty name; all unnamed criticals share one mutex,
// exactly as in OpenMP.
func (w *Worker) Critical(name string, fn func()) {
	e := w.team.rt.criticalEntry(name)
	w.emitSync(ompt.SyncAcquire, ompt.SyncCritical, e.id)
	e.m.Lock(w.tc)
	w.emitSync(ompt.SyncAcquired, ompt.SyncCritical, e.id)
	fn()
	e.m.Unlock(w.tc)
	w.emitSync(ompt.SyncRelease, ompt.SyncCritical, e.id)
}

// Atomic executes fn as an atomic update; updates to the shared location
// serialize on its cache line across the team.
func (w *Worker) Atomic(fn func()) {
	c := w.tc.Costs()
	w.tc.Contend(&w.team.atomicLine, c.AtomicRMWNS+c.CacheLineXferNS)
	fn()
}

// ReduceOp is a reduction operator.
type ReduceOp int

// Reduction operators.
const (
	ReduceSum ReduceOp = iota
	ReduceProd
	ReduceMax
	ReduceMin
)

// Apply combines two values.
func (op ReduceOp) Apply(a, b float64) float64 {
	switch op {
	case ReduceProd:
		return a * b
	case ReduceMax:
		if a > b {
			return a
		}
		return b
	case ReduceMin:
		if a < b {
			return a
		}
		return b
	default:
		return a + b
	}
}

// Identity returns the operator identity element.
func (op ReduceOp) Identity() float64 {
	switch op {
	case ReduceProd:
		return 1
	case ReduceMax:
		return negInf
	case ReduceMin:
		return posInf
	default:
		return 0
	}
}

const (
	negInf = -1.797693134862315708145274237317043567981e308
	posInf = 1.797693134862315708145274237317043567981e308
)

// Reduce combines each thread's contribution and returns the reduced
// value on every thread. The combine is fused into the team barrier:
// each thread writes its slot, arms the reduction round, and arrives.
// Under the hierarchical barrier every arrival-tree node that completes
// folds its subtree's inputs — O(fanout) work per node — and the root's
// partial is the result; under flat arrival the completer does one O(n)
// scan. Either way the reduction costs exactly one barrier, not the two
// barriers plus a per-thread O(n) scan of the classic algorithm.
func (w *Worker) Reduce(op ReduceOp, val float64) float64 {
	t := w.team
	if t.n == 1 {
		return val
	}
	if w.doomed() {
		w.die() // safe point: die before contributing, as at a barrier
	}
	if t.parCancelled() {
		// Cancelled region: the barrier this reduction would fuse into
		// is abandoned, so arming a round could never complete. The
		// local value stands in for the unreduced result.
		return val
	}
	round := w.redSeen + 1
	w.redSeen = round
	t.redSlots[w.id] = val
	t.redMark[w.id] = round
	// Every live thread stores the same op and round (SPMD), so the
	// racing stores are idempotent. The slot writes above are published
	// to the completer by the arrival counter's fetch-and-add.
	t.redOp.Store(uint32(op))
	t.redArmed.Store(round)
	w.Barrier()
	// The release publishes redResult (written before the generation
	// bump); one line transfer fetches the broadcast value.
	w.tc.Charge(w.tc.Costs().CacheLineXferNS)
	return t.redResult
}

// --- omp_lock_t / omp_nest_lock_t ---

// Lock is an OpenMP lock (omp_lock_t), a plain pthread mutex underneath.
type Lock struct {
	m  *pthread.Mutex
	id uint64 // spine lock id
}

// NewLock creates a lock (omp_init_lock).
func (rt *Runtime) NewLock() *Lock {
	return &Lock{m: rt.lib.NewMutex(), id: rt.lockSeq.Add(1)}
}

// Set acquires the lock (omp_set_lock).
func (l *Lock) Set(w *Worker) {
	w.emitSync(ompt.SyncAcquire, ompt.SyncLock, l.id)
	l.m.Lock(w.tc)
	w.emitSync(ompt.SyncAcquired, ompt.SyncLock, l.id)
}

// Unset releases the lock (omp_unset_lock).
func (l *Lock) Unset(w *Worker) {
	l.m.Unlock(w.tc)
	w.emitSync(ompt.SyncRelease, ompt.SyncLock, l.id)
}

// Test attempts the lock without blocking (omp_test_lock).
func (l *Lock) Test(w *Worker) bool {
	if !l.m.TryLock(w.tc) {
		return false
	}
	w.emitSync(ompt.SyncAcquired, ompt.SyncLock, l.id)
	return true
}

// NestLock is an OpenMP nestable lock (omp_nest_lock_t).
type NestLock struct {
	m     *pthread.Mutex
	id    uint64 // spine lock id
	mu    sync.Mutex
	owner *Worker
	depth int
}

// NewNestLock creates a nestable lock.
func (rt *Runtime) NewNestLock() *NestLock {
	return &NestLock{m: rt.lib.NewMutex(), id: rt.lockSeq.Add(1)}
}

// Set acquires the nestable lock, incrementing the nesting depth when the
// caller already owns it.
func (l *NestLock) Set(w *Worker) int {
	w.emitSync(ompt.SyncAcquire, ompt.SyncLock, l.id)
	l.mu.Lock()
	if l.owner == w {
		l.depth++
		d := l.depth
		l.mu.Unlock()
		w.tc.Charge(w.tc.Costs().AtomicRMWNS)
		w.emitSync(ompt.SyncAcquired, ompt.SyncLock, l.id)
		return d
	}
	l.mu.Unlock()
	l.m.Lock(w.tc)
	l.mu.Lock()
	l.owner = w
	l.depth = 1
	l.mu.Unlock()
	w.emitSync(ompt.SyncAcquired, ompt.SyncLock, l.id)
	return 1
}

// Unset releases one nesting level, dropping the lock at depth zero. It
// returns the remaining depth.
func (l *NestLock) Unset(w *Worker) int {
	l.mu.Lock()
	if l.owner != w {
		l.mu.Unlock()
		panic("omp: NestLock.Unset by non-owner")
	}
	l.depth--
	d := l.depth
	if d == 0 {
		l.owner = nil
		l.mu.Unlock()
		l.m.Unlock(w.tc)
		w.emitSync(ompt.SyncRelease, ompt.SyncLock, l.id)
		return 0
	}
	l.mu.Unlock()
	w.emitSync(ompt.SyncRelease, ompt.SyncLock, l.id)
	return d
}
