package omp

import (
	"sync/atomic"
	"testing"

	"github.com/interweaving/komp/internal/exec"
)

func TestTaskloopCoversRange(t *testing.T) {
	for name, mk := range testLayers() {
		t.Run(name, func(t *testing.T) {
			run(t, mk, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
				hits := make([]atomic.Int32, 500)
				rt.Parallel(tc, 8, func(w *Worker) {
					w.Single(false, func() {
						w.Taskloop(0, 500, TaskloopOpt{Grainsize: 7}, func(_ *Worker, i int) {
							hits[i].Add(1)
						})
					})
				})
				checkCoverage(t, hits, "taskloop")
			})
		})
	}
}

func TestTaskloopNumTasks(t *testing.T) {
	for name, mk := range testLayers() {
		t.Run(name, func(t *testing.T) {
			run(t, mk, Options{MaxThreads: 4, Bind: true}, func(rt *Runtime, tc exec.TC) {
				var created atomic.Int64
				rt.Parallel(tc, 4, func(w *Worker) {
					w.Master(func() {
						before := rt.TasksRun.Load()
						w.Taskloop(0, 1000, TaskloopOpt{NumTasks: 13}, func(*Worker, int) {})
						if got := rt.TasksRun.Load() - before; got != 13 {
							created.Store(got)
						}
					})
					w.Barrier()
				})
				if created.Load() != 0 {
					t.Fatalf("taskloop generated %d tasks, want 13", created.Load())
				}
			})
		})
	}
}

func TestTaskloopWaitsUnlessNoGroup(t *testing.T) {
	run(t, testLayers()["sim"], Options{MaxThreads: 4, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var done atomic.Int64
		rt.Parallel(tc, 4, func(w *Worker) {
			w.Master(func() {
				w.Taskloop(0, 40, TaskloopOpt{}, func(tw *Worker, i int) {
					tw.TC().Charge(1000)
					done.Add(1)
				})
				if done.Load() != 40 {
					t.Errorf("taskloop returned with %d/40 done (implicit taskwait missing)", done.Load())
				}
			})
			w.Barrier()
		})
	})
}

func TestForCollapse2Coverage(t *testing.T) {
	for name, mk := range testLayers() {
		t.Run(name, func(t *testing.T) {
			run(t, mk, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
				const ni, nj = 7, 23
				hits := make([]atomic.Int32, ni*nj)
				rt.Parallel(tc, 8, func(w *Worker) {
					w.ForCollapse2(ni, nj, ForOpt{Sched: Dynamic, Chunk: 4}, func(i, j int) {
						hits[i*nj+j].Add(1)
					})
				})
				checkCoverage(t, hits, "collapse2")
			})
		})
	}
}

func TestForCollapse3Coverage(t *testing.T) {
	run(t, testLayers()["sim"], Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		const ni, nj, nk = 5, 6, 7
		hits := make([]atomic.Int32, ni*nj*nk)
		rt.Parallel(tc, 8, func(w *Worker) {
			w.ForCollapse3(ni, nj, nk, ForOpt{Sched: Static}, func(i, j, k int) {
				hits[(i*nj+j)*nk+k].Add(1)
			})
		})
		checkCoverage(t, hits, "collapse3")
	})
}

// Collapse solves the starvation the clause exists for: an outer loop
// shorter than the team leaves threads idle; collapsed, everyone works.
func TestCollapseBeatsShortOuterLoop(t *testing.T) {
	elapsed := func(collapse bool) int64 {
		layer := testLayers()["sim"]()
		rt := New(layer, Options{MaxThreads: 8, Bind: true})
		e, err := layer.Run(func(tc exec.TC) {
			rt.Parallel(tc, 8, func(w *Worker) {
				if collapse {
					w.ForCollapse2(2, 64, ForOpt{Sched: Static}, func(i, j int) {
						w.TC().Charge(10_000)
					})
				} else {
					w.ForEach(0, 2, ForOpt{Sched: Static}, func(i int) {
						for j := 0; j < 64; j++ {
							w.TC().Charge(10_000)
						}
					})
				}
			})
			rt.Close(tc)
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	flat, nested := elapsed(true), elapsed(false)
	if flat*2 > nested {
		t.Fatalf("collapse (%d) must far outrun the starved outer loop (%d)", flat, nested)
	}
}

func TestThreadPrivatePersistsAcrossRegions(t *testing.T) {
	for name, mk := range testLayers() {
		t.Run(name, func(t *testing.T) {
			run(t, mk, Options{MaxThreads: 4, Bind: true}, func(rt *Runtime, tc exec.TC) {
				tp := rt.NewThreadPrivate(func() any { return 0 }, nil)
				rt.Parallel(tc, 4, func(w *Worker) {
					tp.Set(w, w.ThreadNum()*10)
				})
				var bad atomic.Int64
				rt.Parallel(tc, 4, func(w *Worker) {
					if tp.Get(w).(int) != w.ThreadNum()*10 {
						bad.Add(1)
					}
				})
				if bad.Load() != 0 {
					t.Fatalf("%d threads lost their threadprivate copies", bad.Load())
				}
			})
		})
	}
}

func TestCopyInClonesMaster(t *testing.T) {
	for name, mk := range testLayers() {
		t.Run(name, func(t *testing.T) {
			run(t, mk, Options{MaxThreads: 4, Bind: true}, func(rt *Runtime, tc exec.TC) {
				tp := rt.NewThreadPrivate(
					func() any { return []int{0, 0} },
					func(v any) any { return append([]int(nil), v.([]int)...) },
				)
				var bad atomic.Int64
				rt.Parallel(tc, 4, func(w *Worker) {
					w.Master(func() {
						tp.Set(w, []int{7, 9})
					})
					tp.CopyIn(w)
					got := tp.Get(w).([]int)
					if got[0] != 7 || got[1] != 9 {
						bad.Add(1)
					}
					// Mutating the copy must not leak into the master.
					if w.ThreadNum() != 0 {
						got[0] = -1
					}
					w.Barrier()
					w.Master(func() {
						if tp.Get(w).([]int)[0] != 7 {
							bad.Add(100)
						}
					})
				})
				if bad.Load() != 0 {
					t.Fatalf("copyin broken: code %d", bad.Load())
				}
			})
		})
	}
}

func TestRuntimeQueryFunctions(t *testing.T) {
	run(t, testLayers()["sim"], Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		rt.Parallel(tc, 4, func(w *Worker) {
			if !w.InParallel() {
				t.Error("InParallel false inside a 4-thread region")
			}
			if w.MaxThreads() != 8 {
				t.Errorf("MaxThreads = %d", w.MaxThreads())
			}
			before := w.Wtime()
			w.TC().Charge(2_000_000)
			if w.Wtime()-before < 0.0019 {
				t.Error("Wtime did not advance with virtual time")
			}
		})
		rt.Parallel(tc, 1, func(w *Worker) {
			if w.InParallel() {
				t.Error("InParallel true in a serialized region")
			}
		})
	})
}
